// End-to-end assertions for the four datacenter debugging scenarios
// added with the simulation harness: ECMP hash polarization, transient
// routing loop during failover, incast microburst, and DDoS source
// localisation. Each scenario injects its fault through the netsim
// impairment/override knobs, detects it through the public query plane,
// and asserts that exactly one alarm (deduplicated by the controller's
// suppression window) lands in the alarm history.
package pathdump_test

import (
	"testing"
	"time"

	"pathdump"
	"pathdump/internal/apps"
	"pathdump/internal/netsim"
	"pathdump/internal/types"
)

// scenarioCluster builds a k=4 fat tree with alarm suppression on, so
// repeated detections of one fault fold into a single history entry.
func scenarioCluster(t *testing.T) *pathdump.Cluster {
	t.Helper()
	c, err := pathdump.NewFatTree(4, pathdump.Config{
		Alarms: pathdump.AlarmConfig{Suppress: time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// assertOneAlarm checks the controller history holds exactly one entry
// for the reason, folded from `firings` detections.
func assertOneAlarm(t *testing.T, c *pathdump.Cluster, reason pathdump.Reason, firings int) {
	t.Helper()
	hist := c.AlarmHistory(pathdump.AlarmFilter{Reason: reason})
	if len(hist) != 1 {
		t.Fatalf("%s: %d alarm entries, want exactly 1 (deduped)", reason, len(hist))
	}
	if hist[0].Count != firings {
		t.Errorf("%s: entry folded %d firings, want %d", reason, hist[0].Count, firings)
	}
}

func TestDebuggingScenarios(t *testing.T) {
	scenarios := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"polarization", polarizationScenario},
		{"failoverloop", failoverLoopScenario},
		{"flaploop", flapLoopScenario},
		{"incast", incastScenario},
		{"ddos", ddosScenario},
		{"flapquery", flapDuringQueryScenario},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) { sc.run(t) })
	}
}

// polarizationScenario mirrors examples/polarization: a buggy hash at a
// ToR sends every inter-pod flow up the same aggregation uplink while
// its sibling idles. DetectPolarization must measure λ = 100% and raise
// ECMP_POLARIZED once.
func polarizationScenario(t *testing.T) {
	c := scenarioCluster(t)
	hosts := c.HostIDs()
	tor := c.Topo.Host(hosts[0]).ToR
	uplinks := c.Topo.Switch(tor).Up
	if len(uplinks) != 2 {
		t.Fatalf("ToR %d has %d uplinks, want 2", tor, len(uplinks))
	}
	hot := uplinks[0]

	// The polarization bug: the ToR's "hash" always lands on one uplink.
	// The override fires only for upward decisions (hot ∈ canonical), so
	// local delivery is untouched.
	c.Sim.SetNextHopOverride(tor, func(_ *netsim.Packet, canonical []types.SwitchID, _ netsim.NodeID) (types.SwitchID, bool) {
		for _, cand := range canonical {
			if cand == hot {
				return hot, true
			}
		}
		return 0, false
	})

	for i := 0; i < 8; i++ {
		src := hosts[i%2]     // both hosts under the ToR
		dst := hosts[8+(i%4)] // remote pod
		if _, err := c.StartFlow(src, dst, uint16(7000+i), 40_000, nil); err != nil {
			t.Fatal(err)
		}
	}
	c.RunAll()

	for i := 0; i < 2; i++ {
		r, err := c.DetectPolarization(tor, pathdump.AllTime, 50.0, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Polarized {
			t.Fatalf("run %d: not flagged, λ=%.1f flows=%v", i, r.Lambda, r.FlowsPerUplink)
		}
		if r.Lambda < 99.0 {
			t.Errorf("λ = %.1f, want ~100 (all flows on one of two uplinks)", r.Lambda)
		}
		if r.FlowsPerUplink[1] != 0 {
			t.Errorf("cold uplink carried %d flows, want 0", r.FlowsPerUplink[1])
		}
		if r.TotalFlows < 8 {
			t.Errorf("observed %d flows, want >= 8", r.TotalFlows)
		}
	}
	assertOneAlarm(t, c, pathdump.ReasonPolarized, 2)

	// The fleet-wide sweep must rank the buggy ToR first.
	ranked, err := c.RankPolarization(c.Topo.ToRs(), pathdump.AllTime, 50.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) == 0 || ranked[0].Switch != tor {
		t.Errorf("sweep did not rank ToR %d first: %+v", tor, ranked)
	}
}

// stageFailoverLoop learns a probe flow's canonical path on c, picks
// the aggregation detour pair on it, and installs the transient
// reconvergence state: both aggs bounce one flow through the surviving
// core until its VLAN stack overflows and the controller concludes
// LOOP. It returns the link whose failure pushes traffic onto the loop
// and a function injecting the looping packet (the caller decides how
// the link fails — FailLink, FlapLink — before injecting).
func stageFailoverLoop(t *testing.T, c *pathdump.Cluster) (failed pathdump.LinkID, inject func()) {
	t.Helper()
	topo := c.Topo
	hosts := c.HostIDs()
	src, dst := hosts[0], hosts[8]

	// Learn the flow's canonical path so the loop can be staged on it.
	probe, err := c.StartFlow(src, dst, 9000, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	paths := c.GetPaths(dst, probe, pathdump.AnyLink, pathdump.AllTime)
	if len(paths) == 0 {
		t.Fatal("probe flow left no trajectory")
	}
	core, aggD := paths[0][2], paths[0][3]
	group := topo.CoreGroup(topo.Switch(core).Index)
	aggOther := topo.AggID(3, group)

	// The failure that triggers reconvergence: aggD loses its *other*
	// core uplink, pushing everything onto the surviving one — where the
	// transient loop then forms.
	var otherCore pathdump.SwitchID
	for _, up := range topo.Switch(aggD).Up {
		if up != core {
			otherCore = up
			break
		}
	}

	// Transient state while routes reconverge: both aggs bounce the flow
	// through the core.
	loopFlow := c.FlowBetween(src, dst, 9001)
	bounce := func(next pathdump.SwitchID) func(*netsim.Packet, []types.SwitchID, netsim.NodeID) (types.SwitchID, bool) {
		return func(pkt *netsim.Packet, _ []types.SwitchID, _ netsim.NodeID) (types.SwitchID, bool) {
			if pkt.Flow == loopFlow {
				return next, true
			}
			return 0, false
		}
	}
	c.Sim.SetNextHopOverride(aggD, bounce(core))
	c.Sim.SetNextHopOverride(aggOther, bounce(core))
	c.Sim.SetNextHopOverride(core, func(pkt *netsim.Packet, _ []types.SwitchID, ingress netsim.NodeID) (types.SwitchID, bool) {
		if pkt.Flow != loopFlow {
			return 0, false
		}
		if ingress == netsim.SwitchNode(aggD) {
			return aggOther, true
		}
		return aggD, true
	})
	return pathdump.LinkID{A: aggD, B: otherCore}, func() {
		if err := c.SendPacket(src, &netsim.Packet{Flow: loopFlow, Size: 100}); err != nil {
			t.Fatal(err)
		}
	}
}

// assertTransientLoop checks the auditor classified exactly one loop as
// failover-transient, correlated with the given link.
func assertTransientLoop(t *testing.T, auditor *apps.TransientLoopAuditor, failed pathdump.LinkID) {
	t.Helper()
	if auditor.Loops() != 1 {
		t.Fatalf("auditor saw %d loops, want 1", auditor.Loops())
	}
	report := auditor.Report()
	if !report[0].NearFailure {
		t.Errorf("loop at %v not correlated with any link failure", report[0].Event.DetectedAt)
	}
	if report[0].FailedLink != failed {
		t.Errorf("correlated link = %v, want %v", report[0].FailedLink, failed)
	}
}

// failoverLoopScenario mirrors examples/failoverloop: a link fails, and
// during the reconvergence window two aggregation switches briefly chase
// each other's detours, looping a packet until the VLAN stack overflows
// and the controller concludes LOOP. The auditor must classify the loop
// as failover-transient — with no NoteLinkFailure call: the auditor is
// wired to the simulator's own link-state events, so FailLink lands on
// the failure timeline by itself.
func failoverLoopScenario(t *testing.T) {
	c := scenarioCluster(t)
	auditor := c.NewTransientLoopAuditor(200 * pathdump.Millisecond)
	failed, inject := stageFailoverLoop(t, c)
	c.FailLink(failed.A, failed.B)
	inject()
	c.RunAll()

	assertTransientLoop(t, auditor, failed)
	assertOneAlarm(t, c, pathdump.ReasonLoop, 1)
}

// flapLoopScenario is failoverLoopScenario with the failure injected by
// FlapLink instead of a single FailLink: the link bounces down/up while
// the loop forms. Every down phase drives FailLink under the hood, so
// the sim's link-state events must carry each transition to the auditor
// and the loop still classifies as failover-transient, again with no
// operator NoteLinkFailure call.
func flapLoopScenario(t *testing.T) {
	c := scenarioCluster(t)
	auditor := c.NewTransientLoopAuditor(200 * pathdump.Millisecond)
	failed, inject := stageFailoverLoop(t, c)
	c.FlapLink(failed.A, failed.B,
		10*pathdump.Millisecond, 10*pathdump.Millisecond, c.Now()+60*pathdump.Millisecond)
	inject()
	c.RunAll()

	assertTransientLoop(t, auditor, failed)
	assertOneAlarm(t, c, pathdump.ReasonLoop, 1)
}

// incastScenario mirrors examples/incast: a partition-aggregate fan-in
// where many workers answer one aggregator in the same instant. The
// receiver's TIB alone must reveal the synchronized arrivals.
func incastScenario(t *testing.T) {
	c := scenarioCluster(t)
	hosts := c.HostIDs()
	receiver := hosts[0]

	const senders = 8
	for i := 0; i < senders; i++ {
		if _, err := c.StartFlow(hosts[i+1], receiver, uint16(30_000+i), 64<<10, nil); err != nil {
			t.Fatal(err)
		}
	}
	c.RunAll()

	for i := 0; i < 2; i++ {
		ev, err := c.DetectIncast(receiver, 50*pathdump.Millisecond, 5, pathdump.AllTime)
		if err != nil {
			t.Fatal(err)
		}
		if ev == nil {
			t.Fatal("no incast detected")
		}
		if ev.Sources < 5 {
			t.Errorf("burst had %d sources, want >= 5", ev.Sources)
		}
		if ev.Bytes == 0 {
			t.Error("burst accounted zero bytes")
		}
		if ev.Window.To-ev.Window.From > 50*pathdump.Millisecond {
			t.Errorf("window %v..%v wider than 50ms", ev.Window.From, ev.Window.To)
		}
	}
	assertOneAlarm(t, c, pathdump.ReasonIncast, 2)
}

// ddosScenario mirrors examples/ddos: a handful of sources flood one
// victim while background traffic trickles. Source ranking plus top-k
// path aggregates must localise the shared upstream switches and raise
// DDOS_SUSPECT.
func ddosScenario(t *testing.T) {
	c := scenarioCluster(t)
	hosts := c.HostIDs()
	victim := hosts[0]
	victimToR := c.Topo.Host(victim).ToR

	attackers := hosts[8:13] // 5 attackers from remote pods
	for i, a := range attackers {
		if _, err := c.StartFlow(a, victim, uint16(40_000+i), 400_000, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Background: one small legitimate flow.
	if _, err := c.StartFlow(hosts[2], victim, 50_000, 10_000, nil); err != nil {
		t.Fatal(err)
	}
	c.RunAll()

	for i := 0; i < 2; i++ {
		loc, err := c.LocalizeDDoS(victim, pathdump.AllTime, 5, 0.8, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !loc.Suspected {
			t.Fatalf("not flagged: share=%.2f sources=%d", loc.TopShare, len(loc.Sources))
		}
		if loc.TopShare < 0.8 {
			t.Errorf("top share = %.2f, want >= 0.8", loc.TopShare)
		}
		if len(loc.Aggregates) == 0 {
			t.Fatal("no per-switch aggregates")
		}
		for _, sb := range loc.Aggregates {
			if sb.Switch == victimToR {
				t.Errorf("victim's own ToR %d in aggregate ranking", victimToR)
			}
		}
		// Every attacker source must outrank the background flow.
		attackIPs := make(map[pathdump.IP]bool)
		for _, a := range attackers {
			attackIPs[c.Topo.Host(a).IP] = true
		}
		for _, s := range loc.Sources {
			if !attackIPs[s.Flow.SrcIP] {
				t.Errorf("non-attacker %v ranked in top sources", s.Flow.SrcIP)
			}
		}
	}
	assertOneAlarm(t, c, pathdump.ReasonDDoS, 2)
}

// flapDuringQueryScenario covers the impairment edge case at the query
// plane: a core link flaps while traffic is in flight, and queries
// issued mid-flap must still answer from every host (partial-but-live
// results, never a hang).
func flapDuringQueryScenario(t *testing.T) {
	c := scenarioCluster(t)
	hosts := c.HostIDs()

	cores := c.Topo.Cores()
	agg := c.Topo.Switch(cores[0]).Down[0]
	c.FlapLink(agg, cores[0], 5*pathdump.Millisecond, 5*pathdump.Millisecond, 200*pathdump.Millisecond)

	for i := 0; i < 6; i++ {
		if _, err := c.StartFlow(hosts[i], hosts[15-i], uint16(6000+i), 100_000, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Advance into the middle of the flap window, then query while the
	// fabric is mid-impairment.
	c.Run(20 * pathdump.Millisecond)
	top, stats, err := c.TopK(3, pathdump.AllTime, nil)
	if err != nil {
		t.Fatalf("query during flap failed: %v", err)
	}
	if stats.Hosts != len(hosts) {
		t.Errorf("query covered %d hosts during flap, want %d", stats.Hosts, len(hosts))
	}
	if len(top) == 0 {
		t.Error("no flow data mid-flap: agents stopped ingesting")
	}
	c.RunAll()
	// After the flap expires every flow must have completed end to end.
	if got := c.Sim.Stats().Delivered; got == 0 {
		t.Error("nothing delivered across the flapping fabric")
	}
}
