// Command experiments regenerates every table and figure of the paper's
// evaluation over the simulated substrate and prints the series the paper
// reports. Run with a figure name, or `all`:
//
//	go run ./cmd/experiments fig5
//	go run ./cmd/experiments -quick all
//
// -quick shrinks durations/run counts for a fast smoke pass; defaults are
// the paper-shaped (but laptop-scaled) parameters documented in
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"pathdump"
	"pathdump/internal/experiments"
)

var quick = flag.Bool("quick", false, "shrink durations and run counts")

var figures = map[string]func(){
	"fig5":    fig5,
	"fig6":    fig6,
	"fig7":    fig7,
	"fig8":    fig8,
	"fig9":    fig9,
	"fig10":   fig10,
	"fig11":   fig11,
	"fig12":   fig12,
	"fig13":   fig13,
	"table2":  table2,
	"storage": storage,
}

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if args[0] == "all" {
		names := make([]string, 0, len(figures))
		for n := range figures {
			names = append(names, n)
		}
		sort.Strings(names)
		args = names
	}
	for _, name := range args {
		fn, ok := figures[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			usage()
			os.Exit(2)
		}
		fmt.Printf("==================== %s ====================\n", name)
		fn()
		fmt.Println()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: experiments [-quick] {fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|table2|storage|all}")
}

func fig5() {
	cfg := experiments.Fig5Config{}
	if *quick {
		cfg.Duration = 20 * pathdump.Second
		cfg.LinkBps = 20e6
	}
	r := experiments.Fig5(cfg)
	fmt.Printf("ECMP load-imbalance diagnosis (§4.2): %d flows generated\n\n", r.Flows)
	fmt.Println("Fig 5(b) — per-window load and imbalance rate λ=(Lmax/L̄−1)·100%:")
	fmt.Println("window_start_s  link1_bytes  link2_bytes  imbalance_pct")
	for _, w := range r.Windows {
		fmt.Printf("%14.0f  %11d  %11d  %13.1f\n",
			w.Start.Seconds(), w.Link1, w.Link2, w.ImbalanceRate)
	}
	fmt.Println("\nFig 5(c) — flow-size CDF per uplink (multi-level query):")
	for _, h := range r.Hists {
		fmt.Printf("link %v:\n", h.Link)
		var total, cum uint64
		for _, b := range h.Bins {
			total += b
		}
		for i, b := range h.Bins {
			if b == 0 {
				continue
			}
			cum += b
			fmt.Printf("  ≤%8d B  cdf=%.3f\n", uint64(i+1)*h.BinBytes, float64(cum)/float64(total))
		}
	}
	big1, small2 := r.SplitQuality(1_000_000)
	fmt.Printf("\nsplit sharpness at 1 MB: link1 ≥1MB-flows=%.2f, link2 <1MB-flows=%.2f\n", big1, small2)
	fmt.Printf("query: %v response over %d hosts, %d wire bytes\n",
		r.QueryStats.ResponseTime, r.QueryStats.Hosts, r.QueryStats.WireBytes)
}

func fig6() {
	cfg := experiments.Fig6Config{}
	if *quick {
		cfg.FlowBytes = 2_000_000
	}
	r := experiments.Fig6(cfg)
	fmt.Println("Packet-spray traffic split of one flow (§4.2, from destination TIB):")
	fmt.Println("\ncase=balanced")
	for i, pb := range r.Balanced {
		fmt.Printf("  path%d %-24s %9.2f MB\n", i+1, pb.Path, float64(pb.Bytes)/1e6)
	}
	fmt.Println("case=imbalanced")
	for i, pb := range r.Imbalanced {
		fmt.Printf("  path%d %-24s %9.2f MB\n", i+1, pb.Path, float64(pb.Bytes)/1e6)
	}
	fmt.Printf("\nspray imbalance rate: balanced=%.1f%%  imbalanced=%.1f%%\n",
		r.BalancedRate, r.ImbalancedRate)
}

func fig7() {
	for _, n := range []int{1, 2, 4} {
		cfg := experiments.Fig7Config{Faulty: n}
		if *quick {
			cfg.Duration = 60 * pathdump.Second
			cfg.Runs = 1
			cfg.LinkBps = 20e6
		}
		r := experiments.Fig7(cfg)
		fmt.Printf("silent-drop localisation, %d faulty interface(s), 1%% loss, 70%% load:\n", n)
		fmt.Println("time_s  signatures  recall  precision")
		for _, p := range r.Points {
			fmt.Printf("%6.0f  %10.1f  %6.2f  %9.2f\n", p.T.Seconds(), p.Signatures, p.Recall, p.Precision)
		}
		if r.TimeTo100 >= 0 {
			fmt.Printf("time to 100%% recall and precision: %v\n\n", r.TimeTo100)
		} else {
			fmt.Println("did not reach 100% within the run")
		}
	}
}

func fig8() {
	base := experiments.Fig7Config{Faulty: 2}
	cfg := experiments.Fig8Config{}
	if *quick {
		base.Duration = 60 * pathdump.Second
		base.Runs = 1
		base.LinkBps = 20e6
		cfg.LossRates = []float64{0.01, 0.04}
		cfg.Loads = []float64{0.3, 0.7}
	}
	cfg.Base = base
	r := experiments.Fig8(cfg)
	fmt.Println("time to 100% recall & precision (2 faulty interfaces):")
	fmt.Println("\n(a) vs loss rate at 70% load:")
	fmt.Println("loss_pct  time_s")
	for i, lr := range r.LossRates {
		fmt.Printf("%8.0f  %s\n", lr*100, fmtConv(r.ByLoss[i]))
	}
	fmt.Println("\n(b) vs network load at 1% loss:")
	fmt.Println("load_pct  time_s")
	for i, ld := range r.Loads {
		fmt.Printf("%8.0f  %s\n", ld*100, fmtConv(r.ByLoad[i]))
	}
	fmt.Println("\nhigher loss or load ⇒ alarms arrive faster ⇒ faster convergence (paper Fig. 8)")
}

func fmtConv(t pathdump.Time) string {
	if t < 0 {
		return ">run"
	}
	return fmt.Sprintf("%.0f", t.Seconds())
}

func fig9() {
	r := experiments.Fig9(experiments.Fig9Config{})
	fmt.Println("routing-loop detection via the 3-tag trap (§4.5):")
	fmt.Println("loop_hops  detected  latency_ms  punt_rounds  repeated_link")
	for _, cse := range []experiments.Fig9Case{r.FourHop, r.SixHop} {
		fmt.Printf("%9d  %8v  %10.1f  %11d  %v\n",
			cse.Hops, cse.Detected, float64(cse.Latency)/1e6, cse.Rounds, cse.Repeated)
	}
	fmt.Println("\npaper: ~47 ms (4-hop), ~115 ms (6-hop, one strip-and-reinject round)")
}

func fig10() {
	cfg := experiments.Fig10Config{}
	if *quick {
		cfg.FlowBytes = 1_500_000
		cfg.Duration = 5 * pathdump.Second
	}
	r := experiments.Fig10(cfg)
	fmt.Println("TCP outcast diagnosis (§4.6): 15 senders → 1 receiver")
	fmt.Println("\nFig 10(a) — per-sender goodput at the receiver:")
	fmt.Println("flow  hops  throughput_mbps")
	for i, s := range r.Diagnosis.Senders {
		marker := ""
		if s.Flow == r.Diagnosis.Victim.Flow {
			marker = "  ← victim"
		}
		fmt.Printf("f%-3d  %4d  %15.2f%s\n", i+1, s.Hops, s.ThroughputBps/1e6, marker)
	}
	fmt.Printf("\nalarm sources: %d, watcher fired: %v\n", r.AlarmSources, r.WatcherFired)
	fmt.Printf("victim is the closest sender (outcast profile): %v\n", r.VictimIsClosest)
	fmt.Printf("diagnosis verdict IsOutcast=%v\n", r.Diagnosis.IsOutcast)
}

func scale(r *experiments.ScaleResult) {
	fmt.Println("hosts  direct_resp_s  tree_resp_s  direct_KB  tree_KB")
	for _, p := range r.Points {
		fmt.Printf("%5d  %13.3f  %11.3f  %9.1f  %7.1f\n",
			p.Hosts,
			p.Direct.ResponseTime.Seconds(), p.Tree.ResponseTime.Seconds(),
			float64(p.Direct.WireBytes)/1e3, float64(p.Tree.WireBytes)/1e3)
	}
}

func fig11() {
	cfg := experiments.ScaleConfig{}
	if *quick {
		cfg.Records = 40_000
	}
	r := experiments.Fig11(cfg)
	fmt.Println("flow-size-distribution query scaling (§5.2, 240K TIB entries/host):")
	scale(r)
	fmt.Println("\npaper Fig 11: direct grows with hosts (serial aggregation); multi-level flattens")
}

func fig12() {
	cfg := experiments.ScaleConfig{}
	if *quick {
		cfg.Records = 40_000
		cfg.K = 2_000
	}
	r := experiments.Fig12(cfg)
	fmt.Println("top-10000 query scaling (§5.2):")
	scale(r)
	fmt.Println("\npaper Fig 12: direct response grows ~linearly to ~7s at 112 hosts; tree stays near-flat")
}

func fig13() {
	cfg := experiments.Fig13Config{}
	if *quick {
		cfg.Packets = 60_000
	}
	r := experiments.Fig13(cfg)
	fmt.Println("edge-datapath forwarding throughput (§5.3): PathDump vs vanilla vSwitch")
	fmt.Println("pkt_bytes  vanilla_mpps  pathdump_mpps  vanilla_gbps  pathdump_gbps  overhead_pct")
	for _, row := range r.Rows {
		fmt.Printf("%9d  %12.2f  %13.2f  %12.2f  %13.2f  %12.1f\n",
			row.Size, row.VanillaMpps, row.PathDumpMpps,
			row.VanillaGbps, row.PathDumpGbps, row.OverheadPct)
	}
	fmt.Println("\npaper Fig 13: ≤4% loss vs vanilla DPDK vSwitch; overhead shrinks as packets grow")
}

func table2() {
	rows := experiments.Table2()
	fmt.Println("application support matrix (paper Table 2, PathDump column):")
	for _, r := range rows {
		mark := "✓"
		if !r.Supported {
			mark = "✗"
		}
		fmt.Printf("%s %-32s %s\n    %s\n", mark, r.Application, r.Description, r.Where)
	}
	s, total := experiments.Table2Score()
	fmt.Printf("\nsupported: %d/%d (%.0f%%) — the paper reports \"more than 85%%\"\n",
		s, total, 100*float64(s)/float64(total))
}

func storage() {
	cfg := experiments.StorageConfig{}
	if *quick {
		cfg.Records = 40_000
	}
	r := experiments.Storage(cfg)
	fmt.Println("per-host storage overheads (§5.3):")
	fmt.Printf("TIB records             %d\n", r.Records)
	fmt.Printf("TIB snapshot size       %.1f MB (%.0f B/record)\n",
		float64(r.SnapshotBytes)/1e6, r.BytesPerRecord)
	fmt.Printf("trajectory memory       %d live records\n", r.MemEntries)
	fmt.Printf("trajectory cache        %d paths\n", r.CacheEntries)
	fmt.Printf("hot-state RAM estimate  %.1f MB\n", float64(r.ApproxRAMBytes)/1e6)
	fmt.Println("\npaper: ~110 MB disk per 240K entries, ~10 MB RAM for the hot state")
}
