package main

import (
	"os"
	"path/filepath"
	"testing"
)

// lintSrc writes src as a package file in a fresh dir and lints it.
func lintSrc(t *testing.T, src string) int {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := lintDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestLintFindsMissingAndMisnamedDocs(t *testing.T) {
	n := lintSrc(t, `package x

func Exported() {}

// Wrong opener.
type Thing struct{}

// MaxDepth is documented.
const MaxDepth = 3

var Undocumented = 1

type hidden struct{}

func (hidden) Method() {}

func unexported() {}
`)
	// Exported (no doc), Thing (doc not naming it), Undocumented (no
	// doc). hidden's method and the unexported func are godoc-invisible.
	if n != 3 {
		t.Fatalf("lint found %d issues, want 3", n)
	}
}

func TestLintAcceptsDocumentedSurface(t *testing.T) {
	n := lintSrc(t, `package x

// Exported does a thing.
func Exported() {}

// A Thing holds state; the article opener is godoc-conventional.
type Thing struct{}

// Exported limits.
const (
	MaxDepth = 3
	MaxWidth = 4
)

// Method is documented.
func (Thing) Method() {}
`)
	if n != 0 {
		t.Fatalf("lint flagged a documented surface: %d issues", n)
	}
}
