// Command lintcomments fails when an exported declaration lacks a doc
// comment, or has one that does not start with the declared name the
// way godoc renders it. It is the repo's own narrow take on the classic
// golint rule — no dependencies, checked in CI so the public surface of
// the core packages stays documented as it grows.
//
//	lintcomments ./internal/tib ./internal/rpc .
//
// Each argument is a directory containing one package; files ending in
// _test.go are skipped. Exit status 1 when any finding is printed.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lintcomments dir [dir...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	findings := 0
	for _, dir := range flag.Args() {
		n, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lintcomments: %v\n", err)
			os.Exit(2)
		}
		findings += n
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "lintcomments: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// lintDir parses one directory's package (tests excluded) and reports
// findings to stdout, returning how many it printed.
func lintDir(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	findings := 0
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		fmt.Printf("%s:%d: %s\n", filepath.ToSlash(p.Filename), p.Line, fmt.Sprintf(format, args...))
		findings++
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				lintDecl(decl, report)
			}
		}
	}
	return findings, nil
}

// lintDecl checks one top-level declaration.
func lintDecl(decl ast.Decl, report func(token.Pos, string, ...any)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedRecv(d.Recv) {
			return
		}
		checkDoc(d.Doc, d.Name.Name, "func", d.Pos(), report)
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if !sp.Name.IsExported() {
					continue
				}
				// A doc comment may sit on the group or the spec.
				doc := sp.Doc
				if doc == nil && len(d.Specs) == 1 {
					doc = d.Doc
				}
				checkDoc(doc, sp.Name.Name, "type", sp.Pos(), report)
			case *ast.ValueSpec:
				var exported []string
				for _, name := range sp.Names {
					if name.IsExported() {
						exported = append(exported, name.Name)
					}
				}
				if len(exported) == 0 {
					continue
				}
				doc := sp.Doc
				if doc == nil {
					doc = d.Doc // grouped const/var blocks may share one comment
				}
				if doc == nil {
					report(sp.Pos(), "exported %s %s lacks a doc comment", declKind(d.Tok), strings.Join(exported, ", "))
				}
			}
		}
	}
}

// exportedRecv reports whether a method's receiver type is exported
// (true for plain functions); godoc only renders methods of exported
// types, so those are the only ones held to the doc rule.
func exportedRecv(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return true
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// declKind names a const/var declaration for findings.
func declKind(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// checkDoc reports a missing doc comment, or one that does not mention
// the declared name in its first sentence (the godoc convention, loose
// enough to allow "A Store ..." openers).
func checkDoc(doc *ast.CommentGroup, name, kind string, pos token.Pos, report func(token.Pos, string, ...any)) {
	if doc == nil || strings.TrimSpace(doc.Text()) == "" {
		report(pos, "exported %s %s lacks a doc comment", kind, name)
		return
	}
	first := strings.TrimSpace(doc.Text())
	if i := strings.IndexAny(first, ".\n"); i > 0 {
		first = first[:i]
	}
	if !strings.Contains(first, name) {
		report(pos, "doc comment for %s %s should mention %q in its first sentence", kind, name, name)
	}
}
