// Command pathdumpd runs one PathDump host agent as an HTTP daemon — the
// real-deployment analogue of the paper's Flask server stack. It serves
// the host API (query/install/uninstall) for one host's TIB, either
// loaded from a snapshot or populated by an embedded demo workload.
//
//	# serve host 12 of a 4-ary fat-tree with demo traffic, on :8412
//	pathdumpd -host 12 -listen :8412 -demo
//
//	# serve several co-located hosts from one daemon, with the batched
//	# /batchquery endpoint the controller's fan-out collapses into
//	pathdumpd -hosts 0,1,2,3 -listen :8400 -demo
//
//	# serve a TIB snapshot produced elsewhere
//	pathdumpd -host 3 -listen :8403 -tib host3.gob
//
// Query it with pathdumpctl or plain curl:
//
//	curl -s localhost:8412/query -d '{"query":{"op":"topk","k":5}}'
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"pathdump"
	"pathdump/internal/agent"
	"pathdump/internal/netsim"
	"pathdump/internal/obs"
	"pathdump/internal/query"
	"pathdump/internal/rpc"
	"pathdump/internal/tib"
	"pathdump/internal/types"
	"pathdump/internal/workload"
)

// drainTimeout bounds graceful shutdown: in-flight requests get this long
// to finish after SIGINT/SIGTERM before the daemon exits anyway.
const drainTimeout = 5 * time.Second

func main() {
	var (
		listen   = flag.String("listen", ":8400", "HTTP listen address")
		hostID   = flag.Uint("host", 0, "host ID within the topology")
		hostIDs  = flag.String("hosts", "", "comma-separated host IDs to serve from one multi-agent daemon (overrides -host)")
		arity    = flag.Int("k", 4, "fat-tree arity of the ground-truth topology")
		parallel = flag.Int("parallel", 0, "max concurrent per-host executions of a /batchquery (0 = unlimited)")
		timeout  = flag.Duration("timeout", 0, "per-request deadline (0 = none): the request context is cancelled at the deadline, aborting TIB scans and batch fan-outs mid-flight")
		tibPath  = flag.String("tib", "", "TIB snapshot to load (v2 segment-wise or legacy v1 gob; single-host mode only)")
		segSpan  = flag.Duration("segment-span", 0, "seal a TIB segment once it covers this much virtual time (0 = seal by record count; default retention/8 when -retention is set)")
		retain   = flag.Duration("retention", 0, "TIB retention: whole sealed segments older than this (virtual time) are evicted as records arrive — the paper's fixed per-host storage budget (0 = keep everything)")
		retainB  = flag.Int64("retention-bytes", 0, "TIB byte budget: once the store's estimated footprint exceeds this, the oldest sealed segments are evicted until it fits — §5.3's fixed MB-per-host budget (0 = no byte budget)")
		coldDir  = flag.String("cold-dir", "", "cold-tier directory: sealed TIB segments older than -cold-after spill to self-contained files here and are demand-loaded if a query still needs them (empty = cold tier off)")
		coldAge  = flag.Duration("cold-after", 0, "age (virtual time) at which a sealed segment moves to the cold tier (default retention/2 when -retention is set; requires -cold-dir)")
		compactB = flag.Int("compact-below", 0, "background compaction: adjacent sealed segments smaller than this many records are merged back toward the seal size as records arrive (0 = off)")
		demo     = flag.Bool("demo", false, "populate the TIB with a simulated demo workload")
		alarmURL = flag.String("controller", "", "controller URL for alarms (optional)")
		trigger  = flag.Duration("trigger-every", 200*time.Millisecond, "how often the daemon advances its virtual clock so installed (periodic) queries actually fire while serving; 0 freezes time after startup (installed queries then never run)")
		slowHost = flag.Int("slow-host", -1, "fault injection: queries at this served host stall for -slow-delay before answering (e2e straggler testing)")
		slowDly  = flag.Duration("slow-delay", 30*time.Second, "how long the injected-slow host stalls (the stall honours the request context)")
		slowOnce = flag.Bool("slow-first-only", false, "only the first query at -slow-host stalls; later ones (e.g. a hedged retry) answer at full speed")
		impair   = flag.String("impair", "", "fault injection: semicolon-separated link impairments applied before the demo workload runs, each 'A-B:knob[,knob...]' with directed switch IDs and tc-style knobs loss=P (drop probability), rate=BPS (throttle; 0 kills the link's bandwidth), delay=DUR (added one-way latency), down (administratively down) — e.g. '0-8:loss=1;0-9:loss=1'")
		poorFlow = flag.Bool("inject-poor-flow", false, "fault injection: register one wedged TCP flow at the lowest served host so an installed poor_tcp monitor deterministically raises POOR_PERF every period (e2e alarm-path testing)")
		jsonOnly = flag.Bool("json-only", false, "speak JSON only: answer every query in JSON even when the client offers the binary wire encoding, and reject wire-encoded request bodies with 415 (clients retry those as JSON) — stands in for a daemon predating the wire protocol in mixed-version testing")
		wireComp = flag.Bool("wire-compress", false, "flate-compress binary wire responses (trades CPU for bytes on slow links)")
		maxBody  = flag.Int64("max-body", 0, "per-request body cap in bytes; oversized requests answer 413 (0 = the 16 MiB default)")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (opt-in: profiling endpoints stay off by default)")
		opsEvery = flag.Duration("ops-log-every", 0, "periodically log an operational summary — served TIB records plus alarm forwarding health (forwarded, failed, dropped) — at this interval (0 = off)")
	)
	flag.Parse()

	// The metrics registry backs GET /metrics on every serving mode; the
	// agent and rpc planes register below as they are wired.
	reg := obs.NewRegistry()
	srvObs := &rpc.ServerObs{Registry: reg, EnablePprof: *pprofOn}

	c, err := pathdump.NewFatTree(*arity, pathdump.Config{Agent: pathdump.AgentConfig{
		SegmentSpan:    pathdump.Time(segSpan.Nanoseconds()),
		Retention:      pathdump.Time(retain.Nanoseconds()),
		RetentionBytes: *retainB,
		ColdDir:        *coldDir,
		ColdAfter:      pathdump.Time(coldAge.Nanoseconds()),
		CompactBelow:   *compactB,
	}})
	if err != nil {
		log.Fatalf("pathdumpd: %v", err)
	}

	served := make(map[types.HostID]*agent.Agent)
	if *hostIDs != "" {
		for _, part := range strings.Split(*hostIDs, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				log.Fatalf("pathdumpd: bad -hosts entry %q: %v", part, err)
			}
			a, ok := c.Agents[pathdump.HostID(n)]
			if !ok {
				log.Fatalf("pathdumpd: host %d not in a %d-ary fat tree (%d hosts)",
					n, *arity, len(c.Agents))
			}
			served[pathdump.HostID(n)] = a
		}
	} else {
		a, ok := c.Agents[pathdump.HostID(*hostID)]
		if !ok {
			log.Fatalf("pathdumpd: host %d not in a %d-ary fat tree (%d hosts)",
				*hostID, *arity, len(c.Agents))
		}
		served[pathdump.HostID(*hostID)] = a
	}

	if *impair != "" {
		n, err := applyImpairments(c, *impair)
		if err != nil {
			log.Fatalf("pathdumpd: %v", err)
		}
		log.Printf("pathdumpd: %d link impairments injected (%s)", n, *impair)
	}

	// The daemon's lifetime context: SIGINT/SIGTERM cancels it, which
	// drains the HTTP server and cuts off in-flight alarm forwarding. The
	// first signal starts the graceful drain; restoring the default
	// disposition right then lets a second signal force-kill a hung one.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	// Alarm-forwarding telemetry: outcome counters plus the client's own
	// drop counter, surfaced on /metrics and in the periodic ops log so
	// alarm loss is visible instead of silent.
	var (
		alarmsForwarded atomic.Uint64
		alarmsFailed    atomic.Uint64
		alarmsDropped   = func() uint64 { return 0 }
	)
	if *alarmURL != "" {
		// Alarms raised at the in-process controller (the agents' sink) —
		// including ones fired while the demo workload below runs — are
		// forwarded to the remote controller under the daemon's lifetime
		// context plus a per-POST timeout: a wedged controller costs a
		// bounded goroutine, never a leaked one.
		ac := &rpc.AlarmClient{URL: strings.TrimSuffix(*alarmURL, "/")}
		alarmsDropped = ac.Dropped
		reg.GaugeFunc("pathdump_alarm_forward_dropped", "Alarms the forwarding client abandoned (cumulative).",
			func() float64 { return float64(ac.Dropped()) })
		fwdOK := reg.Counter("pathdump_alarm_forwards_total", "Alarm forwards to the remote controller, by outcome.", obs.L("result", "ok"))
		fwdErr := reg.Counter("pathdump_alarm_forwards_total", "Alarm forwards to the remote controller, by outcome.", obs.L("result", "error"))
		c.Ctrl.SetAlarmContext(ctx)
		c.OnAlarm(func(a pathdump.Alarm) {
			go func() {
				fctx, cancel := context.WithTimeout(ctx, rpc.DefaultAlarmTimeout)
				defer cancel()
				if err := ac.RaiseAlarmContext(fctx, a); err != nil {
					alarmsFailed.Add(1)
					fwdErr.Inc()
					if ctx.Err() == nil {
						log.Printf("pathdumpd: alarm forward failed (%d dropped so far): %v", ac.Dropped(), err)
					}
					return
				}
				alarmsForwarded.Add(1)
				fwdOK.Inc()
			}()
		})
		log.Printf("pathdumpd: forwarding alarms to %s", *alarmURL)
	}

	switch {
	case *tibPath != "":
		if len(served) != 1 || *hostIDs != "" {
			log.Fatal("pathdumpd: -tib requires single-host mode (-host)")
		}
		// A snapshot has no live agent behind it: serve it as a bare
		// store so ops needing agent runtime (poor_tcp) answer 501
		// instead of a silently empty result.
		store := tib.NewStore()
		f, err := os.Open(*tibPath)
		if err != nil {
			log.Fatalf("pathdumpd: %v", err)
		}
		if err := store.LoadSnapshot(f); err != nil {
			log.Fatalf("pathdumpd: loading %s: %v", *tibPath, err)
		}
		f.Close()
		srvObs.Health = func() rpc.HealthStatus {
			return rpc.HealthStatus{Status: "ok", Hosts: 1, Records: store.Len(), Snapshot: "restored"}
		}
		srv := &rpc.AgentServer{T: rpc.SnapshotTarget{Store: store}, MaxBodyBytes: *maxBody, DisableWire: *jsonOnly, WireCompress: *wireComp, Obs: srvObs}
		log.Printf("pathdumpd: snapshot %s serving on %s, %d TIB records in %d segments",
			*tibPath, *listen, store.Len(), store.Segments())
		fmt.Println("endpoints: POST /query /install /uninstall, GET /stats /snapshot /healthz /metrics")
		if err := serve(ctx, *listen, srv.Handler(), *timeout); err != nil {
			log.Fatal(err)
		}
		return
	case *demo:
		hosts := c.HostIDs()
		gen, err := workload.NewGenerator(c.Sim, c.Stacks, workload.GenConfig{
			Sources: hosts, Dests: hosts,
			Load: 0.3, LinkBps: 100e6,
			Dist:  workload.WebSearch(),
			Until: 20 * pathdump.Second,
		})
		if err != nil {
			log.Fatalf("pathdumpd: %v", err)
		}
		gen.Start()
		c.Run(30 * pathdump.Second)
		records := 0
		for _, a := range served {
			records += a.Store.Len()
		}
		log.Printf("pathdumpd: demo workload ran %d flows; served TIBs hold %d records",
			gen.Started, records)
	}

	if *poorFlow {
		// One wedged flow at the lowest served host: its sender never
		// progresses and sits at a high consecutive-retransmission count,
		// so an installed TCP monitor reports it on every periodic run —
		// the deterministic driver for the e2e alarm-dedup scenario.
		low := types.HostID(0)
		first := true
		for id := range served {
			if first || id < low {
				low, first = id, false
			}
		}
		f := types.FlowID{
			SrcIP: c.HostIP(low), DstIP: c.HostIP(low) + 1,
			SrcPort: 55555, DstPort: 80, Proto: types.ProtoTCP,
		}
		c.Stacks[low].InjectPoorFlow(f, 100)
		log.Printf("pathdumpd: host %v injected poor flow %v", low, f)
	}

	// The trigger pump maps wall time onto the simulator's virtual clock
	// while the daemon serves, so installed (periodic) queries — the
	// continuous-monitoring plane — actually fire on a live daemon
	// instead of being frozen at startup time. The pump and the
	// install/uninstall handlers share simMu: both mutate the simulator's
	// timer heap. Query execution needs no lock — the TIB store and
	// trajectory memory are safe for concurrent readers while the pump's
	// events append.
	var simMu sync.Mutex

	// Agent-plane metrics for every served host. The agent's plain
	// counters are written on the sim goroutine, so scrape-time reads go
	// through simMu — the same lock the trigger pump steps under.
	for _, a := range served {
		a.RegisterMetrics(reg, &simMu)
	}

	if *opsEvery > 0 {
		go func() {
			tick := time.NewTicker(*opsEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					records := 0
					for _, a := range served {
						records += a.Store.Len()
					}
					log.Printf("pathdumpd: ops: %d hosts, %d TIB records; alarms forwarded=%d failed=%d dropped=%d",
						len(served), records, alarmsForwarded.Load(), alarmsFailed.Load(), alarmsDropped())
				}
			}
		}()
	}

	if *trigger > 0 {
		go func() {
			tick := time.NewTicker(*trigger)
			defer tick.Stop()
			last := time.Now()
			for {
				select {
				case <-ctx.Done():
					return
				case now := <-tick.C:
					d := pathdump.Time(now.Sub(last).Nanoseconds())
					last = now
					simMu.Lock()
					c.Run(c.Now() + d)
					simMu.Unlock()
				}
			}
		}()
	}

	// The slow-host wrapper goes outside the lock wrapper: an injected
	// stall must hold the straggling request's goroutine, never simMu —
	// otherwise one wedged query would freeze the trigger pump and every
	// install for the stall's duration.
	target := func(id types.HostID, a *agent.Agent) rpc.Target {
		var t fullTarget = lockedTarget{t: a, mu: &simMu}
		if *slowHost >= 0 && types.HostID(*slowHost) == id {
			log.Printf("pathdumpd: host %v injected slow (%v, first-only=%v)", id, *slowDly, *slowOnce)
			t = &slowTarget{fullTarget: t, delay: *slowDly, once: *slowOnce}
		}
		return t
	}

	var handler http.Handler
	if len(served) == 1 && *hostIDs == "" {
		for id, a := range served {
			handler = (&rpc.AgentServer{T: target(id, a), MaxBodyBytes: *maxBody, DisableWire: *jsonOnly, WireCompress: *wireComp, Obs: srvObs}).Handler()
			log.Printf("pathdumpd: host %v (%v) serving on %s, %d TIB records in %d segments",
				a.Host.ID, a.Host.IP, *listen, a.Store.Len(), a.Store.Segments())
		}
		fmt.Println("endpoints: POST /query /install /uninstall, GET /stats /snapshot /healthz /metrics")
	} else {
		targets := make(map[types.HostID]rpc.Target, len(served))
		for id, a := range served {
			targets[id] = target(id, a)
		}
		handler = (&rpc.MultiAgentServer{Targets: targets, Parallelism: *parallel, MaxBodyBytes: *maxBody, DisableWire: *jsonOnly, WireCompress: *wireComp, Obs: srvObs}).Handler()
		log.Printf("pathdumpd: %d hosts serving on %s", len(served), *listen)
		fmt.Println("endpoints: POST /query /batchquery /install /uninstall, GET /stats /snapshot?host=N /healthz /metrics")
	}
	if err := serve(ctx, *listen, handler, *timeout); err != nil {
		log.Fatal(err)
	}
}

// applyImpairments parses and installs a -impair spec: semicolon-
// separated clauses of the form "A-B:loss=0.5,rate=1e6,delay=5ms,down"
// naming a directed switch pair and its netsim.Impairment knobs. A
// rate of 0 maps to the zero-bandwidth sentinel (RateBps < 0): packets
// drop but the fabric stays live — "rate 0bit" in tc terms.
func applyImpairments(c *pathdump.Cluster, spec string) (int, error) {
	n := 0
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		head, opts, ok := strings.Cut(clause, ":")
		if !ok {
			return n, fmt.Errorf("impairment %q: want A-B:knob[,knob...]", clause)
		}
		as, bs, ok := strings.Cut(head, "-")
		if !ok {
			return n, fmt.Errorf("impairment %q: link must be A-B", clause)
		}
		a, errA := strconv.Atoi(strings.TrimSpace(as))
		b, errB := strconv.Atoi(strings.TrimSpace(bs))
		if errA != nil || errB != nil {
			return n, fmt.Errorf("impairment %q: switch IDs must be integers", clause)
		}
		var im netsim.Impairment
		for _, opt := range strings.Split(opts, ",") {
			key, val, _ := strings.Cut(strings.TrimSpace(opt), "=")
			var err error
			switch key {
			case "loss":
				if im.Loss, err = strconv.ParseFloat(val, 64); err != nil || im.Loss < 0 || im.Loss > 1 {
					return n, fmt.Errorf("impairment %q: loss must be a probability in [0,1]", clause)
				}
			case "rate":
				bps, err := strconv.ParseFloat(val, 64)
				if err != nil || bps < 0 {
					return n, fmt.Errorf("impairment %q: rate must be a non-negative bps value", clause)
				}
				if bps == 0 {
					im.RateBps = -1
				} else {
					im.RateBps = int64(bps)
				}
			case "delay":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return n, fmt.Errorf("impairment %q: delay must be a non-negative duration", clause)
				}
				im.Delay = pathdump.Time(d.Nanoseconds())
			case "down":
				im.Down = true
			default:
				return n, fmt.Errorf("impairment %q: unknown knob %q", clause, key)
			}
		}
		c.SetImpairment(pathdump.SwitchID(a), pathdump.SwitchID(b), im)
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("impairment spec %q: no clauses", spec)
	}
	return n, nil
}

// fullTarget is the agent-backed surface the daemon serves: the base
// Target plus every optional extension *agent.Agent provides.
type fullTarget interface {
	rpc.Target
	rpc.ContextTarget
	rpc.SegmentStatser
	rpc.ColdStatser
	rpc.Snapshotter
	rpc.IncrementalSnapshotter
}

// lockedTarget serialises against the trigger pump's sim.Run everything
// that touches unsynchronised shared state: the control-plane mutations
// (install/uninstall register and cancel timers on the shared
// simulator) and poor_tcp queries (the TCP stack has no lock of its
// own, and PoorFlows advances per-sender scan state that the pump's
// installed monitor also advances). TIB/trajectory-memory queries pass
// straight through — those structures are safe for concurrent readers
// while the pump's events append.
type lockedTarget struct {
	t  fullTarget
	mu *sync.Mutex
}

func (l lockedTarget) Execute(q query.Query) query.Result {
	if q.Op == query.OpPoorTCP {
		l.mu.Lock()
		defer l.mu.Unlock()
	}
	return l.t.Execute(q)
}
func (l lockedTarget) ExecuteContext(ctx context.Context, q query.Query) (query.Result, error) {
	if q.Op == query.OpPoorTCP {
		l.mu.Lock()
		defer l.mu.Unlock()
	}
	return l.t.ExecuteContext(ctx, q)
}
func (l lockedTarget) Install(q query.Query, period types.Time) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.t.Install(q, period)
}
func (l lockedTarget) Uninstall(id int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.t.Uninstall(id)
}
func (l lockedTarget) TIBSize() int                    { return l.t.TIBSize() }
func (l lockedTarget) SegmentStats() (uint64, uint64)  { return l.t.SegmentStats() }
func (l lockedTarget) ColdStats() tib.ColdStats        { return l.t.ColdStats() }
func (l lockedTarget) WriteSnapshot(w io.Writer) error { return l.t.WriteSnapshot(w) }
func (l lockedTarget) WriteSnapshotSince(w io.Writer, since uint64) error {
	return l.t.WriteSnapshotSince(w, since)
}

// slowTarget injects a stall into one served host's query path so e2e
// runs can exercise hedging and partial results against real binaries.
// The stall honours the request context: a hung-up or deadline-expired
// caller releases the handler immediately.
type slowTarget struct {
	fullTarget
	delay time.Duration
	once  bool
	hit   atomic.Bool
}

func (s *slowTarget) stall(ctx context.Context) error {
	if s.once && s.hit.Swap(true) {
		return nil
	}
	t := time.NewTimer(s.delay)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ExecuteContext implements rpc.ContextTarget — the path the servers
// prefer — so the stall is both injected and cancellable.
func (s *slowTarget) ExecuteContext(ctx context.Context, q query.Query) (query.Result, error) {
	if err := s.stall(ctx); err != nil {
		return query.Result{}, err
	}
	return s.fullTarget.ExecuteContext(ctx, q)
}

// serve runs the daemon with per-request deadlines and a graceful
// shutdown path: reqTimeout > 0 cancels each request's context at the
// deadline (aborting agent-side TIB scans mid-merge and answering 503),
// and cancelling ctx (SIGINT/SIGTERM) drains in-flight requests for up
// to drainTimeout before the listener closes.
func serve(ctx context.Context, listen string, h http.Handler, reqTimeout time.Duration) error {
	if reqTimeout > 0 {
		h = http.TimeoutHandler(h, reqTimeout, "pathdumpd: request deadline exceeded")
	}
	srv := &http.Server{Addr: listen, Handler: h}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		log.Printf("pathdumpd: shutting down, draining in-flight requests for up to %v", drainTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return err
		}
		log.Print("pathdumpd: drained cleanly")
		return nil
	}
}
