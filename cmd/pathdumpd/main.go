// Command pathdumpd runs one PathDump host agent as an HTTP daemon — the
// real-deployment analogue of the paper's Flask server stack. It serves
// the host API (query/install/uninstall) for one host's TIB, either
// loaded from a snapshot or populated by an embedded demo workload.
//
//	# serve host 12 of a 4-ary fat-tree with demo traffic, on :8412
//	pathdumpd -host 12 -listen :8412 -demo
//
//	# serve a TIB snapshot produced elsewhere
//	pathdumpd -host 3 -listen :8403 -tib host3.gob
//
// Query it with pathdumpctl or plain curl:
//
//	curl -s localhost:8412/query -d '{"query":{"op":"topk","k":5}}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"pathdump"
	"pathdump/internal/rpc"
	"pathdump/internal/workload"
)

func main() {
	var (
		listen   = flag.String("listen", ":8400", "HTTP listen address")
		hostID   = flag.Uint("host", 0, "host ID within the topology")
		arity    = flag.Int("k", 4, "fat-tree arity of the ground-truth topology")
		tibPath  = flag.String("tib", "", "TIB snapshot to load (gob)")
		demo     = flag.Bool("demo", false, "populate the TIB with a simulated demo workload")
		alarmURL = flag.String("controller", "", "controller URL for alarms (optional)")
	)
	flag.Parse()

	c, err := pathdump.NewFatTree(*arity, pathdump.Config{})
	if err != nil {
		log.Fatalf("pathdumpd: %v", err)
	}
	agent, ok := c.Agents[pathdump.HostID(*hostID)]
	if !ok {
		log.Fatalf("pathdumpd: host %d not in a %d-ary fat tree (%d hosts)",
			*hostID, *arity, len(c.Agents))
	}

	switch {
	case *tibPath != "":
		f, err := os.Open(*tibPath)
		if err != nil {
			log.Fatalf("pathdumpd: %v", err)
		}
		if err := agent.Store.LoadSnapshot(f); err != nil {
			log.Fatalf("pathdumpd: loading %s: %v", *tibPath, err)
		}
		f.Close()
	case *demo:
		hosts := c.HostIDs()
		gen, err := workload.NewGenerator(c.Sim, c.Stacks, workload.GenConfig{
			Sources: hosts, Dests: hosts,
			Load: 0.3, LinkBps: 100e6,
			Dist:  workload.WebSearch(),
			Until: 20 * pathdump.Second,
		})
		if err != nil {
			log.Fatalf("pathdumpd: %v", err)
		}
		gen.Start()
		c.Run(30 * pathdump.Second)
		log.Printf("pathdumpd: demo workload ran %d flows; TIB has %d records",
			gen.Started, agent.Store.Len())
	}

	if *alarmURL != "" {
		// Future alarms from installed monitors go to the controller.
		_ = rpc.AlarmClient{URL: *alarmURL}
	}

	srv := &rpc.AgentServer{T: agent}
	log.Printf("pathdumpd: host %v (%v) serving on %s, %d TIB records",
		agent.Host.ID, agent.Host.IP, *listen, agent.Store.Len())
	fmt.Println("endpoints: POST /query /install /uninstall, GET /stats")
	log.Fatal(http.ListenAndServe(*listen, srv.Handler()))
}
