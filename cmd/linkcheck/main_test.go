package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeFile creates path (with parents) holding content.
func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFileFindsBrokenTargets(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "docs", "real.md"), "# Real Heading\n\nbody\n")
	writeFile(t, filepath.Join(dir, "index.md"), `
[good](docs/real.md)
[good anchor](docs/real.md#real-heading)
[bad file](docs/missing.md)
[bad anchor](docs/real.md#no-such-heading)
[external](https://example.com/x)
`)
	n, err := checkFile(filepath.Join(dir, "index.md"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("checkFile found %d issues, want 2 (missing file, missing anchor)", n)
	}
}

func TestCheckFileAcceptsSelfFragmentsAndImages(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "pic.png"), "not-really-a-png")
	writeFile(t, filepath.Join(dir, "page.md"), `
# Alpha & Beta

[self](#alpha--beta)
![shot](pic.png)
`)
	n, err := checkFile(filepath.Join(dir, "page.md"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("checkFile flagged a clean file: %d issues", n)
	}
}
