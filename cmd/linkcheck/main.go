// Command linkcheck verifies the repo's markdown cross-references: every
// relative link and image in the given files must resolve to a file or
// directory on disk, and fragment links into a markdown file must match
// one of its headings. External (scheme-qualified) links are not
// fetched — CI must not depend on the network — only checked for
// obvious malformation.
//
//	linkcheck README.md docs/*.md
//
// Exit status 1 when any finding is printed.
package main

import (
	"flag"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links and images: [text](target).
// Reference-style links are rare in this repo and out of scope.
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// headingRE matches ATX headings for fragment resolution.
var headingRE = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*#*\s*$`)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: linkcheck file.md [file.md...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	findings := 0
	for _, file := range flag.Args() {
		n, err := checkFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		findings += n
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// checkFile reports broken links in one markdown file.
func checkFile(file string) (int, error) {
	raw, err := os.ReadFile(file)
	if err != nil {
		return 0, err
	}
	findings := 0
	report := func(line int, format string, args ...any) {
		fmt.Printf("%s:%d: %s\n", filepath.ToSlash(file), line, fmt.Sprintf(format, args...))
		findings++
	}
	for i, text := range strings.Split(string(raw), "\n") {
		for _, m := range linkRE.FindAllStringSubmatch(text, -1) {
			checkLink(file, m[1], i+1, report)
		}
	}
	return findings, nil
}

// checkLink resolves one link target relative to the file holding it.
func checkLink(file, target string, line int, report func(int, string, ...any)) {
	u, err := url.Parse(target)
	if err != nil {
		report(line, "unparseable link %q: %v", target, err)
		return
	}
	if u.Scheme != "" {
		if u.Host == "" {
			report(line, "scheme link %q has no host", target)
		}
		return // external: not fetched in CI
	}
	path, frag := u.Path, u.Fragment
	dest := file
	if path != "" {
		dest = filepath.Join(filepath.Dir(file), filepath.FromSlash(path))
		if _, err := os.Stat(dest); err != nil {
			report(line, "broken link %q: %s does not exist", target, filepath.ToSlash(dest))
			return
		}
	}
	if frag == "" {
		return
	}
	if !strings.HasSuffix(dest, ".md") {
		return // fragments into non-markdown (e.g. source) are tool-defined
	}
	ok, err := hasAnchor(dest, frag)
	if err != nil {
		report(line, "link %q: %v", target, err)
		return
	}
	if !ok {
		report(line, "link %q: no heading matches #%s in %s", target, frag, filepath.ToSlash(dest))
	}
}

// hasAnchor reports whether a markdown file has a heading whose GitHub
// anchor matches frag.
func hasAnchor(file, frag string) (bool, error) {
	raw, err := os.ReadFile(file)
	if err != nil {
		return false, err
	}
	for _, m := range headingRE.FindAllStringSubmatch(string(raw), -1) {
		if anchorOf(m[1]) == strings.ToLower(frag) {
			return true, nil
		}
	}
	return false, nil
}

// anchorOf derives the GitHub-style anchor for a heading: lowercase,
// spaces to dashes, punctuation dropped.
func anchorOf(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(heading)) {
		switch {
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') || r > 127:
			b.WriteRune(r)
		}
	}
	return b.String()
}
