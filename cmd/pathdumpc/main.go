// Command pathdumpc runs the PathDump controller's alarm plane as an
// HTTP daemon — the aggregation point of the continuous-monitoring path
// (§2.1's Alarm() sink, Figure 3's event-driven debugging). Agents (or
// pathdumpd daemons started with -controller) POST alarms to it; the
// built-in pipeline deduplicates repeated firings, rate-limits storms,
// and keeps a bounded history that operators query or tail:
//
//	# run the controller, folding repeats within 30s, at most 100 new alarms/s
//	pathdumpc -listen :8500 -suppress 30s -rate 100
//
//	# point daemons at it
//	pathdumpd -hosts 0,1 -listen :8400 -controller http://localhost:8500
//
//	# query history / tail the live feed
//	pathdumpctl -controller http://localhost:8500 -alarms -reason POOR_PERF
//	pathdumpctl -controller http://localhost:8500 -watch
//
// Endpoints: POST /alarm (ingest), GET /alarms (filterable bounded
// history), GET /alarms/stream (live SSE feed).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pathdump/internal/alarms"
	"pathdump/internal/controller"
	"pathdump/internal/obs"
	"pathdump/internal/rpc"
	"pathdump/internal/topology"
	"pathdump/internal/types"
)

// drainTimeout bounds graceful shutdown, mirroring pathdumpd.
const drainTimeout = 5 * time.Second

func main() {
	var (
		listen   = flag.String("listen", ":8500", "HTTP listen address")
		arity    = flag.Int("k", 4, "fat-tree arity of the ground-truth topology")
		history  = flag.Int("alarm-history", alarms.DefaultHistory, "bounded alarm history depth (ring buffer; oldest entries fall off)")
		suppress = flag.Duration("suppress", 0, "dedup window: repeats of one (host, flow, reason) within this window fold into a single history entry (0 = keep every firing distinct)")
		rate     = flag.Float64("rate", 0, "token-bucket cap on distinct new alarms per second (0 = unlimited; suppressed repeats are never charged)")
		burst    = flag.Int("burst", 0, "token-bucket depth for -rate (default ≈ rate)")
		verbose  = flag.Bool("log-alarms", false, "log each admitted alarm to stderr")
		maxBody  = flag.Int64("max-body", 0, "per-request body cap in bytes; oversized alarm posts answer 413 (0 = the 16 MiB default)")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (opt-in: profiling endpoints stay off by default)")
		slowQ    = flag.Duration("slow-query", 0, "slow-query threshold: executions slower than this land in the bounded slow-query log served at GET /slowlog (0 = log nothing)")
	)
	flag.Parse()

	topo, err := topology.FatTree(*arity)
	if err != nil {
		log.Fatalf("pathdumpc: %v", err)
	}
	ctrl := controller.New(topo, &rpc.HTTPTransport{}, nil)
	ctrl.SetAlarmPolicy(alarms.Config{
		History:  *history,
		Suppress: *suppress,
		Rate:     *rate,
		Burst:    *burst,
	})
	ctrl.SlowQueryThreshold = *slowQ

	// Metrics: the controller plane (query/fan-out/alarm-pipeline
	// telemetry) plus the rpc plane the ControllerServer's middleware
	// records, both behind GET /metrics.
	reg := obs.NewRegistry()
	ctrl.RegisterMetrics(reg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop() // second signal force-kills a hung drain
	}()
	ctrl.SetAlarmContext(ctx)
	if *verbose {
		ctrl.OnAlarm(func(a types.Alarm) { log.Printf("pathdumpc: %v", a) })
	}

	srv := &http.Server{Addr: *listen, Handler: (&rpc.ControllerServer{
		C:            ctrl,
		MaxBodyBytes: *maxBody,
		Obs:          &rpc.ServerObs{Registry: reg, EnablePprof: *pprofOn, SlowLog: ctrl.SlowLog()},
	}).Handler()}
	log.Printf("pathdumpc: alarm plane on %s (history %d, suppress %v, rate %.0f/s)",
		*listen, *history, *suppress, *rate)
	fmt.Println("endpoints: POST /alarm, GET /alarms /alarms/stream /healthz /metrics /slowlog")

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		st := ctrl.AlarmStats()
		log.Printf("pathdumpc: shutting down (%d alarms received, %d admitted, %d suppressed, %d rate-limited)",
			st.Received, st.Admitted, st.Suppressed, st.RateLimited)
		sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Fatal(err)
		}
	}
}
