// Command pathdumpctl is the operator CLI of the PathDump controller: it
// executes debugging queries against a set of pathdumpd agents over HTTP
// (the paper's on-demand debugging path, Fig. 3).
//
//	# top-5 flows across three agents
//	pathdumpctl -agents 0=http://h0:8400,1=http://h1:8401 topk -k 5
//
//	# flows crossing a link, paths of one flow, conformance sweep
//	pathdumpctl -agents ... flows -link 8-16
//	pathdumpctl -agents ... paths -flow 10.0.0.2:1234-10.2.0.2:80
//	pathdumpctl -agents ... conformance -maxlen 6
//	pathdumpctl -agents ... install -op poor_tcp -threshold 3 -period 200ms
//
//	# capture a live daemon's TIB for offline analysis, then serve it
//	pathdumpctl -agents 3=http://h3:8403 -pull-snapshot host3.tib
//	pathdumpd -host 3 -listen :9403 -tib host3.tib
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"pathdump"
	"pathdump/internal/alarms"
	"pathdump/internal/controller"
	"pathdump/internal/query"
	"pathdump/internal/rpc"
	"pathdump/internal/topology"
	"pathdump/internal/types"
)

func main() {
	agents := flag.String("agents", "", "comma-separated hostID=URL pairs (several hosts may share one URL for batched daemons)")
	arity := flag.Int("k", 4, "fat-tree arity of the ground-truth topology")
	parallel := flag.Int("parallel", 0, "max concurrently outstanding per-host requests (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "per-query deadline (0 = none): a slow or dead agent aborts the whole fan-out at the deadline instead of pinning it")
	partial := flag.Bool("partial", false, "on a -timeout expiry, print the merged partial result (partial=true in the stats line) instead of failing")
	hedgeAfter := flag.Duration("hedge-after", 0, "issue a duplicate request to an agent that has not answered after this long; first response wins (0 = never hedge)")
	hostTimeout := flag.Duration("host-timeout", 0, "per-agent budget: an agent (including its hedge) slower than this is dropped and the result marked partial (0 = no per-agent budget)")
	retries := flag.Int("retries", 0, "re-issue a request up to this many extra times on real transport errors (connection refused/reset), with jittered backoff; ignored when -hedge-after is set (the hedge race owns the slow/failed path then)")
	retryBackoff := flag.Duration("retry-backoff", 0, "base backoff before the first retry (default 50ms; doubles per attempt, jittered)")
	pullSnapshot := flag.String("pull-snapshot", "", "capture the agent's TIB snapshot (GET /snapshot) into this file and exit; requires exactly one -agents entry. Serve it offline with pathdumpd -tib")
	snapSince := flag.Uint64("snapshot-since", 0, "with -pull-snapshot: pull only the records past this arrival sequence (GET /snapshot?since_seq=N) — an incremental delta in the Version-3 framing, or a full stream when the agent has evicted past the watermark (0 = full snapshot)")
	wireMode := flag.String("wire", "binary", "wire encoding policy: binary (columnar requests and responses, JSON fallback for old daemons), json-req (JSON request bodies, binary responses) or json (JSON both directions, never offer binary)")
	traceOut := flag.Bool("trace", false, "print the execution's span tree after the stats line: per-host rpc and TIB-scan timings, merge waves, with hedged/retried/dropped requests labelled")
	fanouts := flag.String("fanouts", "", "comma-separated per-level widths for hierarchical (tree) aggregation, e.g. '4,2': agents are grouped under interior aggregation nodes instead of one flat fan-out (empty = flat)")
	ctrlURL := flag.String("controller", "", "controller URL (pathdumpc) for the alarm-plane modes -alarms and -watch")
	listAlarms := flag.Bool("alarms", false, "query the controller's bounded alarm history (GET /alarms) and exit; filter with -reason/-alarm-host/-since/-limit")
	watch := flag.Bool("watch", false, "tail the controller's live alarm feed (GET /alarms/stream) until killed or -watch-for elapses; -since N replays history after entry N first")
	watchFor := flag.Duration("watch-for", 0, "stop -watch after this long and exit 0 (0 = tail forever)")
	sinceID := flag.Int64("since", -1, "alarm entry ID paging/replay cursor: -alarms lists entries after it; -watch replays history after it before going live (-1 = -alarms lists everything, -watch tails live only)")
	reason := flag.String("reason", "", "alarm filter: reason code (e.g. POOR_PERF, PC_FAIL)")
	alarmHost := flag.Int("alarm-host", -1, "alarm filter: host ID (-1 = all hosts)")
	limit := flag.Int("limit", 0, "alarm history limit: keep only the newest N matches (0 = all)")
	flag.Parse()
	args := flag.Args()
	alarmMode := *listAlarms || *watch
	if alarmMode && *ctrlURL == "" {
		fmt.Fprintln(os.Stderr, "pathdumpctl: -alarms/-watch need -controller URL")
		os.Exit(2)
	}
	if !alarmMode && (*agents == "" || (len(args) == 0 && *pullSnapshot == "")) {
		fmt.Fprintln(os.Stderr, "usage: pathdumpctl -agents id=url[,id=url...] [-parallel n] [-timeout d] [-partial] [-hedge-after d] [-host-timeout d] [-retries n] [-pull-snapshot file] {topk|flows|paths|count|conformance|matrix|poor|install|uninstall} [flags]\n       pathdumpctl -controller url {-alarms|-watch} [-reason r] [-alarm-host n] [-since id] [-limit n] [-watch-for d]")
		os.Exit(2)
	}

	if alarmMode {
		runAlarmMode(*ctrlURL, *listAlarms, *watch, *timeout, *watchFor, *sinceID, *reason, *alarmHost, *limit)
		return
	}
	urls, hosts := parseAgents(*agents)
	topo, err := topology.FatTree(*arity)
	if err != nil {
		log.Fatal(err)
	}
	transport := &rpc.HTTPTransport{URLs: urls}
	switch *wireMode {
	case "binary":
		// default: columnar both directions, per-daemon fallback
	case "json-req":
		transport.JSONRequests = true
	case "json":
		transport.JSONOnly = true
	default:
		log.Fatalf("bad -wire %q (want binary, json-req or json)", *wireMode)
	}
	ctrl := controller.New(topo, transport, nil)
	ctrl.Parallelism = *parallel
	ctrl.PartialOnDeadline = *partial
	ctrl.HedgeAfter = *hedgeAfter
	ctrl.PerHostTimeout = *hostTimeout
	ctrl.RetryAttempts = *retries
	ctrl.RetryBackoff = *retryBackoff
	traceSpans = *traceOut
	execute := func(ctx context.Context, hosts []types.HostID, q query.Query) (query.Result, controller.ExecStats, error) {
		if *fanouts != "" {
			return ctrl.ExecuteTreeContext(ctx, hosts, q, parseFanouts(*fanouts))
		}
		return ctrl.ExecuteContext(ctx, hosts, q)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *pullSnapshot != "" {
		if len(hosts) != 1 {
			log.Fatalf("-pull-snapshot captures one agent's TIB; -agents lists %d", len(hosts))
		}
		f, err := os.Create(*pullSnapshot)
		check(err)
		var n int64
		if *snapSince > 0 {
			n, err = transport.PullSnapshotSince(ctx, hosts[0], *snapSince, f)
		} else {
			n, err = transport.PullSnapshot(ctx, hosts[0], f)
		}
		if err != nil {
			os.Remove(*pullSnapshot)
			check(err)
		}
		check(f.Close())
		if *snapSince > 0 {
			fmt.Printf("pulled %d incremental snapshot bytes (since seq %d) from host %v into %s\n", n, *snapSince, hosts[0], *pullSnapshot)
		} else {
			fmt.Printf("pulled %d snapshot bytes from host %v into %s\n", n, hosts[0], *pullSnapshot)
		}
		return
	}

	cmd, rest := args[0], args[1:]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		k         = fs.Int("k", 10, "top-k size")
		link      = fs.String("link", "*-*", "link filter a-b (wildcards: *)")
		flowStr   = fs.String("flow", "", "flow srcIP:port-dstIP:port")
		maxlen    = fs.Int("maxlen", 0, "conformance: max path length")
		avoid     = fs.Int("avoid", -1, "conformance: switch to avoid")
		op        = fs.String("op", "poor_tcp", "install: query op")
		threshold = fs.Int("threshold", 3, "poor-TCP threshold")
		period    = fs.Duration("period", 200*time.Millisecond, "install period")
		id        = fs.Int("id", 0, "uninstall: installation id")
	)
	if err := fs.Parse(rest); err != nil {
		log.Fatal(err)
	}

	switch cmd {
	case "topk":
		res, stats, err := execute(ctx, hosts, query.Query{Op: query.OpTopK, K: *k})
		checkExec(stats, err)
		for i, fb := range res.Top {
			fmt.Printf("#%-3d %-44s %12d bytes\n", i+1, fb.Flow, fb.Bytes)
		}
		printStats(stats)
	case "flows":
		res, stats, err := execute(ctx, hosts, query.Query{Op: query.OpFlows, Link: parseLink(*link)})
		checkExec(stats, err)
		for _, fl := range res.Flows {
			fmt.Printf("%-44s via %v\n", fl.ID, fl.Path)
		}
		printStats(stats)
	case "paths":
		res, stats, err := execute(ctx, hosts, query.Query{Op: query.OpPaths, Flow: parseFlow(*flowStr), Link: types.AnyLink})
		checkExec(stats, err)
		for _, p := range res.Paths {
			fmt.Println(p)
		}
		printStats(stats)
	case "count":
		res, stats, err := execute(ctx, hosts, query.Query{Op: query.OpCount, Flow: parseFlow(*flowStr)})
		checkExec(stats, err)
		fmt.Printf("%d bytes, %d packets\n", res.Bytes, res.Pkts)
		printStats(stats)
	case "conformance":
		q := query.Query{Op: query.OpConformance, MaxPathLen: *maxlen}
		if *avoid >= 0 {
			q.Avoid = []types.SwitchID{types.SwitchID(*avoid)}
		}
		res, stats, err := execute(ctx, hosts, q)
		checkExec(stats, err)
		for _, v := range res.Violations {
			fmt.Printf("VIOLATION %-44s via %v\n", v.Flow, v.Path)
		}
		fmt.Printf("%d violations\n", len(res.Violations))
		printStats(stats)
	case "matrix":
		res, stats, err := execute(ctx, hosts, query.Query{Op: query.OpMatrix})
		checkExec(stats, err)
		for _, cell := range res.Matrix {
			fmt.Printf("%v -> %v  %12d bytes\n", cell.SrcToR, cell.DstToR, cell.Bytes)
		}
		printStats(stats)
	case "poor":
		res, stats, err := execute(ctx, hosts, query.Query{Op: query.OpPoorTCP, Threshold: *threshold})
		checkExec(stats, err)
		for _, f := range res.FlowIDs {
			fmt.Println(f)
		}
		fmt.Printf("%d poor flows\n", len(res.FlowIDs))
		printStats(stats)
	case "install":
		ids, err := ctrl.InstallContext(ctx, hosts, query.Query{Op: query.Op(*op), Threshold: *threshold}, pathdump.Time(period.Nanoseconds()))
		check(err)
		for h, installID := range ids {
			fmt.Printf("host %v: id %d\n", h, installID)
		}
	case "uninstall":
		ids := make(map[types.HostID]int, len(hosts))
		for _, h := range hosts {
			ids[h] = *id
		}
		check(ctrl.UninstallContext(ctx, ids))
		fmt.Println("uninstalled")
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}

// runAlarmMode serves the alarm-plane modes: -alarms (bounded history
// query, -timeout-bounded) and -watch (live tail, bounded by -watch-for
// rather than -timeout — a tail is long-lived by design). Both talk to
// a pathdumpc controller daemon.
func runAlarmMode(ctrlURL string, list, watch bool, timeout, watchFor time.Duration, sinceID int64, reason string, alarmHost, limit int) {
	base := strings.TrimSuffix(ctrlURL, "/")
	f := alarms.Filter{Reason: types.Reason(reason), Limit: limit}
	if sinceID > 0 {
		f.SinceID = uint64(sinceID)
	}
	if alarmHost >= 0 {
		h := types.HostID(alarmHost)
		f.Host = &h
	}
	if list {
		ctx := context.Background()
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		resp, err := rpc.FetchAlarms(ctx, nil, base, f)
		check(err)
		for _, e := range resp.Entries {
			printEntry(e)
		}
		st := resp.Stats
		fmt.Printf("(%d shown; pipeline: %d received, %d admitted, %d suppressed, %d rate-limited, %d evicted, %d subscribers)\n",
			len(resp.Entries), st.Received, st.Admitted, st.Suppressed, st.RateLimited, st.Evicted, st.Subscribers)
		return
	}
	ctx := context.Background()
	if watchFor > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, watchFor)
		defer cancel()
	}
	replay := sinceID >= 0
	err := rpc.StreamAlarms(ctx, nil, base, f, replay, func(e alarms.Entry) error {
		printEntry(e)
		return nil
	})
	if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		check(err)
	}
}

// printEntry renders one alarm-history entry; the e2e smoke script greps
// these lines.
func printEntry(e alarms.Entry) {
	fmt.Printf("#%-4d %v x%d at %s\n", e.ID, e.Alarm, e.Count, e.LastAt.Format(time.RFC3339))
}

func check(err error) {
	if err == nil {
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		log.Fatalf("query deadline exceeded (-timeout): %v", err)
	}
	log.Fatal(err)
}

// checkExec is check for distributed executions: on failure it reports
// how far the fan-out got before it was cut off.
func checkExec(stats controller.ExecStats, err error) {
	if err == nil {
		return
	}
	if stats.Skipped > 0 {
		log.Printf("fan-out cut short: %d hosts answered, %d skipped", stats.Hosts, stats.Skipped)
	}
	check(err)
}

// traceSpans mirrors the -trace flag: printStats appends the span tree
// when it is set.
var traceSpans bool

// printStats summarises the execution: how many agents answered, how many
// were dropped/skipped, how many requests were hedged, whether the merged
// result is partial, and the modelled §5.2 response time. The e2e smoke
// script asserts on this line. Under -trace the execution's span tree
// follows it.
func printStats(stats controller.ExecStats) {
	fmt.Printf("(%d hosts answered, %d skipped, %d hedged, partial=%v, %d retried, segments %d scanned/%d pruned, modelled response %v)\n",
		stats.Hosts, stats.Skipped, stats.Hedged, stats.Partial, stats.Retried,
		stats.SegmentsScanned, stats.SegmentsPruned, stats.ResponseTime)
	if traceSpans && stats.Trace != nil {
		fmt.Print(stats.Trace.Render())
	}
}

// parseFanouts parses the -fanouts spec: comma-separated positive
// per-level widths, outermost first.
func parseFanouts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			log.Fatalf("bad -fanouts entry %q (want positive integers)", part)
		}
		out = append(out, n)
	}
	return out
}

func parseAgents(s string) (map[types.HostID]string, []types.HostID) {
	urls := make(map[types.HostID]string)
	var hosts []types.HostID
	for _, pair := range strings.Split(s, ",") {
		id, url, ok := strings.Cut(pair, "=")
		if !ok {
			log.Fatalf("bad -agents entry %q", pair)
		}
		n, err := strconv.Atoi(id)
		if err != nil {
			log.Fatalf("bad host ID %q: %v", id, err)
		}
		h := types.HostID(n)
		urls[h] = strings.TrimSuffix(url, "/")
		hosts = append(hosts, h)
	}
	return urls, hosts
}

func parseLink(s string) types.LinkID {
	a, b, ok := strings.Cut(s, "-")
	if !ok {
		log.Fatalf("bad link %q (want a-b)", s)
	}
	return types.LinkID{A: parseSwitch(a), B: parseSwitch(b)}
}

func parseSwitch(s string) types.SwitchID {
	s = strings.TrimPrefix(strings.TrimSpace(s), "s")
	if s == "*" || s == "?" {
		return types.WildcardSwitch
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		log.Fatalf("bad switch %q: %v", s, err)
	}
	return types.SwitchID(n)
}

// parseFlow accepts "srcIP:port-dstIP:port" (TCP assumed).
func parseFlow(s string) types.FlowID {
	src, dst, ok := strings.Cut(s, "-")
	if !ok {
		log.Fatalf("bad flow %q (want srcIP:port-dstIP:port)", s)
	}
	sIP, sPort := parseEndpoint(src)
	dIP, dPort := parseEndpoint(dst)
	return types.FlowID{SrcIP: sIP, SrcPort: sPort, DstIP: dIP, DstPort: dPort, Proto: types.ProtoTCP}
}

func parseEndpoint(s string) (types.IP, uint16) {
	host, port, ok := strings.Cut(s, ":")
	if !ok {
		log.Fatalf("bad endpoint %q", s)
	}
	var a, b, c, d uint32
	if _, err := fmt.Sscanf(host, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		log.Fatalf("bad IP %q: %v", host, err)
	}
	p, err := strconv.Atoi(port)
	if err != nil {
		log.Fatalf("bad port %q: %v", port, err)
	}
	return types.IP(a<<24 | b<<16 | c<<8 | d), uint16(p)
}
