package main

import (
	"strings"
	"testing"
)

const baselineSample = `goos: linux
goarch: amd64
pkg: pathdump/internal/controller
cpu: some cpu
BenchmarkParallelFanout/parallelism-1-8         	      45	  26180273 ns/op
BenchmarkParallelFanout/parallelism-1-8         	      44	  26002110 ns/op
BenchmarkParallelFanout/parallelism-1-8         	      45	  26411807 ns/op
BenchmarkParallelFanout/parallelism-8-8         	     355	   3361102 ns/op
BenchmarkParallelFanout/parallelism-8-8         	     352	   3398210 ns/op
BenchmarkParallelFanout/parallelism-8-8         	     350	   3340955 ns/op
PASS
ok  	pathdump/internal/controller	12.3s
`

const benchmemSample = `goos: linux
goarch: amd64
pkg: pathdump/internal/rpc
cpu: some cpu
BenchmarkParallelFanout/parallelism-8-4         	     181	   6398726 ns/op	 1532489 B/op	    5419 allocs/op
BenchmarkParallelFanout/parallelism-8-4         	     180	   6402100 ns/op	 1531000 B/op	    5421 allocs/op
BenchmarkParallelFanout/parallelism-8-4         	     182	   6391055 ns/op	 1533902 B/op	    5418 allocs/op
PASS
ok  	pathdump/internal/rpc	6.2s
`

func parsed(t *testing.T, s string) map[string]*bench {
	t.Helper()
	runs, err := parse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return runs
}

func TestParseCollectsSamples(t *testing.T) {
	runs := parsed(t, baselineSample)
	if len(runs) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(runs))
	}
	if got := runs["BenchmarkParallelFanout/parallelism-1-8"]; len(got.ns) != 3 {
		t.Fatalf("p1 samples = %v", got.ns)
	}
	if got := runs["BenchmarkParallelFanout/parallelism-8-8"]; len(got.ns) != 3 {
		t.Fatalf("p8 samples = %v", got.ns)
	}
	if got := runs["BenchmarkParallelFanout/parallelism-1-8"]; len(got.allocs) != 0 {
		t.Fatalf("allocs parsed from a run without -benchmem: %v", got.allocs)
	}
}

func TestParseCollectsAllocs(t *testing.T) {
	runs := parsed(t, benchmemSample)
	got := runs["BenchmarkParallelFanout/parallelism-8-4"]
	if got == nil || len(got.ns) != 3 || len(got.allocs) != 3 {
		t.Fatalf("benchmem parse = %+v", got)
	}
	if m := median(got.allocs); m != 5419 {
		t.Fatalf("allocs median = %v, want 5419", m)
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
}

// TestGatePassesOnNoise: run-to-run noise well inside the threshold does
// not fail the gate.
func TestGatePassesOnNoise(t *testing.T) {
	oldRuns := parsed(t, baselineSample)
	noisy := strings.ReplaceAll(baselineSample, "26180273", "27100000")
	noisy = strings.ReplaceAll(noisy, "3361102", "3500000")
	rows, failed := compare(oldRuns, parsed(t, noisy), 25, 25)
	if failed {
		t.Fatalf("gate failed on ~4%% noise:\n%s", strings.Join(rows, "\n"))
	}
}

// TestGateFailsOnInjected2xSlowdown is the acceptance check for the CI
// job: doubling the parallel fan-out's ns/op must trip the 25% gate.
func TestGateFailsOnInjected2xSlowdown(t *testing.T) {
	oldRuns := parsed(t, baselineSample)
	slowed := baselineSample
	for _, pair := range [][2]string{
		{"3361102", "6722204"},
		{"3398210", "6796420"},
		{"3340955", "6681910"},
	} {
		slowed = strings.ReplaceAll(slowed, pair[0], pair[1])
	}
	rows, failed := compare(oldRuns, parsed(t, slowed), 25, 25)
	if !failed {
		t.Fatalf("2x slowdown of the parallel path did not fail the gate:\n%s", strings.Join(rows, "\n"))
	}
	found := false
	for _, r := range rows {
		if strings.Contains(r, "parallelism-8") && strings.Contains(r, "REGRESSION") {
			found = true
		}
		if strings.Contains(r, "parallelism-1") && strings.Contains(r, "REGRESSION") {
			t.Errorf("unchanged benchmark flagged: %s", r)
		}
	}
	if !found {
		t.Fatalf("no REGRESSION row for the slowed benchmark:\n%s", strings.Join(rows, "\n"))
	}
}

// TestGateFailsOnAllocRegression: ns/op steady but allocs/op doubled —
// the class of regression the timing gate cannot see on an idle machine —
// must trip the allocation gate, and the row must name the metric.
func TestGateFailsOnAllocRegression(t *testing.T) {
	oldRuns := parsed(t, benchmemSample)
	bloated := benchmemSample
	for _, pair := range [][2]string{
		{"5419 allocs/op", "10838 allocs/op"},
		{"5421 allocs/op", "10842 allocs/op"},
		{"5418 allocs/op", "10836 allocs/op"},
	} {
		bloated = strings.ReplaceAll(bloated, pair[0], pair[1])
	}
	rows, failed := compare(oldRuns, parsed(t, bloated), 25, 25)
	if !failed {
		t.Fatalf("2x allocs/op did not fail the gate:\n%s", strings.Join(rows, "\n"))
	}
	if !strings.Contains(strings.Join(rows, "\n"), "REGRESSION(allocs/op)") {
		t.Fatalf("regression row does not name allocs/op:\n%s", strings.Join(rows, "\n"))
	}
}

// TestAllocGateSkippedWithoutBenchmem: a baseline recorded before
// -benchmem never fails the allocation gate — only the timing one.
func TestAllocGateSkippedWithoutBenchmem(t *testing.T) {
	// Old side: timing only. New side: same timings plus alloc columns.
	old := `BenchmarkX-4   100   1000000 ns/op
`
	nw := `BenchmarkX-4   100   1000000 ns/op   500000 B/op   99999 allocs/op
`
	rows, failed := compare(parsed(t, old), parsed(t, nw), 25, 25)
	if failed {
		t.Fatalf("alloc gate fired without baseline alloc samples:\n%s", strings.Join(rows, "\n"))
	}
}

// TestGateHandlesRenames: benchmarks present on only one side are
// reported but never fail the gate; zero overlap does.
func TestGateHandlesRenames(t *testing.T) {
	oldRuns := parsed(t, baselineSample)
	renamed := strings.ReplaceAll(baselineSample, "parallelism-8", "parallelism-16")
	rows, failed := compare(oldRuns, parsed(t, renamed), 25, 25)
	if failed {
		t.Fatalf("rename failed the gate:\n%s", strings.Join(rows, "\n"))
	}
	var only int
	for _, r := range rows {
		if strings.Contains(r, "only (skipped)") {
			only++
		}
	}
	if only != 2 {
		t.Errorf("%d 'only' rows, want 2 (one baseline-only, one new-only)", only)
	}
	other := map[string]*bench{"BenchmarkOther-8": {ns: []float64{1}}}
	if rows, failed := compare(oldRuns, other, 25, 25); !failed || rows != nil {
		t.Error("zero overlapping benchmarks must fail loudly")
	}
}
