package main

import (
	"strings"
	"testing"
)

const baselineSample = `goos: linux
goarch: amd64
pkg: pathdump/internal/controller
cpu: some cpu
BenchmarkParallelFanout/parallelism-1-8         	      45	  26180273 ns/op
BenchmarkParallelFanout/parallelism-1-8         	      44	  26002110 ns/op
BenchmarkParallelFanout/parallelism-1-8         	      45	  26411807 ns/op
BenchmarkParallelFanout/parallelism-8-8         	     355	   3361102 ns/op
BenchmarkParallelFanout/parallelism-8-8         	     352	   3398210 ns/op
BenchmarkParallelFanout/parallelism-8-8         	     350	   3340955 ns/op
PASS
ok  	pathdump/internal/controller	12.3s
`

func parsed(t *testing.T, s string) map[string][]float64 {
	t.Helper()
	runs, err := parse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return runs
}

func TestParseCollectsSamples(t *testing.T) {
	runs := parsed(t, baselineSample)
	if len(runs) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(runs))
	}
	if got := runs["BenchmarkParallelFanout/parallelism-1-8"]; len(got) != 3 {
		t.Fatalf("p1 samples = %v", got)
	}
	if got := runs["BenchmarkParallelFanout/parallelism-8-8"]; len(got) != 3 {
		t.Fatalf("p8 samples = %v", got)
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
}

// TestGatePassesOnNoise: run-to-run noise well inside the threshold does
// not fail the gate.
func TestGatePassesOnNoise(t *testing.T) {
	oldRuns := parsed(t, baselineSample)
	noisy := strings.ReplaceAll(baselineSample, "26180273", "27100000")
	noisy = strings.ReplaceAll(noisy, "3361102", "3500000")
	rows, failed := compare(oldRuns, parsed(t, noisy), 25)
	if failed {
		t.Fatalf("gate failed on ~4%% noise:\n%s", strings.Join(rows, "\n"))
	}
}

// TestGateFailsOnInjected2xSlowdown is the acceptance check for the CI
// job: doubling the parallel fan-out's ns/op must trip the 25% gate.
func TestGateFailsOnInjected2xSlowdown(t *testing.T) {
	oldRuns := parsed(t, baselineSample)
	slowed := baselineSample
	for _, pair := range [][2]string{
		{"3361102", "6722204"},
		{"3398210", "6796420"},
		{"3340955", "6681910"},
	} {
		slowed = strings.ReplaceAll(slowed, pair[0], pair[1])
	}
	rows, failed := compare(oldRuns, parsed(t, slowed), 25)
	if !failed {
		t.Fatalf("2x slowdown of the parallel path did not fail the gate:\n%s", strings.Join(rows, "\n"))
	}
	found := false
	for _, r := range rows {
		if strings.Contains(r, "parallelism-8") && strings.Contains(r, "REGRESSION") {
			found = true
		}
		if strings.Contains(r, "parallelism-1") && strings.Contains(r, "REGRESSION") {
			t.Errorf("unchanged benchmark flagged: %s", r)
		}
	}
	if !found {
		t.Fatalf("no REGRESSION row for the slowed benchmark:\n%s", strings.Join(rows, "\n"))
	}
}

// TestGateHandlesRenames: benchmarks present on only one side are
// reported but never fail the gate; zero overlap does.
func TestGateHandlesRenames(t *testing.T) {
	oldRuns := parsed(t, baselineSample)
	renamed := strings.ReplaceAll(baselineSample, "parallelism-8", "parallelism-16")
	rows, failed := compare(oldRuns, parsed(t, renamed), 25)
	if failed {
		t.Fatalf("rename failed the gate:\n%s", strings.Join(rows, "\n"))
	}
	var only int
	for _, r := range rows {
		if strings.Contains(r, "only (skipped)") {
			only++
		}
	}
	if only != 2 {
		t.Errorf("%d 'only' rows, want 2 (one baseline-only, one new-only)", only)
	}
	if rows, failed := compare(oldRuns, map[string][]float64{"BenchmarkOther-8": {1}}, 25); !failed || rows != nil {
		t.Error("zero overlapping benchmarks must fail loudly")
	}
}
