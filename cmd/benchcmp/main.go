// Command benchcmp is the CI benchmark-regression gate: it parses two Go
// benchmark output files (a committed baseline and a fresh run, each
// produced with -count N so medians are meaningful), compares per-benchmark
// median ns/op, and exits non-zero when any benchmark slowed down beyond
// the allowed percentage.
//
//	go test -run '^$' -bench BenchmarkParallelFanout -count 6 ./internal/controller > new.txt
//	benchcmp -old BENCH_BASELINE.txt -new new.txt -max-regression 25
//
// benchstat gives the human-readable statistical summary in the CI job;
// this tool is the deterministic pass/fail decision (medians, explicit
// threshold, no external dependency), so the gate can be exercised and
// tested offline.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		oldPath = flag.String("old", "", "baseline benchmark output file")
		newPath = flag.String("new", "", "fresh benchmark output file")
		maxReg  = flag.Float64("max-regression", 25, "fail when a benchmark's median ns/op slows down by more than this percentage")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "usage: benchcmp -old baseline.txt -new fresh.txt [-max-regression pct]")
		os.Exit(2)
	}
	oldRuns, err := parseFile(*oldPath)
	check(err)
	newRuns, err := parseFile(*newPath)
	check(err)
	rows, failed := compare(oldRuns, newRuns, *maxReg)
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "benchcmp: no benchmarks in common between the two files")
		os.Exit(2)
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchcmp: FAIL — regression beyond %.0f%%\n", *maxReg)
		os.Exit(1)
	}
	fmt.Printf("benchcmp: ok (threshold %.0f%%)\n", *maxReg)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
}

// parseFile reads a Go benchmark output file into name → ns/op samples.
func parseFile(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	runs, err := parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("%s: no benchmark result lines", path)
	}
	return runs, nil
}

// parse collects ns/op samples per benchmark name from `go test -bench`
// output. Lines look like:
//
//	BenchmarkParallelFanout/parallelism-1-8   45   26180273 ns/op
//
// Anything else (headers, PASS, ok, b.Log noise) is skipped.
func parse(r io.Reader) (map[string][]float64, error) {
	out := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Find the "ns/op" column; its left neighbour is the value.
		for i := 2; i < len(fields); i++ {
			if fields[i] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				return nil, fmt.Errorf("bad ns/op value in %q", sc.Text())
			}
			out[fields[0]] = append(out[fields[0]], v)
			break
		}
	}
	return out, sc.Err()
}

// median of a non-empty sample set.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// compare builds one report row per benchmark present in both runs and
// reports whether any exceeded the allowed regression percentage.
// Benchmarks present on only one side are reported but never fail the
// gate (renames should not brick CI; the baseline refresh catches them).
func compare(oldRuns, newRuns map[string][]float64, maxRegressionPct float64) ([]string, bool) {
	names := make([]string, 0, len(oldRuns))
	for name := range oldRuns {
		names = append(names, name)
	}
	sort.Strings(names)
	var rows []string
	failed := false
	matched := 0
	for _, name := range names {
		nw, ok := newRuns[name]
		if !ok {
			rows = append(rows, fmt.Sprintf("%-50s baseline only (skipped)", name))
			continue
		}
		matched++
		om, nm := median(oldRuns[name]), median(nw)
		deltaPct := (nm - om) / om * 100
		verdict := "ok"
		if deltaPct > maxRegressionPct {
			verdict = "REGRESSION"
			failed = true
		}
		rows = append(rows, fmt.Sprintf("%-50s %14.0f ns/op → %14.0f ns/op  %+7.2f%%  %s",
			name, om, nm, deltaPct, verdict))
	}
	for name := range newRuns {
		if _, ok := oldRuns[name]; !ok {
			rows = append(rows, fmt.Sprintf("%-50s new only (skipped)", name))
		}
	}
	sort.Strings(rows[len(names):]) // keep "new only" rows deterministic
	if matched == 0 {
		return nil, true
	}
	return rows, failed
}
