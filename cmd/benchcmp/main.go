// Command benchcmp is the CI benchmark-regression gate: it parses two Go
// benchmark output files (a committed baseline and a fresh run, each
// produced with -count N so medians are meaningful), compares per-benchmark
// median ns/op — and, when both files carry -benchmem columns, median
// allocs/op — and exits non-zero when any benchmark regressed beyond the
// allowed percentage.
//
//	go test -run '^$' -bench BenchmarkParallelFanout -count 6 -benchmem ./internal/rpc > new.txt
//	benchcmp -old BENCH_BASELINE.txt -new new.txt -max-regression 25
//
// The allocation gate exists because the wire data plane's win is largely
// a garbage-volume win: a change can hold ns/op steady on an idle CI
// machine while doubling per-op allocations, and only fall over under
// production GC pressure. Gating the allocation count catches that class
// of regression deterministically — allocs/op is exactly reproducible,
// so its threshold could in principle be far tighter than the timing one.
//
// benchstat gives the human-readable statistical summary in the CI job;
// this tool is the deterministic pass/fail decision (medians, explicit
// threshold, no external dependency), so the gate can be exercised and
// tested offline.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		oldPath  = flag.String("old", "", "baseline benchmark output file")
		newPath  = flag.String("new", "", "fresh benchmark output file")
		maxReg   = flag.Float64("max-regression", 25, "fail when a benchmark's median ns/op slows down by more than this percentage")
		maxAlloc = flag.Float64("max-alloc-regression", 25, "fail when a benchmark's median allocs/op grows by more than this percentage (only gated when both files carry -benchmem columns)")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "usage: benchcmp -old baseline.txt -new fresh.txt [-max-regression pct] [-max-alloc-regression pct]")
		os.Exit(2)
	}
	oldRuns, err := parseFile(*oldPath)
	check(err)
	newRuns, err := parseFile(*newPath)
	check(err)
	rows, failed := compare(oldRuns, newRuns, *maxReg, *maxAlloc)
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "benchcmp: no benchmarks in common between the two files")
		os.Exit(2)
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchcmp: FAIL — regression beyond %.0f%% ns/op or %.0f%% allocs/op\n", *maxReg, *maxAlloc)
		os.Exit(1)
	}
	fmt.Printf("benchcmp: ok (thresholds %.0f%% ns/op, %.0f%% allocs/op)\n", *maxReg, *maxAlloc)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
}

// bench holds one benchmark's sample columns. ns is always populated for
// a parsed line; allocs only when the run used -benchmem.
type bench struct {
	ns     []float64
	allocs []float64
}

// parseFile reads a Go benchmark output file into name → samples.
func parseFile(path string) (map[string]*bench, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	runs, err := parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("%s: no benchmark result lines", path)
	}
	return runs, nil
}

// parse collects ns/op (and, when present, allocs/op) samples per
// benchmark name from `go test -bench` output. Lines look like:
//
//	BenchmarkParallelFanout/parallelism-1-8   45   26180273 ns/op   1532489 B/op   5419 allocs/op
//
// Anything else (headers, PASS, ok, b.Log noise) is skipped.
func parse(r io.Reader) (map[string]*bench, error) {
	out := make(map[string]*bench)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Unit columns carry their value as the left neighbour.
		var ns, allocs float64
		var haveNs, haveAllocs bool
		for i := 2; i < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			switch fields[i] {
			case "ns/op":
				if err != nil {
					return nil, fmt.Errorf("bad ns/op value in %q", sc.Text())
				}
				ns, haveNs = v, true
			case "allocs/op":
				if err != nil {
					return nil, fmt.Errorf("bad allocs/op value in %q", sc.Text())
				}
				allocs, haveAllocs = v, true
			}
		}
		if !haveNs {
			continue
		}
		b := out[fields[0]]
		if b == nil {
			b = &bench{}
			out[fields[0]] = b
		}
		b.ns = append(b.ns, ns)
		if haveAllocs {
			b.allocs = append(b.allocs, allocs)
		}
	}
	return out, sc.Err()
}

// median of a non-empty sample set.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// compare builds one report row per benchmark present in both runs and
// reports whether any exceeded an allowed regression percentage: ns/op
// against maxRegressionPct always, allocs/op against maxAllocPct when
// both sides carry -benchmem samples (a baseline without allocation
// columns never fails the allocation gate — the refresh adds them).
// Benchmarks present on only one side are reported but never fail the
// gate (renames should not brick CI; the baseline refresh catches them).
func compare(oldRuns, newRuns map[string]*bench, maxRegressionPct, maxAllocPct float64) ([]string, bool) {
	names := make([]string, 0, len(oldRuns))
	for name := range oldRuns {
		names = append(names, name)
	}
	sort.Strings(names)
	var rows []string
	failed := false
	matched := 0
	for _, name := range names {
		nw, ok := newRuns[name]
		if !ok {
			rows = append(rows, fmt.Sprintf("%-50s baseline only (skipped)", name))
			continue
		}
		matched++
		old := oldRuns[name]
		om, nm := median(old.ns), median(nw.ns)
		deltaPct := (nm - om) / om * 100
		var bad []string
		if deltaPct > maxRegressionPct {
			bad = append(bad, "ns/op")
		}
		row := fmt.Sprintf("%-50s %14.0f ns/op → %14.0f ns/op  %+7.2f%%",
			name, om, nm, deltaPct)
		if len(old.allocs) > 0 && len(nw.allocs) > 0 {
			oa, na := median(old.allocs), median(nw.allocs)
			allocPct := 0.0
			if oa > 0 {
				allocPct = (na - oa) / oa * 100
			} else if na > 0 {
				allocPct = 100
			}
			if allocPct > maxAllocPct {
				bad = append(bad, "allocs/op")
			}
			row += fmt.Sprintf("  %10.0f → %10.0f allocs/op  %+7.2f%%", oa, na, allocPct)
		}
		verdict := "ok"
		if len(bad) > 0 {
			verdict = "REGRESSION(" + strings.Join(bad, ",") + ")"
			failed = true
		}
		rows = append(rows, row+"  "+verdict)
	}
	for name := range newRuns {
		if _, ok := oldRuns[name]; !ok {
			rows = append(rows, fmt.Sprintf("%-50s new only (skipped)", name))
		}
	}
	sort.Strings(rows[len(names):]) // keep "new only" rows deterministic
	if matched == 0 {
		return nil, true
	}
	return rows, failed
}
