package pathdump

import (
	"fmt"
	"sort"
	"time"

	"pathdump/internal/agent"
	"pathdump/internal/alarms"
	"pathdump/internal/cherrypick"
	"pathdump/internal/controller"
	"pathdump/internal/netsim"
	"pathdump/internal/tcp"
	"pathdump/internal/topology"
	"pathdump/internal/types"
)

// Config bundles the knobs of every layer; the zero value selects
// sensible defaults throughout (1 Gbps links, 5 µs propagation, NetFlow
// 5 s record timeout, 200 ms TCP monitoring granularity, unlimited query
// fan-out parallelism).
type Config struct {
	Net    NetConfig
	Agent  AgentConfig
	TCP    TCPConfig
	Query  QueryConfig
	Alarms AlarmConfig
}

// AlarmConfig tunes the controller-side alarm pipeline (see
// internal/alarms): bounded history depth, per-⟨host, flow, reason⟩
// suppression window folding repeated firings, and a token-bucket rate
// limit on distinct new alarms. The zero value keeps every alarm
// distinct in a default-depth ring.
type AlarmConfig struct {
	// History bounds the alarm ring buffer (0 = default depth).
	History int
	// Suppress folds repeats of one ⟨host, flow, reason⟩ arriving within
	// this window into a single history entry (0 = no dedup).
	Suppress time.Duration
	// Rate caps distinct new alarms per second (0 = unlimited); Burst is
	// the bucket depth (default ≈ Rate).
	Rate  float64
	Burst int
}

// QueryConfig tunes distributed query execution at the controller.
type QueryConfig struct {
	// Parallelism bounds the number of concurrently outstanding per-host
	// requests during Execute/ExecuteTree/InstallQuery fan-out (<= 0
	// means unlimited). The §5.2 response-time model mirrors the bound.
	Parallelism int
	// Deadline is the modelled per-query response deadline fed into the
	// §5.2 cost model (0 = none): modelled response times cap at it,
	// because the controller returns whatever has arrived by then. Real
	// wall-clock deadlines are per call — pass a context.WithTimeout to
	// ExecuteContext/ExecuteTreeContext.
	Deadline Time
	// PerHostTimeout (wall-clock) bounds any single host's query,
	// including a hedged duplicate; a host that exhausts it is dropped
	// from the execution and the merged result is marked
	// ExecStats.Partial (0 = wait indefinitely, subject to the
	// whole-query context). Setting it is the straggler-tolerance opt-in.
	// It also caps the modelled per-host service time, keeping the §5.2
	// model honest about what the controller actually waits for.
	PerHostTimeout time.Duration
	// HedgeAfter (wall-clock) issues a duplicate request to a host whose
	// primary has not answered after this long; first response wins, the
	// loser is cancelled (0 = never hedge). Hedges hold their own
	// Parallelism slot. ExecStats.Hedged counts duplicates issued.
	HedgeAfter time.Duration
	// PartialOnDeadline makes a whole-query deadline expiry return the
	// merged partial result (ExecStats.Partial) instead of an error;
	// explicit cancellation and real host failures still error.
	PartialOnDeadline bool
}

// Cluster is one fully wired PathDump deployment over a simulated fabric:
// topology, switches with CherryPick tag rules, per-host agents and TCP
// stacks, and the controller.
type Cluster struct {
	Topo   *topology.Topology
	Sim    *netsim.Sim
	Ctrl   *controller.Controller
	Agents map[HostID]*agent.Agent
	Stacks map[HostID]*tcp.Stack

	cfg      Config
	nextPort uint16
}

// NewFatTree builds a cluster over a k-ary fat tree.
func NewFatTree(k int, cfg Config) (*Cluster, error) {
	topo, err := topology.FatTree(k)
	if err != nil {
		return nil, err
	}
	return newCluster(topo, cfg)
}

// NewVL2 builds a cluster over a VL2(dA, dI) topology with hostsPerToR
// servers per rack.
func NewVL2(dA, dI, hostsPerToR int, cfg Config) (*Cluster, error) {
	topo, err := topology.VL2(dA, dI, hostsPerToR)
	if err != nil {
		return nil, err
	}
	return newCluster(topo, cfg)
}

func newCluster(topo *topology.Topology, cfg Config) (*Cluster, error) {
	scheme, err := cherrypick.New(topo)
	if err != nil {
		return nil, err
	}
	sim := netsim.New(topo, scheme, cfg.Net)
	c := &Cluster{
		Topo:     topo,
		Sim:      sim,
		Agents:   make(map[HostID]*agent.Agent),
		Stacks:   make(map[HostID]*tcp.Stack),
		cfg:      cfg,
		nextPort: 10000,
	}
	c.Ctrl = controller.New(topo, controller.Local{Agents: c.Agents}, sim)
	if cfg.Alarms != (AlarmConfig{}) {
		c.Ctrl.SetAlarmPolicy(alarms.Config{
			History:  cfg.Alarms.History,
			Suppress: cfg.Alarms.Suppress,
			Rate:     cfg.Alarms.Rate,
			Burst:    cfg.Alarms.Burst,
		})
	}
	c.Ctrl.Parallelism = cfg.Query.Parallelism
	c.Ctrl.Cost.Deadline = cfg.Query.Deadline
	c.Ctrl.PerHostTimeout = cfg.Query.PerHostTimeout
	c.Ctrl.HedgeAfter = cfg.Query.HedgeAfter
	c.Ctrl.PartialOnDeadline = cfg.Query.PartialOnDeadline
	for _, h := range topo.Hosts() {
		st := tcp.NewStack(sim, h.ID, cfg.TCP)
		c.Stacks[h.ID] = st
		c.Agents[h.ID] = agent.New(sim, h, st, c.Ctrl, cfg.Agent)
	}
	return c, nil
}

// HostIDs returns every host ID in deterministic order.
func (c *Cluster) HostIDs() []HostID {
	out := make([]HostID, 0, len(c.Agents))
	for _, h := range c.Topo.Hosts() {
		out = append(out, h.ID)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HostIP returns a host's address.
func (c *Cluster) HostIP(h HostID) IP {
	if host := c.Topo.Host(h); host != nil {
		return host.IP
	}
	return 0
}

// Now returns the cluster's virtual time.
func (c *Cluster) Now() Time { return c.Sim.Now() }

// Run advances virtual time to `until`.
func (c *Cluster) Run(until Time) { c.Sim.Run(until) }

// RunFor advances virtual time by d.
func (c *Cluster) RunFor(d Time) { c.Sim.Run(c.Sim.Now() + d) }

// RunAll drains every pending event (traffic, evictions, monitors).
func (c *Cluster) RunAll() { c.Sim.RunAll() }

// FlowBetween builds a TCP FlowID between two hosts with a fresh source
// port.
func (c *Cluster) FlowBetween(src, dst HostID, dstPort uint16) FlowID {
	c.nextPort++
	return FlowID{
		SrcIP:   c.HostIP(src),
		DstIP:   c.HostIP(dst),
		SrcPort: c.nextPort,
		DstPort: dstPort,
		Proto:   types.ProtoTCP,
	}
}

// StartFlow opens a TCP flow of `bytes` bytes from src to dst and returns
// its FlowID. onDone, if non-nil, fires when the last byte is
// acknowledged (virtual time).
func (c *Cluster) StartFlow(src, dst HostID, dstPort uint16, bytes int64, onDone func()) (FlowID, error) {
	st := c.Stacks[src]
	if st == nil {
		return FlowID{}, fmt.Errorf("pathdump: unknown source host %v", src)
	}
	if c.Stacks[dst] == nil {
		return FlowID{}, fmt.Errorf("pathdump: unknown destination host %v", dst)
	}
	f := c.FlowBetween(src, dst, dstPort)
	var cb func(*tcp.Sender)
	if onDone != nil {
		cb = func(*tcp.Sender) { onDone() }
	}
	st.StartFlow(f, bytes, bytes, cb)
	return f, nil
}

// SendPacket injects one raw packet from a host (non-TCP traffic).
func (c *Cluster) SendPacket(src HostID, pkt *Packet) error {
	return c.Sim.Send(src, pkt)
}

// FailLink takes a switch-switch link administratively down.
func (c *Cluster) FailLink(a, b SwitchID) { c.Sim.FailLink(a, b) }

// RestoreLink brings a failed link back.
func (c *Cluster) RestoreLink(a, b SwitchID) { c.Sim.RestoreLink(a, b) }

// SetSilentDrop makes the directed a→b interface drop packets at random
// with probability p, without updating any counter (§4.3).
func (c *Cluster) SetSilentDrop(a, b SwitchID, p float64) { c.Sim.SetSilentDrop(a, b, p) }

// SetBlackhole silently drops everything on the directed a→b interface
// (§4.4).
func (c *Cluster) SetBlackhole(a, b SwitchID, on bool) { c.Sim.SetBlackhole(a, b, on) }

// SetImpairment installs a tc-style impairment (added delay, loss
// probability, bandwidth throttle, admin down) on the directed a→b
// link; mutable mid-run.
func (c *Cluster) SetImpairment(a, b SwitchID, im netsim.Impairment) { c.Sim.SetImpairment(a, b, im) }

// ClearImpairment restores the directed a→b link to healthy defaults.
func (c *Cluster) ClearImpairment(a, b SwitchID) { c.Sim.ClearImpairment(a, b) }

// FlapLink flaps the a–b link administratively (down downFor, up upFor,
// repeating until the given virtual time, then left up).
func (c *Cluster) FlapLink(a, b SwitchID, downFor, upFor, until Time) {
	c.Sim.FlapLink(a, b, downFor, upFor, until)
}

// OnAlarm registers a controller-side alarm handler. Handlers fire once
// per admitted alarm: repeats folded by the suppression window do not
// re-trigger them.
func (c *Cluster) OnAlarm(fn func(Alarm)) { c.Ctrl.OnAlarm(fn) }

// OnLoop registers a routing-loop handler (§4.5).
func (c *Cluster) OnLoop(fn func(LoopEvent)) { c.Ctrl.OnLoop(fn) }

// Alarms returns the controller's bounded alarm history (newest History
// entries, oldest first).
func (c *Cluster) Alarms() []Alarm { return c.Ctrl.Alarms() }

// SubscribeAlarms opens a live feed of admitted alarms (dedup and rate
// limiting applied): entries arrive in admission order on the
// subscription's channel; a slow consumer loses the newest entries
// rather than blocking the alarm path. Close the subscription when done.
func (c *Cluster) SubscribeAlarms(buf int) *AlarmSubscription { return c.Ctrl.SubscribeAlarms(buf) }

// AlarmHistory queries the bounded alarm history with filters (entry ID,
// reason, host, receipt-time range, limit).
func (c *Cluster) AlarmHistory(f AlarmFilter) []AlarmEntry { return c.Ctrl.AlarmHistory(f) }

// AlarmStats reports the alarm pipeline's counters (received, admitted,
// suppressed, rate-limited, stream drops, live subscribers).
func (c *Cluster) AlarmStats() AlarmPipeStats { return c.Ctrl.AlarmStats() }
