// Benchmarks regenerating the paper's tables and figures (one per
// artifact) plus the ablations called out in DESIGN.md. The figure
// benchmarks run laptop-scaled configurations of the same code paths the
// cmd/experiments harness uses at full size; the ablations isolate the
// design choices (trajectory cache, TIB indexes, direct vs multi-level
// aggregation).
package pathdump_test

import (
	"math/rand"
	"pathdump"
	"testing"

	"pathdump/internal/experiments"
	"pathdump/internal/maxcov"
	"pathdump/internal/query"
	"pathdump/internal/tib"
	"pathdump/internal/types"
)

// BenchmarkTable1HostAPI measures the Table-1 host API against a populated
// TIB: getFlows, getPaths and getCount per iteration.
func BenchmarkTable1HostAPI(b *testing.B) {
	c, _ := pathdump.NewFatTree(4, pathdump.Config{})
	hosts := c.HostIDs()
	var flows []pathdump.FlowID
	for i := 0; i < 64; i++ {
		f, err := c.StartFlow(hosts[i%8], hosts[8+(i%8)], 80, int64(5000+i*100), nil)
		if err != nil {
			b.Fatal(err)
		}
		flows = append(flows, f)
	}
	c.RunAll()
	dst := hosts[8]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := flows[i%len(flows)]
		host := c.Topo.HostByIP(f.DstIP).ID
		_ = c.GetFlows(host, pathdump.AnyLink, pathdump.AllTime)
		_ = c.GetPaths(host, f, pathdump.AnyLink, pathdump.AllTime)
		_, _ = c.GetCount(host, pathdump.Flow{ID: f}, pathdump.AllTime)
	}
	_ = dst
}

// BenchmarkTable2SupportMatrix covers the application-support audit.
func BenchmarkTable2SupportMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s, total := experiments.Table2Score(); s*100 < 85*total {
			b.Fatal("support regression")
		}
	}
}

// BenchmarkFig5LoadImbalance runs a scaled-down §4.2 ECMP experiment per
// iteration: traffic generation, TIB collection, imbalance windows and the
// multi-level flow-size-distribution query.
func BenchmarkFig5LoadImbalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5(experiments.Fig5Config{
			Duration: 5 * pathdump.Second, LinkBps: 20e6, Seed: int64(i),
		})
		if len(r.Hists) != 2 {
			b.Fatal("missing histograms")
		}
	}
}

// BenchmarkFig6PacketSpray runs the §4.2 spraying split per iteration.
func BenchmarkFig6PacketSpray(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6(experiments.Fig6Config{FlowBytes: 500_000, Seed: int64(i)})
		if len(r.Balanced) == 0 {
			b.Fatal("no subflows")
		}
	}
}

// BenchmarkFig7MaxCoverage measures the §4.3 localisation algorithm over
// 1000 accumulated failure signatures.
func BenchmarkFig7MaxCoverage(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	faulty := []types.LinkID{{A: 8, B: 16}, {A: 13, B: 19}}
	sigs := make([]maxcov.Signature, 1000)
	for i := range sigs {
		sigs[i] = maxcov.Signature{
			{A: types.SwitchID(rng.Intn(8)), B: types.SwitchID(8 + rng.Intn(4))},
			faulty[rng.Intn(2)],
			{A: types.SwitchID(10 + rng.Intn(4)), B: types.SwitchID(rng.Intn(8))},
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hyp := maxcov.LocalizeRobust(sigs, 2)
		if len(hyp) == 0 {
			b.Fatal("empty hypothesis")
		}
	}
}

// BenchmarkFig8Convergence runs one short drop-localisation convergence
// measurement per iteration (the unit of Fig. 8's sweep cells).
func BenchmarkFig8Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7(experiments.Fig7Config{
			Faulty: 1, LossRate: 0.04, Load: 0.7, LinkBps: 20e6,
			Duration: 30 * pathdump.Second, Runs: 1, Seed: int64(i),
		})
		_ = r.TimeTo100
	}
}

// BenchmarkFig9LoopDetection measures a full routing-loop detection cycle
// (inject, punt, decode, reinject, conclude).
func BenchmarkFig9LoopDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9(experiments.Fig9Config{Seed: int64(i)})
		if !r.FourHop.Detected || !r.SixHop.Detected {
			b.Fatal("loop not detected")
		}
	}
}

// BenchmarkFig10OutcastDiagnosis measures the §4.6 receiver-side diagnosis
// query over a populated cluster.
func BenchmarkFig10OutcastDiagnosis(b *testing.B) {
	c, _ := pathdump.NewFatTree(4, pathdump.Config{Net: pathdump.NetConfig{BandwidthBps: 100e6, QueueBytes: 6000}})
	topo := c.Topo
	recv := topo.HostsAt(topo.ToRID(0, 0))[0]
	for i, h := range topo.Hosts() {
		if h.ID == recv.ID {
			continue
		}
		if _, err := c.StartFlow(h.ID, recv.ID, uint16(5000+i), 500_000, nil); err != nil {
			b.Fatal(err)
		}
	}
	c.Run(5 * pathdump.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := c.DiagnoseOutcast(recv.IP, pathdump.AllTime)
		if err != nil {
			b.Fatal(err)
		}
		if len(d.Senders) == 0 {
			b.Fatal("no senders")
		}
	}
}

// scaleBench shares the Fig. 11/12 machinery: per-host TIBs of `records`
// entries, direct vs multi-level execution.
func scaleBench(b *testing.B, fig func(experiments.ScaleConfig) *experiments.ScaleResult, records, k int) {
	b.Run("direct-vs-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := fig(experiments.ScaleConfig{Records: records, K: k, Hosts: []int{28, 112}})
			d, t := r.Points[1].Direct, r.Points[1].Tree
			if d.ResponseTime <= 0 || t.ResponseTime <= 0 {
				b.Fatal("bad stats")
			}
		}
	})
}

// BenchmarkFig11FSDQuery regenerates the flow-size-distribution scaling
// measurement (reduced TIB size per iteration).
func BenchmarkFig11FSDQuery(b *testing.B) {
	scaleBench(b, experiments.Fig11, 20_000, 0)
}

// BenchmarkFig12TopKQuery regenerates the top-k scaling measurement.
func BenchmarkFig12TopKQuery(b *testing.B) {
	scaleBench(b, experiments.Fig12, 20_000, 2_000)
}

// BenchmarkFig13Datapath measures the edge datapath per packet: the
// PathDump receive path versus the vanilla vSwitch baseline, at the
// paper's extreme packet sizes. b.SetBytes makes Gb/s readable from the
// output (MB/s × 8).
func BenchmarkFig13Datapath(b *testing.B) {
	for _, size := range []int{64, 1500} {
		d := experiments.NewDatapathBench(size, 4000, 1)
		b.Run(benchName("vanilla", size), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				d.VanillaOne(i)
			}
		})
		b.Run(benchName("pathdump", size), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				d.PathDumpOne(i)
			}
		})
	}
}

func benchName(kind string, size int) string {
	if size == 64 {
		return kind + "-64B"
	}
	return kind + "-1500B"
}

// BenchmarkStorageSnapshot covers the §5.3 storage measurement: gob
// serialisation of a (reduced) TIB.
func BenchmarkStorageSnapshot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Storage(experiments.StorageConfig{Records: 20_000})
		if r.SnapshotBytes == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// ---- Ablations (DESIGN.md §5) ----

// BenchmarkAblationTrajectoryCache isolates the trajectory cache: path
// construction for a hot header with and without the LRU in front of the
// topology walk.
func BenchmarkAblationTrajectoryCache(b *testing.B) {
	for _, on := range []bool{true, false} {
		name := "cache-on"
		cfg := pathdump.AgentConfig{}
		if !on {
			name = "cache-off"
			cfg.DisableCache = true
		}
		b.Run(name, func(b *testing.B) {
			c, _ := pathdump.NewFatTree(4, pathdump.Config{Agent: cfg})
			hosts := c.HostIDs()
			// One hot path: repeated single-packet flows between a pair.
			for i := 0; i < b.N%1000+8; i++ {
				// warm
				_, _ = c.StartFlow(hosts[0], hosts[12], uint16(7000+i), 1000, nil)
			}
			c.RunAll()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.StartFlow(hosts[0], hosts[12], uint16(10000+i%50000), 1000, nil); err != nil {
					b.Fatal(err)
				}
				c.RunAll()
			}
		})
	}
}

// BenchmarkAblationTIBIndex isolates the link index: getFlows against an
// indexed versus scan-only store of 50 000 records.
func BenchmarkAblationTIBIndex(b *testing.B) {
	build := func(s *tib.Store) {
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 50_000; i++ {
			s.Add(types.Record{
				Flow: types.FlowID{SrcIP: types.IP(i), DstIP: 9, SrcPort: uint16(i), DstPort: 80, Proto: 6},
				Path: types.Path{
					types.SwitchID(rng.Intn(8)),
					types.SwitchID(8 + rng.Intn(8)),
					types.SwitchID(16 + rng.Intn(4)),
				},
				STime: types.Time(i), ETime: types.Time(i + 100),
				Bytes: uint64(i), Pkts: 1,
			})
		}
	}
	link := types.LinkID{A: 3, B: 11}
	for _, indexed := range []bool{true, false} {
		name := "indexed"
		s := tib.NewStore()
		if !indexed {
			name = "scan"
			s = tib.NewUnindexedStore()
		}
		build(s)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := s.Flows(link, types.AllTime); len(got) == 0 {
					b.Fatal("no flows")
				}
			}
		})
	}
}

// BenchmarkQueryExecute measures raw host-side query execution over a
// 50 000-record view (the per-host cost inside every distributed query).
func BenchmarkQueryExecute(b *testing.B) {
	s := tib.NewStore()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50_000; i++ {
		s.Add(types.Record{
			Flow:  types.FlowID{SrcIP: types.IP(i % 5000), DstIP: 9, SrcPort: uint16(i), DstPort: 80, Proto: 6},
			Path:  types.Path{types.SwitchID(rng.Intn(8)), types.SwitchID(8 + rng.Intn(8)), 20},
			STime: types.Time(i), ETime: types.Time(i + 100),
			Bytes: uint64(rng.Intn(1_000_000)), Pkts: 3,
		})
	}
	v := query.StoreView{S: s}
	for _, q := range []query.Query{
		{Op: query.OpTopK, K: 1000},
		{Op: query.OpFSD, Links: []types.LinkID{{A: 3, B: 11}}, BinBytes: 10_000},
		{Op: query.OpMatrix},
	} {
		b.Run(string(q.Op), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := query.Execute(q, v)
				_ = res
			}
		})
	}
}
