// Incast microburst detection: a partition-aggregate fan-in where many
// workers answer one aggregator in the same instant — the classic
// shallow-buffer collapse. Flow start times are already edge-local TIB
// state, so one OpRecords query at the receiver reveals the synchronized
// arrivals and raises a single deduplicated INCAST alarm.
package main

import (
	"fmt"
	"log"
	"time"

	"pathdump"
	"pathdump/examples/internal/exkit"
	"pathdump/internal/workload"
)

func main() {
	c := exkit.MustCluster(4, pathdump.Config{
		Alarms: pathdump.AlarmConfig{Suppress: time.Minute},
	})
	hosts := c.HostIDs()
	receiver := hosts[0]

	// The aggregator fans a query out to 8 workers; all responses start
	// the moment the query lands.
	flows, err := workload.Incast(c.Sim, c.Stacks, workload.IncastConfig{
		Senders:  hosts[1:9],
		Receiver: receiver,
		Bytes:    64 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	c.RunAll()
	fmt.Printf("synchronized fan-in: %d responses to host %v\n", len(flows), receiver)

	// Detect twice — the second detection folds into the first alarm.
	for i := 0; i < 2; i++ {
		ev, err := c.DetectIncast(receiver, 50*pathdump.Millisecond, 5, pathdump.AllTime)
		if err != nil {
			log.Fatal(err)
		}
		if ev == nil {
			log.Fatal("no incast burst found")
		}
		fmt.Printf("burst: %d sources, %d flows, %d bytes in window %v..%v\n",
			ev.Sources, len(ev.Flows), ev.Bytes, ev.Window.From, ev.Window.To)
	}

	exkit.PrintAlarms(c, pathdump.ReasonIncast)
}
