// DDoS source localisation via top-k path aggregates: a handful of
// sources flood one victim while legitimate traffic trickles. Ranking
// the victim's per-source bytes finds who; folding the top sources'
// recorded paths into per-switch byte totals finds where — the shared
// upstream switches where one filter blocks the attack, far cheaper
// than per-source edge ACLs.
package main

import (
	"fmt"
	"log"
	"time"

	"pathdump"
	"pathdump/examples/internal/exkit"
)

func main() {
	c := exkit.MustCluster(4, pathdump.Config{
		Alarms: pathdump.AlarmConfig{Suppress: time.Minute},
	})
	hosts := c.HostIDs()
	victim := hosts[0]

	// Five attackers in remote pods flood the victim; one background
	// flow stays legitimate.
	for i, a := range hosts[8:13] {
		exkit.MustFlow(c, a, victim, uint16(40_000+i), 400_000)
	}
	exkit.MustFlow(c, hosts[2], victim, 50_000, 10_000)
	c.RunAll()

	// Diagnose twice — the second detection folds into the first alarm.
	for i := 0; i < 2; i++ {
		loc, err := c.LocalizeDDoS(victim, pathdump.AllTime, 5, 0.8, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("suspected=%v: top %d sources hold %.0f%% of %d bytes\n",
			loc.Suspected, len(loc.Sources), loc.TopShare*100, loc.TotalBytes)
		if i == 0 {
			fmt.Println("\n-- source ranking --")
			for _, s := range loc.Sources {
				fmt.Printf("%-16v %9d bytes\n", s.Flow.SrcIP, s.Bytes)
			}
			fmt.Println("\n-- localisation: attack bytes per switch --")
			for _, sb := range loc.Aggregates {
				fmt.Printf("switch %-4v %9d bytes\n", sb.Switch, sb.Bytes)
			}
		}
	}

	exkit.PrintAlarms(c, pathdump.ReasonDDoS)
}
