// Routing-loop debugging in real time (§4.5, Fig. 9): a misconfigured
// switch bounces packets between pods. Each up-leg stamps another sampled
// link ID; the third VLAN tag overflows what the switch ASIC can parse,
// so the packet is punted to the controller, which decodes the sampled
// links, spots the repeat (stripping tags and reinjecting once if
// needed), and reports the loop — no probing, no per-switch state.
package main

import (
	"fmt"
	"log"

	"pathdump"
	"pathdump/internal/netsim"
	"pathdump/internal/types"
)

func main() {
	c, err := pathdump.NewFatTree(4, pathdump.Config{})
	if err != nil {
		log.Fatal(err)
	}
	topo := c.Topo
	hosts := c.HostIDs()
	src, dst := hosts[0], hosts[8] // pod 0 → pod 2

	var detected []pathdump.LoopEvent
	c.OnLoop(func(ev pathdump.LoopEvent) { detected = append(detected, ev) })

	// Probe the flow's canonical path, then misconfigure the
	// destination-pod aggregation switch to send everything back up: the
	// packet loops agg → core → agg' → core → agg ...
	f, err := c.StartFlow(src, dst, 9000, 1000, nil)
	if err != nil {
		log.Fatal(err)
	}
	c.RunAll()
	path := c.GetPaths(dst, f, pathdump.AnyLink, pathdump.AllTime)[0]
	fmt.Printf("canonical path: %v\n", path)

	core, aggD := path[2], path[3]
	group := topo.CoreGroup(topo.Switch(core).Index)
	aggOther := topo.AggID(3, group)
	loopFlow := c.FlowBetween(src, dst, 9001)
	hook := func(next pathdump.SwitchID) func(*netsim.Packet, []types.SwitchID, netsim.NodeID) (types.SwitchID, bool) {
		return func(pkt *netsim.Packet, _ []types.SwitchID, _ netsim.NodeID) (types.SwitchID, bool) {
			if pkt.Flow == loopFlow {
				return next, true
			}
			return 0, false
		}
	}
	c.Sim.SetNextHopOverride(aggD, hook(core))
	c.Sim.SetNextHopOverride(aggOther, hook(core))
	c.Sim.SetNextHopOverride(core, func(pkt *netsim.Packet, _ []types.SwitchID, ingress netsim.NodeID) (types.SwitchID, bool) {
		if pkt.Flow != loopFlow {
			return 0, false
		}
		if ingress == netsim.SwitchNode(aggD) {
			return aggOther, true
		}
		return aggD, true
	})
	fmt.Printf("injected 4-hop loop: %v → %v → %v → %v → %v\n", aggD, core, aggOther, core, aggD)

	start := c.Now()
	if err := c.SendPacket(src, &netsim.Packet{Flow: loopFlow, Size: 100}); err != nil {
		log.Fatal(err)
	}
	c.RunAll()

	if len(detected) == 0 {
		log.Fatal("loop not detected")
	}
	ev := detected[0]
	fmt.Printf("\nLOOP DETECTED in %v (paper: ~47 ms for a 4-hop loop)\n", ev.DetectedAt-start)
	fmt.Printf("  flow       %v\n", ev.Flow)
	fmt.Printf("  punted at  %v\n", ev.At)
	fmt.Printf("  repeated   link %v\n", ev.Repeated)
	fmt.Printf("  punt rounds %d (loops of any size need at most 2)\n", ev.Rounds)
}
