// Load-imbalance diagnosis (§4.2, Fig. 5): a misconfigured aggregation
// switch splits traffic by flow size instead of hashing, so one uplink
// carries all the elephants. The operator notices a high imbalance rate,
// then issues the §2.3 flow-size-distribution query across all TIBs; the
// per-link CDFs split sharply around 1 MB, exposing the root cause.
package main

import (
	"fmt"
	"log"

	"pathdump"
	"pathdump/internal/netsim"
	"pathdump/internal/types"
	"pathdump/internal/workload"
)

func main() {
	c, err := pathdump.NewFatTree(4, pathdump.Config{
		Net: pathdump.NetConfig{BandwidthBps: 100e6, Seed: 42},
	})
	if err != nil {
		log.Fatal(err)
	}
	topo := c.Topo

	// SAgg = agg(0,0): send flows >1 MB to core link 1, the rest to
	// core link 2 (the paper's poor hash function).
	sAgg := topo.AggID(0, 0)
	link1 := pathdump.LinkID{A: sAgg, B: topo.CoreID(0)}
	link2 := pathdump.LinkID{A: sAgg, B: topo.CoreID(1)}
	c.Sim.SetNextHopOverride(sAgg, func(pkt *netsim.Packet, canonical []types.SwitchID, _ netsim.NodeID) (types.SwitchID, bool) {
		if len(canonical) < 2 || pkt.Ack {
			return 0, false // descending traffic: leave alone
		}
		if pkt.Meta >= 1_000_000 { // flow size travels in packet metadata
			return link1.B, true
		}
		return link2.B, true
	})

	// Web-traffic flows from pod 1's... sources are pod 0 hosts; dests
	// in the remaining pods (§4.2).
	var srcs, dsts []pathdump.HostID
	for _, h := range topo.Hosts() {
		if h.Pod == 0 {
			srcs = append(srcs, h.ID)
		} else {
			dsts = append(dsts, h.ID)
		}
	}
	stacks := c.Stacks
	gen, err := workload.NewGenerator(c.Sim, stacks, workload.GenConfig{
		Sources: srcs, Dests: dsts,
		Load: 0.3, LinkBps: 100e6, Dist: workload.WebSearch(),
		Until: 30 * pathdump.Second, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	gen.Start()
	c.Run(35 * pathdump.Second)
	fmt.Printf("generated %d flows over 30s of virtual time\n", gen.Started)

	// Fig. 5(b): imbalance rate between the two uplinks over 5 s windows.
	fmt.Println("\n-- load imbalance rate per 5 s window --")
	for t := pathdump.Time(0); t < 30*pathdump.Second; t += 5 * pathdump.Second {
		tr := pathdump.TimeRange{From: t, To: t + 5*pathdump.Second}
		res, _, err := c.Execute(c.HostIDs(), pathdump.Query{Op: pathdump.OpRecords, Link: link1, Range: tr})
		if err != nil {
			log.Fatal(err)
		}
		var b1, b2 uint64
		for _, r := range res.Records {
			b1 += r.Bytes
		}
		res, _, _ = c.Execute(c.HostIDs(), pathdump.Query{Op: pathdump.OpRecords, Link: link2, Range: tr})
		for _, r := range res.Records {
			b2 += r.Bytes
		}
		rate := imbalance(float64(b1), float64(b2))
		fmt.Printf("t=%2ds  link1=%9d B  link2=%9d B  imbalance=%5.1f%%\n",
			t/pathdump.Second, b1, b2, rate)
	}

	// Fig. 5(c): per-link flow size distribution via a multi-level query.
	hists, stats, err := c.FlowSizeDistribution(
		[]pathdump.LinkID{link1, link2}, pathdump.AllTime, 10_000, []int{4, 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n-- flow size distribution (multi-level query, %v) --\n", stats.ResponseTime)
	for _, h := range hists {
		n, min, max := summarize(h.Bins, h.BinBytes)
		fmt.Printf("%v: %4d flows, sizes %8d..%-9d B\n", h.Link, n, min, max)
	}
	fmt.Println("\nlink1 carries only ≥1MB flows while link2 carries the mice —")
	fmt.Println("the split at 1 MB exposes the size-based (mis)configuration.")
}

func imbalance(a, b float64) float64 {
	mean := (a + b) / 2
	if mean == 0 {
		return 0
	}
	max := a
	if b > max {
		max = b
	}
	return (max/mean - 1) * 100
}

func summarize(bins []uint64, width uint64) (n uint64, min, max uint64) {
	min = ^uint64(0)
	for i, cnt := range bins {
		if cnt == 0 {
			continue
		}
		n += cnt
		lo := uint64(i) * width
		hi := uint64(i+1) * width
		if lo < min {
			min = lo
		}
		if hi > max {
			max = hi
		}
	}
	if n == 0 {
		min = 0
	}
	return n, min, max
}
