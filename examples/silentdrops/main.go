// Silent random packet drop localisation (§4.3, Figs. 7–8): faulty
// interfaces drop packets at random without updating counters. End-host
// monitors raise POOR_PERF alarms; the controller collects the suffering
// flows' paths from destination TIBs as failure signatures and runs
// MAX-COVERAGE to localise the faulty links, printing recall/precision
// against the injected ground truth as evidence accumulates.
package main

import (
	"fmt"
	"log"

	"pathdump"
	"pathdump/internal/workload"
)

func main() {
	c, err := pathdump.NewFatTree(4, pathdump.Config{
		Net: pathdump.NetConfig{BandwidthBps: 50e6, Seed: 11},
	})
	if err != nil {
		log.Fatal(err)
	}
	topo := c.Topo

	// Ground truth: two faulty interfaces dropping 1% of packets.
	faulty := []pathdump.LinkID{
		{A: topo.AggID(0, 0), B: topo.CoreID(0)},
		{A: topo.AggID(2, 1), B: topo.CoreID(3)},
	}
	for _, l := range faulty {
		c.SetSilentDrop(l.A, l.B, 0.01)
	}

	// The paper's monitoring query: every 200 ms, flows with ≥3
	// consecutive retransmissions alarm.
	dbg := c.NewSilentDropDebugger()
	if _, err := c.InstallTCPMonitor(3, 200*pathdump.Millisecond); err != nil {
		log.Fatal(err)
	}

	// Background web traffic at high load across the whole fabric.
	hosts := c.HostIDs()
	gen, err := workload.NewGenerator(c.Sim, c.Stacks, workload.GenConfig{
		Sources: hosts, Dests: hosts,
		Load: 0.7, LinkBps: 50e6, Dist: workload.WebSearch(),
		Until: 150 * pathdump.Second, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	gen.Start()

	fmt.Println("time   signatures  recall  precision  hypothesis")
	for t := 10 * pathdump.Second; t <= 150*pathdump.Second; t += 10 * pathdump.Second {
		c.Run(t)
		recall, precision := dbg.Accuracy(faulty)
		fmt.Printf("%4ds  %10d  %6.2f  %9.2f  %v\n",
			t/pathdump.Second, dbg.Signatures(), recall, precision, dbg.Localize())
		if recall == 1 && precision == 1 {
			fmt.Printf("\nlocalised both faulty interfaces after %v\n", t)
			return
		}
	}
	fmt.Println("\nrun ended before full convergence — increase load or duration")
}
