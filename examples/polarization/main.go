// ECMP hash polarization: a buggy ToR "hash" lands every inter-pod flow
// on the same aggregation uplink while the sibling uplink idles. The
// per-uplink flow spread lives in end-host TIBs already — one getFlows
// per directed uplink reveals λ ≈ 100% and raises a single deduplicated
// ECMP_POLARIZED alarm.
package main

import (
	"fmt"
	"log"
	"time"

	"pathdump"
	"pathdump/examples/internal/exkit"
	"pathdump/internal/netsim"
	"pathdump/internal/types"
)

func main() {
	c := exkit.MustCluster(4, pathdump.Config{
		Alarms: pathdump.AlarmConfig{Suppress: time.Minute},
	})
	hosts := c.HostIDs()
	tor := c.Topo.Host(hosts[0]).ToR
	hot := c.Topo.Switch(tor).Up[0]

	// The bug: the ToR's hash degenerates, so every upward decision picks
	// the same uplink. Local delivery (hot ∉ canonical) is untouched.
	c.Sim.SetNextHopOverride(tor, func(_ *netsim.Packet, canonical []types.SwitchID, _ netsim.NodeID) (types.SwitchID, bool) {
		for _, cand := range canonical {
			if cand == hot {
				return hot, true
			}
		}
		return 0, false
	})

	for i := 0; i < 8; i++ {
		exkit.MustFlow(c, hosts[i%2], hosts[8+(i%4)], uint16(7000+i), 40_000)
	}
	c.RunAll()

	// Detect twice — the second detection folds into the first alarm.
	for i := 0; i < 2; i++ {
		rep, err := c.DetectPolarization(tor, pathdump.AllTime, 50.0, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("switch %v uplinks %v flows %v λ=%.0f%% polarized=%v\n",
			rep.Switch, rep.Uplinks, rep.FlowsPerUplink, rep.Lambda, rep.Polarized)
	}

	// The fleet-wide sweep an operator runs when the hot uplink is
	// noticed but the culprit switch is not yet known. minFlows=6 keeps
	// small reverse-ACK flow sets from tripping the λ threshold.
	ranked, err := c.RankPolarization(c.Topo.ToRs(), pathdump.AllTime, 50.0, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-- fleet sweep, λ descending --")
	for _, r := range ranked {
		fmt.Printf("switch %v λ=%.0f%% flows=%v\n", r.Switch, r.Lambda, r.FlowsPerUplink)
	}

	exkit.PrintAlarms(c, pathdump.ReasonPolarized)
}
