// Blackhole diagnosis under packet spraying (§4.4): a faulty interface
// silently swallows every packet of the subflows crossing it. The
// destination TIB shows per-path records for the healthy subflows only;
// comparing against the canonical equal-cost set reveals the missing
// paths, and joining them shrinks the debugging search space from every
// switch on every path to a handful of suspects.
package main

import (
	"fmt"
	"log"

	"pathdump"
)

func main() {
	c, err := pathdump.NewFatTree(4, pathdump.Config{
		Net: pathdump.NetConfig{Spray: true, Seed: 33},
	})
	if err != nil {
		log.Fatal(err)
	}
	topo := c.Topo
	hosts := c.HostIDs()
	src, dst := hosts[0], hosts[8]

	// Blackhole an aggregate→core interface in the source pod.
	bad := pathdump.LinkID{A: topo.AggID(0, 0), B: topo.CoreID(0)}
	c.SetBlackhole(bad.A, bad.B, true)
	fmt.Printf("injected blackhole on %v (switches cannot see it)\n\n", bad)

	// A 100 KB TCP flow sprayed across the four equal-cost paths; the
	// subflow through the blackhole never arrives.
	f, err := c.StartFlow(src, dst, 8080, 100_000, nil)
	if err != nil {
		log.Fatal(err)
	}
	c.Run(10 * pathdump.Second)

	d, err := c.DiagnoseBlackhole(f, pathdump.AllTime)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expected equal-cost paths: %d\n", len(d.Expected))
	for _, p := range d.Observed {
		fmt.Printf("  observed  %v\n", p)
	}
	for _, p := range d.Missing {
		fmt.Printf("  MISSING   %v\n", p)
	}
	fmt.Printf("\nsuspect switches after joining missing paths: %v\n", d.Suspects)
	fmt.Printf("(search space reduced from %d switches on %d paths to %d —\n",
		10, len(d.Expected), len(d.Suspects))
	fmt.Println(" §4.4: core switch plus the two adjacent aggregates)")
}
