// Quickstart: build a 4-ary fat-tree PathDump cluster, run a few TCP
// flows, and slice the distributed Trajectory Information Base with the
// paper's Table-1 API — getPaths, getFlows, getCount, getDuration.
package main

import (
	"fmt"
	"log"

	"pathdump"
	"pathdump/examples/internal/exkit"
)

func main() {
	c := exkit.MustCluster(4, pathdump.Config{})

	hosts := c.HostIDs()
	src, dst := hosts[0], hosts[12] // pod 0 → pod 3

	// Start three flows of different sizes and run to completion.
	var flows []pathdump.FlowID
	for i, size := range []int64{50_000, 400_000, 1_500_000} {
		flows = append(flows, exkit.MustFlow(c, src, dst, uint16(8080+i), size))
	}
	c.RunAll()

	// Every packet was tagged with sampled link IDs by the switches; the
	// destination host reconstructed and recorded the trajectories.
	fmt.Println("\n-- per-flow trajectories at the destination TIB --")
	for _, f := range flows {
		for _, p := range c.GetPaths(dst, f, pathdump.AnyLink, pathdump.AllTime) {
			bytes, pkts := c.GetCount(dst, pathdump.Flow{ID: f, Path: p}, pathdump.AllTime)
			dur := c.GetDuration(dst, pathdump.Flow{ID: f}, pathdump.AllTime)
			fmt.Printf("%-40s via %-22s %8d B %5d pkts %10s\n", f, p, bytes, pkts, dur)
			if err := c.Validate(f.SrcIP, f.DstIP, p); err != nil {
				log.Fatalf("trajectory failed ground-truth validation: %v", err)
			}
		}
	}

	// getFlows with a wildcard link: everything entering the host's ToR.
	tor := c.Topo.Host(dst).ToR
	fmt.Printf("\n-- flows seen on any incoming link of %v --\n", tor)
	for _, fl := range c.GetFlows(dst, pathdump.LinkID{A: pathdump.WildcardSwitch, B: tor}, pathdump.AllTime) {
		fmt.Printf("%s via %s\n", fl.ID, fl.Path)
	}

	// A distributed query: cluster-wide top-3 flows through the
	// multi-level aggregation tree.
	top, stats, err := c.TopK(3, pathdump.AllTime, []int{4, 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-- cluster-wide top-3 flows (multi-level query) --")
	for i, fb := range top {
		fmt.Printf("#%d %-40s %8d bytes\n", i+1, fb.Flow, fb.Bytes)
	}
	fmt.Printf("modelled response time %v over %d hosts, %d wire bytes\n",
		stats.ResponseTime, stats.Hosts, stats.WireBytes)
}
