// Package exkit holds the boot boilerplate the example programs share:
// building a fat-tree cluster, starting flows, and dumping the deduped
// alarm history. Examples stay focused on the one debugging idea each
// demonstrates.
package exkit

import (
	"fmt"
	"log"

	"pathdump"
)

// MustCluster builds a k-ary fat-tree cluster or exits, printing the
// one-line cluster summary every example opens with.
func MustCluster(k int, cfg pathdump.Config) *pathdump.Cluster {
	c, err := pathdump.NewFatTree(k, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c)
	return c
}

// MustFlow starts a src→dst TCP flow of the given size or exits.
func MustFlow(c *pathdump.Cluster, src, dst pathdump.HostID, port uint16, bytes int64) pathdump.FlowID {
	f, err := c.StartFlow(src, dst, port, bytes, nil)
	if err != nil {
		log.Fatal(err)
	}
	return f
}

// PrintAlarms dumps the controller's alarm history for one reason code,
// showing how repeated detections folded under suppression.
func PrintAlarms(c *pathdump.Cluster, reason pathdump.Reason) {
	fmt.Printf("\n-- alarm history (%s) --\n", reason)
	for _, e := range c.AlarmHistory(pathdump.AlarmFilter{Reason: reason}) {
		fmt.Printf("#%d host=%v flow=%s ×%d (deduped)\n", e.ID, e.Alarm.Host, e.Alarm.Flow, e.Count)
	}
}
