// Transient routing loop during failover: a core uplink fails, and
// while routes reconverge two aggregation switches briefly chase each
// other's detours. The looping packet's VLAN stack overflows, the
// controller concludes LOOP from the punted headers (§4.5), and the
// TransientLoopAuditor classifies it as failover-transient by joining
// the loop timestamp against the failure timeline — fed automatically
// by the simulator's own link-state events, no operator noting needed.
package main

import (
	"fmt"
	"time"

	"pathdump"
	"pathdump/examples/internal/exkit"
	"pathdump/internal/netsim"
	"pathdump/internal/types"
)

func main() {
	c := exkit.MustCluster(4, pathdump.Config{
		Alarms: pathdump.AlarmConfig{Suppress: time.Minute},
	})
	topo := c.Topo
	hosts := c.HostIDs()
	src, dst := hosts[0], hosts[8]

	auditor := c.NewTransientLoopAuditor(200 * pathdump.Millisecond)

	// Learn the flow's canonical path so the loop can be staged on it.
	probe := exkit.MustFlow(c, src, dst, 9000, 1000)
	c.RunAll()
	path := c.GetPaths(dst, probe, pathdump.AnyLink, pathdump.AllTime)[0]
	core, aggD := path[2], path[3]
	group := topo.CoreGroup(topo.Switch(core).Index)
	aggOther := topo.AggID(3, group)

	// The failure: aggD loses its other core uplink, pushing all transit
	// onto the surviving one. FailLink lands on the auditor's timeline by
	// itself — the auditor subscribes to the sim's link-state events.
	var otherCore pathdump.SwitchID
	for _, up := range topo.Switch(aggD).Up {
		if up != core {
			otherCore = up
		}
	}
	failAt := c.Now()
	c.FailLink(aggD, otherCore)
	fmt.Printf("link %v-%v failed at %v\n", aggD, otherCore, failAt)

	// Transient reconvergence state: both aggs bounce one flow through
	// the surviving core.
	loopFlow := c.FlowBetween(src, dst, 9001)
	bounce := func(next pathdump.SwitchID) func(*netsim.Packet, []types.SwitchID, netsim.NodeID) (types.SwitchID, bool) {
		return func(pkt *netsim.Packet, _ []types.SwitchID, _ netsim.NodeID) (types.SwitchID, bool) {
			if pkt.Flow == loopFlow {
				return next, true
			}
			return 0, false
		}
	}
	c.Sim.SetNextHopOverride(aggD, bounce(core))
	c.Sim.SetNextHopOverride(aggOther, bounce(core))
	c.Sim.SetNextHopOverride(core, func(pkt *netsim.Packet, _ []types.SwitchID, ingress netsim.NodeID) (types.SwitchID, bool) {
		if pkt.Flow != loopFlow {
			return 0, false
		}
		if ingress == netsim.SwitchNode(aggD) {
			return aggOther, true
		}
		return aggD, true
	})
	if err := c.SendPacket(src, &netsim.Packet{Flow: loopFlow, Size: 100}); err != nil {
		panic(err)
	}
	c.RunAll()

	fmt.Printf("\n-- auditor report (%d loops) --\n", auditor.Loops())
	for _, cls := range auditor.Report() {
		fmt.Printf("loop %s detected at %v: transient-failover=%v", cls.Event.Flow, cls.Event.DetectedAt, cls.NearFailure)
		if cls.NearFailure {
			fmt.Printf(" (link %v-%v)", cls.FailedLink.A, cls.FailedLink.B)
		}
		fmt.Println()
	}

	exkit.PrintAlarms(c, pathdump.ReasonLoop)
}
