// Distributed top-k flows (§2.3, §5.2, Fig. 12): every host ranks its
// local flows with the Table-1 API; the controller aggregates either
// directly or through a multi-level tree. The example contrasts the two
// execution strategies' modelled response time and network traffic.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pathdump"
	"pathdump/internal/workload"
)

func main() {
	c, err := pathdump.NewFatTree(4, pathdump.Config{
		Net: pathdump.NetConfig{BandwidthBps: 100e6, Seed: 21},
	})
	if err != nil {
		log.Fatal(err)
	}
	hosts := c.HostIDs()

	gen, err := workload.NewGenerator(c.Sim, c.Stacks, workload.GenConfig{
		Sources: hosts, Dests: hosts,
		Load: 0.4, LinkBps: 100e6, Dist: workload.WebSearch(),
		Until: 20 * pathdump.Second, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	gen.Start()
	c.Run(30 * pathdump.Second)
	fmt.Printf("ran %d flows; TIBs populated across %d hosts\n\n", gen.Started, len(hosts))

	q := pathdump.Query{Op: pathdump.OpTopK, K: 10}
	direct, dstats, err := c.Execute(hosts, q)
	if err != nil {
		log.Fatal(err)
	}
	tree, tstats, err := c.ExecuteTree(hosts, q, []int{4, 2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("-- top-10 flows cluster-wide --")
	for i, fb := range direct.Top {
		fmt.Printf("#%-2d %-42s %9d bytes\n", i+1, fb.Flow, fb.Bytes)
	}
	if len(direct.Top) != len(tree.Top) {
		log.Fatal("direct and multi-level query disagree")
	}

	fmt.Println("\n-- execution strategies --")
	fmt.Printf("direct      : %8v response, %7d wire bytes\n", dstats.ResponseTime, dstats.WireBytes)
	fmt.Printf("multi-level : %8v response, %7d wire bytes (tree fan-out 4×2)\n", tstats.ResponseTime, tstats.WireBytes)

	// Deadlines keep queries interactive in both senses. A real wall-clock
	// deadline (context.WithTimeout) aborts the fan-out if agents stall;
	// here everything is in-process, so it completes well inside it.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, stats, err := c.ExecuteContext(ctx, hosts, q); err != nil {
		log.Fatalf("deadline-bounded query failed (%d hosts skipped): %v", stats.Skipped, err)
	}
	// And a modelled per-query deadline (§5.2 cost model) caps the
	// modelled response time: the controller hands back whatever arrived.
	c.Ctrl.Cost.Deadline = dstats.ResponseTime / 2
	_, capped, err := c.Execute(hosts, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with a modelled deadline of %v the direct query reports %v\n",
		c.Ctrl.Cost.Deadline, capped.ResponseTime)

	fmt.Println("\nat small scale direct wins; the tree's advantage appears as host")
	fmt.Println("count and per-host result size grow (run cmd/experiments fig12).")
}
