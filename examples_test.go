// Table-driven smoke tests for the examples/* scenarios: the same logic
// the example mains print is exercised here through the public pathdump
// API with assertions, so the walkthroughs can't rot silently.
package pathdump_test

import (
	"testing"

	"pathdump"
	"pathdump/internal/netsim"
	"pathdump/internal/types"
	"pathdump/internal/workload"
)

func TestExampleScenarios(t *testing.T) {
	scenarios := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"quickstart", quickstartScenario},
		{"routingloop", routingLoopScenario},
		{"silentdrops", silentDropsScenario},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) { sc.run(t) })
	}
}

// quickstartScenario mirrors examples/quickstart: flows across a fat
// tree, the Table-1 host API at the destination TIB, and a cluster-wide
// top-k through the aggregation tree.
func quickstartScenario(t *testing.T) {
	c, err := pathdump.NewFatTree(4, pathdump.Config{})
	if err != nil {
		t.Fatal(err)
	}
	hosts := c.HostIDs()
	src, dst := hosts[0], hosts[12]

	sizes := []int64{50_000, 400_000, 1_500_000}
	var flows []pathdump.FlowID
	for i, size := range sizes {
		f, err := c.StartFlow(src, dst, uint16(8080+i), size, nil)
		if err != nil {
			t.Fatal(err)
		}
		flows = append(flows, f)
	}
	c.RunAll()

	for i, f := range flows {
		paths := c.GetPaths(dst, f, pathdump.AnyLink, pathdump.AllTime)
		if len(paths) == 0 {
			t.Fatalf("flow %d: no recorded trajectory", i)
		}
		var total uint64
		for _, p := range paths {
			if err := c.Validate(f.SrcIP, f.DstIP, p); err != nil {
				t.Fatalf("flow %d: trajectory failed ground-truth validation: %v", i, err)
			}
			bytes, pkts := c.GetCount(dst, pathdump.Flow{ID: f, Path: p}, pathdump.AllTime)
			if pkts == 0 {
				t.Fatalf("flow %d: zero packets on recorded path", i)
			}
			total += bytes
		}
		if total < uint64(sizes[i]) {
			t.Errorf("flow %d: TIB counted %d bytes, sent %d", i, total, sizes[i])
		}
		if d := c.GetDuration(dst, pathdump.Flow{ID: f}, pathdump.AllTime); d <= 0 {
			t.Errorf("flow %d: non-positive duration %v", i, d)
		}
	}

	// getFlows with a wildcard link: everything entering the host's ToR.
	tor := c.Topo.Host(dst).ToR
	incoming := c.GetFlows(dst, pathdump.LinkID{A: pathdump.WildcardSwitch, B: tor}, pathdump.AllTime)
	if len(incoming) < len(flows) {
		t.Errorf("wildcard getFlows saw %d flows, want >= %d", len(incoming), len(flows))
	}

	// Cluster-wide top-3 through the multi-level aggregation tree: the
	// biggest flow must rank first.
	top, stats, err := c.TopK(3, pathdump.AllTime, []int{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Fatalf("top-k returned %d entries", len(top))
	}
	if top[0].Flow != flows[2] {
		t.Errorf("top flow = %v, want the 1.5 MB flow %v", top[0].Flow, flows[2])
	}
	if stats.Hosts != len(hosts) {
		t.Errorf("query covered %d hosts, want %d", stats.Hosts, len(hosts))
	}
	if stats.ResponseTime <= 0 || stats.WireBytes <= 0 {
		t.Errorf("degenerate stats %+v", stats)
	}
}

// routingLoopScenario mirrors examples/routingloop: a misconfigured
// aggregation switch bounces a flow between pods; the VLAN-stack overflow
// punts to the controller, which must conclude the loop within two punt
// rounds (§4.5).
func routingLoopScenario(t *testing.T) {
	c, err := pathdump.NewFatTree(4, pathdump.Config{})
	if err != nil {
		t.Fatal(err)
	}
	topo := c.Topo
	hosts := c.HostIDs()
	src, dst := hosts[0], hosts[8]

	var detected []pathdump.LoopEvent
	c.OnLoop(func(ev pathdump.LoopEvent) { detected = append(detected, ev) })

	f, err := c.StartFlow(src, dst, 9000, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	paths := c.GetPaths(dst, f, pathdump.AnyLink, pathdump.AllTime)
	if len(paths) == 0 {
		t.Fatal("probe flow left no trajectory")
	}
	path := paths[0]

	core, aggD := path[2], path[3]
	group := topo.CoreGroup(topo.Switch(core).Index)
	aggOther := topo.AggID(3, group)
	loopFlow := c.FlowBetween(src, dst, 9001)
	hook := func(next pathdump.SwitchID) func(*netsim.Packet, []types.SwitchID, netsim.NodeID) (types.SwitchID, bool) {
		return func(pkt *netsim.Packet, _ []types.SwitchID, _ netsim.NodeID) (types.SwitchID, bool) {
			if pkt.Flow == loopFlow {
				return next, true
			}
			return 0, false
		}
	}
	c.Sim.SetNextHopOverride(aggD, hook(core))
	c.Sim.SetNextHopOverride(aggOther, hook(core))
	c.Sim.SetNextHopOverride(core, func(pkt *netsim.Packet, _ []types.SwitchID, ingress netsim.NodeID) (types.SwitchID, bool) {
		if pkt.Flow != loopFlow {
			return 0, false
		}
		if ingress == netsim.SwitchNode(aggD) {
			return aggOther, true
		}
		return aggD, true
	})

	start := c.Now()
	if err := c.SendPacket(src, &netsim.Packet{Flow: loopFlow, Size: 100}); err != nil {
		t.Fatal(err)
	}
	c.RunAll()

	if len(detected) != 1 {
		t.Fatalf("detected %d loops, want 1", len(detected))
	}
	ev := detected[0]
	if ev.Flow != loopFlow {
		t.Errorf("loop reported for %v, want %v", ev.Flow, loopFlow)
	}
	if latency := ev.DetectedAt - start; latency <= 0 || latency > 500*pathdump.Millisecond {
		t.Errorf("detection latency %v out of range", latency)
	}
	if ev.Rounds < 1 || ev.Rounds > 2 {
		t.Errorf("loop needed %d punt rounds, paper bound is 2", ev.Rounds)
	}
	if len(c.Alarms()) == 0 {
		t.Error("no LOOP alarm raised")
	}
}

// silentDropsScenario mirrors examples/silentdrops at reduced scale: a
// faulty interface drops packets silently, TCP monitors raise POOR_PERF
// alarms, and MAX-COVERAGE must localise the injected link from the
// accumulated failure signatures.
func silentDropsScenario(t *testing.T) {
	c, err := pathdump.NewFatTree(4, pathdump.Config{
		Net: pathdump.NetConfig{BandwidthBps: 20e6, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	topo := c.Topo
	faulty := pathdump.LinkID{A: topo.AggID(0, 0), B: topo.CoreID(0)}
	c.SetSilentDrop(faulty.A, faulty.B, 0.03)

	dbg := c.NewSilentDropDebugger()
	if _, err := c.InstallTCPMonitor(3, 200*pathdump.Millisecond); err != nil {
		t.Fatal(err)
	}

	hosts := c.HostIDs()
	gen, err := workload.NewGenerator(c.Sim, c.Stacks, workload.GenConfig{
		Sources: hosts, Dests: hosts,
		Load: 0.7, LinkBps: 20e6, Dist: workload.WebSearch(),
		Until: 120 * pathdump.Second, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen.Start()

	for tm := 10 * pathdump.Second; tm <= 120*pathdump.Second; tm += 10 * pathdump.Second {
		c.Run(tm)
		if recall, precision := dbg.Accuracy([]pathdump.LinkID{faulty}); recall == 1 && precision == 1 {
			if dbg.Signatures() == 0 {
				t.Fatal("localised with zero signatures?")
			}
			return
		}
	}
	t.Fatalf("failed to localise %v: %d signatures, hypothesis %v",
		faulty, dbg.Signatures(), dbg.Localize())
}
