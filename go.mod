module pathdump

go 1.23
