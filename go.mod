module pathdump

go 1.24
