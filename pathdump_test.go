package pathdump

import (
	"strings"
	"testing"
)

func TestClusterLifecycle(t *testing.T) {
	c, err := NewFatTree(4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	hosts := c.HostIDs()
	if len(hosts) != 16 {
		t.Fatalf("hosts = %d", len(hosts))
	}
	if !strings.Contains(c.String(), "16 hosts") {
		t.Errorf("String = %q", c.String())
	}
	src, dst := hosts[0], hosts[12]
	done := false
	f, err := c.StartFlow(src, dst, 80, 300_000, func() { done = true })
	if err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	if !done {
		t.Fatal("flow did not complete")
	}

	// Table-1 host API at the destination.
	paths := c.GetPaths(dst, f, AnyLink, AllTime)
	if len(paths) != 1 {
		t.Fatalf("GetPaths = %v", paths)
	}
	if err := c.Validate(f.SrcIP, f.DstIP, paths[0]); err != nil {
		t.Fatalf("trajectory invalid: %v", err)
	}
	flows := c.GetFlows(dst, AnyLink, AllTime)
	if len(flows) == 0 {
		t.Fatal("GetFlows empty")
	}
	bytes, pkts := c.GetCount(dst, Flow{ID: f}, AllTime)
	if bytes < 300_000 || pkts == 0 {
		t.Errorf("GetCount = %d/%d", bytes, pkts)
	}
	if d := c.GetDuration(dst, Flow{ID: f}, AllTime); d <= 0 {
		t.Errorf("GetDuration = %v", d)
	}
	if poor := c.GetPoorTCPFlows(src, 1); len(poor) != 0 {
		t.Errorf("healthy fabric reported poor flows: %v", poor)
	}

	// Controller API.
	res, stats, err := c.Execute(hosts, Query{Op: OpTopK, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Top) == 0 || stats.Hosts != 16 {
		t.Fatalf("Execute top=%d hosts=%d", len(res.Top), stats.Hosts)
	}
	tres, _, err := c.ExecuteTree(hosts, Query{Op: OpTopK, K: 5}, []int{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tres.Top) != len(res.Top) {
		t.Error("tree result differs from direct")
	}

	// Install/uninstall round trip.
	ids, err := c.InstallTCPMonitor(3, 200*Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.UninstallQuery(ids); err != nil {
		t.Fatal(err)
	}

	// App wrappers reachable through the facade.
	if _, err := c.TrafficMatrix(AllTime); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.TopK(3, AllTime, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClusterVL2(t *testing.T) {
	c, err := NewVL2(8, 6, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	hosts := c.HostIDs()
	src, dst := hosts[0], hosts[len(hosts)-1]
	f, err := c.StartFlow(src, dst, 80, 50_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	paths := c.GetPaths(dst, f, AnyLink, AllTime)
	if len(paths) != 1 {
		t.Fatalf("VL2 GetPaths = %v", paths)
	}
	if err := c.Validate(f.SrcIP, f.DstIP, paths[0]); err != nil {
		t.Fatal(err)
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := NewFatTree(3, Config{}); err == nil {
		t.Error("odd arity accepted")
	}
	if _, err := NewFatTree(74, Config{}); err == nil {
		t.Error("k=74 exceeds the link-ID budget and must be rejected")
	}
	c, _ := NewFatTree(4, Config{})
	if _, err := c.StartFlow(HostID(999), c.HostIDs()[0], 80, 100, nil); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := c.StartFlow(c.HostIDs()[0], HostID(999), 80, 100, nil); err == nil {
		t.Error("unknown destination accepted")
	}
	if got := c.GetFlows(HostID(999), AnyLink, AllTime); got != nil {
		t.Error("unknown host returned flows")
	}
	if c.HostIP(HostID(999)) != 0 {
		t.Error("unknown host has an IP")
	}
}

func TestClusterFailureInjectionAndAlarms(t *testing.T) {
	c, _ := NewFatTree(4, Config{})
	hosts := c.HostIDs()
	var alarms []Alarm
	c.OnAlarm(func(a Alarm) { alarms = append(alarms, a) })
	if _, err := c.InstallTCPMonitor(2, 200*Millisecond); err != nil {
		t.Fatal(err)
	}
	// Blackhole both uplinks of the first ToR.
	tor := c.Topo.Host(hosts[0]).ToR
	for _, agg := range c.Topo.Switch(tor).Up {
		c.SetBlackhole(tor, agg, true)
	}
	if _, err := c.StartFlow(hosts[0], hosts[12], 80, 100_000, nil); err != nil {
		t.Fatal(err)
	}
	c.Run(2 * Second)
	found := false
	for _, a := range alarms {
		if a.Reason == ReasonPoorPerf {
			found = true
		}
	}
	if !found {
		t.Errorf("no POOR_PERF alarm; alarms = %v", alarms)
	}
	if len(c.Alarms()) != len(alarms) {
		t.Error("alarm log mismatch")
	}
}
