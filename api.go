package pathdump

import (
	"context"
	"fmt"
	"time"

	"pathdump/internal/apps"
	"pathdump/internal/query"
)

// This file exposes the paper's Table-1 interface verbatim.
//
// Host API — each host answers for its "local" flows (flows whose dstIP
// is this host):
//
//	getFlows(linkID, timeRange)
//	getPaths(flowID, linkID, timeRange)
//	getCount(Flow, timeRange)
//	getDuration(Flow, timeRange)
//	getPoorTCPFlows(threshold)
//	Alarm(flowID, reason, paths)
//
// Controller API:
//
//	execute(List⟨HostID⟩, Query)
//	install(List⟨HostID⟩, Query, Period)
//	uninstall(List⟨HostID⟩, Query)

// GetFlows returns the flows (with their paths) that traversed linkID
// during the time range, as recorded at the given host.
func (c *Cluster) GetFlows(host HostID, link LinkID, tr TimeRange) []Flow {
	a := c.Agents[host]
	if a == nil {
		return nil
	}
	return a.Execute(Query{Op: OpFlows, Link: link, Range: tr}).Flows
}

// GetPaths returns the paths flowID took through linkID during the range,
// as recorded at the given host.
func (c *Cluster) GetPaths(host HostID, f FlowID, link LinkID, tr TimeRange) []Path {
	a := c.Agents[host]
	if a == nil {
		return nil
	}
	return a.Execute(Query{Op: OpPaths, Flow: f, Link: link, Range: tr}).Paths
}

// GetCount returns packet and byte counts of a ⟨flowID, path⟩ pair within
// the range (nil path aggregates every path of the flow).
func (c *Cluster) GetCount(host HostID, f Flow, tr TimeRange) (bytes, pkts uint64) {
	a := c.Agents[host]
	if a == nil {
		return 0, 0
	}
	res := a.Execute(Query{Op: OpCount, Flow: f.ID, Path: f.Path, Range: tr})
	return res.Bytes, res.Pkts
}

// GetDuration returns the active duration of a ⟨flowID, path⟩ pair within
// the range.
func (c *Cluster) GetDuration(host HostID, f Flow, tr TimeRange) Time {
	a := c.Agents[host]
	if a == nil {
		return 0
	}
	return a.Execute(Query{Op: OpDuration, Flow: f.ID, Path: f.Path, Range: tr}).Duration
}

// GetPoorTCPFlows returns the host's TCP flows whose consecutive
// retransmissions reached the threshold.
func (c *Cluster) GetPoorTCPFlows(host HostID, threshold int) []FlowID {
	a := c.Agents[host]
	if a == nil {
		return nil
	}
	return a.PoorTCPFlows(threshold)
}

// RaiseAlarm lets applications inject an alarm into the controller
// (agents call this internally via their sink).
func (c *Cluster) RaiseAlarm(a Alarm) { c.Ctrl.RaiseAlarm(a) }

// Execute runs a query at each listed host as a direct query and merges
// the results at the controller.
func (c *Cluster) Execute(hosts []HostID, q Query) (Result, ExecStats, error) {
	return c.Ctrl.Execute(hosts, q)
}

// ExecuteContext is Execute under a caller context: cancellation (or an
// expired deadline, via context.WithTimeout) aborts the in-flight
// fan-out promptly — a slow or dead host cannot pin the whole query —
// and ExecStats.Skipped reports how many hosts were cut off. With
// Config.Query.PartialOnDeadline set, an expired deadline instead
// returns the merged partial result (ExecStats.Partial, nil error); with
// Config.Query.PerHostTimeout/HedgeAfter set, individual stragglers are
// dropped or hedged without failing the query (ExecStats.Hedged counts
// the duplicates issued).
func (c *Cluster) ExecuteContext(ctx context.Context, hosts []HostID, q Query) (Result, ExecStats, error) {
	return c.Ctrl.ExecuteContext(ctx, hosts, q)
}

// ExecuteTree runs a query through a multi-level aggregation tree with
// the given per-level fan-outs (§3.2; the paper uses [7,4,4] over 112
// hosts).
func (c *Cluster) ExecuteTree(hosts []HostID, q Query, fanouts []int) (Result, ExecStats, error) {
	return c.Ctrl.ExecuteTree(hosts, q, fanouts)
}

// ExecuteTreeContext is ExecuteTree under a caller context (see
// ExecuteContext for cancellation semantics).
func (c *Cluster) ExecuteTreeContext(ctx context.Context, hosts []HostID, q Query, fanouts []int) (Result, ExecStats, error) {
	return c.Ctrl.ExecuteTreeContext(ctx, hosts, q, fanouts)
}

// InstallQuery installs a query at each host for periodic execution
// (period 0 = event-triggered). The returned handle uninstalls it.
// Installation is atomic at the fleet level: on the first failure every
// already-installed ID is rolled back before the error returns.
func (c *Cluster) InstallQuery(hosts []HostID, q Query, period Time) (map[HostID]int, error) {
	return c.Ctrl.Install(hosts, q, period)
}

// InstallQueryContext is InstallQuery under a caller context; a partial
// installation is rolled back even when the context is already cancelled.
func (c *Cluster) InstallQueryContext(ctx context.Context, hosts []HostID, q Query, period Time) (map[HostID]int, error) {
	return c.Ctrl.InstallContext(ctx, hosts, q, period)
}

// UninstallQuery removes previously installed queries.
func (c *Cluster) UninstallQuery(ids map[HostID]int) error { return c.Ctrl.Uninstall(ids) }

// UninstallQueryContext is UninstallQuery under a caller context.
func (c *Cluster) UninstallQueryContext(ctx context.Context, ids map[HostID]int) error {
	return c.Ctrl.UninstallContext(ctx, ids)
}

// QueryHostContext executes one query at one host (the direct query
// primitive) under a caller context.
func (c *Cluster) QueryHostContext(ctx context.Context, host HostID, q Query) (Result, error) {
	return c.Ctrl.QueryHostContext(ctx, host, q)
}

// SetQueryParallelism re-bounds the controller's concurrent per-host
// request fan-out (<= 0 means unlimited). Each execution captures the
// bound once at its start, so this applies to the next
// Execute/ExecuteTree/InstallQuery call; do not call it concurrently
// with in-flight queries.
func (c *Cluster) SetQueryParallelism(n int) { c.Ctrl.Parallelism = n }

// QueryParallelism reports the current fan-out bound (0 = unlimited).
func (c *Cluster) QueryParallelism() int { return c.Ctrl.Parallelism }

// SetStragglerPolicy retunes the controller's straggler tolerance for
// subsequent queries: hedgeAfter issues a duplicate request to a host
// that has not answered in time, perHostTimeout drops a host that
// exhausts its budget (marking the result Partial), and
// partialOnDeadline returns the merged partial result when the
// whole-query deadline expires instead of an error. Each execution
// captures the policy once at its start; do not call concurrently with
// in-flight queries.
func (c *Cluster) SetStragglerPolicy(hedgeAfter, perHostTimeout time.Duration, partialOnDeadline bool) {
	c.Ctrl.HedgeAfter = hedgeAfter
	c.Ctrl.PerHostTimeout = perHostTimeout
	c.Ctrl.PartialOnDeadline = partialOnDeadline
}

// ---- Debugging-application wrappers (§4) ----

// InstallTCPMonitor installs the active monitoring query at every host:
// each period, flows with ≥ threshold consecutive retransmissions raise
// POOR_PERF alarms (§3.2).
func (c *Cluster) InstallTCPMonitor(threshold int, period Time) (map[HostID]int, error) {
	return apps.InstallTCPMonitor(c.Ctrl, c.HostIDs(), threshold, period)
}

// InstallPathConformance installs the §2.3 conformance check at every
// host: alarms on paths of maxLen+ switches, paths crossing `avoid`, or
// paths missing `waypoints`.
func (c *Cluster) InstallPathConformance(maxLen int, avoid, waypoints []SwitchID, period Time) (map[HostID]int, error) {
	return apps.InstallPathConformance(c.Ctrl, c.HostIDs(), maxLen, avoid, waypoints, period)
}

// TopK returns the k biggest flows cluster-wide via the aggregation tree.
func (c *Cluster) TopK(k int, tr TimeRange, fanouts []int) ([]query.FlowBytes, ExecStats, error) {
	return apps.TopK(c.Ctrl, c.HostIDs(), k, tr, fanouts)
}

// FlowSizeDistribution runs the §2.3 load-imbalance query over the given
// links.
func (c *Cluster) FlowSizeDistribution(links []LinkID, tr TimeRange, binBytes uint64, fanouts []int) ([]query.LinkHist, ExecStats, error) {
	return apps.FlowSizeDistribution(c.Ctrl, c.HostIDs(), links, tr, binBytes, fanouts)
}

// SubflowBytes reports a sprayed flow's per-path traffic split (§4.2).
func (c *Cluster) SubflowBytes(f FlowID, tr TimeRange) ([]apps.PathBytes, error) {
	return apps.SubflowBytes(c.Ctrl, f, tr)
}

// DiagnoseBlackhole compares a flow's observed paths against its
// equal-cost set and joins the missing ones (§4.4).
func (c *Cluster) DiagnoseBlackhole(f FlowID, tr TimeRange) (*apps.BlackholeDiagnosis, error) {
	return apps.DiagnoseBlackhole(c.Ctrl, f, tr)
}

// DiagnoseOutcast analyses per-sender throughput at a receiver (§4.6).
func (c *Cluster) DiagnoseOutcast(receiver IP, tr TimeRange) (*apps.OutcastDiagnosis, error) {
	return apps.DiagnoseOutcast(c.Ctrl, receiver, tr)
}

// NewSilentDropDebugger attaches the §4.3 MAX-COVERAGE localiser to the
// controller's alarm stream.
func (c *Cluster) NewSilentDropDebugger() *apps.SilentDropDebugger {
	return apps.NewSilentDropDebugger(c.Ctrl)
}

// TrafficMatrix aggregates ToR-to-ToR bytes across all hosts.
func (c *Cluster) TrafficMatrix(tr TimeRange) ([]query.MatrixCell, error) {
	return apps.TrafficMatrix(c.Ctrl, c.HostIDs(), tr)
}

// DetectPolarization checks how flows leaving sw split over its
// equal-cost uplinks and raises ECMP_POLARIZED when the spread is
// degenerate (λ ≥ lambdaThresh with ≥ minFlows flows).
func (c *Cluster) DetectPolarization(sw SwitchID, tr TimeRange, lambdaThresh float64, minFlows int) (*apps.PolarizationReport, error) {
	return apps.DetectPolarization(c.Ctrl, c.HostIDs(), sw, tr, lambdaThresh, minFlows)
}

// RankPolarization sweeps DetectPolarization over switches, sorted by λ
// descending.
func (c *Cluster) RankPolarization(sws []SwitchID, tr TimeRange, lambdaThresh float64, minFlows int) ([]*apps.PolarizationReport, error) {
	return apps.RankPolarization(c.Ctrl, c.HostIDs(), sws, tr, lambdaThresh, minFlows)
}

// DetectIncast scans a receiver's TIB for a many-to-one microburst: a
// window of the given length in which flows from at least minSources
// distinct sources started. Returns (nil, nil) when no burst is found.
func (c *Cluster) DetectIncast(receiver HostID, window Time, minSources int, tr TimeRange) (*apps.IncastEvent, error) {
	return apps.DetectIncast(c.Ctrl, receiver, window, minSources, tr)
}

// LocalizeDDoS ranks a victim's traffic sources and aggregates the top
// sources' paths into per-switch byte totals, raising DDOS_SUSPECT when
// the concentration crosses the thresholds.
func (c *Cluster) LocalizeDDoS(victim HostID, tr TimeRange, topK int, shareThresh float64, minSources int) (*apps.DDoSLocalization, error) {
	return apps.LocalizeDDoS(c.Ctrl, victim, tr, topK, shareThresh, minSources)
}

// NewTransientLoopAuditor attaches a loop/failure-timeline correlator to
// the controller's LOOP stream. It is also subscribed to the simulator's
// link-state events, so administrative failures (FailLink, FlapLink,
// down-bit impairments) feed the failure timeline automatically;
// NoteLinkFailure remains available for out-of-band failures the fabric
// itself cannot observe.
func (c *Cluster) NewTransientLoopAuditor(window Time) *apps.TransientLoopAuditor {
	a := apps.NewTransientLoopAuditor(c.Ctrl, window)
	if c.Sim != nil {
		a.AttachSim(c.Sim)
	}
	return a
}

// Validate cross-checks a trajectory against the ground-truth topology
// (§2.4's defence against switches inserting wrong IDs).
func (c *Cluster) Validate(src, dst IP, p Path) error {
	return c.Topo.ValidTrajectory(src, dst, p)
}

// String describes the cluster.
func (c *Cluster) String() string {
	return fmt.Sprintf("pathdump cluster: %s, %d switches, %d hosts",
		c.Topo.Kind, c.Topo.NumSwitches(), len(c.Agents))
}
