package agent

import (
	"pathdump/internal/cherrypick"
	"pathdump/internal/types"
)

// The paper notes that "extending PathDump to store and query at
// per-packet granularity remains an intriguing future direction" (§2.2):
// the shipped system aggregates per path to avoid storage bottlenecks.
// This file implements that extension as an opt-in bounded ring — recent
// packets keep their individual trajectories and timestamps, the
// aggregate TIB stays the primary store, and memory is strictly capped.

// PacketRecord is one logged packet with its reconstructed trajectory.
type PacketRecord struct {
	Flow types.FlowID
	Path types.Path
	At   types.Time
	Size int
}

// packetRing is a fixed-capacity circular log of raw packet headers;
// paths are constructed lazily on read through the trajectory cache.
type packetRing struct {
	entries []packetEntry
	next    int
	full    bool
}

type packetEntry struct {
	flow types.FlowID
	hdr  cherrypick.Header
	at   types.Time
	size int
}

func newPacketRing(capacity int) *packetRing {
	return &packetRing{entries: make([]packetEntry, capacity)}
}

func (r *packetRing) add(e packetEntry) {
	r.entries[r.next] = e
	r.next++
	if r.next == len(r.entries) {
		r.next = 0
		r.full = true
	}
}

// snapshot returns entries oldest-first.
func (r *packetRing) snapshot() []packetEntry {
	if !r.full {
		return append([]packetEntry(nil), r.entries[:r.next]...)
	}
	out := make([]packetEntry, 0, len(r.entries))
	out = append(out, r.entries[r.next:]...)
	out = append(out, r.entries[:r.next]...)
	return out
}

// RecentPackets returns the per-packet log (oldest first) with
// trajectories constructed; packets whose headers no longer decode are
// skipped. Empty unless Config.PacketLog enabled the ring.
func (a *Agent) RecentPackets() []PacketRecord {
	if a.plog == nil {
		return nil
	}
	entries := a.plog.snapshot()
	out := make([]PacketRecord, 0, len(entries))
	for _, e := range entries {
		p, err := a.construct(e.flow.SrcIP, e.hdr)
		if err != nil {
			continue
		}
		out = append(out, PacketRecord{Flow: e.flow, Path: p, At: e.at, Size: e.size})
	}
	return out
}
