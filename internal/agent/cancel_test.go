package agent

import (
	"context"
	"errors"
	"testing"
	"time"

	"pathdump/internal/netsim"
	"pathdump/internal/query"
	"pathdump/internal/types"
)

// TestAgentExecuteContext: the agent's evaluation loop honours the caller
// context — pre-cancelled contexts never scan, an uncancelled context
// returns exactly the plain-Execute result, and a cancel mid-scan over a
// large sharded TIB cuts the evaluation short.
func TestAgentExecuteContext(t *testing.T) {
	r := newRig(t, netsim.Config{Seed: 7}, Config{})
	host := r.sim.Topo.Hosts()[0]
	a := r.agents[host.ID]
	const records = 200_000
	for i := 0; i < records; i++ {
		a.Store.Add(types.Record{
			Flow: types.FlowID{
				SrcIP: types.IP(i), DstIP: host.IP,
				SrcPort: uint16(i), DstPort: 80, Proto: types.ProtoTCP,
			},
			Path:  types.Path{types.SwitchID(i % 8), types.SwitchID(8 + i%8), 16},
			STime: types.Time(i), ETime: types.Time(i + 10),
			Bytes: uint64(100 + i), Pkts: 1,
		})
	}

	q := query.Query{Op: query.OpTopK, K: 100}

	// Uncancelled: identical to the plain path.
	res, err := a.ExecuteContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	plain := a.Execute(q)
	if len(res.Top) != len(plain.Top) {
		t.Fatalf("ctx result %d entries, plain %d", len(res.Top), len(plain.Top))
	}
	for i := range res.Top {
		if res.Top[i] != plain.Top[i] {
			t.Fatalf("entry %d differs between ctx and plain execution", i)
		}
	}

	// Pre-cancelled: immediate context error.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.ExecuteContext(cctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v, want context.Canceled", err)
	}

	// Cancelled mid-scan: returns the context error, promptly.
	mctx, mcancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		mcancel()
	}()
	start := time.Now()
	_, err = a.ExecuteContext(mctx, q)
	elapsed := time.Since(start)
	mcancel()
	if err == nil {
		// The scan beat the cancel on a fast machine; that's legal.
		t.Logf("scan completed in %v before the 2 ms cancel", elapsed)
		return
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-scan err = %v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancelled evaluation took %v", elapsed)
	}
}
