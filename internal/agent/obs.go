// Agent-plane metrics: one registration call per agent exposes the
// ingest datapath (§5.3's overhead counters), the TIB store's segment
// lifecycle, the cold tier, and installed-query trigger progress on a
// shared obs.Registry, labelled by host.

package agent

import (
	"fmt"
	"sync"

	"pathdump/internal/obs"
)

// RegisterMetrics exposes this agent on r. The agent's public counters
// (PacketsSeen, RecordsStored, …) are plain fields written on the
// simulation goroutine, so every scrape-time read takes mu — pass the
// same lock the caller holds while stepping the simulation (pathdumpd's
// simulation mutex). Store and trigger telemetry carry their own
// synchronisation and bypass it. All series are gauges computed at
// scrape time; the cumulative ones never decrease.
func (a *Agent) RegisterMetrics(r *obs.Registry, mu sync.Locker) {
	hl := obs.L("host", fmt.Sprintf("%d", uint32(a.Host.ID)))
	locked := func(f func() float64) func() float64 {
		return func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return f()
		}
	}
	r.GaugeFunc("pathdump_agent_packets_seen", "Packets the agent's datapath has processed (cumulative).",
		locked(func() float64 { return float64(a.PacketsSeen) }), hl)
	r.GaugeFunc("pathdump_agent_bytes_seen", "Payload bytes the agent's datapath has processed (cumulative).",
		locked(func() float64 { return float64(a.BytesSeen) }), hl)
	r.GaugeFunc("pathdump_agent_records_stored", "Trajectory records committed to the TIB (cumulative).",
		locked(func() float64 { return float64(a.RecordsStored) }), hl)
	r.GaugeFunc("pathdump_agent_records_evicted", "Records dropped by retention or byte-budget eviction (cumulative).",
		locked(func() float64 { return float64(a.RecordsEvicted) }), hl)
	r.GaugeFunc("pathdump_agent_invalid_trajectories", "Packets whose trajectory failed path validation (cumulative).",
		locked(func() float64 { return float64(a.InvalidTraj) }), hl)
	r.GaugeFunc("pathdump_agent_spill_errors", "Failed cold-tier spill attempts (cumulative).",
		locked(func() float64 { return float64(a.SpillErrors) }), hl)

	r.GaugeFunc("pathdump_tib_records", "Records resident in the TIB store.",
		func() float64 { return float64(a.Store.Len()) }, hl)
	r.GaugeFunc("pathdump_tib_segments", "Segments in the TIB store (active + sealed + cold).",
		func() float64 { return float64(a.Store.Segments()) }, hl)
	r.GaugeFunc("pathdump_tib_seals", "Segments sealed since the store was built (cumulative).",
		func() float64 { return float64(a.Store.Seals()) }, hl)
	r.GaugeFunc("pathdump_tib_compactions", "Completed compaction passes (cumulative).",
		func() float64 { return float64(a.Store.Compactions()) }, hl)
	r.GaugeFunc("pathdump_tib_cold_segments", "Segments currently spilled to the cold tier.",
		func() float64 { return float64(a.Store.ColdStats().Segments) }, hl)
	r.GaugeFunc("pathdump_tib_cold_loads", "Cold-tier demand loads served (cumulative).",
		func() float64 { return float64(a.Store.ColdStats().Loads) }, hl)
	r.GaugeFunc("pathdump_tib_cold_faults", "Failed cold-tier demand loads (cumulative).",
		func() float64 { return float64(a.Store.ColdStats().Faults) }, hl)

	r.GaugeFunc("pathdump_triggers_installed", "Installed (continuously monitored) queries.",
		func() float64 { n, _, _, _ := a.TriggerTotals(); return float64(n) }, hl)
	r.GaugeFunc("pathdump_trigger_runs", "Incremental trigger evaluations across all installed queries (cumulative).",
		func() float64 { _, runs, _, _ := a.TriggerTotals(); return float64(runs) }, hl)
	r.GaugeFunc("pathdump_trigger_records_scanned", "Records scanned by incremental trigger runs (cumulative).",
		func() float64 { _, _, sc, _ := a.TriggerTotals(); return float64(sc) }, hl)
	r.GaugeFunc("pathdump_trigger_min_watermark", "Lowest arrival-sequence watermark across installed queries (the furthest-behind trigger).",
		func() float64 { _, _, _, wm := a.TriggerTotals(); return float64(wm) }, hl)
}
