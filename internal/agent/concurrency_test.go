package agent

import (
	"sync"
	"testing"

	"pathdump/internal/netsim"
	"pathdump/internal/query"
	"pathdump/internal/types"
)

// TestAgentConcurrentIngestAndQuery hammers one agent with concurrent TIB
// ingest (Store.Add, the datapath export path) and full query execution
// (Execute, the HTTP-served host API) — the overlap the sharded TIB
// exists for. Run under -race this is the per-host half of the
// race-proving suite; the assertions check no record is lost or
// double-counted.
func TestAgentConcurrentIngestAndQuery(t *testing.T) {
	r := newRig(t, netsim.Config{Seed: 42}, Config{})
	host := r.sim.Topo.Hosts()[0]
	a := r.agents[host.ID]

	const (
		writers   = 4
		perWriter = 1500
		readers   = 4
	)
	record := func(w, i int) types.Record {
		return types.Record{
			Flow: types.FlowID{
				SrcIP: types.IP(w<<20 | i), DstIP: host.IP,
				SrcPort: uint16(i), DstPort: 80, Proto: types.ProtoTCP,
			},
			Path:  types.Path{types.SwitchID(i % 8), types.SwitchID(8 + i%8), types.SwitchID(16 + i%4)},
			STime: types.Time(i), ETime: types.Time(i + 5),
			Bytes: 1000, Pkts: 1,
		}
	}

	var writeGroup, readGroup sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < readers; g++ {
		readGroup.Add(1)
		go func(g int) {
			defer readGroup.Done()
			ops := []query.Query{
				{Op: query.OpTopK, K: 50},
				{Op: query.OpFlows, Link: types.AnyLink},
				{Op: query.OpMatrix},
				{Op: query.OpFlows, Link: types.LinkID{A: types.SwitchID(g), B: types.SwitchID(8 + g)}},
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				res := a.Execute(ops[i%len(ops)])
				_ = res
				_ = a.TIBSize()
			}
		}(g)
	}
	for w := 0; w < writers; w++ {
		writeGroup.Add(1)
		go func(w int) {
			defer writeGroup.Done()
			for i := 0; i < perWriter; i++ {
				a.Store.Add(record(w, i))
			}
		}(w)
	}
	writeGroup.Wait()
	close(stop)
	readGroup.Wait()

	if got := a.Store.Len(); got != writers*perWriter {
		t.Fatalf("TIB holds %d records, want %d", got, writers*perWriter)
	}
	res := a.Execute(query.Query{Op: query.OpCount, Flow: record(2, 77).Flow})
	if res.Bytes != 1000 || res.Pkts != 1 {
		t.Fatalf("record lost under concurrency: count = %d/%d", res.Bytes, res.Pkts)
	}
	// A full post-hoc scan sees every record exactly once.
	n := 0
	a.Store.ForEach(types.AnyLink, types.AllTime, func(*types.Record) { n++ })
	if n != writers*perWriter {
		t.Fatalf("scan visited %d records, want %d", n, writers*perWriter)
	}
}
