package agent

import (
	"testing"

	"pathdump/internal/cherrypick"
	"pathdump/internal/netsim"
	"pathdump/internal/query"
	"pathdump/internal/tcp"
	"pathdump/internal/topology"
	"pathdump/internal/types"
)

type alarmLog struct {
	alarms []types.Alarm
}

func (l *alarmLog) RaiseAlarm(a types.Alarm) { l.alarms = append(l.alarms, a) }

// rig builds a 4-ary fat-tree with agents (and TCP stacks) on all hosts.
type rig struct {
	sim    *netsim.Sim
	agents map[types.HostID]*Agent
	stacks map[types.HostID]*tcp.Stack
	log    *alarmLog
}

func newRig(t *testing.T, cfg netsim.Config, acfg Config) *rig {
	t.Helper()
	topo, err := topology.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := cherrypick.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.New(topo, scheme, cfg)
	r := &rig{
		sim:    sim,
		agents: make(map[types.HostID]*Agent),
		stacks: make(map[types.HostID]*tcp.Stack),
		log:    &alarmLog{},
	}
	for _, h := range topo.Hosts() {
		st := tcp.NewStack(sim, h.ID, tcp.Config{})
		r.stacks[h.ID] = st
		r.agents[h.ID] = New(sim, h, st, r.log, acfg)
	}
	return r
}

func (r *rig) flow(src, dst *topology.Host, port uint16) types.FlowID {
	return types.FlowID{SrcIP: src.IP, DstIP: dst.IP, SrcPort: port, DstPort: 80, Proto: types.ProtoTCP}
}

func TestDatapathBuildsTIB(t *testing.T) {
	r := newRig(t, netsim.Config{}, Config{})
	src := r.sim.Topo.Hosts()[0]
	dst := r.sim.Topo.HostsAt(r.sim.Topo.ToRID(2, 0))[0]
	f := r.flow(src, dst, 1000)
	r.stacks[src.ID].StartFlow(f, 50_000, 0, nil)
	r.sim.RunAll()

	a := r.agents[dst.ID]
	// FIN-driven eviction exported the record without waiting for the
	// idle sweep.
	paths := a.Store.Paths(f, types.AnyLink, types.AllTime)
	if len(paths) != 1 {
		t.Fatalf("paths in TIB = %v", paths)
	}
	if err := r.sim.Topo.ValidTrajectory(f.SrcIP, f.DstIP, paths[0]); err != nil {
		t.Fatalf("stored path invalid: %v", err)
	}
	bytes, pkts := a.Store.Count(types.Flow{ID: f}, types.AllTime)
	if bytes == 0 || pkts == 0 {
		t.Error("zero counters in TIB record")
	}
	// The reverse direction (ACK stream) is recorded at the sender side.
	back := r.agents[src.ID].Store.Paths(f.Reverse(), types.AnyLink, types.AllTime)
	if len(back) == 0 {
		t.Error("ACK trajectory missing at sender's TIB")
	}
	if a.PacketsSeen == 0 || a.RecordsStored == 0 {
		t.Error("datapath counters not updated")
	}
}

func TestIdleSweepExports(t *testing.T) {
	r := newRig(t, netsim.Config{}, Config{IdleTimeout: 2 * types.Second, SweepPeriod: 500 * types.Millisecond})
	src := r.sim.Topo.Hosts()[0]
	dst := r.sim.Topo.HostsAt(r.sim.Topo.ToRID(1, 0))[0]
	f := r.flow(src, dst, 1001)
	// Raw packet without FIN: only the sweep can export it.
	r.sim.Send(src.ID, &netsim.Packet{Flow: f, Size: 500})
	r.sim.RunAll() // drains: data packet, then sweeps until memory empties
	a := r.agents[dst.ID]
	if a.Mem.Len() != 0 {
		t.Fatalf("memory still holds %d records", a.Mem.Len())
	}
	if got := a.Store.Len(); got != 1 {
		t.Fatalf("store has %d records, want 1", got)
	}
}

func TestLiveMemoryVisibleToQueries(t *testing.T) {
	r := newRig(t, netsim.Config{}, Config{})
	src := r.sim.Topo.Hosts()[0]
	dst := r.sim.Topo.HostsAt(r.sim.Topo.ToRID(1, 0))[0]
	f := r.flow(src, dst, 1002)
	r.sim.Send(src.ID, &netsim.Packet{Flow: f, Size: 700})
	// Run only until delivery (before any sweep).
	r.sim.Run(10 * types.Millisecond)
	a := r.agents[dst.ID]
	if a.Store.Len() != 0 {
		t.Fatal("record exported too early")
	}
	res := a.Execute(query.Query{Op: query.OpFlows, Link: types.AnyLink})
	if len(res.Flows) != 1 || res.Flows[0].ID != f {
		t.Fatalf("live record invisible: %v", res.Flows)
	}
	res = a.Execute(query.Query{Op: query.OpCount, Flow: f})
	if res.Bytes != 700 {
		t.Errorf("live count = %d", res.Bytes)
	}
}

func TestTrajectoryCacheIsUsed(t *testing.T) {
	r := newRig(t, netsim.Config{}, Config{})
	src := r.sim.Topo.Hosts()[0]
	dst := r.sim.Topo.HostsAt(r.sim.Topo.ToRID(1, 0))[0]
	a := r.agents[dst.ID]
	// Many sequential flows between the same pair reuse one path.
	for i := 0; i < 20; i++ {
		f := r.flow(src, dst, uint16(2000+i))
		r.sim.Send(src.ID, &netsim.Packet{Flow: f, Size: 100, Fin: true})
	}
	r.sim.RunAll()
	if a.Cache.Hits == 0 {
		t.Error("trajectory cache never hit")
	}
	if a.Cache.HitRate() < 0.5 {
		t.Errorf("hit rate = %v", a.Cache.HitRate())
	}
}

func TestPeriodicPoorTCPInstall(t *testing.T) {
	r := newRig(t, netsim.Config{Seed: 7}, Config{})
	src := r.sim.Topo.Hosts()[0]
	dst := r.sim.Topo.HostsAt(r.sim.Topo.ToRID(1, 1))[0]
	// Install the paper's 200 ms monitoring query at the sender host.
	id := r.agents[src.ID].Install(query.Query{Op: query.OpPoorTCP, Threshold: 2}, 200*types.Millisecond)
	// Blackhole the uplinks so the flow stalls.
	r.sim.SetBlackhole(src.ToR, r.sim.Topo.AggID(0, 0), true)
	r.sim.SetBlackhole(src.ToR, r.sim.Topo.AggID(0, 1), true)
	f := r.flow(src, dst, 3000)
	r.stacks[src.ID].StartFlow(f, 100_000, 0, nil)
	r.sim.Run(3 * types.Second)

	found := 0
	for _, al := range r.log.alarms {
		if al.Reason == types.ReasonPoorPerf && al.Flow == f && al.Host == src.ID {
			found++
		}
	}
	if found == 0 {
		t.Fatal("no POOR_PERF alarm raised")
	}
	// Uninstall stops the stream.
	if err := r.agents[src.ID].Uninstall(id); err != nil {
		t.Fatal(err)
	}
	before := len(r.log.alarms)
	r.sim.Run(5 * types.Second)
	if len(r.log.alarms) != before {
		t.Error("alarms raised after uninstall")
	}
	if err := r.agents[src.ID].Uninstall(999); err == nil {
		t.Error("uninstalling unknown ID should fail")
	}
}

func TestEventTriggeredConformance(t *testing.T) {
	r := newRig(t, netsim.Config{}, Config{})
	topo := r.sim.Topo
	src := topo.Hosts()[0]
	dst := topo.HostsAt(topo.ToRID(2, 0))[0]
	// Install path conformance (§2.3): alarm on paths of ≥6 switches.
	r.agents[dst.ID].Install(query.Query{Op: query.OpConformance, MaxPathLen: 6}, 0)

	// Healthy 5-switch path: no alarm.
	f := r.flow(src, dst, 4000)
	r.sim.Send(src.ID, &netsim.Packet{Flow: f, Size: 100, Fin: true})
	r.sim.RunAll()
	if n := len(r.log.alarms); n != 0 {
		t.Fatalf("alarm on conformant path: %v", r.log.alarms)
	}

	// Misconfigure the destination-pod aggregation switch to bounce the
	// flow through the wrong ToR: a delivered 7-switch detour.
	paths := r.agents[dst.ID].Store.Paths(f, types.AnyLink, types.AllTime)
	aggD := paths[0][3]
	wrongToR := topo.ToRID(2, 1)
	r.sim.SetNextHopOverride(aggD, func(pkt *netsim.Packet, _ []types.SwitchID, ingress netsim.NodeID) (types.SwitchID, bool) {
		if pkt.Flow == f && ingress != netsim.SwitchNode(wrongToR) {
			return wrongToR, true
		}
		return 0, false
	})
	r.sim.Send(src.ID, &netsim.Packet{Flow: f, Seq: 1, Size: 100, Fin: true})
	r.sim.RunAll()
	var pc []types.Alarm
	for _, al := range r.log.alarms {
		if al.Reason == types.ReasonPathConformance {
			pc = append(pc, al)
		}
	}
	if len(pc) == 0 {
		t.Fatal("delivered long path raised no PC_FAIL alarm")
	}
	if !pc[0].Paths[0].Contains(wrongToR) {
		t.Errorf("alarm path %v misses the detour ToR", pc[0].Paths[0])
	}
}

func TestInstalledQueryListing(t *testing.T) {
	r := newRig(t, netsim.Config{}, Config{})
	a := r.agents[0]
	id1 := a.Install(query.Query{Op: query.OpPoorTCP}, types.Second)
	id2 := a.Install(query.Query{Op: query.OpConformance, MaxPathLen: 6}, 0)
	if got := a.InstalledQueries(); len(got) != 2 {
		t.Fatalf("installed = %v", got)
	}
	if err := a.Uninstall(id1); err != nil {
		t.Fatal(err)
	}
	if got := a.InstalledQueries(); len(got) != 1 || got[0] != id2 {
		t.Fatalf("after uninstall = %v", got)
	}
}

func TestPerPacketLogExtension(t *testing.T) {
	topo, _ := topology.FatTree(4)
	scheme, _ := cherrypick.New(topo)
	sim := netsim.New(topo, scheme, netsim.Config{})
	src := topo.Hosts()[0]
	dst := topo.HostsAt(topo.ToRID(2, 0))[0]
	a := New(sim, dst, nil, nil, Config{PacketLog: 4})
	f := types.FlowID{SrcIP: src.IP, DstIP: dst.IP, SrcPort: 9000, DstPort: 80, Proto: types.ProtoTCP}
	for i := 0; i < 7; i++ {
		sim.Send(src.ID, &netsim.Packet{Flow: f, Seq: uint64(i), Size: 100 + i})
	}
	sim.RunAll()
	got := a.RecentPackets()
	if len(got) != 4 {
		t.Fatalf("ring kept %d packets, want 4", len(got))
	}
	// Oldest-first ordering: sizes 103..106 survive.
	for i, pr := range got {
		if pr.Size != 103+i {
			t.Errorf("entry %d size = %d, want %d", i, pr.Size, 103+i)
		}
		if err := topo.ValidTrajectory(f.SrcIP, f.DstIP, pr.Path); err != nil {
			t.Errorf("per-packet path invalid: %v", err)
		}
		if pr.At <= 0 {
			t.Error("missing timestamp")
		}
	}
	// Disabled by default.
	b := New(sim, topo.Hosts()[1], nil, nil, Config{})
	if b.RecentPackets() != nil {
		t.Error("packet log should be off by default")
	}
}

func TestIngestRetentionBoundsStore(t *testing.T) {
	// Bounded retention (§5.3): the agent's ingest path evicts whole
	// expired TIB segments as records arrive, so per-host storage tracks
	// the retention window instead of growing without bound.
	const (
		retention = 10 * types.Second
		spacing   = 500 * types.Millisecond
		flows     = 100
	)
	r := newRig(t, netsim.Config{}, Config{Retention: retention})
	src := r.sim.Topo.Hosts()[0]
	dst := r.sim.Topo.HostsAt(r.sim.Topo.ToRID(1, 0))[0]
	for i := 0; i < flows; i++ {
		f := r.flow(src, dst, uint16(2000+i))
		// FIN-carrying raw packet: exported at arrival, timestamped now.
		r.sim.Send(src.ID, &netsim.Packet{Flow: f, Size: 400, Fin: true})
		r.sim.Run(types.Time(i+1) * spacing)
	}
	a := r.agents[dst.ID]
	if a.RecordsStored != flows {
		t.Fatalf("stored %d records, want %d", a.RecordsStored, flows)
	}
	if a.RecordsEvicted == 0 {
		t.Fatal("50s of ingest under a 10s retention evicted nothing")
	}
	if a.Store.Len() != int(a.RecordsStored-a.RecordsEvicted) {
		t.Fatalf("Len = %d, stored %d, evicted %d", a.Store.Len(), a.RecordsStored, a.RecordsEvicted)
	}
	if a.Store.Len() >= flows {
		t.Fatalf("store not bounded: %d records", a.Store.Len())
	}
	// Survivors all sit inside the retention window (one segment-span of
	// slack at the boundary — eviction granularity is a whole segment).
	cutoff := r.sim.Now() - retention
	slack := retention / 8 * 2 // default SegmentSpan is Retention/8
	a.Store.ForEach(types.AnyLink, types.AllTime, func(rec *types.Record) {
		if rec.ETime < cutoff-slack {
			t.Fatalf("expired record survived: %v (cutoff %v)", rec, cutoff)
		}
	})
	// And the recent window is intact: the last flows are queryable.
	f := r.flow(src, dst, uint16(2000+flows-1))
	if got := a.Store.Paths(f, types.AnyLink, types.AllTime); len(got) != 1 {
		t.Fatalf("freshest record missing: %v", got)
	}
}

func TestIngestColdTierAndCompaction(t *testing.T) {
	// Storage engine v2 on the ingest path: with a cold tier and
	// compaction configured, the export hooks spill old sealed segments
	// to disk (bounding resident bytes without losing data) and keep the
	// sealed-segment count compacted — all driven per exported record,
	// like retention.
	const (
		retention = 20 * types.Second
		spacing   = 100 * types.Millisecond
		flows     = 400
	)
	dir := t.TempDir()
	r := newRig(t, netsim.Config{}, Config{
		Retention:    retention,
		ColdDir:      dir, // ColdAfter defaults to retention/2
		CompactBelow: 64,
	})
	src := r.sim.Topo.Hosts()[0]
	dst := r.sim.Topo.HostsAt(r.sim.Topo.ToRID(1, 0))[0]
	for i := 0; i < flows; i++ {
		f := r.flow(src, dst, uint16(3000+i))
		r.sim.Send(src.ID, &netsim.Packet{Flow: f, Size: 400, Fin: true})
		r.sim.Run(types.Time(i+1) * spacing)
	}
	a := r.agents[dst.ID]
	if a.SpillErrors != 0 {
		t.Fatalf("%d spill errors during ingest", a.SpillErrors)
	}
	st := a.Store.ColdStats()
	if st.Segments == 0 || st.Records == 0 {
		t.Fatalf("export path spilled nothing: %+v", st)
	}
	// Cold records still count and still answer: a full scan touches the
	// whole retention window, hot and cold.
	n := 0
	if err := a.Store.ForEach(types.AnyLink, types.AllTime, func(*types.Record) { n++ }); err != nil {
		t.Fatalf("scan over the tiered store: %v", err)
	}
	if n != a.Store.Len() {
		t.Fatalf("scan saw %d records, store holds %d", n, a.Store.Len())
	}
	if n != int(a.RecordsStored-a.RecordsEvicted) {
		t.Fatalf("scan saw %d, stored %d evicted %d", n, a.RecordsStored, a.RecordsEvicted)
	}
	if a.Store.Compactions() == 0 {
		t.Fatal("export path never compacted despite CompactBelow")
	}
}
