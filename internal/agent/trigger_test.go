package agent

import (
	"testing"

	"pathdump/internal/netsim"
	"pathdump/internal/query"
	"pathdump/internal/types"
)

// badRecord builds TIB record i with a 4-hop path, so a MaxPathLen 4
// conformance policy flags it.
func badRecord(i int) types.Record {
	st := types.Time(i) * types.Millisecond
	return types.Record{
		Flow:  types.FlowID{SrcIP: types.IP(1000 + i), DstIP: 1, SrcPort: uint16(i), DstPort: 80, Proto: 6},
		Path:  types.Path{0, 8, 16, 9},
		STime: st, ETime: st + types.Millisecond,
		Bytes: 1, Pkts: 1,
	}
}

// TestIncrementalTriggerScansOnlyDelta: a periodic conformance query
// evaluates each run over only the records that arrived since the last
// run — alarms fire once per violation, quiet periods scan nothing, and
// the cumulative records-scanned telemetry tracks arrivals, not run
// count × TIB size.
func TestIncrementalTriggerScansOnlyDelta(t *testing.T) {
	r := newRig(t, netsim.Config{}, Config{StoreShards: 1, SegmentRecords: 4})
	h := r.sim.Topo.Hosts()[0]
	a := r.agents[h.ID]

	const period = 100 * types.Millisecond
	id := a.Install(query.Query{Op: query.OpConformance, MaxPathLen: 4}, period)

	// Ten pre-existing violations (crossing segment seals at 4 records).
	for i := 0; i < 10; i++ {
		a.Store.Add(badRecord(i))
	}
	r.sim.Run(period + types.Millisecond) // first periodic run
	if got := len(r.log.alarms); got != 10 {
		t.Fatalf("first run raised %d alarms, want 10 (one per pre-existing violation)", got)
	}
	st, ok := a.TriggerStats(id)
	if !ok {
		t.Fatal("no trigger stats for installed query")
	}
	if st.Runs != 1 || st.RecordsScanned != 10 || st.Watermark != 10 {
		t.Fatalf("after first run stats = %+v, want runs=1 scanned=10 watermark=10", st)
	}

	// Three new violations: the next run scans exactly those three.
	for i := 10; i < 13; i++ {
		a.Store.Add(badRecord(i))
	}
	r.sim.Run(2*period + types.Millisecond)
	if got := len(r.log.alarms); got != 13 {
		t.Fatalf("second run raised %d total alarms, want 13 (no re-alarms)", got)
	}
	st, _ = a.TriggerStats(id)
	if st.Runs != 2 || st.RecordsScanned != 13 || st.Watermark != 13 {
		t.Fatalf("after second run stats = %+v, want runs=2 scanned=13 watermark=13", st)
	}

	// Five quiet periods: nothing rescanned, nothing re-alarmed.
	r.sim.Run(7*period + types.Millisecond)
	if got := len(r.log.alarms); got != 13 {
		t.Fatalf("quiet periods raised %d total alarms, want 13", got)
	}
	st, _ = a.TriggerStats(id)
	if st.Runs != 2 || st.RecordsScanned != 13 {
		t.Fatalf("after quiet periods stats = %+v, want runs=2 scanned=13 (no rescans)", st)
	}

	// A conforming record advances the watermark without alarming.
	rec := badRecord(13)
	rec.Path = types.Path{0, 8, 9}
	a.Store.Add(rec)
	r.sim.Run(8*period + types.Millisecond)
	if got := len(r.log.alarms); got != 13 {
		t.Fatalf("conforming record raised alarms: %d total, want 13", got)
	}
	st, _ = a.TriggerStats(id)
	if st.Runs != 3 || st.RecordsScanned != 14 || st.Watermark != 14 {
		t.Fatalf("after conforming record stats = %+v, want runs=3 scanned=14 watermark=14", st)
	}

	if err := a.Uninstall(id); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.TriggerStats(id); ok {
		t.Fatal("trigger stats survived uninstall")
	}
}

// TestIncrementalTriggerSegmentPruning: a periodic run over a store with
// many sealed segments touches only the segments past the watermark —
// the rest are skipped whole (pruned) by sequence-bound comparison.
func TestIncrementalTriggerSegmentPruning(t *testing.T) {
	r := newRig(t, netsim.Config{}, Config{StoreShards: 1, SegmentRecords: 8})
	h := r.sim.Topo.Hosts()[0]
	a := r.agents[h.ID]

	const period = 100 * types.Millisecond
	a.Install(query.Query{Op: query.OpConformance, MaxPathLen: 4}, period)
	for i := 0; i < 64; i++ { // 8 sealed segments
		a.Store.Add(badRecord(i))
	}
	r.sim.Run(period + types.Millisecond) // first run consumes the backlog

	a.Store.Add(badRecord(64))
	sc0, sp0 := a.Store.SegmentStats()
	r.sim.Run(2*period + types.Millisecond)
	sc1, sp1 := a.Store.SegmentStats()
	if scanned := sc1 - sc0; scanned != 1 {
		t.Fatalf("delta run walked %d segments, want 1 (the active one)", scanned)
	}
	if pruned := sp1 - sp0; pruned != 8 {
		t.Fatalf("delta run pruned %d segments, want 8 (all sealed ones below the watermark)", pruned)
	}
}

// TestByteBudgetRetention: Config.RetentionBytes bounds the store through
// the export path — an agent ingesting forever stays under its budget.
func TestByteBudgetRetention(t *testing.T) {
	const budget = 8 << 10
	r := newRig(t, netsim.Config{}, Config{StoreShards: 1, SegmentRecords: 8, RetentionBytes: budget})
	src := r.sim.Topo.Hosts()[0]
	h := r.sim.Topo.HostsAt(r.sim.Topo.ToRID(2, 0))[0]
	a := r.agents[h.ID]

	// Drive real traffic through the datapath so export runs the
	// retention hook: many short flows, each exported on FIN.
	for i := 0; i < 400; i++ {
		f := r.flow(src, h, uint16(2000+i))
		r.sim.Send(src.ID, &netsim.Packet{Flow: f, Size: 500, Fin: true})
	}
	r.sim.RunAll()
	if a.RecordsStored < 100 {
		t.Fatalf("datapath stored only %d records", a.RecordsStored)
	}
	if got := a.Store.SizeBytes(); got > budget {
		t.Fatalf("store sits at %d bytes, over the %d budget", got, budget)
	}
	if a.RecordsEvicted == 0 {
		t.Fatal("byte budget never evicted anything")
	}
}
