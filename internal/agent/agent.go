// Package agent implements the PathDump server stack (§3.2): the edge
// datapath that extracts trajectory information from packet headers and
// aggregates it in the trajectory memory, the trajectory-construction
// module (with its LRU trajectory cache), the TIB export path, the query
// executor backing the Table-1 host API, the active TCP performance
// monitor, and installed (periodic or event-triggered) queries.
package agent

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"pathdump/internal/cherrypick"
	"pathdump/internal/netsim"
	"pathdump/internal/query"
	"pathdump/internal/tcp"
	"pathdump/internal/tib"
	"pathdump/internal/topology"
	"pathdump/internal/types"
)

// AlarmSink consumes alarms raised by agents (the controller).
type AlarmSink interface {
	RaiseAlarm(a types.Alarm)
}

// Config parameterises an agent. Zero values select the noted defaults.
type Config struct {
	// IdleTimeout evicts per-path flow records after inactivity
	// (default 5 s, §3.2).
	IdleTimeout types.Time
	// SweepPeriod is how often the eviction sweep runs (default 1 s).
	SweepPeriod types.Time
	// CacheSize bounds the trajectory cache (default 4096 paths).
	CacheSize int
	// DisableCache turns the trajectory cache off (ablation).
	DisableCache bool
	// PacketLog, when positive, keeps the last N packets at per-packet
	// granularity (the paper's §2.2 future-work extension); zero keeps
	// the shipped per-path aggregation only.
	PacketLog int
	// StoreShards stripes the TIB store's locks so concurrent ingest and
	// query scans do not serialise (default tib.DefaultShards; 1 yields
	// a single-lock store).
	StoreShards int
	// SegmentSpan seals a TIB segment once it covers this much time
	// (default: Retention/8 when Retention is set, otherwise seal by
	// record count only). Tighter segments prune harder on range queries
	// and evict at finer granularity.
	SegmentSpan types.Time
	// SegmentRecords seals a TIB segment at this many records
	// (default tib.DefaultSegmentRecords; negative = never seal by count).
	SegmentRecords int
	// Retention bounds the TIB: as records are exported, whole sealed
	// segments whose newest record is older than now−Retention are
	// evicted — the paper's fixed per-host storage budget (§5.3). 0 keeps
	// everything.
	Retention types.Time
	// RetentionBytes bounds the TIB by estimated resident size: once the
	// store exceeds the budget, the oldest sealed segments are evicted
	// until it fits — §5.3's fixed MB-per-host budget taken literally,
	// independent of traffic rate. 0 means no byte budget; both bounds
	// may be active at once.
	RetentionBytes int64
	// ColdDir, when set, enables the TIB's cold disk tier: sealed
	// segments older than ColdAfter are spilled to self-contained files
	// under this directory and demand-loaded if a query still needs
	// them. RAM then holds only the hot window while retention governs
	// how much total history (hot + cold) survives.
	ColdDir string
	// ColdAfter is the age at which a sealed segment moves to the cold
	// tier (default Retention/2 when Retention is set; with neither set
	// the cold tier stays off even if ColdDir is given).
	ColdAfter types.Time
	// CompactBelow enables background compaction: adjacent sealed
	// segments smaller than this many records are merged back toward the
	// seal target as exports churn the store (default 0 = off).
	CompactBelow int
}

func (c Config) withDefaults() Config {
	if c.IdleTimeout == 0 {
		c.IdleTimeout = tib.DefaultIdleTimeout
	}
	if c.SweepPeriod == 0 {
		c.SweepPeriod = types.Second
	}
	if c.SegmentSpan == 0 && c.Retention > 0 {
		c.SegmentSpan = c.Retention / 8
	}
	if c.ColdDir != "" && c.ColdAfter == 0 && c.Retention > 0 {
		c.ColdAfter = c.Retention / 2
	}
	return c
}

// storeConfig maps the agent knobs onto the TIB store's configuration.
func (c Config) storeConfig() tib.Config {
	return tib.Config{
		Shards:         c.StoreShards,
		SegmentSpan:    c.SegmentSpan,
		SegmentRecords: c.SegmentRecords,
		Retention:      c.Retention,
		RetentionBytes: c.RetentionBytes,
		ColdDir:        c.ColdDir,
		CompactBelow:   c.CompactBelow,
	}
}

// Installed is one query installed by the controller (§2.1): periodic when
// Period > 0, event-triggered (run as records are exported) otherwise.
type Installed struct {
	ID     int
	Query  query.Query
	Period types.Time
	gen    uint64 // bumped on uninstall to cancel pending timers

	// watermark is the newest global TIB arrival sequence this query has
	// already evaluated: each periodic run scans only records past it
	// (guarded by instMu). The first run covers everything already in the
	// store, so violations that predate the install are still reported —
	// once.
	watermark uint64
	// runs/recordsScanned count periodic evaluations and the TIB records
	// they actually touched — the telemetry proving incremental runs stay
	// proportional to the delta, not the store (guarded by instMu).
	runs           uint64
	recordsScanned uint64
}

// TriggerStats is one installed query's incremental-evaluation telemetry.
type TriggerStats struct {
	// Runs counts periodic evaluations that found a non-empty delta
	// (quiet periods return after one sequence comparison and are not
	// counted).
	Runs uint64
	// RecordsScanned totals the TIB records those runs visited: with
	// watermarks it grows with the arrival rate, not run count × TIB size.
	RecordsScanned uint64
	// Watermark is the newest arrival sequence already evaluated.
	Watermark uint64
}

// Agent is one host's PathDump instance.
type Agent struct {
	Host *topology.Host

	sim    *netsim.Sim
	topo   *topology.Topology
	scheme cherrypick.Scheme
	cfg    Config

	Mem   *tib.Memory
	Cache *tib.Cache
	Store *tib.Store

	stack *tcp.Stack
	sink  AlarmSink

	// instMu guards the installed-query registry: HTTP daemons serve
	// /install and /uninstall on concurrent handler goroutines, and the
	// controller fans installs out concurrently on non-serial transports.
	instMu    sync.Mutex
	installed map[int]*Installed
	nextID    int
	sweeping  bool
	plog      *packetRing

	// Counters exposed for the overhead experiments (§5.3).
	PacketsSeen    uint64
	BytesSeen      uint64
	RecordsStored  uint64
	RecordsEvicted uint64
	InvalidTraj    uint64
	SpillErrors    uint64
}

// New builds an agent for host h and registers it as the host's packet
// receiver. stack may be nil for hosts without TCP endpoints; sink may be
// nil to discard alarms.
func New(sim *netsim.Sim, h *topology.Host, stack *tcp.Stack, sink AlarmSink, cfg Config) *Agent {
	cfg = cfg.withDefaults()
	if cfg.ColdDir != "" {
		// Co-located agents may share one configured root (pathdumpd
		// -hosts): each store gets a per-host subdirectory so their
		// sequence-keyed cold file names cannot collide. If the tier's
		// directory cannot be created the tier is disabled — segments
		// then simply stay resident.
		cfg.ColdDir = filepath.Join(cfg.ColdDir, fmt.Sprintf("host-%d", uint32(h.ID)))
		if err := os.MkdirAll(cfg.ColdDir, 0o755); err != nil {
			cfg.ColdDir = ""
		}
	}
	a := &Agent{
		Host:      h,
		sim:       sim,
		topo:      sim.Topo,
		scheme:    sim.Scheme,
		cfg:       cfg,
		Mem:       tib.NewMemory(cfg.IdleTimeout),
		Cache:     tib.NewCache(cfg.CacheSize),
		Store:     tib.NewStoreConfig(cfg.storeConfig()),
		stack:     stack,
		sink:      sink,
		installed: make(map[int]*Installed),
	}
	if cfg.PacketLog > 0 {
		a.plog = newPacketRing(cfg.PacketLog)
	}
	sim.SetReceiver(h.ID, a)
	return a
}

// Receive implements netsim.Receiver: the OVS-side datapath of Figure 2.
// It extracts the trajectory header, strips it from the packet before the
// upper stack sees it, updates the per-path flow record, and exports
// records on FIN.
func (a *Agent) Receive(pkt *netsim.Packet) {
	hdr := pkt.Hdr
	pkt.Hdr = cherrypick.Header{} // strip trajectory info for upper layers
	a.PacketsSeen++
	a.BytesSeen += uint64(pkt.Size)
	now := a.sim.Now()
	if a.plog != nil {
		a.plog.add(packetEntry{flow: pkt.Flow, hdr: hdr, at: now, size: pkt.Size})
	}
	a.Mem.Update(now, pkt.Flow, hdr, pkt.Size, pkt.Fin)
	if pkt.Fin {
		for _, e := range a.Mem.EvictFlow(pkt.Flow) {
			a.export(e)
		}
	}
	a.ensureSweep()
	if a.stack != nil {
		a.stack.Receive(pkt)
	}
}

// ensureSweep keeps exactly one idle-eviction timer alive while the
// trajectory memory is non-empty (so a drained simulation terminates).
func (a *Agent) ensureSweep() {
	if a.sweeping || a.Mem.Len() == 0 {
		return
	}
	a.sweeping = true
	a.sim.After(a.cfg.SweepPeriod, a.sweep)
}

func (a *Agent) sweep() {
	for _, e := range a.Mem.EvictIdle(a.sim.Now()) {
		a.export(e)
	}
	if a.Mem.Len() > 0 {
		a.sim.After(a.cfg.SweepPeriod, a.sweep)
		return
	}
	a.sweeping = false
}

// construct resolves a header to an end-to-end path via the trajectory
// cache, falling back to a topology walk.
func (a *Agent) construct(src types.IP, hdr cherrypick.Header) (types.Path, error) {
	key := hdr.Key()
	if !a.cfg.DisableCache {
		if p, ok := a.Cache.Get(src, key); ok {
			return p, nil
		}
	}
	p, err := a.scheme.Reconstruct(src, a.Host.IP, hdr)
	if err != nil {
		return nil, err
	}
	if !a.cfg.DisableCache {
		a.Cache.Put(src, key, p)
	}
	return p, nil
}

// export turns one evicted per-path flow record into a TIB record. A
// header inconsistent with the ground-truth topology raises an
// INVALID_TRAJECTORY alarm (§2.4) instead.
func (a *Agent) export(e *tib.MemEntry) {
	p, err := a.construct(e.Flow.SrcIP, e.Hdr)
	if err != nil {
		a.InvalidTraj++
		a.raise(types.Alarm{Flow: e.Flow, Reason: types.ReasonInvalidTraj})
		return
	}
	rec := types.Record{
		Flow: e.Flow, Path: p,
		STime: e.STime, ETime: e.ETime,
		Bytes: e.Bytes, Pkts: e.Pkts,
	}
	a.Store.Add(rec)
	a.RecordsStored++
	if a.cfg.Retention > 0 {
		// Bounded retention (§5.3): expired sealed segments go as new
		// records arrive. EvictBefore self-throttles — cutoffs that cannot
		// free a segment yet return without touching a lock — so this is
		// safe to call per export.
		_, n := a.Store.EvictBefore(a.sim.Now() - a.cfg.Retention)
		a.RecordsEvicted += uint64(n)
	}
	if a.cfg.RetentionBytes > 0 {
		// Byte-budget retention: under budget this is one atomic load, so
		// it too is safe per export.
		_, n := a.Store.EvictOverBytes()
		a.RecordsEvicted += uint64(n)
	}
	if a.cfg.ColdDir != "" && a.cfg.ColdAfter > 0 {
		// Cold tiering rides the export path like eviction does:
		// SpillBefore self-throttles (cutoffs that cannot move a segment
		// yet are one atomic load), and a disk fault must not stall
		// ingest — it is counted and the segments stay resident.
		if _, _, err := a.Store.SpillBefore(a.sim.Now() - a.cfg.ColdAfter); err != nil {
			a.SpillErrors++
		}
	}
	if a.cfg.CompactBelow > 0 {
		// Background compaction, same contract: MaybeCompact returns in
		// two atomic loads until enough segments have sealed to make a
		// pass worthwhile.
		a.Store.MaybeCompact()
	}
	// Event-triggered installed queries run as new records appear. The
	// matching set is captured under the lock; execution (which may
	// raise alarms) happens outside it.
	a.instMu.Lock()
	var triggered []*Installed
	for _, inst := range a.installed {
		if inst.Period == 0 {
			triggered = append(triggered, inst)
		}
	}
	a.instMu.Unlock()
	for _, inst := range triggered {
		a.runInstalled(inst, &rec)
	}
}

// raise stamps and forwards an alarm.
func (a *Agent) raise(al types.Alarm) {
	if a.sink == nil {
		return
	}
	al.Host = a.Host.ID
	al.At = a.sim.Now()
	a.sink.RaiseAlarm(al)
}

// Execute runs a query against this host's view (TIB plus live trajectory
// memory plus the TCP monitor) — the host side of the controller API.
func (a *Agent) Execute(q query.Query) query.Result {
	return query.Execute(q, a.view())
}

// ExecuteContext is Execute under a caller context: the evaluation loop
// polls cancellation as it merges TIB shards and stops early, returning
// the context's error instead of a partial result. This is what the HTTP
// servers call with the request context, so a disconnected client or an
// expired controller deadline releases the host promptly.
func (a *Agent) ExecuteContext(ctx context.Context, q query.Query) (query.Result, error) {
	return query.ExecuteContext(ctx, q, a.view())
}

// StreamRecords hands every record matching q's predicate to fn as the
// scan visits it, never materialising the reply — the rpc servers use it
// (via their RecordStreamer extension) to stream records-op responses
// chunk by chunk. The scan polls ctx like ExecuteContext does; a caller
// that hung up gets the context's error and a truncated stream.
func (a *Agent) StreamRecords(ctx context.Context, q query.Query, fn func(*types.Record)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	v := a.view()
	if cv, ok := v.(query.ContextView); ok {
		v = cv.WithContext(ctx)
	}
	v.ScanRecords(query.PredicateOf(q), fn)
	return ctx.Err()
}

// Install registers a query; period 0 means event-triggered (§2.1). The
// returned ID is used to uninstall. The registry itself is
// concurrency-safe, but periodic installs register timers on the agent's
// simulator, so callers installing concurrently at agents that share one
// Sim must serialise — the rpc servers and the sim-backed Local transport
// (via SerialControl) both do.
func (a *Agent) Install(q query.Query, period types.Time) int {
	a.instMu.Lock()
	a.nextID++
	inst := &Installed{ID: a.nextID, Query: q, Period: period}
	a.installed[inst.ID] = inst
	gen := inst.gen
	a.instMu.Unlock()
	if period > 0 {
		a.sim.After(period, func() { a.periodic(inst, gen) })
	}
	return inst.ID
}

// Uninstall removes an installed query.
func (a *Agent) Uninstall(id int) error {
	a.instMu.Lock()
	defer a.instMu.Unlock()
	inst, ok := a.installed[id]
	if !ok {
		return fmt.Errorf("agent %v: no installed query %d", a.Host.ID, id)
	}
	inst.gen++
	delete(a.installed, id)
	return nil
}

// InstalledQueries returns the currently installed query IDs.
func (a *Agent) InstalledQueries() []int {
	a.instMu.Lock()
	defer a.instMu.Unlock()
	out := make([]int, 0, len(a.installed))
	for id := range a.installed {
		out = append(out, id)
	}
	return out
}

// periodic runs one installed query and reschedules itself.
func (a *Agent) periodic(inst *Installed, gen uint64) {
	a.instMu.Lock()
	cur, ok := a.installed[inst.ID]
	live := ok && cur.gen == gen
	a.instMu.Unlock()
	if !live {
		return
	}
	a.runInstalled(inst, nil)
	a.sim.After(inst.Period, func() { a.periodic(inst, gen) })
}

// runInstalled executes an installed query and converts its result into
// alarms. rec, when non-nil, is the just-exported record for
// event-triggered execution (the query is evaluated against it alone,
// which is how the paper's per-packet-arrival conformance check behaves).
// Periodic TIB-driven queries evaluate incrementally: each run scans only
// the records that arrived since the previous one (see runIncremental).
func (a *Agent) runInstalled(inst *Installed, rec *types.Record) {
	q := inst.Query
	switch q.Op {
	case query.OpPoorTCP:
		// The active monitoring module (§3.2): raise POOR_PERF per
		// suffering flow. The TCP monitor is inherently incremental —
		// PoorFlows advances its per-sender scan window on every call —
		// so no TIB watermark is involved.
		for _, f := range a.PoorTCPFlows(q.Threshold) {
			a.raise(types.Alarm{Flow: f, Reason: types.ReasonPoorPerf})
		}
	case query.OpConformance:
		var res query.Result
		if rec != nil {
			res = query.Execute(q, recordView{rec})
		} else {
			res = a.runIncremental(inst)
		}
		for _, v := range res.Violations {
			a.raise(types.Alarm{Flow: v.Flow, Reason: types.ReasonPathConformance, Paths: []types.Path{v.Path}})
		}
	default:
		// Measurement queries installed for periodic execution surface
		// their results through the TIB on demand; nothing to push.
	}
}

// runIncremental evaluates one periodic installed query over only the
// TIB records that arrived since its previous run: the query's predicate
// is pushed down with a (watermark, LastSeq] sequence window, so whole
// sealed segments below the watermark are skipped by one bound
// comparison and a quiet period costs almost nothing — instead of the
// previous full TIB rescan every period, which also re-alarmed every old
// violation forever. The upper bound is captured before evaluation, so a
// record arriving mid-scan is deferred (exactly once) to the next run.
// Records still in the trajectory memory are not consulted — they enter
// the window when exported, so nothing is reported twice and nothing is
// missed, only deferred until export.
func (a *Agent) runIncremental(inst *Installed) query.Result {
	a.instMu.Lock()
	since := inst.watermark
	a.instMu.Unlock()
	until := a.Store.LastSeq()
	if until <= since {
		return query.Result{Op: inst.Query.Op} // nothing new since the last run
	}
	var scanned uint64
	view := query.ScanView{
		Scan: func(p query.Predicate, fn func(*types.Record)) {
			// Incremental windows sit at the hot end of the store, so a
			// cold read fault here is rare; if one does occur the run
			// evaluates the resident delta and the fault is counted in
			// ColdStats — the watermark still advances, matching the
			// View contract's partial-on-fault semantics.
			_ = a.Store.ScanSince(p.MinSeq, p.MaxSeq, p.Flow, p.Link, p.Range, func(r *types.Record) bool {
				scanned++
				fn(r)
				return true
			})
		},
		Window: query.Predicate{MinSeq: since, MaxSeq: until},
		Poor:   a.PoorTCPFlows,
	}
	res := query.Execute(inst.Query, view)
	a.instMu.Lock()
	if cur, ok := a.installed[inst.ID]; ok && cur == inst {
		inst.watermark = until
		inst.runs++
		inst.recordsScanned += scanned
	}
	a.instMu.Unlock()
	return res
}

// TriggerStats reports one installed query's incremental-evaluation
// telemetry; ok is false when no such installation exists.
func (a *Agent) TriggerStats(id int) (TriggerStats, bool) {
	a.instMu.Lock()
	defer a.instMu.Unlock()
	inst, ok := a.installed[id]
	if !ok {
		return TriggerStats{}, false
	}
	return TriggerStats{Runs: inst.runs, RecordsScanned: inst.recordsScanned, Watermark: inst.watermark}, true
}

// TriggerTotals aggregates installed-query telemetry across every
// installation: the install count, cumulative runs and records scanned,
// and the lowest watermark (the furthest-behind trigger; 0 when none
// are installed). The metrics plane scrapes it.
func (a *Agent) TriggerTotals() (installed int, runs, recordsScanned, minWatermark uint64) {
	a.instMu.Lock()
	defer a.instMu.Unlock()
	first := true
	for _, inst := range a.installed {
		installed++
		runs += inst.runs
		recordsScanned += inst.recordsScanned
		if first || inst.watermark < minWatermark {
			minWatermark = inst.watermark
			first = false
		}
	}
	return installed, runs, recordsScanned, minWatermark
}

// TIBSize reports the number of queryable records (TIB plus trajectory
// memory) — the cost-model input for response-time accounting.
func (a *Agent) TIBSize() int { return a.Store.Len() + a.Mem.Len() }

// SegmentStats reports the TIB's cumulative scan telemetry (segments
// walked versus pruned); the rpc servers attribute per-query deltas.
func (a *Agent) SegmentStats() (scanned, pruned uint64) { return a.Store.SegmentStats() }

// ColdStats reports the TIB's cold-tier telemetry; traced scans
// attribute the demand loads they trigger.
func (a *Agent) ColdStats() tib.ColdStats { return a.Store.ColdStats() }

// WriteSnapshot streams the host's TIB in the segment-wise v2 snapshot
// format — the /snapshot endpoint and offline analysis both read it. The
// capture is consistent and momentary; ingest continues while the
// snapshot streams.
func (a *Agent) WriteSnapshot(w io.Writer) error { return a.Store.Snapshot(w) }

// WriteSnapshotSince streams an incremental snapshot: only the records
// with arrival sequence greater than since, in the Version-3 delta
// framing — or a full snapshot when the watermark cannot be served (see
// tib.SnapshotSince). The /snapshot?since_seq=N endpoint calls this; a
// standby applies the stream with tib.ApplyIncremental.
func (a *Agent) WriteSnapshotSince(w io.Writer, since uint64) error {
	return a.Store.SnapshotSince(w, since)
}

// PoorTCPFlows implements getPoorTCPFlows over the host's TCP monitor.
func (a *Agent) PoorTCPFlows(threshold int) []types.FlowID {
	if a.stack == nil {
		return nil
	}
	if threshold <= 0 {
		threshold = 3
	}
	return a.stack.PoorFlows(threshold)
}
