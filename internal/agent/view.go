package agent

import (
	"context"

	"pathdump/internal/query"
	"pathdump/internal/types"
)

// view materialises the host's queryable state: the TIB store plus the
// per-path flow records still in the trajectory memory (the paper's IPC
// lookup that lets queries see data not yet exported, §3.2).
//
// ctx, when non-nil, makes the evaluation loop cancellation-aware: scans
// over the sharded TIB poll the context every query.CancelCheckEvery
// records of the cross-shard merge and stop early once it is cancelled,
// so a caller that hung up (or a controller deadline that fired) does not
// pin this host on a full scan.
type agentView struct {
	a    *Agent
	live []types.Record
	ctx  context.Context
}

// WithContext implements query.ContextView.
func (v agentView) WithContext(ctx context.Context) query.View {
	v.ctx = ctx
	return v
}

// cancelled reports whether the view's context (if any) is done.
func (v agentView) cancelled() bool {
	return v.ctx != nil && v.ctx.Err() != nil
}

func (a *Agent) view() query.View {
	v := agentView{a: a}
	for _, e := range a.Mem.Live() {
		p, err := a.construct(e.Flow.SrcIP, e.Hdr)
		if err != nil {
			continue // counted on export; live queries skip bad headers
		}
		v.live = append(v.live, types.Record{
			Flow: e.Flow, Path: p,
			STime: e.STime, ETime: e.ETime,
			Bytes: e.Bytes, Pkts: e.Pkts,
		})
	}
	return v
}

// ScanRecords implements query.View over store + live records: the
// predicate is pushed down into the segmented store (whole-segment time
// pruning, index postings), and the handful of not-yet-exported live
// records are filtered by Predicate.Match. With a context attached, the
// TIB scan aborts between merged shard records once the context is
// cancelled.
func (v agentView) ScanRecords(p query.Predicate, fn func(*types.Record)) {
	if v.ctx == nil {
		v.a.Store.Scan(p.Flow, p.Link, p.Range, fn)
	} else {
		v.a.Store.ScanWhile(p.Flow, p.Link, p.Range, query.PollCancel(v.ctx, fn))
		if v.cancelled() {
			return
		}
	}
	for i := range v.live {
		rec := &v.live[i]
		if p.Match(rec) {
			fn(rec)
		}
	}
}

// Flows implements query.View (getFlows). A scan cut off by cancellation
// returns nil, not a partial list — the caller's result is discarded by
// ExecuteContext, so truncated output must not feed downstream per-flow
// loops.
func (v agentView) Flows(link types.LinkID, tr types.TimeRange) []types.Flow {
	type key struct {
		f types.FlowID
		p string
	}
	seen := make(map[key]bool)
	var out []types.Flow
	v.ScanRecords(query.Predicate{Link: link, Range: tr}, func(rec *types.Record) {
		k := key{rec.Flow, rec.Path.Key()}
		if !seen[k] {
			seen[k] = true
			out = append(out, types.Flow{ID: rec.Flow, Path: rec.Path})
		}
	})
	if v.cancelled() {
		return nil
	}
	return out
}

// Paths implements query.View (getPaths).
func (v agentView) Paths(f types.FlowID, link types.LinkID, tr types.TimeRange) []types.Path {
	seen := make(map[string]bool)
	var out []types.Path
	v.eachFlowRecord(f, tr, func(rec *types.Record) {
		if link != types.AnyLink && !rec.Path.ContainsLink(link) {
			return
		}
		k := rec.Path.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, rec.Path)
		}
	})
	return out
}

// Count implements query.View (getCount).
func (v agentView) Count(f types.Flow, tr types.TimeRange) (bytes, pkts uint64) {
	v.eachFlowRecord(f.ID, tr, func(rec *types.Record) {
		if f.Path != nil && !rec.Path.Equal(f.Path) {
			return
		}
		bytes += rec.Bytes
		pkts += rec.Pkts
	})
	return bytes, pkts
}

// Duration implements query.View (getDuration).
func (v agentView) Duration(f types.Flow, tr types.TimeRange) types.Time {
	var lo, hi types.Time = -1, -1
	v.eachFlowRecord(f.ID, tr, func(rec *types.Record) {
		if f.Path != nil && !rec.Path.Equal(f.Path) {
			return
		}
		if lo < 0 || rec.STime < lo {
			lo = rec.STime
		}
		if rec.ETime > hi {
			hi = rec.ETime
		}
	})
	if lo < 0 {
		return 0
	}
	return hi - lo
}

// PoorTCPFlows implements query.View.
func (v agentView) PoorTCPFlows(threshold int) []types.FlowID {
	return v.a.PoorTCPFlows(threshold)
}

func (v agentView) eachFlowRecord(f types.FlowID, tr types.TimeRange, fn func(*types.Record)) {
	// Per-flow lookups touch a single shard's posting list; an entry
	// check bounds cancellation latency at one flow's records.
	if v.cancelled() {
		return
	}
	v.a.Store.ForFlow(f, types.AnyLink, tr, fn)
	for i := range v.live {
		rec := &v.live[i]
		if rec.Flow == f && rec.Overlaps(tr) {
			fn(rec)
		}
	}
}

// recordView exposes a single just-exported record to event-triggered
// queries.
type recordView struct {
	rec *types.Record
}

// Flows implements query.View.
func (v recordView) Flows(link types.LinkID, tr types.TimeRange) []types.Flow {
	if !v.rec.Overlaps(tr) {
		return nil
	}
	if link != types.AnyLink && !v.rec.Path.ContainsLink(link) {
		return nil
	}
	return []types.Flow{{ID: v.rec.Flow, Path: v.rec.Path}}
}

// Paths implements query.View.
func (v recordView) Paths(f types.FlowID, link types.LinkID, tr types.TimeRange) []types.Path {
	if v.rec.Flow != f {
		return nil
	}
	for _, fl := range v.Flows(link, tr) {
		return []types.Path{fl.Path}
	}
	return nil
}

// Count implements query.View.
func (v recordView) Count(f types.Flow, tr types.TimeRange) (uint64, uint64) {
	if v.rec.Flow != f.ID || !v.rec.Overlaps(tr) {
		return 0, 0
	}
	if f.Path != nil && !v.rec.Path.Equal(f.Path) {
		return 0, 0
	}
	return v.rec.Bytes, v.rec.Pkts
}

// Duration implements query.View.
func (v recordView) Duration(f types.Flow, tr types.TimeRange) types.Time {
	if v.rec.Flow != f.ID || !v.rec.Overlaps(tr) {
		return 0
	}
	return v.rec.Duration()
}

// PoorTCPFlows implements query.View.
func (v recordView) PoorTCPFlows(int) []types.FlowID { return nil }

// ScanRecords implements query.View.
func (v recordView) ScanRecords(p query.Predicate, fn func(*types.Record)) {
	if p.Match(v.rec) {
		fn(v.rec)
	}
}
