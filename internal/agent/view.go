package agent

import (
	"context"

	"pathdump/internal/query"
	"pathdump/internal/types"
)

// view materialises the host's queryable state: the TIB store plus the
// per-path flow records still in the trajectory memory (the paper's IPC
// lookup that lets queries see data not yet exported, §3.2).
//
// ctx, when non-nil, makes the evaluation loop cancellation-aware: scans
// over the sharded TIB poll the context every query.CancelCheckEvery
// records of the cross-shard merge and stop early once it is cancelled,
// so a caller that hung up (or a controller deadline that fired) does not
// pin this host on a full scan.
type agentView struct {
	a    *Agent
	live []types.Record
	ctx  context.Context
}

// WithContext implements query.ContextView.
func (v agentView) WithContext(ctx context.Context) query.View {
	v.ctx = ctx
	return v
}

// cancelled reports whether the view's context (if any) is done.
func (v agentView) cancelled() bool {
	return v.ctx != nil && v.ctx.Err() != nil
}

func (a *Agent) view() query.View {
	v := agentView{a: a}
	for _, e := range a.Mem.Live() {
		p, err := a.construct(e.Flow.SrcIP, e.Hdr)
		if err != nil {
			continue // counted on export; live queries skip bad headers
		}
		v.live = append(v.live, types.Record{
			Flow: e.Flow, Path: p,
			STime: e.STime, ETime: e.ETime,
			Bytes: e.Bytes, Pkts: e.Pkts,
		})
	}
	return v
}

// ScanRecords implements query.View over store + live records: the
// predicate — including its arrival-sequence window, the incremental
// trigger path — is pushed down into the segmented store (whole-segment
// time and watermark pruning, index postings), and the handful of
// not-yet-exported live records are filtered by Predicate.Match (they
// carry no sequence and count as in-window — by construction new). With
// a context attached, the TIB scan aborts between merged shard records
// once the context is cancelled.
func (v agentView) ScanRecords(p query.Predicate, fn func(*types.Record)) {
	visit := func(rec *types.Record) bool {
		fn(rec)
		return true
	}
	if v.ctx != nil {
		visit = query.PollCancel(v.ctx, fn)
	}
	// The query.View contract has no error channel: a cold-tier read
	// fault yields the resident portion of the answer, with the fault
	// counted in the store's ColdStats (see tib.Store.Flows for the
	// contract).
	_ = v.a.Store.ScanSince(p.MinSeq, p.MaxSeq, p.Flow, p.Link, p.Range, visit)
	if v.cancelled() {
		return
	}
	for i := range v.live {
		rec := &v.live[i]
		if p.Match(rec) {
			fn(rec)
		}
	}
}

// scanView adapts this view into the generic scanner-derived View: the
// Table-1 derivations (flow/path dedup, totals, time spans) live in
// query.ScanView, shared with the incremental trigger evaluation.
func (v agentView) scanView() query.ScanView {
	return query.ScanView{Scan: v.ScanRecords, Poor: v.a.PoorTCPFlows}
}

// Flows implements query.View (getFlows). A scan cut off by cancellation
// returns nil, not a partial list — the caller's result is discarded by
// ExecuteContext, so truncated output must not feed downstream per-flow
// loops.
func (v agentView) Flows(link types.LinkID, tr types.TimeRange) []types.Flow {
	out := v.scanView().Flows(link, tr)
	if v.cancelled() {
		return nil
	}
	return out
}

// Paths implements query.View (getPaths). The cancellation pre-check
// bounds a cancelled caller's cost at one map allocation; per-flow scans
// touch a single shard's posting list anyway.
func (v agentView) Paths(f types.FlowID, link types.LinkID, tr types.TimeRange) []types.Path {
	if v.cancelled() {
		return nil
	}
	return v.scanView().Paths(f, link, tr)
}

// Count implements query.View (getCount).
func (v agentView) Count(f types.Flow, tr types.TimeRange) (bytes, pkts uint64) {
	if v.cancelled() {
		return 0, 0
	}
	return v.scanView().Count(f, tr)
}

// Duration implements query.View (getDuration).
func (v agentView) Duration(f types.Flow, tr types.TimeRange) types.Time {
	if v.cancelled() {
		return 0
	}
	return v.scanView().Duration(f, tr)
}

// PoorTCPFlows implements query.View.
func (v agentView) PoorTCPFlows(threshold int) []types.FlowID {
	return v.a.PoorTCPFlows(threshold)
}

// recordView exposes a single just-exported record to event-triggered
// queries.
type recordView struct {
	rec *types.Record
}

// Flows implements query.View.
func (v recordView) Flows(link types.LinkID, tr types.TimeRange) []types.Flow {
	if !v.rec.Overlaps(tr) {
		return nil
	}
	if link != types.AnyLink && !v.rec.Path.ContainsLink(link) {
		return nil
	}
	return []types.Flow{{ID: v.rec.Flow, Path: v.rec.Path}}
}

// Paths implements query.View.
func (v recordView) Paths(f types.FlowID, link types.LinkID, tr types.TimeRange) []types.Path {
	if v.rec.Flow != f {
		return nil
	}
	for _, fl := range v.Flows(link, tr) {
		return []types.Path{fl.Path}
	}
	return nil
}

// Count implements query.View.
func (v recordView) Count(f types.Flow, tr types.TimeRange) (uint64, uint64) {
	if v.rec.Flow != f.ID || !v.rec.Overlaps(tr) {
		return 0, 0
	}
	if f.Path != nil && !v.rec.Path.Equal(f.Path) {
		return 0, 0
	}
	return v.rec.Bytes, v.rec.Pkts
}

// Duration implements query.View.
func (v recordView) Duration(f types.Flow, tr types.TimeRange) types.Time {
	if v.rec.Flow != f.ID || !v.rec.Overlaps(tr) {
		return 0
	}
	return v.rec.Duration()
}

// PoorTCPFlows implements query.View.
func (v recordView) PoorTCPFlows(int) []types.FlowID { return nil }

// ScanRecords implements query.View.
func (v recordView) ScanRecords(p query.Predicate, fn func(*types.Record)) {
	if p.Match(v.rec) {
		fn(v.rec)
	}
}
