package query

import (
	"errors"
	"testing"

	"pathdump/internal/tib"
	"pathdump/internal/types"
)

// TestStoreViewPoorTCPUnsupported is the regression test for the old
// silent-nil behaviour: a bare TIB store has no TCP monitor, so asking it
// for poor TCP flows must surface ErrUnsupported through ExecuteE rather
// than masquerading as "no poor flows".
func TestStoreViewPoorTCPUnsupported(t *testing.T) {
	s := tib.NewStore()
	s.Add(types.Record{
		Flow:  types.FlowID{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 80, Proto: 6},
		Path:  types.Path{0, 8, 16},
		STime: 0, ETime: 10, Bytes: 500, Pkts: 5,
	})
	v := StoreView{S: s}

	_, err := ExecuteE(Query{Op: OpPoorTCP, Threshold: 3}, v)
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("ExecuteE(OpPoorTCP) err = %v, want ErrUnsupported", err)
	}

	// Every op the store can serve still executes cleanly.
	for _, op := range []Op{OpFlows, OpPaths, OpCount, OpDuration, OpFSD, OpTopK, OpConformance, OpMatrix, OpRecords} {
		res, err := ExecuteE(Query{Op: op, Link: types.AnyLink}, v)
		if err != nil {
			t.Errorf("ExecuteE(%s) err = %v", op, err)
		}
		if res.Op != op {
			t.Errorf("ExecuteE(%s) result op = %s", op, res.Op)
		}
	}

	// The legacy Execute path keeps its lenient empty-result contract for
	// views that execute all ops (agents), and for StoreView it still
	// returns an empty result rather than panicking.
	if got := Execute(Query{Op: OpPoorTCP}, v); len(got.FlowIDs) != 0 {
		t.Errorf("Execute(OpPoorTCP) on a bare store = %v, want empty", got.FlowIDs)
	}
}

// plainView has no OpSupport: ExecuteE must treat every op as supported.
type plainView struct{ StoreView }

func (plainView) Supports(op Op) error { return nil }

func TestExecuteEWithoutOpSupport(t *testing.T) {
	v := StoreView{S: tib.NewStore()}
	// Wrapping in a type whose Supports always consents must execute.
	if _, err := ExecuteE(Query{Op: OpPoorTCP}, plainView{v}); err != nil {
		t.Fatalf("consenting view err = %v", err)
	}
}
