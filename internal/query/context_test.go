package query

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"pathdump/internal/tib"
	"pathdump/internal/types"
)

// pollCancelCtx is a context whose Err flips to Canceled after a fixed
// number of polls — a deterministic stand-in for "the caller hangs up
// mid-scan", with no timing races. Done is never closed; the scans under
// test poll Err directly.
type pollCancelCtx struct {
	context.Context
	polls      atomic.Int64
	cancelAt   int64
	pollsTotal *atomic.Int64
}

func (c *pollCancelCtx) Err() error {
	c.pollsTotal.Add(1)
	if c.polls.Add(1) > c.cancelAt {
		return context.Canceled
	}
	return nil
}

func bigStore(records int) *tib.Store {
	s := tib.NewStore()
	for i := 0; i < records; i++ {
		s.Add(types.Record{
			Flow:  types.FlowID{SrcIP: types.IP(i), DstIP: 9, SrcPort: uint16(i), DstPort: 80, Proto: 6},
			Path:  types.Path{types.SwitchID(i % 8), types.SwitchID(8 + i%8), 16},
			STime: types.Time(i), ETime: types.Time(i + 10),
			Bytes: uint64(100 + i), Pkts: 1,
		})
	}
	return s
}

// TestExecuteContextAbortsMidScan: once the context reports cancellation,
// a records scan over a store much larger than CancelCheckEvery stops at
// the next poll instead of finishing, and the partial result is discarded
// in favour of the context error.
func TestExecuteContextAbortsMidScan(t *testing.T) {
	records := 6 * CancelCheckEvery
	s := bigStore(records)
	var polls atomic.Int64
	// Entry check passes; the first in-scan poll (after CancelCheckEvery
	// records) observes the cancellation.
	ctx := &pollCancelCtx{Context: context.Background(), cancelAt: 1, pollsTotal: &polls}
	res, err := ExecuteContext(ctx, Query{Op: OpRecords, Link: types.AnyLink}, StoreView{S: s})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.Records) != 0 {
		t.Errorf("cancelled execution leaked %d partial records", len(res.Records))
	}
	if polls.Load() < 2 {
		t.Errorf("scan polled the context %d times — in-scan cancellation checks missing", polls.Load())
	}
}

// TestExecuteContextCompletesUncancelled: a context that never cancels
// yields exactly the plain-Execute result, polls and all.
func TestExecuteContextCompletesUncancelled(t *testing.T) {
	records := 2*CancelCheckEvery + 7
	s := bigStore(records)
	res, err := ExecuteContext(context.Background(), Query{Op: OpRecords, Link: types.AnyLink}, StoreView{S: s})
	if err != nil {
		t.Fatal(err)
	}
	plain := Execute(Query{Op: OpRecords, Link: types.AnyLink}, StoreView{S: s})
	if len(res.Records) != records || len(plain.Records) != records {
		t.Fatalf("ctx scan %d records, plain %d, want %d", len(res.Records), len(plain.Records), records)
	}
	// Flows (the scan behind topk/fsd/conformance) completes too.
	fres, err := ExecuteContext(context.Background(), Query{Op: OpFlows, Link: types.AnyLink}, StoreView{S: s})
	if err != nil {
		t.Fatal(err)
	}
	if len(fres.Flows) != records {
		t.Errorf("Flows under context = %d, want %d", len(fres.Flows), records)
	}
}

// TestExecuteContextPreCancelled: a dead context short-circuits before
// any scanning.
func TestExecuteContextPreCancelled(t *testing.T) {
	s := bigStore(CancelCheckEvery)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ExecuteContext(ctx, Query{Op: OpTopK, K: 5}, StoreView{S: s})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestExecuteContextUnsupportedOp: ErrUnsupported still wins over a live
// context — cancellation must not mask the 501 path.
func TestExecuteContextUnsupportedOp(t *testing.T) {
	s := bigStore(8)
	_, err := ExecuteContext(context.Background(), Query{Op: OpPoorTCP, Threshold: 3}, StoreView{S: s})
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}

// TestExecuteContextWallClock: a real context.WithCancel fired from
// another goroutine cuts a large top-k short well before a full scan
// would finish — the wall-clock shape of the mid-scan abort.
func TestExecuteContextWallClock(t *testing.T) {
	s := bigStore(300_000)
	v := StoreView{S: s}
	// Warm run: how long does an uncancelled topk take?
	start := time.Now()
	if _, err := ExecuteContext(context.Background(), Query{Op: OpTopK, K: 1000}, v); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)
	if full < 5*time.Millisecond {
		t.Skip("store scan too fast on this machine to observe cancellation")
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(full / 20)
		cancel()
	}()
	start = time.Now()
	_, err := ExecuteContext(ctx, Query{Op: OpTopK, K: 1000}, v)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > full {
		t.Errorf("cancelled topk took %v, full scan only %v", elapsed, full)
	}
}
