// Package query defines the serialisable query language PathDump's
// controller sends to host agents, plus result merging for distributed
// (multi-level aggregation tree) execution. Each query op corresponds to a
// composition over the Table-1 host API; results are mergeable so partial
// results can be aggregated bottom-up through the tree (§3.2).
package query

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"pathdump/internal/tib"
	"pathdump/internal/types"
)

// ErrUnsupported reports that a view cannot serve a query op at all (as
// opposed to serving it with an empty result). A bare TIB store, for
// example, has no TCP monitor behind getPoorTCPFlows.
var ErrUnsupported = errors.New("query: op not supported by this view")

// Op names a query operation.
type Op string

// Supported query operations.
const (
	// OpFlows → getFlows(linkID, timeRange).
	OpFlows Op = "flows"
	// OpPaths → getPaths(flowID, linkID, timeRange).
	OpPaths Op = "paths"
	// OpCount → getCount(Flow, timeRange).
	OpCount Op = "count"
	// OpDuration → getDuration(Flow, timeRange).
	OpDuration Op = "duration"
	// OpPoorTCP → getPoorTCPFlows(threshold).
	OpPoorTCP Op = "poor_tcp"
	// OpFSD builds the per-link flow size distribution used by the
	// load-imbalance diagnosis (§2.3, Fig. 5).
	OpFSD Op = "fsd"
	// OpTopK computes the top-k flows by bytes (§2.3).
	OpTopK Op = "topk"
	// OpConformance checks paths against operator policy (§2.3, §4.1).
	OpConformance Op = "conformance"
	// OpMatrix aggregates a ToR-to-ToR traffic matrix.
	OpMatrix Op = "matrix"
	// OpRecords dumps raw matching records (debug/inspection tool).
	OpRecords Op = "records"
)

// Query is one request to a host agent. Only the fields relevant to the op
// need to be set; the zero TimeRange means "all time".
type Query struct {
	Op    Op              `json:"op"`
	Link  types.LinkID    `json:"link,omitempty"`
	Links []types.LinkID  `json:"links,omitempty"`
	Flow  types.FlowID    `json:"flow,omitempty"`
	Path  types.Path      `json:"path,omitempty"`
	Range types.TimeRange `json:"range,omitempty"`

	// K bounds top-k queries; BinBytes sets FSD histogram bin width.
	K        int    `json:"k,omitempty"`
	BinBytes uint64 `json:"bin_bytes,omitempty"`
	// Threshold is the consecutive-retransmission threshold for poor-TCP
	// queries.
	Threshold int `json:"threshold,omitempty"`

	// Conformance policy: maximum path length (0 disables), switches the
	// path must avoid, and waypoints it must traverse.
	MaxPathLen int              `json:"max_path_len,omitempty"`
	Avoid      []types.SwitchID `json:"avoid,omitempty"`
	Waypoints  []types.SwitchID `json:"waypoints,omitempty"`
}

// normalRange defaults the zero range to all time.
func (q Query) normalRange() types.TimeRange {
	if q.Range == (types.TimeRange{}) {
		return types.AllTime
	}
	return q.Range
}

// LinkHist is one link's flow-size histogram: Bins[i] counts flows whose
// byte count falls in [i·BinBytes, (i+1)·BinBytes).
type LinkHist struct {
	Link     types.LinkID `json:"link"`
	BinBytes uint64       `json:"bin_bytes"`
	Bins     []uint64     `json:"bins"`
}

// FlowBytes pairs a flow with its byte/packet totals (top-k entries).
type FlowBytes struct {
	Flow  types.FlowID `json:"flow"`
	Bytes uint64       `json:"bytes"`
	Pkts  uint64       `json:"pkts"`
}

// Violation is one path-conformance failure.
type Violation struct {
	Flow types.FlowID `json:"flow"`
	Path types.Path   `json:"path"`
}

// MatrixCell is one ⟨source ToR, destination ToR⟩ traffic-matrix entry.
type MatrixCell struct {
	SrcToR types.SwitchID `json:"src_tor"`
	DstToR types.SwitchID `json:"dst_tor"`
	Bytes  uint64         `json:"bytes"`
}

// Result carries a query's (partial) answer. Only the fields relevant to
// the op are populated.
type Result struct {
	Op         Op             `json:"op"`
	Flows      []types.Flow   `json:"flows,omitempty"`
	Paths      []types.Path   `json:"paths,omitempty"`
	Bytes      uint64         `json:"bytes,omitempty"`
	Pkts       uint64         `json:"pkts,omitempty"`
	Duration   types.Time     `json:"duration,omitempty"`
	FlowIDs    []types.FlowID `json:"flow_ids,omitempty"`
	Hists      []LinkHist     `json:"hists,omitempty"`
	Top        []FlowBytes    `json:"top,omitempty"`
	Violations []Violation    `json:"violations,omitempty"`
	Matrix     []MatrixCell   `json:"matrix,omitempty"`
	Records    []types.Record `json:"records,omitempty"`
}

// WireSize returns the serialised size in bytes — the unit of the query
// traffic-volume measurements (Figs. 11b, 12b).
func (r *Result) WireSize() int {
	b, err := json.Marshal(r)
	if err != nil {
		return 0
	}
	return len(b)
}

// View is the data a host agent exposes to query execution: its TIB (plus
// not-yet-exported trajectory memory) and the active TCP monitor.
type View interface {
	// Flows is getFlows: distinct ⟨flowID, path⟩ pairs through a link.
	Flows(link types.LinkID, tr types.TimeRange) []types.Flow
	// Paths is getPaths: distinct paths of one flow through a link.
	Paths(f types.FlowID, link types.LinkID, tr types.TimeRange) []types.Path
	// Count is getCount over a ⟨flowID, path⟩ pair (nil path = all).
	Count(f types.Flow, tr types.TimeRange) (bytes, pkts uint64)
	// Duration is getDuration over a ⟨flowID, path⟩ pair.
	Duration(f types.Flow, tr types.TimeRange) types.Time
	// PoorTCPFlows is getPoorTCPFlows from the active monitor.
	PoorTCPFlows(threshold int) []types.FlowID
	// ScanRecords visits raw records matching the predicate in insertion
	// order (for matrix/records ops and everything built on raw scans).
	// Views over an indexed store push the predicate down — segment
	// pruning plus index postings — instead of filtering a full scan.
	ScanRecords(p Predicate, fn func(*types.Record))
}

// OpSupport is an optional View extension: views that cannot serve some
// ops declare it, so ExecuteE can distinguish "no matching data" from
// "this view can never answer that".
type OpSupport interface {
	// Supports returns nil when the op is answerable, or an error
	// wrapping ErrUnsupported when it is not.
	Supports(op Op) error
}

// StoreView adapts a bare TIB store into a View with no TCP monitor —
// used by tests and offline analysis of snapshots. It cannot serve
// OpPoorTCP (there is no monitor behind a snapshot); ExecuteE surfaces
// that as ErrUnsupported instead of a silently empty result.
type StoreView struct{ S *tib.Store }

// Flows implements View.
func (v StoreView) Flows(l types.LinkID, tr types.TimeRange) []types.Flow { return v.S.Flows(l, tr) }

// Paths implements View.
func (v StoreView) Paths(f types.FlowID, l types.LinkID, tr types.TimeRange) []types.Path {
	return v.S.Paths(f, l, tr)
}

// Count implements View.
func (v StoreView) Count(f types.Flow, tr types.TimeRange) (uint64, uint64) { return v.S.Count(f, tr) }

// Duration implements View.
func (v StoreView) Duration(f types.Flow, tr types.TimeRange) types.Time { return v.S.Duration(f, tr) }

// PoorTCPFlows implements View. A bare store has no TCP monitor; use
// ExecuteE (which consults Supports) to get an explicit ErrUnsupported
// rather than mistaking this for "no poor flows".
func (v StoreView) PoorTCPFlows(int) []types.FlowID { return nil }

// Supports implements OpSupport.
func (v StoreView) Supports(op Op) error {
	if op == OpPoorTCP {
		return fmt.Errorf("%w: %s needs the active TCP monitor, absent from a bare TIB store", ErrUnsupported, op)
	}
	return nil
}

// ScanRecords implements View: the predicate goes straight down into the
// segmented store's scan (whole-segment time pruning, index postings,
// and — when the predicate carries a sequence window — whole-segment
// watermark skipping via ScanSince). The View contract has no error
// channel; a cold-tier read fault leaves the answer partial and counted
// in the store's ColdStats (see tib.Store.Flows).
func (v StoreView) ScanRecords(p Predicate, fn func(*types.Record)) {
	_ = v.S.ScanSince(p.MinSeq, p.MaxSeq, p.Flow, p.Link, p.Range, func(rec *types.Record) bool {
		fn(rec)
		return true
	})
}

// ExecuteE runs a query against a host's view, reporting ErrUnsupported
// when the view declares (via OpSupport) that it can never answer the op.
func ExecuteE(q Query, v View) (Result, error) {
	if s, ok := v.(OpSupport); ok {
		if err := s.Supports(q.Op); err != nil {
			return Result{Op: q.Op}, err
		}
	}
	return Execute(q, v), nil
}

// Execute runs a query against a host's view and returns its local result.
// Ops the view cannot serve come back empty; use ExecuteE to tell those
// apart from genuinely empty answers.
func Execute(q Query, v View) Result {
	tr := q.normalRange()
	res := Result{Op: q.Op}
	switch q.Op {
	case OpFlows:
		res.Flows = v.Flows(q.Link, tr)
	case OpPaths:
		res.Paths = v.Paths(q.Flow, q.Link, tr)
	case OpCount:
		res.Bytes, res.Pkts = v.Count(types.Flow{ID: q.Flow, Path: q.Path}, tr)
	case OpDuration:
		res.Duration = v.Duration(types.Flow{ID: q.Flow, Path: q.Path}, tr)
	case OpPoorTCP:
		res.FlowIDs = v.PoorTCPFlows(q.Threshold)
	case OpFSD:
		res.Hists = executeFSD(q, v, tr)
	case OpTopK:
		res.Top = executeTopK(q, v, tr)
	case OpConformance:
		res.Violations = executeConformance(q, v, tr)
	case OpMatrix:
		res.Matrix = executeMatrix(q, v, tr)
	case OpRecords:
		// Reply buffers come from the pool: the rpc servers hand them back
		// after encoding, so fan-out traffic recycles capacity. A reply
		// with no matches returns its buffer immediately and stays nil
		// (the JSON omitempty / wire section-presence contract).
		recs := GetRecordBuf()
		v.ScanRecords(PredicateOf(q), func(rec *types.Record) {
			recs = append(recs, *rec)
		})
		if len(recs) == 0 {
			PutRecordBuf(recs)
		} else {
			res.Records = recs
		}
	}
	return res
}

// executeFSD builds one histogram per requested link: the §2.3
// load-imbalance query (getFlows + getCount per flow, binned).
func executeFSD(q Query, v View, tr types.TimeRange) []LinkHist {
	bin := q.BinBytes
	if bin == 0 {
		bin = 10000 // the paper's example binsize
	}
	links := q.Links
	if len(links) == 0 {
		links = []types.LinkID{q.Link}
	}
	out := make([]LinkHist, 0, len(links))
	for _, l := range links {
		h := LinkHist{Link: l, BinBytes: bin}
		for _, fl := range v.Flows(l, tr) {
			bytes, _ := v.Count(fl, tr)
			idx := int(bytes / bin)
			for len(h.Bins) <= idx {
				h.Bins = append(h.Bins, 0)
			}
			h.Bins[idx]++
		}
		out = append(out, h)
	}
	return out
}

// executeTopK is the §2.3 top-k query: all local flows ranked by bytes.
func executeTopK(q Query, v View, tr types.TimeRange) []FlowBytes {
	k := q.K
	if k <= 0 {
		k = 1000 // the paper's example
	}
	totals := make(map[types.FlowID]*FlowBytes)
	for _, fl := range v.Flows(types.AnyLink, tr) {
		if _, seen := totals[fl.ID]; seen {
			continue // Count aggregates across paths already
		}
		b, p := v.Count(types.Flow{ID: fl.ID}, tr)
		totals[fl.ID] = &FlowBytes{Flow: fl.ID, Bytes: b, Pkts: p}
	}
	all := make([]FlowBytes, 0, len(totals))
	for _, fb := range totals {
		all = append(all, *fb)
	}
	sortFlowBytes(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// executeConformance is the §2.3 path-conformance check over local flows.
func executeConformance(q Query, v View, tr types.TimeRange) []Violation {
	var out []Violation
	check := func(f types.FlowID, p types.Path) {
		if violates(q, p) {
			out = append(out, Violation{Flow: f, Path: p})
		}
	}
	zero := types.FlowID{}
	if q.Flow != zero {
		for _, p := range v.Paths(q.Flow, types.AnyLink, tr) {
			check(q.Flow, p)
		}
		return out
	}
	for _, fl := range v.Flows(types.AnyLink, tr) {
		check(fl.ID, fl.Path)
	}
	return out
}

// violates applies the conformance policy to one path.
func violates(q Query, p types.Path) bool {
	if q.MaxPathLen > 0 && len(p) >= q.MaxPathLen {
		return true
	}
	for _, s := range q.Avoid {
		if p.Contains(s) {
			return true
		}
	}
	for _, w := range q.Waypoints {
		if !p.Contains(w) {
			return true
		}
	}
	return false
}

// executeMatrix aggregates bytes between path endpoints (ToR pairs).
func executeMatrix(q Query, v View, tr types.TimeRange) []MatrixCell {
	type key struct{ s, d types.SwitchID }
	cells := make(map[key]uint64)
	v.ScanRecords(Predicate{Link: types.AnyLink, Range: tr}, func(rec *types.Record) {
		if len(rec.Path) == 0 {
			return
		}
		k := key{rec.Path[0], rec.Path[len(rec.Path)-1]}
		cells[k] += rec.Bytes
	})
	out := make([]MatrixCell, 0, len(cells))
	for k, b := range cells {
		out = append(out, MatrixCell{SrcToR: k.s, DstToR: k.d, Bytes: b})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SrcToR != out[j].SrcToR {
			return out[i].SrcToR < out[j].SrcToR
		}
		return out[i].DstToR < out[j].DstToR
	})
	return out
}

func sortFlowBytes(s []FlowBytes) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Bytes != s[j].Bytes {
			return s[i].Bytes > s[j].Bytes
		}
		return flowLess(s[i].Flow, s[j].Flow)
	})
}

// flowLess is the deterministic tie-break order for equal byte counts:
// field-wise over the 5-tuple, never formatting strings per comparison
// (ties are common in degenerate inputs, and the tie-break must not
// dominate the sort).
func flowLess(a, b types.FlowID) bool {
	if a.SrcIP != b.SrcIP {
		return a.SrcIP < b.SrcIP
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.DstIP != b.DstIP {
		return a.DstIP < b.DstIP
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	return a.Proto < b.Proto
}
