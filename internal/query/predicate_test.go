package query

import (
	"math/rand"
	"testing"

	"pathdump/internal/tib"
	"pathdump/internal/types"
)

func predFlow(n int) types.FlowID {
	return types.FlowID{SrcIP: types.IP(n), DstIP: 7, SrcPort: uint16(n), DstPort: 80, Proto: 6}
}

func TestPredicateMatch(t *testing.T) {
	f := predFlow(3)
	rec := types.Record{Flow: f, Path: types.Path{1, 2, 3}, STime: 10, ETime: 20, Bytes: 5, Pkts: 1}
	other := predFlow(4)
	cases := []struct {
		name string
		p    Predicate
		want bool
	}{
		{"wildcard everything", Predicate{Link: types.AnyLink, Range: types.AllTime}, true},
		{"matching flow", Predicate{Flow: &f, Link: types.AnyLink, Range: types.AllTime}, true},
		{"wrong flow", Predicate{Flow: &other, Link: types.AnyLink, Range: types.AllTime}, false},
		{"matching link", Predicate{Link: types.LinkID{A: 2, B: 3}, Range: types.AllTime}, true},
		{"reverse link", Predicate{Link: types.LinkID{A: 3, B: 2}, Range: types.AllTime}, false},
		{"half wildcard link", Predicate{Link: types.LinkID{A: types.WildcardSwitch, B: 2}, Range: types.AllTime}, true},
		{"overlapping range", Predicate{Link: types.AnyLink, Range: types.TimeRange{From: 15, To: 30}}, true},
		{"disjoint range", Predicate{Link: types.AnyLink, Range: types.TimeRange{From: 21, To: 30}}, false},
		{"all terms", Predicate{Flow: &f, Link: types.LinkID{A: 1, B: 2}, Range: types.TimeRange{From: 0, To: 12}}, true},
	}
	for _, tc := range cases {
		if got := tc.p.Match(&rec); got != tc.want {
			t.Errorf("%s: Match = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestPredicateOf: the query's flow/link/range map onto the predicate,
// with the zero flow meaning "any" and the zero range normalised.
func TestPredicateOf(t *testing.T) {
	p := PredicateOf(Query{Op: OpRecords, Link: types.AnyLink})
	if p.Flow != nil || p.Range != types.AllTime {
		t.Errorf("zero query predicate = %+v, want any-flow all-time", p)
	}
	f := predFlow(1)
	p = PredicateOf(Query{Op: OpRecords, Flow: f, Link: types.LinkID{A: 1, B: 2}, Range: types.TimeRange{From: 5, To: 9}})
	if p.Flow == nil || *p.Flow != f || p.Link != (types.LinkID{A: 1, B: 2}) || p.Range != (types.TimeRange{From: 5, To: 9}) {
		t.Errorf("predicate = %+v", p)
	}
}

// TestRecordsOpFlowPushdown: OpRecords with a flow set walks that flow's
// postings instead of dumping every record — new capability the
// predicate pushdown enables.
func TestRecordsOpFlowPushdown(t *testing.T) {
	s := tib.NewStoreConfig(tib.Config{SegmentRecords: 8})
	f := predFlow(1)
	for i := 0; i < 100; i++ {
		fl := predFlow(i % 10)
		s.Add(types.Record{Flow: fl, Path: types.Path{1, 2, 3}, STime: types.Time(i), ETime: types.Time(i + 1), Bytes: uint64(i), Pkts: 1})
	}
	res := Execute(Query{Op: OpRecords, Flow: f, Link: types.AnyLink}, StoreView{S: s})
	if len(res.Records) != 10 {
		t.Fatalf("flow-filtered records = %d, want 10", len(res.Records))
	}
	for _, r := range res.Records {
		if r.Flow != f {
			t.Fatalf("alien record %v", r)
		}
	}
	// Without a flow the op still dumps everything in range.
	res = Execute(Query{Op: OpRecords, Link: types.AnyLink, Range: types.TimeRange{From: 0, To: 9}}, StoreView{S: s})
	if len(res.Records) != 10 {
		t.Fatalf("windowed records = %d, want 10", len(res.Records))
	}
}

// TestScanRecordsPushdownEquivalence: for arbitrary predicates, the
// pushed-down scan must visit exactly the records a full scan plus
// Predicate.Match would, in the same order.
func TestScanRecordsPushdownEquivalence(t *testing.T) {
	s := tib.NewStoreConfig(tib.Config{SegmentRecords: 16, SegmentSpan: 25})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 800; i++ {
		st := types.Time(rng.Intn(200))
		s.Add(types.Record{
			Flow:  predFlow(rng.Intn(30)),
			Path:  types.Path{types.SwitchID(rng.Intn(3)), types.SwitchID(3 + rng.Intn(3)), types.SwitchID(6 + rng.Intn(3))},
			STime: st, ETime: st + types.Time(rng.Intn(30)),
			Bytes: uint64(i), Pkts: 1,
		})
	}
	v := StoreView{S: s}
	for trial := 0; trial < 200; trial++ {
		p := Predicate{Link: types.AnyLink, Range: types.AllTime}
		if rng.Intn(2) == 0 {
			f := predFlow(rng.Intn(30))
			p.Flow = &f
		}
		if rng.Intn(2) == 0 {
			p.Link = types.LinkID{A: types.SwitchID(rng.Intn(4)), B: types.SwitchID(3 + rng.Intn(4))}
			if rng.Intn(3) == 0 {
				p.Link.A = types.WildcardSwitch
			}
		}
		if rng.Intn(2) == 0 {
			from := types.Time(rng.Intn(180))
			p.Range = types.TimeRange{From: from, To: from + types.Time(rng.Intn(60))}
		}
		var pushed, filtered []uint64
		v.ScanRecords(p, func(r *types.Record) { pushed = append(pushed, r.Bytes) })
		v.ScanRecords(Predicate{Link: types.AnyLink, Range: types.AllTime}, func(r *types.Record) {
			if p.Match(r) {
				filtered = append(filtered, r.Bytes)
			}
		})
		if len(pushed) != len(filtered) {
			t.Fatalf("trial %d (%+v): pushdown %d records, filter %d", trial, p, len(pushed), len(filtered))
		}
		for i := range pushed {
			if pushed[i] != filtered[i] {
				t.Fatalf("trial %d (%+v): order diverges at %d", trial, p, i)
			}
		}
	}
}
