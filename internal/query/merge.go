package query

import (
	"pathdump/internal/types"
)

// Merge folds another host's partial result into r. It implements the
// aggregation step of both the controller's direct query (fold at the
// root) and the multi-level aggregation tree (fold at interior nodes),
// inspired by Dremel/iMR (§3.2). Merging is associative and commutative,
// so any tree shape yields the same final result.
func (r *Result) Merge(o *Result, q Query) {
	switch q.Op {
	case OpFlows:
		r.Flows = mergeFlows(r.Flows, o.Flows)
	case OpPaths:
		r.Paths = mergePaths(r.Paths, o.Paths)
	case OpCount:
		r.Bytes += o.Bytes
		r.Pkts += o.Pkts
	case OpDuration:
		if o.Duration > r.Duration {
			r.Duration = o.Duration
		}
	case OpPoorTCP:
		r.FlowIDs = mergeFlowIDs(r.FlowIDs, o.FlowIDs)
	case OpFSD:
		r.Hists = mergeHists(r.Hists, o.Hists)
	case OpTopK:
		k := q.K
		if k <= 0 {
			k = 1000
		}
		r.Top = mergeTop(r.Top, o.Top, k)
	case OpConformance:
		r.Violations = mergeViolations(r.Violations, o.Violations)
	case OpMatrix:
		r.Matrix = mergeMatrix(r.Matrix, o.Matrix)
	case OpRecords:
		r.Records = append(r.Records, o.Records...)
	}
}

func mergeFlows(a, b []types.Flow) []types.Flow {
	seen := make(map[string]bool, len(a))
	for _, f := range a {
		seen[f.ID.String()+f.Path.Key()] = true
	}
	for _, f := range b {
		k := f.ID.String() + f.Path.Key()
		if !seen[k] {
			seen[k] = true
			a = append(a, f)
		}
	}
	return a
}

func mergePaths(a, b []types.Path) []types.Path {
	seen := make(map[string]bool, len(a))
	for _, p := range a {
		seen[p.Key()] = true
	}
	for _, p := range b {
		if !seen[p.Key()] {
			seen[p.Key()] = true
			a = append(a, p)
		}
	}
	return a
}

func mergeFlowIDs(a, b []types.FlowID) []types.FlowID {
	seen := make(map[types.FlowID]bool, len(a))
	for _, f := range a {
		seen[f] = true
	}
	for _, f := range b {
		if !seen[f] {
			seen[f] = true
			a = append(a, f)
		}
	}
	return a
}

func mergeHists(a, b []LinkHist) []LinkHist {
	idx := make(map[types.LinkID]int, len(a))
	for i, h := range a {
		idx[h.Link] = i
	}
	for _, h := range b {
		i, ok := idx[h.Link]
		if !ok {
			idx[h.Link] = len(a)
			a = append(a, LinkHist{Link: h.Link, BinBytes: h.BinBytes, Bins: append([]uint64(nil), h.Bins...)})
			continue
		}
		for len(a[i].Bins) < len(h.Bins) {
			a[i].Bins = append(a[i].Bins, 0)
		}
		for j, v := range h.Bins {
			a[i].Bins[j] += v
		}
	}
	return a
}

// mergeTop combines two ranked lists and keeps the global top k. Entries
// for the same flow are summed first (a flow's records live on a single
// host, but spray subflows can surface the same flow twice during
// intermediate aggregation).
func mergeTop(a, b []FlowBytes, k int) []FlowBytes {
	sum := make(map[types.FlowID]FlowBytes, len(a)+len(b))
	for _, fb := range append(append([]FlowBytes(nil), a...), b...) {
		cur := sum[fb.Flow]
		cur.Flow = fb.Flow
		cur.Bytes += fb.Bytes
		cur.Pkts += fb.Pkts
		sum[fb.Flow] = cur
	}
	out := make([]FlowBytes, 0, len(sum))
	for _, fb := range sum {
		out = append(out, fb)
	}
	sortFlowBytes(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func mergeViolations(a, b []Violation) []Violation {
	seen := make(map[string]bool, len(a))
	for _, v := range a {
		seen[v.Flow.String()+v.Path.Key()] = true
	}
	for _, v := range b {
		k := v.Flow.String() + v.Path.Key()
		if !seen[k] {
			seen[k] = true
			a = append(a, v)
		}
	}
	return a
}

func mergeMatrix(a, b []MatrixCell) []MatrixCell {
	type key struct{ s, d types.SwitchID }
	idx := make(map[key]int, len(a))
	for i, c := range a {
		idx[key{c.SrcToR, c.DstToR}] = i
	}
	for _, c := range b {
		k := key{c.SrcToR, c.DstToR}
		if i, ok := idx[k]; ok {
			a[i].Bytes += c.Bytes
		} else {
			idx[k] = len(a)
			a = append(a, c)
		}
	}
	return a
}
