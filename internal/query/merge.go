package query

import (
	"pathdump/internal/types"
)

// Merge folds another host's partial result into r. It implements the
// aggregation step of both the controller's direct query (fold at the
// root) and the multi-level aggregation tree (fold at interior nodes),
// inspired by Dremel/iMR (§3.2). Merging is associative and commutative,
// so any tree shape yields the same final result.
func (r *Result) Merge(o *Result, q Query) {
	switch q.Op {
	case OpFlows:
		r.Flows = mergeFlows(r.Flows, o.Flows)
	case OpPaths:
		r.Paths = mergePaths(r.Paths, o.Paths)
	case OpCount:
		r.Bytes += o.Bytes
		r.Pkts += o.Pkts
	case OpDuration:
		if o.Duration > r.Duration {
			r.Duration = o.Duration
		}
	case OpPoorTCP:
		r.FlowIDs = mergeFlowIDs(r.FlowIDs, o.FlowIDs)
	case OpFSD:
		r.Hists = mergeHists(r.Hists, o.Hists)
	case OpTopK:
		k := q.K
		if k <= 0 {
			k = 1000
		}
		r.Top = mergeTop(r.Top, o.Top, k)
	case OpConformance:
		r.Violations = mergeViolations(r.Violations, o.Violations)
	case OpMatrix:
		r.Matrix = mergeMatrix(r.Matrix, o.Matrix)
	case OpRecords:
		r.Records = append(r.Records, o.Records...)
	}
}

// Partial is one child's indexed contribution to a streaming merge. A
// nil Res marks a child that contributes nothing — a dropped straggler, a
// host cut off by the query deadline — so the merge can advance past its
// slot without waiting.
type Partial struct {
	Index int
	Res   *Result
}

// StreamMerger folds per-child partial results into a single result
// incrementally: child i is merged the moment children 0..i-1 have been
// merged and child i has arrived, so merge work overlaps waiting on
// stragglers instead of barriering on the full wave. Out-of-order
// arrivals are buffered, which keeps the output identical to a
// sequential index-order merge no matter the arrival order — the
// determinism the controller's partial-result accounting relies on.
//
// A StreamMerger is single-consumer: feed Add from one goroutine,
// typically the one draining a completion channel (see MergeStream).
type StreamMerger struct {
	q       Query
	dst     *Result
	pending []*Result
	arrived []bool
	next    int
	merged  int
}

// NewStreamMerger prepares a streaming merge of n children into dst
// (whose current contents — e.g. the aggregating host's own result — are
// the merge base).
func NewStreamMerger(q Query, dst *Result, n int) *StreamMerger {
	dst.Op = q.Op
	return &StreamMerger{q: q, dst: dst, pending: make([]*Result, n), arrived: make([]bool, n)}
}

// Add hands child i's result (nil = no contribution) to the merger and
// folds in as much of the now-contiguous prefix as possible. Duplicate
// indices are ignored.
func (m *StreamMerger) Add(i int, r *Result) {
	if m.arrived[i] {
		return
	}
	m.arrived[i] = true
	m.pending[i] = r
	for m.next < len(m.arrived) && m.arrived[m.next] {
		if r := m.pending[m.next]; r != nil {
			m.dst.Merge(r, m.q)
			m.merged++
		}
		m.pending[m.next] = nil
		m.next++
	}
}

// Merged reports how many non-nil contributions have been folded in.
func (m *StreamMerger) Merged() int { return m.merged }

// Done reports whether every child slot has been consumed.
func (m *StreamMerger) Done() bool { return m.next == len(m.arrived) }

// MergeStream is the channel-fed streaming merge: it drains exactly n
// indexed contributions from ch into dst, merging each one as soon as the
// index order allows, and returns how many were non-nil. Producers send
// each child's Partial once, from any goroutine, as results land.
func MergeStream(q Query, dst *Result, n int, ch <-chan Partial) int {
	m := NewStreamMerger(q, dst, n)
	for i := 0; i < n; i++ {
		p := <-ch
		m.Add(p.Index, p.Res)
	}
	return m.merged
}

func mergeFlows(a, b []types.Flow) []types.Flow {
	seen := make(map[string]bool, len(a))
	for _, f := range a {
		seen[f.ID.String()+f.Path.Key()] = true
	}
	for _, f := range b {
		k := f.ID.String() + f.Path.Key()
		if !seen[k] {
			seen[k] = true
			a = append(a, f)
		}
	}
	return a
}

func mergePaths(a, b []types.Path) []types.Path {
	seen := make(map[string]bool, len(a))
	for _, p := range a {
		seen[p.Key()] = true
	}
	for _, p := range b {
		if !seen[p.Key()] {
			seen[p.Key()] = true
			a = append(a, p)
		}
	}
	return a
}

func mergeFlowIDs(a, b []types.FlowID) []types.FlowID {
	seen := make(map[types.FlowID]bool, len(a))
	for _, f := range a {
		seen[f] = true
	}
	for _, f := range b {
		if !seen[f] {
			seen[f] = true
			a = append(a, f)
		}
	}
	return a
}

func mergeHists(a, b []LinkHist) []LinkHist {
	idx := make(map[types.LinkID]int, len(a))
	for i, h := range a {
		idx[h.Link] = i
	}
	for _, h := range b {
		i, ok := idx[h.Link]
		if !ok {
			idx[h.Link] = len(a)
			a = append(a, LinkHist{Link: h.Link, BinBytes: h.BinBytes, Bins: append([]uint64(nil), h.Bins...)})
			continue
		}
		for len(a[i].Bins) < len(h.Bins) {
			a[i].Bins = append(a[i].Bins, 0)
		}
		for j, v := range h.Bins {
			a[i].Bins[j] += v
		}
	}
	return a
}

// mergeTop combines two ranked lists and keeps the global top k. Entries
// for the same flow are summed first (a flow's records live on a single
// host, but spray subflows can surface the same flow twice during
// intermediate aggregation).
func mergeTop(a, b []FlowBytes, k int) []FlowBytes {
	sum := make(map[types.FlowID]FlowBytes, len(a)+len(b))
	for _, fb := range append(append([]FlowBytes(nil), a...), b...) {
		cur := sum[fb.Flow]
		cur.Flow = fb.Flow
		cur.Bytes += fb.Bytes
		cur.Pkts += fb.Pkts
		sum[fb.Flow] = cur
	}
	out := make([]FlowBytes, 0, len(sum))
	for _, fb := range sum {
		out = append(out, fb)
	}
	sortFlowBytes(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func mergeViolations(a, b []Violation) []Violation {
	seen := make(map[string]bool, len(a))
	for _, v := range a {
		seen[v.Flow.String()+v.Path.Key()] = true
	}
	for _, v := range b {
		k := v.Flow.String() + v.Path.Key()
		if !seen[k] {
			seen[k] = true
			a = append(a, v)
		}
	}
	return a
}

func mergeMatrix(a, b []MatrixCell) []MatrixCell {
	type key struct{ s, d types.SwitchID }
	idx := make(map[key]int, len(a))
	for i, c := range a {
		idx[key{c.SrcToR, c.DstToR}] = i
	}
	for _, c := range b {
		k := key{c.SrcToR, c.DstToR}
		if i, ok := idx[k]; ok {
			a[i].Bytes += c.Bytes
		} else {
			idx[k] = len(a)
			a = append(a, c)
		}
	}
	return a
}
