package query

import (
	"testing"

	"pathdump/internal/tib"
	"pathdump/internal/types"
)

// deltaRecord builds record i: flow keyed by i, 3-hop path through
// switch i%4, 1 ms of activity starting at i ms.
func deltaRecord(i int) types.Record {
	st := types.Time(i) * types.Millisecond
	return types.Record{
		Flow:  types.FlowID{SrcIP: types.IP(i), DstIP: 1, SrcPort: uint16(i), DstPort: 80, Proto: 6},
		Path:  types.Path{types.SwitchID(i % 4), 10, 20},
		STime: st, ETime: st + types.Millisecond,
		Bytes: uint64(100 * i), Pkts: uint64(i),
	}
}

// TestScanViewWindow proves a windowed ScanView evaluates every derived
// op over only the (MinSeq, MaxSeq] delta — the incremental-trigger
// evaluation path — and that results match a full view restricted to the
// same records.
func TestScanViewWindow(t *testing.T) {
	s := tib.NewStoreConfig(tib.Config{Shards: 1, SegmentRecords: 4})
	for i := 1; i <= 20; i++ {
		s.Add(deltaRecord(i))
	}
	store := StoreView{S: s}
	delta := ScanView{
		Scan:   store.ScanRecords,
		Window: Predicate{MinSeq: 15, MaxSeq: 20},
	}

	// OpRecords over the delta: exactly records 16..20.
	res := Execute(Query{Op: OpRecords, Link: types.AnyLink}, delta)
	if len(res.Records) != 5 {
		t.Fatalf("delta records = %d, want 5", len(res.Records))
	}
	for i, rec := range res.Records {
		if want := uint64(100 * (16 + i)); rec.Bytes != want {
			t.Fatalf("delta record %d has Bytes %d, want %d", i, rec.Bytes, want)
		}
	}

	// Flows: 5 distinct flows in the window.
	if got := len(Execute(Query{Op: OpFlows, Link: types.AnyLink}, delta).Flows); got != 5 {
		t.Fatalf("delta flows = %d, want 5", got)
	}

	// Count of an in-window flow vs an out-of-window one.
	in := deltaRecord(18).Flow
	out := deltaRecord(3).Flow
	if res := Execute(Query{Op: OpCount, Flow: in}, delta); res.Bytes != 1800 {
		t.Fatalf("in-window count = %d, want 1800", res.Bytes)
	}
	if res := Execute(Query{Op: OpCount, Flow: out}, delta); res.Bytes != 0 {
		t.Fatalf("out-of-window count = %d, want 0", res.Bytes)
	}

	// Conformance over the delta flags only new records' paths.
	res = Execute(Query{Op: OpConformance, MaxPathLen: 3}, delta)
	if len(res.Violations) != 5 {
		t.Fatalf("delta conformance found %d violations, want 5", len(res.Violations))
	}

	// TopK over the delta ranks only the new flows.
	res = Execute(Query{Op: OpTopK, K: 3}, delta)
	if len(res.Top) != 3 || res.Top[0].Bytes != 2000 {
		t.Fatalf("delta topk = %+v, want top Bytes 2000", res.Top)
	}

	// Duration/Paths honour the window too.
	if d := delta.Duration(types.Flow{ID: in}, types.AllTime); d != types.Millisecond {
		t.Fatalf("in-window duration = %v, want 1ms", d)
	}
	if p := delta.Paths(out, types.AnyLink, types.AllTime); p != nil {
		t.Fatalf("out-of-window paths = %v, want none", p)
	}

	// PoorTCPFlows: nil without a monitor, delegated with one.
	if delta.PoorTCPFlows(3) != nil {
		t.Fatal("monitorless ScanView returned poor flows")
	}
	delta.Poor = func(int) []types.FlowID { return []types.FlowID{in} }
	if got := delta.PoorTCPFlows(3); len(got) != 1 || got[0] != in {
		t.Fatalf("delegated poor flows = %v", got)
	}
}

// TestScanViewWindowMerge: an op predicate carrying its own sequence
// bounds intersects with the view window rather than replacing it.
func TestScanViewWindowMerge(t *testing.T) {
	s := tib.NewStoreConfig(tib.Config{Shards: 1, SegmentRecords: 4})
	for i := 1; i <= 10; i++ {
		s.Add(deltaRecord(i))
	}
	store := StoreView{S: s}
	v := ScanView{Scan: store.ScanRecords, Window: Predicate{MinSeq: 4, MaxSeq: 8}}
	var n int
	v.ScanRecords(Predicate{Link: types.AnyLink, Range: types.AllTime, MinSeq: 6, MaxSeq: 9}, func(*types.Record) { n++ })
	if n != 2 { // intersection (6, 8]
		t.Fatalf("merged window visited %d records, want 2", n)
	}
}
