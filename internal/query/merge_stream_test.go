package query

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"pathdump/internal/types"
)

// childResults builds n deterministic per-child results for op, with
// partially overlapping flows so merging actually dedups/sums.
func childResults(n, per int, op Op) []Result {
	out := make([]Result, n)
	for i := range out {
		r := &out[i]
		r.Op = op
		for j := 0; j < per; j++ {
			f := types.FlowID{
				SrcIP:   types.IP(i*per + j),
				DstIP:   types.IP(j % 7), // overlap across children
				SrcPort: uint16(j),
				DstPort: 80,
				Proto:   types.ProtoTCP,
			}
			switch op {
			case OpFlows:
				r.Flows = append(r.Flows, types.Flow{ID: f, Path: types.Path{types.SwitchID(i), types.SwitchID(j % 5)}})
			case OpTopK:
				r.Top = append(r.Top, FlowBytes{Flow: f, Bytes: uint64(1000*i + j)})
			case OpCount:
				r.Bytes += uint64(j)
				r.Pkts++
			}
		}
	}
	return out
}

// sequentialMerge is the reference: fold children into dst strictly in
// index order.
func sequentialMerge(q Query, results []Result, skip map[int]bool) Result {
	var dst Result
	dst.Op = q.Op
	for i := range results {
		if skip[i] {
			continue
		}
		dst.Merge(&results[i], q)
	}
	return dst
}

// TestStreamMergerMatchesSequential: whatever order contributions arrive
// in, the streamed output must equal the sequential index-order merge —
// including for OpFlows, whose output slice order would expose any
// arrival-order dependence.
func TestStreamMergerMatchesSequential(t *testing.T) {
	for _, op := range []Op{OpFlows, OpTopK, OpCount} {
		t.Run(string(op), func(t *testing.T) {
			const n = 12
			q := Query{Op: op, K: 50}
			results := childResults(n, 40, op)
			want := sequentialMerge(q, results, nil)

			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 20; trial++ {
				order := rng.Perm(n)
				var got Result
				m := NewStreamMerger(q, &got, n)
				for _, i := range order {
					m.Add(i, &results[i])
				}
				if !m.Done() {
					t.Fatal("merger not done after all slots added")
				}
				if m.Merged() != n {
					t.Fatalf("merged %d of %d", m.Merged(), n)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d (order %v): streamed merge differs from sequential", trial, order)
				}
			}
		})
	}
}

// TestStreamMergerNilContributions: nil slots (dropped stragglers) are
// skipped without blocking the prefix, and duplicates are ignored.
func TestStreamMergerNilContributions(t *testing.T) {
	const n = 8
	q := Query{Op: OpFlows}
	results := childResults(n, 10, OpFlows)
	skip := map[int]bool{0: true, 3: true, 7: true}
	want := sequentialMerge(q, results, skip)

	var got Result
	m := NewStreamMerger(q, &got, n)
	for i := n - 1; i >= 0; i-- { // worst case: fully reversed arrival
		if skip[i] {
			m.Add(i, nil)
		} else {
			m.Add(i, &results[i])
		}
		m.Add(i, &results[i]) // duplicate must be ignored
	}
	if !m.Done() || m.Merged() != n-len(skip) {
		t.Fatalf("done=%v merged=%d, want %d", m.Done(), m.Merged(), n-len(skip))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("nil-slot merge differs from sequential merge that skips the same children")
	}
}

// TestMergeStreamChannelFed: the channel-fed entry point drains exactly n
// contributions sent concurrently and produces the deterministic merge.
func TestMergeStreamChannelFed(t *testing.T) {
	const n = 16
	q := Query{Op: OpFlows}
	results := childResults(n, 25, OpFlows)
	want := sequentialMerge(q, results, nil)

	for trial := 0; trial < 10; trial++ {
		ch := make(chan Partial, n)
		for i := 0; i < n; i++ {
			go func(i int) {
				time.Sleep(time.Duration(rand.Intn(3)) * time.Millisecond)
				ch <- Partial{Index: i, Res: &results[i]}
			}(i)
		}
		var got Result
		if merged := MergeStream(q, &got, n, ch); merged != n {
			t.Fatalf("merged %d of %d", merged, n)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: channel-fed merge nondeterministic", trial)
		}
	}
}

// BenchmarkStreamingMerge quantifies the streaming win over the barrier
// merge: children's results land staggered in time (as real per-host
// replies do), and the streaming merge folds each one as it arrives
// instead of waiting for the slowest child before starting any merge
// work. Top-k keeps per-child merge cost flat (the running result is
// capped at k), and the stagger is chosen of the same order, which is
// where pipelining merges behind arrivals pays the most — the barrier
// variant pays last-arrival + every merge serially, the streaming one
// roughly max(last arrival, first arrival + Σ merges). Tracked by the CI
// bench-regression gate next to BenchmarkParallelFanout.
func BenchmarkStreamingMerge(b *testing.B) {
	const (
		children = 8
		perChild = 5000
		stagger  = 4 * time.Millisecond
	)
	q := Query{Op: OpTopK, K: perChild}
	results := childResults(children, perChild, OpTopK)

	feed := func() <-chan Partial {
		ch := make(chan Partial, children)
		for i := 0; i < children; i++ {
			go func(i int) {
				time.Sleep(time.Duration(i) * stagger)
				ch <- Partial{Index: i, Res: &results[i]}
			}(i)
		}
		return ch
	}

	b.Run(fmt.Sprintf("barrier-%dx%d", children, perChild), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ch := feed()
			buf := make([]*Result, children)
			for j := 0; j < children; j++ {
				p := <-ch
				buf[p.Index] = p.Res
			}
			var dst Result
			dst.Op = q.Op
			for j := range buf {
				dst.Merge(buf[j], q)
			}
			if len(dst.Top) != perChild {
				b.Fatal("bad merge")
			}
		}
	})
	b.Run(fmt.Sprintf("streaming-%dx%d", children, perChild), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var dst Result
			if MergeStream(q, &dst, children, feed()) != children {
				b.Fatal("missing contributions")
			}
			if len(dst.Top) != perChild {
				b.Fatal("bad merge")
			}
		}
	})
}
