// Context-aware query evaluation: a cancelled caller (HTTP client gone,
// controller deadline expired) must not pin a host's CPU on a pointless
// full TIB scan. Views that can thread a context into their scans declare
// ContextView; ExecuteContext wires the caller's context through and
// reports its error instead of a partial result.
package query

import (
	"context"

	"pathdump/internal/types"
)

// CancelCheckEvery is how many records a context-aware scan visits
// between cancellation polls. Polling ctx.Err() is an atomic load, but
// doing it per record would still dominate tight merge loops over
// millions of records; every few thousand keeps the abort latency in the
// microseconds while costing nothing measurable.
const CancelCheckEvery = 4096

// ContextView is an optional View extension: WithContext returns a view
// whose scans poll ctx and stop early once it is cancelled. Views that
// cannot interrupt their scans simply don't implement it — ExecuteContext
// still checks the context between operations.
type ContextView interface {
	WithContext(ctx context.Context) View
}

// ExecuteContext runs a query against a host's view under a context. A
// context cancelled before or during evaluation yields the context's
// error and no result (partial scans are discarded, never returned as if
// complete). Views implementing ContextView abort mid-scan; all views get
// at least entry/exit checks.
func ExecuteContext(ctx context.Context, q Query, v View) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{Op: q.Op}, err
	}
	if cv, ok := v.(ContextView); ok {
		v = cv.WithContext(ctx)
	}
	res, err := ExecuteE(q, v)
	if err != nil {
		return res, err
	}
	if err := ctx.Err(); err != nil {
		// The partial result is discarded; recycle its pooled reply
		// buffer instead of leaking it to the collector.
		PutRecordBuf(res.Records)
		return Result{Op: q.Op}, err
	}
	return res, nil
}

// WithContext implements ContextView for bare-store views.
func (v StoreView) WithContext(ctx context.Context) View {
	return ctxStoreView{StoreView: v, ctx: ctx}
}

// ctxStoreView is a StoreView whose record scans poll cancellation. The
// full-store scans (ScanRecords, and Flows built on it) abort between
// records of the cross-shard merge; per-flow lookups (Paths, Count,
// Duration) touch one shard's posting lists and just check on entry.
type ctxStoreView struct {
	StoreView
	ctx context.Context
}

// PollCancel adapts a record visitor into an early-stopping one for
// tib.Store.ForEachWhile: the returned callback polls ctx every
// CancelCheckEvery records and stops the scan once it is cancelled. It
// is the one shared definition of the in-scan poll policy — every
// context-aware view (the bare-store view here, the agent's live view)
// wraps its scans with it.
func PollCancel(ctx context.Context, fn func(*types.Record)) func(*types.Record) bool {
	n := 0
	return func(rec *types.Record) bool {
		n++
		if n%CancelCheckEvery == 0 && ctx.Err() != nil {
			return false
		}
		fn(rec)
		return true
	}
}

// ScanRecords implements View with periodic cancellation checks: the
// predicate is pushed down into the store's scan, and the visitor polls
// the context between records of the cross-shard merge. As with every
// error-less View scan, a cold-tier read fault leaves the answer
// partial and counted in the store's ColdStats.
func (v ctxStoreView) ScanRecords(p Predicate, fn func(*types.Record)) {
	_ = v.S.ScanWhile(p.Flow, p.Link, p.Range, PollCancel(v.ctx, fn))
}

// Flows implements View over the cancellable scan (same dedup as the
// store's own Flows). A scan cut off by cancellation returns nil, not a
// partial list: ExecuteContext discards the result anyway, and handing a
// truncated flow set to downstream per-flow loops (top-k's count phase)
// would only buy pointless post-processing.
func (v ctxStoreView) Flows(link types.LinkID, tr types.TimeRange) []types.Flow {
	type key struct {
		f types.FlowID
		p string
	}
	seen := make(map[key]bool)
	var out []types.Flow
	v.ScanRecords(Predicate{Link: link, Range: tr}, func(rec *types.Record) {
		k := key{rec.Flow, rec.Path.Key()}
		if !seen[k] {
			seen[k] = true
			out = append(out, types.Flow{ID: rec.Flow, Path: rec.Path})
		}
	})
	if v.ctx.Err() != nil {
		return nil
	}
	return out
}

// Paths implements View (entry check; single-flow lookups are cheap).
func (v ctxStoreView) Paths(f types.FlowID, l types.LinkID, tr types.TimeRange) []types.Path {
	if v.ctx.Err() != nil {
		return nil
	}
	return v.StoreView.Paths(f, l, tr)
}

// Count implements View (entry check).
func (v ctxStoreView) Count(f types.Flow, tr types.TimeRange) (uint64, uint64) {
	if v.ctx.Err() != nil {
		return 0, 0
	}
	return v.StoreView.Count(f, tr)
}

// Duration implements View (entry check).
func (v ctxStoreView) Duration(f types.Flow, tr types.TimeRange) types.Time {
	if v.ctx.Err() != nil {
		return 0
	}
	return v.StoreView.Duration(f, tr)
}
