// ScanView: a full query View derived from nothing but a raw record
// scanner. The agent's incremental trigger evaluation builds one per
// installed-query run, windowed to the records that arrived since the
// last run (Predicate.MinSeq/MaxSeq), so every op the query language
// supports — getFlows, getCount, conformance sweeps, top-k — evaluates
// over just the delta without each op needing its own watermark logic.
package query

import "pathdump/internal/types"

// ScanView adapts a record scanner into a View. Scan is required;
// Window's MinSeq/MaxSeq sequence bounds are folded into every
// predicate the derived ops build (intersected with the op's own
// bounds; Window's other fields are ignored — record selection beyond
// the sequence window belongs to the op); Poor, when non-nil, serves
// getPoorTCPFlows (the TCP monitor is already incremental — PoorFlows
// advances its scan window per call — so delta views pass it through).
type ScanView struct {
	Scan   func(p Predicate, fn func(*types.Record))
	Window Predicate
	Poor   func(threshold int) []types.FlowID
}

// scan runs the scanner with the view's window folded into p.
func (v ScanView) scan(p Predicate, fn func(*types.Record)) {
	if v.Window.MinSeq > p.MinSeq {
		p.MinSeq = v.Window.MinSeq
	}
	if v.Window.MaxSeq > 0 && (p.MaxSeq == 0 || v.Window.MaxSeq < p.MaxSeq) {
		p.MaxSeq = v.Window.MaxSeq
	}
	v.Scan(p, fn)
}

// ScanRecords implements View.
func (v ScanView) ScanRecords(p Predicate, fn func(*types.Record)) { v.scan(p, fn) }

// Flows implements View (getFlows over the window).
func (v ScanView) Flows(link types.LinkID, tr types.TimeRange) []types.Flow {
	type key struct {
		f types.FlowID
		p string
	}
	seen := make(map[key]bool)
	var out []types.Flow
	v.scan(Predicate{Link: link, Range: tr}, func(rec *types.Record) {
		k := key{rec.Flow, rec.Path.Key()}
		if !seen[k] {
			seen[k] = true
			out = append(out, types.Flow{ID: rec.Flow, Path: rec.Path})
		}
	})
	return out
}

// Paths implements View (getPaths over the window).
func (v ScanView) Paths(f types.FlowID, link types.LinkID, tr types.TimeRange) []types.Path {
	seen := make(map[string]bool)
	var out []types.Path
	v.scan(Predicate{Flow: &f, Link: link, Range: tr}, func(rec *types.Record) {
		k := rec.Path.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, rec.Path)
		}
	})
	return out
}

// Count implements View (getCount over the window).
func (v ScanView) Count(f types.Flow, tr types.TimeRange) (bytes, pkts uint64) {
	v.scan(Predicate{Flow: &f.ID, Link: types.AnyLink, Range: tr}, func(rec *types.Record) {
		if f.Path != nil && !rec.Path.Equal(f.Path) {
			return
		}
		bytes += rec.Bytes
		pkts += rec.Pkts
	})
	return bytes, pkts
}

// Duration implements View (getDuration over the window).
func (v ScanView) Duration(f types.Flow, tr types.TimeRange) types.Time {
	var lo, hi types.Time = -1, -1
	v.scan(Predicate{Flow: &f.ID, Link: types.AnyLink, Range: tr}, func(rec *types.Record) {
		if f.Path != nil && !rec.Path.Equal(f.Path) {
			return
		}
		if lo < 0 || rec.STime < lo {
			lo = rec.STime
		}
		if rec.ETime > hi {
			hi = rec.ETime
		}
	})
	if lo < 0 {
		return 0
	}
	return hi - lo
}

// PoorTCPFlows implements View.
func (v ScanView) PoorTCPFlows(threshold int) []types.FlowID {
	if v.Poor == nil {
		return nil
	}
	return v.Poor(threshold)
}
