package query

import (
	"encoding/json"
	"math/rand"
	"testing"

	"pathdump/internal/tib"
	"pathdump/internal/types"
)

// fixture builds a store with a known record population.
func fixture() *tib.Store {
	s := tib.NewStore()
	add := func(n int, p types.Path, bytes uint64, st, et types.Time) {
		s.Add(types.Record{
			Flow: types.FlowID{SrcIP: types.IP(n), DstIP: 200, SrcPort: uint16(n), DstPort: 80, Proto: 6},
			Path: p, STime: st, ETime: et, Bytes: bytes, Pkts: bytes / 1000,
		})
	}
	add(1, types.Path{0, 8, 16, 10, 2}, 5_000, 0, 10)
	add(2, types.Path{0, 8, 16, 10, 2}, 25_000, 5, 20)
	add(3, types.Path{0, 9, 18, 11, 2}, 500_000, 0, 30)
	add(4, types.Path{1, 8, 17, 10, 2}, 1_000, 15, 25)
	return s
}

func TestExecuteFlowsPathsCountDuration(t *testing.T) {
	v := StoreView{S: fixture()}

	res := Execute(Query{Op: OpFlows, Link: types.LinkID{A: 0, B: 8}}, v)
	if len(res.Flows) != 2 {
		t.Fatalf("flows = %v", res.Flows)
	}
	f1 := types.FlowID{SrcIP: 1, DstIP: 200, SrcPort: 1, DstPort: 80, Proto: 6}
	res = Execute(Query{Op: OpPaths, Flow: f1, Link: types.AnyLink}, v)
	if len(res.Paths) != 1 {
		t.Fatalf("paths = %v", res.Paths)
	}
	res = Execute(Query{Op: OpCount, Flow: f1}, v)
	if res.Bytes != 5000 || res.Pkts != 5 {
		t.Errorf("count = %d/%d", res.Bytes, res.Pkts)
	}
	res = Execute(Query{Op: OpDuration, Flow: f1}, v)
	if res.Duration != 10 {
		t.Errorf("duration = %v", res.Duration)
	}
	// Explicit range filter excludes early records.
	res = Execute(Query{Op: OpFlows, Link: types.AnyLink, Range: types.TimeRange{From: 21, To: 100}}, v)
	if len(res.Flows) != 2 { // flows 3 (until 30) and 4 (until 25)
		t.Errorf("range-filtered flows = %v", res.Flows)
	}
}

func TestExecuteFSD(t *testing.T) {
	v := StoreView{S: fixture()}
	q := Query{Op: OpFSD, Links: []types.LinkID{{A: 0, B: 8}, {A: 0, B: 9}}, BinBytes: 10_000}
	res := Execute(q, v)
	if len(res.Hists) != 2 {
		t.Fatalf("hists = %v", res.Hists)
	}
	// Link 0-8 carries flows of 5 000 (bin 0) and 25 000 (bin 2).
	h := res.Hists[0]
	if h.Bins[0] != 1 || len(h.Bins) < 3 || h.Bins[2] != 1 {
		t.Errorf("hist 0-8 = %v", h.Bins)
	}
	// Link 0-9 carries the 500 000-byte flow (bin 50).
	if got := res.Hists[1].Bins[50]; got != 1 {
		t.Errorf("hist 0-9 bin 50 = %d", got)
	}
}

func TestExecuteTopK(t *testing.T) {
	v := StoreView{S: fixture()}
	res := Execute(Query{Op: OpTopK, K: 2}, v)
	if len(res.Top) != 2 {
		t.Fatalf("top = %v", res.Top)
	}
	if res.Top[0].Bytes != 500_000 || res.Top[1].Bytes != 25_000 {
		t.Errorf("top order = %v", res.Top)
	}
}

func TestExecuteConformance(t *testing.T) {
	v := StoreView{S: fixture()}
	// Path length ≥ 6 or traversing switch 18 violates.
	res := Execute(Query{Op: OpConformance, MaxPathLen: 6, Avoid: []types.SwitchID{18}}, v)
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %v", res.Violations)
	}
	if !res.Violations[0].Path.Contains(18) {
		t.Errorf("wrong violation: %v", res.Violations[0])
	}
	// Waypoint: every path must include switch 8.
	res = Execute(Query{Op: OpConformance, Waypoints: []types.SwitchID{8}}, v)
	if len(res.Violations) != 1 { // only flow 3 avoids 8
		t.Errorf("waypoint violations = %v", res.Violations)
	}
	// Per-flow conformance.
	f3 := types.FlowID{SrcIP: 3, DstIP: 200, SrcPort: 3, DstPort: 80, Proto: 6}
	res = Execute(Query{Op: OpConformance, Flow: f3, Avoid: []types.SwitchID{18}}, v)
	if len(res.Violations) != 1 {
		t.Errorf("per-flow violations = %v", res.Violations)
	}
}

func TestExecuteMatrixAndRecords(t *testing.T) {
	v := StoreView{S: fixture()}
	res := Execute(Query{Op: OpMatrix}, v)
	if len(res.Matrix) != 2 { // ⟨0,2⟩ and ⟨1,2⟩
		t.Fatalf("matrix = %v", res.Matrix)
	}
	if res.Matrix[0].SrcToR != 0 || res.Matrix[0].Bytes != 530_000 {
		t.Errorf("cell = %+v", res.Matrix[0])
	}
	res = Execute(Query{Op: OpRecords, Link: types.AnyLink}, v)
	if len(res.Records) != 4 {
		t.Errorf("records = %d", len(res.Records))
	}
}

func TestMergeAssociativity(t *testing.T) {
	// Build three disjoint stores and check fold-left == fold-right for
	// every mergeable op.
	mk := func(seed int) StoreView {
		s := tib.NewStore()
		rng := rand.New(rand.NewSource(int64(seed)))
		for i := 0; i < 50; i++ {
			s.Add(types.Record{
				Flow:  types.FlowID{SrcIP: types.IP(seed*1000 + i), DstIP: 7, SrcPort: uint16(i), DstPort: 80, Proto: 6},
				Path:  types.Path{types.SwitchID(rng.Intn(3)), types.SwitchID(8 + rng.Intn(3)), 2},
				STime: types.Time(rng.Intn(50)), ETime: types.Time(50 + rng.Intn(50)),
				Bytes: uint64(rng.Intn(100_000)), Pkts: uint64(1 + rng.Intn(50)),
			})
		}
		return StoreView{S: s}
	}
	views := []StoreView{mk(1), mk(2), mk(3)}
	queries := []Query{
		{Op: OpFlows, Link: types.AnyLink},
		{Op: OpCount, Flow: types.FlowID{SrcIP: 1001, DstIP: 7, SrcPort: 1, DstPort: 80, Proto: 6}},
		{Op: OpFSD, Links: []types.LinkID{{A: 0, B: 8}, {A: 1, B: 9}}, BinBytes: 10_000},
		{Op: OpTopK, K: 10},
		{Op: OpMatrix},
		{Op: OpPoorTCP, Threshold: 1},
	}
	for _, q := range queries {
		parts := make([]Result, len(views))
		for i, v := range views {
			parts[i] = Execute(q, v)
		}
		left := Result{Op: q.Op}
		for i := range parts {
			p := parts[i]
			left.Merge(&p, q)
		}
		right := Result{Op: q.Op}
		for i := len(parts) - 1; i >= 0; i-- {
			p := parts[i]
			right.Merge(&p, q)
		}
		lb, _ := json.Marshal(canonical(left, q))
		rb, _ := json.Marshal(canonical(right, q))
		if string(lb) != string(rb) {
			t.Errorf("op %s: merge not order-independent:\n%s\n%s", q.Op, lb, rb)
		}
	}
}

// canonical sorts unordered result fields for comparison.
func canonical(r Result, q Query) Result {
	res := Execute(q, emptyView{})
	_ = res
	sortFlows(r.Flows)
	return r
}

type emptyView struct{}

func (emptyView) Flows(types.LinkID, types.TimeRange) []types.Flow { return nil }
func (emptyView) Paths(types.FlowID, types.LinkID, types.TimeRange) []types.Path {
	return nil
}
func (emptyView) Count(types.Flow, types.TimeRange) (uint64, uint64) { return 0, 0 }
func (emptyView) Duration(types.Flow, types.TimeRange) types.Time    { return 0 }
func (emptyView) PoorTCPFlows(int) []types.FlowID                    { return nil }
func (emptyView) ScanRecords(Predicate, func(*types.Record))         {}

func sortFlows(fs []types.Flow) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j].ID.String()+fs[j].Path.Key() < fs[j-1].ID.String()+fs[j-1].Path.Key(); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func TestMergeTopKTruncates(t *testing.T) {
	a := []FlowBytes{{Flow: types.FlowID{SrcIP: 1}, Bytes: 100}}
	b := []FlowBytes{
		{Flow: types.FlowID{SrcIP: 2}, Bytes: 300},
		{Flow: types.FlowID{SrcIP: 3}, Bytes: 200},
	}
	r := Result{Op: OpTopK, Top: a}
	o := Result{Op: OpTopK, Top: b}
	r.Merge(&o, Query{Op: OpTopK, K: 2})
	if len(r.Top) != 2 || r.Top[0].Bytes != 300 || r.Top[1].Bytes != 200 {
		t.Errorf("merged top = %v", r.Top)
	}
}

func TestMergeDurationTakesMax(t *testing.T) {
	r := Result{Op: OpDuration, Duration: 5}
	o := Result{Op: OpDuration, Duration: 9}
	r.Merge(&o, Query{Op: OpDuration})
	if r.Duration != 9 {
		t.Errorf("duration = %v", r.Duration)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	q := Query{
		Op: OpFSD, Links: []types.LinkID{{A: 1, B: 2}}, BinBytes: 100,
		Range: types.TimeRange{From: 1, To: 2}, Avoid: []types.SwitchID{3},
	}
	b, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	var q2 Query
	if err := json.Unmarshal(b, &q2); err != nil {
		t.Fatal(err)
	}
	if q2.Op != q.Op || len(q2.Links) != 1 || q2.Links[0] != q.Links[0] || q2.Range != q.Range {
		t.Errorf("round trip lost data: %+v", q2)
	}
	v := StoreView{S: fixture()}
	res := Execute(Query{Op: OpTopK, K: 3}, v)
	if res.WireSize() <= 0 {
		t.Error("WireSize must be positive")
	}
	rb, _ := json.Marshal(res)
	var res2 Result
	if err := json.Unmarshal(rb, &res2); err != nil {
		t.Fatal(err)
	}
	if len(res2.Top) != len(res.Top) {
		t.Error("result round trip lost entries")
	}
}
