// Predicate pushdown: the record-selection part of a query — flow, link
// and time range together — expressed as one value that views push down
// into their storage engine instead of filtering a full scan record by
// record. The segmented TIB store answers a Predicate by pruning whole
// segments on time bounds and walking flow/link index postings inside the
// survivors (tib.Store.ScanWhile); views without such a store fall back
// to per-record Match.
package query

import "pathdump/internal/types"

// Predicate selects TIB records: a record matches when it belongs to
// Flow (nil = any flow), traverses Link (wildcards per LinkID semantics,
// types.AnyLink = any link), and its active interval intersects Range.
// Range is taken literally — callers normalise the zero "all time" range
// (Query.normalRange) before building a Predicate.
//
// MinSeq/MaxSeq additionally bound the records by global arrival
// sequence: only records whose sequence lies in (MinSeq, MaxSeq] match
// (0 = unbounded on that side). This is the incremental-evaluation
// window behind installed-query watermarks: views over a sequenced store
// push it down into tib.Store.ScanSince, skipping whole sealed segments
// below the watermark. Views whose records carry no sequence numbers (a
// single just-exported record, the agent's live trajectory memory)
// cannot honour it in Match and treat every record as in-window — such
// records are by construction new.
type Predicate struct {
	Flow   *types.FlowID   `json:"flow,omitempty"`
	Link   types.LinkID    `json:"link"`
	Range  types.TimeRange `json:"range"`
	MinSeq uint64          `json:"min_seq,omitempty"`
	MaxSeq uint64          `json:"max_seq,omitempty"`
}

// PredicateOf extracts the record-selection predicate from a query: its
// flow (when set), link and normalised time range.
func PredicateOf(q Query) Predicate {
	return Predicate{Flow: flowPtr(q.Flow), Link: q.Link, Range: q.normalRange()}
}

// flowPtr maps the zero flow ID (no flow filter) to nil.
func flowPtr(f types.FlowID) *types.FlowID {
	if f == (types.FlowID{}) {
		return nil
	}
	return &f
}

// Match reports whether one record satisfies the predicate — the
// fallback evaluation for views that cannot push the predicate into an
// index walk.
func (p Predicate) Match(rec *types.Record) bool {
	if p.Flow != nil && rec.Flow != *p.Flow {
		return false
	}
	if !rec.Overlaps(p.Range) {
		return false
	}
	if p.Link != types.AnyLink && !rec.Path.ContainsLink(p.Link) {
		return false
	}
	return true
}
