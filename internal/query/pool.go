// Pooled reply buffers. A records-op reply materialises every matching
// record into one slice; at fan-out rates those per-host slices were the
// single largest allocation site in the controller/agent profile. The
// rpc servers return each reply's slice here once the response is
// encoded, so steady-state query traffic recycles capacity instead of
// regrowing it (the same release-clears-to-capacity discipline as the
// TIB's scan-cursor pool).
package query

import (
	"sync"

	"pathdump/internal/types"
)

// maxPooledRecords caps the capacity a returned buffer may retain: one
// monster reply must not pin megabytes in the pool forever.
const maxPooledRecords = 1 << 16

var recordBufs = sync.Pool{New: func() any {
	s := make([]types.Record, 0, 1024)
	return &s
}}

// GetRecordBuf returns an empty record slice with pooled capacity.
// Execute draws reply buffers from here for records ops; callers that
// finish with a result built on one may hand it back via PutRecordBuf.
func GetRecordBuf() []types.Record {
	return (*recordBufs.Get().(*[]types.Record))[:0]
}

// PutRecordBuf recycles a record slice obtained from GetRecordBuf (nil is
// fine and buffers from elsewhere are safe — they just join the pool).
// Elements are cleared to capacity so pooled buffers never pin path
// slices, and oversized buffers are dropped rather than retained.
func PutRecordBuf(recs []types.Record) {
	if recs == nil || cap(recs) > maxPooledRecords {
		return
	}
	full := recs[:cap(recs)]
	clear(full)
	recs = recs[:0]
	recordBufs.Put(&recs)
}
