// Package maxcov implements the MAX-COVERAGE fault-localisation algorithm
// [Kompella et al., INFOCOM'07] that the paper's silent-packet-drop
// application runs at the controller (§2.3, §4.3): given failure
// signatures — the paths of flows that raised TCP performance alarms — it
// greedily picks the smallest set of links that explains (covers) all of
// them. The paper notes its controller-side implementation is ~50 lines;
// this one is comparably small.
package maxcov

import (
	"sort"

	"pathdump/internal/types"
)

// Signature is one failure observation: the links of a path taken by a
// flow that suffered consecutive retransmissions.
type Signature []types.LinkID

// FromPath builds a signature from a switch path.
func FromPath(p types.Path) Signature { return Signature(p.Links()) }

// Localize returns the greedy minimum set of links covering every
// signature: repeatedly choose the link that appears in the most
// still-uncovered signatures (ties broken by lowest link ID for
// determinism) until all signatures are covered.
func Localize(sigs []Signature) []types.LinkID { return LocalizeRobust(sigs, 1) }

// LocalizeRobust is Localize with a noise cutoff: the greedy loop stops
// once the best remaining link would explain fewer than minCover
// signatures. Transient congestion produces one-off failure signatures
// scattered across the fabric; a genuinely faulty interface accumulates
// signatures from many distinct flows, so requiring minimum coverage
// suppresses false positives without hurting recall (this is how the
// precision curves of Fig. 7 converge to 1 despite background noise).
func LocalizeRobust(sigs []Signature, minCover int) []types.LinkID {
	uncovered := make([]Signature, 0, len(sigs))
	for _, s := range sigs {
		if len(s) > 0 {
			uncovered = append(uncovered, s)
		}
	}
	var out []types.LinkID
	for len(uncovered) > 0 {
		counts := make(map[types.LinkID]int)
		for _, s := range uncovered {
			seen := make(map[types.LinkID]bool, len(s))
			for _, l := range s {
				if !seen[l] {
					seen[l] = true
					counts[l]++
				}
			}
		}
		best, bestN := types.LinkID{}, -1
		links := make([]types.LinkID, 0, len(counts))
		for l := range counts {
			links = append(links, l)
		}
		sort.Slice(links, func(i, j int) bool {
			if links[i].A != links[j].A {
				return links[i].A < links[j].A
			}
			return links[i].B < links[j].B
		})
		for _, l := range links {
			if counts[l] > bestN {
				best, bestN = l, counts[l]
			}
		}
		if bestN < minCover {
			break
		}
		out = append(out, best)
		next := uncovered[:0]
		for _, s := range uncovered {
			if !contains(s, best) {
				next = append(next, s)
			}
		}
		uncovered = next
	}
	return out
}

func contains(s Signature, l types.LinkID) bool {
	for _, x := range s {
		if x == l {
			return true
		}
	}
	return false
}

// Score computes recall and precision of a hypothesis against the true
// faulty links, the metrics of Figures 7 and 8:
//
//	recall    = TP / (TP + FN)
//	precision = TP / (TP + FP)
//
// Links are compared ignoring direction (a faulty interface affects the
// physical link).
func Score(hypothesis, truth []types.LinkID) (recall, precision float64) {
	norm := func(l types.LinkID) types.LinkID {
		if l.B < l.A {
			l.A, l.B = l.B, l.A
		}
		return l
	}
	truthSet := make(map[types.LinkID]bool, len(truth))
	for _, l := range truth {
		truthSet[norm(l)] = true
	}
	hypSet := make(map[types.LinkID]bool, len(hypothesis))
	tp := 0
	for _, l := range hypothesis {
		n := norm(l)
		if hypSet[n] {
			continue
		}
		hypSet[n] = true
		if truthSet[n] {
			tp++
		}
	}
	if len(truthSet) > 0 {
		recall = float64(tp) / float64(len(truthSet))
	}
	if len(hypSet) > 0 {
		precision = float64(tp) / float64(len(hypSet))
	}
	return recall, precision
}
