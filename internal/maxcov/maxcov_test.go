package maxcov

import (
	"math/rand"
	"testing"

	"pathdump/internal/types"
)

func link(a, b int) types.LinkID {
	return types.LinkID{A: types.SwitchID(a), B: types.SwitchID(b)}
}

func TestLocalizeSingleFault(t *testing.T) {
	// Every signature crosses link 2-3: greedy picks exactly it.
	sigs := []Signature{
		{link(0, 2), link(2, 3), link(3, 5)},
		{link(1, 2), link(2, 3), link(3, 6)},
		{link(0, 2), link(2, 3), link(3, 7)},
	}
	got := Localize(sigs)
	if len(got) != 1 || got[0] != link(2, 3) {
		t.Errorf("Localize = %v, want [s2-s3]", got)
	}
}

func TestLocalizeTwoFaults(t *testing.T) {
	sigs := []Signature{
		{link(0, 2), link(2, 4)},
		{link(0, 2), link(2, 5)},
		{link(1, 3), link(3, 6)},
		{link(1, 3), link(3, 7)},
	}
	got := Localize(sigs)
	if len(got) != 2 {
		t.Fatalf("Localize = %v, want 2 links", got)
	}
	seen := map[types.LinkID]bool{got[0]: true, got[1]: true}
	if !seen[link(0, 2)] || !seen[link(1, 3)] {
		t.Errorf("Localize = %v", got)
	}
}

func TestLocalizeEmptyAndDegenerate(t *testing.T) {
	if got := Localize(nil); got != nil {
		t.Errorf("Localize(nil) = %v", got)
	}
	if got := Localize([]Signature{{}}); got != nil {
		t.Errorf("empty signature yielded %v", got)
	}
	// A single signature picks one of its links.
	got := Localize([]Signature{{link(1, 2), link(2, 3)}})
	if len(got) != 1 {
		t.Errorf("single signature = %v", got)
	}
}

func TestLocalizeDeterministic(t *testing.T) {
	sigs := []Signature{
		{link(5, 1), link(1, 9)},
		{link(5, 1), link(1, 8)},
	}
	a := Localize(sigs)
	b := Localize(sigs)
	if len(a) != len(b) || a[0] != b[0] {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}

func TestScore(t *testing.T) {
	truth := []types.LinkID{link(1, 2), link(3, 4)}
	r, p := Score([]types.LinkID{link(1, 2)}, truth)
	if r != 0.5 || p != 1.0 {
		t.Errorf("recall=%v precision=%v", r, p)
	}
	// Direction-insensitive.
	r, p = Score([]types.LinkID{link(2, 1), link(4, 3)}, truth)
	if r != 1.0 || p != 1.0 {
		t.Errorf("reversed links: recall=%v precision=%v", r, p)
	}
	// False positives hurt precision only.
	r, p = Score([]types.LinkID{link(1, 2), link(3, 4), link(9, 9)}, truth)
	if r != 1.0 || p < 0.66 || p > 0.67 {
		t.Errorf("recall=%v precision=%v", r, p)
	}
	// Duplicates in the hypothesis count once.
	r, p = Score([]types.LinkID{link(1, 2), link(2, 1)}, truth)
	if r != 0.5 || p != 1.0 {
		t.Errorf("dup hypothesis: recall=%v precision=%v", r, p)
	}
	// Empty sets.
	r, p = Score(nil, truth)
	if r != 0 || p != 0 {
		t.Errorf("empty hypothesis: %v %v", r, p)
	}
}

// TestAccuracyImprovesWithSignatures reproduces the paper's core claim
// (Fig. 7): with more failure signatures, the algorithm's precision
// converges to 1 for a fixed set of faulty links.
func TestAccuracyImprovesWithSignatures(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	faulty := []types.LinkID{link(100, 200), link(101, 201)}
	gen := func(n int) []Signature {
		var sigs []Signature
		for i := 0; i < n; i++ {
			bad := faulty[rng.Intn(len(faulty))]
			// A 4-link path through one faulty link with random
			// healthy neighbours.
			sigs = append(sigs, Signature{
				link(rng.Intn(50), 60+rng.Intn(10)),
				bad,
				link(70+rng.Intn(10), 90+rng.Intn(10)),
			})
		}
		return sigs
	}
	rFew, pFew := Score(Localize(gen(3)), faulty)
	rMany, pMany := Score(Localize(gen(200)), faulty)
	if rMany < rFew {
		t.Errorf("recall regressed: %v -> %v", rFew, rMany)
	}
	if rMany != 1.0 || pMany != 1.0 {
		t.Errorf("with 200 signatures: recall=%v precision=%v, want 1/1", rMany, pMany)
	}
	_ = pFew
}
