package wire

// Request-side frames. Installs and queries fan out to thousands of
// hosts, so requests travel in the same varint/columnar format as
// responses: a client marks the body with the wire Content-Type and a
// server that cannot decode it rejects the request, at which point the
// client falls back to JSON for that daemon (see internal/rpc). Request
// bodies are tiny, so they are never flate-compressed.

import (
	"fmt"
	"io"

	"pathdump/internal/query"
	"pathdump/internal/types"
)

// WriteQueryRequest encodes a /query request frame: an optional target
// host plus the query itself.
func WriteQueryRequest(w io.Writer, host *types.HostID, q *query.Query) error {
	return writeFrame(w, kindQueryReq, false, func(bw *writer) {
		writeHostPtr(bw, host)
		writeQuery(bw, q)
	})
}

// ReadQueryRequest decodes a /query request frame.
func ReadQueryRequest(r io.Reader) (*types.HostID, query.Query, error) {
	var host *types.HostID
	var q query.Query
	err := readFrame(r, kindQueryReq, func(br *reader) {
		host = readHostPtr(br)
		readQuery(br, &q)
	})
	if err != nil {
		return nil, query.Query{}, err
	}
	return host, q, nil
}

// WriteBatchRequest encodes a /batchquery request frame: the host list,
// the query, and the requested per-batch parallelism.
func WriteBatchRequest(w io.Writer, hosts []types.HostID, q *query.Query, parallel int) error {
	return writeFrame(w, kindBatchReq, false, func(bw *writer) {
		bw.uvarint(uint64(len(hosts)))
		for _, h := range hosts {
			bw.uvarint(uint64(h))
		}
		writeQuery(bw, q)
		bw.svarint(int64(parallel))
	})
}

// ReadBatchRequest decodes a /batchquery request frame.
func ReadBatchRequest(r io.Reader) ([]types.HostID, query.Query, int, error) {
	var hosts []types.HostID
	var q query.Query
	var parallel int
	err := readFrame(r, kindBatchReq, func(br *reader) {
		n := br.count("batch request hosts", maxReplies)
		hosts = make([]types.HostID, 0, min(n, 4096))
		for i := 0; i < n && br.err == nil; i++ {
			hosts = append(hosts, types.HostID(br.uvarint()))
		}
		readQuery(br, &q)
		parallel = int(br.svarint())
	})
	if err != nil {
		return nil, query.Query{}, 0, err
	}
	return hosts, q, parallel, nil
}

// WriteInstallRequest encodes an /install request frame: an optional
// target host, the monitor query, and its evaluation period.
func WriteInstallRequest(w io.Writer, host *types.HostID, q *query.Query, period types.Time) error {
	return writeFrame(w, kindInstallReq, false, func(bw *writer) {
		writeHostPtr(bw, host)
		writeQuery(bw, q)
		bw.svarint(int64(period))
	})
}

// ReadInstallRequest decodes an /install request frame.
func ReadInstallRequest(r io.Reader) (*types.HostID, query.Query, types.Time, error) {
	var host *types.HostID
	var q query.Query
	var period types.Time
	err := readFrame(r, kindInstallReq, func(br *reader) {
		host = readHostPtr(br)
		readQuery(br, &q)
		period = types.Time(br.svarint())
	})
	if err != nil {
		return nil, query.Query{}, 0, err
	}
	return host, q, period, nil
}

func writeHostPtr(w *writer, host *types.HostID) {
	if host == nil {
		w.byte(0)
		return
	}
	w.byte(1)
	w.uvarint(uint64(*host))
}

func readHostPtr(r *reader) *types.HostID {
	switch r.byte() {
	case 0:
		return nil
	case 1:
		h := types.HostID(r.uvarint())
		return &h
	default:
		r.fail(fmt.Errorf("wire: corrupt frame: bad host presence byte"))
		return nil
	}
}

// writeQuery encodes every Query field in declaration order; fields
// irrelevant to the op are zero and cost one byte each.
func writeQuery(w *writer, q *query.Query) {
	w.str(string(q.Op))
	w.uvarint(uint64(q.Link.A))
	w.uvarint(uint64(q.Link.B))
	w.uvarint(uint64(len(q.Links)))
	for _, l := range q.Links {
		w.uvarint(uint64(l.A))
		w.uvarint(uint64(l.B))
	}
	writeFlowID(w, q.Flow)
	writePath(w, q.Path)
	w.svarint(int64(q.Range.From))
	w.svarint(int64(q.Range.To))
	w.svarint(int64(q.K))
	w.uvarint(q.BinBytes)
	w.svarint(int64(q.Threshold))
	w.svarint(int64(q.MaxPathLen))
	writeSwitchList(w, q.Avoid)
	writeSwitchList(w, q.Waypoints)
}

func readQuery(r *reader, q *query.Query) {
	q.Op = query.Op(r.str(maxOpLen))
	q.Link.A = types.SwitchID(r.uvarint())
	q.Link.B = types.SwitchID(r.uvarint())
	if n := r.count("query links", maxElems); n > 0 {
		q.Links = make([]types.LinkID, 0, min(n, 4096))
		for i := 0; i < n && r.err == nil; i++ {
			var l types.LinkID
			l.A = types.SwitchID(r.uvarint())
			l.B = types.SwitchID(r.uvarint())
			q.Links = append(q.Links, l)
		}
	}
	q.Flow = readFlowID(r)
	q.Path = readPath(r)
	q.Range.From = types.Time(r.svarint())
	q.Range.To = types.Time(r.svarint())
	q.K = int(r.svarint())
	q.BinBytes = r.uvarint()
	q.Threshold = int(r.svarint())
	q.MaxPathLen = int(r.svarint())
	q.Avoid = readSwitchList(r)
	q.Waypoints = readSwitchList(r)
}

func writeSwitchList(w *writer, sws []types.SwitchID) {
	w.uvarint(uint64(len(sws)))
	for _, s := range sws {
		w.uvarint(uint64(s))
	}
}

func readSwitchList(r *reader) []types.SwitchID {
	n := r.count("switch list", maxPathLen)
	if n == 0 {
		return nil
	}
	sws := make([]types.SwitchID, 0, min(n, 1024))
	for i := 0; i < n && r.err == nil; i++ {
		sws = append(sws, types.SwitchID(r.uvarint()))
	}
	return sws
}
