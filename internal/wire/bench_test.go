package wire

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"testing"

	"pathdump/internal/query"
	"pathdump/internal/types"
)

// BenchmarkWireRoundtrip measures a full encode+decode of a 5000-record
// result — the controller-side cost of one host's reply — for the binary
// codec (plain and compressed) against the JSON path it replaces. Run with
// -benchmem: allocs/op is gated by the CI bench job alongside the medians.
func BenchmarkWireRoundtrip(b *testing.B) {
	rng := rand.New(rand.NewSource(99))
	res := randBenchResult(rng, 5000)

	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := WriteQuery(&buf, Meta{RecordsScanned: 5000}, res, false); err != nil {
				b.Fatal(err)
			}
			if _, _, err := ReadQuery(&buf); err != nil {
				b.Fatal(err)
			}
		}
		reportSize(b, res, false)
	})

	b.Run("binary-flate", func(b *testing.B) {
		b.ReportAllocs()
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := WriteQuery(&buf, Meta{RecordsScanned: 5000}, res, true); err != nil {
				b.Fatal(err)
			}
			if _, _, err := ReadQuery(&buf); err != nil {
				b.Fatal(err)
			}
		}
		reportSize(b, res, true)
	})

	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := json.NewEncoder(&buf).Encode(res); err != nil {
				b.Fatal(err)
			}
			var got query.Result
			if err := json.NewDecoder(&buf).Decode(&got); err != nil {
				b.Fatal(err)
			}
		}
		j, _ := json.Marshal(res)
		b.ReportMetric(float64(len(j)), "wire-bytes")
	})
}

// BenchmarkStreamEncode measures serving a 100k-record reply: `streamed`
// appends each record to a QueryStreamWriter (the server's O(chunk)
// path — B/op here is what a daemon allocates per huge reply), `buffered`
// materialises the full slice first and one-shots WriteQuery (the old
// path). The ≥4x B/op gap between them is the point of the chunked
// encoding; CI gates both against BENCH_BASELINE.txt.
func BenchmarkStreamEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	recs := randBenchResult(rng, 100_000).Records

	b.Run("streamed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sw, err := NewQueryStreamWriter(io.Discard, Meta{RecordsScanned: len(recs)}, query.OpRecords, false)
			if err != nil {
				b.Fatal(err)
			}
			for j := range recs {
				if err := sw.Append(&recs[j]); err != nil {
					b.Fatal(err)
				}
			}
			if err := sw.Close(0, 0); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("buffered", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			reply := make([]types.Record, 0, 1024)
			for j := range recs {
				reply = append(reply, recs[j])
			}
			res := &query.Result{Op: query.OpRecords, Records: reply}
			if err := WriteQuery(io.Discard, Meta{RecordsScanned: len(recs)}, res, false); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStreamDecode measures consuming that same 100k-record frame:
// `sink` hands each chunk to a callback over a reused scratch slice (the
// transport's merge-as-it-arrives path), `materialized` decodes the whole
// records section into one slice.
func BenchmarkStreamDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	res := randBenchResult(rng, 100_000)
	var frame bytes.Buffer
	if err := WriteQuery(&frame, Meta{RecordsScanned: 100_000}, res, false); err != nil {
		b.Fatal(err)
	}
	raw := frame.Bytes()

	b.Run("sink", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			total := 0
			_, _, err := ReadQueryChunks(bytes.NewReader(raw), func(chunk []types.Record) {
				total += len(chunk)
			})
			if err != nil {
				b.Fatal(err)
			}
			if total != 100_000 {
				b.Fatalf("decoded %d records", total)
			}
		}
	})

	b.Run("materialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, got, err := ReadQuery(bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			if len(got.Records) != 100_000 {
				b.Fatalf("decoded %d records", len(got.Records))
			}
		}
	})
}

// BenchmarkRequestEncode measures one query-request body encode — the
// per-fan-out client cost at every hop — binary frame against the JSON
// body it replaces.
func BenchmarkRequestEncode(b *testing.B) {
	host := types.HostID(42)
	q := &query.Query{
		Op: query.OpConformance, Link: types.LinkID{A: 3, B: 9},
		Range: types.TimeRange{From: 0, To: types.TimeEnd}, K: 10, MaxPathLen: 6,
		Avoid:     []types.SwitchID{4, 5, 6, 7},
		Waypoints: []types.SwitchID{1, 2},
	}

	b.Run("wire", func(b *testing.B) {
		b.ReportAllocs()
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := WriteQueryRequest(&buf, &host, q); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(buf.Len()), "wire-bytes")
	})

	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		payload := struct {
			Host  *types.HostID `json:"host,omitempty"`
			Query query.Query   `json:"query"`
		}{Host: &host, Query: *q}
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := json.NewEncoder(&buf).Encode(payload); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(buf.Len()), "wire-bytes")
	})
}

func reportSize(b *testing.B, res *query.Result, compress bool) {
	b.Helper()
	var cw countWriter
	if err := WriteQuery(&cw, Meta{}, res, compress); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(cw), "wire-bytes")
}

type countWriter int64

func (c *countWriter) Write(p []byte) (int, error) {
	*c += countWriter(len(p))
	return len(p), nil
}

var _ io.Writer = (*countWriter)(nil)

func randBenchResult(rng *rand.Rand, n int) *query.Result {
	return randResult(rng, n)
}
