package wire

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"testing"

	"pathdump/internal/query"
)

// BenchmarkWireRoundtrip measures a full encode+decode of a 5000-record
// result — the controller-side cost of one host's reply — for the binary
// codec (plain and compressed) against the JSON path it replaces. Run with
// -benchmem: allocs/op is gated by the CI bench job alongside the medians.
func BenchmarkWireRoundtrip(b *testing.B) {
	rng := rand.New(rand.NewSource(99))
	res := randBenchResult(rng, 5000)

	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := WriteQuery(&buf, Meta{RecordsScanned: 5000}, res, false); err != nil {
				b.Fatal(err)
			}
			if _, _, err := ReadQuery(&buf); err != nil {
				b.Fatal(err)
			}
		}
		reportSize(b, res, false)
	})

	b.Run("binary-flate", func(b *testing.B) {
		b.ReportAllocs()
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := WriteQuery(&buf, Meta{RecordsScanned: 5000}, res, true); err != nil {
				b.Fatal(err)
			}
			if _, _, err := ReadQuery(&buf); err != nil {
				b.Fatal(err)
			}
		}
		reportSize(b, res, true)
	})

	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := json.NewEncoder(&buf).Encode(res); err != nil {
				b.Fatal(err)
			}
			var got query.Result
			if err := json.NewDecoder(&buf).Decode(&got); err != nil {
				b.Fatal(err)
			}
		}
		j, _ := json.Marshal(res)
		b.ReportMetric(float64(len(j)), "wire-bytes")
	})
}

func reportSize(b *testing.B, res *query.Result, compress bool) {
	b.Helper()
	var cw countWriter
	if err := WriteQuery(&cw, Meta{}, res, compress); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(cw), "wire-bytes")
}

type countWriter int64

func (c *countWriter) Write(p []byte) (int, error) {
	*c += countWriter(len(p))
	return len(p), nil
}

var _ io.Writer = (*countWriter)(nil)

func randBenchResult(rng *rand.Rand, n int) *query.Result {
	return randResult(rng, n)
}
