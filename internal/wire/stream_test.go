package wire

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"pathdump/internal/query"
	"pathdump/internal/types"
)

// TestStreamWriterMatchesWriteQuery pins the invariant that makes
// streaming transparent to clients: a frame produced record-by-record
// through QueryStreamWriter is byte-identical to the same reply encoded
// in one shot by WriteQuery when uncompressed, and decodes identically
// when compressed (per-chunk flate.Flush inserts sync markers, so the
// compressed bytes legitimately differ).
func TestStreamWriterMatchesWriteQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, nrec := range []int{1, DefaultChunkRecords, DefaultChunkRecords*2 + 37} {
		res := randResult(rng, nrec)
		m := Meta{RecordsScanned: nrec}
		for _, compress := range []bool{false, true} {
			var oneShot bytes.Buffer
			if err := WriteQuery(&oneShot, m, res, compress); err != nil {
				t.Fatal(err)
			}
			var streamed bytes.Buffer
			sw, err := NewQueryStreamWriter(&streamed, m, res.Op, compress)
			if err != nil {
				t.Fatal(err)
			}
			for i := range res.Records {
				if err := sw.Append(&res.Records[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := sw.Close(0, 0); err != nil {
				t.Fatal(err)
			}
			if !compress {
				if !bytes.Equal(oneShot.Bytes(), streamed.Bytes()) {
					t.Fatalf("nrec=%d: streamed frame differs from one-shot frame (%d vs %d bytes)",
						nrec, streamed.Len(), oneShot.Len())
				}
				continue
			}
			gotMeta, got, err := ReadQuery(bytes.NewReader(streamed.Bytes()))
			if err != nil {
				t.Fatalf("nrec=%d compressed stream decode: %v", nrec, err)
			}
			if gotMeta != m || !reflect.DeepEqual(got, res) {
				t.Fatalf("nrec=%d: compressed stream decoded differently", nrec)
			}
		}
	}
}

// TestStreamWriterEmptyAndMetaPatch covers the two stream-only frame
// shapes: an empty records section (WriteQuery would omit it) and an end
// marker carrying segment-stat deltas learned after Meta was written.
func TestStreamWriterEmptyAndMetaPatch(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewQueryStreamWriter(&buf, Meta{RecordsScanned: 7}, query.OpRecords, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(4, 9); err != nil {
		t.Fatal(err)
	}
	m, res, err := ReadQuery(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := Meta{RecordsScanned: 7, SegmentsScanned: 4, SegmentsPruned: 9}
	if m != want {
		t.Fatalf("meta: got %+v want %+v", m, want)
	}
	if res.Op != query.OpRecords || res.Records != nil {
		t.Fatalf("empty stream decoded to %+v", res)
	}
}

// TestStreamChunksArriveBeforeClose drives a stream through an io.Pipe
// and asserts the reader's chunk callback fires while the writer is still
// mid-stream — the property that lets query.StreamMerger start merging a
// host before its last byte arrives.
func TestStreamChunksArriveBeforeClose(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	res := randResult(rng, DefaultChunkRecords+16)
	pr, pw := io.Pipe()

	firstChunk := make(chan struct{})
	writerDone := make(chan error, 1)
	go func() {
		sw, err := NewQueryStreamWriter(pw, Meta{}, res.Op, false)
		if err != nil {
			writerDone <- err
			pw.CloseWithError(err)
			return
		}
		for i := range res.Records {
			if err := sw.Append(&res.Records[i]); err != nil {
				writerDone <- err
				pw.CloseWithError(err)
				return
			}
		}
		// The first full chunk has been flushed into the pipe; do not
		// Close until the reader proves it decoded that chunk.
		<-firstChunk
		err = sw.Close(0, 0)
		writerDone <- err
		pw.Close()
	}()

	var got []types.Record
	chunks := 0
	_, _, err := ReadQueryChunks(pr, func(recs []types.Record) {
		if chunks == 0 {
			close(firstChunk)
		}
		chunks++
		got = append(got, recs...)
	})
	if err != nil {
		t.Fatalf("ReadQueryChunks: %v", err)
	}
	if err := <-writerDone; err != nil {
		t.Fatalf("stream writer: %v", err)
	}
	if chunks < 2 {
		t.Fatalf("got %d chunks, want at least 2", chunks)
	}
	if !reflect.DeepEqual(got, res.Records) {
		t.Fatalf("reassembled records differ from input (%d vs %d records)", len(got), len(res.Records))
	}
}

// TestStreamWriterAbort verifies an abandoned stream leaves a frame
// decoders reject, and that the writer refuses further use.
func TestStreamWriterAbort(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	res := randResult(rng, DefaultChunkRecords+1) // one chunk flushed, one record pending
	var buf bytes.Buffer
	sw, err := NewQueryStreamWriter(&buf, Meta{}, res.Op, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Records {
		if err := sw.Append(&res.Records[i]); err != nil {
			t.Fatal(err)
		}
	}
	sw.Abort()
	if err := sw.Append(&res.Records[0]); err == nil {
		t.Fatal("Append after Abort succeeded")
	}
	if _, _, err := ReadQuery(&buf); err == nil {
		t.Fatal("aborted stream decoded without error")
	}
}

// allocBytes reports the heap bytes allocated by one run of f, after a
// warm-up pass so pooled buffers don't count.
func allocBytes(f func()) uint64 {
	f() // warm pools
	var best uint64 = 1 << 62
	for i := 0; i < 3; i++ {
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		f()
		runtime.ReadMemStats(&m1)
		if d := m1.TotalAlloc - m0.TotalAlloc; d < best {
			best = d
		}
	}
	return best
}

// TestStreamEncodeBytesOChunk is the tentpole's allocation gate: encoding
// a 100k-record reply through QueryStreamWriter must allocate at least 4x
// fewer bytes than the materialise-then-encode path it replaces, because
// the streamed server never holds the reply — only one chunk and the
// dictionaries.
func TestStreamEncodeBytesOChunk(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	const nrec = 100_000
	res := randResult(rng, nrec)

	streamed := allocBytes(func() {
		sw, err := NewQueryStreamWriter(io.Discard, Meta{}, res.Op, false)
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.Records {
			sw.Append(&res.Records[i])
		}
		if err := sw.Close(0, 0); err != nil {
			t.Fatal(err)
		}
	})
	buffered := allocBytes(func() {
		// The pre-streaming server: collect the whole reply into a fresh
		// slice (query.Execute's append loop), then encode the frame.
		reply := make([]types.Record, 0)
		for i := range res.Records {
			reply = append(reply, res.Records[i])
		}
		out := query.Result{Op: res.Op, Records: reply}
		if err := WriteQuery(io.Discard, Meta{}, &out, false); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("streamed %dB, buffered %dB (%.1fx)", streamed, buffered, float64(buffered)/float64(streamed))
	if streamed*4 > buffered {
		t.Fatalf("streamed encode allocated %dB, buffered %dB: want at least 4x reduction", streamed, buffered)
	}
}

// fullQuery populates every Query field so request round trips exercise
// each column.
func fullQuery() *query.Query {
	return &query.Query{
		Op:         query.OpConformance,
		Link:       types.LinkID{A: 3, B: 9},
		Links:      []types.LinkID{{A: 1, B: 2}, {A: types.WildcardSwitch, B: 7}},
		Flow:       types.FlowID{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 1234, DstPort: 80, Proto: 6},
		Path:       types.Path{1, 2, 3},
		Range:      types.TimeRange{From: -50, To: types.TimeEnd},
		K:          25,
		BinBytes:   1 << 20,
		Threshold:  3,
		MaxPathLen: 9,
		Avoid:      []types.SwitchID{4, 5},
		Waypoints:  []types.SwitchID{2},
	}
}

func TestQueryRequestRoundTrip(t *testing.T) {
	host := types.HostID(77)
	for _, h := range []*types.HostID{nil, &host} {
		var buf bytes.Buffer
		q := fullQuery()
		if err := WriteQueryRequest(&buf, h, q); err != nil {
			t.Fatal(err)
		}
		gotHost, gotQ, err := ReadQueryRequest(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if (h == nil) != (gotHost == nil) || (h != nil && *gotHost != *h) {
			t.Fatalf("host mismatch: got %v want %v", gotHost, h)
		}
		if !reflect.DeepEqual(gotQ, *q) {
			t.Fatalf("query mismatch:\ngot  %+v\nwant %+v", gotQ, *q)
		}
	}
	// The zero query must survive too (every field zero-valued).
	var buf bytes.Buffer
	if err := WriteQueryRequest(&buf, nil, &query.Query{Op: query.OpFlows}); err != nil {
		t.Fatal(err)
	}
	_, gotQ, err := ReadQueryRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotQ, query.Query{Op: query.OpFlows}) {
		t.Fatalf("zero query mismatch: %+v", gotQ)
	}
}

func TestBatchRequestRoundTrip(t *testing.T) {
	hosts := []types.HostID{1, 5, 900000}
	var buf bytes.Buffer
	if err := WriteBatchRequest(&buf, hosts, fullQuery(), 8); err != nil {
		t.Fatal(err)
	}
	gotHosts, gotQ, parallel, err := ReadBatchRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotHosts, hosts) || parallel != 8 {
		t.Fatalf("got hosts %v parallel %d", gotHosts, parallel)
	}
	if !reflect.DeepEqual(gotQ, *fullQuery()) {
		t.Fatalf("query mismatch: %+v", gotQ)
	}
}

func TestInstallRequestRoundTrip(t *testing.T) {
	host := types.HostID(3)
	var buf bytes.Buffer
	if err := WriteInstallRequest(&buf, &host, fullQuery(), 2500); err != nil {
		t.Fatal(err)
	}
	gotHost, gotQ, period, err := ReadInstallRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotHost == nil || *gotHost != host || period != 2500 {
		t.Fatalf("got host %v period %d", gotHost, period)
	}
	if !reflect.DeepEqual(gotQ, *fullQuery()) {
		t.Fatalf("query mismatch: %+v", gotQ)
	}
}

// TestRequestKindMismatch posts each request frame to the wrong decoder:
// the kind byte must reject it before any field parses.
func TestRequestKindMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteQueryRequest(&buf, nil, fullQuery()); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	if _, _, _, err := ReadInstallRequest(bytes.NewReader(frame)); err == nil || !strings.Contains(err.Error(), "frame kind") {
		t.Fatalf("query frame as install: got %v, want kind error", err)
	}
	if _, _, err := ReadQuery(bytes.NewReader(frame)); err == nil || !strings.Contains(err.Error(), "frame kind") {
		t.Fatalf("query request as query response: got %v, want kind error", err)
	}
	// Every proper prefix of a request frame must be rejected.
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := ReadQueryRequest(bytes.NewReader(frame[:cut])); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(frame))
		}
	}
}
