// Package wire implements PathDump's binary columnar encoding for query
// and batch-query traffic — the data plane between host daemons and the
// controller. JSON ships every record as a pointer-heavy object; at fan-out
// scale the encode/decode cost and byte volume dominate query latency. The
// wire format instead encodes a response column by column:
//
//	frame  := magic "PDW1" | kind (1B) | flags (1B) | body
//	body   := sections, flate-compressed when flags&FlagFlate is set
//
// Flow IDs and paths are dictionary-encoded (each distinct value written
// once, records carry small integer indices), timestamps are delta-encoded
// (STime as a delta against the previous record, ETime against the record's
// own STime) and all integers use varints, so a typical record batch is an
// integer factor smaller than its JSON form and decodes without reflection.
//
// The records section is chunked: a sequence of bounded-size chunks, each
// carrying only the dictionary entries that first appear in it (deltas
// against the cumulative dictionaries), followed by a zero-count end marker
// that can patch segment-scan telemetry learned only after the scan. A
// server can therefore emit a huge records reply O(chunk) at a time
// (QueryStreamWriter, stream.go) and a client can hand each chunk to a
// merger before the frame's last byte arrives (ReadQueryChunks).
//
// Responses are negotiated per request: a client that understands the wire
// format sends "Accept: application/x-pathdump-wire"; a server that speaks
// it answers with that Content-Type, any other server answers JSON and the
// client falls back transparently (see internal/rpc). Requests travel in
// the same format (request.go): the client marks the body with the wire
// Content-Type, and falls back to JSON per URL when a daemon rejects it.
package wire

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"slices"
	"strings"
	"sync"

	"pathdump/internal/query"
	"pathdump/internal/types"
)

// ContentType identifies a wire-encoded HTTP response body. Clients offer
// it in Accept; servers that honour the offer set it as Content-Type.
const ContentType = "application/x-pathdump-wire"

// Accepted reports whether an Accept header offers the wire encoding.
func Accepted(accept string) bool { return strings.Contains(accept, ContentType) }

// IsWire reports whether a Content-Type header carries the wire encoding.
func IsWire(contentType string) bool {
	return strings.HasPrefix(contentType, ContentType)
}

// Frame kinds. Response kinds sit in the low range, request kinds at
// 0x11+ so a frame posted to the wrong endpoint fails the kind check
// instead of misparsing.
const (
	kindQuery      = 0x01 // Meta + one query.Result
	kindBatch      = 0x02 // a list of per-host BatchReply entries
	kindQueryReq   = 0x11 // optional host + one query.Query
	kindBatchReq   = 0x12 // host list + query.Query + parallelism
	kindInstallReq = 0x13 // optional host + query.Query + period
)

// FlagFlate marks a body compressed with DEFLATE. Decoders detect it from
// the frame, so compression is a per-response server choice, not a
// negotiated capability.
const FlagFlate = 0x01

var magic = [4]byte{'P', 'D', 'W', '1'}

// Caps rejected as corrupt before any allocation is sized from them. They
// are far above anything the system produces but small enough that a
// hostile length prefix cannot request an absurd element count.
const (
	maxElems   = 1 << 26 // entries in any one section or dictionary
	maxPathLen = 1 << 16 // switches in one path
	maxOpLen   = 1 << 10 // bytes in an op name
	maxReplies = 1 << 20 // per-host replies in a batch frame
	maxChunk   = 1 << 16 // records in one chunk of a records section
)

// DefaultChunkRecords is the number of records encoded per chunk of a
// records section. It bounds both the writer's buffering (a streaming
// server holds one chunk of records plus the cumulative dictionaries) and
// the decoder's per-chunk allocation; decoders accept chunks up to the
// larger maxChunk cap so the constant can be tuned without a format break.
const DefaultChunkRecords = 4096

// Meta mirrors the execution telemetry carried alongside a result. wire
// cannot import internal/rpc (rpc imports wire), so it defines its own
// carrier; rpc maps it to and from its response structs.
type Meta struct {
	RecordsScanned  int
	SegmentsScanned int
	SegmentsPruned  int
}

// BatchReply is one host's slot in a batch response frame.
type BatchReply struct {
	Host   types.HostID
	Meta   Meta
	Result query.Result
	Error  string
}

// WriteQuery encodes one query response frame to w.
func WriteQuery(w io.Writer, m Meta, res *query.Result, compress bool) error {
	return writeFrame(w, kindQuery, compress, func(bw *writer) {
		writeMeta(bw, m)
		writeResult(bw, res)
	})
}

// ReadQuery decodes one query response frame from r.
func ReadQuery(r io.Reader) (Meta, *query.Result, error) {
	var m Meta
	var res query.Result
	err := readFrame(r, kindQuery, func(br *reader) {
		m = readMeta(br)
		readResult(br, &res, &m, nil)
	})
	if err != nil {
		return Meta{}, nil, err
	}
	return m, &res, nil
}

// WriteBatch encodes a batch response frame to w.
func WriteBatch(w io.Writer, replies []BatchReply, compress bool) error {
	return writeFrame(w, kindBatch, compress, func(bw *writer) {
		bw.uvarint(uint64(len(replies)))
		for i := range replies {
			rep := &replies[i]
			bw.uvarint(uint64(rep.Host))
			bw.str(rep.Error)
			writeMeta(bw, rep.Meta)
			writeResult(bw, &rep.Result)
		}
	})
}

// ReadBatch decodes a batch response frame from r.
func ReadBatch(r io.Reader) ([]BatchReply, error) {
	var replies []BatchReply
	err := readFrame(r, kindBatch, func(br *reader) {
		n := br.count("batch replies", maxReplies)
		replies = make([]BatchReply, 0, min(n, 4096))
		for i := 0; i < n && br.err == nil; i++ {
			var rep BatchReply
			rep.Host = types.HostID(br.uvarint())
			rep.Error = br.str(maxOpLen * 4)
			rep.Meta = readMeta(br)
			readResult(br, &rep.Result, &rep.Meta, nil)
			replies = append(replies, rep)
		}
	})
	if err != nil {
		return nil, err
	}
	return replies, nil
}

// frameBufs pools the frames' 32 KiB bufio buffers: encode and decode of
// every query/batch exchange borrow one instead of allocating, which at
// fan-out rates kept the buffers out of the top of the allocation profile.
var (
	frameWriters = sync.Pool{New: func() any { return bufio.NewWriterSize(io.Discard, 32<<10) }}
	frameReaders = sync.Pool{New: func() any { return bufio.NewReaderSize(bytes.NewReader(nil), 32<<10) }}
)

// writeFrame writes header and body, routing the body through flate when
// compress is set. The body writer is buffered either way, so section
// encoders stream straight toward the socket instead of building the whole
// reply in memory first.
func writeFrame(w io.Writer, kind byte, compress bool, body func(*writer)) error {
	hdr := [6]byte{magic[0], magic[1], magic[2], magic[3], kind, 0}
	if compress {
		hdr[5] = FlagFlate
	}
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	dst := w
	var fw *flate.Writer
	if compress {
		fw, _ = flate.NewWriter(w, flate.DefaultCompression)
		dst = fw
	}
	fbw := frameWriters.Get().(*bufio.Writer)
	fbw.Reset(dst)
	bw := &writer{bw: fbw}
	body(bw)
	err := fbw.Flush()
	fbw.Reset(io.Discard) // drop the destination reference before pooling
	frameWriters.Put(fbw)
	if err != nil {
		return fmt.Errorf("wire: writing frame body: %w", err)
	}
	if fw != nil {
		if err := fw.Close(); err != nil {
			return fmt.Errorf("wire: flushing compressed body: %w", err)
		}
	}
	return nil
}

// readFrame validates the header, unwraps compression, runs the body
// decoder and surfaces its sticky error.
func readFrame(r io.Reader, wantKind byte, body func(*reader)) error {
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("wire: truncated frame header: %w", err)
	}
	if [4]byte{hdr[0], hdr[1], hdr[2], hdr[3]} != magic {
		return fmt.Errorf("wire: bad magic %q: not a wire frame", hdr[:4])
	}
	if hdr[4] != wantKind {
		return fmt.Errorf("wire: frame kind %#x, want %#x", hdr[4], wantKind)
	}
	flags := hdr[5]
	if flags&^byte(FlagFlate) != 0 {
		return fmt.Errorf("wire: unknown frame flags %#x", flags)
	}
	src := r
	var fr io.ReadCloser
	if flags&FlagFlate != 0 {
		fr = flate.NewReader(r)
		defer fr.Close()
		src = fr
	}
	fbr := frameReaders.Get().(*bufio.Reader)
	fbr.Reset(src)
	defer func() {
		fbr.Reset(bytes.NewReader(nil)) // drop the source reference before pooling
		frameReaders.Put(fbr)
	}()
	br := &reader{br: fbr}
	body(br)
	if fr != nil && br.err == nil {
		// A flate stream's final block carries the end-of-stream marker;
		// the logical fields can all decode before the marker is read, so a
		// truncated tail is only caught by driving the stream to EOF.
		if _, err := br.br.ReadByte(); err != io.EOF {
			if err == nil {
				err = fmt.Errorf("trailing data after frame body")
			}
			return fmt.Errorf("wire: truncated frame: %w", err)
		}
	}
	return br.err
}

func writeMeta(w *writer, m Meta) {
	w.uvarint(uint64(m.RecordsScanned))
	w.uvarint(uint64(m.SegmentsScanned))
	w.uvarint(uint64(m.SegmentsPruned))
}

func readMeta(r *reader) Meta {
	return Meta{
		RecordsScanned:  int(r.uvarint()),
		SegmentsScanned: int(r.uvarint()),
		SegmentsPruned:  int(r.uvarint()),
	}
}

// Section-presence bits. Scalars (Bytes, Pkts, Duration) are always
// written — they cost one byte each when zero.
const (
	secFlows = 1 << iota
	secPaths
	secFlowIDs
	secHists
	secTop
	secViolations
	secMatrix
	secRecords
)

func writeResult(w *writer, res *query.Result) {
	w.str(string(res.Op))
	w.uvarint(res.Bytes)
	w.uvarint(res.Pkts)
	w.svarint(int64(res.Duration))

	var present uint64
	if len(res.Flows) > 0 {
		present |= secFlows
	}
	if len(res.Paths) > 0 {
		present |= secPaths
	}
	if len(res.FlowIDs) > 0 {
		present |= secFlowIDs
	}
	if len(res.Hists) > 0 {
		present |= secHists
	}
	if len(res.Top) > 0 {
		present |= secTop
	}
	if len(res.Violations) > 0 {
		present |= secViolations
	}
	if len(res.Matrix) > 0 {
		present |= secMatrix
	}
	if len(res.Records) > 0 {
		present |= secRecords
	}
	w.uvarint(present)

	if present&secFlows != 0 {
		writeFlows(w, res.Flows)
	}
	if present&secPaths != 0 {
		w.uvarint(uint64(len(res.Paths)))
		for _, p := range res.Paths {
			writePath(w, p)
		}
	}
	if present&secFlowIDs != 0 {
		w.uvarint(uint64(len(res.FlowIDs)))
		for _, f := range res.FlowIDs {
			writeFlowID(w, f)
		}
	}
	if present&secHists != 0 {
		w.uvarint(uint64(len(res.Hists)))
		for i := range res.Hists {
			h := &res.Hists[i]
			w.uvarint(uint64(h.Link.A))
			w.uvarint(uint64(h.Link.B))
			w.uvarint(h.BinBytes)
			w.uvarint(uint64(len(h.Bins)))
			for _, b := range h.Bins {
				w.uvarint(b)
			}
		}
	}
	if present&secTop != 0 {
		w.uvarint(uint64(len(res.Top)))
		for i := range res.Top {
			t := &res.Top[i]
			writeFlowID(w, t.Flow)
			w.uvarint(t.Bytes)
			w.uvarint(t.Pkts)
		}
	}
	if present&secViolations != 0 {
		w.uvarint(uint64(len(res.Violations)))
		for i := range res.Violations {
			writeFlowID(w, res.Violations[i].Flow)
			writePath(w, res.Violations[i].Path)
		}
	}
	if present&secMatrix != 0 {
		w.uvarint(uint64(len(res.Matrix)))
		for i := range res.Matrix {
			c := &res.Matrix[i]
			w.uvarint(uint64(c.SrcToR))
			w.uvarint(uint64(c.DstToR))
			w.uvarint(c.Bytes)
		}
	}
	if present&secRecords != 0 {
		writeRecords(w, res.Records)
	}
}

// readResult decodes one result. The records section's end marker can
// patch segment-scan telemetry into m (streamed frames learn the counts
// only after the scan finishes); a non-nil sink receives each decoded
// record chunk instead of the chunks accumulating into res.Records.
func readResult(r *reader, res *query.Result, m *Meta, sink func([]types.Record)) {
	res.Op = query.Op(r.str(maxOpLen))
	res.Bytes = r.uvarint()
	res.Pkts = r.uvarint()
	res.Duration = types.Time(r.svarint())

	present := r.uvarint()
	if r.err != nil {
		return
	}
	if present&^uint64(secFlows|secPaths|secFlowIDs|secHists|secTop|secViolations|secMatrix|secRecords) != 0 {
		r.fail(fmt.Errorf("wire: unknown result sections %#x", present))
		return
	}

	if present&secFlows != 0 {
		res.Flows = readFlows(r)
	}
	if present&secPaths != 0 {
		n := r.count("paths", maxElems)
		res.Paths = make([]types.Path, 0, min(n, 4096))
		for i := 0; i < n && r.err == nil; i++ {
			res.Paths = append(res.Paths, readPath(r))
		}
	}
	if present&secFlowIDs != 0 {
		n := r.count("flow ids", maxElems)
		res.FlowIDs = make([]types.FlowID, 0, min(n, 4096))
		for i := 0; i < n && r.err == nil; i++ {
			res.FlowIDs = append(res.FlowIDs, readFlowID(r))
		}
	}
	if present&secHists != 0 {
		n := r.count("hists", maxElems)
		res.Hists = make([]query.LinkHist, 0, min(n, 4096))
		for i := 0; i < n && r.err == nil; i++ {
			var h query.LinkHist
			h.Link.A = types.SwitchID(r.uvarint())
			h.Link.B = types.SwitchID(r.uvarint())
			h.BinBytes = r.uvarint()
			if bins := r.count("hist bins", maxElems); bins > 0 {
				h.Bins = make([]uint64, 0, min(bins, 4096))
				for j := 0; j < bins && r.err == nil; j++ {
					h.Bins = append(h.Bins, r.uvarint())
				}
			}
			res.Hists = append(res.Hists, h)
		}
	}
	if present&secTop != 0 {
		n := r.count("top flows", maxElems)
		res.Top = make([]query.FlowBytes, 0, min(n, 4096))
		for i := 0; i < n && r.err == nil; i++ {
			var t query.FlowBytes
			t.Flow = readFlowID(r)
			t.Bytes = r.uvarint()
			t.Pkts = r.uvarint()
			res.Top = append(res.Top, t)
		}
	}
	if present&secViolations != 0 {
		n := r.count("violations", maxElems)
		res.Violations = make([]query.Violation, 0, min(n, 4096))
		for i := 0; i < n && r.err == nil; i++ {
			var v query.Violation
			v.Flow = readFlowID(r)
			v.Path = readPath(r)
			res.Violations = append(res.Violations, v)
		}
	}
	if present&secMatrix != 0 {
		n := r.count("matrix cells", maxElems)
		res.Matrix = make([]query.MatrixCell, 0, min(n, 4096))
		for i := 0; i < n && r.err == nil; i++ {
			var c query.MatrixCell
			c.SrcToR = types.SwitchID(r.uvarint())
			c.DstToR = types.SwitchID(r.uvarint())
			c.Bytes = r.uvarint()
			res.Matrix = append(res.Matrix, c)
		}
	}
	if present&secRecords != 0 {
		res.Records = readRecords(r, m, sink)
	}
}

// writeFlows dictionary-encodes a Flow list: distinct flow IDs and paths
// written once in first-appearance order, then one (flow, path) index pair
// per entry.
func writeFlows(w *writer, flows []types.Flow) {
	fd, pd := getFlowDict(), getPathDict()
	defer fd.release()
	defer pd.release()
	for i := range flows {
		fd.index(flows[i].ID)
		pd.index(flows[i].Path)
	}
	fd.write(w)
	pd.write(w)
	w.uvarint(uint64(len(flows)))
	for i := range flows {
		w.uvarint(uint64(fd.index(flows[i].ID)))
	}
	for i := range flows {
		w.uvarint(uint64(pd.index(flows[i].Path)))
	}
}

func readFlows(r *reader) []types.Flow {
	fd := readFlowDictEntries(r)
	pd := readPathDictEntries(r)
	n := r.count("flows", maxElems)
	if r.err != nil {
		return nil
	}
	flows := make([]types.Flow, min(n, 4096))
	flows = flows[:0]
	flowIdx := readIndexColumn(r, n, len(fd), "flow")
	pathIdx := readIndexColumn(r, n, len(pd), "path")
	if r.err != nil {
		return nil
	}
	for i := 0; i < n; i++ {
		flows = append(flows, types.Flow{ID: fd[flowIdx[i]], Path: pd[pathIdx[i]]})
	}
	return flows
}

// writeRecords is the hot section: column-major record encoding over flow
// and path dictionaries with delta-encoded timestamps, cut into
// DefaultChunkRecords-sized chunks:
//
//	records := chunk* end
//	chunk   := n (>0) | flow-dict delta | path-dict delta
//	           | n×flowIdx | n×pathIdx | n×ΔSTime | n×ΔETime
//	           | n×bytes | n×pkts
//	end     := 0 | ΔSegmentsScanned | ΔSegmentsPruned
//
// Dictionaries are cumulative across chunks — each chunk carries only the
// entries that first appear in it — and the STime delta chain continues
// across chunk boundaries. The end marker's deltas are added to the
// frame's Meta by the decoder: a streaming server writes Meta before the
// scan starts and patches the segment counts it learns afterward; the
// materialised path here always writes zeros.
func writeRecords(w *writer, recs []types.Record) {
	fd, pd := getFlowDict(), getPathDict()
	defer fd.release()
	defer pd.release()
	var prev int64
	for start := 0; start < len(recs); start += DefaultChunkRecords {
		end := min(start+DefaultChunkRecords, len(recs))
		prev = writeRecordChunk(w, recs[start:end], fd, pd, prev)
	}
	writeRecordsEnd(w, 0, 0)
}

// writeRecordChunk encodes one bounded chunk of records against the
// cumulative dictionaries and returns the new tail of the STime delta
// chain.
func writeRecordChunk(w *writer, recs []types.Record, fd *flowDict, pd *pathDict, prev int64) int64 {
	fOld, pOld := len(fd.list), len(pd.list)
	for i := range recs {
		fd.index(recs[i].Flow)
		pd.index(recs[i].Path)
	}
	w.uvarint(uint64(len(recs)))
	w.uvarint(uint64(len(fd.list) - fOld))
	for _, f := range fd.list[fOld:] {
		writeFlowID(w, f)
	}
	w.uvarint(uint64(len(pd.list) - pOld))
	for _, p := range pd.list[pOld:] {
		writePath(w, p)
	}
	for i := range recs {
		w.uvarint(uint64(fd.index(recs[i].Flow)))
	}
	for i := range recs {
		w.uvarint(uint64(pd.index(recs[i].Path)))
	}
	for i := range recs {
		st := int64(recs[i].STime)
		w.svarint(st - prev)
		prev = st
	}
	for i := range recs {
		w.svarint(int64(recs[i].ETime) - int64(recs[i].STime))
	}
	for i := range recs {
		w.uvarint(recs[i].Bytes)
	}
	for i := range recs {
		w.uvarint(recs[i].Pkts)
	}
	return prev
}

// writeRecordsEnd terminates a records section: a zero chunk count
// followed by segment-stat deltas to fold into the frame's Meta.
func writeRecordsEnd(w *writer, segScanned, segPruned int) {
	w.uvarint(0)
	w.uvarint(uint64(segScanned))
	w.uvarint(uint64(segPruned))
}

// readRecords decodes a chunked records section. With a nil sink the
// chunks accumulate into the returned slice; with a sink each chunk is
// decoded into a scratch slice handed to the sink (which must not retain
// it) and the return value is nil. The end marker's deltas are added to
// m.
func readRecords(r *reader, m *Meta, sink func([]types.Record)) []types.Record {
	var fd []types.FlowID
	var pd []types.Path
	var recs, scratch []types.Record
	var prev int64
	total := 0
	for r.err == nil {
		n := r.count("record chunk", maxChunk)
		if r.err != nil {
			return nil
		}
		if n == 0 {
			m.SegmentsScanned += int(r.uvarint())
			m.SegmentsPruned += int(r.uvarint())
			if r.err != nil {
				return nil
			}
			return recs
		}
		total += n
		if total > maxElems {
			r.fail(fmt.Errorf("wire: corrupt frame: records total %d exceeds cap %d", total, maxElems))
			return nil
		}
		fd = readFlowDictDelta(r, fd)
		pd = readPathDictDelta(r, pd)
		var dst []types.Record
		if sink == nil {
			start := len(recs)
			recs = slices.Grow(recs, n)[:start+n]
			dst = recs[start:]
		} else {
			if cap(scratch) < n {
				scratch = make([]types.Record, n)
			}
			scratch = scratch[:n]
			dst = scratch
		}
		// Indices are resolved inline against the dictionaries instead of
		// materialising column slices — this loop runs once per chunk per
		// host reply, and two index-column allocations per chunk is what
		// the fan-out profile showed as the decode path's top cost.
		for i := 0; i < n; i++ {
			v := readDictIndex(r, len(fd), "flow")
			if r.err != nil {
				return nil
			}
			dst[i] = types.Record{Flow: fd[v]}
		}
		for i := 0; i < n; i++ {
			v := readDictIndex(r, len(pd), "path")
			if r.err != nil {
				return nil
			}
			dst[i].Path = pd[v]
		}
		for i := 0; i < n && r.err == nil; i++ {
			prev += r.svarint()
			dst[i].STime = types.Time(prev)
		}
		for i := 0; i < n && r.err == nil; i++ {
			dst[i].ETime = dst[i].STime + types.Time(r.svarint())
		}
		for i := 0; i < n && r.err == nil; i++ {
			dst[i].Bytes = r.uvarint()
		}
		for i := 0; i < n && r.err == nil; i++ {
			dst[i].Pkts = r.uvarint()
		}
		if r.err != nil {
			return nil
		}
		if sink != nil {
			sink(dst)
		}
	}
	return nil
}

// readFlowDictDelta appends one chunk's new flow-dictionary entries to the
// cumulative dictionary. Growth is bounded to the chunk's declared count
// so a hostile delta length cannot size an absurd allocation.
func readFlowDictDelta(r *reader, fd []types.FlowID) []types.FlowID {
	n := r.count("flow dictionary delta", maxElems)
	if len(fd)+n > maxElems {
		r.fail(fmt.Errorf("wire: corrupt frame: flow dictionary grows past cap %d", maxElems))
		return fd
	}
	fd = slices.Grow(fd, min(n, 4096))
	for i := 0; i < n && r.err == nil; i++ {
		fd = append(fd, readFlowID(r))
	}
	return fd
}

// readPathDictDelta appends one chunk's new path-dictionary entries to the
// cumulative dictionary. Growth is bounded like readFlowDictDelta.
func readPathDictDelta(r *reader, pd []types.Path) []types.Path {
	n := r.count("path dictionary delta", maxElems)
	if len(pd)+n > maxElems {
		r.fail(fmt.Errorf("wire: corrupt frame: path dictionary grows past cap %d", maxElems))
		return pd
	}
	pd = slices.Grow(pd, min(n, 4096))
	for i := 0; i < n && r.err == nil; i++ {
		pd = append(pd, readPath(r))
	}
	return pd
}

// readDictIndex reads one dictionary index, bounds-checked against the
// dictionary size — an out-of-range index means a corrupt frame. Callers
// must check r.err before using the returned index.
func readDictIndex(r *reader, dictLen int, what string) uint64 {
	v := r.uvarint()
	if r.err == nil && v >= uint64(dictLen) {
		r.fail(fmt.Errorf("wire: corrupt %s dictionary: index %d out of range (dict has %d entries)", what, v, dictLen))
	}
	return v
}

// readIndexColumn reads n dictionary indices, each bounds-checked against
// the dictionary size — an out-of-range index means a corrupt frame.
func readIndexColumn(r *reader, n, dictLen int, what string) []uint32 {
	if r.err != nil {
		return nil
	}
	idx := make([]uint32, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		v := r.uvarint()
		if r.err != nil {
			return nil
		}
		if v >= uint64(dictLen) {
			r.fail(fmt.Errorf("wire: corrupt %s dictionary: index %d out of range (dict has %d entries)", what, v, dictLen))
			return nil
		}
		idx = append(idx, uint32(v))
	}
	return idx
}

// flowDict assigns dense indices to flow IDs in first-appearance order.
type flowDict struct {
	idx  map[types.FlowID]int
	list []types.FlowID
}

// Encoder dictionaries are recycled across sections: a batch reply
// carries one dictionary pair per host section, so a daemon fan-out
// builds hundreds of small maps per round trip. Pooling keeps the map
// buckets and entry slices warm; release() clears entries (and drops
// path references, so pooled dictionaries never pin caller data) but
// keeps capacity.
var (
	flowDicts = sync.Pool{New: func() any { return &flowDict{idx: make(map[types.FlowID]int, 64)} }}
	pathDicts = sync.Pool{New: func() any { return &pathDict{idx: make(map[string]int, 16)} }}
)

func getFlowDict() *flowDict { return flowDicts.Get().(*flowDict) }

func (d *flowDict) release() {
	clear(d.idx)
	d.list = d.list[:0]
	flowDicts.Put(d)
}

func (d *flowDict) index(f types.FlowID) int {
	if i, ok := d.idx[f]; ok {
		return i
	}
	i := len(d.list)
	d.idx[f] = i
	d.list = append(d.list, f)
	return i
}

func (d *flowDict) write(w *writer) {
	w.uvarint(uint64(len(d.list)))
	for _, f := range d.list {
		writeFlowID(w, f)
	}
}

func readFlowDictEntries(r *reader) []types.FlowID {
	n := r.count("flow dictionary", maxElems)
	list := make([]types.FlowID, 0, min(n, 4096))
	for i := 0; i < n && r.err == nil; i++ {
		list = append(list, readFlowID(r))
	}
	return list
}

// pathDict assigns dense indices to paths in first-appearance order,
// keyed by the path's compact byte key. The key is assembled in a scratch
// buffer reused across records: looked up via the compiler's alloc-free
// map[string(bytes)] form, and only materialised as a string on first
// appearance — index() is called once per record, and a per-call
// Path.Key() allocation was the hottest object count in the fan-out
// bench's profile.
type pathDict struct {
	idx  map[string]int
	list []types.Path
	key  []byte // lookup scratch, reused across index calls
}

func getPathDict() *pathDict { return pathDicts.Get().(*pathDict) }

func (d *pathDict) release() {
	clear(d.idx)
	for i := range d.list {
		d.list[i] = nil
	}
	d.list = d.list[:0]
	pathDicts.Put(d)
}

func (d *pathDict) index(p types.Path) int {
	k := d.key[:0]
	for _, s := range p {
		k = append(k, byte(s>>8), byte(s))
	}
	d.key = k
	if i, ok := d.idx[string(k)]; ok {
		return i
	}
	i := len(d.list)
	d.idx[string(k)] = i
	d.list = append(d.list, p)
	return i
}

func (d *pathDict) write(w *writer) {
	w.uvarint(uint64(len(d.list)))
	for _, p := range d.list {
		writePath(w, p)
	}
}

func readPathDictEntries(r *reader) []types.Path {
	n := r.count("path dictionary", maxElems)
	list := make([]types.Path, 0, min(n, 4096))
	for i := 0; i < n && r.err == nil; i++ {
		list = append(list, readPath(r))
	}
	return list
}

func writeFlowID(w *writer, f types.FlowID) {
	w.uvarint(uint64(f.SrcIP))
	w.uvarint(uint64(f.DstIP))
	w.uvarint(uint64(f.SrcPort))
	w.uvarint(uint64(f.DstPort))
	w.byte(f.Proto)
}

func readFlowID(r *reader) types.FlowID {
	return types.FlowID{
		SrcIP:   types.IP(r.uvarint()),
		DstIP:   types.IP(r.uvarint()),
		SrcPort: uint16(r.uvarint()),
		DstPort: uint16(r.uvarint()),
		Proto:   r.byte(),
	}
}

func writePath(w *writer, p types.Path) {
	w.uvarint(uint64(len(p)))
	for _, s := range p {
		w.uvarint(uint64(s))
	}
}

func readPath(r *reader) types.Path {
	n := r.count("path", maxPathLen)
	if n == 0 {
		return nil
	}
	p := make(types.Path, 0, min(n, 1024))
	for i := 0; i < n && r.err == nil; i++ {
		p = append(p, types.SwitchID(r.uvarint()))
	}
	return p
}

// writer wraps a buffered writer with varint helpers. Write errors stick
// inside bufio.Writer and surface at the final Flush.
type writer struct {
	bw  *bufio.Writer
	buf [binary.MaxVarintLen64]byte
}

func (w *writer) uvarint(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.bw.Write(w.buf[:n])
}

func (w *writer) svarint(v int64) {
	n := binary.PutVarint(w.buf[:], v)
	w.bw.Write(w.buf[:n])
}

func (w *writer) byte(b byte) { w.bw.WriteByte(b) }

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.bw.WriteString(s)
}

// reader wraps a buffered reader with varint helpers and a sticky error:
// after the first failure every subsequent read is a no-op returning zero,
// so decoders stay straight-line and check err once per loop.
type reader struct {
	br  *bufio.Reader
	err error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.br)
	if err != nil {
		r.fail(fmt.Errorf("wire: truncated frame: %w", err))
	}
	return v
}

func (r *reader) svarint() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.br)
	if err != nil {
		r.fail(fmt.Errorf("wire: truncated frame: %w", err))
	}
	return v
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	b, err := r.br.ReadByte()
	if err != nil {
		r.fail(fmt.Errorf("wire: truncated frame: %w", err))
	}
	return b
}

// count reads a length prefix and rejects values above max as corrupt.
func (r *reader) count(what string, max int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(max) {
		r.fail(fmt.Errorf("wire: corrupt frame: %s count %d exceeds cap %d", what, v, max))
		return 0
	}
	return int(v)
}

// str reads a length-prefixed string capped at max bytes.
func (r *reader) str(max int) string {
	n := r.count("string", max)
	if r.err != nil || n == 0 {
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.br, b); err != nil {
		r.fail(fmt.Errorf("wire: truncated frame: %w", err))
		return ""
	}
	return string(b)
}
