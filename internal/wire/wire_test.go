package wire

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"pathdump/internal/query"
	"pathdump/internal/types"
)

// randResult builds a pseudo-random result exercising every section with
// duplicate flows/paths so the dictionaries actually dedupe.
func randResult(rng *rand.Rand, nrec int) *query.Result {
	flows := make([]types.FlowID, 1+rng.Intn(8))
	for i := range flows {
		flows[i] = types.FlowID{
			SrcIP:   types.IP(rng.Uint32()),
			DstIP:   types.IP(rng.Uint32()),
			SrcPort: uint16(rng.Intn(65536)),
			DstPort: uint16(rng.Intn(65536)),
			Proto:   uint8(rng.Intn(256)),
		}
	}
	paths := make([]types.Path, 1+rng.Intn(4))
	for i := range paths {
		p := make(types.Path, 1+rng.Intn(6))
		for j := range p {
			p[j] = types.SwitchID(rng.Intn(1 << 16))
		}
		paths[i] = p
	}
	res := &query.Result{Op: query.OpRecords}
	t := int64(rng.Intn(1 << 20))
	for i := 0; i < nrec; i++ {
		// Timestamps wander in both directions so delta encoding sees
		// negative deltas too.
		t += int64(rng.Intn(2000)) - 500
		res.Records = append(res.Records, types.Record{
			Flow:  flows[rng.Intn(len(flows))],
			Path:  paths[rng.Intn(len(paths))],
			STime: types.Time(t),
			ETime: types.Time(t + int64(rng.Intn(1<<16))),
			Bytes: rng.Uint64() >> uint(rng.Intn(40)),
			Pkts:  uint64(rng.Intn(1 << 20)),
		})
	}
	return res
}

// fullResult populates every section of a result at once.
func fullResult(rng *rand.Rand) *query.Result {
	res := randResult(rng, 16)
	res.Op = query.OpTopK
	res.Bytes = rng.Uint64()
	res.Pkts = rng.Uint64()
	res.Duration = types.Time(rng.Int63())
	p := types.Path{1, 2, 3}
	res.Flows = []types.Flow{
		{ID: res.Records[0].Flow, Path: p},
		{ID: res.Records[1].Flow, Path: types.Path{4, 5}},
		{ID: res.Records[0].Flow, Path: p}, // duplicate, exercises dict reuse
	}
	res.Paths = []types.Path{p, {9}, nil}
	res.FlowIDs = []types.FlowID{res.Records[0].Flow, res.Records[1].Flow}
	res.Hists = []query.LinkHist{
		{Link: types.LinkID{A: 1, B: 2}, BinBytes: 1000, Bins: []uint64{3, 0, 7}},
		{Link: types.AnyLink, BinBytes: 500},
	}
	res.Top = []query.FlowBytes{{Flow: res.Records[0].Flow, Bytes: 42, Pkts: 7}}
	res.Violations = []query.Violation{{Flow: res.Records[1].Flow, Path: p}}
	res.Matrix = []query.MatrixCell{{SrcToR: 3, DstToR: 8, Bytes: 99}}
	return res
}

// normalize maps an encode→decode-invariant form: empty slices and nil
// decode identically, and zero-length paths come back nil.
func normalize(res *query.Result) {
	for i := range res.Paths {
		if len(res.Paths[i]) == 0 {
			res.Paths[i] = nil
		}
	}
	for i := range res.Records {
		if len(res.Records[i].Path) == 0 {
			res.Records[i].Path = nil
		}
	}
	for i := range res.Flows {
		if len(res.Flows[i].Path) == 0 {
			res.Flows[i].Path = nil
		}
	}
}

func roundTripQuery(t *testing.T, m Meta, res *query.Result, compress bool) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteQuery(&buf, m, res, compress); err != nil {
		t.Fatalf("WriteQuery: %v", err)
	}
	gotMeta, got, err := ReadQuery(&buf)
	if err != nil {
		t.Fatalf("ReadQuery: %v", err)
	}
	if gotMeta != m {
		t.Fatalf("meta mismatch: got %+v want %+v", gotMeta, m)
	}
	normalize(res)
	normalize(got)
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("result mismatch:\ngot  %+v\nwant %+v", got, res)
	}
}

func TestRoundTripEmpty(t *testing.T) {
	roundTripQuery(t, Meta{}, &query.Result{}, false)
	roundTripQuery(t, Meta{}, &query.Result{Op: query.OpCount}, true)
}

func TestRoundTripSingleRecord(t *testing.T) {
	res := &query.Result{Op: query.OpRecords, Records: []types.Record{{
		Flow:  types.FlowID{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6},
		Path:  types.Path{1, 2, 3},
		STime: 100, ETime: 200, Bytes: 1500, Pkts: 1,
	}}}
	roundTripQuery(t, Meta{RecordsScanned: 1, SegmentsScanned: 2, SegmentsPruned: 3}, res, false)
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		nrec := rng.Intn(200)
		res := randResult(rng, nrec)
		m := Meta{RecordsScanned: rng.Intn(1 << 20), SegmentsScanned: rng.Intn(100), SegmentsPruned: rng.Intn(100)}
		roundTripQuery(t, m, res, trial%2 == 0)
	}
}

func TestRoundTripAllSections(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		roundTripQuery(t, Meta{}, fullResult(rng), trial%2 == 1)
	}
}

func TestRoundTripLargeBatchOfRecords(t *testing.T) {
	// Larger than the 4096 progressive-allocation hint, so append-growth
	// paths run too.
	rng := rand.New(rand.NewSource(3))
	roundTripQuery(t, Meta{}, randResult(rng, 10_000), false)
	roundTripQuery(t, Meta{}, randResult(rng, 10_000), true)
}

func TestRoundTripBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, compress := range []bool{false, true} {
		replies := []BatchReply{
			{Host: 1, Meta: Meta{RecordsScanned: 5}, Result: *randResult(rng, 20)},
			{Host: 2, Error: "deadline exceeded"},
			{Host: 900, Result: *fullResult(rng)},
		}
		var buf bytes.Buffer
		if err := WriteBatch(&buf, replies, compress); err != nil {
			t.Fatalf("WriteBatch: %v", err)
		}
		got, err := ReadBatch(&buf)
		if err != nil {
			t.Fatalf("ReadBatch: %v", err)
		}
		if len(got) != len(replies) {
			t.Fatalf("got %d replies, want %d", len(got), len(replies))
		}
		for i := range got {
			normalize(&got[i].Result)
			normalize(&replies[i].Result)
			if !reflect.DeepEqual(got[i], replies[i]) {
				t.Fatalf("reply %d mismatch:\ngot  %+v\nwant %+v", i, got[i], replies[i])
			}
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBatch(&buf, nil, false); err != nil {
		t.Fatalf("WriteBatch: %v", err)
	}
	got, err := ReadBatch(&buf)
	if err != nil {
		t.Fatalf("ReadBatch: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d replies, want 0", len(got))
	}
}

// TestTruncatedFrame verifies that every proper prefix of a valid frame is
// rejected with an error — not a panic, not a silent partial decode.
func TestTruncatedFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		if err := WriteQuery(&buf, Meta{RecordsScanned: 9}, fullResult(rng), compress); err != nil {
			t.Fatalf("WriteQuery: %v", err)
		}
		frame := buf.Bytes()
		for cut := 0; cut < len(frame); cut++ {
			if _, _, err := ReadQuery(bytes.NewReader(frame[:cut])); err == nil {
				t.Fatalf("compress=%v: prefix of %d/%d bytes decoded without error", compress, cut, len(frame))
			}
		}
	}
}

func TestBadMagicAndKind(t *testing.T) {
	if _, _, err := ReadQuery(strings.NewReader("{\"op\":\"flows\"}")); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("JSON body: got %v, want bad-magic error", err)
	}
	var buf bytes.Buffer
	if err := WriteBatch(&buf, nil, false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadQuery(&buf); err == nil || !strings.Contains(err.Error(), "frame kind") {
		t.Fatalf("batch frame as query: got %v, want kind error", err)
	}
}

func TestUnknownFlagsRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteQuery(&buf, Meta{}, &query.Result{}, false); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	frame[5] |= 0x80
	if _, _, err := ReadQuery(bytes.NewReader(frame)); err == nil || !strings.Contains(err.Error(), "unknown frame flags") {
		t.Fatalf("got %v, want unknown-flags error", err)
	}
}

// recordsFramePrefix writes everything in a records-op frame body up to
// the records section, which the caller then hand-builds.
func recordsFramePrefix(w *writer) {
	writeMeta(w, Meta{})
	w.str(string(query.OpRecords))
	w.uvarint(0) // Bytes
	w.uvarint(0) // Pkts
	w.svarint(0) // Duration
	w.uvarint(secRecords)
}

// writeTestChunk hand-builds one single-record chunk with the given flow
// index and ndict fresh dictionary entries.
func writeTestChunk(w *writer, ndict int, flowIdx uint64) {
	w.uvarint(1) // one record in this chunk
	w.uvarint(uint64(ndict) /* flow dict delta */)
	for i := 0; i < ndict; i++ {
		writeFlowID(w, types.FlowID{SrcIP: types.IP(i + 1)})
	}
	w.uvarint(uint64(ndict) /* path dict delta */)
	for i := 0; i < ndict; i++ {
		writePath(w, types.Path{types.SwitchID(i + 1)})
	}
	w.uvarint(flowIdx)
	w.uvarint(0) // path index
	w.svarint(0) // ΔSTime
	w.svarint(0) // ΔETime
	w.uvarint(0) // bytes
	w.uvarint(0) // pkts
}

// TestCorruptDictionaryRejected hand-builds a records frame whose index
// column points past the end of the flow dictionary.
func TestCorruptDictionaryRejected(t *testing.T) {
	var buf bytes.Buffer
	err := writeFrame(&buf, kindQuery, false, func(w *writer) {
		recordsFramePrefix(w)
		writeTestChunk(w, 1, 7) // flow index 7 — dict has one entry
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadQuery(&buf); err == nil || !strings.Contains(err.Error(), "corrupt flow dictionary") {
		t.Fatalf("got %v, want corrupt-dictionary error", err)
	}
}

// TestCorruptDictionaryLaterChunk points a second chunk's index column
// past the cumulative dictionary: the first chunk must decode, the second
// must fail — the bounds check tracks the growing dictionary, not the
// per-chunk delta.
func TestCorruptDictionaryLaterChunk(t *testing.T) {
	var buf bytes.Buffer
	err := writeFrame(&buf, kindQuery, false, func(w *writer) {
		recordsFramePrefix(w)
		writeTestChunk(w, 2, 1) // valid: cumulative dict has 2 entries
		writeTestChunk(w, 1, 3) // index 3 past the 3-entry cumulative dict
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadQuery(&buf); err == nil || !strings.Contains(err.Error(), "corrupt flow dictionary") {
		t.Fatalf("got %v, want corrupt-dictionary error", err)
	}
	// Index 2 in the second chunk is in range only because dictionaries
	// are cumulative; a fresh-per-chunk decoder would reject it.
	buf.Reset()
	err = writeFrame(&buf, kindQuery, false, func(w *writer) {
		recordsFramePrefix(w)
		writeTestChunk(w, 2, 1)
		writeTestChunk(w, 1, 2) // cumulative index 2 = the third entry
		w.uvarint(0)            // end marker
		w.uvarint(0)
		w.uvarint(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, res, err := ReadQuery(&buf); err != nil {
		t.Fatalf("cumulative index decode: %v", err)
	} else if len(res.Records) != 2 {
		t.Fatalf("got %d records, want 2", len(res.Records))
	}
}

// TestCorruptChunkHeaderRejected feeds a chunk count above the per-chunk
// cap and a records total crossing the section cap.
func TestCorruptChunkHeaderRejected(t *testing.T) {
	var buf bytes.Buffer
	err := writeFrame(&buf, kindQuery, false, func(w *writer) {
		recordsFramePrefix(w)
		w.uvarint(maxChunk + 1) // chunk claims more records than the cap
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadQuery(&buf); err == nil || !strings.Contains(err.Error(), "exceeds cap") {
		t.Fatalf("oversized chunk: got %v, want count-cap error", err)
	}
	buf.Reset()
	err = writeFrame(&buf, kindQuery, false, func(w *writer) {
		recordsFramePrefix(w)
		w.uvarint(1)       // one record
		w.uvarint(1 << 40) // absurd flow-dictionary delta
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadQuery(&buf); err == nil || !strings.Contains(err.Error(), "exceeds cap") {
		t.Fatalf("absurd dict delta: got %v, want count-cap error", err)
	}
}

// TestTruncatedMidChunk cuts a multi-chunk frame in the middle of its
// second chunk and at every boundary around the end marker.
func TestTruncatedMidChunk(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	res := randResult(rng, DefaultChunkRecords+100) // two chunks
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		if err := WriteQuery(&buf, Meta{}, res, compress); err != nil {
			t.Fatal(err)
		}
		frame := buf.Bytes()
		// Sampled prefixes through the body (every prefix would be
		// O(frame²)), then every byte around the chunk boundary region and
		// the end marker, where an off-by-one would actually live.
		for cut := len(frame) / 2; cut < len(frame); cut += 97 {
			if _, _, err := ReadQuery(bytes.NewReader(frame[:cut])); err == nil {
				t.Fatalf("compress=%v: prefix of %d/%d bytes decoded without error", compress, cut, len(frame))
			}
		}
		for cut := max(0, len(frame)-200); cut < len(frame); cut++ {
			if _, _, err := ReadQuery(bytes.NewReader(frame[:cut])); err == nil {
				t.Fatalf("compress=%v: prefix of %d/%d bytes decoded without error", compress, cut, len(frame))
			}
		}
	}
}

// TestHugeCountRejected verifies a hostile length prefix fails fast
// instead of sizing an allocation from it.
func TestHugeCountRejected(t *testing.T) {
	var buf bytes.Buffer
	err := writeFrame(&buf, kindQuery, false, func(w *writer) {
		writeMeta(w, Meta{})
		w.str(string(query.OpRecords))
		w.uvarint(0)
		w.uvarint(0)
		w.svarint(0)
		w.uvarint(secPaths)
		w.uvarint(1 << 40) // absurd path count
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadQuery(&buf); err == nil || !strings.Contains(err.Error(), "exceeds cap") {
		t.Fatalf("got %v, want count-cap error", err)
	}
}

func TestNegotiationHelpers(t *testing.T) {
	if !Accepted(ContentType + ", application/json") {
		t.Fatal("Accepted should match an Accept list containing the wire type")
	}
	if Accepted("application/json") {
		t.Fatal("Accepted should reject a JSON-only Accept list")
	}
	if !IsWire(ContentType) || IsWire("application/json; charset=utf-8") {
		t.Fatal("IsWire misclassifies content types")
	}
}

// TestWireSmallerThanJSON pins the point of the exercise: the columnar
// encoding of a realistic record batch is at least 5x smaller than JSON.
func TestWireSmallerThanJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	res := randResult(rng, 2000)
	var buf bytes.Buffer
	if err := WriteQuery(&buf, Meta{}, res, false); err != nil {
		t.Fatal(err)
	}
	j, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len()*5 > len(j) {
		t.Fatalf("wire %dB vs json %dB: expected ≥5x smaller", buf.Len(), len(j))
	}
	t.Logf("wire %dB, json %dB (%.1fx)", buf.Len(), len(j), float64(len(j))/float64(buf.Len()))
}
