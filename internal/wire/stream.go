package wire

// Streaming side of the chunked records encoding. A server scanning a big
// TIB uses QueryStreamWriter to emit the reply one chunk at a time —
// holding O(DefaultChunkRecords) records plus the cumulative dictionaries
// instead of the whole reply — and a client uses ReadQueryChunks to hand
// each chunk to a merger before the frame's last byte arrives.

import (
	"bufio"
	"compress/flate"
	"errors"
	"fmt"
	"io"

	"pathdump/internal/query"
	"pathdump/internal/types"
)

// ErrStreamClosed is returned by QueryStreamWriter.Append after Close or
// Abort.
var ErrStreamClosed = errors.New("wire: stream writer closed")

// QueryStreamWriter encodes one query-response frame whose records section
// is produced incrementally. It serves the records op only: the frame's
// scalar fields and every non-record section are written empty, which is
// exactly what query.Execute produces for that op. Records buffer until a
// chunk fills, then the chunk is encoded and flushed to the destination
// (through flate when compression is on), so server-side memory stays
// O(chunk) however large the reply. Close completes the frame; a writer
// abandoned without Close leaves a truncated frame, which decoders reject
// — that truncation is the error signal once the HTTP status line is
// already committed.
//
// The writer is not safe for concurrent use.
type QueryStreamWriter struct {
	fw    *flate.Writer
	fbw   *bufio.Writer
	w     *writer
	fd    *flowDict
	pd    *pathDict
	chunk []types.Record
	prev  int64
	err   error
	done  bool

	// OnChunk, when set, runs after each chunk reaches the destination
	// writer. Servers hook http.Flusher here so chunks actually hit the
	// wire instead of pooling in the response buffer.
	OnChunk func()
}

// NewQueryStreamWriter writes the frame header, telemetry and result
// prefix for a records-op reply to dst and returns a writer ready to
// Append records. Meta is written up front, before the scan runs; pass the
// segment-stat deltas learned during the scan to Close instead.
func NewQueryStreamWriter(dst io.Writer, m Meta, op query.Op, compress bool) (*QueryStreamWriter, error) {
	hdr := [6]byte{magic[0], magic[1], magic[2], magic[3], kindQuery, 0}
	if compress {
		hdr[5] = FlagFlate
	}
	if _, err := dst.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("wire: writing frame header: %w", err)
	}
	s := &QueryStreamWriter{}
	out := dst
	if compress {
		s.fw, _ = flate.NewWriter(dst, flate.DefaultCompression)
		out = s.fw
	}
	s.fbw = frameWriters.Get().(*bufio.Writer)
	s.fbw.Reset(out)
	s.w = &writer{bw: s.fbw}
	s.fd, s.pd = getFlowDict(), getPathDict()
	s.chunk = make([]types.Record, 0, DefaultChunkRecords)

	writeMeta(s.w, m)
	s.w.str(string(op))
	s.w.uvarint(0)          // Bytes
	s.w.uvarint(0)          // Pkts
	s.w.svarint(0)          // Duration
	s.w.uvarint(secRecords) // present bitmap: records only
	return s, nil
}

// Append adds one record to the stream, flushing a full chunk to the
// destination. The record is copied; the caller may reuse it. Errors are
// sticky: once a flush fails every later Append returns the same error,
// so scan loops can keep calling without re-checking the transport.
func (s *QueryStreamWriter) Append(rec *types.Record) error {
	if s.done {
		if s.err != nil {
			return s.err
		}
		return ErrStreamClosed
	}
	if s.err != nil {
		return s.err
	}
	s.chunk = append(s.chunk, *rec)
	if len(s.chunk) >= DefaultChunkRecords {
		s.flushChunk()
	}
	return s.err
}

// Close flushes the final chunk, writes the end marker carrying the
// segment-stat deltas learned during the scan, completes the compressed
// stream, and releases pooled resources. It returns the first error the
// stream hit.
func (s *QueryStreamWriter) Close(segScanned, segPruned int) error {
	if s.done {
		return s.err
	}
	if s.err == nil && len(s.chunk) > 0 {
		s.prev = writeRecordChunk(s.w, s.chunk, s.fd, s.pd, s.prev)
		s.chunk = s.chunk[:0]
	}
	if s.err == nil {
		writeRecordsEnd(s.w, segScanned, segPruned)
		if err := s.fbw.Flush(); err != nil {
			s.fail(err)
		}
	}
	if s.err == nil && s.fw != nil {
		if err := s.fw.Close(); err != nil {
			s.fail(err)
		}
	}
	s.release()
	return s.err
}

// Err reports the stream's sticky error: the first transport failure any
// Append or flush hit, or nil while the stream is healthy.
func (s *QueryStreamWriter) Err() error {
	if s.err != nil && !errors.Is(s.err, ErrStreamClosed) {
		return s.err
	}
	return nil
}

// Abort releases the writer's pooled resources without completing the
// frame, leaving whatever bytes already flushed as a truncated frame the
// decoder will reject. Use it when the scan fails after streaming began.
func (s *QueryStreamWriter) Abort() {
	if s.done {
		return
	}
	if s.err == nil {
		s.err = ErrStreamClosed
	}
	s.release()
}

func (s *QueryStreamWriter) flushChunk() {
	if len(s.chunk) == 0 || s.err != nil {
		return
	}
	s.prev = writeRecordChunk(s.w, s.chunk, s.fd, s.pd, s.prev)
	s.chunk = s.chunk[:0]
	if err := s.fbw.Flush(); err != nil {
		s.fail(err)
		return
	}
	if s.fw != nil {
		if err := s.fw.Flush(); err != nil {
			s.fail(err)
			return
		}
	}
	if s.OnChunk != nil {
		s.OnChunk()
	}
}

func (s *QueryStreamWriter) fail(err error) {
	if s.err == nil {
		s.err = fmt.Errorf("wire: writing stream frame: %w", err)
	}
}

func (s *QueryStreamWriter) release() {
	s.done = true
	s.fbw.Reset(io.Discard) // drop buffered bytes + destination before pooling
	frameWriters.Put(s.fbw)
	s.fbw = nil
	s.w = nil
	s.fd.release()
	s.pd.release()
	s.fd, s.pd = nil, nil
	s.chunk = nil
	s.fw = nil
}

// ReadQueryChunks decodes one query response frame, handing each record
// chunk to fn as soon as its bytes are available instead of materialising
// the records section. fn runs on the caller's goroutine and must not
// retain the slice — it is reused for the next chunk. The returned Result
// carries every non-record section; Records stays nil. Frames written by
// WriteQuery and QueryStreamWriter decode identically.
func ReadQueryChunks(r io.Reader, fn func([]types.Record)) (Meta, *query.Result, error) {
	if fn == nil {
		return ReadQuery(r)
	}
	var m Meta
	var res query.Result
	err := readFrame(r, kindQuery, func(br *reader) {
		m = readMeta(br)
		readResult(br, &res, &m, fn)
	})
	if err != nil {
		return Meta{}, nil, err
	}
	return m, &res, nil
}
