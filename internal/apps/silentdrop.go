package apps

import (
	"sort"

	"pathdump/internal/controller"
	"pathdump/internal/maxcov"
	"pathdump/internal/query"
	"pathdump/internal/types"
)

// SilentDropDebugger is the §4.3 application: end-host monitors raise
// POOR_PERF alarms; for each alarm the controller fetches the suffering
// flow's path(s) from the destination TIB as a failure signature and runs
// MAX-COVERAGE over the accumulated signatures to localise the silently
// dropping interfaces.
//
// One refinement over plain greedy coverage: candidate links are scored by
// the fraction of their flows that alarmed, not the absolute count. The
// TIB supplies the denominator (getFlows per link across hosts) — busy
// shared links accumulate background congestion alarms in proportion to
// their traffic and score low, while a faulty interface makes a large
// fraction of *its* flows suffer regardless of how much it carries. This
// keeps precision converging to 1 as evidence accumulates (Fig. 7) instead
// of decaying under alarm noise.
type SilentDropDebugger struct {
	c *controller.Controller

	// MinCover is the minimum alarmed-flow count before a link can be
	// blamed (default 2). MinRatioFactor is the outlier test: a link is
	// blamed only while its alarmed/total ratio is at least this multiple
	// of the median candidate ratio (default 3) — an absolute threshold
	// would depend on the workload's flow-size mix.
	MinCover       int
	MinRatioFactor float64

	sigs []maxcov.Signature
	// Signatures per ⟨flow, path⟩ are deduplicated: a flow that keeps
	// alarming on the same path adds no information.
	seen map[string]bool
}

// NewSilentDropDebugger registers the debugger on the controller's alarm
// stream and returns it.
func NewSilentDropDebugger(c *controller.Controller) *SilentDropDebugger {
	d := &SilentDropDebugger{c: c, MinCover: 2, MinRatioFactor: 3, seen: make(map[string]bool)}
	c.OnAlarm(func(a types.Alarm) {
		if a.Reason == types.ReasonPoorPerf {
			d.handle(a)
		}
	})
	return d
}

// handle fetches failure signatures for one POOR_PERF alarm.
func (d *SilentDropDebugger) handle(a types.Alarm) {
	dst := d.c.Topo.HostByIP(a.Flow.DstIP)
	if dst == nil {
		return
	}
	// §2.3: paths = getPaths(flowID, ⟨*,*⟩, ⟨t1,*⟩) at the destination.
	res, err := d.c.QueryHost(dst.ID, query.Query{
		Op: query.OpPaths, Flow: a.Flow, Link: types.AnyLink, Range: types.AllTime,
	})
	if err != nil {
		return
	}
	for _, p := range res.Paths {
		k := a.Flow.String() + p.Key()
		if d.seen[k] {
			continue
		}
		d.seen[k] = true
		d.sigs = append(d.sigs, maxcov.FromPath(p))
	}
}

// Signatures returns the number of accumulated failure signatures.
func (d *SilentDropDebugger) Signatures() int { return len(d.sigs) }

// Localize runs the ratio-weighted MAX-COVERAGE greedy: repeatedly blame
// the link with the highest alarmed/total flow ratio, provided it covers
// at least MinCover signatures and its ratio stands out from the field
// (≥ MinRatioFactor × the median candidate ratio), then remove the
// signatures it explains and repeat. Downstream links of a faulty
// interface accumulate the same alarmed flows, but removing the faulty
// link's signatures collapses their counts, so the greedy stops cleanly.
func (d *SilentDropDebugger) Localize() []types.LinkID {
	uncovered := make([]maxcov.Signature, len(d.sigs))
	copy(uncovered, d.sigs)
	totals := make(map[types.LinkID]int)
	var out []types.LinkID
	for {
		counts := make(map[types.LinkID]int)
		for _, s := range uncovered {
			seen := make(map[types.LinkID]bool, len(s))
			for _, l := range s {
				if !seen[l] {
					seen[l] = true
					counts[l]++
				}
			}
		}
		best := types.LinkID{}
		bestScore := -1.0
		ratios := make([]float64, 0, len(counts))
		for l, cov := range counts {
			score := float64(cov) / float64(d.linkTotal(l, totals))
			ratios = append(ratios, score)
			if cov < d.MinCover {
				continue
			}
			if score > bestScore || (score == bestScore && lessLink(l, best)) {
				best, bestScore = l, score
			}
		}
		if bestScore < 0 || bestScore < d.MinRatioFactor*median(ratios) {
			return out
		}
		out = append(out, best)
		next := uncovered[:0]
		for _, s := range uncovered {
			if !sigContains(s, best) {
				next = append(next, s)
			}
		}
		uncovered = next
	}
}

// median returns the middle value of xs (0 when empty).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

// linkTotal counts (and memoises) the distinct flows recorded across all
// TIBs for a link — the ratio's denominator.
func (d *SilentDropDebugger) linkTotal(l types.LinkID, cache map[types.LinkID]int) int {
	if n, ok := cache[l]; ok {
		return n
	}
	n := 0
	res, _, err := d.c.Execute(hostsOfTopo(d.c), query.Query{Op: query.OpFlows, Link: l})
	if err == nil {
		seen := make(map[types.FlowID]bool, len(res.Flows))
		for _, f := range res.Flows {
			seen[f.ID] = true
		}
		n = len(seen)
	}
	if n < 1 {
		n = 1
	}
	cache[l] = n
	return n
}

func sigContains(s maxcov.Signature, l types.LinkID) bool {
	for _, x := range s {
		if x == l {
			return true
		}
	}
	return false
}

func lessLink(a, b types.LinkID) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}

// Accuracy scores the current hypothesis against known faulty links
// (ground truth available only to the experiment harness).
func (d *SilentDropDebugger) Accuracy(truth []types.LinkID) (recall, precision float64) {
	return maxcov.Score(d.Localize(), truth)
}
