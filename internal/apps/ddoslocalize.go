package apps

import (
	"sort"

	"pathdump/internal/controller"
	"pathdump/internal/query"
	"pathdump/internal/types"
)

// SwitchBytes ranks one switch by the attack bytes observed crossing it.
type SwitchBytes struct {
	Switch types.SwitchID
	Bytes  uint64
}

// DDoSLocalization extends the §2.3 DDoS source ranking with in-network
// localisation: which switches the top sources' traffic concentrates
// through, computed from the victim's own path records (top-k path
// aggregates). The shared upstream aggregation points are where an
// operator installs filters — far cheaper than per-source ACLs at the
// edge.
type DDoSLocalization struct {
	// Victim is the targeted host.
	Victim types.HostID
	// Sources ranks per-source bytes at the victim (largest first).
	Sources []query.FlowBytes
	// TotalBytes is everything the victim received in the range.
	TotalBytes uint64
	// TopShare is the byte fraction the ranked top sources contribute.
	TopShare float64
	// Aggregates ranks switches by attack bytes traversing them,
	// excluding the victim's own ToR (every path crosses that).
	Aggregates []SwitchBytes
	// Suspected reports whether the concentration crossed the caller's
	// thresholds: at least minSources distinct top sources jointly
	// contributing at least shareThresh of the victim's bytes.
	Suspected bool
}

// LocalizeDDoS runs the DDoS diagnosis at a victim: rank sources, take
// the top topK, aggregate their recorded paths into per-switch byte
// totals, and decide whether the pattern looks like a distributed
// attack (≥ minSources sources jointly ≥ shareThresh of bytes). On
// suspicion it raises one DDOS_SUSPECT alarm through the controller
// pipeline; repeated detections at the same victim fold into one
// history entry under the suppression window.
func LocalizeDDoS(c *controller.Controller, victim types.HostID, tr types.TimeRange, topK int, shareThresh float64, minSources int) (*DDoSLocalization, error) {
	recv := c.Topo.Host(victim)
	if recv == nil {
		return nil, errNoData("victim")
	}
	res, err := c.QueryHost(victim, query.Query{Op: query.OpRecords, Link: types.AnyLink, Range: tr})
	if err != nil {
		return nil, err
	}
	perSrc := make(map[types.IP]uint64)
	var total uint64
	for i := range res.Records {
		rec := &res.Records[i]
		if rec.Flow.DstIP != recv.IP {
			continue
		}
		perSrc[rec.Flow.SrcIP] += rec.Bytes
		total += rec.Bytes
	}
	if total == 0 {
		return nil, errNoData("victim traffic")
	}
	loc := &DDoSLocalization{Victim: victim, TotalBytes: total}
	for src, bytes := range perSrc {
		loc.Sources = append(loc.Sources, query.FlowBytes{Flow: types.FlowID{SrcIP: src}, Bytes: bytes})
	}
	sort.Slice(loc.Sources, func(i, j int) bool {
		if loc.Sources[i].Bytes != loc.Sources[j].Bytes {
			return loc.Sources[i].Bytes > loc.Sources[j].Bytes
		}
		return loc.Sources[i].Flow.SrcIP < loc.Sources[j].Flow.SrcIP
	})
	if topK > 0 && len(loc.Sources) > topK {
		loc.Sources = loc.Sources[:topK]
	}
	topSet := make(map[types.IP]bool, len(loc.Sources))
	var topBytes uint64
	for _, s := range loc.Sources {
		topSet[s.Flow.SrcIP] = true
		topBytes += s.Bytes
	}
	loc.TopShare = float64(topBytes) / float64(total)

	// Top-k path aggregates: fold the top sources' recorded paths into
	// per-switch byte totals. The victim's ToR carries everything by
	// construction, so it is excluded from the ranking.
	perSwitch := make(map[types.SwitchID]uint64)
	victimToR := recv.ToR
	for i := range res.Records {
		rec := &res.Records[i]
		if rec.Flow.DstIP != recv.IP || !topSet[rec.Flow.SrcIP] {
			continue
		}
		for _, sw := range rec.Path {
			if sw != victimToR {
				perSwitch[sw] += rec.Bytes
			}
		}
	}
	for sw, bytes := range perSwitch {
		loc.Aggregates = append(loc.Aggregates, SwitchBytes{Switch: sw, Bytes: bytes})
	}
	sort.Slice(loc.Aggregates, func(i, j int) bool {
		if loc.Aggregates[i].Bytes != loc.Aggregates[j].Bytes {
			return loc.Aggregates[i].Bytes > loc.Aggregates[j].Bytes
		}
		return loc.Aggregates[i].Switch < loc.Aggregates[j].Switch
	})

	loc.Suspected = len(loc.Sources) >= minSources && loc.TopShare >= shareThresh
	if loc.Suspected {
		c.RaiseAlarm(types.Alarm{
			Host:   victim,
			Flow:   types.FlowID{DstIP: recv.IP},
			Reason: types.ReasonDDoS,
			At:     c.VirtualNow(),
		})
	}
	return loc, nil
}
