package apps

import (
	"sort"

	"pathdump/internal/controller"
	"pathdump/internal/query"
	"pathdump/internal/types"
)

// SenderStat is one sender's view in an outcast diagnosis: goodput and
// hop count toward the shared receiver (Fig. 10).
type SenderStat struct {
	Flow          types.FlowID
	Bytes         uint64
	Duration      types.Time
	ThroughputBps float64
	Hops          int
}

// OutcastDiagnosis is the §4.6 result.
type OutcastDiagnosis struct {
	Receiver types.HostID
	Senders  []SenderStat
	// Victim is the most-penalised flow.
	Victim SenderStat
	// IsOutcast reports whether the pattern fits TCP outcast: the flow
	// closest to the receiver (fewest hops) sees the lowest throughput
	// while competing with a larger group on another input port.
	IsOutcast bool
}

// OutcastWatcher accumulates POOR_PERF alarms and fires a diagnosis once
// enough distinct sources complain about one destination — the paper
// requires a minimum of 10 alerts from different sources (§4.6).
type OutcastWatcher struct {
	c         *controller.Controller
	minAlerts int
	perDst    map[types.IP]map[types.IP]bool
	onDiag    func(*OutcastDiagnosis)
	fired     map[types.IP]bool
}

// NewOutcastWatcher registers the watcher on the alarm stream; onDiag
// fires at most once per destination.
func NewOutcastWatcher(c *controller.Controller, minAlerts int, onDiag func(*OutcastDiagnosis)) *OutcastWatcher {
	w := &OutcastWatcher{
		c: c, minAlerts: minAlerts,
		perDst: make(map[types.IP]map[types.IP]bool),
		onDiag: onDiag,
		fired:  make(map[types.IP]bool),
	}
	c.OnAlarm(func(a types.Alarm) {
		if a.Reason != types.ReasonPoorPerf {
			return
		}
		dst := a.Flow.DstIP
		if w.fired[dst] {
			return
		}
		srcs := w.perDst[dst]
		if srcs == nil {
			srcs = make(map[types.IP]bool)
			w.perDst[dst] = srcs
		}
		srcs[a.Flow.SrcIP] = true
		if len(srcs) >= w.minAlerts {
			w.fired[dst] = true
			if d, err := DiagnoseOutcast(w.c, dst, types.AllTime); err == nil && w.onDiag != nil {
				w.onDiag(d)
			}
		}
	})
	return w
}

// DiagnoseOutcast queries the receiver's TIB for every incoming flow's
// bytes, duration and path, computes per-sender throughput, and matches
// the outcast profile: the sender closest to the receiver is the most
// highly penalised (§4.6).
func DiagnoseOutcast(c *controller.Controller, receiver types.IP, tr types.TimeRange) (*OutcastDiagnosis, error) {
	dst := c.Topo.HostByIP(receiver)
	if dst == nil {
		return nil, errNoData("receiver")
	}
	flows, err := c.QueryHost(dst.ID, query.Query{Op: query.OpFlows, Link: types.AnyLink, Range: tr})
	if err != nil {
		return nil, err
	}
	d := &OutcastDiagnosis{Receiver: dst.ID}
	seen := make(map[types.FlowID]bool)
	for _, fl := range flows.Flows {
		if seen[fl.ID] || fl.ID.Proto != types.ProtoTCP {
			continue
		}
		seen[fl.ID] = true
		cnt, err := c.QueryHost(dst.ID, query.Query{Op: query.OpCount, Flow: fl.ID, Range: tr})
		if err != nil {
			return nil, err
		}
		dur, err := c.QueryHost(dst.ID, query.Query{Op: query.OpDuration, Flow: fl.ID, Range: tr})
		if err != nil {
			return nil, err
		}
		st := SenderStat{Flow: fl.ID, Bytes: cnt.Bytes, Duration: dur.Duration, Hops: len(fl.Path)}
		if dur.Duration > 0 {
			st.ThroughputBps = float64(cnt.Bytes) * 8 / dur.Duration.Seconds()
		}
		d.Senders = append(d.Senders, st)
	}
	if len(d.Senders) == 0 {
		return nil, errNoData("incoming flows")
	}
	sort.Slice(d.Senders, func(i, j int) bool {
		return d.Senders[i].Flow.String() < d.Senders[j].Flow.String()
	})
	victim := d.Senders[0]
	minHops := d.Senders[0].Hops
	for _, s := range d.Senders[1:] {
		if s.ThroughputBps < victim.ThroughputBps {
			victim = s
		}
		if s.Hops < minHops {
			minHops = s.Hops
		}
	}
	d.Victim = victim
	d.IsOutcast = len(d.Senders) >= 3 && victim.Hops == minHops
	return d, nil
}
