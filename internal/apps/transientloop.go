package apps

import (
	"pathdump/internal/controller"
	"pathdump/internal/netsim"
	"pathdump/internal/types"
)

// LoopClassification labels one detected routing loop against the
// operator's link-failure timeline: a loop that starts within the
// correlation window of a noted failure is a transient failover loop
// (switches chasing each other's detours while routing reconverges), as
// opposed to a standing misconfiguration that needs a human.
type LoopClassification struct {
	// Event is the controller's loop detection (§4.5).
	Event controller.LoopEvent
	// NearFailure reports whether the loop started within the window of
	// a noted link failure; FailedLink is that link when it did.
	NearFailure bool
	FailedLink  types.LinkID
}

// TransientLoopAuditor correlates the controller's LOOP detections with
// operator-noted link failures. It is the thin composition the paper's
// architecture invites: the loop evidence already arrives via the punt
// path, so classifying it needs only a timeline join — no new
// in-network state.
type TransientLoopAuditor struct {
	window   types.Time
	failures []noteEntry
	events   []controller.LoopEvent
}

type noteEntry struct {
	link types.LinkID
	at   types.Time
}

// NewTransientLoopAuditor registers the auditor on the controller's loop
// stream. Loops are correlated against failures noted within the given
// window (before or after the detection).
func NewTransientLoopAuditor(c *controller.Controller, window types.Time) *TransientLoopAuditor {
	a := &TransientLoopAuditor{window: window}
	c.OnLoop(func(ev controller.LoopEvent) { a.events = append(a.events, ev) })
	return a
}

// NoteLinkFailure records that the operator (or the fabric's own
// monitoring) saw the a–b link fail at virtual time `at`.
func (a *TransientLoopAuditor) NoteLinkFailure(l types.LinkID, at types.Time) {
	a.failures = append(a.failures, noteEntry{l, at})
}

// AttachSim subscribes the auditor to the simulator's own link-state
// events, so administrative failures (FailLink, down-bit impairments,
// FlapLink down phases) land on the failure timeline automatically —
// no operator NoteLinkFailure calls needed. Restorations are ignored:
// only the moment of failure opens a correlation window.
func (a *TransientLoopAuditor) AttachSim(s *netsim.Sim) {
	s.OnLinkStateChange(func(ev netsim.LinkEvent) {
		if ev.Down {
			a.NoteLinkFailure(types.LinkID{A: ev.A, B: ev.B}, ev.At)
		}
	})
}

// Loops returns how many loop detections the auditor has seen.
func (a *TransientLoopAuditor) Loops() int { return len(a.events) }

// Report classifies every observed loop against the failure timeline.
func (a *TransientLoopAuditor) Report() []LoopClassification {
	out := make([]LoopClassification, 0, len(a.events))
	for _, ev := range a.events {
		cls := LoopClassification{Event: ev}
		for _, f := range a.failures {
			d := ev.DetectedAt - f.at
			if d < 0 {
				d = -d
			}
			if d <= a.window {
				cls.NearFailure = true
				cls.FailedLink = f.link
				break
			}
		}
		out = append(out, cls)
	}
	return out
}
