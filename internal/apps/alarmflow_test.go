package apps

import (
	"testing"
	"time"

	"pathdump/internal/alarms"
	"pathdump/internal/netsim"
	"pathdump/internal/types"
)

// TestMonitorAlarmsThroughPipeline drives the paper's two installed
// monitors — the 200 ms TCP performance monitor and the path-conformance
// check — through the controller's alarm pipeline: repeated firings of
// one suffering flow dedup into a single history entry (with the fold
// count preserved), and the two alarm reasons stay separately queryable
// in the bounded history.
func TestMonitorAlarmsThroughPipeline(t *testing.T) {
	r := newRig(t, netsim.Config{Seed: 11})
	// Wall-clock suppression window far wider than the test's runtime:
	// every repeat folds.
	r.ctrl.SetAlarmPolicy(alarms.Config{Suppress: time.Hour})

	// The active TCP monitor at every host (§3.2).
	if _, err := InstallTCPMonitor(r.ctrl, r.hosts, 3, 200*types.Millisecond); err != nil {
		t.Fatal(err)
	}
	// A periodic conformance sweep: inter-pod fat-tree paths have 5
	// switches, so MaxPathLen 5 flags them.
	if _, err := InstallPathConformance(r.ctrl, r.hosts, 5, nil, nil, 250*types.Millisecond); err != nil {
		t.Fatal(err)
	}

	topo := r.sim.Topo
	src := topo.Hosts()[0]
	dst := topo.HostsAt(topo.ToRID(2, 0))[0] // different pod: 5-switch path

	// One wedged flow at src: the monitor reports it every 200 ms.
	poor := r.flowID(src, dst, 4000)
	r.stacks[src.ID].InjectPoorFlow(poor, 10)

	// One real inter-pod flow: its exported records violate the
	// conformance policy at both endpoints (data at dst, ACKs at src).
	f := r.flowID(src, dst, 4001)
	r.stacks[src.ID].StartFlow(f, 40_000, 0, nil)
	r.sim.Run(3 * types.Second)

	// POOR_PERF: one deduped entry folding ~15 firings.
	perf := r.ctrl.AlarmHistory(alarms.Filter{Reason: types.ReasonPoorPerf})
	if len(perf) != 1 {
		t.Fatalf("POOR_PERF entries = %d (%v), want 1 deduped entry", len(perf), perf)
	}
	if perf[0].Count < 10 {
		t.Fatalf("POOR_PERF entry folded %d firings, want >= 10 (the monitor fires every 200ms)", perf[0].Count)
	}
	if perf[0].Alarm.Flow != poor || perf[0].Alarm.Host != src.ID {
		t.Fatalf("POOR_PERF entry = %+v, want flow %v at %v", perf[0].Alarm, poor, src.ID)
	}

	// PC_FAIL: distinct entries per (host, flow), no cross-reason mixing.
	pc := r.ctrl.AlarmHistory(alarms.Filter{Reason: types.ReasonPathConformance})
	if len(pc) == 0 {
		t.Fatal("no PC_FAIL entries in history")
	}
	for _, e := range pc {
		if e.Alarm.Reason != types.ReasonPathConformance {
			t.Fatalf("reason filter leaked %v", e.Alarm)
		}
		if len(e.Alarm.Paths) == 0 || len(e.Alarm.Paths[0]) < 5 {
			t.Fatalf("conformance alarm carries no violating path: %+v", e.Alarm)
		}
	}
	// The incremental trigger alarms each violating record once: repeated
	// periodic sweeps must not have re-raised (and re-folded) old
	// violations, so each PC_FAIL entry holds exactly one firing.
	for _, e := range pc {
		if e.Count != 1 {
			t.Fatalf("PC_FAIL entry re-fired %d times — periodic sweep rescanned old records: %+v", e.Count, e)
		}
	}

	// Host filtering separates the two endpoints' conformance alarms.
	h := src.ID
	atSrc := r.ctrl.AlarmHistory(alarms.Filter{Reason: types.ReasonPathConformance, Host: &h})
	for _, e := range atSrc {
		if e.Alarm.Host != src.ID {
			t.Fatalf("host filter leaked %v", e.Alarm)
		}
	}

	// The pipeline counters reconcile: everything received was either
	// admitted or folded.
	st := r.ctrl.AlarmStats()
	if st.Suppressed == 0 {
		t.Fatal("no suppression despite a monitor firing every 200ms")
	}
	if st.Admitted+st.Suppressed+st.RateLimited != st.Received {
		t.Fatalf("pipeline counters do not reconcile: %+v", st)
	}
	if int(st.Admitted) != len(r.ctrl.Alarms()) {
		t.Fatalf("history holds %d alarms, stats admit %d", len(r.ctrl.Alarms()), st.Admitted)
	}
}
