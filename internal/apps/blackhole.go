package apps

import (
	"pathdump/internal/controller"
	"pathdump/internal/query"
	"pathdump/internal/topology"
	"pathdump/internal/types"
)

// BlackholeDiagnosis is the §4.4 result: under packet spraying, a
// blackholed link swallows entire subflows, so some equal-cost paths never
// appear in the destination TIB. Joining the missing paths shrinks the
// debugging search space to a few suspect switches.
type BlackholeDiagnosis struct {
	Flow     types.FlowID
	Expected []types.Path
	Observed []types.Path
	Missing  []types.Path
	// Suspects are the switches common to every missing path (the
	// endpoints' ToRs excluded — healthy subflows prove them innocent).
	Suspects []types.SwitchID
}

// DiagnoseBlackhole compares the flow's observed per-path records against
// the canonical equal-cost path set and joins the missing paths.
func DiagnoseBlackhole(c *controller.Controller, flow types.FlowID, tr types.TimeRange) (*BlackholeDiagnosis, error) {
	dst := c.Topo.HostByIP(flow.DstIP)
	if dst == nil {
		return nil, errNoData("destination host")
	}
	res, err := c.QueryHost(dst.ID, query.Query{
		Op: query.OpPaths, Flow: flow, Link: types.AnyLink, Range: tr,
	})
	if err != nil {
		return nil, err
	}
	router := topology.NewRouter(c.Topo)
	d := &BlackholeDiagnosis{
		Flow:     flow,
		Expected: router.EqualCostPaths(flow.SrcIP, flow.DstIP),
		Observed: res.Paths,
	}
	observed := make(map[string]bool, len(d.Observed))
	for _, p := range d.Observed {
		observed[p.Key()] = true
	}
	for _, p := range d.Expected {
		if !observed[p.Key()] {
			d.Missing = append(d.Missing, p)
		}
	}
	d.Suspects = joinPaths(d.Missing, c.Topo.ToROf(flow.SrcIP), c.Topo.ToROf(flow.DstIP))
	return d, nil
}

// joinPaths intersects the switch sets of the missing paths, dropping the
// shared endpoint ToRs.
func joinPaths(missing []types.Path, srcToR, dstToR types.SwitchID) []types.SwitchID {
	if len(missing) == 0 {
		return nil
	}
	counts := make(map[types.SwitchID]int)
	for _, p := range missing {
		seen := make(map[types.SwitchID]bool, len(p))
		for _, s := range p {
			if s == srcToR || s == dstToR || seen[s] {
				continue
			}
			seen[s] = true
			counts[s]++
		}
	}
	var out []types.SwitchID
	// Preserve first-missing-path order for determinism.
	for _, s := range missing[0] {
		if counts[s] == len(missing) {
			out = append(out, s)
			counts[s] = -1 // emit once
		}
	}
	return out
}
