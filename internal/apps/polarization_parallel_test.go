package apps

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"pathdump/internal/controller"
	"pathdump/internal/query"
	"pathdump/internal/topology"
	"pathdump/internal/types"
)

// sweepTransport is a synthetic transport for exercising RankPolarization's
// concurrency: every query answers deterministic per-link flows after an
// injected delay, and the transport tracks how many distinct switches have
// queries in flight at once (the sweep-level concurrency, as opposed to the
// per-query host fan-out, which is always concurrent).
type sweepTransport struct {
	delay time.Duration

	mu       sync.Mutex
	inFlight map[types.SwitchID]int
	maxSw    int
}

func newSweepTransport(delay time.Duration) *sweepTransport {
	return &sweepTransport{delay: delay, inFlight: map[types.SwitchID]int{}}
}

func (s *sweepTransport) enter(sw types.SwitchID) {
	s.mu.Lock()
	s.inFlight[sw]++
	n := 0
	for _, c := range s.inFlight {
		if c > 0 {
			n++
		}
	}
	if n > s.maxSw {
		s.maxSw = n
	}
	s.mu.Unlock()
}

func (s *sweepTransport) leave(sw types.SwitchID) {
	s.mu.Lock()
	s.inFlight[sw]--
	s.mu.Unlock()
}

func (s *sweepTransport) maxSwitches() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxSw
}

// Query answers per-link synthetic data: every uplink of switch A sees
// flows, skewed so that uplink index 0 carries more than the rest (a mild
// polarization whose λ varies by switch, making the ranking non-trivial
// but deterministic).
func (s *sweepTransport) Query(ctx context.Context, host types.HostID, q query.Query) (query.Result, controller.QueryMeta, error) {
	s.enter(q.Link.A)
	defer s.leave(q.Link.A)
	if s.delay > 0 {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
			return query.Result{}, controller.QueryMeta{}, ctx.Err()
		}
	}
	res := query.Result{Op: q.Op}
	nflows := 1
	if int(q.Link.B)%2 == 0 {
		nflows = 2 + int(q.Link.A)%3
	}
	switch q.Op {
	case query.OpFlows:
		for i := 0; i < nflows; i++ {
			res.Flows = append(res.Flows, types.Flow{
				ID:   types.FlowID{SrcIP: types.IP(uint32(q.Link.A)<<16 | uint32(i)), DstIP: types.IP(host), SrcPort: 1, DstPort: 80, Proto: types.ProtoTCP},
				Path: types.Path{q.Link.A, q.Link.B},
			})
		}
	case query.OpRecords:
		res.Records = []types.Record{{Bytes: uint64(nflows) * 1000, Pkts: 1}}
	}
	return res, controller.QueryMeta{RecordsScanned: 1}, nil
}

func (s *sweepTransport) Install(ctx context.Context, host types.HostID, q query.Query, period types.Time) (int, error) {
	return 0, nil
}

func (s *sweepTransport) Uninstall(ctx context.Context, host types.HostID, id int) error {
	return nil
}

// sweepRig builds a controller over the synthetic transport with a small
// host list, so injected per-query delay dominates the sweep's wall time.
func sweepRig(t testing.TB, delay time.Duration) (*controller.Controller, []types.HostID, []types.SwitchID, *sweepTransport) {
	topo, err := topology.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	tr := newSweepTransport(delay)
	c := controller.New(topo, tr, nil)
	hosts := []types.HostID{0, 1}
	return c, hosts, topo.ToRs(), tr
}

// TestRankPolarizationParallel: the sweep overlaps per-switch detections
// when Parallelism allows, honours the bound when it doesn't, and ranks
// identically either way (the determinism the indexed-slot design buys).
func TestRankPolarizationParallel(t *testing.T) {
	c, hosts, sws, tr := sweepRig(t, 0)
	c.Parallelism = 1
	serial, err := RankPolarization(c, hosts, sws, types.AllTime, 1e9, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.maxSwitches(); got != 1 {
		t.Fatalf("Parallelism=1 sweep had %d switches in flight at once", got)
	}
	if len(serial) != len(sws) {
		t.Fatalf("ranked %d of %d switches", len(serial), len(sws))
	}
	for i := 1; i < len(serial); i++ {
		a, b := serial[i-1], serial[i]
		if a.Lambda < b.Lambda || (a.Lambda == b.Lambda && a.Switch > b.Switch) {
			t.Fatalf("rank order violated at %d: (λ=%v sw=%v) before (λ=%v sw=%v)", i, a.Lambda, a.Switch, b.Lambda, b.Switch)
		}
	}

	c2, hosts2, sws2, tr2 := sweepRig(t, 5*time.Millisecond)
	c2.Parallelism = 0 // unbounded: every switch sweeps at once
	start := time.Now()
	parallel, err := RankPolarization(c2, hosts2, sws2, types.AllTime, 1e9, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if got := tr2.maxSwitches(); got < 2 {
		t.Fatalf("unbounded sweep never overlapped switches (max %d)", got)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel ranking diverged from serial reference:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	// Each detection is 2 uplinks × 2 ops = 4 sequential delayed waves, so
	// a serial sweep of 8 ToRs pays ≥ 8×4×5ms = 160ms of injected delay
	// while the overlapped sweep pays one detection's worth (~20ms). The
	// halfway bound leaves plenty of slack for scheduler noise yet cannot
	// pass without overlap.
	serialFloor := time.Duration(len(sws2)) * 4 * 5 * time.Millisecond
	if elapsed >= serialFloor/2 {
		t.Fatalf("unbounded sweep took %v, not under half the serial floor %v", elapsed, serialFloor)
	}
}

// BenchmarkPolarizationSweep measures the fleet-wide sweep with a fixed
// 200µs per-query transport delay: serial is the Parallelism=1 baseline
// (the pre-parallel behaviour), parallel the unbounded sweep.
func BenchmarkPolarizationSweep(b *testing.B) {
	run := func(b *testing.B, parallelism int) {
		c, hosts, sws, _ := sweepRig(b, 200*time.Microsecond)
		c.Parallelism = parallelism
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := RankPolarization(c, hosts, sws, types.AllTime, 1e9, 1<<30); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, 0) })
}
