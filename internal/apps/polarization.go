package apps

import (
	"sort"
	"sync"

	"pathdump/internal/controller"
	"pathdump/internal/query"
	"pathdump/internal/types"
)

// PolarizationReport is the result of an ECMP hash-polarization check at
// one switch: how the flows crossing it split over its equal-cost
// uplinks. A healthy hash spreads flows near-evenly; a degenerate or
// correlated hash (the classic polarization bug: every switch in a tier
// computing the same function over the same fields) concentrates them
// on one uplink while the rest idle.
type PolarizationReport struct {
	// Switch is the inspected switch; Uplinks its equal-cost next hops.
	Switch  types.SwitchID
	Uplinks []types.SwitchID
	// FlowsPerUplink and BytesPerUplink are the observed spread, keyed
	// in Uplinks order.
	FlowsPerUplink []int
	BytesPerUplink []uint64
	// TotalFlows counts distinct flows observed across all uplinks.
	TotalFlows int
	// Lambda is the paper's imbalance metric λ = (Lmax/L̄ − 1)·100%
	// computed over the per-uplink flow counts.
	Lambda float64
	// Polarized reports whether the spread crossed the caller's
	// threshold with enough flows to be statistically meaningful.
	Polarized bool
}

// DetectPolarization inspects how flows leaving sw split across its
// equal-cost uplinks, using only end-host TIB evidence (OpFlows per
// directed sw→uplink link). It flags polarization when λ over the
// per-uplink flow counts reaches lambdaThresh (percent) with at least
// minFlows distinct flows, and then raises one ECMP_POLARIZED alarm
// through the controller pipeline — repeated detections of the same
// switch fold into one history entry under the suppression window.
func DetectPolarization(c *controller.Controller, hosts []types.HostID, sw types.SwitchID, tr types.TimeRange, lambdaThresh float64, minFlows int) (*PolarizationReport, error) {
	node := c.Topo.Switch(sw)
	if node == nil {
		return nil, errNoData("switch")
	}
	rep := &PolarizationReport{Switch: sw, Uplinks: node.Up}
	seen := make(map[types.FlowID]bool)
	var exemplar types.FlowID
	var exemplarPath types.Path
	var hottest int
	for _, up := range node.Up {
		link := types.LinkID{A: sw, B: up}
		res, _, err := c.Execute(hosts, query.Query{Op: query.OpFlows, Link: link, Range: tr})
		if err != nil {
			return nil, err
		}
		flows := 0
		var bytes uint64
		perLink := make(map[types.FlowID]bool)
		for _, fl := range res.Flows {
			if !perLink[fl.ID] {
				perLink[fl.ID] = true
				flows++
			}
			if !seen[fl.ID] {
				seen[fl.ID] = true
				rep.TotalFlows++
			}
		}
		// Bytes ride along from raw records (one scan per uplink).
		rec, _, err := c.Execute(hosts, query.Query{Op: query.OpRecords, Link: link, Range: tr})
		if err != nil {
			return nil, err
		}
		for i := range rec.Records {
			bytes += rec.Records[i].Bytes
		}
		rep.FlowsPerUplink = append(rep.FlowsPerUplink, flows)
		rep.BytesPerUplink = append(rep.BytesPerUplink, bytes)
		if flows > hottest && len(res.Flows) > 0 {
			hottest = flows
			fl := pickExemplar(res.Flows)
			exemplar, exemplarPath = fl.ID, fl.Path
		}
	}
	loads := make([]float64, len(rep.FlowsPerUplink))
	for i, n := range rep.FlowsPerUplink {
		loads[i] = float64(n)
	}
	rep.Lambda = ImbalanceRate(loads)
	rep.Polarized = rep.TotalFlows >= minFlows && rep.Lambda >= lambdaThresh
	if rep.Polarized {
		c.RaiseAlarm(types.Alarm{
			Host:   hotUplinkHost(c, exemplar),
			Flow:   exemplar,
			Reason: types.ReasonPolarized,
			Paths:  []types.Path{exemplarPath},
			At:     c.VirtualNow(),
		})
	}
	return rep, nil
}

// pickExemplar returns the lexicographically smallest flow so the alarm
// payload — and therefore the suppression key — is deterministic across
// repeated detections.
func pickExemplar(flows []types.Flow) types.Flow {
	best := flows[0]
	for _, fl := range flows[1:] {
		if fl.ID.String() < best.ID.String() {
			best = fl
		}
	}
	return best
}

// hotUplinkHost resolves the host that observed the exemplar flow (its
// destination), falling back to host 0 when the flow is foreign.
func hotUplinkHost(c *controller.Controller, f types.FlowID) types.HostID {
	if h := c.Topo.HostByIP(f.DstIP); h != nil {
		return h.ID
	}
	return 0
}

// RankPolarization runs DetectPolarization over a set of switches and
// returns the reports sorted by λ descending — the fleet-wide sweep an
// operator runs when polarization is suspected but not yet localised.
//
// The per-switch detections run concurrently, bounded by the
// controller's Parallelism knob (<= 0 = one goroutine per switch): each
// detection is a couple of fan-outs whose wall time is dominated by
// waiting on agents, so a serial sweep of S switches pays S round-trip
// waves for no reason. The output is deterministic regardless of
// completion order — reports land in indexed slots, errors are reported
// in switch order, and the final sort breaks λ ties by switch ID.
func RankPolarization(c *controller.Controller, hosts []types.HostID, sws []types.SwitchID, tr types.TimeRange, lambdaThresh float64, minFlows int) ([]*PolarizationReport, error) {
	reps := make([]*PolarizationReport, len(sws))
	errs := make([]error, len(sws))
	var sem chan struct{}
	if c.Parallelism > 0 {
		sem = make(chan struct{}, c.Parallelism)
	}
	var wg sync.WaitGroup
	for i, sw := range sws {
		wg.Add(1)
		go func(i int, sw types.SwitchID) {
			defer wg.Done()
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			reps[i], errs[i] = DetectPolarization(c, hosts, sw, tr, lambdaThresh, minFlows)
		}(i, sw)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out []*PolarizationReport
	for _, rep := range reps {
		if rep.TotalFlows > 0 {
			out = append(out, rep)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lambda != out[j].Lambda {
			return out[i].Lambda > out[j].Lambda
		}
		return out[i].Switch < out[j].Switch
	})
	return out, nil
}
