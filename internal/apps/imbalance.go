package apps

import (
	"math"
	"sort"

	"pathdump/internal/controller"
	"pathdump/internal/query"
	"pathdump/internal/types"
)

// FlowSizeDistribution runs the §2.3 load-imbalance diagnosis: a
// multi-level query collecting, for each link of interest, the histogram
// of flow sizes observed crossing it. Cross-comparing the per-link
// distributions tells the operator the degree — and the cause — of load
// imbalance (Fig. 5c).
func FlowSizeDistribution(c *controller.Controller, hosts []types.HostID, links []types.LinkID, tr types.TimeRange, binBytes uint64, fanouts []int) ([]query.LinkHist, controller.ExecStats, error) {
	res, stats, err := c.ExecuteTree(hosts, query.Query{
		Op: query.OpFSD, Links: links, Range: tr, BinBytes: binBytes,
	}, fanouts)
	return res.Hists, stats, err
}

// ImbalanceRate is the paper's metric λ = (Lmax/L̄ − 1)·100% over a set of
// link loads [31] (Fig. 5b).
func ImbalanceRate(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var sum, max float64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	mean := sum / float64(len(loads))
	if mean == 0 {
		return 0
	}
	return (max/mean - 1) * 100
}

// LinkBytes sums the bytes every flow carried over each of the given
// links within the range (the raw loads behind ImbalanceRate).
func LinkBytes(c *controller.Controller, hosts []types.HostID, links []types.LinkID, tr types.TimeRange) (map[types.LinkID]uint64, error) {
	out := make(map[types.LinkID]uint64, len(links))
	for _, l := range links {
		res, _, err := c.Execute(hosts, query.Query{Op: query.OpRecords, Link: l, Range: tr})
		if err != nil {
			return nil, err
		}
		for _, rec := range res.Records {
			out[l] += rec.Bytes
		}
	}
	return out, nil
}

// CDF converts a histogram into (value, cumulative fraction) points for
// plotting (Figs. 5b/5c are CDFs).
func CDF(h query.LinkHist) [][2]float64 {
	var total uint64
	for _, b := range h.Bins {
		total += b
	}
	if total == 0 {
		return nil
	}
	var out [][2]float64
	var cum uint64
	for i, b := range h.Bins {
		if b == 0 {
			continue
		}
		cum += b
		size := float64(uint64(i+1) * h.BinBytes)
		out = append(out, [2]float64{size, float64(cum) / float64(total)})
	}
	return out
}

// Percentile reads a value off CDF points (0 < p ≤ 1).
func Percentile(points [][2]float64, p float64) float64 {
	if len(points) == 0 {
		return math.NaN()
	}
	i := sort.Search(len(points), func(i int) bool { return points[i][1] >= p })
	if i >= len(points) {
		i = len(points) - 1
	}
	return points[i][0]
}

// SubflowBytes reports the per-path traffic split of a single flow from
// its destination TIB — the §4.2 packet-spraying analysis (Fig. 6). The
// result is sorted by path string for stable output.
func SubflowBytes(c *controller.Controller, flow types.FlowID, tr types.TimeRange) ([]PathBytes, error) {
	dst := c.Topo.HostByIP(flow.DstIP)
	if dst == nil {
		return nil, errNoData("destination host")
	}
	paths, err := c.QueryHost(dst.ID, query.Query{Op: query.OpPaths, Flow: flow, Link: types.AnyLink, Range: tr})
	if err != nil {
		return nil, err
	}
	if len(paths.Paths) == 0 {
		return nil, errNoData(flow.String())
	}
	out := make([]PathBytes, 0, len(paths.Paths))
	for _, p := range paths.Paths {
		cnt, err := c.QueryHost(dst.ID, query.Query{Op: query.OpCount, Flow: flow, Path: p, Range: tr})
		if err != nil {
			return nil, err
		}
		out = append(out, PathBytes{Path: p, Bytes: cnt.Bytes, Pkts: cnt.Pkts})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path.String() < out[j].Path.String() })
	return out, nil
}

// PathBytes is one subflow's traffic on one path.
type PathBytes struct {
	Path  types.Path
	Bytes uint64
	Pkts  uint64
}

// SprayImbalance quantifies how unevenly a sprayed flow's subflows spread:
// the imbalance rate over per-path byte counts. The §4.2 real-time monitor
// installs a query alarming when this exceeds a threshold.
func SprayImbalance(sub []PathBytes) float64 {
	loads := make([]float64, len(sub))
	for i, s := range sub {
		loads[i] = float64(s.Bytes)
	}
	return ImbalanceRate(loads)
}
