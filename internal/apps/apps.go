// Package apps implements the paper's debugging applications (§2.3, §4)
// on top of the controller API: path conformance, load-imbalance
// diagnosis, packet-spray analysis, silent-drop localisation (via
// MAX-COVERAGE), blackhole diagnosis, TCP outcast diagnosis, top-k flows,
// traffic matrices, DDoS source analysis, waypoint and isolation checks.
// Each application is a thin composition over getFlows / getPaths /
// getCount / getDuration / getPoorTCPFlows plus the controller's
// execute/install primitives — which is the paper's central argument:
// once trajectories live at the edge, debugging tools are small.
package apps

import (
	"fmt"
	"sort"

	"pathdump/internal/controller"
	"pathdump/internal/query"
	"pathdump/internal/types"
)

// InstallPathConformance installs the §2.3 path-conformance query at the
// given hosts: alarms fire for paths of maxLen or more switches, paths
// traversing an avoided switch, or paths missing a waypoint. period 0
// checks every new record.
func InstallPathConformance(c *controller.Controller, hosts []types.HostID, maxLen int, avoid, waypoints []types.SwitchID, period types.Time) (map[types.HostID]int, error) {
	return c.Install(hosts, query.Query{
		Op:         query.OpConformance,
		MaxPathLen: maxLen,
		Avoid:      avoid,
		Waypoints:  waypoints,
	}, period)
}

// InstallTCPMonitor installs the active monitoring query (§3.2): every
// period (the paper uses 200 ms), flows whose consecutive retransmissions
// reach threshold raise POOR_PERF alarms.
func InstallTCPMonitor(c *controller.Controller, hosts []types.HostID, threshold int, period types.Time) (map[types.HostID]int, error) {
	return c.Install(hosts, query.Query{Op: query.OpPoorTCP, Threshold: threshold}, period)
}

// TopK returns the k largest flows across the given hosts, executed
// through the multi-level aggregation tree when fanouts is non-empty
// (§2.3 top-k example).
func TopK(c *controller.Controller, hosts []types.HostID, k int, tr types.TimeRange, fanouts []int) ([]query.FlowBytes, controller.ExecStats, error) {
	res, stats, err := c.ExecuteTree(hosts, query.Query{Op: query.OpTopK, K: k, Range: tr}, fanouts)
	return res.Top, stats, err
}

// TrafficMatrix aggregates the ToR-to-ToR byte matrix across hosts (§2.3).
func TrafficMatrix(c *controller.Controller, hosts []types.HostID, tr types.TimeRange) ([]query.MatrixCell, error) {
	res, _, err := c.Execute(hosts, query.Query{Op: query.OpMatrix, Range: tr})
	return res.Matrix, err
}

// DDoSSources ranks traffic sources observed at a victim host (§2.3's
// DDoS diagnosis): bytes received per source address.
func DDoSSources(c *controller.Controller, victim types.HostID, tr types.TimeRange) ([]query.FlowBytes, error) {
	res, err := c.QueryHost(victim, query.Query{Op: query.OpFlows, Link: types.AnyLink, Range: tr})
	if err != nil {
		return nil, err
	}
	perSrc := make(map[types.IP]*query.FlowBytes)
	for _, fl := range res.Flows {
		cnt, err := c.QueryHost(victim, query.Query{Op: query.OpCount, Flow: fl.ID, Range: tr})
		if err != nil {
			return nil, err
		}
		fb := perSrc[fl.ID.SrcIP]
		if fb == nil {
			fb = &query.FlowBytes{Flow: types.FlowID{SrcIP: fl.ID.SrcIP}}
			perSrc[fl.ID.SrcIP] = fb
		}
		fb.Bytes += cnt.Bytes
		fb.Pkts += cnt.Pkts
	}
	out := make([]query.FlowBytes, 0, len(perSrc))
	for _, fb := range perSrc {
		out = append(out, *fb)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Flow.SrcIP < out[j].Flow.SrcIP
	})
	return out, nil
}

// WaypointViolations finds flows whose paths missed a mandatory waypoint
// switch (§2.3 waypoint routing).
func WaypointViolations(c *controller.Controller, hosts []types.HostID, waypoint types.SwitchID, tr types.TimeRange) ([]query.Violation, error) {
	res, _, err := c.Execute(hosts, query.Query{
		Op: query.OpConformance, Waypoints: []types.SwitchID{waypoint}, Range: tr,
	})
	return res.Violations, err
}

// IsolationPolicy whitelists communicating host pairs (Table 2's
// "isolation: check if hosts are allowed to talk").
type IsolationPolicy struct {
	allowed map[[2]types.IP]bool
}

// NewIsolationPolicy builds an empty policy.
func NewIsolationPolicy() *IsolationPolicy {
	return &IsolationPolicy{allowed: make(map[[2]types.IP]bool)}
}

// Allow permits src→dst traffic.
func (p *IsolationPolicy) Allow(src, dst types.IP) { p.allowed[[2]types.IP{src, dst}] = true }

// IsolationViolations returns flows observed at the hosts that the policy
// does not permit.
func IsolationViolations(c *controller.Controller, hosts []types.HostID, p *IsolationPolicy, tr types.TimeRange) ([]types.FlowID, error) {
	res, _, err := c.Execute(hosts, query.Query{Op: query.OpFlows, Link: types.AnyLink, Range: tr})
	if err != nil {
		return nil, err
	}
	seen := make(map[types.FlowID]bool)
	var out []types.FlowID
	for _, fl := range res.Flows {
		if seen[fl.ID] {
			continue
		}
		seen[fl.ID] = true
		if !p.allowed[[2]types.IP{fl.ID.SrcIP, fl.ID.DstIP}] {
			out = append(out, fl.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out, nil
}

// CongestedLinkFlows returns the flows crossing a given link, ranked by
// bytes — Table 2's congested-link diagnosis ("find flows using a
// congested link, to help rerouting").
func CongestedLinkFlows(c *controller.Controller, hosts []types.HostID, link types.LinkID, tr types.TimeRange) ([]query.FlowBytes, error) {
	res, _, err := c.Execute(hosts, query.Query{Op: query.OpFlows, Link: link, Range: tr})
	if err != nil {
		return nil, err
	}
	var out []query.FlowBytes
	for _, fl := range res.Flows {
		dst := c.Topo.HostByIP(fl.ID.DstIP)
		if dst == nil {
			continue
		}
		cnt, err := c.QueryHost(dst.ID, query.Query{Op: query.OpCount, Flow: fl.ID, Range: tr})
		if err != nil {
			return nil, err
		}
		out = append(out, query.FlowBytes{Flow: fl.ID, Bytes: cnt.Bytes, Pkts: cnt.Pkts})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Flow.String() < out[j].Flow.String()
	})
	return out, nil
}

// hostsOfTopo lists every host ID of the controller's topology.
func hostsOfTopo(c *controller.Controller) []types.HostID {
	hosts := c.Topo.Hosts()
	out := make([]types.HostID, len(hosts))
	for i, h := range hosts {
		out[i] = h.ID
	}
	return out
}

// errNoData standardises "nothing recorded" failures.
func errNoData(what string) error { return fmt.Errorf("apps: no TIB data for %s", what) }
