package apps

import (
	"testing"

	"pathdump/internal/agent"
	"pathdump/internal/cherrypick"
	"pathdump/internal/controller"
	"pathdump/internal/netsim"
	"pathdump/internal/tcp"
	"pathdump/internal/topology"
	"pathdump/internal/types"
	"pathdump/internal/workload"
)

// rig is the standard 4-ary fat-tree test cluster.
type rig struct {
	sim    *netsim.Sim
	ctrl   *controller.Controller
	agents map[types.HostID]*agent.Agent
	stacks map[types.HostID]*tcp.Stack
	hosts  []types.HostID
}

func newRig(t *testing.T, cfg netsim.Config) *rig {
	t.Helper()
	topo, err := topology.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := cherrypick.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.New(topo, scheme, cfg)
	r := &rig{
		sim:    sim,
		agents: make(map[types.HostID]*agent.Agent),
		stacks: make(map[types.HostID]*tcp.Stack),
	}
	r.ctrl = controller.New(topo, controller.Local{Agents: r.agents}, sim)
	for _, h := range topo.Hosts() {
		st := tcp.NewStack(sim, h.ID, tcp.Config{})
		r.stacks[h.ID] = st
		r.agents[h.ID] = agent.New(sim, h, st, r.ctrl, agent.Config{})
		r.hosts = append(r.hosts, h.ID)
	}
	return r
}

func (r *rig) flowID(src, dst *topology.Host, port uint16) types.FlowID {
	return types.FlowID{SrcIP: src.IP, DstIP: dst.IP, SrcPort: port, DstPort: 80, Proto: types.ProtoTCP}
}

func TestFlowSizeDistributionAndImbalance(t *testing.T) {
	r := newRig(t, netsim.Config{Seed: 1})
	topo := r.sim.Topo
	srcs := topo.HostsAt(topo.ToRID(0, 0))
	dst := topo.HostsAt(topo.ToRID(1, 0))[0]
	// Two flow sizes from the same source rack.
	for i := 0; i < 8; i++ {
		size := int64(5_000)
		if i%2 == 0 {
			size = 60_000
		}
		src := srcs[i%2]
		r.stacks[src.ID].StartFlow(r.flowID(src, dst, uint16(6000+i)), size, size, nil)
	}
	r.sim.RunAll()

	links := []types.LinkID{
		{A: topo.ToRID(0, 0), B: topo.AggID(0, 0)},
		{A: topo.ToRID(0, 0), B: topo.AggID(0, 1)},
	}
	hists, stats, err := FlowSizeDistribution(r.ctrl, r.hosts, links, types.AllTime, 10_000, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(hists) != 2 || stats.Hosts != len(r.hosts) {
		t.Fatalf("hists=%d hosts=%d", len(hists), stats.Hosts)
	}
	var flowsSeen uint64
	for _, h := range hists {
		for _, b := range h.Bins {
			flowsSeen += b
		}
		if pts := CDF(h); len(pts) > 0 {
			if pts[len(pts)-1][1] != 1.0 {
				t.Errorf("CDF does not reach 1: %v", pts)
			}
			if Percentile(pts, 0.5) <= 0 {
				t.Error("bad percentile")
			}
		}
	}
	if flowsSeen != 8 {
		t.Errorf("histograms cover %d flows, want 8", flowsSeen)
	}

	// Imbalance metric sanity.
	if got := ImbalanceRate([]float64{1, 1}); got != 0 {
		t.Errorf("balanced rate = %v", got)
	}
	if got := ImbalanceRate([]float64{3, 1}); got != 50 {
		t.Errorf("3:1 rate = %v, want 50", got)
	}
	if got := ImbalanceRate(nil); got != 0 {
		t.Errorf("empty rate = %v", got)
	}

	// Raw link loads.
	loads, err := LinkBytes(r.ctrl, r.hosts, links, types.AllTime)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, b := range loads {
		total += b
	}
	if total == 0 {
		t.Error("no bytes attributed to ToR uplinks")
	}
}

func TestSubflowBytesUnderSpraying(t *testing.T) {
	r := newRig(t, netsim.Config{Seed: 2, Spray: true})
	topo := r.sim.Topo
	src := topo.HostsAt(topo.ToRID(0, 0))[0]
	dst := topo.HostsAt(topo.ToRID(2, 0))[0]
	f := r.flowID(src, dst, 7000)
	r.stacks[src.ID].StartFlow(f, 2_000_000, 0, nil)
	r.sim.RunAll()

	sub, err := SubflowBytes(r.ctrl, f, types.AllTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 4 {
		t.Fatalf("sprayed flow used %d paths, want 4", len(sub))
	}
	imb := SprayImbalance(sub)
	if imb < 0 || imb > 60 {
		t.Errorf("random spray imbalance = %.1f%%", imb)
	}
	// Unknown flow errors.
	if _, err := SubflowBytes(r.ctrl, r.flowID(src, dst, 9999), types.AllTime); err == nil {
		t.Error("unknown flow accepted")
	}
}

func TestBlackholeDiagnosis(t *testing.T) {
	r := newRig(t, netsim.Config{Seed: 3, Spray: true})
	topo := r.sim.Topo
	src := topo.HostsAt(topo.ToRID(0, 0))[0]
	dst := topo.HostsAt(topo.ToRID(2, 0))[0]

	// Blackhole one aggregate→core link in the source pod.
	aggS := topo.AggID(0, 0)
	core := topo.CoreID(0)
	r.sim.SetBlackhole(aggS, core, true)

	f := r.flowID(src, dst, 7100)
	r.stacks[src.ID].StartFlow(f, 500_000, 0, nil)
	r.sim.Run(5 * types.Second) // flow cannot complete; let records expire

	d, err := DiagnoseBlackhole(r.ctrl, f, types.AllTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Expected) != 4 {
		t.Fatalf("expected paths = %d", len(d.Expected))
	}
	if len(d.Missing) != 1 {
		t.Fatalf("missing paths = %v", d.Missing)
	}
	if !d.Missing[0].ContainsLink(types.LinkID{A: aggS, B: core}) {
		t.Errorf("missing path %v does not cross the blackhole", d.Missing[0])
	}
	// §4.4: one missing path ⇒ three suspects (src agg, core, dst agg).
	if len(d.Suspects) != 3 {
		t.Fatalf("suspects = %v, want 3", d.Suspects)
	}
	found := false
	for _, s := range d.Suspects {
		if s == core {
			found = true
		}
	}
	if !found {
		t.Errorf("true culprit's neighbourhood not in suspects %v", d.Suspects)
	}
}

func TestBlackholeAtToRAggNarrowsToAgg(t *testing.T) {
	r := newRig(t, netsim.Config{Seed: 4, Spray: true})
	topo := r.sim.Topo
	src := topo.HostsAt(topo.ToRID(0, 0))[0]
	dst := topo.HostsAt(topo.ToRID(2, 0))[0]
	// Blackhole the ToR→agg link in the source pod: kills 2 subflows.
	aggS := topo.AggID(0, 1)
	r.sim.SetBlackhole(src.ToR, aggS, true)
	f := r.flowID(src, dst, 7200)
	r.stacks[src.ID].StartFlow(f, 500_000, 0, nil)
	r.sim.Run(5 * types.Second)

	d, err := DiagnoseBlackhole(r.ctrl, f, types.AllTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Missing) != 2 {
		t.Fatalf("missing = %d paths, want 2", len(d.Missing))
	}
	// Joining both missing paths keeps the shared source aggregate and
	// the shared destination aggregate (its core group serves both
	// missing paths) — the paper's "four common switches" minus the two
	// endpoint ToRs (§4.4).
	if len(d.Suspects) != 2 || d.Suspects[0] != aggS {
		t.Fatalf("suspects = %v, want [%v, dst agg]", d.Suspects, aggS)
	}
}

func TestTopKMatrixDDoSWaypointIsolation(t *testing.T) {
	r := newRig(t, netsim.Config{Seed: 5})
	topo := r.sim.Topo
	a := topo.HostsAt(topo.ToRID(0, 0))[0]
	b := topo.HostsAt(topo.ToRID(1, 0))[0]
	c := topo.HostsAt(topo.ToRID(2, 0))[0]
	r.stacks[a.ID].StartFlow(r.flowID(a, c, 8000), 100_000, 0, nil)
	r.stacks[b.ID].StartFlow(r.flowID(b, c, 8001), 10_000, 0, nil)
	r.stacks[a.ID].StartFlow(r.flowID(a, b, 8002), 1_000, 0, nil)
	r.sim.RunAll()

	top, _, err := TopK(r.ctrl, r.hosts, 2, types.AllTime, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0].Flow.SrcIP != a.IP || top[0].Flow.DstIP != c.IP {
		t.Fatalf("top = %v", top)
	}

	cells, err := TrafficMatrix(r.ctrl, r.hosts, types.AllTime)
	if err != nil {
		t.Fatal(err)
	}
	// Data flows: a→c, b→c, a→b; plus reverse ACK streams: 6 ToR pairs.
	if len(cells) < 3 {
		t.Fatalf("matrix cells = %v", cells)
	}

	srcs, err := DDoSSources(r.ctrl, c.ID, types.AllTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 2 || srcs[0].Flow.SrcIP != a.IP {
		t.Fatalf("ddos sources = %v", srcs)
	}

	// Waypoint: require all paths through a's ToR — flows b→c violate.
	viol, err := WaypointViolations(r.ctrl, []types.HostID{c.ID}, topo.ToRID(0, 0), types.AllTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(viol) == 0 {
		t.Error("no waypoint violations found")
	}

	// Isolation: allow only a→c; b→c (and ACK streams) violate.
	pol := NewIsolationPolicy()
	pol.Allow(a.IP, c.IP)
	iv, err := IsolationViolations(r.ctrl, []types.HostID{c.ID}, pol, types.AllTime)
	if err != nil {
		t.Fatal(err)
	}
	foundB := false
	for _, f := range iv {
		if f.SrcIP == b.IP && f.DstIP == c.IP {
			foundB = true
		}
		if f.SrcIP == a.IP && f.DstIP == c.IP {
			t.Error("allowed pair flagged")
		}
	}
	if !foundB {
		t.Errorf("isolation violations = %v", iv)
	}

	// Congested-link diagnosis: flows on a's ToR uplink ranked by bytes.
	flows, err := CongestedLinkFlows(r.ctrl, r.hosts, types.LinkID{A: topo.ToRID(0, 0), B: types.WildcardSwitch}, types.AllTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) < 2 || flows[0].Bytes < flows[1].Bytes {
		t.Errorf("congested link flows = %v", flows)
	}
}

func TestSilentDropDebuggerEndToEnd(t *testing.T) {
	r := newRig(t, netsim.Config{Seed: 6, BandwidthBps: 20e6})
	topo := r.sim.Topo
	d := NewSilentDropDebugger(r.ctrl)
	// Install the paper's 200 ms TCP monitor everywhere.
	if _, err := InstallTCPMonitor(r.ctrl, r.hosts, 3, 200*types.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Fault one aggregate→core interface at 3%.
	bad := types.LinkID{A: topo.AggID(0, 0), B: topo.CoreID(0)}
	r.sim.SetSilentDrop(bad.A, bad.B, 0.03)

	// Fabric-wide background traffic (the ratio scoring needs healthy
	// flows on every link as denominators).
	hosts := topo.Hosts()
	gen, err := workload.NewGenerator(r.sim, r.stacks, workload.GenConfig{
		Sources: r.hosts, Dests: r.hosts,
		Load: 0.7, LinkBps: 20e6,
		Dist:  workload.WebSearch(),
		Until: 40 * types.Second, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen.Start()
	r.sim.Run(40 * types.Second)
	_ = hosts

	if d.Signatures() == 0 {
		t.Fatal("no failure signatures collected")
	}
	recall, precision := d.Accuracy([]types.LinkID{bad})
	if recall != 1.0 {
		t.Errorf("recall = %v, want 1 (hypothesis %v)", recall, d.Localize())
	}
	// 40 virtual seconds is early in Fig. 7 terms: recall converges first,
	// precision later, so a couple of false positives are acceptable here.
	if precision < 0.3 {
		t.Errorf("precision = %v", precision)
	}
}

func TestOutcastDiagnosis(t *testing.T) {
	r := newRig(t, netsim.Config{Seed: 7, QueueBytes: 20_000, BandwidthBps: 100e6})
	topo := r.sim.Topo
	recv := topo.HostsAt(topo.ToRID(0, 0))[0]

	var got *OutcastDiagnosis
	NewOutcastWatcher(r.ctrl, 3, func(d *OutcastDiagnosis) { got = d })
	if _, err := InstallTCPMonitor(r.ctrl, r.hosts, 2, 200*types.Millisecond); err != nil {
		t.Fatal(err)
	}

	// One close sender (same pod) competes with many far senders.
	close1 := topo.HostsAt(topo.ToRID(0, 1))[0]
	r.stacks[close1.ID].StartFlow(r.flowID(close1, recv, 9100), 3_000_000, 0, nil)
	for i := 0; i < 6; i++ {
		far := topo.HostsAt(topo.ToRID(1+i%3, i%2))[i%2]
		r.stacks[far.ID].StartFlow(r.flowID(far, recv, uint16(9101+i)), 3_000_000, 0, nil)
	}
	r.sim.Run(20 * types.Second)

	d, err := DiagnoseOutcast(r.ctrl, recv.IP, types.AllTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Senders) != 7 {
		t.Fatalf("senders = %d, want 7", len(d.Senders))
	}
	for _, s := range d.Senders {
		if s.ThroughputBps <= 0 {
			t.Errorf("sender %v throughput %v", s.Flow, s.ThroughputBps)
		}
	}
	_ = got // watcher may or may not have fired depending on loss pattern
}
