package apps

import (
	"sort"

	"pathdump/internal/controller"
	"pathdump/internal/query"
	"pathdump/internal/types"
)

// IncastEvent describes one detected many-to-one microburst: a window in
// which an anomalous number of distinct sources all started flows toward
// the same receiver — the partition-aggregate fan-in that collapses
// shallow ToR buffers.
type IncastEvent struct {
	// Receiver is the aggregator host whose TIB showed the burst.
	Receiver types.HostID
	// Window is the tightest interval containing the synchronized starts.
	Window types.TimeRange
	// Sources counts distinct source addresses in the window.
	Sources int
	// Flows lists the participating flows (sorted, deduplicated).
	Flows []types.FlowID
	// Bytes sums the participating flows' bytes at the receiver.
	Bytes uint64
}

// DetectIncast scans a receiver's TIB for a microburst: any sliding
// window of the given length in which flows from at least minSources
// distinct sources started. It needs only one OpRecords query at the
// receiver — flow start times (Record.STime) are already edge-local
// state, which is exactly the paper's point about debugging at the
// end host. On detection it raises one INCAST alarm through the
// controller pipeline; repeated detections of the same burst fold into
// one history entry under the suppression window.
func DetectIncast(c *controller.Controller, receiver types.HostID, window types.Time, minSources int, tr types.TimeRange) (*IncastEvent, error) {
	recv := c.Topo.Host(receiver)
	if recv == nil {
		return nil, errNoData("receiver")
	}
	res, err := c.QueryHost(receiver, query.Query{Op: query.OpRecords, Link: types.AnyLink, Range: tr})
	if err != nil {
		return nil, err
	}
	// One start per flow: a flow's earliest record is its arrival.
	starts := make(map[types.FlowID]types.Time)
	for i := range res.Records {
		rec := &res.Records[i]
		if rec.Flow.DstIP != recv.IP {
			continue
		}
		if st, ok := starts[rec.Flow]; !ok || rec.STime < st {
			starts[rec.Flow] = rec.STime
		}
	}
	if len(starts) == 0 {
		return nil, errNoData("incoming flows")
	}
	type arrival struct {
		at   types.Time
		flow types.FlowID
	}
	arr := make([]arrival, 0, len(starts))
	for f, at := range starts {
		arr = append(arr, arrival{at, f})
	}
	sort.Slice(arr, func(i, j int) bool {
		if arr[i].at != arr[j].at {
			return arr[i].at < arr[j].at
		}
		return arr[i].flow.String() < arr[j].flow.String()
	})
	// Slide the window over the sorted arrivals; take the densest window
	// (by distinct sources) that meets the threshold.
	var best *IncastEvent
	for lo := 0; lo < len(arr); lo++ {
		srcs := make(map[types.IP]bool)
		var flows []types.FlowID
		for hi := lo; hi < len(arr) && arr[hi].at-arr[lo].at <= window; hi++ {
			srcs[arr[hi].flow.SrcIP] = true
			flows = append(flows, arr[hi].flow)
			if len(srcs) >= minSources && (best == nil || len(srcs) > best.Sources) {
				ev := &IncastEvent{
					Receiver: receiver,
					Window:   types.TimeRange{From: arr[lo].at, To: arr[hi].at},
					Sources:  len(srcs),
					Flows:    append([]types.FlowID(nil), flows...),
				}
				best = ev
			}
		}
	}
	if best == nil {
		return nil, nil
	}
	sort.Slice(best.Flows, func(i, j int) bool { return best.Flows[i].String() < best.Flows[j].String() })
	for _, f := range best.Flows {
		cnt, err := c.QueryHost(receiver, query.Query{Op: query.OpCount, Flow: f, Range: tr})
		if err != nil {
			return nil, err
		}
		best.Bytes += cnt.Bytes
	}
	// The alarm key carries only the receiver (zero flow apart from the
	// destination), so re-detections of the same burst dedup.
	c.RaiseAlarm(types.Alarm{
		Host:   receiver,
		Flow:   types.FlowID{DstIP: recv.IP},
		Reason: types.ReasonIncast,
		At:     c.VirtualNow(),
	})
	return best, nil
}
