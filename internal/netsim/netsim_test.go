package netsim

import (
	"math/rand"
	"testing"

	"pathdump/internal/cherrypick"
	"pathdump/internal/topology"
	"pathdump/internal/types"
)

// capture is a Receiver that stores delivered packets.
type capture struct {
	pkts []*Packet
}

func (c *capture) Receive(pkt *Packet) { c.pkts = append(c.pkts, pkt) }

// trapRec records punted packets.
type trapRec struct {
	at   []types.SwitchID
	pkts []*Packet
}

func (t *trapRec) Trap(at types.SwitchID, pkt *Packet) {
	t.at = append(t.at, at)
	t.pkts = append(t.pkts, pkt)
}

// newFatTreeSim builds a 4-ary fat-tree simulator plus captures at every host.
func newFatTreeSim(t *testing.T, cfg Config) (*Sim, map[types.HostID]*capture) {
	t.Helper()
	topo, err := topology.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := cherrypick.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	s := New(topo, scheme, cfg)
	caps := make(map[types.HostID]*capture)
	for _, h := range topo.Hosts() {
		c := &capture{}
		caps[h.ID] = c
		s.SetReceiver(h.ID, c)
	}
	return s, caps
}

func flowBetween(a, b *topology.Host, port uint16) types.FlowID {
	return types.FlowID{SrcIP: a.IP, DstIP: b.IP, SrcPort: port, DstPort: 80, Proto: types.ProtoTCP}
}

func TestBasicDelivery(t *testing.T) {
	s, caps := newFatTreeSim(t, Config{})
	src := s.Topo.Hosts()[0]
	dst := s.Topo.HostsAt(s.Topo.ToRID(2, 1))[0]
	f := flowBetween(src, dst, 1000)
	if err := s.Send(src.ID, &Packet{Flow: f, Size: 1500}); err != nil {
		t.Fatal(err)
	}
	s.RunAll()
	got := caps[dst.ID].pkts
	if len(got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(got))
	}
	pkt := got[0]
	if err := s.Topo.ValidTrajectory(f.SrcIP, f.DstIP, pkt.Trace); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if len(pkt.Trace) != 5 {
		t.Errorf("inter-pod trace %v, want 5 switches", pkt.Trace)
	}
	rec, err := s.Scheme.Reconstruct(f.SrcIP, f.DstIP, pkt.Hdr)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Equal(pkt.Trace) {
		t.Errorf("reconstructed %v, actual %v", rec, pkt.Trace)
	}
	if s.Stats().Delivered != 1 {
		t.Errorf("stats.Delivered = %d", s.Stats().Delivered)
	}
}

func TestSendUnknownHost(t *testing.T) {
	s, _ := newFatTreeSim(t, Config{})
	if err := s.Send(types.HostID(9999), &Packet{Size: 100}); err == nil {
		t.Error("sending from unknown host should fail")
	}
}

// TestReconstructionMatchesTraceProperty is the central invariant of the
// whole tracing substrate: for random traffic under ECMP and spraying, with
// and without link failures, every delivered packet's sampled tags
// reconstruct to exactly the path it took.
func TestReconstructionMatchesTraceProperty(t *testing.T) {
	for _, spray := range []bool{false, true} {
		for _, withFailures := range []bool{false, true} {
			s, caps := newFatTreeSim(t, Config{Spray: spray, Seed: 42})
			if withFailures {
				// Take down one agg-core link and one agg-ToR link.
				s.FailLink(s.Topo.AggID(2, 0), s.Topo.CoreID(0))
				s.FailLink(s.Topo.AggID(1, 1), s.Topo.ToRID(1, 0))
			}
			s.SetTrapHandler(&trapRec{})
			rng := rand.New(rand.NewSource(7))
			hosts := s.Topo.Hosts()
			sent := 0
			for i := 0; i < 400; i++ {
				src := hosts[rng.Intn(len(hosts))]
				dst := hosts[rng.Intn(len(hosts))]
				if src.ID == dst.ID {
					continue
				}
				f := flowBetween(src, dst, uint16(1024+i))
				s.Send(src.ID, &Packet{Flow: f, Seq: uint64(i), Size: 1000})
				sent++
			}
			s.RunAll()
			delivered := 0
			for _, c := range caps {
				for _, pkt := range c.pkts {
					delivered++
					if err := s.Topo.ValidTrajectory(pkt.Flow.SrcIP, pkt.Flow.DstIP, pkt.Trace); err != nil {
						t.Fatalf("spray=%v fail=%v: trace invalid: %v", spray, withFailures, err)
					}
					rec, err := s.Scheme.Reconstruct(pkt.Flow.SrcIP, pkt.Flow.DstIP, pkt.Hdr)
					if err != nil {
						t.Fatalf("spray=%v fail=%v: reconstruct %v (trace %v): %v",
							spray, withFailures, pkt.Hdr.Tags(), pkt.Trace, err)
					}
					if !rec.Equal(pkt.Trace) {
						t.Fatalf("spray=%v fail=%v: reconstructed %v != actual %v",
							spray, withFailures, rec, pkt.Trace)
					}
				}
			}
			if delivered == 0 {
				t.Fatalf("spray=%v fail=%v: nothing delivered", spray, withFailures)
			}
			if !withFailures && uint64(delivered) != uint64(sent) {
				t.Errorf("spray=%v: delivered %d of %d on healthy fabric", spray, delivered, sent)
			}
		}
	}
}

func TestFailoverDetourIsTraced(t *testing.T) {
	s, caps := newFatTreeSim(t, Config{})
	trap := &trapRec{}
	s.SetTrapHandler(trap)
	src := s.Topo.Hosts()[0]
	dst := s.Topo.HostsAt(s.Topo.ToRID(2, 0))[0]

	// Find the canonical path of a probe flow, then fail its core→agg
	// downlink so the core must bounce via another pod.
	probe := flowBetween(src, dst, 5001)
	s.Send(src.ID, &Packet{Flow: probe, Size: 100})
	s.RunAll()
	if len(caps[dst.ID].pkts) != 1 {
		t.Fatal("probe not delivered")
	}
	canon := caps[dst.ID].pkts[0].Trace
	core := canon[2]
	s.FailLink(core, canon[3])

	s.Send(src.ID, &Packet{Flow: probe, Size: 100})
	s.RunAll()
	pkts := caps[dst.ID].pkts
	if len(pkts) == 2 {
		detour := pkts[1].Trace
		if len(detour) <= len(canon) {
			t.Errorf("expected a longer detour, got %v", detour)
		}
		rec, err := s.Scheme.Reconstruct(probe.SrcIP, probe.DstIP, pkts[1].Hdr)
		if err != nil {
			t.Fatalf("detour reconstruct: %v", err)
		}
		if !rec.Equal(detour) {
			t.Errorf("detour reconstructed %v != actual %v", rec, detour)
		}
	} else if len(trap.pkts) == 0 {
		// The re-ascent may hash back into the dead core repeatedly,
		// accumulating tags until the punt fires — also acceptable.
		t.Fatalf("packet neither delivered nor trapped (delivered=%d)", len(pkts)-1)
	}
}

func TestRoutingLoopTrapsAtController(t *testing.T) {
	s, caps := newFatTreeSim(t, Config{})
	trap := &trapRec{}
	s.SetTrapHandler(trap)
	src := s.Topo.Hosts()[0]
	dst := s.Topo.HostsAt(s.Topo.ToRID(2, 0))[0]
	f := flowBetween(src, dst, 6001)

	// Probe to learn the flow's actual ECMP path, then misconfigure the
	// destination-pod aggregation switch on that path to bounce packets
	// back up — a routing loop through the core (§4.5).
	s.Send(src.ID, &Packet{Flow: f, Size: 100})
	s.RunAll()
	probe := caps[dst.ID].pkts[0].Trace
	core, aggD := probe[2], probe[3]
	j := s.Topo.CoreGroup(s.Topo.Switch(core).Index)
	aggOther := s.Topo.AggID(3, j)
	s.SetNextHopOverride(aggD, func(pkt *Packet, _ []types.SwitchID, _ NodeID) (types.SwitchID, bool) {
		return core, true
	})
	s.SetNextHopOverride(core, func(pkt *Packet, _ []types.SwitchID, ingress NodeID) (types.SwitchID, bool) {
		if ingress == SwitchNode(aggD) {
			return aggOther, true
		}
		return aggD, true
	})
	s.SetNextHopOverride(aggOther, func(pkt *Packet, _ []types.SwitchID, _ NodeID) (types.SwitchID, bool) {
		return core, true
	})

	s.Send(src.ID, &Packet{Flow: f, Size: 100})
	s.RunAll()
	if len(trap.pkts) != 1 {
		t.Fatalf("trapped %d packets, want 1", len(trap.pkts))
	}
	if len(caps[dst.ID].pkts) != 1 { // only the probe
		t.Error("looped packet must not be delivered")
	}
	if got := trap.pkts[0]; !got.Hdr.Overflow() {
		t.Errorf("trapped packet carries %d tags, want >%d", len(got.Hdr.VLANs), types.MaxVLANTags)
	}
	if s.Stats().Punts != 1 {
		t.Errorf("Punts = %d", s.Stats().Punts)
	}
}

func TestSilentDropAndBlackhole(t *testing.T) {
	s, caps := newFatTreeSim(t, Config{Seed: 3})
	src := s.Topo.Hosts()[0]
	dstSame := s.Topo.HostsAt(src.ToR)[1]
	f := flowBetween(src, dstSame, 7001)
	// Same-ToR traffic crosses only host links; fault the ToR→host side
	// cannot be addressed via SwitchID, so fault a switch link instead:
	// use an intra-pod flow through agg(0,0).
	dstPod := s.Topo.HostsAt(s.Topo.ToRID(0, 1))[0]
	f2 := flowBetween(src, dstPod, 7002)

	// Determine the agg the flow hashes through.
	s.Send(src.ID, &Packet{Flow: f2, Size: 100})
	s.RunAll()
	agg := caps[dstPod.ID].pkts[0].Trace[1]

	s.SetSilentDrop(src.ToR, agg, 1.0)
	for i := 0; i < 10; i++ {
		s.Send(src.ID, &Packet{Flow: f2, Seq: uint64(i), Size: 100})
	}
	s.RunAll()
	if len(caps[dstPod.ID].pkts) != 1 {
		t.Errorf("silent drop leaked packets: %d", len(caps[dstPod.ID].pkts))
	}
	if got := s.Stats().SilentDrops(); got != 10 {
		t.Errorf("SilentDrops = %d, want 10", got)
	}
	if got := s.Stats().LinkDrops(src.ToR, agg); got != 10 {
		t.Errorf("LinkDrops = %d, want 10", got)
	}

	// Blackhole on the reverse direction link.
	s.SetSilentDrop(src.ToR, agg, 0)
	s.SetBlackhole(src.ToR, agg, true)
	s.Send(src.ID, &Packet{Flow: f2, Size: 100})
	s.RunAll()
	if got := s.Stats().BlackholeDrops(); got != 1 {
		t.Errorf("BlackholeDrops = %d, want 1", got)
	}
	_ = f
}

func TestCongestionDropTail(t *testing.T) {
	s, caps := newFatTreeSim(t, Config{QueueBytes: 3000, BandwidthBps: 1e6})
	src := s.Topo.Hosts()[0]
	dst := s.Topo.HostsAt(s.Topo.ToRID(0, 1))[0]
	f := flowBetween(src, dst, 8001)
	for i := 0; i < 50; i++ {
		s.Send(src.ID, &Packet{Flow: f, Seq: uint64(i), Size: 1500})
	}
	s.RunAll()
	st := s.Stats()
	if st.CongestionDrops() == 0 {
		t.Error("expected congestion drops with a 2-packet queue")
	}
	if len(caps[dst.ID].pkts) == 0 {
		t.Error("some packets should still get through")
	}
	if st.CongestionDrops()+st.Delivered != 50 {
		t.Errorf("conservation violated: %d dropped + %d delivered != 50",
			st.CongestionDrops(), st.Delivered)
	}
}

func TestAdminLinkFailureAndRestore(t *testing.T) {
	s, caps := newFatTreeSim(t, Config{})
	src := s.Topo.Hosts()[0]
	dst := s.Topo.HostsAt(s.Topo.ToRID(0, 1))[0]
	f := flowBetween(src, dst, 9001)
	// Fail both agg uplinks of the source ToR: no route at all.
	s.FailLink(src.ToR, s.Topo.AggID(0, 0))
	s.FailLink(src.ToR, s.Topo.AggID(0, 1))
	s.Send(src.ID, &Packet{Flow: f, Size: 100})
	s.RunAll()
	if len(caps[dst.ID].pkts) != 0 {
		t.Error("packet delivered despite no live uplink")
	}
	if s.Stats().NoRouteDrops() == 0 {
		t.Error("expected a no-route drop")
	}
	s.RestoreLink(src.ToR, s.Topo.AggID(0, 0))
	s.Send(src.ID, &Packet{Flow: f, Size: 100})
	s.RunAll()
	if len(caps[dst.ID].pkts) != 1 {
		t.Error("packet not delivered after restore")
	}
}

func TestTTLExhaustion(t *testing.T) {
	s, _ := newFatTreeSim(t, Config{DisableTagging: true, TTL: 8})
	src := s.Topo.Hosts()[0]
	dst := s.Topo.HostsAt(s.Topo.ToRID(2, 0))[0]
	f := flowBetween(src, dst, 9501)
	// Ping-pong loop between ToR and agg with tagging disabled (so no
	// punt rescues the packet): TTL must kill it.
	agg := s.Topo.AggID(0, 0)
	s.SetNextHopOverride(src.ToR, func(pkt *Packet, _ []types.SwitchID, _ NodeID) (types.SwitchID, bool) {
		return agg, true
	})
	s.SetNextHopOverride(agg, func(pkt *Packet, _ []types.SwitchID, _ NodeID) (types.SwitchID, bool) {
		return src.ToR, true
	})
	s.Send(src.ID, &Packet{Flow: f, Size: 100})
	s.RunAll()
	if s.Stats().TTLDrops() != 1 {
		t.Errorf("TTLDrops = %d, want 1", s.Stats().TTLDrops())
	}
}

func TestSchedulerOrdering(t *testing.T) {
	s, _ := newFatTreeSim(t, Config{})
	var order []int
	s.At(100, func() { order = append(order, 2) })
	s.At(50, func() { order = append(order, 1) })
	s.At(100, func() { order = append(order, 3) }) // FIFO at equal times
	s.Run(75)
	if len(order) != 1 || order[0] != 1 {
		t.Fatalf("after Run(75): %v", order)
	}
	if s.Now() != 75 {
		t.Errorf("Now = %v, want 75", s.Now())
	}
	s.RunAll()
	if len(order) != 3 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("final order %v", order)
	}
	// After schedules relative to now.
	s.After(10, func() { order = append(order, 4) })
	if s.Pending() != 1 {
		t.Error("Pending != 1")
	}
	s.RunAll()
	if s.Now() != 110 {
		t.Errorf("Now = %v, want 110", s.Now())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		s, _ := newFatTreeSim(t, Config{Seed: 99})
		s.SetSilentDrop(s.Topo.ToRID(0, 0), s.Topo.AggID(0, 0), 0.3)
		src := s.Topo.Hosts()[0]
		dst := s.Topo.HostsAt(s.Topo.ToRID(1, 0))[0]
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 200; i++ {
			f := flowBetween(src, dst, uint16(rng.Intn(5000)))
			s.Send(src.ID, &Packet{Flow: f, Seq: uint64(i), Size: 500})
		}
		s.RunAll()
		return s.Stats().Delivered, s.Stats().SilentDrops()
	}
	d1, s1 := run()
	d2, s2 := run()
	if d1 != d2 || s1 != s2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", d1, s1, d2, s2)
	}
	if s1 == 0 {
		t.Error("no silent drops at p=0.3?")
	}
}

func TestVL2SimDelivery(t *testing.T) {
	topo, err := topology.VL2(8, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := cherrypick.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	s := New(topo, scheme, Config{})
	caps := make(map[types.HostID]*capture)
	for _, h := range topo.Hosts() {
		c := &capture{}
		caps[h.ID] = c
		s.SetReceiver(h.ID, c)
	}
	rng := rand.New(rand.NewSource(11))
	hosts := topo.Hosts()
	for i := 0; i < 200; i++ {
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		if src.ID == dst.ID {
			continue
		}
		f := flowBetween(src, dst, uint16(1024+i))
		s.Send(src.ID, &Packet{Flow: f, Size: 800})
	}
	s.RunAll()
	checked := 0
	for _, c := range caps {
		for _, pkt := range c.pkts {
			rec, err := s.Scheme.Reconstruct(pkt.Flow.SrcIP, pkt.Flow.DstIP, pkt.Hdr)
			if err != nil {
				t.Fatalf("VL2 reconstruct (trace %v): %v", pkt.Trace, err)
			}
			if !rec.Equal(pkt.Trace) {
				t.Fatalf("VL2 reconstructed %v != actual %v", rec, pkt.Trace)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no VL2 packets delivered")
	}
}
