package netsim

import (
	"fmt"

	"pathdump/internal/cherrypick"
	"pathdump/internal/types"
)

// Packet is one simulated packet. Switches forward it, tag it with sampled
// link IDs, and may drop or punt it; the destination host's edge datapath
// consumes the header.
type Packet struct {
	Flow types.FlowID
	// Seq is the segment index for data packets and the cumulative
	// acknowledgement for ACKs.
	Seq uint64
	// XmitID distinguishes transmissions of the same segment: packet
	// spraying hashes on it, so a retransmission can take a different
	// path than the lost original (as real per-packet spraying does).
	// Zero means "first transmission" and falls back to Seq.
	XmitID uint64
	// Size is the wire size in bytes.
	Size int
	// Ack marks TCP acknowledgements; Fin marks the final segment of a
	// flow (the edge datapath evicts the flow record when it sees it).
	Ack bool
	Fin bool
	// Hdr carries the trajectory information (DSCP + VLAN stack).
	Hdr cherrypick.Header
	// TTL bounds forwarding in the presence of loops.
	TTL int
	// SentAt is the send timestamp (for RTT accounting by TCP).
	SentAt types.Time
	// Meta is opaque sender metadata visible to switch overrides; the
	// load-imbalance experiment uses it to carry the flow size so a
	// misconfigured switch can split traffic by size (§4.2).
	Meta int64

	// Trace is simulator-side ground truth: every switch the packet
	// actually visited. It never influences forwarding and exists so
	// tests and experiments can compare reconstructed trajectories
	// against reality.
	Trace types.Path
}

// String renders the packet compactly.
func (p *Packet) String() string {
	kind := "data"
	if p.Ack {
		kind = "ack"
	}
	return fmt.Sprintf("%s %s seq=%d %dB tags=%v", kind, p.Flow, p.Seq, p.Size, p.Hdr.Tags())
}

// NodeID identifies any simulated node (switch, host, or the controller)
// in one key space, for link-state maps.
type NodeID int64

const (
	nodeSwitchBase NodeID = 0
	nodeHostBase   NodeID = 1 << 32
)

// SwitchNode converts a switch ID to a node ID.
func SwitchNode(s types.SwitchID) NodeID { return nodeSwitchBase + NodeID(s) }

// HostNode converts a host ID to a node ID.
func HostNode(h types.HostID) NodeID { return nodeHostBase + NodeID(h) }
