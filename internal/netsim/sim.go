// Package netsim is a deterministic, packet-level, discrete-event
// simulator of a datacenter network: the substrate standing in for the
// paper's hardware testbed. It models
//
//   - links with bandwidth, propagation delay, and drop-tail output queues;
//   - switches that forward along canonical equal-cost routes (flow-level
//     ECMP or per-packet spraying), apply CherryPick tag rules, fail over
//     to live neighbours when canonical next hops are down, and punt
//     packets whose VLAN stack exceeds the commodity-ASIC parse limit to
//     the controller (the paper's suspicious-path trap, §3.1);
//   - failure injection: administrative link failures, silent random drops
//     at an interface, blackholes, and per-switch next-hop overrides (used
//     to build routing loops and pathological load balancers);
//   - hosts whose receive path hands packets to a pluggable Receiver (the
//     PathDump edge datapath).
//
// Everything runs on one virtual clock with a seeded RNG, so every
// experiment in this repository is reproducible bit for bit.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"pathdump/internal/cherrypick"
	"pathdump/internal/topology"
	"pathdump/internal/types"
)

// Receiver consumes packets delivered to a host.
type Receiver interface {
	Receive(pkt *Packet)
}

// TrapHandler consumes packets punted to the controller because their VLAN
// stack overflowed the ASIC parse limit.
type TrapHandler interface {
	Trap(at types.SwitchID, pkt *Packet)
}

// Config parameterises the simulated fabric. Zero values select the
// defaults noted on each field.
type Config struct {
	// BandwidthBps is the link rate (default 1 Gbps).
	BandwidthBps int64
	// LinkDelay is per-link propagation delay (default 5 µs).
	LinkDelay types.Time
	// SwitchDelay is per-hop processing latency (default 1 µs).
	SwitchDelay types.Time
	// QueueBytes is the drop-tail capacity of each output port
	// (default 150 000 bytes ≈ 100 MTU packets).
	QueueBytes int
	// PuntDelay is the switch→controller slow-path latency for trapped
	// packets (default 20 ms — commodity OpenFlow punt path).
	PuntDelay types.Time
	// Spray selects per-packet spraying instead of flow-level ECMP.
	Spray bool
	// TTL is the initial hop budget of injected packets (default 64).
	TTL int
	// Seed seeds the simulation RNG.
	Seed int64
	// DisableTagging turns CherryPick tagging off (vanilla fabric, used
	// by ablation benchmarks).
	DisableTagging bool
}

func (c Config) withDefaults() Config {
	if c.BandwidthBps == 0 {
		c.BandwidthBps = 1e9
	}
	if c.LinkDelay == 0 {
		c.LinkDelay = 5 * types.Microsecond
	}
	if c.SwitchDelay == 0 {
		c.SwitchDelay = 1 * types.Microsecond
	}
	if c.QueueBytes == 0 {
		c.QueueBytes = 150000
	}
	if c.PuntDelay == 0 {
		c.PuntDelay = 20 * types.Millisecond
	}
	if c.TTL == 0 {
		c.TTL = 64
	}
	return c
}

// event is one scheduled callback.
type event struct {
	at  types.Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// linkState is the per-directed-link transmission state.
type linkState struct {
	busyUntil types.Time
	down      bool
	blackhole bool
	silentP   float64
	imp       Impairment
}

type linkKey struct{ from, to NodeID }

// override customises next-hop selection at one switch.
type override func(pkt *Packet, canonical []types.SwitchID, ingress NodeID) (types.SwitchID, bool)

// Sim is one simulation instance.
type Sim struct {
	Topo   *topology.Topology
	Router *topology.Router
	Scheme cherrypick.Scheme

	cfg    Config
	now    types.Time
	seq    uint64
	events eventHeap
	rng    *rand.Rand

	links     map[linkKey]*linkState
	overrides map[types.SwitchID]override
	receivers map[types.HostID]Receiver
	trap      TrapHandler
	linkSubs  []func(LinkEvent)
	stats     Stats
}

// New builds a simulator over a topology with its CherryPick scheme.
func New(topo *topology.Topology, scheme cherrypick.Scheme, cfg Config) *Sim {
	cfg = cfg.withDefaults()
	return &Sim{
		Topo:      topo,
		Router:    topology.NewRouter(topo),
		Scheme:    scheme,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		links:     make(map[linkKey]*linkState),
		overrides: make(map[types.SwitchID]override),
		receivers: make(map[types.HostID]Receiver),
		stats:     newStats(),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() types.Time { return s.now }

// Config returns the effective configuration.
func (s *Sim) Config() Config { return s.cfg }

// Rand exposes the simulation RNG (for workload generators that must share
// the deterministic stream).
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Sim) At(t types.Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn after a delay.
func (s *Sim) After(d types.Time, fn func()) { s.At(s.now+d, fn) }

// Run processes events until the queue drains or virtual time passes
// until; it returns the number of events processed. The clock ends at
// until even if the queue drained earlier.
func (s *Sim) Run(until types.Time) int {
	n := 0
	for len(s.events) > 0 && s.events[0].at <= until {
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		e.fn()
		n++
	}
	if s.now < until {
		s.now = until
	}
	return n
}

// RunAll drains the event queue completely, returning events processed.
func (s *Sim) RunAll() int {
	n := 0
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		e.fn()
		n++
	}
	return n
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.events) }

// SetReceiver installs the packet consumer for a host.
func (s *Sim) SetReceiver(h types.HostID, r Receiver) { s.receivers[h] = r }

// SetTrapHandler installs the controller-side consumer of punted packets.
func (s *Sim) SetTrapHandler(t TrapHandler) { s.trap = t }

// SetNextHopOverride installs a custom next-hop selector at a switch
// (misconfigurations, size-based splitters, loop inducers). The function
// receives the canonical candidates and returns the hop to use; returning
// ok==false falls back to normal selection.
func (s *Sim) SetNextHopOverride(sw types.SwitchID, fn func(pkt *Packet, canonical []types.SwitchID, ingress NodeID) (types.SwitchID, bool)) {
	if fn == nil {
		delete(s.overrides, sw)
		return
	}
	s.overrides[sw] = fn
}

// link returns (allocating) the state of directed link from→to.
func (s *Sim) link(from, to NodeID) *linkState {
	k := linkKey{from, to}
	l := s.links[k]
	if l == nil {
		l = &linkState{}
		s.links[k] = l
	}
	return l
}

// FailLink administratively takes the a–b link down in both directions;
// adjacent switches observe it and route around, and link-state
// subscribers (OnLinkStateChange) are notified of the transition.
func (s *Sim) FailLink(a, b types.SwitchID) {
	was := s.adminDown(a, b)
	s.link(SwitchNode(a), SwitchNode(b)).down = true
	s.link(SwitchNode(b), SwitchNode(a)).down = true
	s.notifyLink(a, b, was)
}

// RestoreLink brings the a–b link back up.
func (s *Sim) RestoreLink(a, b types.SwitchID) {
	was := s.adminDown(a, b)
	s.link(SwitchNode(a), SwitchNode(b)).down = false
	s.link(SwitchNode(b), SwitchNode(a)).down = false
	s.notifyLink(a, b, was)
}

// SetSilentDrop makes the directed a→b interface drop packets at random
// with probability p without updating any visible counter — the paper's
// silent random packet drop failure (§4.3).
func (s *Sim) SetSilentDrop(a, b types.SwitchID, p float64) {
	s.link(SwitchNode(a), SwitchNode(b)).silentP = p
}

// SetBlackhole makes the directed a→b interface drop every packet
// silently (§4.4). Switches keep routing into it: they cannot see it.
func (s *Sim) SetBlackhole(a, b types.SwitchID, on bool) {
	s.link(SwitchNode(a), SwitchNode(b)).blackhole = on
}

// linkUp reports whether the directed link is administratively up (the
// only failure mode switches can observe) — either FailLink or an
// Impairment with Down set takes it out of next-hop selection.
func (s *Sim) linkUp(from, to NodeID) bool {
	if l, ok := s.links[linkKey{from, to}]; ok {
		return !l.down && !l.imp.Down
	}
	return true
}

// Send injects a packet from a host into the fabric.
func (s *Sim) Send(from types.HostID, pkt *Packet) error {
	h := s.Topo.Host(from)
	if h == nil {
		return fmt.Errorf("netsim: unknown host %v", from)
	}
	if pkt.TTL == 0 {
		pkt.TTL = s.cfg.TTL
	}
	pkt.SentAt = s.now
	s.transmit(HostNode(from), SwitchNode(h.ToR), pkt, func() {
		s.arriveAtSwitch(h.ToR, HostNode(from), pkt)
	})
	return nil
}

// Reinject puts a packet back into the fabric at a switch — used by the
// controller's loop detector after stripping tags (§4.5). The hop budget
// is refreshed so the packet can loop again and re-trap.
func (s *Sim) Reinject(at types.SwitchID, pkt *Packet) {
	if pkt.TTL <= 1 {
		pkt.TTL = s.cfg.TTL
	}
	s.arriveAtSwitch(at, SwitchNode(at), pkt)
}

// transmit models the directed link from→to: drop-tail admission, silent
// faults, impairments (throttle, loss, added delay), serialisation,
// propagation, then onArrive.
func (s *Sim) transmit(from, to NodeID, pkt *Packet, onArrive func()) {
	l := s.link(from, to)
	if l.down || l.imp.Down {
		s.stats.drop(dropNoRoute, from, to)
		return
	}
	bps := s.rate(l)
	if bps <= 0 {
		// Zero-bandwidth throttle: the packet can never serialise.
		s.stats.drop(dropImpaired, from, to)
		return
	}
	// Drop-tail queue: backlog is the untransmitted byte count implied
	// by busyUntil at the link's effective rate.
	backlog := int64(0)
	if l.busyUntil > s.now {
		backlog = int64(l.busyUntil-s.now) * bps / (8 * int64(types.Second))
	}
	if backlog+int64(pkt.Size) > int64(s.cfg.QueueBytes) {
		s.stats.drop(dropCongestion, from, to)
		return
	}
	if l.blackhole {
		s.stats.drop(dropBlackhole, from, to)
		return
	}
	if l.silentP > 0 && s.rng.Float64() < l.silentP {
		s.stats.drop(dropSilent, from, to)
		return
	}
	if l.imp.Loss > 0 && s.rng.Float64() < l.imp.Loss {
		s.stats.drop(dropImpaired, from, to)
		return
	}
	ser := types.Time(int64(pkt.Size) * 8 * int64(types.Second) / bps)
	start := l.busyUntil
	if start < s.now {
		start = s.now
	}
	l.busyUntil = start + ser
	s.At(l.busyUntil+s.cfg.LinkDelay+l.imp.Delay, onArrive)
}

// arriveAtSwitch performs one forwarding decision.
func (s *Sim) arriveAtSwitch(sw types.SwitchID, ingress NodeID, pkt *Packet) {
	pkt.Trace = append(pkt.Trace, sw)
	if !s.cfg.DisableTagging && pkt.Hdr.Overflow() {
		// The ASIC cannot parse past two VLAN tags: rule miss, punt.
		s.stats.Punts++
		if s.trap != nil {
			trapAt, p := sw, pkt
			s.After(s.cfg.PuntDelay, func() { s.trap.Trap(trapAt, p) })
		}
		return
	}
	pkt.TTL--
	if pkt.TTL <= 0 {
		s.stats.drop(dropTTL, ingress, SwitchNode(sw))
		return
	}

	canonical, deliver := s.Router.NextHops(sw, pkt.Flow.DstIP)
	// Overrides (misconfigurations) take precedence over everything.
	if ov, ok := s.overrides[sw]; ok {
		if next, ok := ov(pkt, canonical, ingress); ok {
			s.forwardTo(sw, next, pkt)
			return
		}
	}
	if deliver {
		dst := s.Topo.HostByIP(pkt.Flow.DstIP)
		s.transmit(SwitchNode(sw), HostNode(dst.ID), pkt, func() {
			s.deliver(dst.ID, pkt)
		})
		return
	}
	if next, ok := s.choose(sw, pkt, canonical, ingress); ok {
		s.forwardTo(sw, next, pkt)
		return
	}
	s.stats.drop(dropNoRoute, ingress, SwitchNode(sw))
}

// choose picks a next hop: live canonical candidates under ECMP/spray,
// else failover to a live neighbour (upward tiers first, never the ingress).
func (s *Sim) choose(sw types.SwitchID, pkt *Packet, canonical []types.SwitchID, ingress NodeID) (types.SwitchID, bool) {
	live := canonical[:0:0]
	for _, c := range canonical {
		if s.linkUp(SwitchNode(sw), SwitchNode(c)) {
			live = append(live, c)
		}
	}
	if len(live) > 0 {
		return live[s.pathIndex(pkt, sw, len(live))], true
	}
	// Failover: any live neighbour except where we came from, preferring
	// upward tiers (keeps detours CherryPick-decodable).
	node := s.Topo.Switch(sw)
	if node == nil {
		return 0, false
	}
	var alt []types.SwitchID
	for _, n := range node.Up {
		if SwitchNode(n) != ingress && s.linkUp(SwitchNode(sw), SwitchNode(n)) {
			alt = append(alt, n)
		}
	}
	if len(alt) == 0 {
		for _, n := range node.Down {
			if SwitchNode(n) != ingress && s.linkUp(SwitchNode(sw), SwitchNode(n)) {
				alt = append(alt, n)
			}
		}
	}
	if len(alt) == 0 {
		return 0, false
	}
	return alt[s.pathIndex(pkt, sw, len(alt))], true
}

// pathIndex returns the load-balancing index at switch sw for pkt.
func (s *Sim) pathIndex(pkt *Packet, sw types.SwitchID, n int) int {
	if s.cfg.Spray && !pkt.Ack {
		key := pkt.Seq
		if pkt.XmitID != 0 {
			key = pkt.XmitID
		}
		return topology.SprayIndex(pkt.Flow, key, uint32(sw), n)
	}
	return topology.ECMPIndex(pkt.Flow, uint32(sw), n)
}

// forwardTo tags and transmits a packet to the next switch.
func (s *Sim) forwardTo(sw, next types.SwitchID, pkt *Packet) {
	if !s.cfg.DisableTagging {
		cherrypick.Apply(s.Scheme, sw, next, pkt.Flow.DstIP, &pkt.Hdr)
	}
	s.After(s.cfg.SwitchDelay, func() {
		s.transmit(SwitchNode(sw), SwitchNode(next), pkt, func() {
			s.arriveAtSwitch(next, SwitchNode(sw), pkt)
		})
	})
}

// deliver hands a packet to the destination host's receiver.
func (s *Sim) deliver(h types.HostID, pkt *Packet) {
	s.stats.Delivered++
	s.stats.DeliveredBytes += uint64(pkt.Size)
	if r := s.receivers[h]; r != nil {
		r.Receive(pkt)
	}
}
