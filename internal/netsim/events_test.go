package netsim

import (
	"testing"

	"pathdump/internal/types"
)

// collectLinkEvents subscribes a recording sink on s.
func collectLinkEvents(s *Sim) *[]LinkEvent {
	var evs []LinkEvent
	s.OnLinkStateChange(func(ev LinkEvent) { evs = append(evs, ev) })
	return &evs
}

func TestLinkEventsFailRestore(t *testing.T) {
	s, _ := newFatTreeSim(t, Config{})
	evs := collectLinkEvents(s)
	a, b := types.SwitchID(0), types.SwitchID(16)

	s.FailLink(a, b)
	s.FailLink(a, b) // redundant: already down, must not fire again
	s.RestoreLink(a, b)
	s.RestoreLink(a, b) // redundant
	want := []LinkEvent{
		{A: a, B: b, Down: true, At: 0},
		{A: a, B: b, Down: false, At: 0},
	}
	if len(*evs) != len(want) {
		t.Fatalf("got %d events %+v, want %d", len(*evs), *evs, len(want))
	}
	for i, ev := range *evs {
		if ev != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, ev, want[i])
		}
	}
}

func TestLinkEventsCarryVirtualTime(t *testing.T) {
	s, _ := newFatTreeSim(t, Config{})
	evs := collectLinkEvents(s)
	a, b := types.SwitchID(0), types.SwitchID(16)

	at := 30 * types.Millisecond
	s.At(at, func() { s.FailLink(a, b) })
	s.RunAll()
	if len(*evs) != 1 || (*evs)[0].At != at {
		t.Fatalf("events = %+v, want one down event at %v", *evs, at)
	}
}

func TestLinkEventsImpairmentDownBit(t *testing.T) {
	s, _ := newFatTreeSim(t, Config{})
	evs := collectLinkEvents(s)
	a, b := types.SwitchID(0), types.SwitchID(16)

	// Delay/loss shaping leaves the link administratively up: no event.
	s.SetImpairment(a, b, Impairment{Loss: 0.5})
	if len(*evs) != 0 {
		t.Fatalf("loss-only impairment fired %+v, want none", *evs)
	}
	// Setting the Down bit is an observable transition; replacing it
	// with another Down impairment is not; clearing it brings it back.
	s.SetImpairment(a, b, Impairment{Down: true})
	s.SetImpairment(a, b, Impairment{Down: true, Loss: 0.5})
	s.ClearImpairment(a, b)
	want := []LinkEvent{
		{A: a, B: b, Down: true, At: 0},
		{A: a, B: b, Down: false, At: 0},
	}
	if len(*evs) != len(want) {
		t.Fatalf("got events %+v, want %+v", *evs, want)
	}
	for i, ev := range *evs {
		if ev != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, ev, want[i])
		}
	}
}

func TestLinkEventsFlap(t *testing.T) {
	s, _ := newFatTreeSim(t, Config{})
	evs := collectLinkEvents(s)
	a, b := types.SwitchID(0), types.SwitchID(16)

	// Three full down/up cycles: down at 0, 20ms, 40ms.
	s.FlapLink(a, b, 10*types.Millisecond, 10*types.Millisecond, 50*types.Millisecond)
	s.RunAll()
	var downs, ups int
	for _, ev := range *evs {
		if ev.Down {
			downs++
		} else {
			ups++
		}
	}
	if downs != 3 || ups != 3 {
		t.Fatalf("flap produced %d downs / %d ups (%+v), want 3/3", downs, ups, *evs)
	}
	if last := (*evs)[len(*evs)-1]; last.Down {
		t.Fatalf("flap left the link down: %+v", *evs)
	}
}
