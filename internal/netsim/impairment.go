package netsim

import "pathdump/internal/types"

// Impairment is the per-directed-link fault/shaping vector, modeled on
// the tc(8) vocabulary (netem delay/loss, tbf rate, ip link down): added
// propagation delay, random loss probability, a bandwidth throttle
// overriding the fabric rate, and an administrative down bit. The zero
// value is a healthy link. Impairments are mutable mid-run — setting or
// clearing one between events takes effect for every packet transmitted
// afterwards, which is how tests and scenarios model operator actions,
// rolling faults, and link flaps.
type Impairment struct {
	// Delay is added one-way propagation latency on top of the fabric's
	// configured LinkDelay (tc netem delay).
	Delay types.Time
	// Loss is the probability in [0, 1] that a packet admitted to the
	// link is dropped (tc netem loss). Loss 1 wedges every packet;
	// unlike SetSilentDrop these losses are counted as impairment drops
	// in the simulator's ground-truth stats.
	Loss float64
	// RateBps throttles the link's serialisation rate (tc tbf rate):
	// 0 keeps the fabric-wide Config.BandwidthBps, > 0 overrides it,
	// and < 0 models a zero-bandwidth link — nothing ever serialises,
	// every packet is dropped and counted.
	RateBps int64
	// Down takes the directed link administratively down (ip link set
	// down). Unlike Loss or a blackhole, adjacent switches observe it
	// and fail over, exactly as with FailLink.
	Down bool
}

// IsZero reports whether the impairment is the healthy zero value.
func (im Impairment) IsZero() bool { return im == Impairment{} }

// SetImpairment installs (or replaces) the impairment on the directed
// a→b link. It composes with FailLink/SetSilentDrop/SetBlackhole: every
// configured fault on the link still applies.
func (s *Sim) SetImpairment(a, b types.SwitchID, im Impairment) {
	was := s.adminDown(a, b)
	s.link(SwitchNode(a), SwitchNode(b)).imp = im
	s.notifyLink(a, b, was)
}

// ClearImpairment restores the directed a→b link to its healthy
// fabric-default behaviour.
func (s *Sim) ClearImpairment(a, b types.SwitchID) {
	was := s.adminDown(a, b)
	s.link(SwitchNode(a), SwitchNode(b)).imp = Impairment{}
	s.notifyLink(a, b, was)
}

// ImpairmentOf returns the impairment currently installed on the
// directed a→b link (the zero value when none is).
func (s *Sim) ImpairmentOf(a, b types.SwitchID) Impairment {
	if l, ok := s.links[linkKey{SwitchNode(a), SwitchNode(b)}]; ok {
		return l.imp
	}
	return Impairment{}
}

// FlapLink schedules an administrative flap of the a–b link: down for
// downFor, up for upFor, repeating until virtual time `until`, at which
// point the link is left up. The flap drives the same observable
// down/up state as FailLink/RestoreLink, so switches re-route during
// every down phase and fall back when the link returns.
func (s *Sim) FlapLink(a, b types.SwitchID, downFor, upFor, until types.Time) {
	if downFor <= 0 || upFor < 0 {
		return
	}
	var cycle func()
	cycle = func() {
		s.FailLink(a, b)
		s.After(downFor, func() {
			s.RestoreLink(a, b)
			next := s.Now() + upFor
			if next < until {
				s.At(next, cycle)
			}
		})
	}
	cycle()
}

// rate returns the effective serialisation rate of one directed link:
// the impairment throttle when set, else the fabric-wide default. A
// non-positive return means the link has zero bandwidth.
func (s *Sim) rate(l *linkState) int64 {
	if l.imp.RateBps != 0 {
		return l.imp.RateBps
	}
	return s.cfg.BandwidthBps
}
