package netsim

import "pathdump/internal/types"

// dropCause classifies packet losses. Silent and blackhole drops update
// only the simulator-side ground truth — the debugging applications must
// localise them from end-host evidence alone, exactly as in the paper.
type dropCause uint8

const (
	dropCongestion dropCause = iota // drop-tail queue overflow
	dropSilent                      // faulty interface, random
	dropBlackhole                   // faulty interface, total
	dropNoRoute                     // no live next hop / admin-down link
	dropTTL                         // hop budget exhausted (loops)
	dropImpaired                    // injected impairment (loss / zero rate)
	numDropCauses
)

// Stats aggregates simulator ground truth. Debugging applications never
// read it; tests and EXPERIMENTS.md use it to score recall/precision.
type Stats struct {
	Delivered      uint64
	DeliveredBytes uint64
	Punts          uint64

	dropsByCause [numDropCauses]uint64
	dropsByLink  map[linkKey]uint64
}

func newStats() Stats {
	return Stats{dropsByLink: make(map[linkKey]uint64)}
}

func (st *Stats) drop(cause dropCause, from, to NodeID) {
	st.dropsByCause[cause]++
	st.dropsByLink[linkKey{from, to}]++
}

// CongestionDrops returns queue-overflow losses.
func (st *Stats) CongestionDrops() uint64 { return st.dropsByCause[dropCongestion] }

// SilentDrops returns losses at silently faulty interfaces.
func (st *Stats) SilentDrops() uint64 { return st.dropsByCause[dropSilent] }

// BlackholeDrops returns losses at blackholed interfaces.
func (st *Stats) BlackholeDrops() uint64 { return st.dropsByCause[dropBlackhole] }

// NoRouteDrops returns packets with no live next hop.
func (st *Stats) NoRouteDrops() uint64 { return st.dropsByCause[dropNoRoute] }

// TTLDrops returns packets that exhausted their hop budget.
func (st *Stats) TTLDrops() uint64 { return st.dropsByCause[dropTTL] }

// ImpairedDrops returns losses caused by an injected Impairment — random
// loss probability or a zero-bandwidth throttle.
func (st *Stats) ImpairedDrops() uint64 { return st.dropsByCause[dropImpaired] }

// TotalDrops sums every loss cause.
func (st *Stats) TotalDrops() uint64 {
	var n uint64
	for _, c := range st.dropsByCause {
		n += c
	}
	return n
}

// LinkDrops returns the loss count on the directed switch-switch link a→b.
func (st *Stats) LinkDrops(a, b types.SwitchID) uint64 {
	return st.dropsByLink[linkKey{SwitchNode(a), SwitchNode(b)}]
}

// Stats returns a pointer to the simulator's counters.
func (s *Sim) Stats() *Stats { return &s.stats }
