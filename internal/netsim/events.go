package netsim

import "pathdump/internal/types"

// LinkEvent reports one administrative state transition of the a–b
// switch link: Down true when the link just left service (FailLink, an
// Impairment with the Down bit, or a FlapLink down phase), false when
// it returned. At is the virtual time of the transition.
//
// Only *observable* state changes fire events — the failure modes
// switches can see and route around. Silent drops and blackholes are
// invisible to the fabric by construction, so they never produce one;
// redundant calls (failing an already-down link) don't either.
type LinkEvent struct {
	A, B types.SwitchID
	Down bool
	At   types.Time
}

// OnLinkStateChange subscribes fn to administrative link transitions.
// Subscribers fire synchronously on the simulation goroutine, in
// registration order, at the virtual instant of the change — so a
// TransientLoopAuditor (or any failure-timeline consumer) sees the
// fabric's own events without an operator re-noting them.
func (s *Sim) OnLinkStateChange(fn func(LinkEvent)) {
	s.linkSubs = append(s.linkSubs, fn)
}

// adminDown reports whether the a–b link is administratively out of
// service in either direction — the union FailLink's bidirectional bit
// and per-direction Impairment Down bits feed into linkUp.
func (s *Sim) adminDown(a, b types.SwitchID) bool {
	return !s.linkUp(SwitchNode(a), SwitchNode(b)) || !s.linkUp(SwitchNode(b), SwitchNode(a))
}

// notifyLink fires subscribers when the a–b link's administrative state
// differs from `was` (its state before the mutation being reported).
func (s *Sim) notifyLink(a, b types.SwitchID, was bool) {
	down := s.adminDown(a, b)
	if down == was || len(s.linkSubs) == 0 {
		return
	}
	ev := LinkEvent{A: a, B: b, Down: down, At: s.now}
	for _, fn := range s.linkSubs {
		fn(ev)
	}
}
