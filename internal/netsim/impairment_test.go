package netsim

import (
	"testing"

	"pathdump/internal/types"
)

// sendAcross injects n packets of one inter-pod flow; every transmission
// shares the flow so ECMP pins the path.
func sendAcross(t *testing.T, s *Sim, n int) types.FlowID {
	t.Helper()
	srcH := s.Topo.Hosts()[0]
	dstH := s.Topo.HostsAt(s.Topo.ToRID(2, 1))[0]
	f := flowBetween(srcH, dstH, 2000)
	for i := 0; i < n; i++ {
		if err := s.Send(srcH.ID, &Packet{Flow: f, Seq: uint64(i), Size: 1000}); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// pathLinks returns the switch-switch hops of one delivered packet.
func pathLinks(pkt *Packet) [][2]types.SwitchID {
	var out [][2]types.SwitchID
	for i := 1; i < len(pkt.Trace); i++ {
		out = append(out, [2]types.SwitchID{pkt.Trace[i-1], pkt.Trace[i]})
	}
	return out
}

func TestImpairmentFullLoss(t *testing.T) {
	s, caps := newFatTreeSim(t, Config{})
	// Find the path first, then wedge its first switch-switch hop with
	// 100% loss: nothing gets through, and every loss is accounted as an
	// impairment drop (not silent, not congestion).
	f := sendAcross(t, s, 1)
	s.RunAll()
	dstH := s.Topo.HostByIP(f.DstIP)
	pkt := caps[dstH.ID].pkts[0]
	hop := pathLinks(pkt)[0]
	s.SetImpairment(hop[0], hop[1], Impairment{Loss: 1})

	before := caps[dstH.ID].pkts
	srcH := s.Topo.HostByIP(f.SrcIP)
	for i := 0; i < 20; i++ {
		if err := s.Send(srcH.ID, &Packet{Flow: f, Seq: uint64(100 + i), Size: 1000}); err != nil {
			t.Fatal(err)
		}
	}
	s.RunAll()
	if got := len(caps[dstH.ID].pkts) - len(before); got != 0 {
		t.Fatalf("100%% loss delivered %d packets, want 0", got)
	}
	if d := s.Stats().ImpairedDrops(); d != 20 {
		t.Fatalf("impaired drops = %d, want 20", d)
	}
	if s.Stats().SilentDrops() != 0 || s.Stats().CongestionDrops() != 0 {
		t.Fatalf("losses misattributed: %d silent, %d congestion",
			s.Stats().SilentDrops(), s.Stats().CongestionDrops())
	}
}

func TestImpairmentZeroBandwidth(t *testing.T) {
	s, caps := newFatTreeSim(t, Config{})
	f := sendAcross(t, s, 1)
	s.RunAll()
	dstH := s.Topo.HostByIP(f.DstIP)
	hop := pathLinks(caps[dstH.ID].pkts[0])[0]
	// RateBps < 0 models a zero-bandwidth link: packets can never
	// serialise, so they are dropped and counted rather than queued
	// forever (the simulation must stay live).
	s.SetImpairment(hop[0], hop[1], Impairment{RateBps: -1})

	srcH := s.Topo.HostByIP(f.SrcIP)
	delivered := len(caps[dstH.ID].pkts)
	for i := 0; i < 5; i++ {
		if err := s.Send(srcH.ID, &Packet{Flow: f, Seq: uint64(200 + i), Size: 1000}); err != nil {
			t.Fatal(err)
		}
	}
	s.RunAll()
	if got := len(caps[dstH.ID].pkts) - delivered; got != 0 {
		t.Fatalf("zero-bandwidth link delivered %d packets", got)
	}
	if d := s.Stats().ImpairedDrops(); d != 5 {
		t.Fatalf("impaired drops = %d, want 5", d)
	}
	if s.Pending() != 0 {
		t.Fatalf("%d events still pending after RunAll", s.Pending())
	}
}

func TestImpairmentThrottleAndDelay(t *testing.T) {
	s, caps := newFatTreeSim(t, Config{})
	f := sendAcross(t, s, 1)
	s.RunAll()
	dstH := s.Topo.HostByIP(f.DstIP)
	pkt := caps[dstH.ID].pkts[0]
	baseline := s.Now() - pkt.SentAt
	hop := pathLinks(pkt)[0]

	// A 1000x throttle plus 10 ms of added delay must push the same
	// transfer's completion time out by far more than the healthy run.
	s.SetImpairment(hop[0], hop[1], Impairment{RateBps: 1e6, Delay: 10 * types.Millisecond})
	srcH := s.Topo.HostByIP(f.SrcIP)
	start := s.Now()
	if err := s.Send(srcH.ID, &Packet{Flow: f, Seq: 300, Size: 1000}); err != nil {
		t.Fatal(err)
	}
	s.RunAll()
	if got := len(caps[dstH.ID].pkts); got != 2 {
		t.Fatalf("throttled packet not delivered (%d total)", got)
	}
	impaired := s.Now() - start
	if impaired <= baseline+10*types.Millisecond {
		t.Fatalf("impaired latency %v, want > baseline %v + 10ms", impaired, baseline)
	}

	// Clearing the impairment mid-run restores healthy latency.
	s.ClearImpairment(hop[0], hop[1])
	if !s.ImpairmentOf(hop[0], hop[1]).IsZero() {
		t.Fatal("impairment still installed after clear")
	}
	start = s.Now()
	if err := s.Send(srcH.ID, &Packet{Flow: f, Seq: 301, Size: 1000}); err != nil {
		t.Fatal(err)
	}
	s.RunAll()
	if healed := s.Now() - start; healed > baseline*2 {
		t.Fatalf("post-clear latency %v, want back near baseline %v", healed, baseline)
	}
}

func TestImpairmentAddRemoveMidFlow(t *testing.T) {
	s, caps := newFatTreeSim(t, Config{})
	f := sendAcross(t, s, 1)
	s.RunAll()
	dstH := s.Topo.HostByIP(f.DstIP)
	srcH := s.Topo.HostByIP(f.SrcIP)
	hop := pathLinks(caps[dstH.ID].pkts[0])[0]

	// Interleave sends with a loss impairment installed and removed
	// mid-flow: packets before and after get through, the wedged window
	// is fully dropped.
	send := func(seq uint64) {
		if err := s.Send(srcH.ID, &Packet{Flow: f, Seq: seq, Size: 1000}); err != nil {
			t.Fatal(err)
		}
	}
	base := len(caps[dstH.ID].pkts)
	send(400)
	s.RunAll()
	s.SetImpairment(hop[0], hop[1], Impairment{Loss: 1})
	send(401)
	send(402)
	s.RunAll()
	s.ClearImpairment(hop[0], hop[1])
	send(403)
	s.RunAll()
	if got := len(caps[dstH.ID].pkts) - base; got != 2 {
		t.Fatalf("delivered %d of the interleaved packets, want 2 (before + after)", got)
	}
	if d := s.Stats().ImpairedDrops(); d != 2 {
		t.Fatalf("impaired drops = %d, want 2", d)
	}
}

func TestImpairmentDownTriggersFailover(t *testing.T) {
	s, caps := newFatTreeSim(t, Config{})
	f := sendAcross(t, s, 1)
	s.RunAll()
	dstH := s.Topo.HostByIP(f.DstIP)
	srcH := s.Topo.HostByIP(f.SrcIP)
	pkt := caps[dstH.ID].pkts[0]
	// Down the packet's ToR→Agg hop via an impairment: unlike loss, the
	// switch observes it and fails over, so the packet still arrives on
	// a different path.
	hop := pathLinks(pkt)[0]
	s.SetImpairment(hop[0], hop[1], Impairment{Down: true})
	base := len(caps[dstH.ID].pkts)
	if err := s.Send(srcH.ID, &Packet{Flow: f, Seq: 500, Size: 1000}); err != nil {
		t.Fatal(err)
	}
	s.RunAll()
	got := caps[dstH.ID].pkts
	if len(got)-base != 1 {
		t.Fatalf("downed-link packet not re-routed (delivered %d)", len(got)-base)
	}
	rerouted := got[len(got)-1]
	for _, l := range pathLinks(rerouted) {
		if l == hop {
			t.Fatalf("re-routed trace %v still crosses downed hop %v", rerouted.Trace, hop)
		}
	}
}

func TestFlapLinkAlternates(t *testing.T) {
	s, caps := newFatTreeSim(t, Config{})
	f := sendAcross(t, s, 1)
	s.RunAll()
	dstH := s.Topo.HostByIP(f.DstIP)
	srcH := s.Topo.HostByIP(f.SrcIP)
	hop := pathLinks(caps[dstH.ID].pkts[0])[0]

	// 10 ms down / 10 ms up until t+100ms: probes sent every 2 ms keep
	// arriving throughout (failover covers the down phases), and the
	// flap leaves the link up at the end.
	start := s.Now()
	s.FlapLink(hop[0], hop[1], 10*types.Millisecond, 10*types.Millisecond, start+100*types.Millisecond)
	base := len(caps[dstH.ID].pkts)
	n := 50
	for i := 0; i < n; i++ {
		seq := uint64(600 + i)
		s.At(start+types.Time(i)*2*types.Millisecond, func() {
			_ = s.Send(srcH.ID, &Packet{Flow: f, Seq: seq, Size: 200})
		})
	}
	s.RunAll()
	if got := len(caps[dstH.ID].pkts) - base; got != n {
		t.Fatalf("flap lost probes: delivered %d of %d", got, n)
	}
	if !s.linkUp(SwitchNode(hop[0]), SwitchNode(hop[1])) {
		t.Fatal("link left down after flap window ended")
	}
}
