package cherrypick

import (
	"math/rand"
	"testing"

	"pathdump/internal/topology"
	"pathdump/internal/types"
)

// roundTrip tags a path hop by hop and checks reconstruction returns the
// identical path.
func roundTrip(t *testing.T, s Scheme, topo *topology.Topology, src, dst types.IP, p types.Path) Header {
	t.Helper()
	hdr := ApplyPath(s, p, dst)
	got, err := s.Reconstruct(src, dst, hdr)
	if err != nil {
		t.Fatalf("Reconstruct(%v->%v, %v, tags %v): %v", src, dst, p, hdr.Tags(), err)
	}
	if !got.Equal(p) {
		t.Fatalf("Reconstruct(%v->%v, tags %v) = %v, want %v", src, dst, hdr.Tags(), got, p)
	}
	return hdr
}

func TestFatTreeCanonicalRoundTrip(t *testing.T) {
	for _, k := range []int{4, 8} {
		topo, err := topology.FatTree(k)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewFatTree(topo)
		if err != nil {
			t.Fatal(err)
		}
		r := topology.NewRouter(topo)
		hosts := topo.Hosts()
		rng := rand.New(rand.NewSource(1))
		for trial := 0; trial < 50; trial++ {
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			for _, p := range r.EqualCostPaths(src.IP, dst.IP) {
				hdr := roundTrip(t, s, topo, src.IP, dst.IP, p)
				if len(hdr.VLANs) > 1 {
					t.Errorf("canonical path %v used %d tags, want ≤1", p, len(hdr.VLANs))
				}
			}
		}
	}
}

func TestVL2CanonicalRoundTrip(t *testing.T) {
	topo, err := topology.VL2(8, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewVL2(topo)
	if err != nil {
		t.Fatal(err)
	}
	r := topology.NewRouter(topo)
	hosts := topo.Hosts()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 80; trial++ {
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		for _, p := range r.EqualCostPaths(src.IP, dst.IP) {
			hdr := roundTrip(t, s, topo, src.IP, dst.IP, p)
			if len(hdr.VLANs) > 2 {
				t.Errorf("canonical VL2 path %v used %d VLAN tags, want ≤2", p, len(hdr.VLANs))
			}
			if len(p) > 1 && hdr.DSCP == 0 {
				t.Errorf("inter-ToR VL2 path %v left DSCP unused", p)
			}
		}
	}
}

// fig4Detour builds the paper's Figure-4 scenario: a core switch bounces a
// packet via another pod's aggregation switch when its canonical downlink
// fails, producing a 6-hop path traced with exactly two VLAN tags.
func TestFatTreeCoreBounceDetour(t *testing.T) {
	topo, _ := topology.FatTree(4)
	s, _ := NewFatTree(topo)
	src := topo.HostsAt(topo.ToRID(0, 0))[0]
	dst := topo.HostsAt(topo.ToRID(2, 0))[0]
	// srcToR → agg(0,0) → core0 → [link to agg(2,0) failed] →
	// agg(1,0) → core1 → agg(2,0) → dstToR
	p := types.Path{
		topo.ToRID(0, 0), topo.AggID(0, 0), topo.CoreID(0),
		topo.AggID(1, 0), topo.CoreID(1),
		topo.AggID(2, 0), topo.ToRID(2, 0),
	}
	if err := topo.ValidTrajectory(src.IP, dst.IP, p); err != nil {
		t.Fatalf("test path invalid: %v", err)
	}
	hdr := roundTrip(t, s, topo, src.IP, dst.IP, p)
	if len(hdr.VLANs) != 2 {
		t.Errorf("6-hop core bounce used %d tags, want exactly 2 (Fig. 4)", len(hdr.VLANs))
	}
	if hdr.Overflow() {
		t.Error("6-hop path must not overflow the ASIC tag limit")
	}
}

// TestFatTreeToRDetour exercises a blackhole-style detour in the
// destination pod: agg descends into the wrong ToR, which re-ascends.
func TestFatTreeToRDetour(t *testing.T) {
	topo, _ := topology.FatTree(4)
	s, _ := NewFatTree(topo)
	src := topo.HostsAt(topo.ToRID(0, 0))[0]
	dst := topo.HostsAt(topo.ToRID(2, 0))[0]
	p := types.Path{
		topo.ToRID(0, 0), topo.AggID(0, 1), topo.CoreID(2),
		topo.AggID(2, 1), topo.ToRID(2, 1), // wrong ToR
		topo.AggID(2, 0), topo.ToRID(2, 0),
	}
	if err := topo.ValidTrajectory(src.IP, dst.IP, p); err != nil {
		t.Fatalf("test path invalid: %v", err)
	}
	hdr := roundTrip(t, s, topo, src.IP, dst.IP, p)
	if len(hdr.VLANs) != 2 {
		t.Errorf("ToR detour used %d tags, want 2", len(hdr.VLANs))
	}
}

func TestFatTreeIntraPodDetour(t *testing.T) {
	topo, _ := topology.FatTree(4)
	s, _ := NewFatTree(topo)
	src := topo.HostsAt(topo.ToRID(0, 0))[0]
	dst := topo.HostsAt(topo.ToRID(0, 1))[0]
	// Canonical intra-pod: ToR(0,0)→agg(0,j)→ToR(0,1); detour bounces
	// via the other ToR first... here: agg(0,0) sends to ToR(0,0)? No —
	// detour shape: src ToR → agg(0,0) → (blackhole to dst ToR) back via
	// ToR? A realistic 4-hop intra-pod detour:
	p := types.Path{
		topo.ToRID(0, 0), topo.AggID(0, 0),
		topo.ToRID(0, 0), // bounced back down (failover)
		topo.AggID(0, 1), topo.ToRID(0, 1),
	}
	if err := topo.ValidTrajectory(src.IP, dst.IP, p); err != nil {
		t.Fatalf("test path invalid: %v", err)
	}
	hdr := roundTrip(t, s, topo, src.IP, dst.IP, p)
	if len(hdr.VLANs) != 2 {
		t.Errorf("intra-pod detour used %d tags, want 2", len(hdr.VLANs))
	}
}

func TestFatTreeOverflowAtShortestPlus4(t *testing.T) {
	topo, _ := topology.FatTree(4)
	s, _ := NewFatTree(topo)
	dst := topo.HostsAt(topo.ToRID(2, 0))[0]
	// 8-hop path: two core bounces.
	p := types.Path{
		topo.ToRID(0, 0), topo.AggID(0, 0), topo.CoreID(0),
		topo.AggID(1, 0), topo.CoreID(1),
		topo.AggID(3, 0), topo.CoreID(0),
		topo.AggID(2, 0), topo.ToRID(2, 0),
	}
	hdr := ApplyPath(s, p, dst.IP)
	if !hdr.Overflow() {
		t.Errorf("shortest+4 path carries %d tags; want overflow (>%d) to trap at controller",
			len(hdr.VLANs), types.MaxVLANTags)
	}
}

func TestFatTreeCapacityLimit(t *testing.T) {
	topo72, err := topology.FatTree(72)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFatTree(topo72); err != nil {
		t.Errorf("k=72 must fit the 12-bit space (paper's limit): %v", err)
	}
	topo74, err := topology.FatTree(74)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFatTree(topo74); err == nil {
		t.Error("k=74 should exceed the 12-bit link-ID space")
	}
}

func TestReconstructRejectsGarbage(t *testing.T) {
	topo, _ := topology.FatTree(4)
	s, _ := NewFatTree(topo)
	src := topo.Hosts()[0]
	dst := topo.HostsAt(topo.ToRID(2, 0))[0]
	cases := []Header{
		{},                               // no tags on an inter-pod flow
		{VLANs: []uint16{4095}},          // value outside every class
		{VLANs: []uint16{0, 4095}},       // valid class A then garbage
		{VLANs: []uint16{uint16(4 + 0)}}, // class A core index 4 (out of range for k=4)
	}
	for i, hdr := range cases {
		if _, err := s.Reconstruct(src.IP, dst.IP, hdr); err == nil {
			t.Errorf("case %d: garbage header %v accepted", i, hdr.Tags())
		}
	}
	// Same-ToR flow carrying tags is inconsistent.
	same := topo.HostsAt(topo.ToRID(0, 0))[1]
	if _, err := s.Reconstruct(src.IP, same.IP, Header{VLANs: []uint16{1}}); err == nil {
		t.Error("same-ToR flow with tags accepted")
	}
	// Unknown addresses.
	if _, err := s.Reconstruct(types.IP(1), dst.IP, Header{}); err == nil {
		t.Error("unknown source accepted")
	}
}

func TestReconstructDetectsWrongSwitchID(t *testing.T) {
	// §2.4: a switch inserting a wrong ID usually yields an infeasible
	// trajectory. Tamper with a valid tag sequence and expect either an
	// error or a different (but feasible) path — never a silent match.
	topo, _ := topology.FatTree(4)
	s, _ := NewFatTree(topo)
	r := topology.NewRouter(topo)
	src := topo.Hosts()[0]
	dst := topo.HostsAt(topo.ToRID(2, 0))[0]
	p := r.EqualCostPaths(src.IP, dst.IP)[0]
	hdr := ApplyPath(s, p, dst.IP)
	if len(hdr.VLANs) != 1 {
		t.Fatalf("unexpected tag count %d", len(hdr.VLANs))
	}
	tampered := hdr.Clone()
	tampered.VLANs[0] = 4090 // outside all classes for k=4
	if _, err := s.Reconstruct(src.IP, dst.IP, tampered); err == nil {
		t.Error("tampered tag accepted")
	}
}

func TestVL2DetourTrapsAndErrors(t *testing.T) {
	topo, _ := topology.VL2(8, 6, 3)
	s, _ := NewVL2(topo)
	// A ToR-level detour in the destination group adds a third VLAN tag:
	// ToR0 → agg(2g) → int0 → agg(2g') → wrong ToR → agg(2g'+1) → dst.
	src := topo.Hosts()[0]
	var dst *topology.Host
	for _, h := range topo.Hosts() {
		if h.Pod == 2 {
			dst = h
			break
		}
	}
	if dst == nil {
		t.Fatal("no host in group 2")
	}
	srcToR := topo.Switch(src.ToR)
	agg1 := srcToR.Up[0]
	in := topo.Switch(agg1).Up[0]
	aggD := topo.VL2AggID(4) // group 2
	dstToR := topo.Switch(dst.ToR)
	var wrongToR types.SwitchID
	for _, cand := range topo.Switch(aggD).Down {
		if cand != dst.ToR {
			wrongToR = cand
			break
		}
	}
	aggD2 := dstToR.Up[1]
	p := types.Path{src.ToR, agg1, in, aggD, wrongToR, aggD2, dst.ToR}
	if err := topo.ValidTrajectory(src.IP, dst.IP, p); err != nil {
		t.Fatalf("test path invalid: %v", err)
	}
	hdr := ApplyPath(s, p, dst.IP)
	if !hdr.Overflow() {
		t.Errorf("VL2 detour carries %d VLAN tags, want overflow", len(hdr.VLANs))
	}
	// Garbage rejection.
	if _, err := s.Reconstruct(src.IP, dst.IP, Header{DSCP: 1, VLANs: []uint16{4095}}); err == nil {
		t.Error("garbage VL2 tag accepted")
	}
	if _, err := s.Reconstruct(src.IP, dst.IP, Header{}); err == nil {
		t.Error("unused DSCP on inter-ToR flow accepted")
	}
}

func TestHeaderHelpers(t *testing.T) {
	h := Header{DSCP: 3, VLANs: []uint16{7, 9}}
	c := h.Clone()
	c.VLANs[0] = 99
	if h.VLANs[0] != 7 {
		t.Error("Clone aliases VLANs")
	}
	tags := h.Tags()
	if len(tags) != 3 || tags[0].Kind != types.TagDSCP || tags[1].Value != 7 {
		t.Errorf("Tags = %v", tags)
	}
	if h.Key() == c.Key() {
		t.Error("distinct headers share a key")
	}
	if (Header{VLANs: []uint16{1, 2}}).Overflow() {
		t.Error("2 tags must not overflow")
	}
	if !(Header{VLANs: []uint16{1, 2, 3}}).Overflow() {
		t.Error("3 tags must overflow")
	}
}

func TestRuleCounts(t *testing.T) {
	ft, _ := topology.FatTree(4)
	s, _ := NewFatTree(ft)
	if got := s.RuleCount(ft.ToRID(0, 0)); got != 4 { // 2 uplinks × 2
		t.Errorf("ToR rules = %d, want 4", got)
	}
	if got := s.RuleCount(ft.CoreID(0)); got != 0 {
		t.Errorf("core rules = %d, want 0", got)
	}
	v2, _ := topology.VL2(8, 6, 2)
	sv, _ := NewVL2(v2)
	if got := sv.RuleCount(v2.VL2ToRID(0)); got != 4 { // 2 ports × 2 rules
		t.Errorf("VL2 ToR rules = %d, want 4", got)
	}
	if got := sv.RuleCount(v2.IntID(0)); got != 12 { // 6 ports × 2
		t.Errorf("VL2 intermediate rules = %d, want 12", got)
	}
}

func TestNewDispatch(t *testing.T) {
	ft, _ := topology.FatTree(4)
	if _, err := New(ft); err != nil {
		t.Errorf("New(fattree): %v", err)
	}
	v2, _ := topology.VL2(8, 6, 2)
	if _, err := New(v2); err != nil {
		t.Errorf("New(vl2): %v", err)
	}
}
