// Package cherrypick implements the CherryPick link-sampling technique
// [SOSR'15] that PathDump uses to trace packet trajectories with close to
// optimal packet-header space (§3.1 of the PathDump paper).
//
// Instead of embedding every hop, switches embed a few carefully sampled
// link identifiers — 12-bit values carried in (at most two) VLAN tags, plus
// the 6-bit DSCP field for VL2 — and the edge reconstructs the end-to-end
// path from the samples plus the static topology. A packet that would need
// a third VLAN tag (a suspiciously long path, e.g. a routing loop) causes a
// rule miss at the next switch ASIC and is punted to the controller.
//
// Sampling rules (fat-tree, arity k, derived in DESIGN.md):
//
//   - first up-leg agg→core (packet carries no VLAN tag yet): tag the core
//     index c — the source pod is known from srcIP, and core c attaches to
//     the aggregation switch at position c/(k/2) in every pod, so one tag
//     fixes both the first aggregation switch and the core. (k/2)² values.
//   - re-ascending agg→core (packet already tagged): tag ⟨pod, core-port⟩ —
//     the previous core is known from the preceding tag, fixing the
//     aggregation position, so the pod and port complete the 2-hop detour.
//     k·(k/2) values.
//   - ToR→agg for intra-pod destinations (first hop): tag the aggregation
//     position. k/2 values.
//   - ToR→agg re-ascent after a downward detour: tag ⟨ToR position, agg
//     position⟩ — identifies both the wrong ToR descended into and the next
//     aggregation switch. (k/2)² values, range shared with the first-up-leg
//     class (the decoder's walk context disambiguates).
//
// One extra link is sampled per two extra hops, so two VLAN tags trace any
// path up to shortest+2, and shortest+4 paths trap at the controller —
// both exactly as the paper states. The 12-bit space supports fat-trees up
// to k=72 ((k/2)² + k·(k/2) + k/2 = 3996 ≤ 4096), matching the paper's
// "72-port switches (about 93K servers)".
//
// For VL2, the DSCP field samples the ToR→aggregate uplink first; VLAN tags
// then sample the agg→intermediate and intermediate→agg links, so a 6-hop
// path ends with one DSCP value and two VLAN tags (§3.1).
package cherrypick

import (
	"fmt"

	"pathdump/internal/topology"
	"pathdump/internal/types"
)

// Header is the trajectory information carried in a packet header: the
// DSCP field (0 = unused, as the VL2 scheme checks) and the stacked VLAN
// tags in push order.
type Header struct {
	DSCP  uint8
	VLANs []uint16
}

// Clone deep-copies the header.
func (h Header) Clone() Header {
	c := Header{DSCP: h.DSCP}
	if len(h.VLANs) > 0 {
		c.VLANs = append([]uint16(nil), h.VLANs...)
	}
	return c
}

// Tags converts the header to the generic tag list (DSCP first).
func (h Header) Tags() []types.Tag {
	var out []types.Tag
	if h.DSCP != 0 {
		out = append(out, types.Tag{Kind: types.TagDSCP, Value: uint16(h.DSCP)})
	}
	for _, v := range h.VLANs {
		out = append(out, types.Tag{Kind: types.TagVLAN, Value: v})
	}
	return out
}

// Key returns a compact map key for the header (used by the trajectory
// memory and trajectory cache).
func (h Header) Key() string {
	b := make([]byte, 1+2*len(h.VLANs))
	b[0] = h.DSCP
	for i, v := range h.VLANs {
		b[1+2*i] = byte(v >> 8)
		b[2+2*i] = byte(v)
	}
	return string(b)
}

// Overflow reports whether the header exceeds the commodity-ASIC parse
// limit, forcing a rule miss and a punt to the controller at the next
// switch that needs an IP lookup.
func (h Header) Overflow() bool { return len(h.VLANs) > types.MaxVLANTags }

// Scheme decides which links are sampled and reconstructs paths.
type Scheme interface {
	// Tag returns the identifier a switch pushes when forwarding a packet
	// from `from` to `to` toward dst, given the current header, and
	// whether anything is pushed at all. Rules are static: they depend
	// only on topology position, the destination prefix, and whether the
	// DSCP/VLAN fields are already in use — all matchable by commodity
	// OpenFlow pipelines.
	Tag(from, to types.SwitchID, dst types.IP, hdr Header) (types.Tag, bool)

	// Reconstruct rebuilds the end-to-end switch path from the source and
	// destination addresses plus the sampled link IDs. It fails if the
	// samples are inconsistent with the ground-truth topology (the §2.4
	// incorrect-switchID defence).
	Reconstruct(src, dst types.IP, hdr Header) (types.Path, error)

	// SampledLinks decodes the VLAN tags of a (possibly incomplete)
	// trajectory into the concrete links they sample, in tag order. The
	// controller's loop detector uses it to spot a repeated link among
	// the tags of a trapped packet (§4.5). Partial results are returned
	// alongside a non-nil error when later tags fail to decode.
	SampledLinks(src, dst types.IP, hdr Header) ([]types.LinkID, error)

	// RuleCount returns the number of static flow rules the scheme
	// installs at the given switch.
	RuleCount(sw types.SwitchID) int
}

// New returns the sampling scheme for a topology.
func New(t *topology.Topology) (Scheme, error) {
	switch t.Kind {
	case topology.FatTreeKind:
		return NewFatTree(t)
	case topology.VL2Kind:
		return NewVL2(t)
	}
	return nil, fmt.Errorf("cherrypick: unsupported topology kind %v", t.Kind)
}

// Apply runs the scheme for one hop and pushes the resulting tag, if any,
// onto hdr. It is the single place both the simulator's switches and the
// tests use, so they cannot disagree.
func Apply(s Scheme, from, to types.SwitchID, dst types.IP, hdr *Header) {
	tag, ok := s.Tag(from, to, dst, *hdr)
	if !ok {
		return
	}
	switch tag.Kind {
	case types.TagDSCP:
		hdr.DSCP = uint8(tag.Value)
	case types.TagVLAN:
		hdr.VLANs = append(hdr.VLANs, tag.Value)
	}
}

// ApplyPath tags an entire switch path (for tests and offline analysis):
// it replays Tag at every hop and returns the final header.
func ApplyPath(s Scheme, p types.Path, dst types.IP) Header {
	var hdr Header
	for i := 0; i+1 < len(p); i++ {
		Apply(s, p[i], p[i+1], dst, &hdr)
	}
	return hdr
}

// ReconstructError describes a failed reconstruction; the agent converts it
// into an INVALID_TRAJECTORY alarm because it means some switch inserted an
// identifier inconsistent with the ground-truth topology (§2.4).
type ReconstructError struct {
	Src, Dst types.IP
	Hdr      Header
	Msg      string
}

// Error implements the error interface.
func (e *ReconstructError) Error() string {
	return fmt.Sprintf("cherrypick: cannot reconstruct %v->%v tags %v: %s", e.Src, e.Dst, e.Hdr.Tags(), e.Msg)
}
