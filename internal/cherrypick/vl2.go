package cherrypick

import (
	"fmt"

	"pathdump/internal/topology"
	"pathdump/internal/types"
)

// VL2Scheme is the CherryPick sampling scheme for VL2 topologies.
//
// Because VL2 shortest paths sample three links, the 6-bit DSCP field is
// used first — for the ToR→aggregate uplink, where there are only two
// choices — and VLAN tags are spent on the remaining samples (§3.1):
//
//	DSCP               uplink index + 1 (0 means unused)
//	[0, nInt)          class A: agg→intermediate, value = intermediate index
//	[nInt, +nAgg)      class D: intermediate→agg descent, value = agg index
//	[nInt+nAgg, +dA)   class Cʹ: ToR re-ascent, value = torPort·2 + uplink
//
// A canonical inter-group path therefore ends with one DSCP value and two
// VLAN tags; any detour needs a third VLAN tag and traps at the controller.
type VL2Scheme struct {
	t          *topology.Topology
	nInt, nAgg int
	offD, offC int
}

// NewVL2 builds the scheme, verifying the ID budgets.
func NewVL2(t *topology.Topology) (*VL2Scheme, error) {
	if t.Kind != topology.VL2Kind {
		return nil, fmt.Errorf("cherrypick: topology is not VL2")
	}
	nInt := t.DA / 2
	nAgg := t.DI
	need := nInt + nAgg + t.DA
	if need > types.LinkIDSpace {
		return nil, fmt.Errorf("cherrypick: VL2(%d,%d) needs %d link IDs, VLAN space has %d",
			t.DA, t.DI, need, types.LinkIDSpace)
	}
	if 3 > types.DSCPSpace { // uplink values 1..2 plus the unused marker
		return nil, fmt.Errorf("cherrypick: DSCP space exhausted")
	}
	return &VL2Scheme{t: t, nInt: nInt, nAgg: nAgg, offD: nInt, offC: nInt + nAgg}, nil
}

// uplinkIndex returns to's position in from.Up, or -1.
func uplinkIndex(s *topology.Switch, to types.SwitchID) int {
	for i, u := range s.Up {
		if u == to {
			return i
		}
	}
	return -1
}

// Tag implements Scheme.
func (v *VL2Scheme) Tag(from, to types.SwitchID, dst types.IP, hdr Header) (types.Tag, bool) {
	sf := v.t.Switch(from)
	st := v.t.Switch(to)
	if sf == nil || st == nil {
		return types.Tag{}, false
	}
	switch {
	case sf.Layer == topology.LayerToR && st.Layer == topology.LayerAgg:
		u := uplinkIndex(sf, to)
		if u < 0 {
			return types.Tag{}, false
		}
		if hdr.DSCP == 0 {
			// First hop: spend the DSCP field.
			return types.Tag{Kind: types.TagDSCP, Value: uint16(u + 1)}, true
		}
		// Re-ascent after a ToR-level detour: identify the ToR we
		// bounced through (its port at the group's agg pair) and the
		// uplink taken.
		q := sf.Index % (v.t.DA / 2)
		return types.Tag{Kind: types.TagVLAN, Value: uint16(v.offC + q*2 + u)}, true

	case sf.Layer == topology.LayerAgg && st.Layer == topology.LayerCore:
		// Up-leg to an intermediate switch: the agg is known from the
		// walk context, so the intermediate index suffices.
		return types.Tag{Kind: types.TagVLAN, Value: uint16(st.Index)}, true

	case sf.Layer == topology.LayerCore && st.Layer == topology.LayerAgg:
		// Descent: the destination ToR is dual-homed, so the chosen
		// aggregate must always be sampled.
		return types.Tag{Kind: types.TagVLAN, Value: uint16(v.offD + st.Index)}, true
	}
	return types.Tag{}, false
}

// Reconstruct implements Scheme.
func (v *VL2Scheme) Reconstruct(src, dst types.IP, hdr Header) (types.Path, error) {
	path, _, err := v.walk(src, dst, hdr, true)
	return path, err
}

// SampledLinks implements Scheme (see the interface comment).
func (v *VL2Scheme) SampledLinks(src, dst types.IP, hdr Header) ([]types.LinkID, error) {
	_, links, err := v.walk(src, dst, hdr, false)
	return links, err
}

// walk decodes the header; with complete=false it stops when tags run out
// instead of requiring a canonical finish at the destination.
func (v *VL2Scheme) walk(src, dst types.IP, hdr Header, complete bool) (types.Path, []types.LinkID, error) {
	var links []types.LinkID
	fail := func(format string, args ...interface{}) (types.Path, []types.LinkID, error) {
		return nil, links, &ReconstructError{Src: src, Dst: dst, Hdr: hdr, Msg: fmt.Sprintf(format, args...)}
	}
	srcHost := v.t.HostByIP(src)
	dstHost := v.t.HostByIP(dst)
	if srcHost == nil || dstHost == nil {
		return fail("unknown src or dst address")
	}
	path := types.Path{srcHost.ToR}
	if srcHost.ToR == dstHost.ToR && complete {
		if hdr.DSCP != 0 || len(hdr.VLANs) != 0 {
			return fail("same-ToR flow carries trajectory info")
		}
		return path, nil, nil
	}
	if hdr.DSCP == 0 {
		if complete {
			return fail("inter-ToR flow with unused DSCP")
		}
		return path, nil, nil
	}
	srcToR := v.t.Switch(srcHost.ToR)
	u := int(hdr.DSCP) - 1
	if u >= len(srcToR.Up) {
		return fail("DSCP uplink %d out of range", u)
	}
	cur := v.t.Switch(srcToR.Up[u])
	path = append(path, cur.ID)

	tags := hdr.VLANs
	ti := 0
	for guard := 0; ; guard++ {
		if guard > 4+2*len(tags) {
			return fail("walk did not terminate")
		}
		if ti == len(tags) {
			if !complete {
				return path, links, nil
			}
			if cur.Layer != topology.LayerAgg {
				return fail("tags exhausted at layer %v", cur.Layer)
			}
			if cur.Pod != dstHost.Pod {
				return fail("tags exhausted at agg %v outside destination group", cur.ID)
			}
			path = append(path, dstHost.ToR)
			return path, links, nil
		}
		val := int(tags[ti])
		ti++
		switch cur.Layer {
		case topology.LayerAgg:
			switch {
			case val < v.nInt:
				in := v.t.IntID(val)
				path = append(path, in)
				links = append(links, types.LinkID{A: cur.ID, B: in})
				cur = v.t.Switch(in)
			case val >= v.offC && val < v.offC+v.t.DA:
				rel := val - v.offC
				q, up := rel/2, rel%2
				torIdx := cur.Pod*(v.t.DA/2) + q
				tor := v.t.Switch(v.t.VL2ToRID(torIdx))
				if tor == nil || up >= len(tor.Up) {
					return fail("class-Cʹ tag %d does not resolve", val)
				}
				agg := tor.Up[up]
				path = append(path, tor.ID, agg)
				links = append(links, types.LinkID{A: tor.ID, B: agg})
				cur = v.t.Switch(agg)
			default:
				return fail("tag %d invalid at aggregation context", val)
			}
		case topology.LayerCore:
			if val < v.offD || val >= v.offD+v.nAgg {
				return fail("tag %d invalid at intermediate context", val)
			}
			agg := v.t.VL2AggID(val - v.offD)
			path = append(path, agg)
			links = append(links, types.LinkID{A: cur.ID, B: agg})
			cur = v.t.Switch(agg)
		default:
			return fail("walk stranded at layer %v", cur.Layer)
		}
	}
}

// RuleCount implements Scheme: two rules per ingress port, one checking
// whether the DSCP field is unused and one adding a VLAN tag otherwise,
// exactly the paper's accounting for VL2.
func (v *VL2Scheme) RuleCount(sw types.SwitchID) int {
	s := v.t.Switch(sw)
	if s == nil {
		return 0
	}
	return 2 * s.Ports()
}
