package cherrypick

import (
	"fmt"

	"pathdump/internal/topology"
	"pathdump/internal/types"
)

// FatTree is the CherryPick sampling scheme for k-ary fat trees.
//
// VLAN value layout (see package comment; ranges may overlap when the
// decoder's walk context disambiguates them):
//
//	[0, (k/2)²)            class A: first up-leg agg→core, value = core index
//	                       class Cʹ: ToR re-ascent, value = torPos·(k/2)+aggPos
//	[(k/2)², +k·(k/2))     class B: agg→core re-ascent, value = pod·(k/2)+corePort
//	[(k/2)²+k·(k/2), +k/2) class C: first-hop intra-pod ToR→agg, value = aggPos
type FatTree struct {
	t    *topology.Topology
	k    int
	half int
	// offsets into the 12-bit ID space
	offB, offC int
}

// NewFatTree builds the scheme, verifying the 12-bit link-ID budget.
func NewFatTree(t *topology.Topology) (*FatTree, error) {
	if t.Kind != topology.FatTreeKind {
		return nil, fmt.Errorf("cherrypick: topology is not a fat tree")
	}
	k := t.K
	half := k / 2
	need := half*half + k*half + half
	if need > types.LinkIDSpace {
		return nil, fmt.Errorf("cherrypick: fat-tree k=%d needs %d link IDs, VLAN space has %d (max k=72)",
			k, need, types.LinkIDSpace)
	}
	return &FatTree{t: t, k: k, half: half, offB: half * half, offC: half*half + k*half}, nil
}

// Tag implements Scheme.
func (f *FatTree) Tag(from, to types.SwitchID, dst types.IP, hdr Header) (types.Tag, bool) {
	sf := f.t.Switch(from)
	st := f.t.Switch(to)
	if sf == nil || st == nil {
		return types.Tag{}, false
	}
	switch {
	case sf.Layer == topology.LayerAgg && st.Layer == topology.LayerCore:
		// Up-leg to the core tier: always sampled.
		if len(hdr.VLANs) == 0 {
			// Class A: core index. Source pod is known from srcIP.
			return types.Tag{Kind: types.TagVLAN, Value: uint16(st.Index)}, true
		}
		// Class B: ⟨pod, core port⟩. The agg position is known from the
		// walk context, so pod+port pin down the 2-hop detour.
		m := st.Index % f.half
		return types.Tag{Kind: types.TagVLAN, Value: uint16(f.offB + sf.Pod*f.half + m)}, true

	case sf.Layer == topology.LayerToR && st.Layer == topology.LayerAgg:
		if len(hdr.VLANs) > 0 {
			// Class Cʹ: re-ascent after a downward detour — identify the
			// ToR we bounced through and the aggregation switch we take.
			return types.Tag{Kind: types.TagVLAN, Value: uint16(sf.Index*f.half + st.Index)}, true
		}
		if h := f.t.HostByIP(dst); h != nil && h.Pod == sf.Pod {
			// Class C: intra-pod first hop; the chosen aggregation
			// position is the only unknown.
			return types.Tag{Kind: types.TagVLAN, Value: uint16(f.offC + st.Index)}, true
		}
		// Inter-pod first hop: inferable from the class-A tag that the
		// aggregation switch will push.
		return types.Tag{}, false
	}
	// All descents are unsampled: they are either deterministic
	// (core→agg toward the destination pod, agg→dst ToR) or pinned by the
	// re-ascent tag that follows.
	return types.Tag{}, false
}

// classify buckets a VLAN value for a given decode context.
func (f *FatTree) inA(v int) bool  { return v < f.offB }
func (f *FatTree) inB(v int) bool  { return v >= f.offB && v < f.offC }
func (f *FatTree) inC(v int) bool  { return v >= f.offC && v < f.offC+f.half }
func (f *FatTree) inCp(v int) bool { return v < f.offB } // Cʹ shares class A's range

// Reconstruct implements Scheme. It walks the static topology, consuming
// tags in push order; every tag resolves exactly the choices the sampling
// rules left open.
func (f *FatTree) Reconstruct(src, dst types.IP, hdr Header) (types.Path, error) {
	path, _, err := f.walk(src, dst, hdr, true)
	return path, err
}

// SampledLinks implements Scheme: the concrete link each VLAN tag samples,
// decoded with the same walk but without requiring the trajectory to end
// at the destination (trapped packets are still in flight).
func (f *FatTree) SampledLinks(src, dst types.IP, hdr Header) ([]types.LinkID, error) {
	_, links, err := f.walk(src, dst, hdr, false)
	return links, err
}

// walk decodes a tag sequence into the traversed path and the sampled
// links. With complete=true the walk must end at the destination ToR
// (Reconstruct); with complete=false it stops when tags run out
// (SampledLinks for trapped packets), returning partial links on error.
func (f *FatTree) walk(src, dst types.IP, hdr Header, complete bool) (types.Path, []types.LinkID, error) {
	var links []types.LinkID
	fail := func(format string, args ...interface{}) (types.Path, []types.LinkID, error) {
		return nil, links, &ReconstructError{Src: src, Dst: dst, Hdr: hdr, Msg: fmt.Sprintf(format, args...)}
	}
	srcHost := f.t.HostByIP(src)
	dstHost := f.t.HostByIP(dst)
	if srcHost == nil || dstHost == nil {
		return fail("unknown src or dst address")
	}
	tags := hdr.VLANs
	path := types.Path{srcHost.ToR}
	if srcHost.ToR == dstHost.ToR && complete {
		if len(tags) != 0 {
			return fail("same-ToR flow carries %d tags", len(tags))
		}
		return path, nil, nil
	}
	if len(tags) == 0 {
		if complete {
			return fail("inter-ToR flow carries no tags")
		}
		return path, nil, nil
	}

	// Step 1: leave the source ToR using the first tag.
	v := int(tags[0])
	ti := 1
	var cur *topology.Switch
	switch {
	case f.inC(v):
		j := v - f.offC
		cur = f.t.Switch(f.t.AggID(srcHost.Pod, j))
		path = append(path, cur.ID)
		links = append(links, types.LinkID{A: srcHost.ToR, B: cur.ID})
	case f.inA(v):
		c := v
		if c >= f.half*f.half {
			return fail("class-A core index %d out of range", c)
		}
		j := f.t.CoreGroup(c)
		agg := f.t.AggID(srcHost.Pod, j)
		core := f.t.CoreID(c)
		path = append(path, agg, core)
		links = append(links, types.LinkID{A: agg, B: core})
		cur = f.t.Switch(core)
	default:
		return fail("first tag %d is not class A or C", v)
	}

	// Step 2: walk, consuming one tag per 2-hop segment.
	for guard := 0; ; guard++ {
		if guard > 4+2*len(tags) {
			return fail("walk did not terminate")
		}
		if ti == len(tags) {
			if !complete {
				return path, links, nil
			}
			// Canonical finish from the current position.
			switch cur.Layer {
			case topology.LayerAgg:
				if cur.Pod != dstHost.Pod {
					return fail("tags exhausted at agg %v outside destination pod", cur.ID)
				}
				path = append(path, dstHost.ToR)
			case topology.LayerCore:
				j := f.t.CoreGroup(cur.Index)
				path = append(path, f.t.AggID(dstHost.Pod, j), dstHost.ToR)
			default:
				return fail("tags exhausted at unexpected layer %v", cur.Layer)
			}
			return path, links, nil
		}
		v = int(tags[ti])
		ti++
		switch cur.Layer {
		case topology.LayerAgg:
			switch {
			case f.inB(v):
				// This aggregation switch re-ascended.
				rel := v - f.offB
				pod, m := rel/f.half, rel%f.half
				if pod != cur.Pod {
					return fail("class-B pod %d disagrees with agg pod %d", pod, cur.Pod)
				}
				core := f.t.CoreID(cur.Index*f.half + m)
				path = append(path, core)
				links = append(links, types.LinkID{A: cur.ID, B: core})
				cur = f.t.Switch(core)
			case f.inCp(v):
				// Detour: descend to a wrong ToR, re-ascend.
				e, j := v/f.half, v%f.half
				tor := f.t.ToRID(cur.Pod, e)
				agg := f.t.AggID(cur.Pod, j)
				path = append(path, tor, agg)
				links = append(links, types.LinkID{A: tor, B: agg})
				cur = f.t.Switch(agg)
			default:
				return fail("tag %d invalid at aggregation context", v)
			}
		case topology.LayerCore:
			jg := f.t.CoreGroup(cur.Index)
			switch {
			case f.inB(v):
				// Core bounce: descend to ⟨pod⟩ at our group position,
				// re-ascend to core port m.
				rel := v - f.offB
				pod, m := rel/f.half, rel%f.half
				agg := f.t.AggID(pod, jg)
				core := f.t.CoreID(jg*f.half + m)
				path = append(path, agg, core)
				links = append(links, types.LinkID{A: agg, B: core})
				cur = f.t.Switch(core)
			case f.inCp(v):
				// Canonical descent into the destination pod, then a
				// ToR-level detour.
				e, j := v/f.half, v%f.half
				agg := f.t.AggID(dstHost.Pod, jg)
				tor := f.t.ToRID(dstHost.Pod, e)
				agg2 := f.t.AggID(dstHost.Pod, j)
				path = append(path, agg, tor, agg2)
				links = append(links, types.LinkID{A: tor, B: agg2})
				cur = f.t.Switch(agg2)
			default:
				return fail("tag %d invalid at core context", v)
			}
		default:
			return fail("walk stranded at layer %v", cur.Layer)
		}
	}
}

// RuleCount implements Scheme: the number of static OpenFlow rules the
// scheme installs. ToR switches need two rules per uplink (intra-pod
// destination prefix, and tagged re-ascent); aggregation switches need two
// rules per core-facing port (untagged class A, tagged class B); cores need
// none. Rule counts grow linearly with port density, as the paper notes.
func (f *FatTree) RuleCount(sw types.SwitchID) int {
	s := f.t.Switch(sw)
	if s == nil {
		return 0
	}
	switch s.Layer {
	case topology.LayerToR, topology.LayerAgg:
		return 2 * len(s.Up)
	default:
		return 0
	}
}
