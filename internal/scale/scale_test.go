package scale

import (
	"testing"

	"pathdump"
	"pathdump/internal/types"
	"pathdump/internal/workload"
)

// The committed BENCH_SCALE budgets. The k=16 numbers were measured at
// ~13 s wall / ~25 MB heap on a development machine at twice this
// active-host count; the ceilings leave headroom for slower CI runners
// while still catching order-of-magnitude regressions (an accidental
// O(hosts²) structure, a leaked per-packet allocation). Refresh recipe:
// docs/simulation.md.
const (
	k16WallBudget = 90 * types.Second  // wall-clock ceiling, k=16 run
	k16HeapBudget = 512 << 20          // live-heap ceiling, k=16 run
	k48WallBudget = 120 * types.Second // wall-clock ceiling, k=48 run
	k48HeapBudget = 1 << 30            // live-heap ceiling, k=48 run
)

// k16Config is the BENCH_SCALE reference run: a full 1024-host fat-tree
// with 32 sampled sources offering web-search load for 250 ms of virtual
// time (~1.9M simulator events).
func k16Config() Config {
	return Config{K: 16, ActiveHosts: 32, Duration: 250 * types.Millisecond, Seed: 42}
}

func TestScaleHarnessK16(t *testing.T) {
	r, err := Run(k16Config())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(r)
	if r.Hosts != 1024 || r.Switches != 320 {
		t.Fatalf("k=16 fat tree has %d hosts / %d switches, want 1024 / 320", r.Hosts, r.Switches)
	}
	if r.FlowsStarted == 0 || r.PacketsDelivered == 0 || r.RecordsStored == 0 {
		t.Fatalf("degenerate run: %v", r)
	}
	if r.FlowsCompleted < r.FlowsStarted*8/10 {
		t.Errorf("only %d of %d flows completed", r.FlowsCompleted, r.FlowsStarted)
	}
	if got := types.Time(r.WallClock.Nanoseconds()); got > k16WallBudget {
		t.Errorf("wall clock %v blew the committed budget %v", r.WallClock, k16WallBudget)
	}
	if r.HeapBytes > k16HeapBudget {
		t.Errorf("heap %d MB blew the committed budget %d MB", r.HeapBytes>>20, int64(k16HeapBudget)>>20)
	}

	// The populated cluster must still answer the query plane: a
	// cluster-wide top-k through the aggregation tree over all 1024
	// hosts is the harness's smoke proof that scenarios can run on top.
	top, stats, err := r.Cluster.TopK(5, pathdump.AllTime, []int{32, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 || top[0].Bytes == 0 {
		t.Fatalf("top-k over the harness returned %d degenerate rows", len(top))
	}
	if stats.Hosts != r.Hosts {
		t.Errorf("query covered %d hosts, want %d", stats.Hosts, r.Hosts)
	}
}

func TestScaleHarnessK48Budget(t *testing.T) {
	// The full 27 648-host cluster with a short pulse of traffic from 48
	// sampled sources: proves the harness stands up the paper's
	// datacenter scale under budget, not just the mid-size tree.
	r, err := Run(Config{K: 48, ActiveHosts: 48, Duration: 50 * types.Millisecond, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(r)
	if r.Hosts != 27648 || r.Switches != 2880 {
		t.Fatalf("k=48 fat tree has %d hosts / %d switches, want 27648 / 2880", r.Hosts, r.Switches)
	}
	if r.FlowsStarted == 0 || r.PacketsDelivered == 0 {
		t.Fatalf("degenerate run: %v", r)
	}
	if got := types.Time(r.WallClock.Nanoseconds()); got > k48WallBudget {
		t.Errorf("wall clock %v blew the committed budget %v", r.WallClock, k48WallBudget)
	}
	if r.HeapBytes > k48HeapBudget {
		t.Errorf("heap %d MB blew the committed budget %d MB", r.HeapBytes>>20, int64(k48HeapBudget)>>20)
	}
}

func TestScaleHarnessK48StreamingBudget(t *testing.T) {
	// The record-budgeted streaming source mode at full datacenter scale:
	// every one of the 27 648 hosts sources traffic — in sequential waves,
	// never all at once — under a cluster-wide TIB record budget that
	// derives each agent's RetentionBytes. The point being proved: an
	// all-active k=48 configuration stays inside the same heap budget as
	// the 48-source stride run, because concurrent flow state is bounded
	// by the wave size and TIB growth by the derived retention.
	r, err := Run(Config{
		K: 48, Duration: 24 * types.Millisecond, Seed: 11,
		Load: 0.1, RecordBudget: 4 << 20, SourceWave: 1728,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(r)
	if r.Hosts != 27648 || r.Switches != 2880 {
		t.Fatalf("k=48 fat tree has %d hosts / %d switches, want 27648 / 2880", r.Hosts, r.Switches)
	}
	if r.FlowsStarted == 0 || r.PacketsDelivered == 0 || r.RecordsStored == 0 {
		t.Fatalf("degenerate run: %v", r)
	}
	if got := types.Time(r.WallClock.Nanoseconds()); got > k48WallBudget {
		t.Errorf("wall clock %v blew the committed budget %v", r.WallClock, k48WallBudget)
	}
	if r.HeapBytes > k48HeapBudget {
		t.Errorf("heap %d MB blew the committed budget %d MB", r.HeapBytes>>20, int64(k48HeapBudget)>>20)
	}
	// The derived retention must actually bound the TIBs: stores evict
	// sealed segments, so modest per-host overshoot is expected, but the
	// fleet total staying within a small multiple of the budget proves
	// eviction ran instead of unbounded growth.
	if r.RecordsStored > 4*(4<<20) {
		t.Errorf("%d records stored, way past the %d budget — retention not enforced", r.RecordsStored, 4<<20)
	}
}

func TestScaleHarnessBurstyAndImpaired(t *testing.T) {
	// A smaller tree under bursty arrivals with one throttled core link:
	// the harness composes with the impairment layer and keeps
	// ingesting (records accumulate) despite the shaped link.
	cfg := Config{K: 8, Duration: 200 * types.Millisecond, Seed: 3}
	c, err := pathdump.NewFatTree(cfg.K, pathdump.Config{})
	if err != nil {
		t.Fatal(err)
	}
	hosts := c.HostIDs()
	gen, err := workload.NewGenerator(c.Sim, c.Stacks, workload.GenConfig{
		Sources: hosts[:16], Dests: hosts,
		Load: 0.3, LinkBps: c.Sim.Config().BandwidthBps, Dist: workload.WebSearch(),
		Arrival: workload.ArrivalBursty, OnTime: 5 * types.Millisecond, OffTime: 20 * types.Millisecond,
		Until: cfg.Duration, Seed: cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	agg, core := c.Topo.Aggs()[0], c.Topo.Cores()[0]
	c.Sim.SetImpairment(agg, core, pathdump.Impairment{RateBps: 50e6, Loss: 0.01})
	gen.Start()
	c.Run(cfg.Duration)
	c.RunAll()
	records := 0
	for _, a := range c.Agents {
		records += a.Store.Len()
	}
	if gen.Started == 0 || records == 0 {
		t.Fatalf("bursty impaired run degenerate: %d flows, %d records", gen.Started, records)
	}
}

// BenchmarkScaleHarness is the BENCH_SCALE gate: one full k=16 harness
// run per iteration, medians gated against the committed BENCH_SCALE.txt
// by cmd/benchcmp (see .github/workflows/ci.yml and docs/simulation.md).
func BenchmarkScaleHarness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := k16Config()
		cfg.Seed = int64(i)
		r, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.HeapBytes), "heap-bytes")
		b.ReportMetric(float64(r.Events), "events")
	}
}

// BenchmarkScaleHarnessStreaming gates the record-budgeted streaming
// source mode on the same k=16 tree: all 1024 hosts source in waves of
// 64 under a one-million-record cluster budget. heap-bytes here is the
// number the mode exists to hold down.
func BenchmarkScaleHarnessStreaming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Run(Config{
			K: 16, Duration: 250 * types.Millisecond, Seed: int64(i),
			Load: 0.15, RecordBudget: 1 << 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.HeapBytes), "heap-bytes")
		b.ReportMetric(float64(r.Events), "events")
	}
}
