// Package scale is the datacenter-scale simulation harness: it stands up
// a fully wired PathDump cluster over a large fat-tree (k=16 is 1024
// hosts; k=48 is 27 648), drives it with the sustained workload
// generator, and reports the resource footprint of the run — wall clock,
// heap, simulator events, TIB records — so CI can gate the harness under
// explicit budgets (the BENCH_SCALE job). Every future scale-out change
// (controller sharding, fleet rollout) is validated against this
// harness.
package scale

import (
	"fmt"
	"runtime"
	"time"

	"pathdump"
	"pathdump/internal/types"
	"pathdump/internal/workload"
)

// Config parameterises one scale-harness run. The zero value of every
// optional field picks the default noted on it.
type Config struct {
	// K is the fat-tree arity (even, ≥ 4; 16 → 1024 hosts, 48 → 27 648).
	K int
	// Load is the offered load fraction per active source (default 0.3).
	Load float64
	// Dist is the flow size distribution (default WebSearch).
	Dist workload.SizeDist
	// Duration is the virtual time the workload runs for (default 1 s);
	// the run then drains all remaining events.
	Duration types.Time
	// ActiveHosts bounds how many hosts source traffic, sampled evenly
	// across the topology (0 = every host). Destinations are always the
	// full host set, so traffic still crosses the whole fabric.
	ActiveHosts int
	// RecordBudget switches the harness into the record-budgeted
	// streaming source mode: every host sources traffic (ActiveHosts is
	// ignored), but only SourceWave of them at a time, in sequential
	// waves that cover the whole fleet across Duration — so an
	// all-active k=48 run exercises every source without ever holding
	// the whole fleet's concurrent flow state. The value is the
	// cluster-wide TIB record target: unless the caller set its own
	// Agent.RetentionBytes, each agent gets a byte budget of
	// RecordBudget/hosts records (at the TIB's ~128-byte resident
	// estimate), so stores evict instead of growing with offered load
	// and the run's heap stays bounded.
	RecordBudget int
	// SourceWave is the streaming mode's cohort size: how many hosts
	// source concurrently per wave (default max(64, hosts/32)).
	SourceWave int
	// Seed decouples harness randomness between runs.
	Seed int64
	// Net overrides the simulated fabric's knobs (bandwidth, delays,
	// per-link impairments are applied by the caller on Cluster.Sim).
	Net pathdump.NetConfig
	// Agent overrides the per-host agent knobs (retention, segments).
	Agent pathdump.AgentConfig
}

// Result is the measured footprint of one harness run.
type Result struct {
	// Hosts and Switches describe the topology that was stood up.
	Hosts    int
	Switches int
	// FlowsStarted and FlowsCompleted count generator activity.
	FlowsStarted   int
	FlowsCompleted int
	// PacketsDelivered is the fabric's ground-truth delivery count.
	PacketsDelivered uint64
	// RecordsStored sums TIB records across every host agent.
	RecordsStored int
	// Events is the number of simulator events processed.
	Events int
	// WallClock is the real time the whole run took (build + run).
	WallClock time.Duration
	// HeapBytes is the live heap after the run (post-GC HeapAlloc),
	// dominated by the cluster and its TIBs.
	HeapBytes uint64

	// Cluster is the still-wired deployment, so callers can run queries
	// or scenario detectors against the populated TIBs.
	Cluster *pathdump.Cluster
}

// String summarises a run on one line (used by examples and logs).
func (r *Result) String() string {
	return fmt.Sprintf("%d hosts / %d switches: %d flows (%d done), %d pkts, %d TIB records, %d events in %v, heap %d MB",
		r.Hosts, r.Switches, r.FlowsStarted, r.FlowsCompleted,
		r.PacketsDelivered, r.RecordsStored, r.Events, r.WallClock.Round(time.Millisecond),
		r.HeapBytes>>20)
}

// budgetRecordBytes is the per-record resident estimate used to convert
// RecordBudget into a per-agent RetentionBytes figure — the TIB accounts
// ~96 bytes plus path backing per record; 128 leaves headroom for longer
// paths.
const budgetRecordBytes = 128

// Run stands up the cluster, drives the sustained workload to Duration,
// drains the fabric, and measures the footprint.
func Run(cfg Config) (*Result, error) {
	start := time.Now()
	if cfg.Load == 0 {
		cfg.Load = 0.3
	}
	if cfg.Dist == nil {
		cfg.Dist = workload.WebSearch()
	}
	if cfg.Duration == 0 {
		cfg.Duration = types.Second
	}
	if cfg.RecordBudget > 0 && cfg.Agent.RetentionBytes == 0 {
		// K-ary fat tree: K³/4 hosts. Derived before the cluster exists
		// because retention is an agent-construction knob.
		nHosts := cfg.K * cfg.K * cfg.K / 4
		perHost := int64(cfg.RecordBudget) / int64(nHosts)
		if perHost < 1 {
			perHost = 1
		}
		cfg.Agent.RetentionBytes = perHost * budgetRecordBytes
	}
	c, err := pathdump.NewFatTree(cfg.K, pathdump.Config{Net: cfg.Net, Agent: cfg.Agent})
	if err != nil {
		return nil, err
	}
	hosts := c.HostIDs()
	linkBps := c.Sim.Config().BandwidthBps
	res := &Result{
		Hosts:    len(hosts),
		Switches: c.Topo.NumSwitches(),
		Cluster:  c,
	}
	events := 0
	if cfg.RecordBudget > 0 {
		// Streaming source mode: the fleet sources in sequential waves.
		wave := cfg.SourceWave
		if wave <= 0 {
			wave = len(hosts) / 32
			if wave < 64 {
				wave = 64
			}
		}
		nWaves := (len(hosts) + wave - 1) / wave
		waveDur := cfg.Duration / types.Time(nWaves)
		if waveDur < 1 {
			waveDur = 1
		}
		var until types.Time
		gens := make([]*workload.Generator, 0, nWaves)
		for w := 0; w < nWaves; w++ {
			end := (w + 1) * wave
			if end > len(hosts) {
				end = len(hosts)
			}
			until += waveDur
			gen, err := workload.NewGenerator(c.Sim, c.Stacks, workload.GenConfig{
				Sources: hosts[w*wave : end], Dests: hosts,
				Load: cfg.Load, LinkBps: linkBps, Dist: cfg.Dist,
				Until: until, Seed: cfg.Seed + int64(w),
			})
			if err != nil {
				return nil, err
			}
			gens = append(gens, gen)
			gen.Start()
			events += c.Sim.Run(until)
		}
		events += c.Sim.RunAll() // drain in-flight flows and sweeps
		// A wave's completions keep landing while later waves run, so
		// counts are summed only after the shared drain.
		for _, g := range gens {
			res.FlowsStarted += g.Started
			res.FlowsCompleted += g.Completed
		}
	} else {
		sources := hosts
		if cfg.ActiveHosts > 0 && cfg.ActiveHosts < len(hosts) {
			stride := len(hosts) / cfg.ActiveHosts
			sources = make([]pathdump.HostID, 0, cfg.ActiveHosts)
			for i := 0; i < len(hosts) && len(sources) < cfg.ActiveHosts; i += stride {
				sources = append(sources, hosts[i])
			}
		}
		gen, err := workload.NewGenerator(c.Sim, c.Stacks, workload.GenConfig{
			Sources: sources, Dests: hosts,
			Load: cfg.Load, LinkBps: linkBps, Dist: cfg.Dist,
			Until: cfg.Duration, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		gen.Start()
		events = c.Sim.Run(cfg.Duration)
		events += c.Sim.RunAll() // drain in-flight flows and sweeps
		res.FlowsStarted = gen.Started
		res.FlowsCompleted = gen.Completed
	}
	res.PacketsDelivered = c.Sim.Stats().Delivered
	res.Events = events
	for _, a := range c.Agents {
		res.RecordsStored += a.Store.Len()
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	res.HeapBytes = ms.HeapAlloc
	res.WallClock = time.Since(start)
	return res, nil
}
