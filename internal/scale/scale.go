// Package scale is the datacenter-scale simulation harness: it stands up
// a fully wired PathDump cluster over a large fat-tree (k=16 is 1024
// hosts; k=48 is 27 648), drives it with the sustained workload
// generator, and reports the resource footprint of the run — wall clock,
// heap, simulator events, TIB records — so CI can gate the harness under
// explicit budgets (the BENCH_SCALE job). Every future scale-out change
// (controller sharding, fleet rollout) is validated against this
// harness.
package scale

import (
	"fmt"
	"runtime"
	"time"

	"pathdump"
	"pathdump/internal/types"
	"pathdump/internal/workload"
)

// Config parameterises one scale-harness run. The zero value of every
// optional field picks the default noted on it.
type Config struct {
	// K is the fat-tree arity (even, ≥ 4; 16 → 1024 hosts, 48 → 27 648).
	K int
	// Load is the offered load fraction per active source (default 0.3).
	Load float64
	// Dist is the flow size distribution (default WebSearch).
	Dist workload.SizeDist
	// Duration is the virtual time the workload runs for (default 1 s);
	// the run then drains all remaining events.
	Duration types.Time
	// ActiveHosts bounds how many hosts source traffic, sampled evenly
	// across the topology (0 = every host). Destinations are always the
	// full host set, so traffic still crosses the whole fabric.
	ActiveHosts int
	// Seed decouples harness randomness between runs.
	Seed int64
	// Net overrides the simulated fabric's knobs (bandwidth, delays,
	// per-link impairments are applied by the caller on Cluster.Sim).
	Net pathdump.NetConfig
	// Agent overrides the per-host agent knobs (retention, segments).
	Agent pathdump.AgentConfig
}

// Result is the measured footprint of one harness run.
type Result struct {
	// Hosts and Switches describe the topology that was stood up.
	Hosts    int
	Switches int
	// FlowsStarted and FlowsCompleted count generator activity.
	FlowsStarted   int
	FlowsCompleted int
	// PacketsDelivered is the fabric's ground-truth delivery count.
	PacketsDelivered uint64
	// RecordsStored sums TIB records across every host agent.
	RecordsStored int
	// Events is the number of simulator events processed.
	Events int
	// WallClock is the real time the whole run took (build + run).
	WallClock time.Duration
	// HeapBytes is the live heap after the run (post-GC HeapAlloc),
	// dominated by the cluster and its TIBs.
	HeapBytes uint64

	// Cluster is the still-wired deployment, so callers can run queries
	// or scenario detectors against the populated TIBs.
	Cluster *pathdump.Cluster
}

// String summarises a run on one line (used by examples and logs).
func (r *Result) String() string {
	return fmt.Sprintf("%d hosts / %d switches: %d flows (%d done), %d pkts, %d TIB records, %d events in %v, heap %d MB",
		r.Hosts, r.Switches, r.FlowsStarted, r.FlowsCompleted,
		r.PacketsDelivered, r.RecordsStored, r.Events, r.WallClock.Round(time.Millisecond),
		r.HeapBytes>>20)
}

// Run stands up the cluster, drives the sustained workload to Duration,
// drains the fabric, and measures the footprint.
func Run(cfg Config) (*Result, error) {
	start := time.Now()
	if cfg.Load == 0 {
		cfg.Load = 0.3
	}
	if cfg.Dist == nil {
		cfg.Dist = workload.WebSearch()
	}
	if cfg.Duration == 0 {
		cfg.Duration = types.Second
	}
	c, err := pathdump.NewFatTree(cfg.K, pathdump.Config{Net: cfg.Net, Agent: cfg.Agent})
	if err != nil {
		return nil, err
	}
	hosts := c.HostIDs()
	sources := hosts
	if cfg.ActiveHosts > 0 && cfg.ActiveHosts < len(hosts) {
		stride := len(hosts) / cfg.ActiveHosts
		sources = make([]pathdump.HostID, 0, cfg.ActiveHosts)
		for i := 0; i < len(hosts) && len(sources) < cfg.ActiveHosts; i += stride {
			sources = append(sources, hosts[i])
		}
	}
	linkBps := c.Sim.Config().BandwidthBps
	gen, err := workload.NewGenerator(c.Sim, c.Stacks, workload.GenConfig{
		Sources: sources, Dests: hosts,
		Load: cfg.Load, LinkBps: linkBps, Dist: cfg.Dist,
		Until: cfg.Duration, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	gen.Start()
	events := c.Sim.Run(cfg.Duration)
	events += c.Sim.RunAll() // drain in-flight flows and sweeps

	res := &Result{
		Hosts:            len(hosts),
		Switches:         c.Topo.NumSwitches(),
		FlowsStarted:     gen.Started,
		FlowsCompleted:   gen.Completed,
		PacketsDelivered: c.Sim.Stats().Delivered,
		Events:           events,
		Cluster:          c,
	}
	for _, a := range c.Agents {
		res.RecordsStored += a.Store.Len()
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	res.HeapBytes = ms.HeapAlloc
	res.WallClock = time.Since(start)
	return res, nil
}
