package workload

import (
	"math"
	"math/rand"
	"testing"

	"pathdump/internal/cherrypick"
	"pathdump/internal/netsim"
	"pathdump/internal/tcp"
	"pathdump/internal/topology"
	"pathdump/internal/types"
)

func TestEmpiricalValidation(t *testing.T) {
	cases := [][][2]float64{
		{{1e3, 1}},               // too few points
		{{1e3, 0.5}, {1e4, 0.4}}, // decreasing CDF
		{{1e3, 0.5}, {1e3, 1}},   // non-ascending sizes
		{{1e3, 0.5}, {1e4, 0.9}}, // does not end at 1
		{{-5, 0.5}, {1e4, 1}},    // negative size
	}
	for i, pts := range cases {
		if _, err := NewEmpirical("bad", pts); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestEmpiricalSampling(t *testing.T) {
	for _, d := range []*Empirical{WebSearch(), DataMining()} {
		rng := rand.New(rand.NewSource(1))
		lo, hi := d.sizes[0], d.sizes[len(d.sizes)-1]
		var sum float64
		n := 20000
		for i := 0; i < n; i++ {
			v := float64(d.Sample(rng))
			if v < lo-1 || v > hi+1 {
				t.Fatalf("%s: sample %v outside [%v, %v]", d.Name(), v, lo, hi)
			}
			sum += v
		}
		got := sum / float64(n)
		if math.Abs(got-d.Mean())/d.Mean() > 0.25 {
			t.Errorf("%s: empirical mean %.0f vs analytic %.0f", d.Name(), got, d.Mean())
		}
	}
}

func TestEmpiricalHeavyTailShape(t *testing.T) {
	d := WebSearch()
	rng := rand.New(rand.NewSource(2))
	small, big := 0, 0
	for i := 0; i < 10000; i++ {
		v := d.Sample(rng)
		if v < 100_000 {
			small++
		}
		if v >= 1_000_000 {
			big++
		}
	}
	if small < 5000 {
		t.Errorf("web-search should be mostly small flows; small=%d/10000", small)
	}
	if big == 0 {
		t.Error("web-search should produce elephants")
	}
}

func TestFixedDist(t *testing.T) {
	d := Fixed(5000)
	if d.Sample(nil) != 5000 || d.Mean() != 5000 {
		t.Error("Fixed distribution broken")
	}
	if d.Name() == "" {
		t.Error("empty name")
	}
}

func TestGeneratorValidation(t *testing.T) {
	topo, _ := topology.FatTree(4)
	scheme, _ := cherrypick.New(topo)
	sim := netsim.New(topo, scheme, netsim.Config{})
	stacks := map[types.HostID]*tcp.Stack{}
	if _, err := NewGenerator(sim, stacks, GenConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewGenerator(sim, stacks, GenConfig{
		Sources: []types.HostID{0}, Dests: []types.HostID{1},
		Load: 0.5, LinkBps: 1e9, Dist: Fixed(1000),
	}); err == nil {
		t.Error("missing stack accepted")
	}
}

func TestGeneratorDrivesTraffic(t *testing.T) {
	topo, _ := topology.FatTree(4)
	scheme, _ := cherrypick.New(topo)
	sim := netsim.New(topo, scheme, netsim.Config{BandwidthBps: 100e6, Seed: 5})
	stacks := map[types.HostID]*tcp.Stack{}
	var srcs, dsts []types.HostID
	for _, h := range topo.Hosts() {
		st := tcp.NewStack(sim, h.ID, tcp.Config{})
		stacks[h.ID] = st
		sim.SetReceiver(h.ID, st)
		if h.Pod == 0 {
			srcs = append(srcs, h.ID)
		} else {
			dsts = append(dsts, h.ID)
		}
	}
	completed := 0
	g, err := NewGenerator(sim, stacks, GenConfig{
		Sources: srcs, Dests: dsts,
		Load: 0.3, LinkBps: 100e6, Dist: Fixed(20_000),
		Until: 2 * types.Second, Seed: 9,
		OnDone: func(*tcp.Sender) { completed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Expected rate: 0.3*100e6/8/20000 = 187.5 flows/s per source.
	if math.Abs(g.Rate()-187.5) > 1e-6 {
		t.Errorf("Rate = %v, want 187.5", g.Rate())
	}
	g.Start()
	sim.RunAll()
	if g.Started == 0 {
		t.Fatal("no flows started")
	}
	// 4 sources × 187.5 × 2 s = 1500 expected arrivals; allow slack.
	if g.Started < 1000 || g.Started > 2000 {
		t.Errorf("Started = %d, want ≈1500", g.Started)
	}
	if completed < g.Started*9/10 {
		t.Errorf("completed %d of %d flows", completed, g.Started)
	}
}

// testFabric builds a 4-ary fat-tree sim with a TCP stack per host.
func testFabric(t *testing.T, seed int64) (*netsim.Sim, map[types.HostID]*tcp.Stack) {
	t.Helper()
	topo, err := topology.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := cherrypick.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.New(topo, scheme, netsim.Config{BandwidthBps: 100e6, Seed: seed})
	stacks := map[types.HostID]*tcp.Stack{}
	for _, h := range topo.Hosts() {
		st := tcp.NewStack(sim, h.ID, tcp.Config{})
		stacks[h.ID] = st
		sim.SetReceiver(h.ID, st)
	}
	return sim, stacks
}

func TestTargetPpsRate(t *testing.T) {
	sim, stacks := testFabric(t, 1)
	g, err := NewGenerator(sim, stacks, GenConfig{
		Sources: []types.HostID{0}, Dests: []types.HostID{1},
		TargetPps: 1000, Dist: Fixed(15_000),
		Until: types.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1000 pps × 1500 B/pkt ÷ 15000 B/flow = 100 flows/s.
	if math.Abs(g.Rate()-100) > 1e-6 {
		t.Errorf("Rate = %v, want 100", g.Rate())
	}
}

func TestBurstyArrivalsStayInOnWindows(t *testing.T) {
	sim, stacks := testFabric(t, 2)
	on, off := 10*types.Millisecond, 90*types.Millisecond
	g, err := NewGenerator(sim, stacks, GenConfig{
		Sources: []types.HostID{0, 1, 2, 3}, Dests: []types.HostID{8, 9, 10, 11},
		Load: 0.3, LinkBps: 100e6, Dist: Fixed(20_000),
		Arrival: ArrivalBursty, OnTime: on, OffTime: off,
		Until: 2 * types.Second, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every drawn arrival must land inside an on-window, and the long-run
	// arrival count must match the plain Poisson configuration (the burst
	// rate compensates for the duty cycle).
	cycle := on + off
	for i := 0; i < 5000; i++ {
		at := g.nextArrival(types.Time(i) * 400 * types.Microsecond)
		if phase := at % cycle; phase >= on {
			t.Fatalf("arrival %d at %v falls in the off-window (phase %v)", i, at, phase)
		}
	}
	g.Start()
	sim.RunAll()
	// 4 sources × 187.5 flows/s × 2 s ≈ 1500 arrivals, as in the Poisson
	// test; the on/off shaping must not change the long-run offered load.
	if g.Started < 1000 || g.Started > 2000 {
		t.Errorf("bursty Started = %d, want ≈1500", g.Started)
	}
	if g.Completed < g.Started*8/10 {
		t.Errorf("completed %d of %d bursty flows", g.Completed, g.Started)
	}
	if g.OfferedBytes != int64(g.Started)*20_000 {
		t.Errorf("OfferedBytes = %d, want %d", g.OfferedBytes, int64(g.Started)*20_000)
	}
}

func TestIncastSynchronizedFanIn(t *testing.T) {
	sim, stacks := testFabric(t, 3)
	receiver := types.HostID(0)
	var senders []types.HostID
	for _, h := range sim.Topo.Hosts() {
		if h.ID != receiver && len(senders) < 8 {
			senders = append(senders, h.ID)
		}
	}
	at := 5 * types.Millisecond
	flows, err := Incast(sim, stacks, IncastConfig{
		Senders: senders, Receiver: receiver, Bytes: 32 << 10, At: at,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != len(senders) {
		t.Fatalf("scheduled %d incast flows, want %d", len(flows), len(senders))
	}
	recvIP := sim.Topo.Host(receiver).IP
	for _, f := range flows {
		if f.DstIP != recvIP {
			t.Fatalf("incast flow %v does not target the receiver", f)
		}
	}
	sim.RunAll()
	if d := sim.Stats().Delivered; d == 0 {
		t.Fatal("incast burst delivered nothing")
	}
}

func TestIncastValidation(t *testing.T) {
	sim, stacks := testFabric(t, 4)
	if _, err := Incast(sim, stacks, IncastConfig{Receiver: 0}); err == nil {
		t.Error("incast with no senders accepted")
	}
	if _, err := Incast(sim, stacks, IncastConfig{Senders: []types.HostID{1}, Receiver: 99999}); err == nil {
		t.Error("incast with unknown receiver accepted")
	}
}
