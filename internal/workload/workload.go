// Package workload generates traffic for the experiments: empirical flow
// size distributions (the web-search and data-mining models the paper's
// experiments draw on [10, 19]), Poisson flow arrivals with a configurable
// offered load, and a generator that drives TCP stacks over the simulated
// fabric.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"pathdump/internal/netsim"
	"pathdump/internal/tcp"
	"pathdump/internal/topology"
	"pathdump/internal/types"
)

// SizeDist samples flow sizes in bytes.
type SizeDist interface {
	Sample(rng *rand.Rand) int64
	Mean() float64
	Name() string
}

// Empirical is a piecewise log-linear CDF over flow sizes.
type Empirical struct {
	name  string
	sizes []float64 // ascending bytes
	cdf   []float64 // ascending, last = 1
	mean  float64
}

// NewEmpirical builds a distribution from (bytes, cdf) points; cdf values
// must be ascending and end at 1.
func NewEmpirical(name string, points [][2]float64) (*Empirical, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("workload: need at least 2 CDF points")
	}
	e := &Empirical{name: name}
	prev := 0.0
	for i, p := range points {
		if p[0] <= 0 {
			return nil, fmt.Errorf("workload: size must be positive at point %d", i)
		}
		if p[1] < prev {
			return nil, fmt.Errorf("workload: CDF must be non-decreasing at point %d", i)
		}
		if i > 0 && p[0] <= e.sizes[i-1] {
			return nil, fmt.Errorf("workload: sizes must be ascending at point %d", i)
		}
		e.sizes = append(e.sizes, p[0])
		e.cdf = append(e.cdf, p[1])
		prev = p[1]
	}
	if math.Abs(e.cdf[len(e.cdf)-1]-1) > 1e-9 {
		return nil, fmt.Errorf("workload: CDF must end at 1")
	}
	// Mean: within a segment the inverse transform is log-linear, i.e.
	// sizes are log-uniform on [lo, hi], whose mean is (hi−lo)/ln(hi/lo).
	m := e.cdf[0] * e.sizes[0]
	for i := 1; i < len(e.sizes); i++ {
		w := e.cdf[i] - e.cdf[i-1]
		lo, hi := e.sizes[i-1], e.sizes[i]
		m += w * (hi - lo) / math.Log(hi/lo)
	}
	e.mean = m
	return e, nil
}

// Name implements SizeDist.
func (e *Empirical) Name() string { return e.name }

// Mean implements SizeDist.
func (e *Empirical) Mean() float64 { return e.mean }

// Sample draws a size by inverse transform with log-linear interpolation.
func (e *Empirical) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(e.cdf, u)
	if i == 0 {
		return int64(e.sizes[0])
	}
	if i >= len(e.cdf) {
		i = len(e.cdf) - 1
	}
	lo, hi := e.sizes[i-1], e.sizes[i]
	clo, chi := e.cdf[i-1], e.cdf[i]
	frac := 0.0
	if chi > clo {
		frac = (u - clo) / (chi - clo)
	}
	v := math.Exp(math.Log(lo) + frac*(math.Log(hi)-math.Log(lo)))
	return int64(v)
}

// WebSearch returns the web-search flow size distribution (heavy-tailed:
// most flows small, most bytes in multi-MB flows) used by the paper's
// load-imbalance and drop-localisation experiments.
func WebSearch() *Empirical {
	e, err := NewEmpirical("websearch", [][2]float64{
		{1e3, 0.05}, {5e3, 0.25}, {1e4, 0.40}, {3e4, 0.55},
		{1e5, 0.70}, {3e5, 0.80}, {1e6, 0.90}, {3e6, 0.96},
		{1e7, 0.99}, {3e7, 1.0},
	})
	if err != nil {
		panic(err) // static table; cannot fail
	}
	return e
}

// DataMining returns the data-mining distribution (even heavier tail;
// >80% of flows under 10 KB, elephants up to 100 MB).
func DataMining() *Empirical {
	e, err := NewEmpirical("datamining", [][2]float64{
		{1e2, 0.45}, {1e3, 0.60}, {1e4, 0.80}, {1e5, 0.90},
		{1e6, 0.95}, {1e7, 0.98}, {1e8, 1.0},
	})
	if err != nil {
		panic(err)
	}
	return e
}

// Fixed returns a degenerate distribution (every flow the same size).
type Fixed int64

// Sample implements SizeDist.
func (f Fixed) Sample(*rand.Rand) int64 { return int64(f) }

// Mean implements SizeDist.
func (f Fixed) Mean() float64 { return float64(f) }

// Name implements SizeDist.
func (f Fixed) Name() string { return fmt.Sprintf("fixed(%d)", int64(f)) }

// Arrival selects the flow inter-arrival process of a generator.
type Arrival int

// Supported arrival processes.
const (
	// ArrivalPoisson draws independent exponential interarrivals per
	// source (the default; the paper's sustained-load experiments).
	ArrivalPoisson Arrival = iota
	// ArrivalBursty is an on/off process: sources emit Poisson arrivals
	// only during globally aligned on-windows (OnTime out of every
	// OnTime+OffTime), compressed so the long-run offered load still
	// matches Load — a fabric-wide microburst pattern.
	ArrivalBursty
)

// mtuBytes converts a target packets-per-second figure into bytes: the
// simulated TCP stacks segment flows into MTU-sized packets.
const mtuBytes = 1500

// GenConfig parameterises a traffic generator.
type GenConfig struct {
	// Sources and Dests select the communicating hosts (a destination is
	// drawn uniformly, excluding the source).
	Sources []types.HostID
	Dests   []types.HostID
	// Load is the offered load as a fraction of each source's link rate.
	Load float64
	// LinkBps is the host link rate used to convert Load into a flow
	// arrival rate.
	LinkBps int64
	// Dist is the flow size distribution.
	Dist SizeDist
	// Until stops new arrivals at this virtual time.
	Until types.Time
	// PortBase seeds source-port allocation (flows get unique ports).
	PortBase uint16
	// Seed decouples workload randomness from fabric randomness.
	Seed int64
	// OnDone, if set, fires as each flow's last byte is acknowledged.
	OnDone func(*tcp.Sender)

	// Arrival selects the inter-arrival process (default Poisson).
	Arrival Arrival
	// OnTime and OffTime shape the bursty process: arrivals happen only
	// during the first OnTime of every OnTime+OffTime cycle (defaults
	// 10 ms on / 90 ms off when ArrivalBursty is selected).
	OnTime  types.Time
	OffTime types.Time
	// TargetPps, when > 0, sets the per-source arrival rate from a
	// target packet rate instead of Load: flows arrive so that each
	// source offers about TargetPps MTU-sized packets per second. Load
	// and LinkBps are then ignored.
	TargetPps float64
}

// Generator schedules flow arrivals (Poisson or bursty on/off) over a
// set of TCP stacks.
type Generator struct {
	sim    *netsim.Sim
	stacks map[types.HostID]*tcp.Stack
	cfg    GenConfig
	rng    *rand.Rand
	rate   float64 // flow arrivals per second per source

	Started      int   // flows started so far
	Completed    int   // flows fully acknowledged so far
	OfferedBytes int64 // sum of started flow sizes
}

// NewGenerator builds a generator; stacks must contain every source and
// destination host.
func NewGenerator(sim *netsim.Sim, stacks map[types.HostID]*tcp.Stack, cfg GenConfig) (*Generator, error) {
	if len(cfg.Sources) == 0 || len(cfg.Dests) == 0 {
		return nil, fmt.Errorf("workload: need sources and destinations")
	}
	if cfg.Dist == nil {
		return nil, fmt.Errorf("workload: flow size distribution is required")
	}
	if cfg.TargetPps <= 0 && (cfg.Load <= 0 || cfg.LinkBps <= 0) {
		return nil, fmt.Errorf("workload: either TargetPps or Load+LinkBps is required")
	}
	for _, h := range cfg.Sources {
		if stacks[h] == nil {
			return nil, fmt.Errorf("workload: no stack for source %v", h)
		}
	}
	if cfg.Arrival == ArrivalBursty {
		if cfg.OnTime <= 0 {
			cfg.OnTime = 10 * types.Millisecond
		}
		if cfg.OffTime <= 0 {
			cfg.OffTime = 90 * types.Millisecond
		}
	}
	rate := cfg.Load * float64(cfg.LinkBps) / 8 / cfg.Dist.Mean()
	if cfg.TargetPps > 0 {
		rate = cfg.TargetPps * mtuBytes / cfg.Dist.Mean()
	}
	g := &Generator{
		sim:    sim,
		stacks: stacks,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		rate:   rate,
	}
	return g, nil
}

// Rate returns the per-source flow arrival rate in flows/second.
func (g *Generator) Rate() float64 { return g.rate }

// Start schedules the first arrival of every source.
func (g *Generator) Start() {
	for _, src := range g.cfg.Sources {
		g.scheduleNext(src)
	}
}

// scheduleNext draws the next interarrival for one source and registers
// the launch event.
func (g *Generator) scheduleNext(src types.HostID) {
	at := g.nextArrival(g.sim.Now())
	if at > g.cfg.Until {
		return
	}
	g.sim.At(at, func() {
		g.launch(src)
		g.scheduleNext(src)
	})
}

// nextArrival returns the absolute virtual time of the next arrival
// after now under the configured process. Bursty mode compresses the
// Poisson stream into globally aligned on-windows: the exponential gap
// is drawn at the burst rate (rate ÷ duty cycle, preserving long-run
// load) and advanced past any off-window it lands in.
func (g *Generator) nextArrival(now types.Time) types.Time {
	if g.cfg.Arrival != ArrivalBursty {
		return now + types.Time(g.rng.ExpFloat64()/g.rate*float64(types.Second))
	}
	cycle := g.cfg.OnTime + g.cfg.OffTime
	duty := float64(g.cfg.OnTime) / float64(cycle)
	burstRate := g.rate / duty
	// Walk on-window time forward by the drawn gap, skipping off-windows.
	t := now
	remain := types.Time(g.rng.ExpFloat64() / burstRate * float64(types.Second))
	for {
		phase := t % cycle
		if phase >= g.cfg.OnTime { // inside an off-window: jump to next on
			t += cycle - phase
			continue
		}
		onLeft := g.cfg.OnTime - phase
		if remain < onLeft {
			return t + remain
		}
		remain -= onLeft
		t += onLeft
	}
}

// launch starts one flow from src to a random destination.
func (g *Generator) launch(src types.HostID) {
	topoSrc := g.sim.Topo.Host(src)
	var dst *topology.Host
	for tries := 0; tries < 32; tries++ {
		cand := g.cfg.Dests[g.rng.Intn(len(g.cfg.Dests))]
		if cand != src {
			dst = g.sim.Topo.Host(cand)
			break
		}
	}
	if dst == nil {
		return
	}
	g.Started++
	size := g.cfg.Dist.Sample(g.rng)
	g.OfferedBytes += size
	f := types.FlowID{
		SrcIP:   topoSrc.IP,
		DstIP:   dst.IP,
		SrcPort: g.cfg.PortBase + uint16(g.Started),
		DstPort: 80,
		Proto:   types.ProtoTCP,
	}
	g.stacks[src].StartFlow(f, size, size, func(s *tcp.Sender) {
		g.Completed++
		if g.cfg.OnDone != nil {
			g.cfg.OnDone(s)
		}
	})
}

// IncastConfig parameterises one synchronized fan-in burst: every sender
// starts a flow of Bytes toward Receiver at virtual time At — the
// partition-aggregate response pattern behind incast collapse.
type IncastConfig struct {
	// Senders are the responding workers; Receiver is the aggregator.
	Senders  []types.HostID
	Receiver types.HostID
	// Bytes is the per-sender response size (default 64 KB).
	Bytes int64
	// At is the synchronized start time (clamped to now).
	At types.Time
	// PortBase seeds source-port allocation (default 30000).
	PortBase uint16
	// OnDone, if set, fires as each response's last byte is acknowledged.
	OnDone func(*tcp.Sender)
}

// Incast schedules a synchronized fan-in burst and returns the flows it
// will start. The flows all target the receiver's port 80 from distinct
// source ports, so TIB records at the receiver show many sources with
// near-identical start times — the signature incast detectors look for.
func Incast(sim *netsim.Sim, stacks map[types.HostID]*tcp.Stack, cfg IncastConfig) ([]types.FlowID, error) {
	recv := sim.Topo.Host(cfg.Receiver)
	if recv == nil {
		return nil, fmt.Errorf("workload: unknown incast receiver %v", cfg.Receiver)
	}
	if len(cfg.Senders) == 0 {
		return nil, fmt.Errorf("workload: incast needs senders")
	}
	if cfg.Bytes <= 0 {
		cfg.Bytes = 64 << 10
	}
	if cfg.PortBase == 0 {
		cfg.PortBase = 30000
	}
	var flows []types.FlowID
	for i, src := range cfg.Senders {
		if src == cfg.Receiver {
			continue
		}
		st := stacks[src]
		srcH := sim.Topo.Host(src)
		if st == nil || srcH == nil {
			return nil, fmt.Errorf("workload: no stack for incast sender %v", src)
		}
		f := types.FlowID{
			SrcIP:   srcH.IP,
			DstIP:   recv.IP,
			SrcPort: cfg.PortBase + uint16(i),
			DstPort: 80,
			Proto:   types.ProtoTCP,
		}
		flows = append(flows, f)
		sim.At(cfg.At, func() { st.StartFlow(f, cfg.Bytes, cfg.Bytes, cfg.OnDone) })
	}
	return flows, nil
}
