package tib

import "pathdump/internal/types"

// flowFilter is a per-segment bloom filter over the flow IDs a sealed
// segment contains. Single-flow queries (the getPaths/getCount/getDuration
// host APIs, and every trigger re-evaluation) probe it before touching the
// segment's posting map: a negative answer prunes the whole segment with
// three bit tests, exactly like a time-bound miss, which matters because a
// long-lived store accumulates hundreds of sealed segments per shard and a
// typical flow appears in only a handful of them. Filters are built once at
// seal time and never mutated, so readers probe them without locks; they
// are not persisted in snapshots and are rebuilt when sealed segments are
// adopted on load.
//
// Sizing is ~8 bits per distinct flow (rounded up to a power of two),
// which with 3 hash probes gives a false-positive rate around 3% — a
// false positive only costs the posting-map lookup the filter was trying
// to save, never a wrong answer.
type flowFilter struct {
	bits []uint64
	mask uint64 // bit-count − 1; bit count is a power of two
}

// filterHashes is the probe count (k). The two underlying hashes are
// combined Kirsch–Mitzenmacher style: probe i tests bit h1 + i·h2.
const filterHashes = 3

// newFlowFilter sizes a filter for the given distinct-flow count.
func newFlowFilter(distinct int) *flowFilter {
	if distinct < 1 {
		distinct = 1
	}
	bits := 64
	for bits < distinct*8 {
		bits <<= 1
	}
	return &flowFilter{bits: make([]uint64, bits/64), mask: uint64(bits - 1)}
}

// probes derives the Kirsch–Mitzenmacher hash pair from one 64-bit flow
// hash. h2 is forced odd so successive probes never collapse onto one bit.
func probes(h uint64) (h1, h2 uint64) {
	return h, ((h>>17 | h<<47) * 0x9e3779b97f4a7c15) | 1
}

func (f *flowFilter) add(h uint64) {
	h1, h2 := probes(h)
	for i := uint64(0); i < filterHashes; i++ {
		b := (h1 + i*h2) & f.mask
		f.bits[b>>6] |= 1 << (b & 63)
	}
}

// mayContain reports whether the flow hash may be in the set. False
// positives are possible (bounded by the sizing above); false negatives
// are not.
func (f *flowFilter) mayContain(h uint64) bool {
	h1, h2 := probes(h)
	for i := uint64(0); i < filterHashes; i++ {
		b := (h1 + i*h2) & f.mask
		if f.bits[b>>6]&(1<<(b&63)) == 0 {
			return false
		}
	}
	return true
}

// flowHash64 hashes a flow's 5-tuple (FNV-1a, 64-bit). Independent of the
// 32-bit shard hash, so filter probes do not correlate with shard
// placement.
func flowHash64(f types.FlowID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64, bytes int) {
		for j := 0; j < bytes; j++ {
			h ^= (v >> (8 * j)) & 0xff
			h *= prime64
		}
	}
	mix(uint64(f.SrcIP), 4)
	mix(uint64(f.DstIP), 4)
	mix(uint64(f.SrcPort), 2)
	mix(uint64(f.DstPort), 2)
	mix(uint64(f.Proto), 1)
	return h
}
