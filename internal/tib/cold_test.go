package tib

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pathdump/internal/types"
)

// coldStorePair builds two identical stores — one with a cold tier
// rooted in a temp dir, one plain reference — and returns them plus the
// virtual-time cutoff that makes roughly the older half spill.
func coldStorePair(t *testing.T, n int) (cold, ref *Store, cutoff types.Time) {
	t.Helper()
	dir := t.TempDir()
	cold = NewStoreConfig(Config{SegmentSpan: 20 * types.Millisecond, ColdDir: dir})
	ref = NewStoreConfig(Config{SegmentSpan: 20 * types.Millisecond})
	for i := 0; i < n; i++ {
		st := types.Time(i) * 10 * types.Millisecond
		rec := mkRecord(flowN(i%53), types.Path{1, types.SwitchID(2 + i%4), 9}, st, st+types.Millisecond, uint64(i), 1)
		cold.Add(rec)
		ref.Add(rec)
	}
	return cold, ref, types.Time(n/2) * 10 * types.Millisecond
}

// coldFilesIn counts cold files on disk.
func coldFilesIn(t *testing.T, dir string) int {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "*.cold"))
	if err != nil {
		t.Fatal(err)
	}
	return len(m)
}

// TestColdSpillBoundsRAMAndScansStillAnswer: spilling moves the old
// half of the store out of RAM (SizeBytes drops, files appear) while
// every scan path — full merge, single-flow, link-indexed, watermarked
// — still returns exactly what an all-resident store returns.
func TestColdSpillBoundsRAMAndScansStillAnswer(t *testing.T) {
	s, ref, cutoff := coldStorePair(t, 6000)
	resident := s.SizeBytes()
	segs, recs, err := s.SpillBefore(cutoff)
	if err != nil {
		t.Fatal(err)
	}
	if segs == 0 || recs == 0 {
		t.Fatalf("SpillBefore spilled %d segments / %d records — nothing moved", segs, recs)
	}
	if got := coldFilesIn(t, s.coldDir); got != segs {
		t.Fatalf("%d cold files on disk for %d spilled segments", got, segs)
	}
	if s.SizeBytes() >= resident {
		t.Fatalf("resident size did not drop: %d -> %d", resident, s.SizeBytes())
	}
	st := s.ColdStats()
	if st.Segments != segs || st.Records != recs || st.Bytes == 0 {
		t.Fatalf("ColdStats = %+v, want %d segments / %d records", st, segs, recs)
	}
	if s.Len() != ref.Len() {
		t.Fatalf("Len = %d after spill, want %d (spilled records still count)", s.Len(), ref.Len())
	}

	sameRecords(t, scanAll(s), scanAll(ref), "full scan over cold tier")
	f := flowN(17)
	if got, want := s.Paths(f, types.AnyLink, types.AllTime), ref.Paths(f, types.AnyLink, types.AllTime); len(got) != len(want) {
		t.Fatalf("flow paths over cold tier: %d, want %d", len(got), len(want))
	}
	link := types.LinkID{A: 1, B: 3}
	var got, want []types.Record
	if err := s.Scan(nil, link, types.AllTime, func(r *types.Record) { got = append(got, *r) }); err != nil {
		t.Fatal(err)
	}
	ref.Scan(nil, link, types.AllTime, func(r *types.Record) { want = append(want, *r) })
	sameRecords(t, got, want, "link scan over cold tier")
	if s.ColdStats().Loads == 0 {
		t.Error("scans over the cold tier recorded no demand-loads")
	}

	// A scan whose window prunes every cold segment must not touch disk.
	loads := s.ColdStats().Loads
	tr := types.TimeRange{From: cutoff + types.Second, To: cutoff + 2*types.Second}
	if err := s.ForEach(types.AnyLink, tr, func(*types.Record) {}); err != nil {
		t.Fatal(err)
	}
	if s.ColdStats().Loads != loads {
		t.Error("a hot-window scan demand-loaded cold segments it should have pruned")
	}
}

// TestColdSnapshotCarriesSpilledSegments: Snapshot demand-loads cold
// segments so a snapshot is always the whole store; restoring it
// elsewhere reproduces every record.
func TestColdSnapshotCarriesSpilledSegments(t *testing.T) {
	s, ref, cutoff := coldStorePair(t, 3000)
	if _, _, err := s.SpillBefore(cutoff); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewStore()
	if err := restored.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	sameRecords(t, scanAll(restored), scanAll(ref), "restore of a tiered store")
}

// TestColdTruncatedFileTypedError: the satellite case — a truncated
// cold file surfaces as a *ColdReadError from the scan that needed it,
// the fault is counted, and the store stays consistent (prunable scans
// and resident data unaffected).
func TestColdTruncatedFileTypedError(t *testing.T) {
	s, _, cutoff := coldStorePair(t, 4000)
	if _, _, err := s.SpillBefore(cutoff); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(s.coldDir, "*.cold"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no cold files (err %v)", err)
	}
	fi, err := os.Stat(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(files[0], fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	scanErr := s.ForEach(types.AnyLink, types.AllTime, func(*types.Record) {})
	if scanErr == nil {
		t.Fatal("scan over a truncated cold file returned no error")
	}
	var cre *ColdReadError
	if !errors.As(scanErr, &cre) {
		t.Fatalf("scan error %T (%v), want *ColdReadError", scanErr, scanErr)
	}
	if cre.Path != files[0] {
		t.Errorf("ColdReadError.Path = %q, want %q", cre.Path, files[0])
	}
	if s.ColdStats().Faults == 0 {
		t.Error("fault not counted")
	}

	// Store consistency: counters unchanged, and a window that prunes
	// the cold tier still answers.
	if s.Len() != 4000 {
		t.Errorf("Len = %d after failed scan, want 4000", s.Len())
	}
	tr := types.TimeRange{From: cutoff + types.Second, To: cutoff + 100*types.Second}
	n := 0
	if err := s.ForEach(types.AnyLink, tr, func(*types.Record) { n++ }); err != nil {
		t.Fatalf("hot-window scan failed after cold fault: %v", err)
	}
	if n == 0 {
		t.Error("hot window returned nothing")
	}

	// Snapshot needs every segment, so it must surface the same error.
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); !errors.As(err, &cre) {
		t.Fatalf("Snapshot over truncated cold file: %v, want *ColdReadError", err)
	}
}

// TestColdEvictionRemovesFiles: retention applies to cold segments too
// — EvictBefore unlinks their files — and a cold segment evicted under
// a scan resolves silently (its data is gone either way), not as an
// error.
func TestColdEvictionRemovesFiles(t *testing.T) {
	s, _, cutoff := coldStorePair(t, 3000)
	if _, _, err := s.SpillBefore(cutoff); err != nil {
		t.Fatal(err)
	}
	if n := coldFilesIn(t, s.coldDir); n == 0 {
		t.Fatal("nothing spilled")
	}
	segs, _ := s.EvictBefore(cutoff)
	if segs == 0 {
		t.Fatal("eviction freed no segments")
	}
	if n := coldFilesIn(t, s.coldDir); n != 0 {
		t.Fatalf("%d cold files survived eviction", n)
	}
	if st := s.ColdStats(); st.Segments != 0 || st.Bytes != 0 {
		t.Fatalf("ColdStats after eviction = %+v", st)
	}
	if err := s.ForEach(types.AnyLink, types.AllTime, func(*types.Record) {}); err != nil {
		t.Fatalf("scan after cold eviction: %v", err)
	}

	// Evicted-under-scan: mark a stub dropped and unlink its file by
	// hand; a scan that captured it must skip it without error.
	s2, _, cutoff2 := coldStorePair(t, 2000)
	if _, _, err := s2.SpillBefore(cutoff2); err != nil {
		t.Fatal(err)
	}
	var stub *segment
	for i := range s2.shards {
		for _, seg := range s2.shards[i].segs {
			if seg.cold {
				stub = seg
			}
		}
	}
	if stub == nil {
		t.Fatal("no cold stub found")
	}
	stub.dropped.Store(true)
	if err := os.Remove(stub.coldPath); err != nil {
		t.Fatal(err)
	}
	if err := s2.ForEach(types.AnyLink, types.AllTime, func(*types.Record) {}); err != nil {
		t.Fatalf("scan over a dropped cold segment errored: %v", err)
	}
	if s2.ColdStats().Faults != 0 {
		t.Error("dropped segment counted as a fault")
	}
}
