package tib

import (
	"container/list"
	"sync"

	"pathdump/internal/types"
)

// Cache is the trajectory cache of Figure 2: an LRU memoising
// ⟨srcIP, link IDs⟩ → end-to-end path so that the construction sub-module
// only consults the topology on a miss. Methods are safe for concurrent
// use: Get reorders the LRU list, so even lookups mutate shared state.
type Cache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List
	m   map[cacheKey]*list.Element

	Hits, Misses uint64
}

type cacheKey struct {
	src types.IP
	hdr string
}

type cacheVal struct {
	key  cacheKey
	path types.Path
}

// NewCache builds an LRU trajectory cache with the given capacity
// (0 selects 4096 entries).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Cache{cap: capacity, ll: list.New(), m: make(map[cacheKey]*list.Element)}
}

// Len returns the number of cached trajectories.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Get looks up the path for ⟨src, header key⟩.
func (c *Cache) Get(src types.IP, hdrKey string) (types.Path, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := cacheKey{src, hdrKey}
	if el, ok := c.m[k]; ok {
		c.ll.MoveToFront(el)
		c.Hits++
		return el.Value.(*cacheVal).path, true
	}
	c.Misses++
	return nil, false
}

// Put inserts a constructed path, evicting the least recently used entry
// when full.
func (c *Cache) Put(src types.IP, hdrKey string, p types.Path) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := cacheKey{src, hdrKey}
	if el, ok := c.m[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheVal).path = p
		return
	}
	el := c.ll.PushFront(&cacheVal{key: k, path: p})
	c.m[k] = el
	if c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*cacheVal).key)
	}
}

// HitRate returns the fraction of lookups served from the cache.
func (c *Cache) HitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}
