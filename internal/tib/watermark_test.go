package tib

import (
	"bytes"
	"testing"

	"pathdump/internal/types"
)

// wmRecord builds record i with a distinctive flow and a one-hop path so
// watermark tests can identify exactly which records a scan visited.
func wmRecord(i int) types.Record {
	st := types.Time(i) * types.Millisecond
	return types.Record{
		Flow:  types.FlowID{SrcIP: types.IP(i), DstIP: 1, SrcPort: 100, DstPort: 80, Proto: 6},
		Path:  types.Path{types.SwitchID(0), types.SwitchID(1)},
		STime: st, ETime: st + types.Millisecond,
		Bytes: uint64(i), Pkts: 1,
	}
}

// collectSince gathers the Bytes field (the record's identity in these
// tests) of every record ScanSince visits.
func collectSince(s *Store, since, until uint64, flow *types.FlowID, link types.LinkID) []uint64 {
	var got []uint64
	s.ScanSince(since, until, flow, link, types.AllTime, func(rec *types.Record) bool {
		got = append(got, rec.Bytes)
		return true
	})
	return got
}

func expectSeq(t *testing.T, got []uint64, from, to int) {
	t.Helper()
	if len(got) != to-from+1 {
		t.Fatalf("visited %d records %v, want %d..%d", len(got), got, from, to)
	}
	for i, b := range got {
		if b != uint64(from+i) {
			t.Fatalf("record %d = %d, want %d (full: %v)", i, b, from+i, got)
		}
	}
}

// TestScanSinceSealBoundaries proves incremental evaluation scans only
// post-watermark records and skips whole sealed segments below the
// watermark by bound comparison (they count as pruned, not scanned).
func TestScanSinceSealBoundaries(t *testing.T) {
	s := NewStoreConfig(Config{Shards: 1, SegmentRecords: 4})
	for i := 1; i <= 12; i++ {
		s.Add(wmRecord(i))
	}
	// 12 single-shard records with SegmentRecords=4: sealed segments
	// [1..4] [5..8] and [9..12]; a fresh active segment starts at 13.
	if got := s.Segments(); got != 3 {
		t.Fatalf("Segments() = %d, want 3", got)
	}
	if s.LastSeq() != 12 {
		t.Fatalf("LastSeq() = %d, want 12", s.LastSeq())
	}

	sc0, sp0 := s.SegmentStats()
	expectSeq(t, collectSince(s, 8, 0, nil, types.AnyLink), 9, 12)
	sc1, sp1 := s.SegmentStats()
	if scanned := sc1 - sc0; scanned != 1 {
		t.Fatalf("watermark-aligned scan walked %d segments, want 1", scanned)
	}
	if pruned := sp1 - sp0; pruned != 2 {
		t.Fatalf("watermark-aligned scan pruned %d segments, want 2", pruned)
	}

	// A watermark mid-segment enters the straddling segment by binary
	// search: records 6..12, touching segments 2 and 3 only.
	sc0, sp0 = s.SegmentStats()
	expectSeq(t, collectSince(s, 5, 0, nil, types.AnyLink), 6, 12)
	sc1, sp1 = s.SegmentStats()
	if scanned := sc1 - sc0; scanned != 2 {
		t.Fatalf("mid-segment scan walked %d segments, want 2", scanned)
	}
	if pruned := sp1 - sp0; pruned != 1 {
		t.Fatalf("mid-segment scan pruned %d segments, want 1", pruned)
	}

	// An upper bound stops the walk: (4, 8] is exactly the middle segment.
	expectSeq(t, collectSince(s, 4, 8, nil, types.AnyLink), 5, 8)

	// Watermark at the head: everything.
	expectSeq(t, collectSince(s, 0, 0, nil, types.AnyLink), 1, 12)
	// Watermark at the tail: nothing.
	if got := collectSince(s, 12, 0, nil, types.AnyLink); len(got) != 0 {
		t.Fatalf("tail watermark visited %v, want nothing", got)
	}
}

// TestScanSincePostings exercises the indexed flow and link paths: the
// posting lists inside surviving segments are trimmed to the watermark.
func TestScanSincePostings(t *testing.T) {
	s := NewStoreConfig(Config{Shards: 1, SegmentRecords: 3})
	f := types.FlowID{SrcIP: 7, DstIP: 1, SrcPort: 100, DstPort: 80, Proto: 6}
	link := types.LinkID{A: 5, B: 6}
	for i := 1; i <= 9; i++ {
		rec := wmRecord(i)
		if i%2 == 1 { // odd records belong to flow f and traverse link 5-6
			rec.Flow = f
			rec.Path = types.Path{5, 6}
		}
		s.Add(rec)
	}
	want := []uint64{7, 9} // odd records past watermark 6
	if got := collectSince(s, 6, 0, &f, types.AnyLink); len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("flow scan since 6 visited %v, want %v", got, want)
	}
	if got := collectSince(s, 6, 0, nil, link); len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("link scan since 6 visited %v, want %v", got, want)
	}
	// Unindexed stores take the filter path; semantics must match.
	u := NewStoreConfig(Config{Shards: 1, SegmentRecords: 3, Unindexed: true})
	for i := 1; i <= 9; i++ {
		rec := wmRecord(i)
		if i%2 == 1 {
			rec.Flow = f
			rec.Path = types.Path{5, 6}
		}
		u.Add(rec)
	}
	if got := collectSince(u, 6, 0, &f, types.AnyLink); len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("unindexed flow scan since 6 visited %v, want %v", got, want)
	}
	if got := collectSince(u, 6, 0, nil, link); len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("unindexed link scan since 6 visited %v, want %v", got, want)
	}
}

// TestScanSinceAcrossShards checks the merged multi-shard walk stays in
// global insertion order under a watermark.
func TestScanSinceAcrossShards(t *testing.T) {
	s := NewStoreConfig(Config{Shards: 8, SegmentRecords: 4})
	for i := 1; i <= 100; i++ {
		s.Add(wmRecord(i))
	}
	expectSeq(t, collectSince(s, 57, 0, nil, types.AnyLink), 58, 100)
	expectSeq(t, collectSince(s, 57, 80, nil, types.AnyLink), 58, 80)
}

// TestEvictOverBytes proves the byte budget: oldest sealed segments go
// first, the store lands at or under budget, and the active segment
// survives.
func TestEvictOverBytes(t *testing.T) {
	per := recSize(&types.Record{Path: types.Path{0, 1}})
	budget := 6 * per
	s := NewStoreConfig(Config{Shards: 1, SegmentRecords: 2, RetentionBytes: budget})
	for i := 1; i <= 12; i++ {
		s.Add(wmRecord(i))
	}
	if s.SizeBytes() != 12*per {
		t.Fatalf("SizeBytes() = %d, want %d", s.SizeBytes(), 12*per)
	}
	segs, recs := s.EvictOverBytes()
	if s.SizeBytes() > budget {
		t.Fatalf("after eviction SizeBytes() = %d over budget %d", s.SizeBytes(), budget)
	}
	if segs != 3 || recs != 6 {
		t.Fatalf("evicted %d segments / %d records, want 3/6", segs, recs)
	}
	// The oldest records went; the newest survive in order.
	expectSeq(t, collectSince(s, 0, 0, nil, types.AnyLink), 7, 12)
	if s.Len() != 6 {
		t.Fatalf("Len() = %d, want 6", s.Len())
	}
	// Under budget the call is a no-op.
	if segs, recs = s.EvictOverBytes(); segs != 0 || recs != 0 {
		t.Fatalf("under-budget eviction freed %d/%d, want 0/0", segs, recs)
	}
}

// TestEvictOverBytesSparesActive: a budget smaller than the live append
// segment cannot evict it; the store stays over budget rather than
// dropping the freshest records.
func TestEvictOverBytesSparesActive(t *testing.T) {
	s := NewStoreConfig(Config{Shards: 1, SegmentRecords: 100, RetentionBytes: 1})
	for i := 1; i <= 5; i++ {
		s.Add(wmRecord(i))
	}
	if segs, recs := s.EvictOverBytes(); segs != 0 || recs != 0 {
		t.Fatalf("evicted the active segment: %d segments / %d records", segs, recs)
	}
	if s.Len() != 5 {
		t.Fatalf("Len() = %d, want 5", s.Len())
	}
}

// TestSizeBytesSurvivesSnapshot: byte accounting is rebuilt on both
// restore paths, so a byte budget keeps working after a snapshot load.
func TestSizeBytesSurvivesSnapshot(t *testing.T) {
	src := NewStoreConfig(Config{Shards: 4, SegmentRecords: 8})
	for i := 1; i <= 50; i++ {
		src.Add(wmRecord(i))
	}
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewStoreConfig(Config{Shards: 4, SegmentRecords: 8})
	if err := dst.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.SizeBytes() != src.SizeBytes() {
		t.Fatalf("restored SizeBytes() = %d, want %d", dst.SizeBytes(), src.SizeBytes())
	}
	// Reshaped restore (different shard count) goes through buildFrom.
	re := NewStoreConfig(Config{Shards: 2, SegmentRecords: 8})
	var buf2 bytes.Buffer
	if err := src.Snapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	if err := re.LoadSnapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	if re.SizeBytes() != src.SizeBytes() {
		t.Fatalf("reshaped SizeBytes() = %d, want %d", re.SizeBytes(), src.SizeBytes())
	}
}

// TestEvictBeforeUpdatesBytes: time-based eviction keeps the byte
// accounting honest too.
func TestEvictBeforeUpdatesBytes(t *testing.T) {
	s := NewStoreConfig(Config{Shards: 1, SegmentRecords: 4, Retention: types.Second})
	for i := 1; i <= 12; i++ {
		s.Add(wmRecord(i))
	}
	before := s.SizeBytes()
	_, recs := s.EvictBefore(7 * types.Millisecond) // drops segment [1..4]
	if recs != 4 {
		t.Fatalf("evicted %d records, want 4", recs)
	}
	per := recSize(&types.Record{Path: types.Path{0, 1}})
	if got := s.SizeBytes(); got != before-4*per {
		t.Fatalf("SizeBytes() = %d after time eviction, want %d", got, before-4*per)
	}
}
