package tib

import (
	"bytes"
	"encoding/gob"
	"runtime"
	"sync"
	"testing"
	"time"

	"pathdump/internal/types"
)

// scanAll collects the store's full insertion-order iteration.
func scanAll(s *Store) []types.Record {
	var out []types.Record
	s.ForEach(types.AnyLink, types.AllTime, func(r *types.Record) { out = append(out, *r) })
	return out
}

func sameRecords(t *testing.T, got, want []types.Record, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", what, len(got), len(want))
	}
	for i := range got {
		if !recEqual(got[i], want[i]) {
			t.Fatalf("%s: record %d differs: %v vs %v", what, i, got[i], want[i])
		}
	}
}

// TestSnapshotV2SegmentRoundTrip: a multi-segment store round-trips
// through the v2 format with order, indexes and segment bounds intact —
// the restored store still prunes.
func TestSnapshotV2SegmentRoundTrip(t *testing.T) {
	s := NewStoreConfig(Config{SegmentSpan: types.Second})
	for i := 0; i < 5000; i++ {
		st := types.Time(i) * 10 * types.Millisecond
		s.Add(mkRecord(flowN(i%200), types.Path{1, types.SwitchID(2 + i%4), 9}, st, st+types.Millisecond, uint64(i), 1))
	}
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte(snapshotMagic)) {
		t.Fatal("v2 snapshot lacks the magic prefix")
	}
	restored := NewStoreConfig(Config{SegmentSpan: types.Second})
	if err := restored.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	sameRecords(t, scanAll(restored), scanAll(s), "v2 round trip")
	if restored.Segments() < s.Segments() {
		t.Errorf("restore collapsed segments: %d, writer had %d", restored.Segments(), s.Segments())
	}
	// Indexes survived: a concrete-link query answers, and a narrow
	// window still prunes most segments.
	if got := restored.Flows(types.LinkID{A: 1, B: 3}, types.AllTime); len(got) == 0 {
		t.Error("restored link index answers nothing")
	}
	sc0, sp0 := restored.SegmentStats()
	restored.ForEach(types.AnyLink, types.TimeRange{From: 25 * types.Second, To: 26 * types.Second}, func(*types.Record) {})
	sc1, sp1 := restored.SegmentStats()
	if pruned := sp1 - sp0; pruned == 0 || pruned < (sc1-sc0)*5 {
		t.Errorf("restored store does not prune: %d scanned, %d pruned", sc1-sc0, sp1-sp0)
	}
	// Appends after a restore extend the original arrival order.
	restored.Add(mkRecord(flowN(1), types.Path{1, 2, 9}, 0, 1, 7, 7))
	all := scanAll(restored)
	if all[len(all)-1].Bytes != 7 {
		t.Error("post-restore append did not land at the end of the iteration order")
	}
}

// TestLoadSnapshotAtomic (regression): a mid-stream decode error must
// leave the prior contents fully intact — never a half-cleared store —
// in both formats.
func TestLoadSnapshotAtomic(t *testing.T) {
	prior := NewStoreConfig(Config{SegmentRecords: 32})
	for i := 0; i < 500; i++ {
		prior.Add(mkRecord(flowN(i%20), types.Path{1, 2, 3}, types.Time(i), types.Time(i+1), uint64(i), 1))
	}
	want := scanAll(prior)

	donor := NewStore()
	for i := 0; i < 2000; i++ {
		donor.Add(mkRecord(flowN(i), types.Path{4, 5, 6}, types.Time(i), types.Time(i+1), 1, 1))
	}
	var v2 bytes.Buffer
	if err := donor.Snapshot(&v2); err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"v2 truncated mid-stream": v2.Bytes()[:v2.Len()/2],
		"v2 missing terminator":   v2.Bytes()[:v2.Len()-3],
		"v1 garbage":              []byte("garbage"),
		"empty":                   nil,
	}
	// A v1 blob cut off mid-record must also fail cleanly.
	var v1 bytes.Buffer
	recs := make([]types.Record, 100)
	for i := range recs {
		recs[i] = mkRecord(flowN(i), types.Path{1, 2}, 0, 1, 1, 1)
	}
	if err := gob.NewEncoder(&v1).Encode(recs); err != nil {
		t.Fatal(err)
	}
	cases["v1 truncated"] = v1.Bytes()[:v1.Len()/2]

	for name, blob := range cases {
		if err := prior.LoadSnapshot(bytes.NewReader(blob)); err == nil {
			t.Fatalf("%s: LoadSnapshot accepted a broken snapshot", name)
		}
		sameRecords(t, scanAll(prior), want, name)
		if prior.Len() != len(want) {
			t.Fatalf("%s: Len = %d, want %d", name, prior.Len(), len(want))
		}
	}

	// And the store still works after the failed loads: queries and
	// appends behave.
	prior.Add(mkRecord(flowN(999), types.Path{1, 2}, 1000, 1001, 5, 5))
	if prior.Len() != len(want)+1 {
		t.Fatal("append after failed load went missing")
	}
}

// TestLoadSnapshotRejectsCorruptSegments: hand-built v2 streams with
// lying metadata must be rejected before the swap — bounds narrower than
// the records would cause silent wrong pruning, and a negative shard
// other than the -1 terminator must not truncate the load quietly.
func TestLoadSnapshotRejectsCorruptSegments(t *testing.T) {
	build := func(mutate func(*wireSegment)) []byte {
		var buf bytes.Buffer
		buf.WriteString(snapshotMagic)
		enc := gob.NewEncoder(&buf)
		if err := enc.Encode(snapshotHeader{Version: 2, Shards: 16, Seq: 2, Indexed: true}); err != nil {
			t.Fatal(err)
		}
		ws := wireSegment{
			Shard: 0,
			Seqs:  []uint64{1, 2},
			Recs: []types.Record{
				mkRecord(flowN(1), types.Path{1, 2}, 10, 20, 1, 1),
				mkRecord(flowN(2), types.Path{1, 2}, 15, 30, 2, 1),
			},
			MinTime: 10, MaxTime: 30,
		}
		mutate(&ws)
		if err := enc.Encode(ws); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(wireSegment{Shard: -1}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := map[string]func(*wireSegment){
		"bounds exclude a record": func(ws *wireSegment) { ws.MaxTime = 25 },
		"min bound too high":      func(ws *wireSegment) { ws.MinTime = 12 },
		"negative non-terminator": func(ws *wireSegment) { ws.Shard = -3 },
		"shard out of range":      func(ws *wireSegment) { ws.Shard = 16 },
		"seqs not ascending":      func(ws *wireSegment) { ws.Seqs = []uint64{2, 2} },
		"posting out of range":    func(ws *wireSegment) { ws.ByFlow = map[types.FlowID][]int{flowN(1): {5}} },
	}
	for name, mutate := range cases {
		s := NewStore()
		s.Add(mkRecord(flowN(9), types.Path{1, 2}, 0, 1, 9, 9))
		if err := s.LoadSnapshot(bytes.NewReader(build(mutate))); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", name)
		}
		if s.Len() != 1 {
			t.Errorf("%s: prior contents disturbed (Len=%d)", name, s.Len())
		}
	}
	// The untouched stream is valid — the cases above fail for the
	// mutation, not the harness.
	s := NewStore()
	if err := s.LoadSnapshot(bytes.NewReader(build(func(*wireSegment) {}))); err != nil {
		t.Fatalf("control stream rejected: %v", err)
	}
	if s.Len() != 2 {
		t.Fatalf("control stream loaded %d records", s.Len())
	}
}

// TestSnapshotV1Compat: legacy blobs (bare gob []Record) still load, with
// order preserved and indexes rebuilt.
func TestSnapshotV1Compat(t *testing.T) {
	recs := make([]types.Record, 3000)
	for i := range recs {
		recs[i] = mkRecord(flowN(i%100), types.Path{1, types.SwitchID(50 + i%3), 2},
			types.Time(i), types.Time(i+5), uint64(i), 1)
	}
	var v1 bytes.Buffer
	if err := gob.NewEncoder(&v1).Encode(recs); err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	if err := s.LoadSnapshot(&v1); err != nil {
		t.Fatal(err)
	}
	sameRecords(t, scanAll(s), recs, "v1 load")
	if got := s.Flows(types.LinkID{A: 1, B: 51}, types.AllTime); len(got) == 0 {
		t.Error("v1 load did not rebuild the link index")
	}
	if b, _ := s.Count(types.Flow{ID: flowN(7)}, types.AllTime); b == 0 {
		t.Error("v1 load did not rebuild the flow index")
	}
}

// TestSnapshotReshape: a snapshot written by a store with a different
// stripe count redistributes records (the flow→shard mapping changes)
// and still answers identically, in identical order.
func TestSnapshotReshape(t *testing.T) {
	wide := NewStoreConfig(Config{Shards: 16, SegmentRecords: 64})
	for i := 0; i < 2000; i++ {
		wide.Add(mkRecord(flowN(i%150), types.Path{1, 2, 3}, types.Time(i), types.Time(i+1), uint64(i), 1))
	}
	var buf bytes.Buffer
	if err := wide.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	narrow := NewStoreConfig(Config{Shards: 4, SegmentRecords: 64})
	if err := narrow.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	sameRecords(t, scanAll(narrow), scanAll(wide), "reshaped load")
	f := flowN(7)
	wb, wk := wide.Count(types.Flow{ID: f}, types.AllTime)
	nb, nk := narrow.Count(types.Flow{ID: f}, types.AllTime)
	if wb != nb || wk != nk {
		t.Errorf("reshaped flow lookup = %d/%d, want %d/%d", nb, nk, wb, wk)
	}
}

// TestSnapshotUnderConcurrentIngest (-race): snapshotting a store while
// writers append must capture a consistent, downward-closed prefix of
// the arrival order — per writer, a prefix of that writer's adds, in
// that writer's order — restore it intact, and leave no goroutine
// behind.
func TestSnapshotUnderConcurrentIngest(t *testing.T) {
	const writers, perWriter = 8, 3000
	s := NewStoreConfig(Config{SegmentRecords: 256})
	baseline := runtime.NumGoroutine()

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				// SrcIP encodes the writer, SrcPort its per-writer order.
				s.Add(types.Record{
					Flow:  types.FlowID{SrcIP: types.IP(w + 1), DstIP: 9, SrcPort: uint16(i), DstPort: 80, Proto: 6},
					Path:  types.Path{1, types.SwitchID(2 + w%4), 9},
					STime: types.Time(i), ETime: types.Time(i + 1),
					Bytes: uint64(i), Pkts: 1,
				})
			}
		}(w)
	}
	close(start)
	var bufs []bytes.Buffer
	bufs = make([]bytes.Buffer, 3)
	for i := range bufs {
		if err := s.Snapshot(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	for i := range bufs {
		restored := NewStoreConfig(Config{SegmentRecords: 256})
		if err := restored.LoadSnapshot(bytes.NewReader(bufs[i].Bytes())); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		next := make([]int, writers+1) // expected SrcPort per writer: prefixes, in order
		n := 0
		restored.ForEach(types.AnyLink, types.AllTime, func(r *types.Record) {
			n++
			w := int(r.Flow.SrcIP)
			if w < 1 || w > writers {
				t.Fatalf("snapshot %d: alien record %v", i, r)
			}
			if int(r.Flow.SrcPort) != next[w] {
				t.Fatalf("snapshot %d: writer %d out of order: got #%d, want #%d", i, w, r.Flow.SrcPort, next[w])
			}
			next[w]++
		})
		if n != restored.Len() {
			t.Fatalf("snapshot %d: scan %d records, Len %d", i, n, restored.Len())
		}
	}

	// The final snapshot after all writers joined must be complete.
	var final bytes.Buffer
	if err := s.Snapshot(&final); err != nil {
		t.Fatal(err)
	}
	restored := NewStore()
	if err := restored.LoadSnapshot(&final); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != writers*perWriter {
		t.Fatalf("final restore = %d records, want %d", restored.Len(), writers*perWriter)
	}

	// Goroutine-leak cleanliness: snapshot/restore spin up only the
	// bounded index-rebuild workers, which must all have exited.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
