// Cold tier: sealed segments spilled to disk in the v2 snapshot framing
// and demand-loaded on scan.
//
// The paper fixes each host's TIB to an in-memory budget; the cold tier
// extends lookback past that budget without growing the resident set.
// SpillBefore moves sealed segments whose newest record is older than
// the caller's cutoff out to one file each under Config.ColdDir. The
// in-RAM segment stub keeps everything scans need to *prune* — time
// bounds, sequence bounds, the flow bloom — while the entries and
// posting maps (the actual footprint) leave RAM.
//
// Each cold file is a complete, self-describing v2 snapshot (magic,
// header, one wireSegment, terminator): `pathdumpd -tib` can serve one
// directly, and thaw reuses the snapshot validator so a truncated or
// corrupt file surfaces as a typed *ColdReadError instead of a panic or
// a silently short scan.
//
// Reads are transient: a scan that survives pruning thaws the segment
// into a private copy (entries + postings decoded from disk, bloom from
// the stub), merges it like any resident segment, and drops it when the
// scan's pooled buffers are released. The store itself is never mutated
// by a read, so a thaw failure leaves it exactly as it was.
package tib

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"pathdump/internal/types"
)

// ColdReadError is the typed error a scan or snapshot returns when a
// cold segment's backing file cannot be read back (missing without a
// concurrent eviction to explain it, truncated mid-stream, or failing
// the snapshot validator). The store's resident contents are unaffected:
// the failing scan aborts, later scans that prune the segment succeed,
// and ColdStats counts the fault.
type ColdReadError struct {
	// Path is the cold file that failed.
	Path string
	// Err is the underlying cause (an *os.PathError, a gob decode
	// error, or a validation failure).
	Err error
}

// Error implements error.
func (e *ColdReadError) Error() string {
	return fmt.Sprintf("tib: cold segment %s: %v", e.Path, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *ColdReadError) Unwrap() error { return e.Err }

// ColdStats summarises the cold tier: how many segments/records are
// currently spilled, their estimated thawed footprint, and the
// cumulative demand-load and fault counts.
type ColdStats struct {
	// Segments and Records count what is currently spilled.
	Segments, Records int
	// Bytes estimates what the spilled records would cost resident.
	Bytes int64
	// Loads counts demand-loads (thaws) served since the store was
	// built; Faults counts failed ones (ColdReadError).
	Loads, Faults uint64
}

// ColdStats returns the current cold-tier counters.
func (s *Store) ColdStats() ColdStats {
	st := ColdStats{
		Loads:  s.coldLoads.Load(),
		Faults: s.coldFaults.Load(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, seg := range sh.segs {
			if seg.cold {
				st.Segments++
				st.Records += seg.coldRecs
				st.Bytes += seg.coldBytes
			}
		}
		sh.mu.RUnlock()
	}
	return st
}

// coldFileName names a spilled segment by its frozen sequence bounds.
// Sequence numbers are never reused, so names are unique for the life
// of the store.
func coldFileName(dir string, lo, hi uint64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%016x-%016x.cold", lo, hi))
}

// SpillBefore moves every sealed, resident segment whose newest record
// ended strictly before cutoff out to the cold tier, returning how many
// segments and records were spilled. No-op unless Config.ColdDir is
// set. Like EvictBefore, repeated calls with slowly advancing cutoffs
// are cheap: a cutoff that has not advanced a full SegmentSpan (or,
// spanless, a quarter of the retention window) past the last effective
// one returns without touching a lock, so the agent can call it per
// exported record.
//
// File writes happen outside the shard locks — sealed entries are
// immutable, so they are encoded from a reference captured under a
// momentary read lock, and the in-RAM stub flips to cold under the
// write lock only after its file is durably written. A segment evicted
// between capture and flip keeps its file from being adopted (the
// orphan file is removed).
func (s *Store) SpillBefore(cutoff types.Time) (segments, records int, err error) {
	if s.coldDir == "" || cutoff <= 0 {
		return 0, 0, nil
	}
	floor := s.spillFloor.Load()
	step := s.segSpan
	if step == 0 {
		step = s.retention / 4
	}
	if floor > 0 && cutoff < floor+step {
		return 0, 0, nil
	}
	s.spillFloor.Store(cutoff)

	// Phase 1: capture spill candidates under momentary read locks.
	var victims []*segment
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, seg := range sh.segs {
			if seg.sealed && !seg.cold && len(seg.entries) > 0 && seg.maxTime < cutoff {
				victims = append(victims, seg)
			}
		}
		sh.mu.RUnlock()
	}
	for _, seg := range victims {
		if err := s.spillOne(seg); err != nil {
			return segments, records, err
		}
		if seg.cold { // flip happened (segment was not evicted meanwhile)
			segments++
			records += seg.coldRecs
		}
	}
	return segments, records, nil
}

// spillOne writes one sealed segment's cold file and flips the in-RAM
// stub. The entries slice and posting maps of a sealed segment are
// immutable, so encoding needs no lock; only the flip does.
func (s *Store) spillOne(seg *segment) error {
	lo, hi := seg.entries[0].seq, seg.entries[len(seg.entries)-1].seq
	path := coldFileName(s.coldDir, lo, hi)
	if err := s.writeColdFile(path, seg); err != nil {
		return err
	}
	// Flip under the shard write lock of whichever shard holds the
	// segment. All entries of a segment share one shard (assignment is
	// by flow hash and the chain never migrates), so any entry's flow
	// finds it.
	sh := s.shardFor(seg.entries[0].rec.Flow)
	sh.mu.Lock()
	present := false
	for _, cur := range sh.segs {
		if cur == seg {
			present = true
			break
		}
	}
	if !present {
		// Evicted between capture and flip: the file is an orphan.
		sh.mu.Unlock()
		os.Remove(path)
		return nil
	}
	seg.cold = true
	seg.coldPath = path
	seg.coldRecs = len(seg.entries)
	seg.coldBytes = seg.bytes
	seg.seqLo, seg.seqHi = lo, hi
	seg.entries = nil
	seg.byFlow, seg.byLink = nil, nil
	freed := seg.bytes
	seg.bytes = 0
	sh.mu.Unlock()
	s.bytesTotal.Add(-freed)
	s.coldBytesTotal.Add(freed)
	return nil
}

// writeColdFile encodes one sealed segment as a self-contained v2
// snapshot (postings included — sealed maps are immutable) and renames
// it into place so readers never observe a half-written file.
func (s *Store) writeColdFile(path string, seg *segment) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	werr := func() error {
		if _, err := bw.WriteString(snapshotMagic); err != nil {
			return err
		}
		enc := gob.NewEncoder(bw)
		hdr := snapshotHeader{Version: 2, Shards: len(s.shards), Seq: seg.entries[len(seg.entries)-1].seq, Indexed: s.indexed}
		if err := enc.Encode(hdr); err != nil {
			return err
		}
		ws := wireSegment{
			Shard:   s.shardIndexFor(seg.entries[0].rec.Flow),
			Seqs:    make([]uint64, len(seg.entries)),
			Recs:    make([]types.Record, len(seg.entries)),
			ByFlow:  seg.byFlow,
			ByLink:  seg.byLink,
			MinTime: seg.minTime,
			MaxTime: seg.maxTime,
		}
		for i := range seg.entries {
			ws.Seqs[i] = seg.entries[i].seq
			ws.Recs[i] = seg.entries[i].rec
		}
		if err := enc.Encode(ws); err != nil {
			return err
		}
		if err := enc.Encode(wireSegment{Shard: -1}); err != nil {
			return err
		}
		return bw.Flush()
	}()
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	return os.Rename(tmp, path)
}

// shardIndexFor returns the stripe index a flow hashes to (shardFor
// returns the shard itself; the cold writer records the index so a cold
// file doubles as a loadable snapshot).
func (s *Store) shardIndexFor(f types.FlowID) int {
	sh := s.shardFor(f)
	for i := range s.shards {
		if &s.shards[i] == sh {
			return i
		}
	}
	return 0
}

// thaw loads a cold segment's contents back from disk into a private,
// fully indexed segment. The store is not mutated: the copy lives only
// as long as the scan (or snapshot encode) that requested it. A nil
// segment with a nil error means the segment was evicted concurrently
// (its data is gone exactly as if the eviction had won the race before
// the scan started) — callers skip it.
func (s *Store) thaw(seg *segment) (*segment, error) {
	th, err := readColdFile(seg.coldPath, seg, s.indexed)
	if err != nil {
		if seg.dropped.Load() {
			// Evicted under the scan: the file was legitimately
			// unlinked after this scan captured the segment.
			return nil, nil
		}
		s.coldFaults.Add(1)
		return nil, &ColdReadError{Path: seg.coldPath, Err: err}
	}
	s.coldLoads.Add(1)
	return th, nil
}

// readColdFile decodes and validates one cold file against the stub's
// frozen metadata.
func readColdFile(path string, stub *segment, indexed bool) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	magic, err := br.Peek(len(snapshotMagic))
	if err != nil || !bytes.Equal(magic, []byte(snapshotMagic)) {
		return nil, fmt.Errorf("bad magic (truncated or not a cold file)")
	}
	if _, err := br.Discard(len(snapshotMagic)); err != nil {
		return nil, err
	}
	dec := gob.NewDecoder(br)
	var hdr snapshotHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("header: %w", err)
	}
	if hdr.Version != 2 {
		return nil, fmt.Errorf("unsupported cold file version %d", hdr.Version)
	}
	var ws wireSegment
	if err := dec.Decode(&ws); err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	if ws.Shard == -1 {
		return nil, fmt.Errorf("cold file holds no segment")
	}
	if err := validateSegment(&ws, hdr.Shards); err != nil {
		return nil, err
	}
	var term wireSegment
	if err := dec.Decode(&term); err != nil || term.Shard != -1 {
		return nil, fmt.Errorf("cold file cut off mid-stream")
	}
	if len(ws.Recs) != stub.coldRecs || ws.Seqs[0] != stub.seqLo || ws.Seqs[len(ws.Seqs)-1] != stub.seqHi {
		return nil, fmt.Errorf("cold file does not match segment metadata (%d recs, seq %d..%d; want %d recs, seq %d..%d)",
			len(ws.Recs), ws.Seqs[0], ws.Seqs[len(ws.Seqs)-1], stub.coldRecs, stub.seqLo, stub.seqHi)
	}
	th := &segment{
		sealed:  true,
		entries: make([]entry, len(ws.Recs)),
		byFlow:  ws.ByFlow,
		byLink:  ws.ByLink,
		filter:  stub.filter,
		minTime: ws.MinTime,
		maxTime: ws.MaxTime,
	}
	for i := range ws.Recs {
		th.entries[i] = entry{seq: ws.Seqs[i], rec: ws.Recs[i]}
	}
	if indexed && th.byFlow == nil {
		// A cold file missing postings (written while the writer could
		// not capture them immutably) rebuilds them transiently so
		// indexed scans still walk posting lists.
		th.rebuildIndex()
	}
	return th, nil
}
