package tib

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pathdump/internal/types"
)

// recEqual compares records field-wise (Record holds a slice and is not
// directly comparable).
func recEqual(a, b types.Record) bool {
	return a.Flow == b.Flow && a.Path.Equal(b.Path) &&
		a.STime == b.STime && a.ETime == b.ETime &&
		a.Bytes == b.Bytes && a.Pkts == b.Pkts
}

// TestSegmentPruning: a narrow time window over a time-bucketed store
// must skip whole segments by bound intersection — telemetry shows
// pruned ≫ scanned — while returning exactly the records an unsegmented
// full filter would.
func TestSegmentPruning(t *testing.T) {
	seg := NewStoreConfig(Config{SegmentSpan: 10 * types.Second})
	flat := NewStoreConfig(Config{SegmentRecords: -1}) // one unbounded segment per shard
	for i := 0; i < 20_000; i++ {
		rec := mkRecord(flowN(i%500), types.Path{1, 2, 3},
			types.Time(i)*10*types.Millisecond, types.Time(i)*10*types.Millisecond+types.Millisecond,
			uint64(i), 1)
		seg.Add(rec)
		flat.Add(rec)
	}
	if seg.Segments() <= len(seg.shards) {
		t.Fatalf("store did not partition: %d segments over %d shards", seg.Segments(), len(seg.shards))
	}

	// 1% window in the middle of the store's 200 s of data.
	tr := types.TimeRange{From: 100 * types.Second, To: 102 * types.Second}
	var got, want []types.Record
	seg.ForEach(types.AnyLink, tr, func(r *types.Record) { got = append(got, *r) })
	flat.ForEach(types.AnyLink, tr, func(r *types.Record) { want = append(want, *r) })
	if len(got) == 0 || len(got) != len(want) {
		t.Fatalf("windowed scan = %d records, unsegmented reference = %d", len(got), len(want))
	}
	for i := range got {
		if !recEqual(got[i], want[i]) {
			t.Fatalf("record %d differs: %v vs %v", i, got[i], want[i])
		}
	}

	scanned, pruned := seg.SegmentStats()
	if pruned == 0 || pruned < scanned*10 {
		t.Errorf("segment pruning ineffective: %d scanned, %d pruned", scanned, pruned)
	}
	if fsc, fpr := flat.SegmentStats(); fpr != 0 {
		t.Errorf("unsegmented store pruned %d of %d — nothing to prune", fpr, fsc)
	}
}

// TestRetentionEviction: EvictBefore drops whole expired sealed segments
// — and only those — reproducing the bounded per-host storage budget.
func TestRetentionEviction(t *testing.T) {
	s := NewStoreConfig(Config{SegmentSpan: types.Second, Retention: 10 * types.Second})
	add := func(i int) {
		s.Add(mkRecord(flowN(i%50), types.Path{1, 2}, types.Time(i)*100*types.Millisecond,
			types.Time(i)*100*types.Millisecond+types.Millisecond, 1, 1))
	}
	for i := 0; i < 1000; i++ { // 100 s of data, 1 s segments
		add(i)
	}
	before := s.Len()
	now := types.Time(1000) * 100 * types.Millisecond
	segs, recs := s.EvictBefore(now - s.Retention())
	if segs == 0 || recs == 0 {
		t.Fatalf("eviction freed nothing (%d segments, %d records)", segs, recs)
	}
	if s.Len() != before-recs {
		t.Fatalf("Len = %d, want %d - %d", s.Len(), before, recs)
	}
	// Everything older than the cutoff is gone; the last Retention's worth
	// (plus at most one segment of slack at the boundary) survives.
	var minSeen types.Time = 1 << 62
	n := 0
	s.ForEach(types.AnyLink, types.AllTime, func(r *types.Record) {
		n++
		if r.STime < minSeen {
			minSeen = r.STime
		}
	})
	if n != s.Len() {
		t.Fatalf("scan found %d records, Len says %d", n, s.Len())
	}
	cutoff := now - s.Retention()
	if minSeen < cutoff-2*types.Second {
		t.Errorf("record from %v survived a cutoff of %v", minSeen, cutoff)
	}
	// Queries over evicted history are simply empty.
	if got := s.Flows(types.AnyLink, types.TimeRange{From: 0, To: 5 * types.Second}); len(got) != 0 {
		t.Errorf("evicted window still answers %d flows", len(got))
	}

	// A cutoff that cannot free a new segment is a cheap no-op.
	if segs, recs := s.EvictBefore(cutoff); segs != 0 || recs != 0 {
		t.Errorf("repeat eviction freed %d segments / %d records", segs, recs)
	}
}

// TestInsertionOrderAcrossSegments: segmentation must not disturb the
// exact global insertion-order iteration, even when record timestamps
// arrive out of order (so segment time bounds overlap).
func TestInsertionOrderAcrossSegments(t *testing.T) {
	s := NewStoreConfig(Config{SegmentRecords: 16})
	rng := rand.New(rand.NewSource(9))
	var want []types.Record
	for i := 0; i < 2000; i++ {
		st := types.Time(rng.Intn(1000)) * types.Millisecond
		rec := mkRecord(flowN(rng.Intn(100)), types.Path{1, types.SwitchID(2 + rng.Intn(4)), 7},
			st, st+types.Millisecond, uint64(i), 1)
		s.Add(rec)
		want = append(want, rec)
	}
	var got []types.Record
	s.ForEach(types.AnyLink, types.AllTime, func(r *types.Record) { got = append(got, *r) })
	if len(got) != len(want) {
		t.Fatalf("scan = %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if !recEqual(got[i], want[i]) {
			t.Fatalf("iteration order diverges at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestSegmentedMatchesUnsegmentedProperty: for arbitrary records and
// queries, a finely segmented store and a single-segment store must give
// identical answers — segmentation is an optimisation, never a filter.
func TestSegmentedMatchesUnsegmentedProperty(t *testing.T) {
	seg := NewStoreConfig(Config{SegmentRecords: 8, SegmentSpan: 20})
	flat := NewStoreConfig(Config{SegmentRecords: -1})
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 600; i++ {
		f := flowN(rng.Intn(25))
		p := types.Path{
			types.SwitchID(rng.Intn(4)),
			types.SwitchID(4 + rng.Intn(4)),
			types.SwitchID(8 + rng.Intn(4)),
		}
		st := types.Time(rng.Intn(120))
		rec := mkRecord(f, p, st, st+types.Time(rng.Intn(40)), uint64(rng.Intn(5000)), uint64(rng.Intn(8)))
		seg.Add(rec)
		flat.Add(rec)
	}
	check := func(a, b uint32) bool {
		link := types.LinkID{A: types.SwitchID(a % 5), B: types.SwitchID(4 + b%5)}
		if a%7 == 0 {
			link.A = types.WildcardSwitch
		}
		if b%7 == 0 {
			link.B = types.WildcardSwitch
		}
		tr := types.TimeRange{From: types.Time(a % 80), To: types.Time(a%80 + b%80)}
		fa, fb := seg.Flows(link, tr), flat.Flows(link, tr)
		if len(fa) != len(fb) {
			return false
		}
		for i := range fa {
			if fa[i].ID != fb[i].ID || !fa[i].Path.Equal(fb[i].Path) {
				return false // same contents AND same (insertion) order
			}
		}
		f := flowN(int(a % 25))
		ba, ka := seg.Count(types.Flow{ID: f}, tr)
		bb, kb := flat.Count(types.Flow{ID: f}, tr)
		if ba != bb || ka != kb {
			return false
		}
		pa, pb := seg.Paths(f, link, tr), flat.Paths(f, link, tr)
		if len(pa) != len(pb) {
			return false
		}
		for i := range pa {
			if !pa[i].Equal(pb[i]) {
				return false
			}
		}
		return seg.Duration(types.Flow{ID: f}, tr) == flat.Duration(types.Flow{ID: f}, tr)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestScanFlowPushdown: the flow-predicate path must honour link and time
// filters identically to the generic scan.
func TestScanFlowPushdown(t *testing.T) {
	for _, indexed := range []bool{true, false} {
		s := NewStoreConfig(Config{SegmentRecords: 4, Unindexed: !indexed})
		f, other := flowN(1), flowN(2)
		s.Add(mkRecord(f, types.Path{1, 2, 3}, 0, 10, 100, 1))
		s.Add(mkRecord(other, types.Path{1, 2, 3}, 0, 10, 999, 1))
		s.Add(mkRecord(f, types.Path{1, 4, 3}, 20, 30, 200, 2))
		s.Add(mkRecord(f, types.Path{1, 2, 3}, 40, 50, 400, 4))

		var got []uint64
		s.Scan(&f, types.LinkID{A: 1, B: 2}, types.TimeRange{From: 0, To: 45}, func(r *types.Record) {
			got = append(got, r.Bytes)
		})
		if len(got) != 2 || got[0] != 100 || got[1] != 400 {
			t.Errorf("indexed=%v: flow scan = %v, want [100 400]", indexed, got)
		}
	}
}
