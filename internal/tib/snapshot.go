// Snapshot/restore of the segmented TIB (the stand-in for the paper's
// MongoDB persistence).
//
// Two wire formats coexist:
//
//   - v2 (written by Snapshot): a raw 8-byte magic prefix, then a gob
//     stream of a header followed by one record per segment — entries
//     with their original sequence stamps, time bounds, and (for sealed
//     segments) the flow/link postings verbatim. Restore adopts segments
//     wholesale: no per-record re-Add, and index rebuild only for the
//     few segments written without postings (each shard's active
//     segment, whose maps may be mutated mid-snapshot by concurrent
//     ingest and are therefore not captured).
//
//   - v1 (legacy, no magic): a gob []types.Record in global insertion
//     order. LoadSnapshot still accepts it, distributing records into
//     segments and rebuilding every index — in parallel, one goroutine
//     per segment, instead of the old single re-Add loop.
//
// Either way LoadSnapshot is atomic: the incoming stream is fully
// decoded and validated into a staged store first, and only then swapped
// in under every shard lock at once. A mid-stream decode error leaves
// the prior contents untouched, and concurrent readers see either the
// old store or the new one — never a half-cleared mix.
package tib

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"pathdump/internal/types"
)

// snapshotMagic prefixes v2 snapshots; v1 blobs are bare gob streams and
// cannot begin with these bytes (gob's first byte is a length, and a
// stream this short is not a valid v1 blob anyway).
const snapshotMagic = "PDTIBv2\n"

// snapshotHeader opens the v2 gob stream.
type snapshotHeader struct {
	Version int
	// Shards is the writing store's stripe count: a reader with the same
	// count adopts segments directly, anything else redistributes by flow
	// hash (the mapping depends on the stripe count).
	Shards int
	// Seq is the writer's global sequence counter at capture time, so
	// appends after a restore extend the original arrival order.
	Seq uint64
	// Indexed records whether the writer maintained flow/link postings.
	Indexed bool
}

// wireSegment is one segment on the wire. A Shard of -1 terminates the
// stream (distinguishing a complete snapshot from one cut off mid-write).
type wireSegment struct {
	Shard int
	Seqs  []uint64
	Recs  []types.Record
	// ByFlow/ByLink are the segment's postings, nil when the writer could
	// not capture them immutably (the active segment); the loader rebuilds
	// those.
	ByFlow           map[types.FlowID][]int
	ByLink           map[types.LinkID][]int
	MinTime, MaxTime types.Time
}

// segView is one segment's immutable capture for the writer.
type segView struct {
	entries          []entry
	byFlow           map[types.FlowID][]int
	byLink           map[types.LinkID][]int
	minTime, maxTime types.Time
}

// captureSegments snapshots every shard's segment chain under all shard
// read-locks at once (a consistent, downward-closed prefix of the global
// arrival order, like every scan). Sealed segments are captured by
// reference — they are immutable. The active segment's entries slice is
// append-only so its header is safe too, but its posting maps mutate in
// place under the shard lock, so they are left nil and rebuilt on load.
func (s *Store) captureSegments() (views [][]segView, seq uint64) {
	for i := range s.shards {
		s.shards[i].mu.RLock()
	}
	views = make([][]segView, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		for _, seg := range sh.segs {
			if len(seg.entries) == 0 {
				continue
			}
			v := segView{entries: seg.entries, minTime: seg.minTime, maxTime: seg.maxTime}
			if seg.sealed {
				v.byFlow, v.byLink = seg.byFlow, seg.byLink
			}
			views[i] = append(views[i], v)
		}
	}
	seq = s.seq.Load() // exact: assignment happens under shard locks, all held
	for i := range s.shards {
		s.shards[i].mu.RUnlock()
	}
	return views, seq
}

// Snapshot serialises the store in the v2 segment-wise format. The
// capture is a momentary all-shard lock hold (header copies only);
// encoding streams outside the locks, so concurrent ingest proceeds
// while a large snapshot is written.
func (s *Store) Snapshot(w io.Writer) error {
	views, seq := s.captureSegments()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(snapshotHeader{Version: 2, Shards: len(s.shards), Seq: seq, Indexed: s.indexed}); err != nil {
		return err
	}
	for si, segs := range views {
		for _, v := range segs {
			ws := wireSegment{
				Shard:   si,
				Seqs:    make([]uint64, len(v.entries)),
				Recs:    make([]types.Record, len(v.entries)),
				ByFlow:  v.byFlow,
				ByLink:  v.byLink,
				MinTime: v.minTime,
				MaxTime: v.maxTime,
			}
			for i := range v.entries {
				ws.Seqs[i] = v.entries[i].seq
				ws.Recs[i] = v.entries[i].rec
			}
			if err := enc.Encode(ws); err != nil {
				return err
			}
		}
	}
	if err := enc.Encode(wireSegment{Shard: -1}); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadSnapshot replaces the store contents from a snapshot in either
// format (v2 by magic prefix, bare gob = legacy v1). The replacement is
// atomic — see the package comment at the top of this file.
func (s *Store) LoadSnapshot(r io.Reader) error {
	br := bufio.NewReader(r)
	magic, err := br.Peek(len(snapshotMagic))
	if err == nil && bytes.Equal(magic, []byte(snapshotMagic)) {
		if _, err := br.Discard(len(snapshotMagic)); err != nil {
			return err
		}
		return s.loadV2(br)
	}
	// Too short for the magic, or a different prefix: let the v1 decoder
	// produce the authoritative result (or error) from the full stream.
	return s.loadV1(br)
}

// emptyClone builds an empty store with this store's configuration.
func (s *Store) emptyClone() *Store {
	return NewStoreConfig(Config{
		Shards:         len(s.shards),
		SegmentSpan:    s.segSpan,
		SegmentRecords: s.segRecords,
		Retention:      s.retention,
		RetentionBytes: s.retentionBytes,
		Unindexed:      !s.indexed,
	})
}

// loadV2 decodes the segment-wise stream into a staged store and swaps it
// in. Segments from a writer with the same stripe count are adopted
// wholesale (postings intact where present); a different stripe count
// forces redistribution, because the flow→shard mapping changes.
func (s *Store) loadV2(r io.Reader) error {
	dec := gob.NewDecoder(r)
	var hdr snapshotHeader
	if err := dec.Decode(&hdr); err != nil {
		return fmt.Errorf("tib: snapshot header: %w", err)
	}
	if hdr.Version != 2 {
		return fmt.Errorf("tib: unsupported snapshot version %d", hdr.Version)
	}
	if hdr.Shards < 1 {
		return fmt.Errorf("tib: snapshot declares %d shards", hdr.Shards)
	}
	staged := s.emptyClone()
	sameShape := hdr.Shards == len(staged.shards)
	var (
		total   int64
		rebuild []*segment
		flat    []entry // only for the reshape path
	)
	for {
		var ws wireSegment
		if err := dec.Decode(&ws); err != nil {
			return fmt.Errorf("tib: snapshot cut off mid-stream: %w", err)
		}
		if ws.Shard == -1 {
			break // terminator: the writer finished
		}
		if err := validateSegment(&ws, hdr.Shards); err != nil {
			return err
		}
		total += int64(len(ws.Recs))
		if !sameShape {
			for i := range ws.Recs {
				flat = append(flat, entry{seq: ws.Seqs[i], rec: ws.Recs[i]})
			}
			continue
		}
		seg := &segment{
			sealed:  true,
			entries: make([]entry, len(ws.Recs)),
			byFlow:  ws.ByFlow,
			byLink:  ws.ByLink,
			minTime: ws.MinTime,
			maxTime: ws.MaxTime,
		}
		for i := range ws.Recs {
			seg.entries[i] = entry{seq: ws.Seqs[i], rec: ws.Recs[i]}
			seg.bytes += recSize(&ws.Recs[i])
		}
		// Blooms are not persisted; adopted sealed segments rebuild theirs
		// from the freshly populated entries.
		seg.buildFilter()
		sh := &staged.shards[ws.Shard]
		// Insert before the (empty) active segment, keeping the chain
		// sequence-monotonic — the writer emitted each shard's segments in
		// chain order.
		if prev := sh.segs[:len(sh.segs)-1]; len(prev) > 0 {
			if last := prev[len(prev)-1]; last.entries[len(last.entries)-1].seq >= seg.entries[0].seq {
				return fmt.Errorf("tib: snapshot shard %d segments out of sequence order", ws.Shard)
			}
		}
		sh.segs = append(sh.segs[:len(sh.segs)-1], seg, sh.segs[len(sh.segs)-1])
		if staged.indexed && seg.byFlow == nil {
			rebuild = append(rebuild, seg)
		}
		if !staged.indexed {
			seg.byFlow, seg.byLink = nil, nil
		}
	}
	if !sameShape {
		sort.Slice(flat, func(i, j int) bool { return flat[i].seq < flat[j].seq })
		var err error
		if staged, err = s.buildFrom(flat); err != nil {
			return err
		}
	} else {
		rebuildIndexes(rebuild)
	}
	seq := hdr.Seq
	if seq < uint64(total) {
		seq = uint64(total) // corrupt-tolerant: never reuse live sequence space
	}
	staged.seq.Store(seq)
	staged.count.Store(total)
	s.swapFrom(staged)
	return nil
}

// validateSegment bounds-checks one wire segment so corrupt input fails
// with an error instead of an out-of-range panic — or, worse, silently
// wrong pruning — at query time.
func validateSegment(ws *wireSegment, shards int) error {
	if ws.Shard < 0 || ws.Shard >= shards {
		return fmt.Errorf("tib: snapshot segment names shard %d of %d", ws.Shard, shards)
	}
	if len(ws.Seqs) != len(ws.Recs) {
		return fmt.Errorf("tib: snapshot segment has %d seqs for %d records", len(ws.Seqs), len(ws.Recs))
	}
	if len(ws.Recs) == 0 {
		return fmt.Errorf("tib: snapshot contains an empty segment")
	}
	for i := 1; i < len(ws.Seqs); i++ {
		if ws.Seqs[i] <= ws.Seqs[i-1] {
			return fmt.Errorf("tib: snapshot segment sequence numbers not ascending")
		}
	}
	for i := range ws.Recs {
		// Declared time bounds must bracket every record: bounds
		// narrower than the data would make scans prune records that
		// exist — silent wrong answers, the worst failure mode.
		if ws.Recs[i].STime < ws.MinTime || ws.Recs[i].ETime > ws.MaxTime {
			return fmt.Errorf("tib: snapshot segment bounds [%v,%v] exclude record %d (%v..%v)",
				ws.MinTime, ws.MaxTime, i, ws.Recs[i].STime, ws.Recs[i].ETime)
		}
	}
	for _, idxs := range ws.ByFlow {
		for _, i := range idxs {
			if i < 0 || i >= len(ws.Recs) {
				return fmt.Errorf("tib: snapshot flow posting out of range")
			}
		}
	}
	for _, idxs := range ws.ByLink {
		for _, i := range idxs {
			if i < 0 || i >= len(ws.Recs) {
				return fmt.Errorf("tib: snapshot link posting out of range")
			}
		}
	}
	return nil
}

// loadV1 decodes a legacy []types.Record blob and rebuilds the segmented
// store from it.
func (s *Store) loadV1(r io.Reader) error {
	var recs []types.Record
	if err := gob.NewDecoder(r).Decode(&recs); err != nil {
		return err
	}
	entries := make([]entry, len(recs))
	for i, rec := range recs {
		// v1 wrote global insertion order; reassigning 1..n preserves it.
		entries[i] = entry{seq: uint64(i + 1), rec: rec}
	}
	staged, err := s.buildFrom(entries)
	if err != nil {
		return err
	}
	staged.seq.Store(uint64(len(entries)))
	staged.count.Store(int64(len(entries)))
	s.swapFrom(staged)
	return nil
}

// buildFrom distributes entries (ascending global sequence order) into a
// fresh staged store — flow-hashed onto shards, sealed into segments by
// the store's own seal policy — and then rebuilds every segment's index
// in parallel, one goroutine per segment up to GOMAXPROCS. This replaces
// the old single-threaded re-Add loop: distribution is a cheap
// sequential pass, and the expensive part (posting-map construction) is
// what parallelises.
func (s *Store) buildFrom(entries []entry) (*Store, error) {
	staged := s.emptyClone()
	for i := range entries {
		if i > 0 && entries[i].seq <= entries[i-1].seq {
			return nil, fmt.Errorf("tib: snapshot records out of sequence order")
		}
		sh := staged.shardFor(entries[i].rec.Flow)
		seg := sh.active()
		if staged.shouldSeal(seg, &entries[i].rec) {
			seg.seal() // postings are nil here, so the bloom builds from entries
			seg = newSegment(false)
			sh.segs = append(sh.segs, seg)
		}
		seg.add(entries[i], false) // postings rebuilt below, in parallel
	}
	if staged.indexed {
		var segs []*segment
		for i := range staged.shards {
			for _, seg := range staged.shards[i].segs {
				if len(seg.entries) > 0 {
					segs = append(segs, seg)
				}
			}
		}
		rebuildIndexes(segs)
	}
	return staged, nil
}

// rebuildIndexes recomputes postings for the given segments in parallel.
func rebuildIndexes(segs []*segment) {
	if len(segs) == 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(segs) {
		workers = len(segs)
	}
	work := make(chan *segment)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seg := range work {
				seg.rebuildIndex()
			}
		}()
	}
	for _, seg := range segs {
		work <- seg
	}
	close(work)
	wg.Wait()
}

// swapFrom installs the staged store's contents under every shard lock at
// once, so concurrent readers see the old store or the new one — never a
// mix — and the sequence counter is only ever reset while no Add can be
// in flight.
func (s *Store) swapFrom(staged *Store) {
	// Per-segment byte accounting is maintained on every load path, so the
	// store total is the sum over the staged chains.
	var bytes int64
	for i := range staged.shards {
		for _, seg := range staged.shards[i].segs {
			bytes += seg.bytes
		}
	}
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	for i := range s.shards {
		s.shards[i].segs = staged.shards[i].segs
	}
	s.seq.Store(staged.seq.Load())
	s.count.Store(staged.count.Load())
	s.bytesTotal.Store(bytes)
	s.evictFloor.Store(0)
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
}
