// Snapshot/restore of the segmented TIB (the stand-in for the paper's
// MongoDB persistence).
//
// Two wire formats coexist:
//
//   - v2 (written by Snapshot): a raw 8-byte magic prefix, then a gob
//     stream of a header followed by one record per segment — entries
//     with their original sequence stamps, time bounds, and (for sealed
//     segments) the flow/link postings verbatim. Restore adopts segments
//     wholesale: no per-record re-Add, and index rebuild only for the
//     few segments written without postings (each shard's active
//     segment, whose maps may be mutated mid-snapshot by concurrent
//     ingest and are therefore not captured).
//
//   - v1 (legacy, no magic): a gob []types.Record in global insertion
//     order. LoadSnapshot still accepts it, distributing records into
//     segments and rebuilding every index — in parallel, one goroutine
//     per segment, instead of the old single re-Add loop.
//
// Either way LoadSnapshot is atomic: the incoming stream is fully
// decoded and validated into a staged store first, and only then swapped
// in under every shard lock at once. A mid-stream decode error leaves
// the prior contents untouched, and concurrent readers see either the
// old store or the new one — never a half-cleared mix.
package tib

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"

	"pathdump/internal/types"
)

// ErrIncompatibleDelta reports an incremental snapshot this store
// cannot apply — a stripe-count mismatch, or a gap/overlap between the
// delta and local state. The caller's remedy is a full snapshot pull
// (rpc.StandbyReplica does this automatically).
var ErrIncompatibleDelta = errors.New("tib: incremental snapshot incompatible with local store")

// snapshotMagic prefixes v2 snapshots; v1 blobs are bare gob streams and
// cannot begin with these bytes (gob's first byte is a length, and a
// stream this short is not a valid v1 blob anyway).
const snapshotMagic = "PDTIBv2\n"

// snapshotHeader opens the v2 gob stream. Incremental streams reuse the
// same magic and header shape with Version 3 and a non-zero Since, so a
// v2-only loader rejects them loudly ("unsupported snapshot version 3")
// instead of silently adopting a delta as a whole store.
type snapshotHeader struct {
	Version int
	// Shards is the writing store's stripe count: a reader with the same
	// count adopts segments directly, anything else redistributes by flow
	// hash (the mapping depends on the stripe count).
	Shards int
	// Seq is the writer's global sequence counter at capture time, so
	// appends after a restore extend the original arrival order.
	Seq uint64
	// Indexed records whether the writer maintained flow/link postings.
	Indexed bool
	// Since is the watermark an incremental stream (Version 3) was cut
	// at: only segments holding records with sequence > Since follow.
	// Zero on full snapshots.
	Since uint64
}

// wireSegment is one segment on the wire. A Shard of -1 terminates the
// stream (distinguishing a complete snapshot from one cut off mid-write).
type wireSegment struct {
	Shard int
	Seqs  []uint64
	Recs  []types.Record
	// ByFlow/ByLink are the segment's postings, nil when the writer could
	// not capture them immutably (the active segment); the loader rebuilds
	// those.
	ByFlow           map[types.FlowID][]int
	ByLink           map[types.LinkID][]int
	MinTime, MaxTime types.Time
}

// segView is one segment's immutable capture for the writer. A cold
// segment is captured by stub reference (cold non-nil) and its contents
// demand-loaded at encode time, outside the shard locks.
type segView struct {
	entries          []entry
	byFlow           map[types.FlowID][]int
	byLink           map[types.LinkID][]int
	minTime, maxTime types.Time
	seqHi            uint64
	cold             *segment
	// trimAfter, when non-zero, tells the encoder to ship only the
	// entries with seq > trimAfter — set for segments straddling an
	// incremental snapshot's watermark, so a delta never re-ships records
	// the receiver already holds.
	trimAfter uint64
}

// captureSegments snapshots every shard's segment chain under all shard
// read-locks at once (a consistent, downward-closed prefix of the global
// arrival order, like every scan). Sealed segments are captured by
// reference — they are immutable. The active segment's entries slice is
// append-only so its header is safe too, but its posting maps mutate in
// place under the shard lock, so they are left nil and rebuilt on load.
// Cold segments are captured as stub references for the encoder to thaw.
func (s *Store) captureSegments() (views [][]segView, seq uint64) {
	for i := range s.shards {
		s.shards[i].mu.RLock()
	}
	views = make([][]segView, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		for _, seg := range sh.segs {
			if seg.recs() == 0 {
				continue
			}
			if seg.cold {
				views[i] = append(views[i], segView{cold: seg, minTime: seg.minTime, maxTime: seg.maxTime, seqHi: seg.seqHi})
				continue
			}
			v := segView{entries: seg.entries, minTime: seg.minTime, maxTime: seg.maxTime, seqHi: seg.entries[len(seg.entries)-1].seq}
			if seg.sealed {
				v.byFlow, v.byLink = seg.byFlow, seg.byLink
			}
			views[i] = append(views[i], v)
		}
	}
	seq = s.seq.Load() // exact: assignment happens under shard locks, all held
	for i := range s.shards {
		s.shards[i].mu.RUnlock()
	}
	return views, seq
}

// Snapshot serialises the store in the v2 segment-wise format. The
// capture is a momentary all-shard lock hold (header copies only);
// encoding streams outside the locks, so concurrent ingest proceeds
// while a large snapshot is written. Cold segments are demand-loaded
// one at a time during the encode — a snapshot always carries the whole
// store, however it is tiered — and a cold file that cannot be read
// back fails the snapshot with a *ColdReadError.
func (s *Store) Snapshot(w io.Writer) error {
	views, seq := s.captureSegments()
	return s.encodeSnapshot(w, views, snapshotHeader{Version: 2, Shards: len(s.shards), Seq: seq, Indexed: s.indexed})
}

// SnapshotSince serialises an incremental snapshot: only segments
// holding records with arrival sequence greater than since, in the
// Version-3 framing (same magic, Since set in the header). A standby
// that applied a full snapshot at watermark N catches up by applying a
// SnapshotSince(N) stream — see ApplyIncremental.
//
// When the delta cannot be honest, the full Version-2 snapshot is
// written instead and the receiver detects the difference from the
// header: since 0 (no watermark), since beyond the writer's own
// sequence counter (the watermark is from a different store lineage),
// or since at or below evictedThroughSeq (eviction has destroyed part
// of the requested range — the fallback the "watermark older than
// retention" case exercises).
func (s *Store) SnapshotSince(w io.Writer, since uint64) error {
	views, seq := s.captureSegments()
	// The eviction watermark is checked after capture: eviction takes
	// every shard write lock, so it either completed before the capture
	// (and is visible here) or starts after it (and the captured
	// references keep their data alive regardless).
	if since == 0 || since > seq || since <= s.evictedThroughSeq.Load() {
		return s.encodeSnapshot(w, views, snapshotHeader{Version: 2, Shards: len(s.shards), Seq: seq, Indexed: s.indexed})
	}
	delta := make([][]segView, len(views))
	for i, segs := range views {
		for _, v := range segs {
			if v.seqHi <= since {
				continue
			}
			// A segment straddling the watermark — typically each shard's
			// active segment — is shipped trimmed to its unseen suffix, so
			// the delta's cost tracks the new data, not the segment size.
			lo := uint64(0)
			if v.cold != nil {
				lo = v.cold.seqLo
			} else if len(v.entries) > 0 {
				lo = v.entries[0].seq
			}
			if lo <= since {
				v.trimAfter = since
			}
			delta[i] = append(delta[i], v)
		}
	}
	return s.encodeSnapshot(w, delta, snapshotHeader{Version: 3, Shards: len(s.shards), Seq: seq, Indexed: s.indexed, Since: since})
}

// encodeSnapshot streams captured views in the magic+header+segments
// framing shared by full and incremental snapshots, thawing cold
// captures one at a time.
func (s *Store) encodeSnapshot(w io.Writer, views [][]segView, hdr snapshotHeader) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for si, segs := range views {
		for _, v := range segs {
			if v.cold != nil {
				th, err := s.thaw(v.cold)
				if err != nil {
					return err
				}
				if th == nil {
					continue // evicted while encoding: it is gone either way
				}
				v.entries, v.byFlow, v.byLink = th.entries, th.byFlow, th.byLink
			}
			if v.trimAfter > 0 {
				// Keep only the suffix with seq > trimAfter. Entries are
				// sequence-ascending, postings index the whole segment
				// (ship nil, the receiver rebuilds) and the time bracket
				// is recomputed over the survivors.
				cut := sort.Search(len(v.entries), func(k int) bool {
					return v.entries[k].seq > v.trimAfter
				})
				v.entries = v.entries[cut:]
				if len(v.entries) == 0 {
					continue
				}
				v.byFlow, v.byLink = nil, nil
				v.minTime, v.maxTime = v.entries[0].rec.STime, v.entries[0].rec.ETime
				for k := range v.entries {
					if st := v.entries[k].rec.STime; st < v.minTime {
						v.minTime = st
					}
					if et := v.entries[k].rec.ETime; et > v.maxTime {
						v.maxTime = et
					}
				}
			}
			ws := wireSegment{
				Shard:   si,
				Seqs:    make([]uint64, len(v.entries)),
				Recs:    make([]types.Record, len(v.entries)),
				ByFlow:  v.byFlow,
				ByLink:  v.byLink,
				MinTime: v.minTime,
				MaxTime: v.maxTime,
			}
			for i := range v.entries {
				ws.Seqs[i] = v.entries[i].seq
				ws.Recs[i] = v.entries[i].rec
			}
			if err := enc.Encode(ws); err != nil {
				return err
			}
		}
	}
	if err := enc.Encode(wireSegment{Shard: -1}); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadSnapshot replaces the store contents from a snapshot in either
// format (v2 by magic prefix, bare gob = legacy v1). The replacement is
// atomic — see the package comment at the top of this file.
func (s *Store) LoadSnapshot(r io.Reader) error {
	br := bufio.NewReader(r)
	magic, err := br.Peek(len(snapshotMagic))
	if err == nil && bytes.Equal(magic, []byte(snapshotMagic)) {
		if _, err := br.Discard(len(snapshotMagic)); err != nil {
			return err
		}
		return s.loadV2(br)
	}
	// Too short for the magic, or a different prefix: let the v1 decoder
	// produce the authoritative result (or error) from the full stream.
	return s.loadV1(br)
}

// emptyClone builds an empty store with this store's configuration.
func (s *Store) emptyClone() *Store {
	return NewStoreConfig(Config{
		Shards:         len(s.shards),
		SegmentSpan:    s.segSpan,
		SegmentRecords: s.segRecords,
		Retention:      s.retention,
		RetentionBytes: s.retentionBytes,
		Unindexed:      !s.indexed,
	})
}

// loadV2 decodes the segment-wise stream into a staged store and swaps it
// in. Segments from a writer with the same stripe count are adopted
// wholesale (postings intact where present); a different stripe count
// forces redistribution, because the flow→shard mapping changes.
func (s *Store) loadV2(r io.Reader) error {
	dec := gob.NewDecoder(r)
	var hdr snapshotHeader
	if err := dec.Decode(&hdr); err != nil {
		return fmt.Errorf("tib: snapshot header: %w", err)
	}
	if hdr.Version == 3 {
		return fmt.Errorf("tib: stream is an incremental snapshot (since %d); LoadSnapshot needs a full one — use ApplyIncremental", hdr.Since)
	}
	if hdr.Version != 2 {
		return fmt.Errorf("tib: unsupported snapshot version %d", hdr.Version)
	}
	return s.loadV2Body(dec, hdr)
}

// loadV2Body stages and swaps in a full Version-2 segment stream whose
// header has already been read.
func (s *Store) loadV2Body(dec *gob.Decoder, hdr snapshotHeader) error {
	if hdr.Shards < 1 {
		return fmt.Errorf("tib: snapshot declares %d shards", hdr.Shards)
	}
	staged := s.emptyClone()
	sameShape := hdr.Shards == len(staged.shards)
	var (
		total   int64
		rebuild []*segment
		flat    []entry // only for the reshape path
	)
	for {
		var ws wireSegment
		if err := dec.Decode(&ws); err != nil {
			return fmt.Errorf("tib: snapshot cut off mid-stream: %w", err)
		}
		if ws.Shard == -1 {
			break // terminator: the writer finished
		}
		if err := validateSegment(&ws, hdr.Shards); err != nil {
			return err
		}
		total += int64(len(ws.Recs))
		if !sameShape {
			for i := range ws.Recs {
				flat = append(flat, entry{seq: ws.Seqs[i], rec: ws.Recs[i]})
			}
			continue
		}
		seg := &segment{
			sealed:  true,
			entries: make([]entry, len(ws.Recs)),
			byFlow:  ws.ByFlow,
			byLink:  ws.ByLink,
			minTime: ws.MinTime,
			maxTime: ws.MaxTime,
		}
		for i := range ws.Recs {
			seg.entries[i] = entry{seq: ws.Seqs[i], rec: ws.Recs[i]}
			seg.bytes += recSize(&ws.Recs[i])
		}
		// Blooms are not persisted; adopted sealed segments rebuild theirs
		// from the freshly populated entries.
		seg.buildFilter()
		sh := &staged.shards[ws.Shard]
		// Insert before the (empty) active segment, keeping the chain
		// sequence-monotonic — the writer emitted each shard's segments in
		// chain order.
		if prev := sh.segs[:len(sh.segs)-1]; len(prev) > 0 {
			if last := prev[len(prev)-1]; last.entries[len(last.entries)-1].seq >= seg.entries[0].seq {
				return fmt.Errorf("tib: snapshot shard %d segments out of sequence order", ws.Shard)
			}
		}
		sh.segs = append(sh.segs[:len(sh.segs)-1], seg, sh.segs[len(sh.segs)-1])
		if staged.indexed && seg.byFlow == nil {
			rebuild = append(rebuild, seg)
		}
		if !staged.indexed {
			seg.byFlow, seg.byLink = nil, nil
		}
	}
	if !sameShape {
		sort.Slice(flat, func(i, j int) bool { return flat[i].seq < flat[j].seq })
		var err error
		if staged, err = s.buildFrom(flat); err != nil {
			return err
		}
	} else {
		rebuildIndexes(rebuild)
	}
	seq := hdr.Seq
	if seq < uint64(total) {
		seq = uint64(total) // corrupt-tolerant: never reuse live sequence space
	}
	staged.seq.Store(seq)
	staged.count.Store(total)
	s.swapFrom(staged)
	return nil
}

// validateSegment bounds-checks one wire segment so corrupt input fails
// with an error instead of an out-of-range panic — or, worse, silently
// wrong pruning — at query time.
func validateSegment(ws *wireSegment, shards int) error {
	if ws.Shard < 0 || ws.Shard >= shards {
		return fmt.Errorf("tib: snapshot segment names shard %d of %d", ws.Shard, shards)
	}
	if len(ws.Seqs) != len(ws.Recs) {
		return fmt.Errorf("tib: snapshot segment has %d seqs for %d records", len(ws.Seqs), len(ws.Recs))
	}
	if len(ws.Recs) == 0 {
		return fmt.Errorf("tib: snapshot contains an empty segment")
	}
	for i := 1; i < len(ws.Seqs); i++ {
		if ws.Seqs[i] <= ws.Seqs[i-1] {
			return fmt.Errorf("tib: snapshot segment sequence numbers not ascending")
		}
	}
	for i := range ws.Recs {
		// Declared time bounds must bracket every record: bounds
		// narrower than the data would make scans prune records that
		// exist — silent wrong answers, the worst failure mode.
		if ws.Recs[i].STime < ws.MinTime || ws.Recs[i].ETime > ws.MaxTime {
			return fmt.Errorf("tib: snapshot segment bounds [%v,%v] exclude record %d (%v..%v)",
				ws.MinTime, ws.MaxTime, i, ws.Recs[i].STime, ws.Recs[i].ETime)
		}
	}
	for _, idxs := range ws.ByFlow {
		for _, i := range idxs {
			if i < 0 || i >= len(ws.Recs) {
				return fmt.Errorf("tib: snapshot flow posting out of range")
			}
		}
	}
	for _, idxs := range ws.ByLink {
		for _, i := range idxs {
			if i < 0 || i >= len(ws.Recs) {
				return fmt.Errorf("tib: snapshot link posting out of range")
			}
		}
	}
	return nil
}

// loadV1 decodes a legacy []types.Record blob and rebuilds the segmented
// store from it.
func (s *Store) loadV1(r io.Reader) error {
	var recs []types.Record
	if err := gob.NewDecoder(r).Decode(&recs); err != nil {
		return err
	}
	entries := make([]entry, len(recs))
	for i, rec := range recs {
		// v1 wrote global insertion order; reassigning 1..n preserves it.
		entries[i] = entry{seq: uint64(i + 1), rec: rec}
	}
	staged, err := s.buildFrom(entries)
	if err != nil {
		return err
	}
	staged.seq.Store(uint64(len(entries)))
	staged.count.Store(int64(len(entries)))
	s.swapFrom(staged)
	return nil
}

// buildFrom distributes entries (ascending global sequence order) into a
// fresh staged store — flow-hashed onto shards, sealed into segments by
// the store's own seal policy — and then rebuilds every segment's index
// in parallel, one goroutine per segment up to GOMAXPROCS. This replaces
// the old single-threaded re-Add loop: distribution is a cheap
// sequential pass, and the expensive part (posting-map construction) is
// what parallelises.
func (s *Store) buildFrom(entries []entry) (*Store, error) {
	staged := s.emptyClone()
	for i := range entries {
		if i > 0 && entries[i].seq <= entries[i-1].seq {
			return nil, fmt.Errorf("tib: snapshot records out of sequence order")
		}
		sh := staged.shardFor(entries[i].rec.Flow)
		seg := sh.active()
		if staged.shouldSeal(seg, &entries[i].rec) {
			seg.seal() // postings are nil here, so the bloom builds from entries
			seg = newSegment(false)
			sh.segs = append(sh.segs, seg)
		}
		seg.add(entries[i], false) // postings rebuilt below, in parallel
	}
	if staged.indexed {
		var segs []*segment
		for i := range staged.shards {
			for _, seg := range staged.shards[i].segs {
				if len(seg.entries) > 0 {
					segs = append(segs, seg)
				}
			}
		}
		rebuildIndexes(segs)
	}
	return staged, nil
}

// rebuildIndexes recomputes postings for the given segments in parallel.
func rebuildIndexes(segs []*segment) {
	if len(segs) == 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(segs) {
		workers = len(segs)
	}
	work := make(chan *segment)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seg := range work {
				seg.rebuildIndex()
			}
		}()
	}
	for _, seg := range segs {
		work <- seg
	}
	close(work)
	wg.Wait()
}

// swapFrom installs the staged store's contents under every shard lock at
// once, so concurrent readers see the old store or the new one — never a
// mix — and the sequence counter is only ever reset while no Add can be
// in flight. Cold segments of the replaced contents have their files
// removed (marked dropped first, so scans that captured them resolve as
// evicted-under-scan rather than corrupt).
func (s *Store) swapFrom(staged *Store) {
	// Per-segment byte accounting is maintained on every load path, so the
	// store total is the sum over the staged chains. Everything below the
	// smallest staged sequence is unknowable after the swap (the snapshot
	// does not say whether the writer ever had it), so the evicted-through
	// watermark moves there and SnapshotSince refuses deltas reaching
	// below it.
	var bytes int64
	minSeq := staged.seq.Load()
	for i := range staged.shards {
		for _, seg := range staged.shards[i].segs {
			bytes += seg.bytes
			if len(seg.entries) > 0 && seg.entries[0].seq-1 < minSeq {
				minSeq = seg.entries[0].seq - 1
			}
		}
	}
	var coldFiles []string
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	for i := range s.shards {
		for _, seg := range s.shards[i].segs {
			if seg.cold {
				seg.dropped.Store(true)
				coldFiles = append(coldFiles, seg.coldPath)
			}
		}
		s.shards[i].segs = staged.shards[i].segs
	}
	s.seq.Store(staged.seq.Load())
	s.count.Store(staged.count.Load())
	s.bytesTotal.Store(bytes)
	s.coldBytesTotal.Store(0)
	s.evictFloor.Store(0)
	s.spillFloor.Store(0)
	s.evictedThroughSeq.Store(minSeq)
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
	for _, p := range coldFiles {
		os.Remove(p)
	}
}

// ApplyIncremental advances this store from a SnapshotSince stream. The
// stream may turn out to be a full Version-2 snapshot — the writer
// falls back to full when the requested watermark is unserveable — in
// which case the store is replaced wholesale, exactly as LoadSnapshot
// would. A Version-3 delta is reconciled per shard: local segments that
// the delta re-ships grown or re-cut (same starting sequence or later)
// are dropped and replaced; strictly older local segments are kept, so
// a standby may retain more lookback than the agent it mirrors.
//
// Like LoadSnapshot, application is atomic: the delta is fully decoded
// and validated first, and installed under every shard lock at once. A
// reconciliation that cannot be proven consistent (stripe mismatch,
// overlapping sequence ranges) fails with ErrIncompatibleDelta and
// leaves the store untouched — the caller re-pulls a full snapshot.
func (s *Store) ApplyIncremental(r io.Reader) error {
	br := bufio.NewReader(r)
	magic, err := br.Peek(len(snapshotMagic))
	if err != nil || !bytes.Equal(magic, []byte(snapshotMagic)) {
		return fmt.Errorf("tib: incremental snapshot missing v2 magic")
	}
	if _, err := br.Discard(len(snapshotMagic)); err != nil {
		return err
	}
	dec := gob.NewDecoder(br)
	var hdr snapshotHeader
	if err := dec.Decode(&hdr); err != nil {
		return fmt.Errorf("tib: snapshot header: %w", err)
	}
	switch hdr.Version {
	case 2:
		return s.loadV2Body(dec, hdr) // writer fell back to full
	case 3:
		return s.applyDelta(dec, hdr)
	default:
		return fmt.Errorf("tib: unsupported snapshot version %d", hdr.Version)
	}
}

// applyDelta decodes, validates and installs a Version-3 delta stream.
func (s *Store) applyDelta(dec *gob.Decoder, hdr snapshotHeader) error {
	if hdr.Shards != len(s.shards) {
		return fmt.Errorf("%w: delta written for %d shards, store has %d", ErrIncompatibleDelta, hdr.Shards, len(s.shards))
	}
	// Stage: decode every wire segment into a ready segment, grouped by
	// shard, before any lock is taken.
	incoming := make([][]*segment, len(s.shards))
	var rebuild []*segment
	for {
		var ws wireSegment
		if err := dec.Decode(&ws); err != nil {
			return fmt.Errorf("tib: incremental snapshot cut off mid-stream: %w", err)
		}
		if ws.Shard == -1 {
			break
		}
		if err := validateSegment(&ws, hdr.Shards); err != nil {
			return err
		}
		seg := &segment{
			sealed:  true,
			entries: make([]entry, len(ws.Recs)),
			byFlow:  ws.ByFlow,
			byLink:  ws.ByLink,
			minTime: ws.MinTime,
			maxTime: ws.MaxTime,
		}
		for i := range ws.Recs {
			seg.entries[i] = entry{seq: ws.Seqs[i], rec: ws.Recs[i]}
			seg.bytes += recSize(&ws.Recs[i])
		}
		seg.buildFilter()
		if prev := incoming[ws.Shard]; len(prev) > 0 && prev[len(prev)-1].lastSeq() >= seg.firstSeq() {
			return fmt.Errorf("tib: incremental snapshot shard %d segments out of sequence order", ws.Shard)
		}
		incoming[ws.Shard] = append(incoming[ws.Shard], seg)
		if s.indexed && seg.byFlow == nil {
			rebuild = append(rebuild, seg)
		}
		if !s.indexed {
			seg.byFlow, seg.byLink = nil, nil
		}
	}
	rebuildIndexes(rebuild)

	// Install under every shard lock at once, like swapFrom, so readers
	// see the store before or after the delta — never mid-application.
	var addedRecs, droppedRecs int64
	var addedBytes, droppedBytes, droppedCold int64
	var coldFiles []string
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	unlock := func() {
		for i := range s.shards {
			s.shards[i].mu.Unlock()
		}
	}
	// A delta that starts beyond everything this store holds would leave
	// a hole between the local data and the shipped segments. With every
	// shard lock held the sequence counter is stable, so this check and
	// the per-shard cuts below see one consistent store.
	if hdr.Since > s.seq.Load() {
		unlock()
		return fmt.Errorf("%w: delta starts at seq %d, store ends at %d", ErrIncompatibleDelta, hdr.Since, s.seq.Load())
	}
	// Validate the reconciliation on every shard before mutating any.
	cuts := make([]int, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		ins := incoming[i]
		cuts[i] = len(sh.segs)
		if len(ins) == 0 {
			continue
		}
		in0 := ins[0].firstSeq()
		for j, seg := range sh.segs {
			if seg.recs() == 0 || seg.firstSeq() >= in0 {
				cuts[i] = j
				break
			}
		}
		if j := cuts[i]; j > 0 {
			if last := sh.segs[j-1]; last.recs() > 0 && last.lastSeq() >= in0 {
				unlock()
				return fmt.Errorf("%w: shard %d local records overlap delta start %d", ErrIncompatibleDelta, i, in0)
			}
		}
	}
	for i := range s.shards {
		sh := &s.shards[i]
		ins := incoming[i]
		if len(ins) == 0 {
			continue
		}
		for _, seg := range sh.segs[cuts[i]:] {
			droppedRecs += int64(seg.recs())
			droppedBytes += seg.bytes
			if seg.cold {
				droppedCold += seg.coldBytes
				seg.dropped.Store(true)
				coldFiles = append(coldFiles, seg.coldPath)
			}
		}
		kept := sh.segs[:cuts[i]:cuts[i]]
		if n := len(kept); n > 0 && !kept[n-1].sealed {
			// The old active segment survives the cut whole: freeze it
			// so the chain invariant (only the last segment unsealed)
			// holds once the delta's segments follow it.
			kept[n-1].seal()
			s.sealCount.Add(1)
		}
		for _, seg := range ins {
			addedRecs += int64(len(seg.entries))
			addedBytes += seg.bytes
		}
		sh.segs = append(append(kept, ins...), newSegment(s.indexed))
	}
	if hdr.Seq > s.seq.Load() {
		s.seq.Store(hdr.Seq)
	}
	s.count.Add(addedRecs - droppedRecs)
	s.bytesTotal.Add(addedBytes - droppedBytes)
	s.coldBytesTotal.Add(-droppedCold)
	unlock()
	for _, p := range coldFiles {
		os.Remove(p)
	}
	return nil
}
