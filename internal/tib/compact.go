// Background compaction: merging runs of small sealed segments.
//
// Retention churn fragments shard chains — byte-budget evictions, v1
// snapshot loads and low-rate shards all leave fleets of tiny sealed
// segments, and every one of them costs a cursor, a bloom probe and a
// posting-map lookup on every scan that cannot prune it. Compaction
// merges adjacent runs of small sealed segments back up toward the
// configured seal size, rebuilding postings and the bloom for the
// merged segment.
//
// Correctness rests on two facts. Shard chains are sequence-monotonic
// and compaction only ever merges *adjacent* segments of one chain, so
// the merged entries (a concatenation in chain order) are already in
// global arrival order — scans through a compacted store return exactly
// the records, in exactly the order, the uncompacted store returned.
// And sealed segments are immutable, so the expensive work (entry
// concatenation, index rebuild, bloom build) runs outside the shard
// lock on captured references; only the final splice takes the write
// lock, and it re-verifies that every victim still sits where the plan
// found it — a run disturbed by a concurrent eviction or cold-tier
// spill is simply abandoned and retried by a later pass.
package tib

// compactMinSeals is MaybeCompact's trigger threshold: a full
// compaction pass is considered only after this many segments have been
// sealed since the last pass, so the per-record ingest path pays one
// atomic load almost always.
const compactMinSeals = 8

// compactRun is one planned merge: adjacent sealed segments of a single
// shard, in chain order.
type compactRun struct {
	shard int
	segs  []*segment
}

// Compactions returns how many segment merges have completed since the
// store was built.
func (s *Store) Compactions() uint64 { return s.compactions.Load() }

// Seals reports how many active segments have been sealed since the
// store was built. Cumulative: compaction replaces sealed segments but
// never rewinds this counter.
func (s *Store) Seals() uint64 { return s.sealCount.Load() }

// MaybeCompact runs a compaction pass only when enough segments have
// sealed since the last one and no other compactor is active — cheap
// enough for the agent to call per exported record, mirroring how
// EvictBefore is throttled. Returns how many merged segments were
// produced and how many source segments they replaced (0, 0 when
// compaction is disabled or the pass was skipped).
func (s *Store) MaybeCompact() (merged, replaced int) {
	if s.compactBelow <= 0 {
		return 0, 0
	}
	if s.sealCount.Load()-s.compactMark.Load() < compactMinSeals {
		return 0, 0
	}
	if !s.compactMu.TryLock() {
		return 0, 0 // another compactor is mid-pass
	}
	defer s.compactMu.Unlock()
	merged, replaced = s.compactPass()
	s.compactMark.Store(s.sealCount.Load())
	return merged, replaced
}

// Compact runs one full compaction pass unconditionally (compaction
// must still be enabled via Config.CompactBelow). Safe under concurrent
// ingest, scans and eviction; one pass runs at a time.
func (s *Store) Compact() (merged, replaced int) {
	if s.compactBelow <= 0 {
		return 0, 0
	}
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	merged, replaced = s.compactPass()
	s.compactMark.Store(s.sealCount.Load())
	return merged, replaced
}

// compactPass plans, builds and commits merges for every shard. Caller
// holds compactMu.
func (s *Store) compactPass() (merged, replaced int) {
	target := s.segRecords
	if target <= 0 {
		target = DefaultSegmentRecords
	}
	for i := range s.shards {
		for _, run := range s.planShard(i, target) {
			if s.commitRun(run, s.buildMerged(run)) {
				merged++
				replaced += len(run.segs)
				s.compactions.Add(1)
			}
		}
	}
	return merged, replaced
}

// planShard captures merge candidates under a momentary read lock: runs
// of two or more adjacent sealed, resident segments each smaller than
// CompactBelow, greedily grouped while the merged segment stays at or
// under the seal target. The active segment never participates.
//
// On a time-retained store, a run's merged time span is additionally
// capped at half the retention window. Without the cap, compaction
// would keep gluing old fragments onto freshly sealed ones, producing
// a merged segment whose maxTime tracks the present — a segment that
// never ages past the eviction cutoff, quietly defeating retention and
// cold tiering. With it, eviction staleness is bounded at 1.5x the
// window: merged data waits at most an extra half-window to expire.
func (s *Store) planShard(shard, target int) []compactRun {
	spanCap := s.retention / 2
	sh := &s.shards[shard]
	var runs []compactRun
	var cur []*segment
	size := 0
	flush := func() {
		if len(cur) >= 2 {
			runs = append(runs, compactRun{shard: shard, segs: cur})
		}
		cur, size = nil, 0
	}
	sh.mu.RLock()
	for _, seg := range sh.segs[:len(sh.segs)-1] { // last is the active segment
		n := len(seg.entries)
		if !seg.sealed || seg.cold || n == 0 || n >= s.compactBelow {
			flush()
			continue
		}
		if size+n > target {
			flush()
		}
		if len(cur) > 0 && spanCap > 0 && seg.maxTime-cur[0].minTime > spanCap {
			flush()
		}
		cur = append(cur, seg)
		size += n
	}
	flush()
	sh.mu.RUnlock()
	return runs
}

// buildMerged concatenates a run's entries in chain order (already
// ascending in global sequence) and rebuilds the merged segment's
// postings and bloom. Runs lock-free on the immutable victims.
func (s *Store) buildMerged(run compactRun) *segment {
	total := 0
	for _, seg := range run.segs {
		total += len(seg.entries)
	}
	m := &segment{entries: make([]entry, 0, total)}
	m.minTime, m.maxTime = run.segs[0].minTime, run.segs[0].maxTime
	for _, seg := range run.segs {
		m.entries = append(m.entries, seg.entries...)
		m.bytes += seg.bytes
		if seg.minTime < m.minTime {
			m.minTime = seg.minTime
		}
		if seg.maxTime > m.maxTime {
			m.maxTime = seg.maxTime
		}
	}
	if s.indexed {
		m.rebuildIndex()
	}
	m.seal()
	return m
}

// commitRun splices the merged segment over its victims under the shard
// write lock — after re-verifying that every victim still occupies its
// planned position and none has been spilled cold in the meantime. Any
// disturbance (a concurrent EvictBefore, EvictOverBytes or SpillBefore
// claimed a victim) abandons the merge: the chain is left untouched and
// the merged segment is discarded. Byte and record accounting are
// unchanged by a successful commit — compaction moves records, it never
// creates or destroys them.
func (s *Store) commitRun(run compactRun, m *segment) bool {
	sh := &s.shards[run.shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	start := -1
	for j, seg := range sh.segs {
		if seg == run.segs[0] {
			start = j
			break
		}
	}
	if start < 0 || start+len(run.segs) > len(sh.segs) {
		return false
	}
	for k, want := range run.segs {
		got := sh.segs[start+k]
		if got != want || got.cold {
			return false
		}
	}
	sh.segs[start] = m
	sh.segs = append(sh.segs[:start+1], sh.segs[start+len(run.segs):]...)
	// Clear the vacated tail of the backing array so the dropped
	// victims are collectable.
	tail := sh.segs[len(sh.segs) : len(sh.segs)+len(run.segs)-1]
	for j := range tail {
		tail[j] = nil
	}
	return true
}
