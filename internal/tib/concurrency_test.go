package tib

import (
	"sync"
	"testing"

	"pathdump/internal/types"
)

// stressRecord builds a deterministic record for writer w, iteration i.
func stressRecord(w, i int) types.Record {
	f := types.FlowID{
		SrcIP: types.IP(w<<16 | i), DstIP: 99,
		SrcPort: uint16(i), DstPort: 80, Proto: 6,
	}
	return types.Record{
		Flow:  f,
		Path:  types.Path{types.SwitchID(i % 8), types.SwitchID(8 + i%8), types.SwitchID(16 + i%4)},
		STime: types.Time(i), ETime: types.Time(i + 10),
		Bytes: uint64(100 + i), Pkts: 1,
	}
}

// TestStoreConcurrentAddAndScan hammers one store with parallel ingest and
// every flavour of concurrent read — the exact interleaving the sharded
// TIB exists to make safe. Run under -race this proves the striped locks
// cover the full read surface; afterwards the contents must be complete.
func TestStoreConcurrentAddAndScan(t *testing.T) {
	for _, tc := range []struct {
		name  string
		store *Store
	}{
		{"indexed", NewStore()},
		{"unindexed", NewUnindexedStore()},
		{"single-shard", NewStoreShards(1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.store
			const (
				writers   = 8
				perWriter = 2000
				readers   = 8
			)
			var readGroup, writeGroup sync.WaitGroup
			stop := make(chan struct{})
			for r := 0; r < readers; r++ {
				readGroup.Add(1)
				go func(r int) {
					defer readGroup.Done()
					link := types.LinkID{A: types.SwitchID(r % 8), B: types.SwitchID(8 + r%8)}
					for {
						select {
						case <-stop:
							return
						default:
						}
						_ = s.Flows(link, types.AllTime)
						_ = s.Len()
						_, _ = s.Count(types.Flow{ID: stressRecord(r, 7).Flow}, types.AllTime)
						prev := uint64(0)
						s.ForEach(types.AnyLink, types.AllTime, func(rec *types.Record) {
							// Global insertion order must hold even
							// mid-ingest: bytes encode per-writer order
							// only, so just touch the record.
							prev += rec.Pkts
						})
						_ = prev
					}
				}(r)
			}
			for w := 0; w < writers; w++ {
				writeGroup.Add(1)
				go func(w int) {
					defer writeGroup.Done()
					for i := 0; i < perWriter; i++ {
						s.Add(stressRecord(w, i))
					}
				}(w)
			}
			writeGroup.Wait()
			close(stop)
			readGroup.Wait()

			if got := s.Len(); got != writers*perWriter {
				t.Fatalf("Len = %d, want %d", got, writers*perWriter)
			}
			// Every record is queryable afterwards.
			for w := 0; w < writers; w++ {
				f := stressRecord(w, 123).Flow
				if b, k := s.Count(types.Flow{ID: f}, types.AllTime); b != 223 || k != 1 {
					t.Fatalf("writer %d record lost: count=%d/%d", w, b, k)
				}
			}
		})
	}
}

// TestShardCountsAgree feeds identical records into stores of different
// shard counts and requires byte-identical query results: sharding is a
// locking strategy, not a semantics change. Sequential inserts must come
// back in exact insertion order from every configuration.
func TestShardCountsAgree(t *testing.T) {
	stores := map[string]*Store{
		"1":  NewStoreShards(1),
		"4":  NewStoreShards(4),
		"16": NewStoreShards(16),
		"64": NewStoreShards(64),
	}
	var recs []types.Record
	for i := 0; i < 700; i++ {
		recs = append(recs, stressRecord(i%5, i))
	}
	for _, s := range stores {
		for _, r := range recs {
			s.Add(r)
		}
	}
	ref := stores["1"]
	refFlows := ref.Flows(types.AnyLink, types.AllTime)
	refLink := ref.Flows(types.LinkID{A: 2, B: 10}, types.AllTime)
	var refScan []types.Record
	ref.ForEach(types.AnyLink, types.AllTime, func(r *types.Record) { refScan = append(refScan, *r) })

	for name, s := range stores {
		if name == "1" {
			continue
		}
		flows := s.Flows(types.AnyLink, types.AllTime)
		if len(flows) != len(refFlows) {
			t.Fatalf("shards=%s: %d flows, want %d", name, len(flows), len(refFlows))
		}
		for i := range flows {
			if flows[i].ID != refFlows[i].ID || !flows[i].Path.Equal(refFlows[i].Path) {
				t.Fatalf("shards=%s: flow %d = %v, want %v (insertion order broken)",
					name, i, flows[i], refFlows[i])
			}
		}
		link := s.Flows(types.LinkID{A: 2, B: 10}, types.AllTime)
		for i := range link {
			if link[i].ID != refLink[i].ID {
				t.Fatalf("shards=%s: indexed link scan order differs at %d", name, i)
			}
		}
		i := 0
		s.ForEach(types.AnyLink, types.AllTime, func(r *types.Record) {
			if i < len(refScan) && (r.Flow != refScan[i].Flow || r.Bytes != refScan[i].Bytes) {
				t.Fatalf("shards=%s: ForEach order differs at %d", name, i)
			}
			i++
		})
		if i != len(refScan) {
			t.Fatalf("shards=%s: ForEach visited %d records, want %d", name, i, len(refScan))
		}
		// Per-flow iteration and aggregates agree too.
		f := recs[3].Flow
		p1 := ref.Paths(f, types.AnyLink, types.AllTime)
		p2 := s.Paths(f, types.AnyLink, types.AllTime)
		if len(p1) != len(p2) {
			t.Fatalf("shards=%s: Paths disagree", name)
		}
		b1, k1 := ref.Count(types.Flow{ID: f}, types.AllTime)
		b2, k2 := s.Count(types.Flow{ID: f}, types.AllTime)
		if b1 != b2 || k1 != k2 {
			t.Fatalf("shards=%s: Count = %d/%d, want %d/%d", name, b2, k2, b1, k1)
		}
	}
}
