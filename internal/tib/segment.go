package tib

import (
	"sort"
	"sync/atomic"

	"pathdump/internal/types"
)

// segment is one time partition of a shard's record log: a slice of
// sequence-stamped entries plus that partition's flow and directed-link
// indexes, bracketed by the min/max record times it covers. The last
// segment of a shard is the active append target; once sealed (by record
// count or time span — see Store.shouldSeal) a segment is immutable:
// entries, postings and bounds never change again, so readers and the
// snapshot writer may hold references without locks.
type segment struct {
	sealed  bool
	entries []entry
	byFlow  map[types.FlowID][]int
	byLink  map[types.LinkID][]int
	// filter is the sealed segment's flow bloom (nil on active segments
	// and until seal): single-flow scans probe it before the posting map
	// and prune the segment whole on a miss. Immutable once set, and
	// retained in RAM when the segment spills cold so flow scans still
	// prune spilled segments without touching disk.
	filter *flowFilter
	// minTime/maxTime bracket [STime, ETime] over all entries; scans
	// prune the whole segment when the query range misses the bracket.
	minTime, maxTime types.Time
	// bytes is the segment's estimated resident footprint (recSize per
	// entry) — the unit of the byte-budget retention accounting. Spilling
	// a segment cold moves this to coldBytes (a cold segment costs its
	// metadata stub, not its records).
	bytes int64

	// Cold-tier state (see cold.go). A cold segment keeps only its
	// pruning metadata resident: entries and postings are nil and the
	// record data lives at coldPath in the v2 snapshot framing, loaded
	// transiently per scan by thaw. All transitions happen under the
	// shard write lock.
	cold      bool
	coldPath  string
	coldRecs  int   // record count while entries are spilled
	coldBytes int64 // estimated resident footprint if thawed
	// seqLo/seqHi are the arrival-sequence bounds, frozen at spill time
	// so watermark pruning works without the entries.
	seqLo, seqHi uint64
	// dropped flips (before the cold file is unlinked) when eviction
	// removes the segment, so a scan that captured the segment moments
	// earlier can tell "evicted under me" from "file corrupt".
	dropped atomic.Bool
}

// recs returns the segment's record count whether its entries are
// resident or spilled cold.
func (seg *segment) recs() int {
	if seg.cold {
		return seg.coldRecs
	}
	return len(seg.entries)
}

// firstSeq/lastSeq bracket the segment's global arrival sequence numbers.
// Sequence numbers are assigned under the shard write lock, so within a
// shard's chain both are monotone across segments and entries — watermark
// scans skip a whole segment when lastSeq() is at or below the watermark.
// Caller holds (at least) the shard read lock for the active segment;
// sealed segments are immutable. Cold segments answer from the bounds
// frozen at spill time.
func (seg *segment) firstSeq() uint64 {
	if seg.cold {
		return seg.seqLo
	}
	return seg.entries[0].seq
}

func (seg *segment) lastSeq() uint64 {
	if seg.cold {
		return seg.seqHi
	}
	return seg.entries[len(seg.entries)-1].seq
}

// seqOutside reports whether the (since, until] arrival-sequence window
// excludes the whole segment — the watermark prune check shared by every
// scan path. Caller guarantees the segment is non-empty.
func (seg *segment) seqOutside(since, until uint64) bool {
	return (since > 0 && seg.lastSeq() <= since) || (until > 0 && seg.firstSeq() > until)
}

// seqStart returns the index of the first entry past the since
// watermark: 0 when every entry qualifies, a binary-search position
// inside the one segment that straddles the watermark. Caller has
// already excluded segments wholly outside the window.
func (seg *segment) seqStart(since uint64) int {
	if since == 0 || seg.firstSeq() > since {
		return 0
	}
	return sort.Search(len(seg.entries), func(k int) bool { return seg.entries[k].seq > since })
}

func newSegment(indexed bool) *segment {
	seg := &segment{}
	if indexed {
		seg.byFlow = make(map[types.FlowID][]int)
		seg.byLink = make(map[types.LinkID][]int)
	}
	return seg
}

// add appends one entry to the (active) segment, updating bounds and
// postings. Caller holds the shard write lock.
func (seg *segment) add(e entry, indexed bool) {
	idx := len(seg.entries)
	if idx == 0 {
		seg.minTime, seg.maxTime = e.rec.STime, e.rec.ETime
	} else {
		if e.rec.STime < seg.minTime {
			seg.minTime = e.rec.STime
		}
		if e.rec.ETime > seg.maxTime {
			seg.maxTime = e.rec.ETime
		}
	}
	seg.entries = append(seg.entries, e)
	seg.bytes += recSize(&e.rec)
	if indexed {
		seg.byFlow[e.rec.Flow] = append(seg.byFlow[e.rec.Flow], idx)
		for _, l := range e.rec.Path.Links() {
			seg.byLink[l] = append(seg.byLink[l], idx)
		}
	}
}

// seal freezes the segment — entries, postings and bounds immutable from
// here on — and builds its flow bloom filter. Caller holds the shard
// write lock (or owns the segment exclusively, as the load paths do).
func (seg *segment) seal() {
	seg.sealed = true
	seg.buildFilter()
}

// buildFilter (re)computes the segment's flow bloom from its entries —
// always the ground truth, even on load paths where the posting maps are
// stale or still pending a rebuild. The map only informs sizing when it
// is populated; otherwise the entry count stands in (an overestimate —
// distinct flows ≤ entries — which only makes the filter sparser).
func (seg *segment) buildFilter() {
	distinct := len(seg.byFlow)
	if distinct == 0 {
		distinct = len(seg.entries)
	}
	f := newFlowFilter(distinct)
	for i := range seg.entries {
		f.add(flowHash64(seg.entries[i].rec.Flow))
	}
	seg.filter = f
}

// overlaps reports whether any record in the segment can intersect tr.
// Empty segments overlap nothing. Cold segments answer from their
// retained bounds.
func (seg *segment) overlaps(tr types.TimeRange) bool {
	if seg.recs() == 0 {
		return false
	}
	return tr.Overlaps(seg.minTime, seg.maxTime)
}

// rebuildIndex recomputes the segment's postings from its entries — the
// legacy-snapshot load path runs this per segment, in parallel.
func (seg *segment) rebuildIndex() {
	seg.byFlow = make(map[types.FlowID][]int, len(seg.entries))
	seg.byLink = make(map[types.LinkID][]int)
	for i := range seg.entries {
		rec := &seg.entries[i].rec
		seg.byFlow[rec.Flow] = append(seg.byFlow[rec.Flow], i)
		for _, l := range rec.Path.Links() {
			seg.byLink[l] = append(seg.byLink[l], i)
		}
	}
}
