package tib

import "pathdump/internal/types"

// segment is one time partition of a shard's record log: a slice of
// sequence-stamped entries plus that partition's flow and directed-link
// indexes, bracketed by the min/max record times it covers. The last
// segment of a shard is the active append target; once sealed (by record
// count or time span — see Store.shouldSeal) a segment is immutable:
// entries, postings and bounds never change again, so readers and the
// snapshot writer may hold references without locks.
type segment struct {
	sealed  bool
	entries []entry
	byFlow  map[types.FlowID][]int
	byLink  map[types.LinkID][]int
	// minTime/maxTime bracket [STime, ETime] over all entries; scans
	// prune the whole segment when the query range misses the bracket.
	minTime, maxTime types.Time
}

func newSegment(indexed bool) *segment {
	seg := &segment{}
	if indexed {
		seg.byFlow = make(map[types.FlowID][]int)
		seg.byLink = make(map[types.LinkID][]int)
	}
	return seg
}

// add appends one entry to the (active) segment, updating bounds and
// postings. Caller holds the shard write lock.
func (seg *segment) add(e entry, indexed bool) {
	idx := len(seg.entries)
	if idx == 0 {
		seg.minTime, seg.maxTime = e.rec.STime, e.rec.ETime
	} else {
		if e.rec.STime < seg.minTime {
			seg.minTime = e.rec.STime
		}
		if e.rec.ETime > seg.maxTime {
			seg.maxTime = e.rec.ETime
		}
	}
	seg.entries = append(seg.entries, e)
	if indexed {
		seg.byFlow[e.rec.Flow] = append(seg.byFlow[e.rec.Flow], idx)
		for _, l := range e.rec.Path.Links() {
			seg.byLink[l] = append(seg.byLink[l], idx)
		}
	}
}

// overlaps reports whether any record in the segment can intersect tr.
// Empty segments overlap nothing.
func (seg *segment) overlaps(tr types.TimeRange) bool {
	if len(seg.entries) == 0 {
		return false
	}
	return tr.Overlaps(seg.minTime, seg.maxTime)
}

// rebuildIndex recomputes the segment's postings from its entries — the
// legacy-snapshot load path runs this per segment, in parallel.
func (seg *segment) rebuildIndex() {
	seg.byFlow = make(map[types.FlowID][]int, len(seg.entries))
	seg.byLink = make(map[types.LinkID][]int)
	for i := range seg.entries {
		rec := &seg.entries[i].rec
		seg.byFlow[rec.Flow] = append(seg.byFlow[rec.Flow], i)
		for _, l := range rec.Path.Links() {
			seg.byLink[l] = append(seg.byLink[l], i)
		}
	}
}
