package tib

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"pathdump/internal/cherrypick"
	"pathdump/internal/types"
)

func flowN(n int) types.FlowID {
	return types.FlowID{SrcIP: types.IP(n), DstIP: 99, SrcPort: uint16(n), DstPort: 80, Proto: 6}
}

func TestMemoryAggregatesPerPath(t *testing.T) {
	m := NewMemory(0)
	f := flowN(1)
	h1 := cherrypick.Header{VLANs: []uint16{3}}
	h2 := cherrypick.Header{VLANs: []uint16{4}}
	m.Update(10, f, h1, 100, false)
	m.Update(20, f, h1, 200, false)
	m.Update(30, f, h2, 50, false)
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2 per-path records", m.Len())
	}
	live := m.Live()
	if live[0].Bytes != 300 || live[0].Pkts != 2 || live[0].STime != 10 || live[0].ETime != 20 {
		t.Errorf("first record = %+v", live[0])
	}
	if live[1].Bytes != 50 || live[1].Pkts != 1 {
		t.Errorf("second record = %+v", live[1])
	}
}

func TestMemoryEviction(t *testing.T) {
	m := NewMemory(5 * types.Second)
	f1, f2 := flowN(1), flowN(2)
	h := cherrypick.Header{VLANs: []uint16{1}}
	m.Update(0, f1, h, 10, false)
	m.Update(1*types.Second, f2, h, 10, false)

	// FIN-based eviction removes only that flow.
	m.Update(2*types.Second, f1, h, 10, true)
	ev := m.EvictFlow(f1)
	if len(ev) != 1 || !ev[0].Fin || ev[0].Flow != f1 {
		t.Fatalf("EvictFlow = %+v", ev)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d after FIN eviction", m.Len())
	}

	// Idle eviction at t=6s only covers records idle ≥5 s.
	if got := m.EvictIdle(5 * types.Second); len(got) != 0 {
		t.Fatalf("premature idle eviction: %+v", got)
	}
	if got := m.EvictIdle(6 * types.Second); len(got) != 1 || got[0].Flow != f2 {
		t.Fatalf("idle eviction = %+v", got)
	}
	if m.Len() != 0 {
		t.Error("memory not empty")
	}

	// Flush drains everything.
	m.Update(10*types.Second, f1, h, 1, false)
	m.Update(10*types.Second, f2, h, 1, false)
	if got := m.Flush(); len(got) != 2 || m.Len() != 0 {
		t.Fatalf("Flush = %d records, Len = %d", len(got), m.Len())
	}
}

func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	p1, p2, p3 := types.Path{1}, types.Path{2}, types.Path{3}
	c.Put(1, "a", p1)
	c.Put(1, "b", p2)
	if _, ok := c.Get(1, "a"); !ok {
		t.Fatal("miss on fresh entry")
	}
	c.Put(1, "c", p3) // evicts "b" (LRU)
	if _, ok := c.Get(1, "b"); ok {
		t.Error("LRU entry not evicted")
	}
	if got, ok := c.Get(1, "a"); !ok || !got.Equal(p1) {
		t.Error("recently used entry evicted")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	// Update in place.
	c.Put(1, "a", p2)
	if got, _ := c.Get(1, "a"); !got.Equal(p2) {
		t.Error("Put did not update existing entry")
	}
	if c.HitRate() <= 0 || c.HitRate() >= 1 {
		t.Errorf("HitRate = %v", c.HitRate())
	}
	// Distinct sources do not collide.
	c.Put(2, "a", p3)
	if got, _ := c.Get(2, "a"); !got.Equal(p3) {
		t.Error("source IP not part of the key")
	}
}

func mkRecord(f types.FlowID, p types.Path, st, et types.Time, b, k uint64) types.Record {
	return types.Record{Flow: f, Path: p, STime: st, ETime: et, Bytes: b, Pkts: k}
}

func TestStoreQueries(t *testing.T) {
	s := NewStore()
	f1, f2 := flowN(1), flowN(2)
	pA := types.Path{1, 10, 2}
	pB := types.Path{1, 11, 2}
	s.Add(mkRecord(f1, pA, 0, 10, 1000, 10))
	s.Add(mkRecord(f1, pB, 5, 20, 500, 5))
	s.Add(mkRecord(f2, pA, 100, 200, 9000, 9))

	// getFlows on a concrete link.
	flows := s.Flows(types.LinkID{A: 1, B: 10}, types.AllTime)
	if len(flows) != 2 {
		t.Fatalf("Flows(1-10) = %v", flows)
	}
	// Time range excludes f2.
	flows = s.Flows(types.LinkID{A: 1, B: 10}, types.TimeRange{From: 0, To: 50})
	if len(flows) != 1 || flows[0].ID != f1 {
		t.Fatalf("time-filtered Flows = %v", flows)
	}
	// Wildcard incoming link of switch 2.
	flows = s.Flows(types.LinkID{A: types.WildcardSwitch, B: 2}, types.AllTime)
	if len(flows) != 3 {
		t.Fatalf("wildcard Flows = %v", flows)
	}
	// getPaths with wildcards.
	paths := s.Paths(f1, types.AnyLink, types.AllTime)
	if len(paths) != 2 {
		t.Fatalf("Paths = %v", paths)
	}
	paths = s.Paths(f1, types.LinkID{A: 1, B: 11}, types.AllTime)
	if len(paths) != 1 || !paths[0].Equal(pB) {
		t.Fatalf("link-filtered Paths = %v", paths)
	}
	// getCount: per path and aggregated.
	b, k := s.Count(types.Flow{ID: f1, Path: pA}, types.AllTime)
	if b != 1000 || k != 10 {
		t.Errorf("Count(pA) = %d/%d", b, k)
	}
	b, k = s.Count(types.Flow{ID: f1}, types.AllTime)
	if b != 1500 || k != 15 {
		t.Errorf("Count(all paths) = %d/%d", b, k)
	}
	// getDuration spans both records.
	if d := s.Duration(types.Flow{ID: f1}, types.AllTime); d != 20 {
		t.Errorf("Duration = %v, want 20", d)
	}
	if d := s.Duration(types.Flow{ID: flowN(9)}, types.AllTime); d != 0 {
		t.Errorf("Duration(unknown) = %v", d)
	}
}

func TestStoreDirectionality(t *testing.T) {
	s := NewStore()
	s.Add(mkRecord(flowN(1), types.Path{1, 2, 3}, 0, 1, 1, 1))
	if got := s.Flows(types.LinkID{A: 2, B: 1}, types.AllTime); len(got) != 0 {
		t.Error("reverse link matched a forward traversal")
	}
}

func TestIndexedMatchesUnindexedProperty(t *testing.T) {
	// The link/flow indexes are an optimisation: results must be
	// identical to a full scan for arbitrary records and queries.
	idx, scan := NewStore(), NewUnindexedStore()
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 500; i++ {
		f := flowN(rng.Intn(20))
		p := types.Path{
			types.SwitchID(rng.Intn(4)),
			types.SwitchID(4 + rng.Intn(4)),
			types.SwitchID(8 + rng.Intn(4)),
		}
		st := types.Time(rng.Intn(100))
		rec := mkRecord(f, p, st, st+types.Time(rng.Intn(50)), uint64(rng.Intn(10000)), uint64(rng.Intn(10)))
		idx.Add(rec)
		scan.Add(rec)
	}
	check := func(a, b uint32) bool {
		link := types.LinkID{A: types.SwitchID(a % 5), B: types.SwitchID(4 + b%5)}
		if a%7 == 0 {
			link.A = types.WildcardSwitch
		}
		if b%7 == 0 {
			link.B = types.WildcardSwitch
		}
		tr := types.TimeRange{From: types.Time(a % 60), To: types.Time(60 + b%60)}
		fa := idx.Flows(link, tr)
		fb := scan.Flows(link, tr)
		if len(fa) != len(fb) {
			return false
		}
		seen := map[string]bool{}
		for _, x := range fa {
			seen[x.ID.String()+x.Path.Key()] = true
		}
		for _, x := range fb {
			if !seen[x.ID.String()+x.Path.Key()] {
				return false
			}
		}
		f := flowN(int(a % 20))
		ba, ka := idx.Count(types.Flow{ID: f}, tr)
		bb, kb := scan.Count(types.Flow{ID: f}, tr)
		return ba == bb && ka == kb
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := NewStore()
	for i := 0; i < 100; i++ {
		s.Add(mkRecord(flowN(i), types.Path{1, types.SwitchID(i), 2}, types.Time(i), types.Time(i+1), uint64(i), 1))
	}
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewStore()
	if err := restored.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != s.Len() {
		t.Fatalf("restored %d of %d records", restored.Len(), s.Len())
	}
	// Indexes were rebuilt.
	if got := restored.Flows(types.LinkID{A: 1, B: 50}, types.AllTime); len(got) != 1 {
		t.Errorf("index not rebuilt: %v", got)
	}
	if err := restored.LoadSnapshot(bytes.NewBufferString("garbage")); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

func TestStoreScale(t *testing.T) {
	// §5.3: 240 K flow entries ≈ one hour of flows at a server. Make
	// sure the store handles that volume and stays queryable.
	if testing.Short() {
		t.Skip("short mode")
	}
	s := NewStore()
	for i := 0; i < 240_000; i++ {
		f := flowN(i)
		p := types.Path{types.SwitchID(i % 8), types.SwitchID(8 + i%8), types.SwitchID(16 + i%4)}
		s.Add(mkRecord(f, p, types.Time(i), types.Time(i+10), 1000, 1))
	}
	if s.Len() != 240_000 {
		t.Fatal("missing records")
	}
	link := types.LinkID{A: 0, B: 8}
	if got := len(s.Flows(link, types.AllTime)); got != 30_000 {
		t.Errorf("Flows on hot link = %d, want 30000", got)
	}
}

func ExampleStore_Flows() {
	s := NewStore()
	f := types.FlowID{SrcIP: 0x0A000002, DstIP: 0x0A010002, SrcPort: 1234, DstPort: 80, Proto: 6}
	s.Add(types.Record{Flow: f, Path: types.Path{0, 8, 16, 10, 2}, STime: 0, ETime: 5, Bytes: 4000, Pkts: 4})
	for _, fl := range s.Flows(types.LinkID{A: 8, B: 16}, types.AllTime) {
		fmt.Println(fl.ID, "via", fl.Path)
	}
	// Output: 10.0.0.2:1234->10.1.0.2:80/6 via s0>s8>s16>s10>s2
}
