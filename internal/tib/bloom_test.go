package tib

import (
	"bytes"
	"math/rand"
	"testing"

	"pathdump/internal/types"
)

func TestFlowFilterNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(500)
		f := newFlowFilter(n)
		flows := make([]types.FlowID, n)
		for i := range flows {
			flows[i] = types.FlowID{
				SrcIP: types.IP(rng.Uint32()), DstIP: types.IP(rng.Uint32()),
				SrcPort: uint16(rng.Uint32()), DstPort: uint16(rng.Uint32()),
				Proto: uint8(rng.Uint32()),
			}
			f.add(flowHash64(flows[i]))
		}
		for _, fl := range flows {
			if !f.mayContain(flowHash64(fl)) {
				t.Fatalf("false negative for %+v (n=%d)", fl, n)
			}
		}
	}
}

func TestFlowFilterFalsePositiveRate(t *testing.T) {
	const n = 1000
	f := newFlowFilter(n)
	for i := 0; i < n; i++ {
		f.add(flowHash64(flowN(i)))
	}
	// Probe flows that were never added; at ~8 bits/flow with k=3 the
	// expected rate is ~3%, so 15% is a generous regression bound.
	fp := 0
	const probes = 5000
	for i := 0; i < probes; i++ {
		if f.mayContain(flowHash64(flowN(n + 1 + i))) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.15 {
		t.Errorf("false-positive rate %.3f, want ≤ 0.15", rate)
	}
}

// bloomStore builds a single-shard store whose seal policy yields many
// sealed segments, each holding segRecs records of exactly one flow — the
// shape where bloom pruning pays: a flow query must otherwise consult
// every overlapping segment's posting map.
func bloomStore(t *testing.T, cfg Config, nflows, perFlow int) *Store {
	t.Helper()
	s := NewStoreConfig(cfg)
	for i := 0; i < nflows; i++ {
		for j := 0; j < perFlow; j++ {
			ts := types.Time(i*perFlow + j)
			s.Add(mkRecord(flowN(i), types.Path{1, 10, 2}, ts, ts+1, 100, 1))
		}
	}
	return s
}

func TestBloomPrunesFlowScans(t *testing.T) {
	const nflows, perFlow = 64, 32
	// Single shard + seal every perFlow records: each sealed segment holds
	// one flow, so a single-flow query can bloom-prune all the others.
	s := bloomStore(t, Config{Shards: 1, SegmentRecords: perFlow}, nflows, perFlow)
	if got := s.Segments(); got < nflows-1 {
		t.Fatalf("Segments = %d, want ≥ %d (seal policy not engaging)", got, nflows-1)
	}

	for _, f := range []int{0, nflows / 2, nflows - 1} {
		_, prunedBefore := s.SegmentStats()
		var got int
		s.ForFlow(flowN(f), types.AnyLink, types.AllTime, func(rec *types.Record) {
			if rec.Flow != flowN(f) {
				t.Fatalf("flow %d scan returned record of %+v", f, rec.Flow)
			}
			got++
		})
		if got != perFlow {
			t.Fatalf("flow %d: got %d records, want %d", f, got, perFlow)
		}
		_, prunedAfter := s.SegmentStats()
		// All segments overlap AllTime and the sequence window, so any
		// pruning here is the bloom's. Expect nearly all foreign segments
		// rejected (a few false positives are fine).
		if d := prunedAfter - prunedBefore; d < nflows/2 {
			t.Errorf("flow %d: pruned %d segments, want ≥ %d (bloom not engaging)", f, d, nflows/2)
		}
	}
}

func TestBloomMissingFlowExact(t *testing.T) {
	// A flow the store never saw: correctness requires zero records no
	// matter what the filters answer, and the common case is that every
	// sealed segment is pruned without a posting lookup.
	s := bloomStore(t, Config{Shards: 1, SegmentRecords: 16}, 32, 16)
	s.ForFlow(flowN(9999), types.AnyLink, types.AllTime, func(rec *types.Record) {
		t.Fatalf("phantom record %+v for absent flow", rec)
	})
}

func TestBloomUnindexedStore(t *testing.T) {
	s := bloomStore(t, Config{Shards: 1, SegmentRecords: 16, Unindexed: true}, 32, 16)
	_, prunedBefore := s.SegmentStats()
	var got int
	s.ForFlow(flowN(3), types.AnyLink, types.AllTime, func(rec *types.Record) {
		if rec.Flow != flowN(3) {
			t.Fatalf("wrong flow: %+v", rec.Flow)
		}
		got++
	})
	if got != 16 {
		t.Fatalf("got %d records, want 16", got)
	}
	if _, prunedAfter := s.SegmentStats(); prunedAfter-prunedBefore < 16 {
		t.Errorf("unindexed bloom pruned %d segments, want ≥ 16", prunedAfter-prunedBefore)
	}
}

func TestBloomSurvivesSnapshotRestore(t *testing.T) {
	src := bloomStore(t, Config{Shards: 1, SegmentRecords: 16}, 32, 16)
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	for name, dst := range map[string]*Store{
		"same-shape": NewStoreConfig(Config{Shards: 1, SegmentRecords: 16}),
		"reshaped":   NewStoreConfig(Config{Shards: 4, SegmentRecords: 16}),
	} {
		if err := dst.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_, prunedBefore := dst.SegmentStats()
		var got int
		dst.ForFlow(flowN(5), types.AnyLink, types.AllTime, func(rec *types.Record) {
			if rec.Flow != flowN(5) {
				t.Fatalf("%s: wrong flow %+v", name, rec.Flow)
			}
			got++
		})
		if got != 16 {
			t.Fatalf("%s: got %d records, want 16", name, got)
		}
		if _, prunedAfter := dst.SegmentStats(); prunedAfter == prunedBefore {
			t.Errorf("%s: no segments pruned after restore — blooms not rebuilt", name)
		}
	}
}

func TestBloomFlowScanProperty(t *testing.T) {
	// Random records over a small flow universe and an aggressive seal
	// policy; per-flow scans must return exactly the naive filter's
	// answer, in insertion order, regardless of bloom outcomes.
	rng := rand.New(rand.NewSource(42))
	s := NewStoreConfig(Config{Shards: 4, SegmentRecords: 8})
	want := map[types.FlowID][]types.Record{}
	for i := 0; i < 2000; i++ {
		f := flowN(rng.Intn(40))
		ts := types.Time(rng.Intn(1000))
		rec := mkRecord(f, types.Path{1, types.SwitchID(2 + rng.Intn(3)), 9}, ts, ts+1, uint64(i), 1)
		s.Add(rec)
		want[f] = append(want[f], rec)
	}
	for fi := 0; fi < 40; fi++ {
		f := flowN(fi)
		var got []types.Record
		s.ForFlow(f, types.AnyLink, types.AllTime, func(rec *types.Record) {
			got = append(got, *rec)
		})
		if len(got) != len(want[f]) {
			t.Fatalf("flow %d: got %d records, want %d", fi, len(got), len(want[f]))
		}
		for i := range got {
			// Bytes is a unique per-record stamp, so it identifies the
			// record and checks insertion order at once.
			if got[i].Bytes != want[f][i].Bytes || got[i].STime != want[f][i].STime {
				t.Fatalf("flow %d record %d mismatch: got %+v want %+v", fi, i, got[i], want[f][i])
			}
		}
	}
}

func TestScanAllocs(t *testing.T) {
	// The merge machinery is pooled: steady-state full scans and flow
	// scans must not allocate per surviving shard or segment. A handful
	// of fixed allocations (closures, the callback header) are fine; what
	// must not appear is O(shards + segments) slice growth.
	s := NewStoreConfig(Config{SegmentRecords: 128})
	for i := 0; i < 8192; i++ {
		ts := types.Time(i)
		s.Add(mkRecord(flowN(i%64), types.Path{1, 10, 2}, ts, ts+1, 1, 1))
	}
	if s.Segments() < 32 {
		t.Fatalf("only %d segments; seal policy not engaging", s.Segments())
	}

	var n int
	sink := func(rec *types.Record) bool { n++; return true }

	full := testing.AllocsPerRun(20, func() {
		n = 0
		s.ForEachWhile(types.AnyLink, types.AllTime, sink)
		if n != 8192 {
			t.Fatalf("full scan saw %d records", n)
		}
	})
	if full > 8 {
		t.Errorf("full scan allocates %.0f objects/op, want ≤ 8 (cursor pooling broken)", full)
	}

	f := flowN(7)
	flow := testing.AllocsPerRun(20, func() {
		n = 0
		s.ScanWhile(&f, types.AnyLink, types.AllTime, sink)
		if n != 128 {
			t.Fatalf("flow scan saw %d records", n)
		}
	})
	if flow > 8 {
		t.Errorf("flow scan allocates %.0f objects/op, want ≤ 8 (cursor pooling broken)", flow)
	}
}
