package tib

import (
	"bytes"
	"encoding/gob"
	"runtime"
	"sync"
	"testing"

	"pathdump/internal/types"
)

// benchRecord synthesises record i of a large time-ordered store: 100 K
// distinct flows, 3-hop paths over a small switch set, 1 ms of activity
// per record, one record per millisecond of virtual time.
func benchRecord(i int) types.Record {
	st := types.Time(i) * types.Millisecond
	return types.Record{
		Flow: types.FlowID{SrcIP: types.IP(i % 100_000), DstIP: 9, SrcPort: uint16(i), DstPort: 80, Proto: 6},
		Path: types.Path{
			types.SwitchID(i % 8),
			types.SwitchID(8 + i%8),
			types.SwitchID(16 + i%4),
		},
		STime: st, ETime: st + types.Millisecond,
		Bytes: uint64(i), Pkts: 1,
	}
}

const timeRangeStoreSize = 1_000_000

var (
	trsOnce sync.Once
	trsSeg  *Store // default segmentation: prunes by bounds
	trsFlat *Store // one unbounded segment per shard: the pre-refactor full-filter path
)

func buildTimeRangeStores() {
	trsSeg = NewStore()
	trsFlat = NewStoreConfig(Config{SegmentRecords: -1})
	for i := 0; i < timeRangeStoreSize; i++ {
		rec := benchRecord(i)
		trsSeg.Add(rec)
		trsFlat.Add(rec)
	}
}

// BenchmarkTimeRangeScan: a 1% time window over a 1M-record store. The
// segmented store prunes whole partitions by bound intersection before a
// record is touched; the single-segment store reproduces the pre-refactor
// path — filter all 1M records against the range. Gated in CI: the
// pruned/fullscan gap is the storage engine's reason to exist.
func BenchmarkTimeRangeScan(b *testing.B) {
	trsOnce.Do(buildTimeRangeStores)
	// The store spans 1000 s of virtual time; scan 10 s from the middle.
	window := types.TimeRange{From: 500 * types.Second, To: 510 * types.Second}
	for _, tc := range []struct {
		name  string
		store *Store
	}{
		{"pruned", trsSeg},
		{"fullscan", trsFlat},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n := 0
				tc.store.ForEach(types.AnyLink, window, func(*types.Record) { n++ })
				if n == 0 {
					b.Fatal("empty window")
				}
			}
		})
	}
}

// BenchmarkIncrementalTrigger: one run of an installed (periodic) query
// over a 1M-record store of which only the last 1000 records are new.
// "incremental" is the watermark path continuous monitors use — whole
// sealed segments at or below the watermark are skipped by one sequence
// comparison, so the run touches ~1000 records; "fullscan" reproduces the
// pre-watermark trigger path: rescan the entire TIB every period. Gated
// in CI: the ISSUE's acceptance requires ≥5x between the two medians.
func BenchmarkIncrementalTrigger(b *testing.B) {
	trsOnce.Do(buildTimeRangeStores)
	const delta = 1000
	watermark := uint64(timeRangeStoreSize - delta) // seqs are 1..1M in arrival order
	last := trsSeg.LastSeq()
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			trsSeg.ScanSince(watermark, last, nil, types.AnyLink, types.AllTime, func(*types.Record) bool {
				n++
				return true
			})
			if n != delta {
				b.Fatalf("delta scan visited %d records, want %d", n, delta)
			}
		}
	})
	b.Run("fullscan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			trsSeg.ForEach(types.AnyLink, types.AllTime, func(*types.Record) { n++ })
			if n != timeRangeStoreSize {
				b.Fatalf("full scan visited %d records, want %d", n, timeRangeStoreSize)
			}
		}
	})
}

// BenchmarkChurn: the steady state a long-lived agent lives in — records
// arriving forever, retention evicting the old edge, and compaction
// (when enabled) merging the fragment fleet retention leaves behind,
// while a scanner keeps reading the full window. "compacted" runs the
// v2 engine (CompactBelow set, MaybeCompact on the ingest path, exactly
// as the agent drives it) and pays the merge work inline — its payoff
// is scan-side segment counts, not ingest speed; "fragmented" is the
// same churn with compaction off. Gated in CI so neither shape of the
// sustained add/evict/compact path regresses quietly.
func BenchmarkChurn(b *testing.B) {
	const retainWindow = 2 * types.Second // ~2000 resident records
	for _, tc := range []struct {
		name    string
		compact int
	}{
		{"compacted", 256},
		{"fragmented", 0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			s := NewStoreConfig(Config{
				SegmentSpan:  50 * types.Millisecond,
				CompactBelow: tc.compact,
			})
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					s.ForEach(types.AnyLink, types.AllTime, func(*types.Record) {})
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Add(benchRecord(i))
				st := types.Time(i) * types.Millisecond
				s.EvictBefore(st - retainWindow)
				s.MaybeCompact()
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}

// BenchmarkSnapshotRestore: restoring a large sharded store. v2 adopts
// sealed segments with their indexes intact; v1 decodes a bare record
// log and rebuilds segment indexes in parallel; readd-loop reproduces
// the pre-refactor restore (one Add per record through the full ingest
// path) as the baseline the ISSUE's acceptance compares against.
func BenchmarkSnapshotRestore(b *testing.B) {
	const records = 200_000
	src := NewStore()
	for i := 0; i < records; i++ {
		src.Add(benchRecord(i))
	}
	var v2 bytes.Buffer
	if err := src.Snapshot(&v2); err != nil {
		b.Fatal(err)
	}
	recs := make([]types.Record, 0, records)
	src.ForEach(types.AnyLink, types.AllTime, func(r *types.Record) { recs = append(recs, *r) })
	var v1 bytes.Buffer
	if err := gob.NewEncoder(&v1).Encode(recs); err != nil {
		b.Fatal(err)
	}

	// Each iteration materialises a fresh ~200 K-record store; collect
	// between iterations so one restore's garbage is not billed to the
	// next (heap-growth noise otherwise dominates the medians).
	gcBetween := func(b *testing.B) {
		b.StopTimer()
		runtime.GC()
		b.StartTimer()
	}
	b.Run("v2-segments", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gcBetween(b)
			s := NewStore()
			if err := s.LoadSnapshot(bytes.NewReader(v2.Bytes())); err != nil {
				b.Fatal(err)
			}
			if s.Len() != records {
				b.Fatal("short restore")
			}
		}
	})
	b.Run("v1-parallel-rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gcBetween(b)
			s := NewStore()
			if err := s.LoadSnapshot(bytes.NewReader(v1.Bytes())); err != nil {
				b.Fatal(err)
			}
			if s.Len() != records {
				b.Fatal("short restore")
			}
		}
	})
	b.Run("v1-readd-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gcBetween(b)
			var decoded []types.Record
			if err := gob.NewDecoder(bytes.NewReader(v1.Bytes())).Decode(&decoded); err != nil {
				b.Fatal(err)
			}
			s := NewStore()
			for _, rec := range decoded {
				s.Add(rec)
			}
			if s.Len() != records {
				b.Fatal("short restore")
			}
		}
	})
}
