package tib

import (
	"bytes"
	"encoding/gob"
	"errors"
	"testing"

	"pathdump/internal/types"
)

// addBatch appends n records starting at virtual index from, one per
// 10 ms, mirroring the generators elsewhere in this suite.
func addBatch(s *Store, from, n int) {
	for i := from; i < from+n; i++ {
		st := types.Time(i) * 10 * types.Millisecond
		s.Add(mkRecord(flowN(i%61), types.Path{1, types.SwitchID(2 + i%4), 9}, st, st+types.Millisecond, uint64(i), 1))
	}
}

// snapshotVersion decodes just the header of a snapshot stream.
func snapshotVersion(t *testing.T, raw []byte) snapshotHeader {
	t.Helper()
	if !bytes.HasPrefix(raw, []byte(snapshotMagic)) {
		t.Fatal("stream missing snapshot magic")
	}
	var hdr snapshotHeader
	if err := gob.NewDecoder(bytes.NewReader(raw[len(snapshotMagic):])).Decode(&hdr); err != nil {
		t.Fatal(err)
	}
	return hdr
}

// TestIncrementalCatchUpRounds: a standby assembled from one full pull
// plus repeated SnapshotSince/ApplyIncremental rounds stays record-for-
// record identical to the source, across seal boundaries and re-shipped
// active segments.
func TestIncrementalCatchUpRounds(t *testing.T) {
	src := NewStoreConfig(Config{SegmentSpan: 20 * types.Millisecond})
	dst := NewStoreConfig(Config{SegmentSpan: 20 * types.Millisecond})
	addBatch(src, 0, 3000)

	var full bytes.Buffer
	if err := src.SnapshotSince(&full, 0); err != nil {
		t.Fatal(err)
	}
	if v := snapshotVersion(t, full.Bytes()); v.Version != 2 {
		t.Fatalf("since 0 produced version %d, want a full snapshot", v.Version)
	}
	if err := dst.ApplyIncremental(&full); err != nil {
		t.Fatal(err)
	}
	sameRecords(t, scanAll(dst), scanAll(src), "initial full pull")

	for round := 0; round < 3; round++ {
		addBatch(src, 3000+round*500, 500)
		watermark := dst.LastSeq()
		var delta bytes.Buffer
		if err := src.SnapshotSince(&delta, watermark); err != nil {
			t.Fatal(err)
		}
		hdr := snapshotVersion(t, delta.Bytes())
		if hdr.Version != 3 || hdr.Since != watermark {
			t.Fatalf("round %d: header %+v, want version 3 since %d", round, hdr, watermark)
		}
		if err := dst.ApplyIncremental(&delta); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		sameRecords(t, scanAll(dst), scanAll(src), "after incremental round")
		if dst.LastSeq() != src.LastSeq() {
			t.Fatalf("round %d: standby seq %d, source %d", round, dst.LastSeq(), src.LastSeq())
		}
		if dst.Len() != src.Len() {
			t.Fatalf("round %d: standby len %d, source %d", round, dst.Len(), src.Len())
		}
	}
}

// TestIncrementalFallsBackPastRetention: a watermark at or below the
// eviction horizon cannot be served as a delta (those records are
// gone), so the writer must ship a full Version-2 snapshot — and the
// receiver, applying it through the same ApplyIncremental entry point,
// converges anyway.
func TestIncrementalFallsBackPastRetention(t *testing.T) {
	src := NewStoreConfig(Config{SegmentSpan: 20 * types.Millisecond})
	dst := NewStoreConfig(Config{SegmentSpan: 20 * types.Millisecond})
	addBatch(src, 0, 2000)
	watermark := src.LastSeq() / 4 // a pull watermark from long ago

	// Retention erases the first half — past the standby's watermark.
	if segs, _ := src.EvictBefore(types.Time(1000) * 10 * types.Millisecond); segs == 0 {
		t.Fatal("eviction freed nothing")
	}
	if src.evictedThroughSeq.Load() < watermark {
		t.Fatalf("eviction watermark %d below pull watermark %d — scenario miscalibrated",
			src.evictedThroughSeq.Load(), watermark)
	}
	var out bytes.Buffer
	if err := src.SnapshotSince(&out, watermark); err != nil {
		t.Fatal(err)
	}
	if v := snapshotVersion(t, out.Bytes()); v.Version != 2 {
		t.Fatalf("stale watermark produced version %d, want full fallback", v.Version)
	}
	if err := dst.ApplyIncremental(&out); err != nil {
		t.Fatal(err)
	}
	sameRecords(t, scanAll(dst), scanAll(src), "full fallback past retention")
}

// TestIncrementalDeltaShipsFractionOfFull: the acceptance bound — on a
// 1M-record store where 1% of the data is new since the watermark, the
// delta must cost less than 5% of the full snapshot's bytes.
func TestIncrementalDeltaShipsFractionOfFull(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-record store build is not short")
	}
	src := NewStore()
	const base = 1_000_000
	for i := 0; i < base; i++ {
		src.Add(benchRecord(i))
	}
	watermark := src.LastSeq()
	for i := base; i < base+base/100; i++ {
		src.Add(benchRecord(i))
	}

	var full countingWriter
	if err := src.Snapshot(&full); err != nil {
		t.Fatal(err)
	}
	var delta countingWriter
	if err := src.SnapshotSince(&delta, watermark); err != nil {
		t.Fatal(err)
	}
	if delta.n*20 >= full.n {
		t.Fatalf("delta shipped %d bytes, full %d — %.1f%%, want <5%%",
			delta.n, full.n, 100*float64(delta.n)/float64(full.n))
	}
	t.Logf("full %d bytes, 1%% delta %d bytes (%.2f%%)", full.n, delta.n, 100*float64(delta.n)/float64(full.n))
}

type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// TestDeltaRejections: a v2-only loader refuses a delta stream loudly,
// and a delta refuses a store it cannot be reconciled with.
func TestDeltaRejections(t *testing.T) {
	src := NewStoreConfig(Config{Shards: 4, SegmentSpan: 20 * types.Millisecond})
	addBatch(src, 0, 1000)
	watermark := src.LastSeq() / 2
	var delta bytes.Buffer
	if err := src.SnapshotSince(&delta, watermark); err != nil {
		t.Fatal(err)
	}
	raw := delta.Bytes()

	// LoadSnapshot must not silently adopt a delta as a whole store.
	if err := NewStore().LoadSnapshot(bytes.NewReader(raw)); err == nil {
		t.Fatal("LoadSnapshot accepted an incremental stream")
	}

	// Stripe-count mismatch is unreconcilable: fall back to full.
	other := NewStoreConfig(Config{Shards: 16})
	if err := other.ApplyIncremental(bytes.NewReader(raw)); !errors.Is(err, ErrIncompatibleDelta) {
		t.Fatalf("shape mismatch error = %v, want ErrIncompatibleDelta", err)
	}

	// A store whose local segments straddle the delta's start sequence
	// cannot be cut cleanly: the overlap check refuses.
	straddle := NewStoreConfig(Config{Shards: 4, SegmentSpan: 100 * types.Second})
	addBatch(straddle, 0, 2000) // coarse spans: one local segment covers the delta boundary
	if err := straddle.ApplyIncremental(bytes.NewReader(raw)); !errors.Is(err, ErrIncompatibleDelta) {
		t.Fatalf("straddling store error = %v, want ErrIncompatibleDelta", err)
	}

	// A near-empty store applying a mid-stream delta would be left with a
	// sequence hole: the gap check refuses, forcing a full pull.
	gap := NewStoreConfig(Config{Shards: 4, SegmentSpan: 20 * types.Millisecond})
	if err := gap.ApplyIncremental(bytes.NewReader(raw)); !errors.Is(err, ErrIncompatibleDelta) {
		t.Fatalf("gapped store error = %v, want ErrIncompatibleDelta", err)
	}
}
