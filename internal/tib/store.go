package tib

import (
	"encoding/gob"
	"io"
	"sync"
	"sync/atomic"

	"pathdump/internal/types"
)

// DefaultShards is the stripe count of a Store built with NewStore. Powers
// of two keep the shard-selection mask cheap; 16 stripes are enough to
// keep a host's ingest path and a handful of concurrent query scans off
// each other's locks without bloating small stores.
const DefaultShards = 16

// Store is one host's Trajectory Information Base: an append-mostly record
// log with flow and directed-link indexes, striped into independently
// locked shards so that concurrent ingest (Add) and query scans
// (ForEach/ForFlow) do not serialise on a single mutex.
//
// Records are assigned to shards by flow hash — every record of one flow
// lives in one shard — and each record carries a global arrival sequence
// number. Iteration merges shards by that sequence, so all query results
// appear in exact global insertion order, indistinguishable from the
// previous single-lock implementation. All methods are safe for
// concurrent use (the HTTP agent serves queries while the datapath
// appends).
type Store struct {
	shards []storeShard
	mask   uint32
	// seq hands out global arrival sequence numbers; count tracks the
	// total record count without summing shard lengths under locks.
	seq   atomic.Uint64
	count atomic.Int64
	// indexing can be disabled for the ablation benchmark
	indexed bool
}

// storeShard is one lock stripe: a slice of sequence-stamped records plus
// that stripe's slice of the flow and link indexes. Entries are append-only
// and never mutated in place, so readers may hold *types.Record pointers
// after releasing the shard lock.
type storeShard struct {
	mu      sync.RWMutex
	entries []entry
	byFlow  map[types.FlowID][]int
	byLink  map[types.LinkID][]int
}

type entry struct {
	seq uint64
	rec types.Record
}

// NewStore builds an empty, indexed TIB with DefaultShards stripes.
func NewStore() *Store { return NewStoreShards(DefaultShards) }

// NewStoreShards builds an empty, indexed TIB striped into n lock shards
// (rounded up to a power of two; n <= 1 yields a single-lock store that
// behaves exactly like the pre-sharding implementation).
func NewStoreShards(n int) *Store {
	if n < 1 {
		n = 1
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	s := &Store{
		shards:  make([]storeShard, pow),
		mask:    uint32(pow - 1),
		indexed: true,
	}
	for i := range s.shards {
		s.shards[i].byFlow = make(map[types.FlowID][]int)
		s.shards[i].byLink = make(map[types.LinkID][]int)
	}
	return s
}

// NewUnindexedStore builds a TIB that answers every query by scanning the
// record log — the baseline for the index ablation bench.
func NewUnindexedStore() *Store {
	s := NewStore()
	s.indexed = false
	return s
}

// shardFor hashes a flow onto its stripe (FNV-1a over the 5-tuple).
func (s *Store) shardFor(f types.FlowID) *storeShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	mix := func(v uint32) {
		h ^= v & 0xff
		h *= prime32
		h ^= (v >> 8) & 0xff
		h *= prime32
		h ^= (v >> 16) & 0xff
		h *= prime32
		h ^= v >> 24
		h *= prime32
	}
	mix(uint32(f.SrcIP))
	mix(uint32(f.DstIP))
	mix(uint32(f.SrcPort)<<16 | uint32(f.DstPort))
	mix(uint32(f.Proto))
	return &s.shards[h&s.mask]
}

// Add appends one TIB record. Only the record's shard is locked, so
// concurrent ingest of distinct flows proceeds in parallel.
func (s *Store) Add(rec types.Record) {
	sh := s.shardFor(rec.Flow)
	sh.mu.Lock()
	idx := len(sh.entries)
	// The sequence number is assigned under the shard lock so each
	// shard's entries are sequence-monotonic, which the merge in forEach
	// relies on.
	sh.entries = append(sh.entries, entry{seq: s.seq.Add(1), rec: rec})
	if s.indexed {
		sh.byFlow[rec.Flow] = append(sh.byFlow[rec.Flow], idx)
		for _, l := range rec.Path.Links() {
			sh.byLink[l] = append(sh.byLink[l], idx)
		}
	}
	sh.mu.Unlock()
	s.count.Add(1)
}

// Len returns the record count.
func (s *Store) Len() int { return int(s.count.Load()) }

// cursor walks one shard's matching entries in sequence order during a
// cross-shard merge. Entry and posting slices are append-only, so the
// headers captured under the shard RLock stay valid (and their elements
// immutable) after the lock is released.
type cursor struct {
	entries []entry
	post    []int // posting list into entries; nil means "every entry"
	i       int
}

func (c *cursor) head() *entry {
	if c.post != nil {
		if c.i >= len(c.post) {
			return nil
		}
		return &c.entries[c.post[c.i]]
	}
	if c.i >= len(c.entries) {
		return nil
	}
	return &c.entries[c.i]
}

// merge visits every cursor's entries in ascending global sequence order.
func merge(cursors []cursor, fn func(*types.Record)) {
	mergeWhile(cursors, func(rec *types.Record) bool {
		fn(rec)
		return true
	})
}

// mergeWhile is merge with early termination: iteration stops as soon as
// fn returns false. Cancellation-aware scans (a query whose caller hung
// up mid-evaluation) use this to bail out between records of the
// cross-shard merge instead of finishing a pointless full scan.
func mergeWhile(cursors []cursor, fn func(*types.Record) bool) {
	for {
		var best *entry
		bi := -1
		for i := range cursors {
			if e := cursors[i].head(); e != nil && (best == nil || e.seq < best.seq) {
				best, bi = e, i
			}
		}
		if best == nil {
			return
		}
		cursors[bi].i++
		if !fn(&best.rec) {
			return
		}
	}
}

// snapshotCursors captures a consistent read view of every shard: the
// committed prefix of each entries slice plus (optionally) one posting
// list per shard. All shard read-locks are held simultaneously while the
// slice headers are captured — sequence numbers are assigned under the
// shard write lock, so a moment with every lock held observes a
// downward-closed prefix of the global arrival order, exactly like the
// old single-lock store. Capture is just header copies, so writers are
// stalled only momentarily.
func (s *Store) snapshotCursors(link *types.LinkID) []cursor {
	for i := range s.shards {
		s.shards[i].mu.RLock()
	}
	out := make([]cursor, 0, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		c := cursor{entries: sh.entries}
		if link != nil {
			c.post = sh.byLink[*link]
		}
		if link == nil || len(c.post) > 0 {
			out = append(out, c)
		}
	}
	for i := range s.shards {
		s.shards[i].mu.RUnlock()
	}
	return out
}

// ForEach visits records matching the link pattern and time range in
// global insertion order. A wildcard-free link uses the link index;
// everything else scans.
func (s *Store) ForEach(link types.LinkID, tr types.TimeRange, fn func(*types.Record)) {
	s.ForEachWhile(link, tr, func(rec *types.Record) bool {
		fn(rec)
		return true
	})
}

// ForEachWhile is ForEach with early termination: the scan stops as soon
// as fn returns false. Context-aware query evaluation polls cancellation
// every few thousand records through this, so a caller that hung up does
// not pin a shard-merge over a large TIB.
func (s *Store) ForEachWhile(link types.LinkID, tr types.TimeRange, fn func(*types.Record) bool) {
	if s.indexed && !link.IsWildcard() {
		mergeWhile(s.snapshotCursors(&link), func(rec *types.Record) bool {
			if rec.Overlaps(tr) {
				return fn(rec)
			}
			return true
		})
		return
	}
	all := link == types.AnyLink
	mergeWhile(s.snapshotCursors(nil), func(rec *types.Record) bool {
		if !rec.Overlaps(tr) {
			return true
		}
		if all || rec.Path.ContainsLink(link) {
			return fn(rec)
		}
		return true
	})
}

// ForFlow visits records of one flow matching the link pattern and range,
// in insertion order. All records of a flow live in one shard, so only
// that stripe is touched.
func (s *Store) ForFlow(f types.FlowID, link types.LinkID, tr types.TimeRange, fn func(*types.Record)) {
	visit := func(rec *types.Record) {
		if !rec.Overlaps(tr) {
			return
		}
		if link != types.AnyLink && !rec.Path.ContainsLink(link) {
			return
		}
		fn(rec)
	}
	sh := s.shardFor(f)
	sh.mu.RLock()
	entries := sh.entries
	var post []int
	if s.indexed {
		post = sh.byFlow[f]
	}
	sh.mu.RUnlock()
	if s.indexed {
		for _, i := range post {
			visit(&entries[i].rec)
		}
		return
	}
	for i := range entries {
		if entries[i].rec.Flow == f {
			visit(&entries[i].rec)
		}
	}
}

// Flows returns the distinct ⟨flowID, path⟩ pairs that traversed the link
// pattern during the range — the getFlows host API (§2.1).
func (s *Store) Flows(link types.LinkID, tr types.TimeRange) []types.Flow {
	type key struct {
		f types.FlowID
		p string
	}
	seen := make(map[key]bool)
	var out []types.Flow
	s.ForEach(link, tr, func(rec *types.Record) {
		k := key{rec.Flow, rec.Path.Key()}
		if !seen[k] {
			seen[k] = true
			out = append(out, types.Flow{ID: rec.Flow, Path: rec.Path})
		}
	})
	return out
}

// Paths returns the distinct paths flowID took through the link pattern
// during the range — the getPaths host API.
func (s *Store) Paths(f types.FlowID, link types.LinkID, tr types.TimeRange) []types.Path {
	seen := make(map[string]bool)
	var out []types.Path
	s.ForFlow(f, link, tr, func(rec *types.Record) {
		k := rec.Path.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, rec.Path)
		}
	})
	return out
}

// Count returns packet and byte totals for a ⟨flowID, path⟩ pair within
// the range — the getCount host API. A nil path aggregates all paths.
func (s *Store) Count(f types.Flow, tr types.TimeRange) (bytes, pkts uint64) {
	s.ForFlow(f.ID, types.AnyLink, tr, func(rec *types.Record) {
		if f.Path != nil && !rec.Path.Equal(f.Path) {
			return
		}
		bytes += rec.Bytes
		pkts += rec.Pkts
	})
	return bytes, pkts
}

// Duration returns the active time span of a ⟨flowID, path⟩ pair within
// the range — the getDuration host API. A nil path aggregates all paths.
func (s *Store) Duration(f types.Flow, tr types.TimeRange) types.Time {
	var lo, hi types.Time = -1, -1
	s.ForFlow(f.ID, types.AnyLink, tr, func(rec *types.Record) {
		if f.Path != nil && !rec.Path.Equal(f.Path) {
			return
		}
		if lo < 0 || rec.STime < lo {
			lo = rec.STime
		}
		if rec.ETime > hi {
			hi = rec.ETime
		}
	})
	if lo < 0 {
		return 0
	}
	return hi - lo
}

// Snapshot serialises the record log with gob (the stand-in for the
// paper's MongoDB persistence). Records are written in global insertion
// order, so the wire format is identical to the single-lock store's.
func (s *Store) Snapshot(w io.Writer) error {
	recs := make([]types.Record, 0, s.Len())
	merge(s.snapshotCursors(nil), func(rec *types.Record) {
		recs = append(recs, *rec)
	})
	return gob.NewEncoder(w).Encode(recs)
}

// LoadSnapshot replaces the store contents from a snapshot and rebuilds
// the indexes. The replacement is atomic: the new contents are staged in
// a private store (same shard count, so the flow→shard mapping matches),
// then swapped in under every shard lock at once, so concurrent readers
// see either the old store or the new one — never a half-cleared mix —
// and the sequence counter is only ever reset while no Add can be in
// flight.
func (s *Store) LoadSnapshot(r io.Reader) error {
	var recs []types.Record
	if err := gob.NewDecoder(r).Decode(&recs); err != nil {
		return err
	}
	staged := NewStoreShards(len(s.shards))
	staged.indexed = s.indexed
	for _, rec := range recs {
		staged.Add(rec)
	}
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	for i := range s.shards {
		s.shards[i].entries = staged.shards[i].entries
		s.shards[i].byFlow = staged.shards[i].byFlow
		s.shards[i].byLink = staged.shards[i].byLink
	}
	s.seq.Store(staged.seq.Load())
	s.count.Store(staged.count.Load())
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
	return nil
}
