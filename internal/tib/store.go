package tib

import (
	"encoding/gob"
	"io"
	"sync"

	"pathdump/internal/types"
)

// Store is one host's Trajectory Information Base: an append-mostly record
// log with flow, directed-link and switch indexes. All methods are safe
// for concurrent use (the HTTP agent serves queries while the datapath
// appends).
type Store struct {
	mu      sync.RWMutex
	records []types.Record
	byFlow  map[types.FlowID][]int
	byLink  map[types.LinkID][]int
	// indexing can be disabled for the ablation benchmark
	indexed bool
}

// NewStore builds an empty, indexed TIB.
func NewStore() *Store {
	return &Store{
		byFlow:  make(map[types.FlowID][]int),
		byLink:  make(map[types.LinkID][]int),
		indexed: true,
	}
}

// NewUnindexedStore builds a TIB that answers every query by scanning the
// record log — the baseline for the index ablation bench.
func NewUnindexedStore() *Store {
	s := NewStore()
	s.indexed = false
	return s
}

// Add appends one TIB record.
func (s *Store) Add(rec types.Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := len(s.records)
	s.records = append(s.records, rec)
	if !s.indexed {
		return
	}
	s.byFlow[rec.Flow] = append(s.byFlow[rec.Flow], idx)
	for _, l := range rec.Path.Links() {
		s.byLink[l] = append(s.byLink[l], idx)
	}
}

// Len returns the record count.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// ForEach visits records matching the link pattern and time range. A
// wildcard-free link uses the link index; everything else scans.
func (s *Store) ForEach(link types.LinkID, tr types.TimeRange, fn func(*types.Record)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.indexed && !link.IsWildcard() {
		for _, i := range s.byLink[link] {
			rec := &s.records[i]
			if rec.Overlaps(tr) {
				fn(rec)
			}
		}
		return
	}
	all := link == types.AnyLink
	for i := range s.records {
		rec := &s.records[i]
		if !rec.Overlaps(tr) {
			continue
		}
		if all || rec.Path.ContainsLink(link) {
			fn(rec)
		}
	}
}

// ForFlow visits records of one flow matching the link pattern and range.
func (s *Store) ForFlow(f types.FlowID, link types.LinkID, tr types.TimeRange, fn func(*types.Record)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	visit := func(rec *types.Record) {
		if !rec.Overlaps(tr) {
			return
		}
		if link != types.AnyLink && !rec.Path.ContainsLink(link) {
			return
		}
		fn(rec)
	}
	if s.indexed {
		for _, i := range s.byFlow[f] {
			visit(&s.records[i])
		}
		return
	}
	for i := range s.records {
		if s.records[i].Flow == f {
			visit(&s.records[i])
		}
	}
}

// Flows returns the distinct ⟨flowID, path⟩ pairs that traversed the link
// pattern during the range — the getFlows host API (§2.1).
func (s *Store) Flows(link types.LinkID, tr types.TimeRange) []types.Flow {
	type key struct {
		f types.FlowID
		p string
	}
	seen := make(map[key]bool)
	var out []types.Flow
	s.ForEach(link, tr, func(rec *types.Record) {
		k := key{rec.Flow, rec.Path.Key()}
		if !seen[k] {
			seen[k] = true
			out = append(out, types.Flow{ID: rec.Flow, Path: rec.Path})
		}
	})
	return out
}

// Paths returns the distinct paths flowID took through the link pattern
// during the range — the getPaths host API.
func (s *Store) Paths(f types.FlowID, link types.LinkID, tr types.TimeRange) []types.Path {
	seen := make(map[string]bool)
	var out []types.Path
	s.ForFlow(f, link, tr, func(rec *types.Record) {
		k := rec.Path.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, rec.Path)
		}
	})
	return out
}

// Count returns packet and byte totals for a ⟨flowID, path⟩ pair within
// the range — the getCount host API. A nil path aggregates all paths.
func (s *Store) Count(f types.Flow, tr types.TimeRange) (bytes, pkts uint64) {
	s.ForFlow(f.ID, types.AnyLink, tr, func(rec *types.Record) {
		if f.Path != nil && !rec.Path.Equal(f.Path) {
			return
		}
		bytes += rec.Bytes
		pkts += rec.Pkts
	})
	return bytes, pkts
}

// Duration returns the active time span of a ⟨flowID, path⟩ pair within
// the range — the getDuration host API. A nil path aggregates all paths.
func (s *Store) Duration(f types.Flow, tr types.TimeRange) types.Time {
	var lo, hi types.Time = -1, -1
	s.ForFlow(f.ID, types.AnyLink, tr, func(rec *types.Record) {
		if f.Path != nil && !rec.Path.Equal(f.Path) {
			return
		}
		if lo < 0 || rec.STime < lo {
			lo = rec.STime
		}
		if rec.ETime > hi {
			hi = rec.ETime
		}
	})
	if lo < 0 {
		return 0
	}
	return hi - lo
}

// Snapshot serialises the record log with gob (the stand-in for the
// paper's MongoDB persistence).
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return gob.NewEncoder(w).Encode(s.records)
}

// LoadSnapshot replaces the store contents from a snapshot and rebuilds
// the indexes.
func (s *Store) LoadSnapshot(r io.Reader) error {
	var recs []types.Record
	if err := gob.NewDecoder(r).Decode(&recs); err != nil {
		return err
	}
	s.mu.Lock()
	s.records = nil
	s.byFlow = make(map[types.FlowID][]int)
	s.byLink = make(map[types.LinkID][]int)
	s.mu.Unlock()
	for _, rec := range recs {
		s.Add(rec)
	}
	return nil
}
