package tib

import (
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"pathdump/internal/types"
)

// DefaultShards is the stripe count of a Store built with NewStore. Powers
// of two keep the shard-selection mask cheap; 16 stripes are enough to
// keep a host's ingest path and a handful of concurrent query scans off
// each other's locks without bloating small stores.
const DefaultShards = 16

// DefaultSegmentRecords is the default seal threshold: the active segment
// of a shard is sealed once it holds this many records. Small enough that
// a narrow time window prunes most of a large store by segment bounds
// alone, large enough that per-segment index maps and merge cursors stay
// cheap.
const DefaultSegmentRecords = 8192

// Config parameterises a Store beyond the shard count. The zero value
// selects the documented defaults.
type Config struct {
	// Shards is the lock-stripe count (rounded up to a power of two;
	// default DefaultShards, 1 yields a single-lock store).
	Shards int
	// SegmentSpan seals the active segment of a shard once the time span
	// covered by its records would exceed this (0 = seal by record count
	// only). Time-bucketed segments give range queries the tightest
	// pruning bounds and are the unit of Retention eviction.
	SegmentSpan types.Time
	// SegmentRecords seals the active segment once it holds this many
	// records (0 = DefaultSegmentRecords; negative = never seal by count,
	// which without SegmentSpan reproduces the pre-segmentation store: one
	// unbounded segment per shard, every scan filters every record).
	SegmentRecords int
	// Retention bounds how far back sealed segments are kept: EvictBefore
	// drops whole sealed segments strictly older than the cutoff the
	// caller derives from it (the agent uses now−Retention). 0 keeps
	// everything. Eviction granularity is a segment — pair Retention with
	// a SegmentSpan a fraction of it, as the paper's fixed per-host
	// storage budget intends (§5.3).
	Retention types.Time
	// RetentionBytes bounds the store by resident size instead of (or in
	// addition to) age: once the estimated footprint exceeds it,
	// EvictOverBytes drops the oldest sealed segments until the store fits
	// again — the paper's fixed MB-per-host budget (§5.3) taken literally.
	// 0 means no byte budget. Like Retention, granularity is a whole
	// segment and the active segment is never evicted.
	RetentionBytes int64
	// Unindexed disables the per-segment flow/link indexes (the index
	// ablation benchmark's baseline).
	Unindexed bool
	// ColdDir enables the cold tier: SpillBefore moves sealed segments
	// older than its cutoff into one file each under this directory (v2
	// snapshot framing) and scans demand-load them transiently. Empty
	// disables spilling. See cold.go.
	ColdDir string
	// CompactBelow enables background compaction: sealed, resident
	// segments holding fewer records than this are candidates for
	// merging with their chain neighbours (see compact.go). 0 disables
	// compaction.
	CompactBelow int
}

// Store is one host's Trajectory Information Base: an append-mostly record
// log with flow and directed-link indexes, striped into independently
// locked shards so that concurrent ingest (Add) and query scans do not
// serialise on a single mutex.
//
// Within a shard, records live in a chain of time-partitioned segments:
// one active append segment plus sealed, immutable predecessors, each
// carrying min/max time bounds and its own flow/link index. Range scans
// intersect the query's time range with segment bounds and skip whole
// segments without touching a record; Retention eviction drops whole
// sealed segments, bounding the store (§5.3's fixed per-host budget).
//
// Records are assigned to shards by flow hash — every record of one flow
// lives in one shard — and each record carries a global arrival sequence
// number. Iteration merges shards (and their segment chains) by that
// sequence, so all query results appear in exact global insertion order,
// indistinguishable from the previous single-lock, single-segment
// implementation. All methods are safe for concurrent use (the HTTP agent
// serves queries while the datapath appends).
type Store struct {
	shards []storeShard
	mask   uint32
	// seq hands out global arrival sequence numbers; count tracks the
	// total record count without summing shard lengths under locks.
	seq   atomic.Uint64
	count atomic.Int64
	// indexing can be disabled for the ablation benchmark
	indexed bool

	segSpan        types.Time
	segRecords     int
	retention      types.Time
	retentionBytes int64

	// bytesTotal is the store's estimated resident footprint (recSize per
	// record), maintained on Add/eviction/restore; EvictOverBytes keeps it
	// under RetentionBytes.
	bytesTotal atomic.Int64
	// evictMu serialises byte-budget evictions so concurrent ingest does
	// not stampede the oldest-segment search.
	evictMu sync.Mutex

	// evictFloor is the highest EvictBefore cutoff applied so far, so the
	// agent can call EvictBefore per exported record and pay the shard
	// sweep only when the cutoff has advanced far enough to possibly free
	// a segment.
	evictFloor atomicTime

	// Scan telemetry: cumulative counts of segments walked versus skipped
	// by bound intersection, across all scans. The rpc servers and the
	// in-process transport report per-query deltas to the controller's
	// ExecStats and its §5.2 pruned-fraction cost term.
	segScanned atomic.Uint64
	segPruned  atomic.Uint64

	// Cold tier (cold.go): spillFloor throttles SpillBefore the way
	// evictFloor throttles EvictBefore; coldBytesTotal tracks the
	// estimated thawed footprint of everything currently spilled;
	// coldLoads/coldFaults count demand-loads and their failures.
	coldDir        string
	spillFloor     atomicTime
	coldBytesTotal atomic.Int64
	coldLoads      atomic.Uint64
	coldFaults     atomic.Uint64

	// Compaction (compact.go): compactBelow is the candidate threshold,
	// sealCount counts segments sealed by Add (MaybeCompact's cheap
	// trigger), compactMark the sealCount at the last completed pass,
	// compactMu admits one compactor at a time, and compactions counts
	// completed merges.
	compactBelow int
	sealCount    atomic.Uint64
	compactMark  atomic.Uint64
	compactMu    sync.Mutex
	compactions  atomic.Uint64

	// evictedThroughSeq is the highest arrival sequence ever freed by
	// eviction (never by spilling or compaction, which preserve data).
	// SnapshotSince refuses to build a delta from a watermark at or
	// below it — records in that range are gone, so only a full
	// snapshot is honest.
	evictedThroughSeq atomic.Uint64
}

// atomicTime is an atomic types.Time (int64).
type atomicTime struct{ v atomic.Int64 }

// Load returns the current value.
func (a *atomicTime) Load() types.Time { return types.Time(a.v.Load()) }

// Store replaces the current value.
func (a *atomicTime) Store(t types.Time) { a.v.Store(int64(t)) }

// storeShard is one lock stripe: an ordered chain of segments. The last
// segment is the active append target; all earlier ones are sealed and
// immutable. Sequence numbers are assigned under the shard lock, so the
// chain is sequence-monotonic: every entry of segs[i] precedes every
// entry of segs[i+1] in global arrival order.
type storeShard struct {
	mu   sync.RWMutex
	segs []*segment
}

// active returns the shard's append segment.
func (sh *storeShard) active() *segment { return sh.segs[len(sh.segs)-1] }

type entry struct {
	seq uint64
	rec types.Record
}

// NewStore builds an empty, indexed TIB with the default configuration.
func NewStore() *Store { return NewStoreConfig(Config{}) }

// NewStoreShards builds an empty, indexed TIB striped into n lock shards
// (rounded up to a power of two; n <= 1 yields a single-lock store).
func NewStoreShards(n int) *Store { return NewStoreConfig(Config{Shards: n}) }

// NewUnindexedStore builds a TIB that answers every query by scanning the
// record log — the baseline for the index ablation bench.
func NewUnindexedStore() *Store { return NewStoreConfig(Config{Unindexed: true}) }

// NewStoreConfig builds an empty TIB from an explicit configuration.
func NewStoreConfig(cfg Config) *Store {
	n := cfg.Shards
	if n < 1 {
		n = DefaultShards
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	segRecords := cfg.SegmentRecords
	if segRecords == 0 {
		segRecords = DefaultSegmentRecords
	}
	s := &Store{
		shards:         make([]storeShard, pow),
		mask:           uint32(pow - 1),
		indexed:        !cfg.Unindexed,
		segSpan:        cfg.SegmentSpan,
		segRecords:     segRecords,
		retention:      cfg.Retention,
		retentionBytes: cfg.RetentionBytes,
		coldDir:        cfg.ColdDir,
		compactBelow:   cfg.CompactBelow,
	}
	for i := range s.shards {
		s.shards[i].segs = []*segment{newSegment(s.indexed)}
	}
	return s
}

// Retention returns the configured retention window (0 = unbounded); the
// agent's ingest path derives EvictBefore cutoffs from it.
func (s *Store) Retention() types.Time { return s.retention }

// RetentionBytes returns the configured byte budget (0 = unbounded).
func (s *Store) RetentionBytes() int64 { return s.retentionBytes }

// SizeBytes returns the store's estimated resident footprint — the
// quantity EvictOverBytes holds under the byte budget. It is an estimate
// (recSize per record), not an exact heap measurement.
func (s *Store) SizeBytes() int64 { return s.bytesTotal.Load() }

// LastSeq returns the newest global arrival sequence number handed out
// (0 for an empty store). Continuous monitors capture it before an
// incremental scan and use it as the next run's watermark.
func (s *Store) LastSeq() uint64 { return s.seq.Load() }

// recSize estimates one record's resident footprint: the entry struct,
// the record's path backing array, and a share of index-posting overhead.
// It only needs to be consistent — the byte budget trades precision for
// an O(1) accounting update on the ingest path.
func recSize(rec *types.Record) int64 {
	return 96 + 2*int64(len(rec.Path))
}

// shardFor hashes a flow onto its stripe (FNV-1a over the 5-tuple).
func (s *Store) shardFor(f types.FlowID) *storeShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	mix := func(v uint32) {
		h ^= v & 0xff
		h *= prime32
		h ^= (v >> 8) & 0xff
		h *= prime32
		h ^= (v >> 16) & 0xff
		h *= prime32
		h ^= v >> 24
		h *= prime32
	}
	mix(uint32(f.SrcIP))
	mix(uint32(f.DstIP))
	mix(uint32(f.SrcPort)<<16 | uint32(f.DstPort))
	mix(uint32(f.Proto))
	return &s.shards[h&s.mask]
}

// Add appends one TIB record. Only the record's shard is locked, so
// concurrent ingest of distinct flows proceeds in parallel. When the
// shard's active segment is full (by record count) or the record would
// stretch its time span past SegmentSpan, the segment is sealed — bounds
// frozen, contents immutable from then on — and a fresh active segment
// starts.
func (s *Store) Add(rec types.Record) {
	sh := s.shardFor(rec.Flow)
	sh.mu.Lock()
	seg := sh.active()
	if s.shouldSeal(seg, &rec) {
		seg.seal()
		seg = newSegment(s.indexed)
		sh.segs = append(sh.segs, seg)
		s.sealCount.Add(1)
	}
	// The sequence number is assigned under the shard lock so each
	// shard's segment chain is sequence-monotonic, which the merge in
	// ScanWhile relies on.
	seg.add(entry{seq: s.seq.Add(1), rec: rec}, s.indexed)
	sh.mu.Unlock()
	s.count.Add(1)
	s.bytesTotal.Add(recSize(&rec))
}

// shouldSeal decides whether the active segment must be sealed before rec
// is appended.
func (s *Store) shouldSeal(seg *segment, rec *types.Record) bool {
	if len(seg.entries) == 0 {
		return false
	}
	if s.segRecords > 0 && len(seg.entries) >= s.segRecords {
		return true
	}
	if s.segSpan > 0 {
		lo, hi := seg.minTime, seg.maxTime
		if rec.STime < lo {
			lo = rec.STime
		}
		if rec.ETime > hi {
			hi = rec.ETime
		}
		return hi-lo > s.segSpan
	}
	return false
}

// Len returns the record count.
func (s *Store) Len() int { return int(s.count.Load()) }

// Segments returns how many non-empty segments currently exist across
// all shards (a shard's active segment counts once it holds a record;
// cold segments count — they are still scannable).
func (s *Store) Segments() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, seg := range sh.segs {
			if seg.recs() > 0 {
				n++
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// SealedSegments returns how many sealed, resident (non-cold) segments
// exist across all shards — the population background compaction works
// on and the churn benchmark asserts against.
func (s *Store) SealedSegments() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, seg := range sh.segs {
			if seg.sealed && !seg.cold && len(seg.entries) > 0 {
				n++
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// SegmentStats returns the cumulative scan telemetry: how many segments
// scans have walked versus pruned by time-bound intersection. Callers
// attribute a query's share by delta (capture before and after).
func (s *Store) SegmentStats() (scanned, pruned uint64) {
	return s.segScanned.Load(), s.segPruned.Load()
}

// EvictBefore drops every sealed segment whose newest record ended
// strictly before cutoff, returning how many segments and records were
// freed. The active segment is never evicted (seal it first by adding, or
// accept that the freshest records always survive). Eviction is the
// retention mechanism reproducing the paper's fixed per-host storage
// budget: whole expired segments go at once, indexes and all.
//
// Repeated calls with slowly advancing cutoffs are cheap: cutoffs that
// cannot free anything new (not a full SegmentSpan — or, spanless, not a
// quarter of Retention — past the last effective one) return without
// touching a lock.
func (s *Store) EvictBefore(cutoff types.Time) (segments, records int) {
	if cutoff <= 0 {
		// Virtual time starts at 0: nothing can predate a non-positive
		// cutoff, so the whole first retention window is lock-free here.
		return 0, 0
	}
	floor := s.evictFloor.Load()
	step := s.segSpan
	if step == 0 {
		step = s.retention / 4
	}
	if floor > 0 && cutoff < floor+step {
		return 0, 0
	}
	s.evictFloor.Store(cutoff)
	var freed, coldFreed int64
	var coldFiles []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		keep := sh.segs[:0]
		for _, seg := range sh.segs {
			if seg.sealed && seg.recs() > 0 && seg.maxTime < cutoff {
				segments++
				records += seg.recs()
				freed += seg.bytes
				if seg.cold {
					coldFreed += seg.coldBytes
					// Mark before the file is unlinked (after the
					// locks drop) so a racing scan that captured this
					// segment treats a vanished file as an eviction,
					// not corruption.
					seg.dropped.Store(true)
					coldFiles = append(coldFiles, seg.coldPath)
				}
				s.noteEvictedSeq(seg.lastSeq())
				continue
			}
			keep = append(keep, seg)
		}
		// Clear the dropped tail so evicted segments are collectable.
		for j := len(keep); j < len(sh.segs); j++ {
			sh.segs[j] = nil
		}
		sh.segs = keep
		sh.mu.Unlock()
	}
	if records > 0 {
		s.count.Add(int64(-records))
		s.bytesTotal.Add(-freed)
		s.coldBytesTotal.Add(-coldFreed)
	}
	for _, p := range coldFiles {
		os.Remove(p)
	}
	return segments, records
}

// noteEvictedSeq advances the evicted-through watermark to seq (see the
// evictedThroughSeq field). Lock-free monotonic max.
func (s *Store) noteEvictedSeq(seq uint64) {
	for {
		cur := s.evictedThroughSeq.Load()
		if seq <= cur || s.evictedThroughSeq.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// EvictOverBytes enforces the byte budget (Config.RetentionBytes): while
// the store's estimated footprint exceeds it, the globally oldest sealed
// segment (smallest max record time) is dropped whole, indexes and all.
// The active segments are never evicted, so a store whose live append
// heads alone exceed the budget stays over it until they seal. Safe to
// call per ingested record: under budget it is one atomic load, and a
// single evictor runs at a time.
func (s *Store) EvictOverBytes() (segments, records int) {
	budget := s.retentionBytes
	if budget <= 0 || s.bytesTotal.Load() <= budget {
		return 0, 0
	}
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	for s.bytesTotal.Load() > budget {
		// Find the oldest sealed, non-empty segment across all shards.
		victimShard := -1
		var victim *segment
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.RLock()
			for _, seg := range sh.segs {
				if seg.sealed && len(seg.entries) > 0 && (victim == nil || seg.maxTime < victim.maxTime) {
					victim, victimShard = seg, i
				}
			}
			sh.mu.RUnlock()
		}
		if victim == nil {
			return segments, records // nothing sealed left to free
		}
		sh := &s.shards[victimShard]
		sh.mu.Lock()
		for j, seg := range sh.segs {
			if seg == victim {
				sh.segs = append(sh.segs[:j], sh.segs[j+1:]...)
				segments++
				records += len(seg.entries)
				s.count.Add(int64(-len(seg.entries)))
				s.bytesTotal.Add(-seg.bytes)
				s.noteEvictedSeq(seg.lastSeq())
				break
			}
		}
		sh.mu.Unlock()
	}
	return segments, records
}

// scanBuf holds one scan's reusable cursor machinery. Every ScanWhile
// used to allocate a []cursor plus one []segCursor per surviving shard
// (and the flow path its own []segCursor) — per-query garbage that
// scales with shard and segment count and shows up directly in fan-out
// latency. Scans now borrow a scanBuf from a sync.Pool and return it
// when the merge finishes; release clears every segCursor up to
// capacity so a pooled buffer never pins evicted segments' entry or
// posting arrays.
type scanBuf struct {
	cursors []cursor
	flat    []segCursor // the single-shard flow path's cursor chain
}

var scanBufs = sync.Pool{New: func() any { return new(scanBuf) }}

func getScanBuf() *scanBuf { return scanBufs.Get().(*scanBuf) }

// next extends the cursor list by one, reusing the slot's retained segs
// capacity from earlier scans. The returned pointer is valid until the
// next call (which may grow the backing array).
func (b *scanBuf) next() *cursor {
	if len(b.cursors) < cap(b.cursors) {
		b.cursors = b.cursors[:len(b.cursors)+1]
	} else {
		b.cursors = append(b.cursors, cursor{})
	}
	c := &b.cursors[len(b.cursors)-1]
	c.segs, c.si = c.segs[:0], 0
	return c
}

// drop retracts the last cursor handed out by next — used when a shard
// turns out to have no surviving segments. Only valid while that cursor's
// segs list is empty.
func (b *scanBuf) drop() { b.cursors = b.cursors[:len(b.cursors)-1] }

// release clears all segment references and returns the buffer to the
// pool. Clearing runs to capacity, not length: slots beyond this scan's
// length were cleared when their own scan released, so the invariant
// "pooled buffers hold no segment references" survives reuse at any size.
func (b *scanBuf) release() {
	for i := range b.cursors {
		c := &b.cursors[i]
		segs := c.segs[:cap(c.segs)]
		for j := range segs {
			segs[j] = segCursor{}
		}
		c.segs, c.si = c.segs[:0], 0
	}
	b.cursors = b.cursors[:0]
	flat := b.flat[:cap(b.flat)]
	for j := range flat {
		flat[j] = segCursor{}
	}
	b.flat = b.flat[:0]
	scanBufs.Put(b)
}

// cursor walks one shard's matching entries in sequence order during a
// cross-shard merge: a chain of per-segment sub-cursors, consumed in
// chain order (the chain is sequence-monotonic). Entry and posting slices
// are append-only and sealed segments immutable, so the headers captured
// under the shard RLock stay valid (and their elements immutable) after
// the lock is released.
type cursor struct {
	segs []segCursor
	si   int
}

// segCursor walks one segment's entries (or one posting list into them).
// A non-zero until caps the walk by arrival sequence: entries past it are
// never visited (entry and posting sequences are ascending, so the first
// over-bound head exhausts the cursor). A cursor captured over a cold
// segment carries only the segment reference; thawCursors fills entries
// and post from disk after the shard locks are released, before the
// merge starts.
type segCursor struct {
	entries []entry
	post    []int // posting list into entries; nil means "every entry"
	i       int
	until   uint64   // inclusive sequence bound; 0 = none
	cold    *segment // unresolved cold segment; nil once thawed
}

func (c *segCursor) head() *entry {
	var e *entry
	if c.post != nil {
		if c.i >= len(c.post) {
			return nil
		}
		e = &c.entries[c.post[c.i]]
	} else {
		if c.i >= len(c.entries) {
			return nil
		}
		e = &c.entries[c.i]
	}
	if c.until > 0 && e.seq > c.until {
		return nil
	}
	return e
}

func (c *cursor) head() *entry {
	for c.si < len(c.segs) {
		if e := c.segs[c.si].head(); e != nil {
			return e
		}
		c.si++
	}
	return nil
}

func (c *cursor) advance() { c.segs[c.si].i++ }

// mergeWhile visits every cursor's entries in ascending global sequence
// order, with early termination: iteration stops as soon as
// fn returns false. Cancellation-aware scans (a query whose caller hung
// up mid-evaluation) use this to bail out between records of the
// cross-shard merge instead of finishing a pointless full scan.
func mergeWhile(cursors []cursor, fn func(*types.Record) bool) {
	for {
		var best *entry
		bi := -1
		for i := range cursors {
			if e := cursors[i].head(); e != nil && (best == nil || e.seq < best.seq) {
				best, bi = e, i
			}
		}
		if best == nil {
			return
		}
		cursors[bi].advance()
		if !fn(&best.rec) {
			return
		}
	}
}

// snapshotCursors captures a consistent read view of every shard: per
// surviving segment, the committed prefix of its entries slice plus
// (optionally) one posting list. Segments whose time bounds do not
// intersect tr — or whose sequence bounds fall wholly outside
// (since, until] — are pruned: skipped whole, before any record is
// touched. Shard chains are sequence-monotonic, so the watermark check is
// a single comparison per sealed segment; inside the one segment
// straddling the watermark the start position is found by binary search.
// All shard read-locks are held simultaneously while the slice headers
// are captured — sequence numbers are assigned under the shard write
// lock, so a moment with every lock held observes a downward-closed
// prefix of the global arrival order, exactly like the old single-lock
// store. Capture is just header copies, so writers are stalled only
// momentarily. The cursor list and its per-shard chains live in the
// caller's pooled scanBuf.
func (s *Store) snapshotCursors(buf *scanBuf, since, until uint64, link *types.LinkID, tr types.TimeRange) []cursor {
	for i := range s.shards {
		s.shards[i].mu.RLock()
	}
	var scanned, pruned uint64
	for i := range s.shards {
		sh := &s.shards[i]
		c := buf.next()
		for _, seg := range sh.segs {
			if seg.recs() == 0 {
				continue
			}
			if seg.seqOutside(since, until) {
				pruned++ // wholly outside the watermark window
				continue
			}
			if !seg.overlaps(tr) {
				pruned++
				continue
			}
			if seg.cold {
				// Entries (and postings, for the link path) live on
				// disk; capture the reference now, demand-load after
				// the locks drop.
				scanned++
				c.segs = append(c.segs, segCursor{cold: seg, until: until})
				continue
			}
			sc := segCursor{entries: seg.entries, until: until}
			if link != nil {
				sc.post = trimPostings(seg.entries, seg.byLink[*link], since)
				if len(sc.post) == 0 {
					scanned++ // bound check passed; the index answered "none"
					continue
				}
			} else {
				sc.i = seg.seqStart(since)
			}
			scanned++
			c.segs = append(c.segs, sc)
		}
		if len(c.segs) == 0 {
			buf.drop()
		}
	}
	for i := range s.shards {
		s.shards[i].mu.RUnlock()
	}
	s.segScanned.Add(scanned)
	s.segPruned.Add(pruned)
	return buf.cursors
}

// thawCursors resolves every cold segment captured by snapshotCursors:
// the segment's contents are demand-loaded from disk into a private
// copy (the store is untouched) and the cursor is pointed at it, with
// the same posting/watermark trimming a resident segment gets at
// capture time. Runs after the shard locks are released — disk reads
// must not stall writers. A segment evicted between capture and thaw
// resolves to an empty cursor (its data is gone exactly as if eviction
// had won the race outright); any other failure aborts the scan with a
// *ColdReadError.
func (s *Store) thawCursors(buf *scanBuf, link *types.LinkID, since uint64) error {
	for ci := range buf.cursors {
		c := &buf.cursors[ci]
		for si := range c.segs {
			sc := &c.segs[si]
			if sc.cold == nil {
				continue
			}
			th, err := s.thaw(sc.cold)
			sc.cold = nil
			if err != nil {
				return err
			}
			if th == nil {
				continue // evicted under the scan: nothing to visit
			}
			if link != nil {
				sc.post = trimPostings(th.entries, th.byLink[*link], since)
				if len(sc.post) == 0 {
					continue
				}
			} else {
				sc.i = th.seqStart(since)
			}
			sc.entries = th.entries
		}
	}
	return nil
}

// trimPostings drops the prefix of a posting list at or below the
// sequence watermark. Posting indexes ascend, and entry sequences ascend
// with them, so the cut point is a binary search.
func trimPostings(entries []entry, post []int, since uint64) []int {
	if since == 0 || len(post) == 0 {
		return post
	}
	cut := sort.Search(len(post), func(j int) bool {
		return entries[post[j]].seq > since
	})
	return post[cut:]
}

// Scan visits every record matching the predicate triple in global
// insertion order — the pushed-down evaluation path behind the query
// layer's Predicate. See ScanWhile. The returned error is nil unless a
// cold segment the scan needed could not be read back (*ColdReadError);
// the store itself is unaffected by such a failure.
func (s *Store) Scan(flow *types.FlowID, link types.LinkID, tr types.TimeRange, fn func(*types.Record)) error {
	return s.ScanWhile(flow, link, tr, func(rec *types.Record) bool {
		fn(rec)
		return true
	})
}

// ScanWhile is Scan with early termination: the scan stops as soon as fn
// returns false. The predicate triple picks the cheapest access path —
//
//   - flow != nil: the flow's single shard, walking that flow's posting
//     list inside each segment surviving time pruning;
//   - concrete link: the link's posting lists inside surviving segments
//     of every shard, merged by sequence;
//   - otherwise: a full merge over surviving segments.
//
// In every case whole segments whose [min,max] time bounds miss tr are
// skipped before a record is touched, and surviving records are filtered
// by the remaining predicate terms. The error is nil unless a needed
// cold segment failed to demand-load (*ColdReadError).
func (s *Store) ScanWhile(flow *types.FlowID, link types.LinkID, tr types.TimeRange, fn func(*types.Record) bool) error {
	return s.ScanSince(0, 0, flow, link, tr, fn)
}

// ScanSince is ScanWhile restricted to records whose global arrival
// sequence lies in (since, until] — the incremental-evaluation primitive
// behind installed-query watermarks. since 0 means "from the beginning",
// until 0 means "no upper bound". Shard chains are sequence-monotonic, so
// whole sealed segments at or below the watermark are skipped by one
// bound comparison (counted as pruned in SegmentStats), the straddling
// segment is entered by binary search, and segments past until terminate
// each shard's walk; everything visited still honours the flow/link/time
// predicate. A monitor that captures until = LastSeq() before evaluating
// never double-processes records that arrive mid-scan.
//
// The error is nil unless the scan needed a cold segment that could not
// be read back from disk (*ColdReadError); the scan aborts at that point
// rather than return silently partial results, and the store's resident
// contents are unaffected.
func (s *Store) ScanSince(since, until uint64, flow *types.FlowID, link types.LinkID, tr types.TimeRange, fn func(*types.Record) bool) error {
	if flow != nil {
		return s.scanFlowWhile(since, until, *flow, link, tr, fn)
	}
	buf := getScanBuf()
	defer buf.release()
	if s.indexed && !link.IsWildcard() {
		cursors := s.snapshotCursors(buf, since, until, &link, tr)
		if err := s.thawCursors(buf, &link, since); err != nil {
			return err
		}
		mergeWhile(cursors, func(rec *types.Record) bool {
			if rec.Overlaps(tr) {
				return fn(rec)
			}
			return true
		})
		return nil
	}
	all := link == types.AnyLink
	cursors := s.snapshotCursors(buf, since, until, nil, tr)
	if err := s.thawCursors(buf, nil, since); err != nil {
		return err
	}
	mergeWhile(cursors, func(rec *types.Record) bool {
		if !rec.Overlaps(tr) {
			return true
		}
		if all || rec.Path.ContainsLink(link) {
			return fn(rec)
		}
		return true
	})
	return nil
}

// scanFlowWhile is the single-shard flow path: all records of one flow
// live in one shard, and inside it the flow's per-segment posting lists
// (already in insertion order) are walked directly, bounded below and
// above by the (since, until] sequence window. Sealed segments carry a
// flow bloom filter: a negative probe prunes the segment before its
// posting map is even consulted, which dominates on long-lived stores
// where a flow touches a handful of the shard's many segments.
func (s *Store) scanFlowWhile(since, until uint64, f types.FlowID, link types.LinkID, tr types.TimeRange, fn func(*types.Record) bool) error {
	sh := s.shardFor(f)
	fh := flowHash64(f)
	buf := getScanBuf()
	defer buf.release()
	sh.mu.RLock()
	var scanned, pruned uint64
	segs := buf.flat
	for _, seg := range sh.segs {
		if seg.recs() == 0 {
			continue
		}
		if seg.seqOutside(since, until) {
			pruned++
			continue
		}
		if !seg.overlaps(tr) {
			pruned++
			continue
		}
		if seg.filter != nil && !seg.filter.mayContain(fh) {
			pruned++ // the flow provably never hit this segment
			continue
		}
		scanned++
		if seg.cold {
			// The bloom (retained resident) already said "maybe";
			// demand-load after the lock drops.
			segs = append(segs, segCursor{cold: seg, until: until})
			continue
		}
		sc := segCursor{entries: seg.entries, until: until}
		if s.indexed {
			sc.post = trimPostings(seg.entries, seg.byFlow[f], since)
			if len(sc.post) == 0 {
				continue
			}
		} else {
			sc.i = seg.seqStart(since)
		}
		segs = append(segs, sc)
	}
	buf.flat = segs
	sh.mu.RUnlock()
	s.segScanned.Add(scanned)
	s.segPruned.Add(pruned)

	// Resolve cold captures outside the lock, trimming by the flow's
	// posting list just as resident segments were at capture time.
	for si := range segs {
		sc := &segs[si]
		if sc.cold == nil {
			continue
		}
		th, err := s.thaw(sc.cold)
		sc.cold = nil
		if err != nil {
			return err
		}
		if th == nil {
			continue // evicted under the scan
		}
		if s.indexed {
			sc.post = trimPostings(th.entries, th.byFlow[f], since)
			if len(sc.post) == 0 {
				continue
			}
		} else {
			sc.i = th.seqStart(since)
		}
		sc.entries = th.entries
	}

	visit := func(rec *types.Record) bool {
		if !rec.Overlaps(tr) {
			return true
		}
		if link != types.AnyLink && !rec.Path.ContainsLink(link) {
			return true
		}
		return fn(rec)
	}
	for si := range segs {
		sc := &segs[si]
		for {
			e := sc.head()
			if e == nil {
				break
			}
			sc.i++
			if sc.post == nil && e.rec.Flow != f {
				continue // unindexed store: filter the shard's other flows
			}
			if !visit(&e.rec) {
				return nil
			}
		}
	}
	return nil
}

// ForEach visits records matching the link pattern and time range in
// global insertion order. A wildcard-free link uses the link index;
// everything else scans surviving segments. The error is nil unless a
// needed cold segment failed to demand-load (*ColdReadError).
func (s *Store) ForEach(link types.LinkID, tr types.TimeRange, fn func(*types.Record)) error {
	return s.Scan(nil, link, tr, fn)
}

// ForEachWhile is ForEach with early termination: the scan stops as soon
// as fn returns false. Context-aware query evaluation polls cancellation
// every few thousand records through this, so a caller that hung up does
// not pin a shard-merge over a large TIB.
func (s *Store) ForEachWhile(link types.LinkID, tr types.TimeRange, fn func(*types.Record) bool) error {
	return s.ScanWhile(nil, link, tr, fn)
}

// ForFlow visits records of one flow matching the link pattern and range,
// in insertion order. All records of a flow live in one shard, so only
// that stripe is touched. The error is nil unless a needed cold segment
// failed to demand-load (*ColdReadError).
func (s *Store) ForFlow(f types.FlowID, link types.LinkID, tr types.TimeRange, fn func(*types.Record)) error {
	return s.Scan(&f, link, tr, fn)
}

// Flows returns the distinct ⟨flowID, path⟩ pairs that traversed the link
// pattern during the range — the getFlows host API (§2.1).
//
// Flows, Paths, Count and Duration keep the error-less host-API
// signatures the query layer's View contract requires. On a store with
// a cold tier, a demand-load failure makes their answer partial (the
// failing scan aborts); ColdStats counts such faults, and callers that
// must distinguish partial answers use the Scan methods directly.
func (s *Store) Flows(link types.LinkID, tr types.TimeRange) []types.Flow {
	type key struct {
		f types.FlowID
		p string
	}
	seen := make(map[key]bool)
	var out []types.Flow
	s.ForEach(link, tr, func(rec *types.Record) {
		k := key{rec.Flow, rec.Path.Key()}
		if !seen[k] {
			seen[k] = true
			out = append(out, types.Flow{ID: rec.Flow, Path: rec.Path})
		}
	})
	return out
}

// Paths returns the distinct paths flowID took through the link pattern
// during the range — the getPaths host API.
func (s *Store) Paths(f types.FlowID, link types.LinkID, tr types.TimeRange) []types.Path {
	seen := make(map[string]bool)
	var out []types.Path
	s.ForFlow(f, link, tr, func(rec *types.Record) {
		k := rec.Path.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, rec.Path)
		}
	})
	return out
}

// Count returns packet and byte totals for a ⟨flowID, path⟩ pair within
// the range — the getCount host API. A nil path aggregates all paths.
func (s *Store) Count(f types.Flow, tr types.TimeRange) (bytes, pkts uint64) {
	s.ForFlow(f.ID, types.AnyLink, tr, func(rec *types.Record) {
		if f.Path != nil && !rec.Path.Equal(f.Path) {
			return
		}
		bytes += rec.Bytes
		pkts += rec.Pkts
	})
	return bytes, pkts
}

// Duration returns the active time span of a ⟨flowID, path⟩ pair within
// the range — the getDuration host API. A nil path aggregates all paths.
func (s *Store) Duration(f types.Flow, tr types.TimeRange) types.Time {
	var lo, hi types.Time = -1, -1
	s.ForFlow(f.ID, types.AnyLink, tr, func(rec *types.Record) {
		if f.Path != nil && !rec.Path.Equal(f.Path) {
			return
		}
		if lo < 0 || rec.STime < lo {
			lo = rec.STime
		}
		if rec.ETime > hi {
			hi = rec.ETime
		}
	})
	if lo < 0 {
		return 0
	}
	return hi - lo
}
