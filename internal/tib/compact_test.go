package tib

import (
	"sync"
	"testing"

	"pathdump/internal/types"
)

// fragmentedStore builds a store whose span-sealing leaves many tiny
// sealed segments (one record per 10 ms against a 20 ms span — the
// churn shape compaction exists for), with compaction enabled but not
// yet run.
func fragmentedStore(n int) *Store {
	s := NewStoreConfig(Config{SegmentSpan: 20 * types.Millisecond, CompactBelow: 128})
	for i := 0; i < n; i++ {
		st := types.Time(i) * 10 * types.Millisecond
		s.Add(mkRecord(flowN(i%97), types.Path{1, types.SwitchID(2 + i%4), 9}, st, st+types.Millisecond, uint64(i), 1))
	}
	return s
}

// TestCompactionReducesSegments: the acceptance check — after churn
// fragments the chains, one compaction pass leaves at least 4x fewer
// sealed segments, and every scan path returns exactly the same records
// in the same global order as before.
func TestCompactionReducesSegments(t *testing.T) {
	s := fragmentedStore(8000)
	before := s.SealedSegments()
	wantAll := scanAll(s)
	f := flowN(13)
	wantPaths := s.Paths(f, types.AnyLink, types.AllTime)
	link := types.LinkID{A: 1, B: 4}
	var wantLink []types.Record
	if err := s.Scan(nil, link, types.AllTime, func(r *types.Record) { wantLink = append(wantLink, *r) }); err != nil {
		t.Fatal(err)
	}
	mid := uint64(len(wantAll) / 2)
	var wantSince []types.Record
	if err := s.ScanSince(mid, 0, nil, types.AnyLink, types.AllTime, func(r *types.Record) bool {
		wantSince = append(wantSince, *r)
		return true
	}); err != nil {
		t.Fatal(err)
	}

	merged, replaced := s.Compact()
	if merged == 0 || replaced <= merged {
		t.Fatalf("Compact merged %d runs from %d segments — nothing happened", merged, replaced)
	}
	after := s.SealedSegments()
	if after*4 > before {
		t.Fatalf("compaction left %d sealed segments of %d — want at least 4x fewer", after, before)
	}
	if s.Compactions() == 0 {
		t.Error("Compactions counter did not advance")
	}

	sameRecords(t, scanAll(s), wantAll, "full scan after compaction")
	gotPaths := s.Paths(f, types.AnyLink, types.AllTime)
	if len(gotPaths) != len(wantPaths) {
		t.Fatalf("flow paths after compaction: %d, want %d", len(gotPaths), len(wantPaths))
	}
	var gotLink []types.Record
	if err := s.Scan(nil, link, types.AllTime, func(r *types.Record) { gotLink = append(gotLink, *r) }); err != nil {
		t.Fatal(err)
	}
	sameRecords(t, gotLink, wantLink, "link-indexed scan after compaction")
	var gotSince []types.Record
	if err := s.ScanSince(mid, 0, nil, types.AnyLink, types.AllTime, func(r *types.Record) bool {
		gotSince = append(gotSince, *r)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	sameRecords(t, gotSince, wantSince, "watermark scan after compaction")

	if s.Len() != len(wantAll) {
		t.Errorf("Len = %d after compaction, want %d", s.Len(), len(wantAll))
	}
}

// TestCompactionDisabledAndThrottled: Compact is a no-op without
// CompactBelow, and MaybeCompact skips until enough seals accumulate.
func TestCompactionDisabledAndThrottled(t *testing.T) {
	off := NewStoreConfig(Config{SegmentSpan: 20 * types.Millisecond})
	for i := 0; i < 500; i++ {
		st := types.Time(i) * 10 * types.Millisecond
		off.Add(mkRecord(flowN(i%7), types.Path{1, 2}, st, st+1, 1, 1))
	}
	if m, r := off.Compact(); m != 0 || r != 0 {
		t.Fatalf("Compact on disabled store merged %d/%d", m, r)
	}

	on := NewStoreConfig(Config{SegmentSpan: 20 * types.Millisecond, CompactBelow: 128})
	for i := 0; i < 3; i++ { // too few records to seal compactMinSeals segments
		on.Add(mkRecord(flowN(i), types.Path{1, 2}, types.Time(i), types.Time(i)+1, 1, 1))
	}
	if m, _ := on.MaybeCompact(); m != 0 {
		t.Fatalf("MaybeCompact ran below the seal threshold (merged %d)", m)
	}
}

// TestCompactionRacingEviction: a compaction plan whose victims are
// evicted between plan and commit must abandon the merge — the chain is
// left exactly as eviction shaped it, with no resurrected records.
func TestCompactionRacingEviction(t *testing.T) {
	s := fragmentedStore(4000)
	// Plan merges for every shard, but do not commit yet.
	var runs []compactRun
	for i := range s.shards {
		runs = append(runs, s.planShard(i, s.segRecords)...)
	}
	if len(runs) == 0 {
		t.Fatal("no compaction runs planned over a fragmented store")
	}
	built := make([]*segment, len(runs))
	for i, run := range runs {
		built[i] = s.buildMerged(run)
	}

	// Eviction wins the race: drop everything older than the midpoint.
	cutoff := 4000 / 2 * 10 * types.Millisecond
	if segs, _ := s.EvictBefore(cutoff); segs == 0 {
		t.Fatal("eviction freed nothing — cutoff miscalibrated")
	}
	want := scanAll(s)

	// Commits whose victims were evicted must refuse; the rest may land.
	aborted := 0
	for i, run := range runs {
		evicted := false
		for _, seg := range run.segs {
			if seg.maxTime < cutoff {
				evicted = true
			}
		}
		ok := s.commitRun(run, built[i])
		if evicted && ok {
			t.Fatal("commitRun resurrected evicted segments")
		}
		if !ok {
			aborted++
		}
	}
	if aborted == 0 {
		t.Fatal("no run overlapped the eviction — race not exercised")
	}
	sameRecords(t, scanAll(s), want, "store after abandoned commits")
}

// TestCompactionConcurrentChurn: compaction, eviction, ingest and scans
// all running at once must preserve the sacred invariant — scans see
// strictly ascending global sequence order — and corrupt no counters.
// Doubles as a race prover under -race.
func TestCompactionConcurrentChurn(t *testing.T) {
	s := NewStoreConfig(Config{SegmentSpan: 10 * types.Millisecond, CompactBelow: 64, Retention: time200ms})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Compact()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var last uint64
			ok := true
			s.ScanSince(0, 0, nil, types.AnyLink, types.AllTime, func(r *types.Record) bool {
				seq := r.Bytes // Bytes carries i, ascending with arrival below
				if seq < last {
					ok = false
					return false
				}
				last = seq
				return true
			})
			if !ok {
				t.Error("scan order regressed during concurrent compaction")
				return
			}
		}
	}()
	for i := 0; i < 30_000; i++ {
		st := types.Time(i) * types.Millisecond
		s.Add(mkRecord(flowN(i%31), types.Path{1, types.SwitchID(2 + i%3), 9}, st, st+1, uint64(i), 1))
		s.EvictBefore(st - time200ms)
	}
	close(stop)
	wg.Wait()
	if s.Len() < 0 || s.SizeBytes() < 0 {
		t.Fatalf("accounting corrupted: Len=%d SizeBytes=%d", s.Len(), s.SizeBytes())
	}
}

const time200ms = 200 * types.Millisecond
