// Package tib implements PathDump's per-host storage engine (§3.2):
//
//   - the trajectory memory, which aggregates the packet stream into
//     per-path flow records (one record per ⟨flow, link-ID set⟩) and evicts
//     them on FIN/RST or after an idle timeout, like NetFlow;
//   - the trajectory cache, which memoises ⟨srcIP, link IDs⟩ → path so the
//     construction module rarely re-walks the topology;
//   - the Trajectory Information Base (TIB) itself: the indexed store of
//     ⟨flow ID, path, stime, etime, #bytes, #pkts⟩ records that the host
//     API queries slice and dice.
//
// The paper builds the TIB on MongoDB; here it is a native in-memory store
// with flow, link and switch indexes plus gob snapshot persistence, which
// preserves every queried behaviour while keeping the module dependency-free.
package tib

import (
	"sync"

	"pathdump/internal/cherrypick"
	"pathdump/internal/types"
)

// DefaultIdleTimeout is the eviction timeout for per-path flow records that
// stop receiving packets (the paper uses 5 seconds, like NetFlow).
const DefaultIdleTimeout = 5 * types.Second

// MemEntry is one per-path flow record still being accumulated: statistics
// on packets of the same flow that carried the same sampled link IDs.
type MemEntry struct {
	Flow  types.FlowID
	Hdr   cherrypick.Header
	STime types.Time
	ETime types.Time
	Bytes uint64
	Pkts  uint64
	Fin   bool
}

// hdrKey packs the trajectory header into a comparable, allocation-free
// key: the datapath updates the trajectory memory for every packet, so
// this path must not allocate. Three slots cover every header that can
// reach a host (a third VLAN tag punts the packet to the controller
// before delivery); longer headers truncate, which only merges records of
// unreachable header shapes.
type hdrKey struct {
	dscp uint8
	n    uint8
	v    [3]uint16
}

func makeHdrKey(hdr cherrypick.Header) hdrKey {
	k := hdrKey{dscp: hdr.DSCP, n: uint8(len(hdr.VLANs))}
	for i, val := range hdr.VLANs {
		if i == len(k.v) {
			break
		}
		k.v[i] = val
	}
	return k
}

type memKey struct {
	flow types.FlowID
	hdr  hdrKey
}

// Memory is the trajectory memory: the OVS-side aggregation stage of
// Figure 2. It is sized by active flows, not by packets. Methods are safe
// for concurrent use so queries (Live) can run while the datapath updates.
type Memory struct {
	mu      sync.RWMutex
	idle    types.Time
	entries map[memKey]*MemEntry
	// order keeps keys in insertion order for deterministic sweeps.
	order []memKey
}

// NewMemory builds a trajectory memory with the given idle timeout
// (0 selects DefaultIdleTimeout).
func NewMemory(idle types.Time) *Memory {
	if idle == 0 {
		idle = DefaultIdleTimeout
	}
	return &Memory{idle: idle, entries: make(map[memKey]*MemEntry)}
}

// Len returns the number of live per-path flow records.
func (m *Memory) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.entries)
}

// Update creates or updates the per-path flow record for one packet and
// returns it. fin marks FIN/RST packets, which make the record eligible
// for immediate eviction.
func (m *Memory) Update(now types.Time, flow types.FlowID, hdr cherrypick.Header, size int, fin bool) *MemEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := memKey{flow: flow, hdr: makeHdrKey(hdr)}
	e := m.entries[k]
	if e == nil {
		e = &MemEntry{Flow: flow, Hdr: hdr.Clone(), STime: now}
		m.entries[k] = e
		m.order = append(m.order, k)
	}
	e.ETime = now
	e.Bytes += uint64(size)
	e.Pkts++
	if fin {
		e.Fin = true
	}
	return e
}

// EvictFlow removes and returns every record of one flow (invoked when a
// FIN or RST is seen).
func (m *Memory) EvictFlow(flow types.FlowID) []*MemEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*MemEntry
	kept := m.order[:0]
	for _, k := range m.order {
		if k.flow == flow {
			if e, ok := m.entries[k]; ok {
				out = append(out, e)
				delete(m.entries, k)
			}
			continue
		}
		kept = append(kept, k)
	}
	m.order = kept
	return out
}

// EvictIdle removes and returns every record idle since before now−idle.
func (m *Memory) EvictIdle(now types.Time) []*MemEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*MemEntry
	kept := m.order[:0]
	for _, k := range m.order {
		e, ok := m.entries[k]
		if !ok {
			continue
		}
		if now-e.ETime >= m.idle {
			out = append(out, e)
			delete(m.entries, k)
			continue
		}
		kept = append(kept, k)
	}
	m.order = kept
	return out
}

// Flush removes and returns everything (end of run).
func (m *Memory) Flush() []*MemEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*MemEntry, 0, len(m.entries))
	for _, k := range m.order {
		if e, ok := m.entries[k]; ok {
			out = append(out, e)
			delete(m.entries, k)
		}
	}
	m.order = m.order[:0]
	return out
}

// Live returns a snapshot of the current records without evicting them —
// the IPC lookup path that lets queries see data not yet exported to the
// TIB (§3.2). Entries are copied so readers never race with datapath
// updates to the live records.
func (m *Memory) Live() []MemEntry {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]MemEntry, 0, len(m.entries))
	for _, k := range m.order {
		if e, ok := m.entries[k]; ok {
			out = append(out, *e)
		}
	}
	return out
}
