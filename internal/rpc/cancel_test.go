package rpc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pathdump/internal/controller"
	"pathdump/internal/query"
	"pathdump/internal/topology"
	"pathdump/internal/types"
)

// slowTarget is an agent stand-in whose query evaluation takes a real
// delay and honours cancellation, counting how many executions started —
// the observable for "the server-side fan-out stopped".
type slowTarget struct {
	delay    time.Duration
	executed atomic.Int32
}

func (t *slowTarget) ExecuteContext(ctx context.Context, q query.Query) (query.Result, error) {
	t.executed.Add(1)
	timer := time.NewTimer(t.delay)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-ctx.Done():
		return query.Result{}, ctx.Err()
	}
	return query.Result{Op: q.Op}, nil
}

func (t *slowTarget) Execute(q query.Query) query.Result {
	res, _ := t.ExecuteContext(context.Background(), q)
	return res
}
func (t *slowTarget) Install(query.Query, types.Time) int { return 1 }
func (t *slowTarget) Uninstall(int) error                 { return nil }
func (t *slowTarget) TIBSize() int                        { return 100 }

// TestBatchQueryClientDisconnect: a client that hangs up mid-/batchquery
// must stop the daemon's server-side fan-out — hosts not yet started are
// never executed, and the in-flight one aborts its scan.
func TestBatchQueryClientDisconnect(t *testing.T) {
	const (
		hosts = 8
		delay = 40 * time.Millisecond
	)
	targets := make(map[types.HostID]Target, hosts)
	slow := make([]*slowTarget, hosts)
	ids := make([]types.HostID, hosts)
	for i := range slow {
		slow[i] = &slowTarget{delay: delay}
		targets[types.HostID(i)] = slow[i]
		ids[i] = types.HostID(i)
	}
	// Parallelism 1 serialises the fan-out: a full batch would take
	// hosts × delay = 320 ms.
	srv := httptest.NewServer((&MultiAgentServer{Targets: targets, Parallelism: 1}).Handler())
	defer srv.Close()

	body, err := json.Marshal(BatchQueryRequest{Hosts: ids, Query: query.Query{Op: query.OpTopK, K: 5}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/batchquery", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
		t.Fatal("batch query succeeded despite client disconnect")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Errorf("disconnected request held the client %v", elapsed)
	}

	// Give the server a moment to observe the disconnect, then verify the
	// fan-out stopped: with 1-at-a-time execution and a ~60 ms lifetime,
	// nowhere near all 8 hosts may have started, and — crucially — the
	// count must not keep growing after the client is gone.
	time.Sleep(100 * time.Millisecond)
	count := func() (n int32) {
		for _, s := range slow {
			n += s.executed.Load()
		}
		return n
	}
	afterDisconnect := count()
	if afterDisconnect >= hosts {
		t.Fatalf("all %d hosts executed despite disconnect", hosts)
	}
	time.Sleep(150 * time.Millisecond)
	if final := count(); final != afterDisconnect {
		t.Errorf("server-side fan-out kept running after disconnect: %d -> %d executions",
			afterDisconnect, final)
	}
}

// TestControllerTimeoutOverHTTP drives the whole stack: controller →
// HTTPTransport (batched) → MultiAgentServer → slow agents, cancelled by
// the controller's deadline. The -timeout flag of pathdumpctl is exactly
// this path.
func TestControllerTimeoutOverHTTP(t *testing.T) {
	const (
		hosts = 8
		delay = 100 * time.Millisecond
	)
	targets := make(map[types.HostID]Target, hosts)
	urls := make(map[types.HostID]string, hosts)
	hostIDs := make([]types.HostID, hosts)
	for i := 0; i < hosts; i++ {
		targets[types.HostID(i)] = &slowTarget{delay: delay}
		hostIDs[i] = types.HostID(i)
	}
	srv := httptest.NewServer((&MultiAgentServer{Targets: targets, Parallelism: 1}).Handler())
	defer srv.Close()
	for i := 0; i < hosts; i++ {
		urls[types.HostID(i)] = srv.URL
	}

	topo, _ := topology.FatTree(4)
	ctrl := controller.New(topo, &HTTPTransport{URLs: urls}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, stats, err := ctrl.ExecuteContext(ctx, hostIDs, query.Query{Op: query.OpTopK, K: 5})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 400*time.Millisecond {
		t.Errorf("deadline-bounded HTTP query took %v (full batch would be %v)", elapsed, hosts*delay)
	}
	if stats.Hosts+stats.Skipped != hosts {
		t.Errorf("answered %d + skipped %d != %d", stats.Hosts, stats.Skipped, hosts)
	}
}

// TestAgentServerQueryTimeout: a single-agent /query whose evaluation
// outlives the per-request deadline (http.TimeoutHandler, pathdumpd's
// -timeout flag) answers 503 and aborts the evaluation.
func TestAgentServerQueryTimeout(t *testing.T) {
	slow := &slowTarget{delay: 300 * time.Millisecond}
	h := http.TimeoutHandler((&AgentServer{T: slow}).Handler(), 50*time.Millisecond, "deadline exceeded")
	srv := httptest.NewServer(h)
	defer srv.Close()

	body, _ := json.Marshal(QueryRequest{Query: query.Query{Op: query.OpTopK, K: 5}})
	start := time.Now()
	resp, err := http.Post(srv.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 from the timeout handler", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Errorf("timed-out request held the client %v", elapsed)
	}
}
