// Tests for the request side of the wire negotiation: binary request
// bodies against modern daemons, the transparent JSON fallback against
// daemons that reject them (415 from -json-only, 400 from pre-wire
// JSON decoders), the per-URL fallback memory, and the no-double-install
// guarantee the decode-before-side-effect ordering provides.
package rpc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"pathdump/internal/query"
	"pathdump/internal/tib"
	"pathdump/internal/types"
	"pathdump/internal/wire"
)

// ctCounter wraps a handler and counts request bodies by Content-Type,
// so tests can assert which encoding actually crossed the wire.
type ctCounter struct {
	h  http.Handler
	mu sync.Mutex
	// wireReqs and jsonReqs count POST bodies by encoding.
	wireReqs, jsonReqs int
}

func (c *ctCounter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	if wire.IsWire(r.Header.Get("Content-Type")) {
		c.wireReqs++
	} else {
		c.jsonReqs++
	}
	c.mu.Unlock()
	c.h.ServeHTTP(w, r)
}

func (c *ctCounter) counts() (wireReqs, jsonReqs int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wireReqs, c.jsonReqs
}

// legacyDaemon emulates a daemon that predates wire-encoded requests
// entirely: its JSON decoder chokes on a frame body and answers 400,
// exactly like the old decode() fed frame bytes.
func legacyDaemon(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if wire.IsWire(r.Header.Get("Content-Type")) {
			http.Error(w, "bad request: invalid character 'P' looking for beginning of value", http.StatusBadRequest)
			return
		}
		h.ServeHTTP(w, r)
	})
}

// TestRequestSideFallbackMatrix runs the same queries through every
// request-side pairing — binary requests against a modern daemon, a
// -json-only daemon (415), and a pre-wire daemon (400), plus the
// JSONRequests client mode — and requires identical results everywhere,
// while asserting which encoding each pairing actually sent and that a
// rejecting daemon is remembered after one probe.
func TestRequestSideFallbackMatrix(t *testing.T) {
	q := query.Query{Op: query.OpRecords, Link: types.AnyLink, Range: types.AllTime}
	newDaemon := func(disableWire bool, legacy bool) (*ctCounter, map[types.HostID]string, []types.HostID) {
		targets := make(map[types.HostID]Target)
		var hosts []types.HostID
		for i := 0; i < 3; i++ {
			h := types.HostID(90 + i)
			targets[h] = SnapshotTarget{Store: seedStore(90+i, 40)}
			hosts = append(hosts, h)
		}
		var h http.Handler = (&MultiAgentServer{Targets: targets, DisableWire: disableWire}).Handler()
		if legacy {
			h = legacyDaemon(h)
		}
		cc := &ctCounter{h: h}
		srv := httptest.NewServer(cc)
		t.Cleanup(srv.Close)
		urls := make(map[types.HostID]string)
		for _, hh := range hosts {
			urls[hh] = srv.URL
		}
		return cc, urls, hosts
	}

	type pairing struct {
		name         string
		disableWire  bool
		legacy       bool
		jsonRequests bool
		// wantWire is how many wire-encoded request bodies the daemon
		// should see across both rounds: all of them against a modern
		// daemon, exactly one probe against a rejecting one, none from a
		// JSONRequests client.
		wantWire func(wireReqs, jsonReqs int) error
	}
	pairings := []pairing{
		{name: "wire-req-modern-daemon", wantWire: func(w, j int) error {
			if w == 0 || j != 0 {
				return fmt.Errorf("modern daemon saw %d wire / %d json request bodies, want all wire", w, j)
			}
			return nil
		}},
		{name: "wire-req-415-daemon", disableWire: true, wantWire: func(w, j int) error {
			if w != 1 || j == 0 {
				return fmt.Errorf("415 daemon saw %d wire / %d json request bodies, want exactly one probe", w, j)
			}
			return nil
		}},
		{name: "wire-req-legacy-400-daemon", legacy: true, wantWire: func(w, j int) error {
			if w != 1 || j == 0 {
				return fmt.Errorf("legacy daemon saw %d wire / %d json request bodies, want exactly one probe", w, j)
			}
			return nil
		}},
		{name: "json-req-client-modern-daemon", jsonRequests: true, wantWire: func(w, j int) error {
			if w != 0 || j == 0 {
				return fmt.Errorf("JSONRequests client sent %d wire / %d json request bodies, want none wire", w, j)
			}
			return nil
		}},
	}

	var want []types.Record
	for _, p := range pairings {
		t.Run(p.name, func(t *testing.T) {
			cc, urls, hosts := newDaemon(p.disableWire, p.legacy)
			tr := &HTTPTransport{URLs: urls, JSONRequests: p.jsonRequests}

			// Two rounds of per-host queries plus a batch: the second
			// round against a rejecting daemon must go straight to JSON
			// (fallback remembered), keeping the wire-probe count at one.
			var first []types.Record
			for round := 0; round < 2; round++ {
				res, meta, err := tr.Query(context.Background(), hosts[0], q)
				if err != nil {
					t.Fatal(err)
				}
				if meta.RecordsScanned != 40 || len(res.Records) != 40 {
					t.Fatalf("round %d: %d records, meta %+v", round, len(res.Records), meta)
				}
				if first == nil {
					first = res.Records
				} else if !reflect.DeepEqual(first, res.Records) {
					t.Fatalf("round %d diverged from round 0", round)
				}
			}
			replies, err := tr.QueryMany(context.Background(), hosts, q, 2)
			if err != nil {
				t.Fatal(err)
			}
			for _, rep := range replies {
				if rep.Err != nil {
					t.Fatal(rep.Err)
				}
				if len(rep.Result.Records) != 40 {
					t.Fatalf("batch host %v: %d records", rep.Host, len(rep.Result.Records))
				}
			}
			if err := p.wantWire(cc.counts()); err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = first
			} else if !reflect.DeepEqual(want, first) {
				t.Fatalf("pairing %s returned different records than the baseline pairing", p.name)
			}
		})
	}
}

// installCounter is a Target that counts Install invocations, proving
// the wire→JSON request retry can never double-install: the rejection
// happens in decode, before the handler touches the target.
type installCounter struct {
	SnapshotTarget
	mu       sync.Mutex
	installs int
}

func (t *installCounter) InstallE(q query.Query, period types.Time) (int, error) {
	t.mu.Lock()
	t.installs++
	n := t.installs
	t.mu.Unlock()
	return n, nil
}

func (t *installCounter) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.installs
}

func TestInstallFallbackNoDoubleExecute(t *testing.T) {
	for _, daemon := range []string{"415", "legacy-400"} {
		t.Run(daemon, func(t *testing.T) {
			target := &installCounter{SnapshotTarget: SnapshotTarget{Store: tib.NewStore()}}
			var h http.Handler = (&AgentServer{T: target, DisableWire: daemon == "415"}).Handler()
			if daemon == "legacy-400" {
				h = legacyDaemon(h)
			}
			srv := httptest.NewServer(h)
			defer srv.Close()

			host := types.HostID(5)
			tr := &HTTPTransport{URLs: map[types.HostID]string{host: srv.URL}}
			id, err := tr.Install(context.Background(), host, query.Query{Op: query.OpPoorTCP, Threshold: 3}, types.Second)
			if err != nil {
				t.Fatal(err)
			}
			if id != 1 || target.count() != 1 {
				t.Fatalf("install ran %d times (id %d), want exactly once", target.count(), id)
			}
		})
	}
}

// TestWireRequestRoundTrip pins the binary request path end to end
// against a modern daemon: the daemon must actually receive a
// wire-encoded body (not silently fall back) and decode every field the
// JSON body used to carry.
func TestWireRequestRoundTrip(t *testing.T) {
	targets := map[types.HostID]Target{7: SnapshotTarget{Store: seedStore(7, 25)}}
	cc := &ctCounter{h: (&MultiAgentServer{Targets: targets}).Handler()}
	srv := httptest.NewServer(cc)
	defer srv.Close()

	tr := &HTTPTransport{URLs: map[types.HostID]string{7: srv.URL}}
	q := query.Query{Op: query.OpRecords, Link: types.AnyLink, Range: types.TimeRange{From: 0, To: 10 * types.Millisecond}}
	res, _, err := tr.Query(context.Background(), 7, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("no records through the wire request path")
	}
	jsonTr := &HTTPTransport{URLs: map[types.HostID]string{7: srv.URL}, JSONOnly: true}
	jres, _, err := jsonTr.Query(context.Background(), 7, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Records, jres.Records) {
		t.Fatal("wire-request and JSON-request paths disagree on the same time-bounded query")
	}
	if w, _ := cc.counts(); w != 1 {
		t.Fatalf("daemon saw %d wire request bodies, want 1", w)
	}
}

// TestStreamClientDisconnectNoLeak starts a streamed records response,
// abandons it mid-frame, and checks the daemon sheds the request — no
// goroutine keeps scanning for a client that hung up (run under -race in
// CI alongside the other leak tests).
func TestStreamClientDisconnectNoLeak(t *testing.T) {
	srv := httptest.NewServer((&AgentServer{T: SnapshotTarget{Store: seedStore(3, 30_000)}}).Handler())
	defer srv.Close()
	before := runtime.NumGoroutine()

	for i := 0; i < 4; i++ {
		body, _ := json.Marshal(QueryRequest{Query: query.Query{Op: query.OpRecords, Link: types.AnyLink, Range: types.AllTime}})
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/query", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Accept", wire.ContentType+", application/json")
		resp, err := DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if !wire.IsWire(resp.Header.Get("Content-Type")) {
			t.Fatalf("expected a streamed wire reply, got %q", resp.Header.Get("Content-Type"))
		}
		// Read one chunk's worth, then hang up mid-frame.
		if _, err := io.ReadFull(resp.Body, make([]byte, 8<<10)); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	DefaultTransport.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after mid-stream disconnects: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
