package rpc

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"time"

	"pathdump/internal/obs"
	"pathdump/internal/tib"
	"pathdump/internal/wire"
)

// TraceHeader is the request header carrying the controller-minted
// per-query trace ID to agents.
const TraceHeader = "X-Pathdump-Trace"

// SpanHeader is the response header carrying the agent-side scan span
// (JSON-encoded) back on buffered wire-encoded replies, whose binary
// body has no slot for it. JSON replies carry the span in the body
// and streamed replies carry none — the controller synthesizes a scan
// span from the stream's trailing meta instead.
const SpanHeader = "X-Pathdump-Span"

// HealthStatus is the GET /healthz body: a cheap readiness probe that
// never executes a query. Status is "ok" once the server can answer
// queries; daemons mid-restore report "loading".
type HealthStatus struct {
	Status string `json:"status"`
	// Hosts is how many host agents this server fronts.
	Hosts int `json:"hosts"`
	// Records is the total TIB records resident across those agents.
	Records int `json:"records"`
	// Snapshot describes snapshot/restore state when relevant (e.g.
	// "restored" for a daemon serving a loaded snapshot).
	Snapshot string `json:"snapshot,omitempty"`
}

// ServerObs is the observability surface a server mounts alongside its
// API: the metrics registry behind GET /metrics, optional pprof
// handlers, an optional health callback overriding the server's
// default /healthz answer, and an optional slow-query log behind GET
// /slowlog. A nil *ServerObs leaves the server uninstrumented (the
// /healthz endpoint is still served — readiness probing must not
// depend on observability being wired).
type ServerObs struct {
	// Registry backs GET /metrics and receives the server's rpc-plane
	// metrics (request counts by op and encoding, latency, response
	// bytes, 4xx/5xx, body-cap rejections).
	Registry *obs.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Health, when set, answers GET /healthz instead of the server's
	// default (which reports agent count and resident records).
	Health func() HealthStatus
	// SlowLog, when set, is served as GET /slowlog (newest first).
	SlowLog *obs.SlowLog
}

// rpcMetrics is one wrapped endpoint's pre-registered series set; all
// label rendering happened at registration, so the per-request cost is
// a handful of atomic ops.
type rpcMetrics struct {
	reqJSON *obs.Counter
	reqWire *obs.Counter
	dur     *obs.Histogram
	bytes   *obs.Histogram
	e4xx    *obs.Counter
	e5xx    *obs.Counter
	bodyCap *obs.Counter
}

// wrap instruments one endpoint: request count split by response
// encoding, latency and response-size histograms, error-class
// counters, and 413 body-cap rejections. With no registry it returns
// h untouched — zero overhead for uninstrumented servers.
func (so *ServerObs) wrap(op string, h http.HandlerFunc) http.HandlerFunc {
	if so == nil || so.Registry == nil {
		return h
	}
	r := so.Registry
	m := &rpcMetrics{
		reqJSON: r.Counter("pathdump_rpc_requests_total", "RPC requests served, by endpoint and response encoding.", obs.L("op", op), obs.L("enc", "json")),
		reqWire: r.Counter("pathdump_rpc_requests_total", "RPC requests served, by endpoint and response encoding.", obs.L("op", op), obs.L("enc", "wire")),
		dur:     r.Histogram("pathdump_rpc_request_seconds", "RPC request handling latency.", obs.LatencyBuckets, obs.L("op", op)),
		bytes:   r.Histogram("pathdump_rpc_response_bytes", "RPC response body sizes.", obs.SizeBuckets, obs.L("op", op)),
		e4xx:    r.Counter("pathdump_rpc_errors_total", "RPC error responses, by endpoint and status class.", obs.L("op", op), obs.L("class", "4xx")),
		e5xx:    r.Counter("pathdump_rpc_errors_total", "RPC error responses, by endpoint and status class.", obs.L("op", op), obs.L("class", "5xx")),
		bodyCap: r.Counter("pathdump_rpc_body_cap_rejections_total", "Request bodies rejected by the size cap (HTTP 413).", obs.L("op", op)),
	}
	return func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		ow := &obsWriter{ResponseWriter: w}
		h(ow, req)
		if wire.IsWire(ow.Header().Get("Content-Type")) {
			m.reqWire.Inc()
		} else {
			m.reqJSON.Inc()
		}
		m.dur.ObserveDuration(time.Since(start))
		m.bytes.Observe(float64(ow.bytes))
		switch {
		case ow.status >= 500:
			m.e5xx.Inc()
		case ow.status == http.StatusRequestEntityTooLarge:
			m.bodyCap.Inc()
			m.e4xx.Inc()
		case ow.status >= 400:
			m.e4xx.Inc()
		}
	}
}

// obsWriter captures status and body bytes as they pass through; it
// forwards Flush so streaming handlers (SSE, snapshots) keep working.
type obsWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

// WriteHeader implements http.ResponseWriter.
func (w *obsWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// Write implements io.Writer.
func (w *obsWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush implements http.Flusher when the underlying writer does.
func (w *obsWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// mountObs registers the observability endpoints on a server mux:
// /healthz always (readiness must not depend on instrumentation),
// /metrics when a registry is wired, /slowlog when a slow-query log
// is, and /debug/pprof/ when opted in.
func mountObs(mux *http.ServeMux, so *ServerObs, defaultHealth func() HealthStatus) {
	health := defaultHealth
	if so != nil && so.Health != nil {
		health = so.Health
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := health()
		if h.Status != "ok" {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			b, _ := json.Marshal(h)
			w.Write(b)
			w.Write([]byte{'\n'})
			return
		}
		encode(w, h)
	})
	if so == nil {
		return
	}
	if so.Registry != nil {
		mux.Handle("/metrics", so.Registry.Handler())
	}
	if so.SlowLog != nil {
		mux.HandleFunc("/slowlog", func(w http.ResponseWriter, r *http.Request) {
			encode(w, so.SlowLog.Entries())
		})
	}
	if so.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// ColdStatser is an optional Target extension reporting the backing
// store's cold-tier telemetry; traced scans report the demand loads
// they caused.
type ColdStatser interface {
	ColdStats() tib.ColdStats
}

// traceScan starts the agent-side scan span when the request carries a
// controller-minted trace ID, returning the span and the target's
// cold-load watermark for delta attribution (0 when untracked).
func traceScan(r *http.Request, t Target) (*obs.Span, uint64) {
	tid := r.Header.Get(TraceHeader)
	if tid == "" {
		return nil, 0
	}
	sp := obs.NewSpan("scan")
	sp.SetAttr("trace", tid)
	var cold uint64
	if cs, ok := t.(ColdStatser); ok {
		cold = cs.ColdStats().Loads
	}
	return sp, cold
}

// finishScan annotates the scan span with the execution's telemetry
// — records resident, segments scanned/pruned, cold-tier loads — and
// stamps its duration. Nil-safe.
func finishScan(sp *obs.Span, t Target, segScanned, segPruned int, cold0 uint64) {
	if sp == nil {
		return
	}
	sp.SetInt("records", int64(t.TIBSize()))
	sp.SetInt("segments_scanned", int64(segScanned))
	sp.SetInt("segments_pruned", int64(segPruned))
	if cs, ok := t.(ColdStatser); ok {
		sp.SetInt("cold_loads", int64(cs.ColdStats().Loads-cold0))
	}
	sp.Finish()
}

// decodeSpanHeader parses the agent scan span a buffered wire reply
// carried in its response header; a missing or malformed header
// yields nil (the controller synthesizes a span from the meta).
func decodeSpanHeader(h http.Header) *obs.Span {
	raw := h.Get(SpanHeader)
	if raw == "" {
		return nil
	}
	var sp obs.Span
	if err := json.Unmarshal([]byte(raw), &sp); err != nil {
		return nil
	}
	return &sp
}
