// Tests for the binary wire data plane: content negotiation and the
// mixed-version fallback matrix, body-size limits, well-formed error
// responses, alarm drop accounting, and racy fan-out over the pooled
// transport.
package rpc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"pathdump/internal/controller"
	"pathdump/internal/query"
	"pathdump/internal/tib"
	"pathdump/internal/types"
	"pathdump/internal/wire"
)

// seedStore fills a store with records for a deterministic host-specific
// flow population.
func seedStore(host int, nrec int) *tib.Store {
	st := tib.NewStore()
	for i := 0; i < nrec; i++ {
		st.Add(types.Record{
			Flow: types.FlowID{
				SrcIP:   types.IP(host<<16 | i%17),
				DstIP:   types.IP(host + 1),
				SrcPort: uint16(1000 + i%29),
				DstPort: 80,
				Proto:   types.ProtoTCP,
			},
			Path:  types.Path{types.SwitchID(host), types.SwitchID(host + 100), types.SwitchID(i % 7)},
			STime: types.Time(i) * types.Millisecond,
			ETime: types.Time(i+3) * types.Millisecond,
			Bytes: uint64(1000 + i),
			Pkts:  uint64(1 + i%5),
		})
	}
	return st
}

// multiDaemon starts one MultiAgentServer over nhosts snapshot targets
// starting at host ID base.
func multiDaemon(t *testing.T, base, nhosts, nrec int, disableWire, compress bool) (*httptest.Server, []types.HostID) {
	t.Helper()
	targets := make(map[types.HostID]Target)
	var hosts []types.HostID
	for i := 0; i < nhosts; i++ {
		h := types.HostID(base + i)
		targets[h] = SnapshotTarget{Store: seedStore(base+i, nrec)}
		hosts = append(hosts, h)
	}
	srv := httptest.NewServer((&MultiAgentServer{Targets: targets, DisableWire: disableWire, WireCompress: compress}).Handler())
	t.Cleanup(srv.Close)
	return srv, hosts
}

// TestWireFallbackMatrix runs the same query across every client/server
// version pairing — wire-speaking and JSON-only on both ends, plus a
// compressing server — and requires identical results from all of them,
// through both the per-host and the batched paths.
func TestWireFallbackMatrix(t *testing.T) {
	type mode struct {
		name        string
		jsonClient  bool
		disableWire bool
		compress    bool
	}
	modes := []mode{
		{name: "binary-client-wire-server"},
		{name: "binary-client-json-server", disableWire: true},
		{name: "json-client-wire-server", jsonClient: true},
		{name: "json-client-json-server", jsonClient: true, disableWire: true},
		{name: "binary-client-compressing-server", compress: true},
	}
	q := query.Query{Op: query.OpRecords, Link: types.AnyLink, Range: types.AllTime}
	var want []controller.BatchReply
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			srv, hosts := multiDaemon(t, 10, 4, 50, m.disableWire, m.compress)
			urls := make(map[types.HostID]string)
			for _, h := range hosts {
				urls[h] = srv.URL
			}
			tr := &HTTPTransport{URLs: urls, JSONOnly: m.jsonClient}

			// Batched path.
			replies, err := tr.QueryMany(context.Background(), hosts, q, 4)
			if err != nil {
				t.Fatal(err)
			}
			for i := range replies {
				if replies[i].Err != nil {
					t.Fatalf("host %v: %v", replies[i].Host, replies[i].Err)
				}
				if len(replies[i].Result.Records) != 50 {
					t.Fatalf("host %v: %d records, want 50", replies[i].Host, len(replies[i].Result.Records))
				}
			}
			// Per-host path must agree with the batch.
			res, meta, err := tr.Query(context.Background(), hosts[0], q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Records, replies[0].Result.Records) {
				t.Fatal("per-host /query and /batchquery disagree")
			}
			if meta.RecordsScanned != 50 {
				t.Fatalf("meta.RecordsScanned = %d, want 50", meta.RecordsScanned)
			}
			if want == nil {
				want = replies
			} else {
				for i := range replies {
					if !reflect.DeepEqual(replies[i].Result.Records, want[i].Result.Records) {
						t.Fatalf("mode %s host %v differs from baseline mode", m.name, replies[i].Host)
					}
				}
			}
		})
	}
}

// TestNegotiationHeaders checks the raw HTTP contract: the response
// Content-Type follows the Accept offer exactly.
func TestNegotiationHeaders(t *testing.T) {
	srv := httptest.NewServer((&AgentServer{T: SnapshotTarget{Store: seedStore(1, 10)}}).Handler())
	defer srv.Close()

	post := func(accept string) *http.Response {
		t.Helper()
		body, _ := json.Marshal(QueryRequest{Query: query.Query{Op: query.OpRecords, Link: types.AnyLink}})
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/query", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := post(wire.ContentType + ", application/json"); !wire.IsWire(resp.Header.Get("Content-Type")) {
		t.Fatalf("wire offer answered with %q", resp.Header.Get("Content-Type"))
	} else if _, res, err := wire.ReadQuery(resp.Body); err != nil || len(res.Records) != 10 {
		t.Fatalf("wire body: res=%v err=%v", res, err)
	}
	if resp := post(""); !strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		t.Fatalf("no offer answered with %q", resp.Header.Get("Content-Type"))
	} else {
		var qr QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil || len(qr.Result.Records) != 10 {
			t.Fatalf("json body: %v err=%v", qr, err)
		}
	}
}

// TestBodyLimit413 exercises the MaxBytesReader fix: an oversized body
// answers 413 with an explicit message (not the old 400 "unexpected
// EOF"), and the cap is configurable per server.
func TestBodyLimit413(t *testing.T) {
	srv := httptest.NewServer((&AgentServer{T: SnapshotTarget{Store: tib.NewStore()}, MaxBodyBytes: 1024}).Handler())
	defer srv.Close()

	big := QueryRequest{Query: query.Query{Op: query.OpConformance, Avoid: make([]types.SwitchID, 4000)}}
	body, _ := json.Marshal(big)
	if len(body) <= 1024 {
		t.Fatalf("test body too small: %d", len(body))
	}
	resp, err := http.Post(srv.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	msg, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(msg), "1024-byte limit") {
		t.Fatalf("413 message %q should name the limit", msg)
	}

	// A raised cap accepts the same body.
	srv2 := httptest.NewServer((&AgentServer{T: SnapshotTarget{Store: tib.NewStore()}, MaxBodyBytes: 1 << 20}).Handler())
	defer srv2.Close()
	resp2, err := http.Post(srv2.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status with raised cap = %d, want 200", resp2.StatusCode)
	}
}

// TestEncodeFailureWellFormed pins the buffered-encode fix: a value JSON
// cannot marshal yields a clean 500 error response, not a 200 with a
// half-written body and an error message glued on.
func TestEncodeFailureWellFormed(t *testing.T) {
	rec := httptest.NewRecorder()
	encode(rec, map[string]float64{"x": math.NaN()})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if strings.Contains(rec.Body.String(), "{") {
		t.Fatalf("error body contains partial JSON: %q", rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		t.Fatalf("error response mislabelled as JSON (%q)", ct)
	}
}

// TestAlarmClientDropped covers the drop accounting: transport failures
// and non-2xx answers both count, and non-2xx surfaces as *StatusError.
func TestAlarmClientDropped(t *testing.T) {
	boom := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "controller on fire", http.StatusInternalServerError)
	}))
	defer boom.Close()

	ac := &AlarmClient{URL: boom.URL}
	err := ac.RaiseAlarmContext(context.Background(), types.Alarm{Reason: types.ReasonLoop})
	var se *StatusError
	if err == nil || !errors.As(err, &se) || se.Code != http.StatusInternalServerError {
		t.Fatalf("err = %v, want *StatusError 500", err)
	}
	if ac.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", ac.Dropped())
	}

	// Transport failure (nothing listening) counts too, via the
	// contextless path.
	dead := &AlarmClient{URL: "http://127.0.0.1:1", Timeout: 200 * time.Millisecond}
	dead.RaiseAlarm(types.Alarm{Reason: types.ReasonLoop})
	if dead.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", dead.Dropped())
	}

	// Successful delivery does not count.
	ok := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Write([]byte("{}"))
	}))
	defer ok.Close()
	ac2 := &AlarmClient{URL: ok.URL}
	if err := ac2.RaiseAlarmContext(context.Background(), types.Alarm{}); err != nil {
		t.Fatal(err)
	}
	if ac2.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", ac2.Dropped())
	}
}

// TestPooledFanoutNoLeak hammers the pooled transport from many
// goroutines (run under -race in CI) and then checks that no goroutines
// outlive the storm once idle connections are dropped.
func TestPooledFanoutNoLeak(t *testing.T) {
	srv, hosts := multiDaemon(t, 40, 8, 30, false, false)
	urls := make(map[types.HostID]string)
	for _, h := range hosts {
		urls[h] = srv.URL
	}
	tr := &HTTPTransport{URLs: urls}
	before := runtime.NumGoroutine()

	q := query.Query{Op: query.OpRecords, Link: types.AnyLink, Range: types.AllTime}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if w%2 == 0 {
					replies, err := tr.QueryMany(context.Background(), hosts, q, 8)
					if err != nil {
						errs <- err
						return
					}
					for _, rep := range replies {
						if rep.Err != nil {
							errs <- rep.Err
							return
						}
					}
				} else {
					h := hosts[(w+i)%len(hosts)]
					if _, _, err := tr.Query(context.Background(), h, q); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	DefaultTransport.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestQueryManyMetaOverWire makes sure per-host telemetry survives the
// binary batch path byte-for-byte against the JSON path.
func TestQueryManyMetaOverWire(t *testing.T) {
	srv, hosts := multiDaemon(t, 70, 3, 40, false, false)
	urls := make(map[types.HostID]string)
	for _, h := range hosts {
		urls[h] = srv.URL
	}
	q := query.Query{Op: query.OpRecords, Link: types.AnyLink, Range: types.TimeRange{From: 0, To: 5 * types.Millisecond}}
	binary, err := (&HTTPTransport{URLs: urls}).QueryMany(context.Background(), hosts, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	jsonR, err := (&HTTPTransport{URLs: urls, JSONOnly: true}).QueryMany(context.Background(), hosts, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range binary {
		if binary[i].Meta != jsonR[i].Meta {
			t.Fatalf("host %v meta differs: wire %+v json %+v", hosts[i], binary[i].Meta, jsonR[i].Meta)
		}
		if binary[i].Meta.RecordsScanned == 0 {
			t.Fatalf("host %v: telemetry lost", hosts[i])
		}
	}
}
