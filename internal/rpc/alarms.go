// The controller's alarm-plane HTTP surface: GET /alarms serves the
// bounded, filterable history (entry ID / reason / host / limit), and
// GET /alarms/stream serves a live Server-Sent-Events feed — the wire
// behind `pathdumpctl -alarms` and `pathdumpctl -watch`. Both honour the
// request context: a client that hangs up releases its subscription (and
// its goroutine) at the next event or heartbeat.
package rpc

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"pathdump/internal/alarms"
	"pathdump/internal/types"
)

// AlarmsResponse is the GET /alarms reply: matching history entries
// (oldest first) plus the pipeline's counters.
type AlarmsResponse struct {
	Entries []alarms.Entry `json:"entries"`
	Stats   alarms.Stats   `json:"stats"`
}

// streamHeartbeat paces SSE keep-alive comments: they bound how long a
// dead connection can hold a subscription and let proxies keep the
// stream open across quiet periods. Variable for tests.
var streamHeartbeat = 15 * time.Second

// parseAlarmFilter reads the shared query parameters of /alarms and
// /alarms/stream: since (entry ID), reason, host, limit.
func parseAlarmFilter(r *http.Request) (alarms.Filter, error) {
	var f alarms.Filter
	q := r.URL.Query()
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return f, fmt.Errorf("rpc: bad since %q: %w", v, err)
		}
		f.SinceID = n
	}
	if v := q.Get("reason"); v != "" {
		f.Reason = types.Reason(v)
	}
	if v := q.Get("host"); v != "" {
		n, err := strconv.ParseUint(v, 10, 32)
		if err != nil {
			return f, fmt.Errorf("rpc: bad host %q: %w", v, err)
		}
		h := types.HostID(n)
		f.Host = &h
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return f, fmt.Errorf("rpc: bad limit %q", v)
		}
		f.Limit = n
	}
	return f, nil
}

// handleAlarms serves GET /alarms.
func (s *ControllerServer) handleAlarms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	f, err := parseAlarmFilter(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	pipe := s.C.AlarmPipeline()
	encode(w, AlarmsResponse{Entries: pipe.History(f), Stats: pipe.Stats()})
}

// handleAlarmStream serves GET /alarms/stream as Server-Sent Events: one
// `id:`+`data:` event per admitted alarm entry, JSON-encoded. With a
// `since` parameter the matching history suffix is replayed first, then
// the live feed continues seamlessly (the subscription opens before the
// replay, and entries already replayed are skipped by ID — no gap, no
// duplicate). reason/host parameters filter the live feed too. The
// handler returns when the client disconnects (r.Context()), closing its
// subscription; a slow client loses the newest entries rather than
// back-pressuring the controller's alarm path.
func (s *ControllerServer) handleAlarmStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "rpc: streaming unsupported by this connection", http.StatusInternalServerError)
		return
	}
	f, err := parseAlarmFilter(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	replay := r.URL.Query().Get("since") != ""
	pipe := s.C.AlarmPipeline()
	sub := pipe.Subscribe(256)
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	writeEvent := func(e alarms.Entry) bool {
		body, err := json.Marshal(e)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\ndata: %s\n\n", e.ID, body); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	var lastID uint64
	if replay {
		for _, e := range pipe.History(f) {
			if !writeEvent(e) {
				return
			}
			lastID = e.ID
		}
	}
	heartbeat := time.NewTicker(streamHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case e, ok := <-sub.C():
			if !ok {
				return
			}
			if e.ID <= lastID || !f.Matches(&e) {
				continue
			}
			if !writeEvent(e) {
				return
			}
			lastID = e.ID
		case <-heartbeat.C:
			if _, err := io.WriteString(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// FetchAlarms queries a controller daemon's alarm history: GET
// {base}/alarms with the filter mapped onto query parameters.
func FetchAlarms(ctx context.Context, client *http.Client, base string, f alarms.Filter) (AlarmsResponse, error) {
	var out AlarmsResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/alarms?"+alarmParams(f).Encode(), nil)
	if err != nil {
		return out, err
	}
	if client == nil {
		client = DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return out, &StatusError{Code: resp.StatusCode, URL: base + "/alarms", Status: resp.Status, Msg: strings.TrimSpace(string(msg))}
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// StreamAlarms tails a controller daemon's live alarm feed: GET
// {base}/alarms/stream, invoking fn for every entry until the context is
// cancelled, the server closes the stream, or fn returns an error (which
// is returned). With replay true the history after f.SinceID is
// delivered first; without it the feed is live-only, with f.SinceID
// still enforced client-side. A cancelled context returns ctx.Err().
func StreamAlarms(ctx context.Context, client *http.Client, base string, f alarms.Filter, replay bool, fn func(alarms.Entry) error) error {
	// The server keys replay off the presence of the since parameter, so
	// it rides the wire exactly when replay is requested (0 = full
	// history); on a live-only stream the ID bound is applied below
	// instead.
	sinceID := f.SinceID
	f.SinceID = 0
	params := alarmParams(f)
	if replay {
		params.Set("since", strconv.FormatUint(sinceID, 10))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/alarms/stream?"+params.Encode(), nil)
	if err != nil {
		return err
	}
	if client == nil {
		client = DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &StatusError{Code: resp.StatusCode, URL: base + "/alarms/stream", Status: resp.Status, Msg: strings.TrimSpace(string(msg))}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue // id: lines, heartbeat comments, blank separators
		}
		var e alarms.Entry
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			return fmt.Errorf("rpc: bad stream event: %w", err)
		}
		if e.ID <= sinceID {
			continue // the caller's ID bound holds on live-only streams too
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return sc.Err()
}

// alarmParams maps a filter onto the endpoints' query parameters,
// URL-escaped (a reason containing '&' or spaces must not corrupt the
// query string).
func alarmParams(f alarms.Filter) url.Values {
	v := url.Values{}
	if f.SinceID > 0 {
		v.Set("since", strconv.FormatUint(f.SinceID, 10))
	}
	if f.Reason != "" {
		v.Set("reason", string(f.Reason))
	}
	if f.Host != nil {
		v.Set("host", strconv.FormatUint(uint64(*f.Host), 10))
	}
	if f.Limit > 0 {
		v.Set("limit", strconv.Itoa(f.Limit))
	}
	return v
}
