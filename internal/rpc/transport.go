// Shared pooled HTTP client. Every rpc client path — query/batch fan-out,
// alarm posts, alarm history/stream helpers — used to fall back to
// http.DefaultClient, whose transport keeps only two idle connections per
// host: a controller fanning out at Parallelism ≥ 8 against one daemon
// re-dialled on almost every wave. DefaultClient replaces that fallback
// with a transport tuned for the fan-out shape: enough idle connections
// per daemon to cover the parallelism bound, bounded dial time, and a
// response-header ceiling generous enough for deliberately slow straggler
// hosts and SSE streams (whose headers arrive immediately).
package rpc

import (
	"net"
	"net/http"
	"time"
)

// DefaultTransport is the pooled transport behind DefaultClient. Exported
// so daemons and tests can inspect or derive from it (e.g. CloseIdleConnections
// in goroutine-leak checks).
var DefaultTransport = &http.Transport{
	Proxy: http.ProxyFromEnvironment,
	DialContext: (&net.Dialer{
		Timeout:   10 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	MaxIdleConns:        512,
	MaxIdleConnsPerHost: 64,
	IdleConnTimeout:     90 * time.Second,
	// Headers normally arrive in microseconds on these APIs; the ceiling
	// only has to stay above the slowest legitimate first byte — a
	// straggler host daemon can stall a full minute before answering.
	ResponseHeaderTimeout: 2 * time.Minute,
	TLSHandshakeTimeout:   10 * time.Second,
	ExpectContinueTimeout: 1 * time.Second,
}

// DefaultClient is the pooled client used whenever an HTTPTransport,
// AlarmClient or alarm helper is not given an explicit *http.Client. It
// deliberately has no overall Timeout: per-request contexts bound the
// data-plane calls, and alarm streams stay open indefinitely.
var DefaultClient = &http.Client{Transport: DefaultTransport}
