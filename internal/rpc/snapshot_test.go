package rpc

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"pathdump/internal/query"
	"pathdump/internal/tib"
	"pathdump/internal/types"
)

// TestSnapshotTargetUnsupportedOp: a daemon serving a bare TIB snapshot
// must answer data queries normally but reply 501 to ops that need the
// live agent runtime (the regression surface behind query.ErrUnsupported).
func TestSnapshotTargetUnsupportedOp(t *testing.T) {
	store := tib.NewStore()
	store.Add(types.Record{
		Flow:  types.FlowID{SrcIP: 1, DstIP: 2, SrcPort: 9, DstPort: 80, Proto: 6},
		Path:  types.Path{0, 8, 16},
		STime: 0, ETime: 5, Bytes: 700, Pkts: 7,
	})
	srv := httptest.NewServer((&AgentServer{T: SnapshotTarget{Store: store}}).Handler())
	defer srv.Close()
	tr := &HTTPTransport{URLs: map[types.HostID]string{1: srv.URL}}

	res, meta, err := tr.Query(context.Background(), 1, query.Query{Op: query.OpFlows, Link: types.AnyLink})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 1 || meta.RecordsScanned != 1 {
		t.Fatalf("snapshot data query = %+v, meta %+v", res, meta)
	}

	_, _, err = tr.Query(context.Background(), 1, query.Query{Op: query.OpPoorTCP, Threshold: 3})
	if err == nil {
		t.Fatal("poor_tcp against a snapshot store did not error")
	}
	if !strings.Contains(err.Error(), "501") || !strings.Contains(err.Error(), "not supported") {
		t.Errorf("err = %v, want a 501 naming the unsupported op", err)
	}

	// The same explicit error flows through batched replies.
	ms := httptest.NewServer((&MultiAgentServer{Targets: map[types.HostID]Target{
		1: SnapshotTarget{Store: store},
	}}).Handler())
	defer ms.Close()
	trb := &HTTPTransport{URLs: map[types.HostID]string{1: ms.URL, 2: ms.URL}}
	replies, err := trb.QueryMany(context.Background(), []types.HostID{1, 2}, query.Query{Op: query.OpPoorTCP}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if replies[0].Err == nil || !strings.Contains(replies[0].Err.Error(), "not supported") {
		t.Errorf("batched reply err = %v, want unsupported", replies[0].Err)
	}

	// Control plane: snapshots accept no installed queries — install
	// must answer 501, not fabricate an ID.
	if _, err := tr.Install(context.Background(), 1, query.Query{Op: query.OpConformance, MaxPathLen: 4}, types.Second); err == nil {
		t.Error("install against a snapshot store did not error")
	} else if !strings.Contains(err.Error(), "501") {
		t.Errorf("install err = %v, want 501", err)
	}
	if err := tr.Uninstall(context.Background(), 1, 5); err == nil {
		t.Error("uninstall against a snapshot store did not error")
	}
}

// TestSnapshotEndpointPullAndServe: GET /snapshot streams a live store's
// segment-wise snapshot; the pulled bytes restore into an offline store
// that answers the same queries — the full -pull-snapshot round trip,
// against both server shapes.
func TestSnapshotEndpointPullAndServe(t *testing.T) {
	store := tib.NewStoreConfig(tib.Config{SegmentRecords: 64})
	for i := 0; i < 1000; i++ {
		store.Add(types.Record{
			Flow:  types.FlowID{SrcIP: types.IP(i % 40), DstIP: 2, SrcPort: 9, DstPort: 80, Proto: 6},
			Path:  types.Path{0, 8, 16},
			STime: types.Time(i), ETime: types.Time(i + 5), Bytes: uint64(i), Pkts: 1,
		})
	}
	srv := httptest.NewServer((&AgentServer{T: SnapshotTarget{Store: store}}).Handler())
	defer srv.Close()
	ms := httptest.NewServer((&MultiAgentServer{Targets: map[types.HostID]Target{
		3: SnapshotTarget{Store: store},
	}}).Handler())
	defer ms.Close()

	for name, tc := range map[string]struct {
		url  string
		host types.HostID
	}{
		"single-agent": {srv.URL, 1},
		"multi-agent":  {ms.URL, 3},
	} {
		tr := &HTTPTransport{URLs: map[types.HostID]string{tc.host: tc.url}}
		var buf bytes.Buffer
		n, err := tr.PullSnapshot(context.Background(), tc.host, &buf)
		if err != nil {
			t.Fatalf("%s: PullSnapshot: %v", name, err)
		}
		if n == 0 || int64(buf.Len()) != n {
			t.Fatalf("%s: pulled %d bytes, buffered %d", name, n, buf.Len())
		}
		restored := tib.NewStore()
		if err := restored.LoadSnapshot(&buf); err != nil {
			t.Fatalf("%s: restore: %v", name, err)
		}
		if restored.Len() != store.Len() {
			t.Fatalf("%s: restored %d of %d records", name, restored.Len(), store.Len())
		}
		// The restored store serves queries offline through SnapshotTarget.
		off := httptest.NewServer((&AgentServer{T: SnapshotTarget{Store: restored}}).Handler())
		offTr := &HTTPTransport{URLs: map[types.HostID]string{tc.host: off.URL}}
		res, meta, err := offTr.Query(context.Background(), tc.host,
			query.Query{Op: query.OpFlows, Link: types.LinkID{A: 8, B: 16}})
		off.Close()
		if err != nil {
			t.Fatalf("%s: offline query: %v", name, err)
		}
		if len(res.Flows) != 40 || meta.RecordsScanned != store.Len() {
			t.Fatalf("%s: offline query = %d flows over %d records", name, len(res.Flows), meta.RecordsScanned)
		}
	}

	// A multi-agent daemon rejects snapshot pulls for hosts it does not
	// serve, and a target without snapshot support answers 501.
	trBad := &HTTPTransport{URLs: map[types.HostID]string{9: ms.URL}}
	if _, err := trBad.PullSnapshot(context.Background(), 9, &bytes.Buffer{}); err == nil {
		t.Error("snapshot pull for an unserved host did not error")
	}
	plain := httptest.NewServer((&AgentServer{T: noSnapshotTarget{}}).Handler())
	defer plain.Close()
	trPlain := &HTTPTransport{URLs: map[types.HostID]string{1: plain.URL}}
	_, err := trPlain.PullSnapshot(context.Background(), 1, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "501") {
		t.Errorf("snapshot pull from a non-snapshotting target = %v, want 501", err)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.HTTPStatus() != 501 {
		t.Errorf("want a typed *StatusError(501), got %T", err)
	}
}

// noSnapshotTarget serves queries but cannot snapshot.
type noSnapshotTarget struct{}

func (noSnapshotTarget) Execute(q query.Query) query.Result  { return query.Result{Op: q.Op} }
func (noSnapshotTarget) Install(query.Query, types.Time) int { return 0 }
func (noSnapshotTarget) Uninstall(int) error                 { return nil }
func (noSnapshotTarget) TIBSize() int                        { return 0 }
