package rpc

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"pathdump/internal/query"
	"pathdump/internal/tib"
	"pathdump/internal/types"
)

// TestSnapshotTargetUnsupportedOp: a daemon serving a bare TIB snapshot
// must answer data queries normally but reply 501 to ops that need the
// live agent runtime (the regression surface behind query.ErrUnsupported).
func TestSnapshotTargetUnsupportedOp(t *testing.T) {
	store := tib.NewStore()
	store.Add(types.Record{
		Flow:  types.FlowID{SrcIP: 1, DstIP: 2, SrcPort: 9, DstPort: 80, Proto: 6},
		Path:  types.Path{0, 8, 16},
		STime: 0, ETime: 5, Bytes: 700, Pkts: 7,
	})
	srv := httptest.NewServer((&AgentServer{T: SnapshotTarget{Store: store}}).Handler())
	defer srv.Close()
	tr := &HTTPTransport{URLs: map[types.HostID]string{1: srv.URL}}

	res, meta, err := tr.Query(context.Background(), 1, query.Query{Op: query.OpFlows, Link: types.AnyLink})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 1 || meta.RecordsScanned != 1 {
		t.Fatalf("snapshot data query = %+v, meta %+v", res, meta)
	}

	_, _, err = tr.Query(context.Background(), 1, query.Query{Op: query.OpPoorTCP, Threshold: 3})
	if err == nil {
		t.Fatal("poor_tcp against a snapshot store did not error")
	}
	if !strings.Contains(err.Error(), "501") || !strings.Contains(err.Error(), "not supported") {
		t.Errorf("err = %v, want a 501 naming the unsupported op", err)
	}

	// The same explicit error flows through batched replies.
	ms := httptest.NewServer((&MultiAgentServer{Targets: map[types.HostID]Target{
		1: SnapshotTarget{Store: store},
	}}).Handler())
	defer ms.Close()
	trb := &HTTPTransport{URLs: map[types.HostID]string{1: ms.URL, 2: ms.URL}}
	replies, err := trb.QueryMany(context.Background(), []types.HostID{1, 2}, query.Query{Op: query.OpPoorTCP}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if replies[0].Err == nil || !strings.Contains(replies[0].Err.Error(), "not supported") {
		t.Errorf("batched reply err = %v, want unsupported", replies[0].Err)
	}

	// Control plane: snapshots accept no installed queries — install
	// must answer 501, not fabricate an ID.
	if _, err := tr.Install(context.Background(), 1, query.Query{Op: query.OpConformance, MaxPathLen: 4}, types.Second); err == nil {
		t.Error("install against a snapshot store did not error")
	} else if !strings.Contains(err.Error(), "501") {
		t.Errorf("install err = %v, want 501", err)
	}
	if err := tr.Uninstall(context.Background(), 1, 5); err == nil {
		t.Error("uninstall against a snapshot store did not error")
	}
}
