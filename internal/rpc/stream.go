// Streamed records-op responses. A records query over a busy host can
// match hundreds of thousands of records; materialising them into one
// reply slice and then one wire frame makes the daemon's peak memory
// O(reply) per in-flight request. When the client accepts the wire
// encoding and the target can hand records out as its scan visits them
// (RecordStreamer), the /query handlers instead write the frame with a
// wire.QueryStreamWriter: records leave in bounded chunks as the scan
// produces them, the response flushes after every chunk so the
// controller's merge starts before the scan finishes, and the daemon
// never holds more than one chunk of the reply.
package rpc

import (
	"context"
	"errors"
	"net/http"

	"pathdump/internal/query"
	"pathdump/internal/types"
	"pathdump/internal/wire"
)

// RecordStreamer is an optional Target extension for backends that can
// hand matching records to a visitor as their scan runs, without
// materialising the reply; *agent.Agent and SnapshotTarget implement it.
// fn must not retain the record pointer past the call. The scan polls
// ctx and the returned error is the context's, so a vanished client
// releases the host mid-scan.
type RecordStreamer interface {
	StreamRecords(ctx context.Context, q query.Query, fn func(*types.Record)) error
}

// StreamRecords implements RecordStreamer: the store scan visits
// matching records directly, polling ctx between records of the
// cross-shard merge.
func (t SnapshotTarget) StreamRecords(ctx context.Context, q query.Query, fn func(*types.Record)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	v := t.view().WithContext(ctx)
	v.ScanRecords(query.PredicateOf(q), fn)
	return ctx.Err()
}

// streamQueryResponse serves a records op as a chunked wire frame when
// everything lines up — the op is OpRecords, the server has wire
// responses enabled, the client accepted them, and the target streams —
// and reports whether it handled the request. Any other combination
// returns false and the caller takes the materialised path.
//
// Once the first chunk is written the HTTP status is committed, so a
// mid-scan failure (in practice: the client hung up) cannot turn into an
// error status; the writer is abandoned instead, leaving a truncated
// frame the client's decoder rejects.
func streamQueryResponse(w http.ResponseWriter, r *http.Request, t Target, q query.Query, disableWire, compress bool) bool {
	if q.Op != query.OpRecords || disableWire || !wire.Accepted(r.Header.Get("Accept")) {
		return false
	}
	sr, ok := t.(RecordStreamer)
	if !ok {
		return false
	}
	ctx := r.Context()
	if err := ctx.Err(); err != nil {
		writeExecuteError(w, err)
		return true
	}
	var sc0, sp0 uint64
	ss, statsOK := t.(SegmentStatser)
	if statsOK {
		sc0, sp0 = ss.SegmentStats()
	}
	w.Header().Set("Content-Type", wire.ContentType)
	sw, err := wire.NewQueryStreamWriter(w, wire.Meta{RecordsScanned: t.TIBSize()}, q.Op, compress)
	if err != nil {
		// Nothing reached the wire yet; the client sees a clean error.
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return true
	}
	if f, ok := w.(http.Flusher); ok {
		sw.OnChunk = f.Flush
	}
	serr := sr.StreamRecords(ctx, q, func(rec *types.Record) {
		// Errors are sticky: once a flush fails, later appends no-op and
		// the scan winds down via its own ctx polls (the usual cause of a
		// failed flush is the client hanging up, which cancels ctx).
		_ = sw.Append(rec)
	})
	if serr == nil {
		serr = sw.Err()
	}
	if serr != nil {
		// The status line is long gone; truncation is the error signal.
		sw.Abort()
		return true
	}
	segScanned, segPruned := 0, 0
	if statsOK {
		sc1, sp1 := ss.SegmentStats()
		segScanned, segPruned = int(sc1-sc0), int(sp1-sp0)
	}
	if err := sw.Close(segScanned, segPruned); err != nil && !errors.Is(err, wire.ErrStreamClosed) {
		sw.Abort()
	}
	return true
}
