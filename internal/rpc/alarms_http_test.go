package rpc

import (
	"context"
	"errors"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathdump/internal/alarms"
	"pathdump/internal/controller"
	"pathdump/internal/topology"
	"pathdump/internal/types"
)

func newAlarmServer(t *testing.T, cfg alarms.Config) (*controller.Controller, *httptest.Server) {
	t.Helper()
	topo, err := topology.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := controller.New(topo, controller.Local{}, nil)
	ctrl.SetAlarmPolicy(cfg)
	srv := httptest.NewServer((&ControllerServer{C: ctrl}).Handler())
	t.Cleanup(srv.Close)
	return ctrl, srv
}

func testAlarm(host int, port uint16, reason types.Reason) types.Alarm {
	return types.Alarm{
		Host:   types.HostID(host),
		Flow:   types.FlowID{SrcIP: 1, DstIP: 2, SrcPort: port, DstPort: 80, Proto: 6},
		Reason: reason,
	}
}

// TestAlarmsEndpoint: history flows end to end through GET /alarms with
// server-side filtering.
func TestAlarmsEndpoint(t *testing.T) {
	ctrl, srv := newAlarmServer(t, alarms.Config{})
	for i := 0; i < 10; i++ {
		reason := types.ReasonPoorPerf
		if i%2 == 0 {
			reason = types.ReasonPathConformance
		}
		ctrl.RaiseAlarm(testAlarm(1+i%2, uint16(i), reason))
	}
	ctx := context.Background()

	all, err := FetchAlarms(ctx, nil, srv.URL, alarms.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Entries) != 10 || all.Stats.Admitted != 10 {
		t.Fatalf("got %d entries, stats %+v", len(all.Entries), all.Stats)
	}

	poor, err := FetchAlarms(ctx, nil, srv.URL, alarms.Filter{Reason: types.ReasonPoorPerf})
	if err != nil {
		t.Fatal(err)
	}
	if len(poor.Entries) != 5 {
		t.Fatalf("reason filter returned %d entries, want 5", len(poor.Entries))
	}
	for _, e := range poor.Entries {
		if e.Alarm.Reason != types.ReasonPoorPerf {
			t.Fatalf("reason filter leaked %v", e.Alarm)
		}
	}

	h := types.HostID(2)
	hostOnly, err := FetchAlarms(ctx, nil, srv.URL, alarms.Filter{Host: &h, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(hostOnly.Entries) != 2 || hostOnly.Entries[0].Alarm.Host != h {
		t.Fatalf("host+limit filter = %+v", hostOnly.Entries)
	}

	since, err := FetchAlarms(ctx, nil, srv.URL, alarms.Filter{SinceID: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(since.Entries) != 2 || since.Entries[0].ID != 9 {
		t.Fatalf("since filter = %+v", since.Entries)
	}
}

// TestAlarmStream: the SSE feed delivers live entries, replays history
// when asked, and the client helper stops cleanly on context cancel with
// no goroutine left behind.
func TestAlarmStream(t *testing.T) {
	ctrl, srv := newAlarmServer(t, alarms.Config{Suppress: time.Minute})
	before := runtime.NumGoroutine()

	// Two pre-stream alarms: the replayed prefix.
	ctrl.RaiseAlarm(testAlarm(1, 1, types.ReasonPoorPerf))
	ctrl.RaiseAlarm(testAlarm(1, 2, types.ReasonPoorPerf))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got := make(chan alarms.Entry, 16)
	done := make(chan error, 1)
	go func() {
		done <- StreamAlarms(ctx, nil, srv.URL, alarms.Filter{}, true, func(e alarms.Entry) error {
			got <- e
			return nil
		})
	}()

	expect := func(id uint64, port uint16) {
		t.Helper()
		select {
		case e := <-got:
			if e.ID != id || e.Alarm.Flow.SrcPort != port {
				t.Fatalf("got entry %d (port %d), want %d (port %d)", e.ID, e.Alarm.Flow.SrcPort, id, port)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for entry %d", id)
		}
	}
	expect(1, 1)
	expect(2, 2)

	// Live phase: a new alarm, a suppressed repeat (not delivered), then
	// another new one.
	ctrl.RaiseAlarm(testAlarm(1, 3, types.ReasonPoorPerf))
	expect(3, 3)
	ctrl.RaiseAlarm(testAlarm(1, 3, types.ReasonPoorPerf)) // dedup folds it
	ctrl.RaiseAlarm(testAlarm(1, 4, types.ReasonPoorPerf))
	expect(4, 4)
	select {
	case e := <-got:
		t.Fatalf("suppressed repeat leaked into the stream: %+v", e)
	case <-time.After(50 * time.Millisecond):
	}

	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("stream ended with %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not stop on cancel")
	}
	// The server handler must drop its subscription once the client is
	// gone (it notices at the next event or heartbeat; force an event).
	deadline := time.Now().Add(5 * time.Second)
	for ctrl.AlarmStats().Subscribers > 0 {
		ctrl.RaiseAlarm(testAlarm(9, 99, types.ReasonLoop))
		if time.Now().After(deadline) {
			t.Fatal("server-side subscription leaked after client cancel")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAlarmStreamFilter: reason filtering applies to the live feed, not
// just replay.
func TestAlarmStreamFilter(t *testing.T) {
	ctrl, srv := newAlarmServer(t, alarms.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got := make(chan alarms.Entry, 16)
	go func() {
		StreamAlarms(ctx, nil, srv.URL, alarms.Filter{Reason: types.ReasonLoop}, false, func(e alarms.Entry) error {
			got <- e
			return nil
		})
	}()
	// Give the stream a moment to subscribe, then publish a mix.
	deadline := time.Now().Add(5 * time.Second)
	for ctrl.AlarmStats().Subscribers == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream never subscribed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctrl.RaiseAlarm(testAlarm(1, 1, types.ReasonPoorPerf))
	ctrl.RaiseAlarm(testAlarm(1, 2, types.ReasonLoop))
	ctrl.RaiseAlarm(testAlarm(1, 3, types.ReasonPoorPerf))
	select {
	case e := <-got:
		if e.Alarm.Reason != types.ReasonLoop {
			t.Fatalf("filter leaked %v", e.Alarm)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("filtered stream delivered nothing")
	}
	select {
	case e := <-got:
		t.Fatalf("unexpected second delivery %v", e)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestAlarmStreamConcurrentIngest: several subscribers tail the stream
// while agents storm /alarm concurrently — the -race prover for the
// whole wire path (ingest POST → pipeline → SSE), with subscriber
// cleanup checked at the end.
func TestAlarmStreamConcurrentIngest(t *testing.T) {
	ctrl, srv := newAlarmServer(t, alarms.Config{History: 512})
	const (
		writers   = 4
		perWriter = 200
		readers   = 3
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var counts [readers]atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			StreamAlarms(ctx, nil, srv.URL, alarms.Filter{}, false, func(alarms.Entry) error {
				counts[i].Add(1)
				return nil
			})
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for ctrl.AlarmStats().Subscribers < readers {
		if time.Now().After(deadline) {
			t.Fatal("streams never subscribed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Remote agents: POST /alarm concurrently through the AlarmClient.
	var ingest sync.WaitGroup
	for w := 0; w < writers; w++ {
		ingest.Add(1)
		go func(w int) {
			defer ingest.Done()
			ac := &AlarmClient{URL: srv.URL}
			for i := 0; i < perWriter; i++ {
				ac.RaiseAlarm(testAlarm(w, uint16(i), types.ReasonPoorPerf))
			}
		}(w)
	}
	ingest.Wait()

	st := ctrl.AlarmStats()
	if st.Received != writers*perWriter {
		t.Fatalf("received %d alarms, want %d", st.Received, writers*perWriter)
	}
	// Each reader keeps up with an 800-alarm trickle (buffer 256 server
	// side); give in-flight events a moment to drain, then stop.
	drainDeadline := time.Now().Add(5 * time.Second)
	for {
		total := int64(0)
		for i := range counts {
			total += counts[i].Load()
		}
		if total >= int64(readers*writers*perWriter) || time.Now().After(drainDeadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	wg.Wait()
	if st := ctrl.AlarmStats(); st.StreamDropped > 0 {
		t.Logf("stream dropped %d entries under load (allowed)", st.StreamDropped)
	}
}
