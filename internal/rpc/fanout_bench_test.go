package rpc

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"pathdump/internal/obs"
	"pathdump/internal/query"
	"pathdump/internal/types"
)

// benchFleet boots ndaemons MultiAgentServer daemons, each serving
// perDaemon hosts whose stores hold nrec records — the e2e shape of a
// controller fan-out, over real loopback HTTP. A non-nil registry
// instruments every daemon (the shape of a production deployment).
func benchFleet(b *testing.B, ndaemons, perDaemon, nrec int, reg *obs.Registry) (map[types.HostID]string, []types.HostID) {
	b.Helper()
	urls := make(map[types.HostID]string)
	var hosts []types.HostID
	for d := 0; d < ndaemons; d++ {
		targets := make(map[types.HostID]Target)
		for i := 0; i < perDaemon; i++ {
			h := types.HostID(d*perDaemon + i)
			targets[h] = SnapshotTarget{Store: seedStore(int(h), nrec)}
			hosts = append(hosts, h)
		}
		ms := &MultiAgentServer{Targets: targets}
		if reg != nil {
			ms.Obs = &ServerObs{Registry: reg}
		}
		srv := httptest.NewServer(ms.Handler())
		b.Cleanup(srv.Close)
		for h := range targets {
			urls[h] = srv.URL
		}
	}
	return urls, hosts
}

// BenchmarkParallelFanout is the acceptance benchmark for the data
// plane: a 128-host fan-out (8 multi-agent daemons × 16 hosts) pulling
// 32 records per host over real loopback HTTP, at parallelism 1 versus
// 8. This is the successor of the simulated-transport bench of the same
// name (now BenchmarkParallelFanoutSim in internal/controller): it
// measures what that one modelled — request encode, content-negotiated
// response encode/decode, and connection reuse — so codec and transport
// regressions land here. The -json sub-bench keeps the fallback path
// honest and quantifies what the columnar encoding buys.
func BenchmarkParallelFanout(b *testing.B) {
	const (
		daemons   = 8
		perDaemon = 16
		records   = 32
	)
	urls, hosts := benchFleet(b, daemons, perDaemon, records, nil)
	q := query.Query{Op: query.OpRecords, Link: types.AnyLink, Range: types.AllTime}
	ctx := context.Background()

	run := func(tr *HTTPTransport, parallel int) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				replies, err := tr.QueryMany(ctx, hosts, q, parallel)
				if err != nil {
					b.Fatal(err)
				}
				if len(replies) != len(hosts) {
					b.Fatalf("%d replies for %d hosts", len(replies), len(hosts))
				}
			}
		}
	}
	for _, p := range []int{1, 8} {
		b.Run(fmt.Sprintf("parallelism-%d", p), run(&HTTPTransport{URLs: urls}, p))
	}
	b.Run("parallelism-8-json", run(&HTTPTransport{URLs: urls, JSONOnly: true}, 8))
}

// BenchmarkTracedFanout is BenchmarkParallelFanout with the
// observability plane switched on: every daemon instrumented with the
// rpc metrics middleware and every request carrying a trace ID. Its
// sub-bench names match ParallelFanout's on purpose — CI renames and
// diffs the two to enforce the instrumentation-overhead budget.
func BenchmarkTracedFanout(b *testing.B) {
	const (
		daemons   = 8
		perDaemon = 16
		records   = 32
	)
	urls, hosts := benchFleet(b, daemons, perDaemon, records, obs.NewRegistry())
	q := query.Query{Op: query.OpRecords, Link: types.AnyLink, Range: types.AllTime}
	ctx := obs.ContextWithTrace(context.Background(), obs.NewTraceID())

	run := func(tr *HTTPTransport, parallel int) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				replies, err := tr.QueryMany(ctx, hosts, q, parallel)
				if err != nil {
					b.Fatal(err)
				}
				if len(replies) != len(hosts) {
					b.Fatalf("%d replies for %d hosts", len(replies), len(hosts))
				}
			}
		}
	}
	for _, p := range []int{1, 8} {
		b.Run(fmt.Sprintf("parallelism-%d", p), run(&HTTPTransport{URLs: urls}, p))
	}
	b.Run("parallelism-8-json", run(&HTTPTransport{URLs: urls, JSONOnly: true}, 8))
}
