package rpc

import (
	"context"
	"net/http/httptest"
	"testing"

	"pathdump/internal/agent"
	"pathdump/internal/cherrypick"
	"pathdump/internal/controller"
	"pathdump/internal/netsim"
	"pathdump/internal/query"
	"pathdump/internal/tcp"
	"pathdump/internal/topology"
	"pathdump/internal/types"
)

// buildCluster wires a 4-ary fat-tree with agents, seeds traffic, and
// exposes every agent over an httptest server.
func buildCluster(t *testing.T) (*netsim.Sim, map[types.HostID]*agent.Agent, *HTTPTransport, func()) {
	t.Helper()
	topo, err := topology.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := cherrypick.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.New(topo, scheme, netsim.Config{Seed: 1})
	agents := make(map[types.HostID]*agent.Agent)
	stacks := make(map[types.HostID]*tcp.Stack)
	for _, h := range topo.Hosts() {
		st := tcp.NewStack(sim, h.ID, tcp.Config{})
		stacks[h.ID] = st
		agents[h.ID] = agent.New(sim, h, st, nil, agent.Config{})
	}
	hosts := topo.Hosts()
	for i := 0; i < 32; i++ {
		src := hosts[i%len(hosts)]
		dst := hosts[(i*5+3)%len(hosts)]
		if src.ID == dst.ID {
			continue
		}
		f := types.FlowID{SrcIP: src.IP, DstIP: dst.IP, SrcPort: uint16(3000 + i), DstPort: 80, Proto: types.ProtoTCP}
		stacks[src.ID].StartFlow(f, int64(2000*(1+i%10)), 0, nil)
	}
	sim.RunAll()

	urls := make(map[types.HostID]string)
	var servers []*httptest.Server
	for id, a := range agents {
		srv := httptest.NewServer((&AgentServer{T: a}).Handler())
		servers = append(servers, srv)
		urls[id] = srv.URL
	}
	tr := &HTTPTransport{URLs: urls}
	cleanup := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	return sim, agents, tr, cleanup
}

func TestHTTPQueryMatchesLocal(t *testing.T) {
	sim, agents, tr, cleanup := buildCluster(t)
	defer cleanup()
	ctrlHTTP := controller.New(sim.Topo, tr, nil)
	ctrlLocal := controller.New(sim.Topo, controller.Local{Agents: agents}, nil)

	var hosts []types.HostID
	for _, h := range sim.Topo.Hosts() {
		hosts = append(hosts, h.ID)
	}
	q := query.Query{Op: query.OpTopK, K: 5}
	viaHTTP, _, err := ctrlHTTP.Execute(hosts, q)
	if err != nil {
		t.Fatal(err)
	}
	viaLocal, _, err := ctrlLocal.Execute(hosts, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaHTTP.Top) != len(viaLocal.Top) {
		t.Fatalf("HTTP %d entries, local %d", len(viaHTTP.Top), len(viaLocal.Top))
	}
	for i := range viaHTTP.Top {
		if viaHTTP.Top[i] != viaLocal.Top[i] {
			t.Errorf("entry %d differs: %+v vs %+v", i, viaHTTP.Top[i], viaLocal.Top[i])
		}
	}
	if len(viaHTTP.Top) == 0 {
		t.Fatal("no flows over HTTP")
	}
}

func TestHTTPInstallUninstall(t *testing.T) {
	sim, agents, tr, cleanup := buildCluster(t)
	defer cleanup()
	_ = sim
	var anyHost types.HostID
	for id := range agents {
		anyHost = id
		break
	}
	id, err := tr.Install(context.Background(), anyHost, query.Query{Op: query.OpPoorTCP, Threshold: 3}, types.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(agents[anyHost].InstalledQueries()) != 1 {
		t.Fatal("install did not reach the agent")
	}
	if err := tr.Uninstall(context.Background(), anyHost, id); err != nil {
		t.Fatal(err)
	}
	if len(agents[anyHost].InstalledQueries()) != 0 {
		t.Fatal("uninstall did not reach the agent")
	}
	if err := tr.Uninstall(context.Background(), anyHost, 777); err == nil {
		t.Error("uninstalling unknown id should fail")
	}
	if _, err := tr.Install(context.Background(), types.HostID(4242), query.Query{}, 0); err == nil {
		t.Error("unknown host should fail")
	}
}

func TestAlarmRoundTrip(t *testing.T) {
	topo, _ := topology.FatTree(4)
	ctrl := controller.New(topo, controller.Local{}, nil)
	srv := httptest.NewServer((&ControllerServer{C: ctrl}).Handler())
	defer srv.Close()

	sink := &AlarmClient{URL: srv.URL}
	sink.RaiseAlarm(types.Alarm{Host: 3, Reason: types.ReasonPoorPerf, At: 42})
	alarms := ctrl.Alarms()
	if len(alarms) != 1 || alarms[0].Host != 3 || alarms[0].Reason != types.ReasonPoorPerf {
		t.Fatalf("alarms = %v", alarms)
	}
	// Failures are swallowed, not fatal.
	bad := &AlarmClient{URL: "http://127.0.0.1:1"}
	bad.RaiseAlarm(types.Alarm{Host: 9})
}

func TestHTTPErrors(t *testing.T) {
	_, _, tr, cleanup := buildCluster(t)
	defer cleanup()
	if _, _, err := tr.Query(context.Background(), types.HostID(4242), query.Query{Op: query.OpFlows}); err == nil {
		t.Error("query to unknown host should fail")
	}
	// GET on a POST endpoint.
	for id := range tr.URLs {
		resp, err := tr.client().Get(tr.URLs[id] + "/query")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 405 {
			t.Errorf("GET /query = %d, want 405", resp.StatusCode)
		}
		break
	}
}
