package rpc

import (
	"context"
	"net/http/httptest"
	"testing"

	"pathdump/internal/tib"
	"pathdump/internal/types"
)

// standbyRecord synthesises record i, one per millisecond of virtual time.
func standbyRecord(i int) types.Record {
	st := types.Time(i) * types.Millisecond
	return types.Record{
		Flow:  types.FlowID{SrcIP: types.IP(i % 100), DstIP: 2, SrcPort: uint16(i), DstPort: 80, Proto: 6},
		Path:  types.Path{0, types.SwitchID(8 + i%4), 16},
		STime: st, ETime: st + types.Millisecond,
		Bytes: uint64(i), Pkts: 1,
	}
}

func countStore(s *tib.Store) int {
	n := 0
	s.ForEach(types.AnyLink, types.AllTime, func(*types.Record) { n++ })
	return n
}

// TestStandbyReplicaSync: a standby assembled over the HTTP snapshot
// endpoint — one full pull, then delta pulls that ship only the new
// records — tracks the live store exactly, and falls back to a full
// pull when the daemon's retention has run past its watermark.
func TestStandbyReplicaSync(t *testing.T) {
	store := tib.NewStoreConfig(tib.Config{SegmentSpan: 20 * types.Millisecond})
	for i := 0; i < 2000; i++ {
		store.Add(standbyRecord(i))
	}
	srv := httptest.NewServer((&AgentServer{T: SnapshotTarget{Store: store}}).Handler())
	defer srv.Close()
	tr := &HTTPTransport{URLs: map[types.HostID]string{1: srv.URL}}

	ctx := context.Background()
	rep := NewStandbyReplica(tr, 1)
	if err := rep.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if got := countStore(rep.Store); got != 2000 {
		t.Fatalf("after first sync replica holds %d records, want 2000", got)
	}
	if st := rep.Stats(); st.FullPulls != 1 || st.Syncs != 1 {
		t.Fatalf("first sync stats = %+v, want one full pull", st)
	}

	// Steady state: new data arrives, the next sync ships only a delta.
	for i := 2000; i < 2500; i++ {
		store.Add(standbyRecord(i))
	}
	fullBytes := func() int64 {
		var c countWriter
		if err := store.Snapshot(&c); err != nil {
			t.Fatal(err)
		}
		return c.n
	}()
	if err := rep.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	st := rep.Stats()
	if st.FullPulls != 1 {
		t.Fatalf("delta sync resorted to a full pull: %+v", st)
	}
	if st.DeltaBytes == 0 || st.DeltaBytes >= fullBytes {
		t.Fatalf("delta shipped %d bytes vs %d full — not incremental", st.DeltaBytes, fullBytes)
	}
	if got := countStore(rep.Store); got != 2500 {
		t.Fatalf("after delta sync replica holds %d records, want 2500", got)
	}
	if st.LastSeq != store.LastSeq() {
		t.Fatalf("replica watermark %d, source %d", st.LastSeq, store.LastSeq())
	}

	// Outrun retention: evict the source far past the replica's
	// watermark; the daemon answers the delta request with a full
	// stream, and the replica still converges.
	for i := 2500; i < 3000; i++ {
		store.Add(standbyRecord(i))
	}
	if segs, _ := store.EvictBefore(2800 * types.Millisecond); segs == 0 {
		t.Fatal("eviction freed nothing")
	}
	if err := rep.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if got, want := countStore(rep.Store), countStore(store); got != want {
		t.Fatalf("after retention-outrun sync replica holds %d records, want %d", got, want)
	}
}

type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}
