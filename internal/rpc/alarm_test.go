package rpc

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"pathdump/internal/controller"
	"pathdump/internal/topology"
	"pathdump/internal/types"
)

// TestAlarmClientBoundedAgainstWedgedController: an alarm POST to a
// controller that never answers must return within the client's timeout
// and leave no goroutine parked on the connection — the leak a
// contextless POST would produce.
func TestAlarmClientBoundedAgainstWedgedController(t *testing.T) {
	before := runtime.NumGoroutine()

	release := make(chan struct{})
	wedged := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Consume the body so the server can notice the client hanging
		// up; then wedge until the client gives up (or test teardown).
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-release:
		}
	}))

	transport := &http.Transport{}
	ac := &AlarmClient{
		URL:     wedged.URL,
		Client:  &http.Client{Transport: transport},
		Timeout: 50 * time.Millisecond,
	}
	start := time.Now()
	ac.RaiseAlarm(types.Alarm{Flow: types.FlowID{SrcIP: 1, DstIP: 2}, Reason: types.ReasonPoorPerf})
	elapsed := time.Since(start)
	if elapsed > time.Second {
		t.Fatalf("RaiseAlarm took %v against a wedged controller, want ~the 50ms timeout", elapsed)
	}

	close(release)
	wedged.Close()
	transport.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("alarm goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAlarmClientContext: a cancelled caller context aborts the POST
// immediately, and a live one delivers the alarm end to end through
// ControllerServer into the controller's log and handlers.
func TestAlarmClientContext(t *testing.T) {
	topo, _ := topology.FatTree(4)
	ctrl := controller.New(topo, controller.Local{}, nil)
	var handled atomic.Int64
	ctrl.OnAlarm(func(types.Alarm) { handled.Add(1) })
	srv := httptest.NewServer((&ControllerServer{C: ctrl}).Handler())
	defer srv.Close()
	ac := &AlarmClient{URL: srv.URL}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	ac.RaiseAlarmContext(cancelled, types.Alarm{Reason: types.ReasonPoorPerf})
	if got := handled.Load(); got != 0 {
		t.Fatalf("cancelled-context alarm was delivered (%d handlers ran)", got)
	}

	ac.RaiseAlarmContext(context.Background(), types.Alarm{Reason: types.ReasonPoorPerf})
	if got := handled.Load(); got != 1 {
		t.Fatalf("handlers ran %d times, want 1", got)
	}
	if got := len(ctrl.Alarms()); got != 1 {
		t.Fatalf("alarm log has %d entries, want 1", got)
	}
}

// TestControllerAlarmContextStopsDispatch: a controller whose alarm
// context is cancelled (daemon shutting down) drops alarms instead of
// dispatching them.
func TestControllerAlarmContextStopsDispatch(t *testing.T) {
	topo, _ := topology.FatTree(4)
	ctrl := controller.New(topo, controller.Local{}, nil)
	var handled atomic.Int64
	ctrl.OnAlarm(func(types.Alarm) { handled.Add(1) })

	ctx, cancel := context.WithCancel(context.Background())
	ctrl.SetAlarmContext(ctx)
	ctrl.RaiseAlarm(types.Alarm{Reason: types.ReasonPoorPerf})
	if handled.Load() != 1 {
		t.Fatal("live alarm context must dispatch")
	}
	cancel()
	ctrl.RaiseAlarm(types.Alarm{Reason: types.ReasonPoorPerf})
	if got := handled.Load(); got != 1 {
		t.Fatalf("cancelled alarm context still dispatched (%d)", got)
	}
	ctrl.SetAlarmContext(nil)
	ctrl.RaiseAlarm(types.Alarm{Reason: types.ReasonPoorPerf})
	if got := handled.Load(); got != 2 {
		t.Fatalf("reset alarm context did not restore dispatch (%d)", got)
	}
}
