package rpc

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pathdump/internal/obs"
	"pathdump/internal/query"
	"pathdump/internal/types"
)

// get fetches a URL and returns status and body.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestHealthzDefault: every server answers /healthz even with no
// observability wired — readiness probing must not depend on it.
func TestHealthzDefault(t *testing.T) {
	agentSrv := httptest.NewServer((&AgentServer{T: SnapshotTarget{Store: seedStore(1, 10)}}).Handler())
	defer agentSrv.Close()
	code, body := get(t, agentSrv.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("agent /healthz = %d %q", code, body)
	}
	var h HealthStatus
	if err := json.Unmarshal([]byte(body), &h); err != nil || h.Hosts != 1 || h.Records != 10 {
		t.Fatalf("agent /healthz body %q (err %v)", body, err)
	}

	multiSrv := httptest.NewServer((&MultiAgentServer{Targets: map[types.HostID]Target{
		1: SnapshotTarget{Store: seedStore(1, 10)},
		2: SnapshotTarget{Store: seedStore(2, 5)},
	}}).Handler())
	defer multiSrv.Close()
	code, body = get(t, multiSrv.URL+"/healthz")
	if err := json.Unmarshal([]byte(body), &h); err != nil || code != http.StatusOK || h.Hosts != 2 || h.Records != 15 {
		t.Fatalf("multi /healthz = %d %q (err %v)", code, body, err)
	}
}

// TestHealthzOverride: a non-ok Health callback turns /healthz into a
// 503 so load balancers and wait_ready loops hold traffic.
func TestHealthzOverride(t *testing.T) {
	srv := httptest.NewServer((&AgentServer{
		T:   SnapshotTarget{Store: seedStore(1, 10)},
		Obs: &ServerObs{Health: func() HealthStatus { return HealthStatus{Status: "loading", Snapshot: "restoring"} }},
	}).Handler())
	defer srv.Close()
	code, body := get(t, srv.URL+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "loading") {
		t.Fatalf("/healthz = %d %q, want 503 loading", code, body)
	}
}

// TestRPCMetricsMiddleware: the wrap middleware counts requests by
// encoding, observes latency and response bytes, and classifies errors
// — including body-cap 413s — all visible on a /metrics scrape.
func TestRPCMetricsMiddleware(t *testing.T) {
	reg := obs.NewRegistry()
	srv := httptest.NewServer((&AgentServer{
		T:            SnapshotTarget{Store: seedStore(1, 50)},
		MaxBodyBytes: 256,
		Obs:          &ServerObs{Registry: reg},
	}).Handler())
	defer srv.Close()

	// One JSON query (no Accept: wire offer).
	body, _ := json.Marshal(QueryRequest{Query: query.Query{Op: query.OpTopK, K: 3}})
	resp, err := http.Post(srv.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/query = %d", resp.StatusCode)
	}

	// One body-cap rejection: valid JSON that reads past the cap (an
	// invalid body would 400 at the first byte instead).
	huge := []byte(`{"pad":"` + strings.Repeat("A", 4096) + `"}`)
	resp, err = http.Post(srv.URL+"/query", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized /query = %d, want 413", resp.StatusCode)
	}

	_, scrape := get(t, srv.URL+"/metrics")
	for _, want := range []string{
		`pathdump_rpc_requests_total{op="query",enc="json"} 2`,
		`pathdump_rpc_request_seconds_count{op="query"} 2`,
		`pathdump_rpc_response_bytes_count{op="query"} 2`,
		`pathdump_rpc_errors_total{op="query",class="4xx"} 1`,
		`pathdump_rpc_body_cap_rejections_total{op="query"} 1`,
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %q:\n%s", want, scrape)
		}
	}
}

// TestSlowLogEndpoint: a wired slow-query log is served at /slowlog,
// newest first.
func TestSlowLogEndpoint(t *testing.T) {
	sl := obs.NewSlowLog(4)
	sl.Add(obs.SlowQuery{Trace: "abc", Query: "topk", Dur: time.Second, At: time.Unix(1, 0)})
	srv := httptest.NewServer((&AgentServer{
		T:   SnapshotTarget{Store: seedStore(1, 10)},
		Obs: &ServerObs{SlowLog: sl},
	}).Handler())
	defer srv.Close()
	code, body := get(t, srv.URL+"/slowlog")
	if code != http.StatusOK || !strings.Contains(body, `"trace":"abc"`) {
		t.Fatalf("/slowlog = %d %q", code, body)
	}
}

// TestPprofOptIn: /debug/pprof/ is absent by default and mounted when
// opted in.
func TestPprofOptIn(t *testing.T) {
	off := httptest.NewServer((&AgentServer{T: SnapshotTarget{Store: seedStore(1, 10)}}).Handler())
	defer off.Close()
	if code, _ := get(t, off.URL+"/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("pprof without opt-in = %d, want 404", code)
	}
	on := httptest.NewServer((&AgentServer{
		T:   SnapshotTarget{Store: seedStore(1, 10)},
		Obs: &ServerObs{EnablePprof: true},
	}).Handler())
	defer on.Close()
	if code, body := get(t, on.URL+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "profile") {
		t.Fatalf("pprof with opt-in = %d", code)
	}
}

// TestTraceSpanRoundTrip: a traced context stamps the TraceHeader on
// the request, and the agent's scan span rides back — in the body for
// JSON replies, in the SpanHeader for buffered wire replies — landing
// in QueryMeta.Span either way. Untraced requests carry no span.
func TestTraceSpanRoundTrip(t *testing.T) {
	srv := httptest.NewServer((&AgentServer{T: SnapshotTarget{Store: seedStore(1, 50)}}).Handler())
	defer srv.Close()
	urls := map[types.HostID]string{7: srv.URL}
	q := query.Query{Op: query.OpTopK, K: 3}

	for _, tc := range []struct {
		name string
		tr   *HTTPTransport
	}{
		{"wire", &HTTPTransport{URLs: urls}},
		{"json", &HTTPTransport{URLs: urls, JSONOnly: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tid := obs.NewTraceID()
			ctx := obs.ContextWithTrace(context.Background(), tid)
			_, meta, err := tc.tr.Query(ctx, 7, q)
			if err != nil {
				t.Fatal(err)
			}
			sp := meta.Span
			if sp == nil {
				t.Fatal("traced query returned no span")
			}
			if sp.Name != "scan" || sp.Attr("trace") != tid {
				t.Fatalf("span %s trace=%s, want scan/%s", sp.Name, sp.Attr("trace"), tid)
			}
			if sp.Attr("records") == "" || sp.Attr("segments_scanned") == "" {
				t.Fatalf("span missing scan telemetry: %s", sp.Render())
			}

			_, meta, err = tc.tr.Query(context.Background(), 7, q)
			if err != nil {
				t.Fatal(err)
			}
			if meta.Span != nil {
				t.Fatalf("untraced query carried a span: %s", meta.Span.Render())
			}
		})
	}
}
