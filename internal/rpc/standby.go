// Controller-side standby assembly over incremental snapshots.
//
// A StandbyReplica keeps a warm copy of one host's TIB: the first Sync
// pulls a full snapshot, every later Sync pulls only the delta past the
// replica's own high-water sequence and reconciles it in place. When a
// delta cannot be applied — the daemon evicted past the watermark and
// fell back to a full stream (handled transparently), or the replica
// diverged from the source lineage (tib.ErrIncompatibleDelta) — Sync
// falls back to one full pull, so a standby converges from any state.
package rpc

import (
	"bytes"
	"context"
	"errors"
	"io"

	"pathdump/internal/tib"
	"pathdump/internal/types"
)

// SnapshotPuller is the transport surface StandbyReplica needs;
// *HTTPTransport provides it.
type SnapshotPuller interface {
	PullSnapshot(ctx context.Context, host types.HostID, w io.Writer) (int64, error)
	PullSnapshotSince(ctx context.Context, host types.HostID, since uint64, w io.Writer) (int64, error)
}

// StandbyReplica assembles and maintains a warm copy of one host's TIB.
// Not safe for concurrent Sync calls; reads of Store are safe anytime
// (tib applies snapshots and deltas atomically under its shard locks).
type StandbyReplica struct {
	Host  types.HostID
	Store *tib.Store
	tr    SnapshotPuller

	// syncs/fullPulls/deltaBytes tell operators how the replica has been
	// fed: deltaBytes growing while fullPulls stays flat is the steady
	// state; climbing fullPulls means the sync period is outrunning the
	// daemon's retention.
	syncs, fullPulls int
	deltaBytes       int64
}

// NewStandbyReplica builds an empty replica of host, fed via tr.
func NewStandbyReplica(tr SnapshotPuller, host types.HostID) *StandbyReplica {
	return &StandbyReplica{Host: host, Store: tib.NewStore(), tr: tr}
}

// Sync brings the replica up to date with the live daemon. The first
// call (empty replica) pulls a full snapshot; later calls pull the
// delta past the replica's high-water sequence. An unreconcilable delta
// falls back to one full pull inside the same call.
func (s *StandbyReplica) Sync(ctx context.Context) error {
	s.syncs++
	since := s.Store.LastSeq()
	if since == 0 {
		return s.fullSync(ctx)
	}
	var buf bytes.Buffer
	n, err := s.tr.PullSnapshotSince(ctx, s.Host, since, &buf)
	if err != nil {
		return err
	}
	if err := s.Store.ApplyIncremental(bytes.NewReader(buf.Bytes())); err != nil {
		if errors.Is(err, tib.ErrIncompatibleDelta) {
			return s.fullSync(ctx)
		}
		return err
	}
	s.deltaBytes += n
	return nil
}

// fullSync replaces the replica's store from one full snapshot pull.
func (s *StandbyReplica) fullSync(ctx context.Context) error {
	s.fullPulls++
	var buf bytes.Buffer
	if _, err := s.tr.PullSnapshot(ctx, s.Host, &buf); err != nil {
		return err
	}
	return s.Store.LoadSnapshot(&buf)
}

// StandbyStats is a replica's feeding telemetry.
type StandbyStats struct {
	// Syncs counts Sync calls; FullPulls how many resorted to a full
	// snapshot (the first always does).
	Syncs, FullPulls int
	// DeltaBytes totals the incremental stream bytes applied.
	DeltaBytes int64
	// LastSeq is the replica's high-water arrival sequence — the
	// watermark its next Sync will pull from.
	LastSeq uint64
}

// Stats reports the replica's feeding telemetry.
func (s *StandbyReplica) Stats() StandbyStats {
	return StandbyStats{Syncs: s.syncs, FullPulls: s.fullPulls, DeltaBytes: s.deltaBytes, LastSeq: s.Store.LastSeq()}
}
