package rpc

import (
	"context"
	"net/http/httptest"
	"testing"

	"pathdump/internal/controller"
	"pathdump/internal/query"
	"pathdump/internal/types"
)

// TestBatchedQueryMatchesPerHost serves all agents from two
// MultiAgentServer daemons (splitting the fleet in half) — the deployment
// shape the batched query path exists for — and requires byte-identical
// results versus per-host single-agent daemons.
func TestBatchedQueryMatchesPerHost(t *testing.T) {
	sim, agents, perHost, cleanup := buildCluster(t)
	defer cleanup()

	// Split the fleet across two multi-agent daemons.
	half := len(agents) / 2
	targetsA := make(map[types.HostID]Target)
	targetsB := make(map[types.HostID]Target)
	var hosts []types.HostID
	for _, h := range sim.Topo.Hosts() {
		hosts = append(hosts, h.ID)
		if len(targetsA) < half {
			targetsA[h.ID] = agents[h.ID]
		} else {
			targetsB[h.ID] = agents[h.ID]
		}
	}
	srvA := httptest.NewServer((&MultiAgentServer{Targets: targetsA, Parallelism: 4}).Handler())
	srvB := httptest.NewServer((&MultiAgentServer{Targets: targetsB}).Handler())
	defer srvA.Close()
	defer srvB.Close()
	urls := make(map[types.HostID]string)
	for h := range targetsA {
		urls[h] = srvA.URL
	}
	for h := range targetsB {
		urls[h] = srvB.URL
	}
	batched := &HTTPTransport{URLs: urls}

	q := query.Query{Op: query.OpTopK, K: 5}
	ctrlBatched := controller.New(sim.Topo, batched, nil)
	ctrlBatched.Parallelism = 4
	ctrlPerHost := controller.New(sim.Topo, perHost, nil)

	viaBatch, _, err := ctrlBatched.Execute(hosts, q)
	if err != nil {
		t.Fatal(err)
	}
	viaPerHost, _, err := ctrlPerHost.Execute(hosts, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaBatch.Top) == 0 || len(viaBatch.Top) != len(viaPerHost.Top) {
		t.Fatalf("batched %d entries, per-host %d", len(viaBatch.Top), len(viaPerHost.Top))
	}
	for i := range viaBatch.Top {
		if viaBatch.Top[i] != viaPerHost.Top[i] {
			t.Errorf("entry %d differs: %+v vs %+v", i, viaBatch.Top[i], viaPerHost.Top[i])
		}
	}

	// Per-host endpoints on the multi-agent daemon work too (host field
	// routing), including install/uninstall.
	id, err := batched.Install(context.Background(), hosts[0], query.Query{Op: query.OpPoorTCP, Threshold: 3}, types.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := batched.Uninstall(context.Background(), hosts[0], id); err != nil {
		t.Fatal(err)
	}
	if _, err := batched.Install(context.Background(), types.HostID(4242), query.Query{}, 0); err == nil {
		t.Error("multi-agent daemon accepted an unknown host")
	}
}

// TestQueryManyRejectsSharedSingleAgentURL: pointing several hosts at one
// single-agent daemon (no /batchquery endpoint) is a misconfiguration —
// the daemon cannot tell hosts apart, so answering per-host would return
// one agent's records under many host labels. QueryMany must error every
// affected slot instead, while lone hosts keep working per-host.
func TestQueryManyRejectsSharedSingleAgentURL(t *testing.T) {
	sim, _, tr, cleanup := buildCluster(t)
	defer cleanup()
	var hosts []types.HostID
	for _, h := range sim.Topo.Hosts() {
		hosts = append(hosts, h.ID)
	}
	// Lone hosts on their own single-agent daemons: per-host path, no
	// batch endpoint needed.
	replies, err := tr.QueryMany(context.Background(), hosts[:2], query.Query{Op: query.OpFlows, Link: types.AnyLink}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range replies {
		if rep.Err != nil {
			t.Errorf("distinct-URL reply %d: %v", i, rep.Err)
		}
		if rep.Host != hosts[i] {
			t.Errorf("reply %d host = %v, want %v", i, rep.Host, hosts[i])
		}
	}

	// Now misconfigure: two hosts share one single-agent daemon URL.
	orig := tr.URLs[hosts[1]]
	tr.URLs[hosts[1]] = tr.URLs[hosts[0]]
	defer func() { tr.URLs[hosts[1]] = orig }()
	replies, err = tr.QueryMany(context.Background(), hosts[:2], query.Query{Op: query.OpFlows, Link: types.AnyLink}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range replies {
		if rep.Err == nil {
			t.Errorf("reply %d: shared single-agent URL did not error", i)
		}
	}

	// Unknown host in the batch yields a per-slot error, not a hang.
	replies, err = tr.QueryMany(context.Background(), []types.HostID{hosts[0], 4242}, query.Query{Op: query.OpFlows}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if replies[0].Err != nil {
		t.Errorf("known host errored: %v", replies[0].Err)
	}
	if replies[1].Err == nil {
		t.Error("unknown host did not error")
	}

	// All hosts unknown with a positive bound: per-slot errors, no
	// divide-by-zero on the empty group set.
	replies, err = tr.QueryMany(context.Background(), []types.HostID{4242, 4243}, query.Query{Op: query.OpFlows}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range replies {
		if rep.Err == nil {
			t.Errorf("unknown host %d did not error", i)
		}
	}
}
