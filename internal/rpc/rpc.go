// Package rpc is the HTTP/JSON transport between the PathDump controller
// and host agents — the stand-in for the paper's Flask RESTful service
// (§3). An AgentServer exposes one agent's query/install/uninstall
// endpoints; HTTPTransport implements controller.Transport against a set
// of agent base URLs; ControllerServer accepts agent alarms.
//
// Endpoints (all JSON over POST unless noted):
//
//	agent:      /query      {query}          → {result, records_scanned, segments_*}
//	            /install    {query, period}  → {id}
//	            /uninstall  {id}             → {}
//	            /stats      (GET)            → {records, packets, invalid}
//	            /snapshot   (GET, ?host=N)   → segment-wise TIB snapshot stream
//	controller: /alarm      {alarm}          → {}
package rpc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pathdump/internal/controller"
	"pathdump/internal/obs"
	"pathdump/internal/query"
	"pathdump/internal/tib"
	"pathdump/internal/types"
	"pathdump/internal/wire"
)

// Target is the agent-side surface the server exposes; *agent.Agent
// satisfies it.
type Target interface {
	Execute(q query.Query) query.Result
	Install(q query.Query, period types.Time) int
	Uninstall(id int) error
	TIBSize() int
}

// TargetE is an optional Target extension for backends that cannot serve
// every op (a snapshot-backed store has no TCP monitor): ExecuteE
// distinguishes "unsupported here" from "no matching data", and servers
// answer 501 Not Implemented instead of a silently empty result.
type TargetE interface {
	ExecuteE(q query.Query) (query.Result, error)
}

// ContextTarget is an optional Target extension for backends whose query
// evaluation can abort mid-scan (*agent.Agent polls cancellation between
// merged TIB shard records). Servers prefer it, passing the request
// context, so a disconnected client or expired deadline releases the
// host promptly instead of finishing a pointless scan.
type ContextTarget interface {
	ExecuteContext(ctx context.Context, q query.Query) (query.Result, error)
}

// InstallerE is an optional Target extension for backends without an
// installed-query engine: servers answer 501 instead of fabricating an
// installation ID.
type InstallerE interface {
	InstallE(q query.Query, period types.Time) (int, error)
}

// Snapshotter is an optional Target extension for backends that can
// stream their TIB in the segment-wise snapshot format; servers expose it
// as GET /snapshot, and pathdumpctl -pull-snapshot captures it from a
// live daemon for offline analysis.
type Snapshotter interface {
	WriteSnapshot(w io.Writer) error
}

// IncrementalSnapshotter is an optional Target extension for backends
// that can serve delta snapshots: only the records with arrival
// sequence greater than since, in the Version-3 framing (or a full
// snapshot when the watermark cannot be served — the receiver detects
// which from the stream header). Servers expose it as GET
// /snapshot?since_seq=N; a standby catches up by applying the stream
// with tib.ApplyIncremental.
type IncrementalSnapshotter interface {
	WriteSnapshotSince(w io.Writer, since uint64) error
}

// SegmentStatser is an optional Target extension reporting the backing
// store's cumulative segment telemetry (partitions scanned versus pruned
// by time bounds); servers attribute per-query deltas onto the wire for
// the controller's ExecStats and cost model.
type SegmentStatser interface {
	SegmentStats() (scanned, pruned uint64)
}

// executeMeta runs a query like execute and additionally attributes the
// target's segment telemetry to it by delta. Queries racing on one
// target may swap shares — the counts feed modelled stats, not
// correctness.
func executeMeta(ctx context.Context, t Target, q query.Query) (res query.Result, segScanned, segPruned int, err error) {
	ss, ok := t.(SegmentStatser)
	var sc0, sp0 uint64
	if ok {
		sc0, sp0 = ss.SegmentStats()
	}
	res, err = execute(ctx, t, q)
	if err == nil && ok {
		sc1, sp1 := ss.SegmentStats()
		segScanned, segPruned = int(sc1-sc0), int(sp1-sp0)
	}
	return res, segScanned, segPruned, err
}

// execute runs a query on a target under the request context, using the
// most capable path the target provides.
func execute(ctx context.Context, t Target, q query.Query) (query.Result, error) {
	if err := ctx.Err(); err != nil {
		return query.Result{}, err
	}
	if tc, ok := t.(ContextTarget); ok {
		return tc.ExecuteContext(ctx, q)
	}
	if te, ok := t.(TargetE); ok {
		return te.ExecuteE(q)
	}
	return t.Execute(q), nil
}

// writeExecuteError maps a query-execution failure onto the right HTTP
// answer: a cancelled request writes nothing (the client hung up), an
// expired per-request deadline is 504, and everything else — notably
// query.ErrUnsupported — stays 501 Not Implemented.
func writeExecuteError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		// Client gone; any body would be discarded.
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
	default:
		http.Error(w, err.Error(), http.StatusNotImplemented)
	}
}

// install registers a query on a target, using the explicit-error path
// when the target provides one.
func install(t Target, q query.Query, period types.Time) (int, error) {
	if te, ok := t.(InstallerE); ok {
		return te.InstallE(q, period)
	}
	return t.Install(q, period), nil
}

// SnapshotTarget serves a bare TIB — a store loaded from a snapshot with
// no live agent behind it. Ops needing the agent's runtime (the active
// TCP monitor behind getPoorTCPFlows) report query.ErrUnsupported, and
// there is no installed-query engine.
type SnapshotTarget struct{ Store *tib.Store }

func (t SnapshotTarget) view() query.StoreView { return query.StoreView{S: t.Store} }

// Execute implements Target (unsupported ops yield empty results; the
// servers prefer ExecuteE).
func (t SnapshotTarget) Execute(q query.Query) query.Result { return query.Execute(q, t.view()) }

// ExecuteE implements TargetE.
func (t SnapshotTarget) ExecuteE(q query.Query) (query.Result, error) {
	return query.ExecuteE(q, t.view())
}

// ExecuteContext implements ContextTarget: snapshot scans poll the
// request context and abort once the caller is gone.
func (t SnapshotTarget) ExecuteContext(ctx context.Context, q query.Query) (query.Result, error) {
	return query.ExecuteContext(ctx, q, t.view())
}

// Install implements Target; snapshots accept no installed queries, so
// the returned ID is never valid for Uninstall. Servers use InstallE and
// answer 501 instead.
func (t SnapshotTarget) Install(query.Query, types.Time) int { return -1 }

// InstallE implements InstallerE.
func (t SnapshotTarget) InstallE(query.Query, types.Time) (int, error) {
	return 0, errors.New("rpc: snapshot target has no installed-query engine")
}

// Uninstall implements Target.
func (t SnapshotTarget) Uninstall(int) error {
	return errors.New("rpc: snapshot target has no installed-query engine")
}

// TIBSize implements Target.
func (t SnapshotTarget) TIBSize() int { return t.Store.Len() }

// SegmentStats implements SegmentStatser.
func (t SnapshotTarget) SegmentStats() (scanned, pruned uint64) { return t.Store.SegmentStats() }

// ColdStats implements ColdStatser: traced scans attribute the cold-tier
// demand loads they trigger.
func (t SnapshotTarget) ColdStats() tib.ColdStats { return t.Store.ColdStats() }

// WriteSnapshot implements Snapshotter: a restored store can be
// re-snapshotted and served onward.
func (t SnapshotTarget) WriteSnapshot(w io.Writer) error { return t.Store.Snapshot(w) }

// WriteSnapshotSince implements IncrementalSnapshotter: a restored
// store can serve deltas onward (snapshot relays, warm standbys).
func (t SnapshotTarget) WriteSnapshotSince(w io.Writer, since uint64) error {
	return t.Store.SnapshotSince(w, since)
}

// QueryRequest is the /query body. Host is required by multi-host
// daemons (MultiAgentServer) to pick the agent; single-agent servers
// ignore it.
type QueryRequest struct {
	Host  *types.HostID `json:"host,omitempty"`
	Query query.Query   `json:"query"`
}

// QueryResponse is the /query reply. SegmentsScanned/SegmentsPruned
// carry the host store's partition telemetry for this query (§5.2
// pruned-fraction cost term).
type QueryResponse struct {
	Result          query.Result `json:"result"`
	RecordsScanned  int          `json:"records_scanned"`
	SegmentsScanned int          `json:"segments_scanned,omitempty"`
	SegmentsPruned  int          `json:"segments_pruned,omitempty"`
	// Span is the agent-side scan span for traced requests (the
	// request carried a TraceHeader). Wire-encoded replies move it in
	// the SpanHeader response header instead of the body.
	Span *obs.Span `json:"span,omitempty"`
}

// InstallRequest is the /install body; Period is virtual nanoseconds.
type InstallRequest struct {
	Host   *types.HostID `json:"host,omitempty"`
	Query  query.Query   `json:"query"`
	Period types.Time    `json:"period"`
}

// InstallResponse is the /install reply.
type InstallResponse struct {
	ID int `json:"id"`
}

// UninstallRequest is the /uninstall body.
type UninstallRequest struct {
	Host *types.HostID `json:"host,omitempty"`
	ID   int           `json:"id"`
}

// BatchQueryRequest is the /batchquery body: one query fanned out to
// several co-located hosts in a single round trip. Parallel carries the
// caller's concurrency bound so the daemon's server-side fan-out honours
// the controller's Parallelism knob (<= 0 defers to the daemon's own
// limit).
type BatchQueryRequest struct {
	Hosts    []types.HostID `json:"hosts"`
	Query    query.Query    `json:"query"`
	Parallel int            `json:"parallel,omitempty"`
}

// BatchQueryReply is one host's slot in a /batchquery response.
type BatchQueryReply struct {
	Host            types.HostID `json:"host"`
	Result          query.Result `json:"result"`
	RecordsScanned  int          `json:"records_scanned"`
	SegmentsScanned int          `json:"segments_scanned,omitempty"`
	SegmentsPruned  int          `json:"segments_pruned,omitempty"`
	Error           string       `json:"error,omitempty"`
}

// BatchQueryResponse is the /batchquery reply, aligned with request hosts.
type BatchQueryResponse struct {
	Replies []BatchQueryReply `json:"replies"`
}

// AlarmRequest is the controller's /alarm body.
type AlarmRequest struct {
	Alarm types.Alarm `json:"alarm"`
}

// AgentServer serves one agent's host API. Install/uninstall handlers
// are serialised: agent installs register timers on the agent's
// simulator, whose event heap is not safe for concurrent mutation.
type AgentServer struct {
	T Target

	// MaxBodyBytes caps request bodies (<= 0 = DefaultMaxBody).
	MaxBodyBytes int64
	// DisableWire forces JSON responses even for clients that offer the
	// binary wire encoding, and rejects wire-encoded request bodies with
	// 415 so clients fall back to JSON (mixed-version testing).
	DisableWire bool
	// WireCompress flate-compresses wire-encoded responses.
	WireCompress bool
	// Obs mounts the server's observability surface — /metrics,
	// /healthz override, optional pprof — and instruments every
	// endpoint (nil = uninstrumented; /healthz is served regardless).
	Obs *ServerObs

	instMu sync.Mutex
}

// Handler returns the agent's HTTP mux.
func (s *AgentServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.Obs.wrap("query", func(w http.ResponseWriter, r *http.Request) {
		var req QueryRequest
		if !decode(w, r, &req, s.MaxBodyBytes, s.DisableWire) {
			return
		}
		if streamQueryResponse(w, r, s.T, req.Query, s.DisableWire, s.WireCompress) {
			return
		}
		span, cold0 := traceScan(r, s.T)
		res, sc, sp, err := executeMeta(r.Context(), s.T, req.Query)
		if err != nil {
			writeExecuteError(w, err)
			return
		}
		finishScan(span, s.T, sc, sp, cold0)
		writeQueryResponse(w, r, s.DisableWire, s.WireCompress,
			QueryResponse{Result: res, RecordsScanned: s.T.TIBSize(), SegmentsScanned: sc, SegmentsPruned: sp, Span: span})
		query.PutRecordBuf(res.Records)
	}))
	mux.HandleFunc("/snapshot", s.Obs.wrap("snapshot", snapshotHandler(func(*http.Request) (Target, error) { return s.T, nil })))
	mux.HandleFunc("/install", s.Obs.wrap("install", func(w http.ResponseWriter, r *http.Request) {
		var req InstallRequest
		if !decode(w, r, &req, s.MaxBodyBytes, s.DisableWire) {
			return
		}
		s.instMu.Lock()
		id, err := install(s.T, req.Query, req.Period)
		s.instMu.Unlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotImplemented)
			return
		}
		encode(w, InstallResponse{ID: id})
	}))
	mux.HandleFunc("/uninstall", s.Obs.wrap("uninstall", func(w http.ResponseWriter, r *http.Request) {
		var req UninstallRequest
		if !decode(w, r, &req, s.MaxBodyBytes, s.DisableWire) {
			return
		}
		s.instMu.Lock()
		err := s.T.Uninstall(req.ID)
		s.instMu.Unlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		encode(w, struct{}{})
	}))
	mux.HandleFunc("/stats", s.Obs.wrap("stats", func(w http.ResponseWriter, r *http.Request) {
		encode(w, map[string]int{"records": s.T.TIBSize()})
	}))
	mountObs(mux, s.Obs, func() HealthStatus {
		return HealthStatus{Status: "ok", Hosts: 1, Records: s.T.TIBSize()}
	})
	return mux
}

// ControllerServer accepts alarms from remote agents.
type ControllerServer struct {
	C *controller.Controller

	// MaxBodyBytes caps request bodies (<= 0 = DefaultMaxBody).
	MaxBodyBytes int64
	// Obs mounts the server's observability surface — /metrics,
	// /healthz override, optional pprof, /slowlog — and instruments
	// every endpoint (nil = uninstrumented; /healthz is served
	// regardless).
	Obs *ServerObs
}

// Handler returns the controller's HTTP mux. Alarm dispatch runs under
// the request context: an agent that hung up (or whose POST deadline
// expired) stops the handler chain instead of dispatching into the void.
// Beyond alarm ingest (/alarm), the mux serves the continuous-monitoring
// read side: the filterable bounded history (GET /alarms) and the live
// SSE feed (GET /alarms/stream) — see alarms.go.
func (s *ControllerServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/alarm", s.Obs.wrap("alarm", func(w http.ResponseWriter, r *http.Request) {
		var req AlarmRequest
		if !decode(w, r, &req, s.MaxBodyBytes, false) {
			return
		}
		s.C.RaiseAlarmContext(r.Context(), req.Alarm)
		encode(w, struct{}{})
	}))
	mux.HandleFunc("/alarms", s.Obs.wrap("alarms", s.handleAlarms))
	mux.HandleFunc("/alarms/stream", s.Obs.wrap("alarms_stream", s.handleAlarmStream))
	mountObs(mux, s.Obs, func() HealthStatus {
		return HealthStatus{Status: "ok"}
	})
	return mux
}

// DefaultAlarmTimeout bounds each alarm POST when RaiseAlarm is called
// without a caller context: alarms are advisory and the monitor fires
// again, so a wedged controller must cost the agent a few seconds of one
// goroutine, never a goroutine forever.
const DefaultAlarmTimeout = 5 * time.Second

// AlarmClient forwards agent alarms to a controller URL; it implements
// agent.AlarmSink.
type AlarmClient struct {
	URL    string
	Client *http.Client
	// Timeout bounds each contextless RaiseAlarm POST
	// (default DefaultAlarmTimeout).
	Timeout time.Duration

	// dropped counts alarms that never reached the controller (marshal
	// failure, transport failure, or a non-2xx answer). Alarms stay
	// fire-and-forget — the monitor fires again — but the losses used to
	// be invisible, which made a misconfigured controller URL look like a
	// healthy, quiet network.
	dropped atomic.Uint64
}

// Dropped reports how many alarms this client failed to deliver.
func (c *AlarmClient) Dropped() uint64 { return c.dropped.Load() }

// RaiseAlarm posts the alarm under the client's own bounded context;
// delivery failures are counted in Dropped (alarms are advisory, the
// monitor will fire again).
func (c *AlarmClient) RaiseAlarm(a types.Alarm) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = DefaultAlarmTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	c.RaiseAlarmContext(ctx, a)
}

// RaiseAlarmContext posts the alarm under the caller's context — a
// daemon passes its lifetime context so shutdown (or the context's
// deadline) aborts the dial, the in-flight request and the response read
// instead of leaking the goroutine against a wedged controller. Every
// failure — including a non-2xx answer from the controller, previously
// ignored — is returned and counted in Dropped.
func (c *AlarmClient) RaiseAlarmContext(ctx context.Context, a types.Alarm) error {
	body, err := json.Marshal(AlarmRequest{Alarm: a})
	if err != nil {
		c.dropped.Add(1)
		return fmt.Errorf("rpc: marshalling alarm: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.URL+"/alarm", bytes.NewReader(body))
	if err != nil {
		c.dropped.Add(1)
		return fmt.Errorf("rpc: building alarm request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(req)
	if err != nil {
		c.dropped.Add(1)
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		c.dropped.Add(1)
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &StatusError{Code: resp.StatusCode, URL: c.URL + "/alarm", Status: resp.Status, Msg: string(bytes.TrimSpace(msg))}
	}
	return nil
}

func (c *AlarmClient) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return DefaultClient
}

// HTTPTransport implements controller.Transport over per-host agent URLs.
// Both directions are negotiated: unless JSONOnly is set, requests offer
// the binary wire encoding (internal/wire) in Accept and the decoder
// follows the response Content-Type, so daemons that predate the wire
// format keep answering JSON and everything still works. Query, batch and
// install request bodies travel wire-encoded too; a daemon that rejects
// one (415 from a daemon with wire requests disabled, 400 from one that
// predates them and choked JSON-parsing the frame) gets that request
// retried as JSON — safe, servers decode before any side effect — and is
// remembered, so later requests to that base URL go straight to JSON.
type HTTPTransport struct {
	URLs   map[types.HostID]string
	Client *http.Client
	// JSONOnly suppresses the wire format in both directions: JSON
	// request bodies and no wire Accept offer (mixed-version testing,
	// debugging with readable bodies).
	JSONOnly bool
	// JSONRequests forces JSON request bodies while still accepting
	// wire-encoded responses (request-side mixed-version testing).
	JSONRequests bool

	// jsonReq remembers base URLs whose daemons rejected a wire-encoded
	// request body; keys are base URLs, values are unused.
	jsonReq sync.Map
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return DefaultClient
}

func (t *HTTPTransport) post(ctx context.Context, host types.HostID, path string, in, out interface{}) error {
	base, ok := t.URLs[host]
	if !ok {
		return fmt.Errorf("rpc: no URL for host %v", host)
	}
	_, err := t.postStatus(ctx, base, path, in, out, nil)
	return err
}

// acquire takes one slot of sem (nil = unlimited), abandoning the wait if
// ctx ends first. The returned release must be called once.
func acquire(ctx context.Context, sem chan struct{}) (release func(), err error) {
	if sem == nil {
		return func() {}, nil
	}
	select {
	case sem <- struct{}{}:
		return func() { <-sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// reqBufs pools request-encode buffers: every POST borrows one for its
// body (wire frame or JSON) instead of allocating, and releases it once
// the round trip's Do returns. Buffers that grew past a megabyte are
// dropped rather than pinned.
var reqBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledReqBuf = 1 << 20

func putReqBuf(buf *bytes.Buffer) {
	if buf.Cap() > maxPooledReqBuf {
		return
	}
	buf.Reset()
	reqBufs.Put(buf)
}

// doPost issues one POST and returns the raw 200 response, body unread,
// so callers pick the decoder the response Content-Type calls for. With
// acceptWire the request offers the binary wire encoding for the
// response. The request body itself is wire-encoded when the request
// type has a frame and the transport (and the daemon, per the fallback
// cache) allows it; a daemon that rejects the frame gets one transparent
// JSON retry and is remembered. A non-200 answer closes the body and
// surfaces as *StatusError (the response is still returned for its
// status code).
func (t *HTTPTransport) doPost(ctx context.Context, base, path string, in interface{}, acceptWire bool) (*http.Response, error) {
	if t.wireRequestEligible(base, in) {
		resp, err := t.doPostOnce(ctx, base, path, in, acceptWire, true)
		if !wireRequestRejected(err) {
			return resp, err
		}
		// The daemon spoke, authoritatively, before any side effect: it
		// cannot (415) or will not (400, a pre-wire daemon JSON-parsing
		// the frame) decode wire requests. Remember and retry as JSON.
		t.jsonReq.Store(base, struct{}{})
	}
	return t.doPostOnce(ctx, base, path, in, acceptWire, false)
}

// wireRequestEligible reports whether this request should be sent
// wire-encoded: the transport allows it, the request type has a frame,
// and the daemon has not previously rejected one.
func (t *HTTPTransport) wireRequestEligible(base string, in interface{}) bool {
	if t.JSONOnly || t.JSONRequests {
		return false
	}
	switch in.(type) {
	case QueryRequest, BatchQueryRequest, InstallRequest:
	default:
		return false
	}
	_, marked := t.jsonReq.Load(base)
	return !marked
}

// wireRequestRejected recognises a server's authoritative refusal of a
// wire-encoded request body: 415 from a daemon with wire requests
// disabled, 400 from a pre-wire daemon whose JSON decoder choked on the
// frame. Both fail in decode, before any handler side effect, so the
// JSON retry cannot double-execute anything.
func wireRequestRejected(err error) bool {
	var se *StatusError
	if !errors.As(err, &se) {
		return false
	}
	return se.Code == http.StatusUnsupportedMediaType || se.Code == http.StatusBadRequest
}

// encodeWireRequest writes in's binary request frame into buf.
func encodeWireRequest(buf *bytes.Buffer, in interface{}) error {
	switch req := in.(type) {
	case QueryRequest:
		return wire.WriteQueryRequest(buf, req.Host, &req.Query)
	case BatchQueryRequest:
		return wire.WriteBatchRequest(buf, req.Hosts, &req.Query, req.Parallel)
	case InstallRequest:
		return wire.WriteInstallRequest(buf, req.Host, &req.Query, req.Period)
	default:
		return fmt.Errorf("rpc: no wire request frame for %T", in)
	}
}

func (t *HTTPTransport) doPostOnce(ctx context.Context, base, path string, in interface{}, acceptWire, wireReq bool) (*http.Response, error) {
	buf := reqBufs.Get().(*bytes.Buffer)
	buf.Reset()
	contentType := "application/json"
	if wireReq {
		if err := encodeWireRequest(buf, in); err != nil {
			putReqBuf(buf)
			return nil, err
		}
		contentType = wire.ContentType
	} else if err := json.NewEncoder(buf).Encode(in); err != nil {
		putReqBuf(buf)
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(buf.Bytes()))
	if err != nil {
		putReqBuf(buf)
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	if acceptWire {
		req.Header.Set("Accept", wire.ContentType+", application/json")
	}
	if tid := obs.TraceFromContext(ctx); tid != "" {
		req.Header.Set(TraceHeader, tid)
	}
	resp, err := t.client().Do(req)
	// Do has fully consumed (or abandoned) the body by the time it
	// returns, retries included, so the buffer is recyclable here.
	putReqBuf(buf)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		return resp, &StatusError{Code: resp.StatusCode, URL: base + path, Status: resp.Status, Msg: string(bytes.TrimSpace(msg))}
	}
	return resp, nil
}

// closeBody drains a bounded remainder and closes, so the pooled
// connection is reusable instead of being torn down mid-body.
func closeBody(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// postStatus posts to an explicit base URL, optionally throttled by sem,
// decodes the JSON response into out, and reports the HTTP status so
// callers can detect missing endpoints. The request carries ctx
// (http.NewRequestWithContext), so cancelling it aborts the dial, the
// in-flight request, and the response read; waiting on a semaphore slot
// is interruptible too. postStatus never offers the wire encoding, so a
// wire-typed reply means the server ignored the negotiation; it is
// reported as *UnexpectedContentTypeError instead of being fed to the
// JSON decoder, whose "invalid character" noise would hide the real
// mismatch.
func (t *HTTPTransport) postStatus(ctx context.Context, base, path string, in, out interface{}, sem chan struct{}) (int, error) {
	release, err := acquire(ctx, sem)
	if err != nil {
		return 0, err
	}
	defer release()
	resp, err := t.doPost(ctx, base, path, in, false)
	if err != nil {
		if resp != nil {
			return resp.StatusCode, err
		}
		return 0, err
	}
	defer closeBody(resp)
	if ct := resp.Header.Get("Content-Type"); wire.IsWire(ct) {
		return resp.StatusCode, &UnexpectedContentTypeError{URL: base + path, ContentType: ct}
	}
	return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
}

// UnexpectedContentTypeError reports a reply whose Content-Type the
// client never offered to accept — a daemon answering the binary wire
// encoding to a request that only asked for JSON. It names the encoding
// so the mismatch is diagnosable, where JSON-decoding the frame bytes
// would fail with a garbled syntax error.
type UnexpectedContentTypeError struct {
	URL         string
	ContentType string
}

// Error implements error.
func (e *UnexpectedContentTypeError) Error() string {
	return fmt.Sprintf("rpc: %s answered unrequested content type %q", e.URL, e.ContentType)
}

// Query implements controller.Transport. The response body streams
// through whichever decoder its Content-Type selects — the binary wire
// codec when the daemon took the offer, JSON otherwise. Wire replies
// decode chunk by chunk into a pooled record buffer, so decode work
// overlaps a streaming daemon's scan and arrival on the network instead
// of waiting for the frame's last byte; the controller recycles the
// buffer once the merge has folded it in.
func (t *HTTPTransport) Query(ctx context.Context, host types.HostID, q query.Query) (query.Result, controller.QueryMeta, error) {
	base, ok := t.URLs[host]
	if !ok {
		return query.Result{}, controller.QueryMeta{}, fmt.Errorf("rpc: no URL for host %v", host)
	}
	httpResp, err := t.doPost(ctx, base, "/query", QueryRequest{Host: &host, Query: q}, !t.JSONOnly)
	if err != nil {
		return query.Result{}, controller.QueryMeta{}, err
	}
	defer closeBody(httpResp)
	if wire.IsWire(httpResp.Header.Get("Content-Type")) {
		recs := query.GetRecordBuf()
		m, res, err := wire.ReadQueryChunks(httpResp.Body, func(chunk []types.Record) {
			recs = append(recs, chunk...)
		})
		if err != nil {
			query.PutRecordBuf(recs)
			return query.Result{}, controller.QueryMeta{}, err
		}
		if len(recs) > 0 {
			res.Records = recs
		} else {
			query.PutRecordBuf(recs)
		}
		return *res, controller.QueryMeta{
			RecordsScanned:  m.RecordsScanned,
			SegmentsScanned: m.SegmentsScanned,
			SegmentsPruned:  m.SegmentsPruned,
			Span:            decodeSpanHeader(httpResp.Header),
		}, nil
	}
	var resp QueryResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return query.Result{}, controller.QueryMeta{}, err
	}
	return resp.Result, controller.QueryMeta{
		RecordsScanned:  resp.RecordsScanned,
		SegmentsScanned: resp.SegmentsScanned,
		SegmentsPruned:  resp.SegmentsPruned,
		Span:            resp.Span,
	}, nil
}

// Install implements controller.Transport.
func (t *HTTPTransport) Install(ctx context.Context, host types.HostID, q query.Query, period types.Time) (int, error) {
	var resp InstallResponse
	if err := t.post(ctx, host, "/install", InstallRequest{Host: &host, Query: q, Period: period}, &resp); err != nil {
		return 0, err
	}
	return resp.ID, nil
}

// Uninstall implements controller.Transport.
func (t *HTTPTransport) Uninstall(ctx context.Context, host types.HostID, id int) error {
	var out struct{}
	return t.post(ctx, host, "/uninstall", UninstallRequest{Host: &host, ID: id}, &out)
}

// snapshotHandler builds the GET /snapshot handler over a target
// resolver (single-agent servers always answer with their one target;
// multi-agent daemons pick by the ?host query parameter). The snapshot
// streams straight from the store's consistent capture to the socket —
// ingest continues while it is written. With ?since_seq=N the target
// serves an incremental stream instead (see IncrementalSnapshotter).
// Targets without the needed support answer 501.
func snapshotHandler(resolve func(*http.Request) (Target, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		t, err := resolve(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		var since uint64
		if raw := r.URL.Query().Get("since_seq"); raw != "" {
			since, err = strconv.ParseUint(raw, 10, 64)
			if err != nil {
				http.Error(w, "rpc: since_seq must be an unsigned integer", http.StatusBadRequest)
				return
			}
		}
		// The status line is already committed once bytes flow; a
		// mid-stream failure surfaces to the puller as a truncated body,
		// which the loader rejects (no terminator) without touching the
		// store it would have replaced.
		if since > 0 {
			isn, ok := t.(IncrementalSnapshotter)
			if !ok {
				http.Error(w, "rpc: target cannot stream incremental snapshots", http.StatusNotImplemented)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			_ = isn.WriteSnapshotSince(w, since)
			return
		}
		sn, ok := t.(Snapshotter)
		if !ok {
			http.Error(w, "rpc: target cannot stream snapshots", http.StatusNotImplemented)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_ = sn.WriteSnapshot(w)
	}
}

// PullSnapshot captures a live daemon's TIB snapshot for one host: GET
// /snapshot, streamed into w. The byte count written is returned; a
// non-200 answer surfaces as a *StatusError (501 = the target cannot
// snapshot).
func (t *HTTPTransport) PullSnapshot(ctx context.Context, host types.HostID, w io.Writer) (int64, error) {
	base, ok := t.URLs[host]
	if !ok {
		return 0, fmt.Errorf("rpc: no URL for host %v", host)
	}
	url := fmt.Sprintf("%s/snapshot?host=%d", base, uint32(host))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, &StatusError{Code: resp.StatusCode, URL: base + "/snapshot", Status: resp.Status, Msg: string(bytes.TrimSpace(msg))}
	}
	return io.Copy(w, resp.Body)
}

// PullSnapshotSince captures an incremental snapshot for one host: GET
// /snapshot?since_seq=N, streamed into w. The stream is a Version-3
// delta of everything past the watermark — or a full snapshot when the
// daemon could not serve the delta (watermark evicted); the receiver
// tells them apart by applying the stream with tib.ApplyIncremental,
// which handles both. Byte count written is returned; a non-200 answer
// surfaces as a *StatusError (501 = the target cannot serve deltas).
func (t *HTTPTransport) PullSnapshotSince(ctx context.Context, host types.HostID, since uint64, w io.Writer) (int64, error) {
	base, ok := t.URLs[host]
	if !ok {
		return 0, fmt.Errorf("rpc: no URL for host %v", host)
	}
	url := fmt.Sprintf("%s/snapshot?host=%d&since_seq=%d", base, uint32(host), since)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, &StatusError{Code: resp.StatusCode, URL: base + "/snapshot", Status: resp.Status, Msg: string(bytes.TrimSpace(msg))}
	}
	return io.Copy(w, resp.Body)
}

// StatusError is a non-2xx HTTP answer from an agent or daemon: the
// server spoke, authoritatively — as opposed to a transport-level
// failure (dial refused, connection reset) where nothing answered at
// all. The controller's retry policy keys off the distinction via the
// HTTPStatus method: status errors are never retried.
type StatusError struct {
	Code   int
	URL    string
	Status string
	Msg    string
}

// Error formats like the transport's historic error strings (callers
// grep for the status code).
func (e *StatusError) Error() string {
	return fmt.Sprintf("rpc: %s: %s: %s", e.URL, e.Status, e.Msg)
}

// HTTPStatus reports the response code (see controller's retry policy).
func (e *StatusError) HTTPStatus() int { return e.Code }

// DefaultMaxBody caps request bodies when a server does not configure its
// own limit. Batch installs against many hosts can legitimately exceed it;
// such deployments raise the server's MaxBodyBytes (pathdumpd -max-body).
const DefaultMaxBody = 16 << 20

// decode parses a request body capped at limit bytes (<= 0 means
// DefaultMaxBody): a body marked with the wire Content-Type decodes
// through the binary request frames (unless disableWire emulates an old
// daemon, answering 415 so the client falls back to JSON), anything else
// decodes as JSON. An over-limit body answers 413 with an explicit
// message; it used to surface as a baffling 400 "unexpected EOF" when the
// cap was a bare io.LimitReader silently truncating the stream.
func decode(w http.ResponseWriter, r *http.Request, v interface{}, limit int64, disableWire bool) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	if limit <= 0 {
		limit = DefaultMaxBody
	}
	body := http.MaxBytesReader(w, r.Body, limit)
	if wire.IsWire(r.Header.Get("Content-Type")) {
		if disableWire {
			http.Error(w, "rpc: wire-encoded requests disabled here", http.StatusUnsupportedMediaType)
			return false
		}
		if err := decodeWireRequest(body, v); err != nil {
			writeDecodeError(w, err)
			return false
		}
		return true
	}
	if err := json.NewDecoder(body).Decode(v); err != nil {
		writeDecodeError(w, err)
		return false
	}
	return true
}

// errWireEndpoint marks a wire-encoded body posted to an endpoint that
// has no binary request frame (alarms, uninstalls); decode answers 415 so
// the client retries as JSON.
var errWireEndpoint = errors.New("rpc: endpoint does not accept wire-encoded requests")

// decodeWireRequest maps the handler's request struct onto its wire frame
// decoder. Decoding fails before any handler side effect, so a client may
// safely retry the same request as JSON.
func decodeWireRequest(body io.Reader, v interface{}) error {
	switch req := v.(type) {
	case *QueryRequest:
		host, q, err := wire.ReadQueryRequest(body)
		if err != nil {
			return err
		}
		req.Host, req.Query = host, q
	case *BatchQueryRequest:
		hosts, q, parallel, err := wire.ReadBatchRequest(body)
		if err != nil {
			return err
		}
		req.Hosts, req.Query, req.Parallel = hosts, q, parallel
	case *InstallRequest:
		host, q, period, err := wire.ReadInstallRequest(body)
		if err != nil {
			return err
		}
		req.Host, req.Query, req.Period = host, q, period
	default:
		return errWireEndpoint
	}
	return nil
}

// writeDecodeError maps a request-decode failure onto its status: 413 for
// an over-limit body, 415 for a wire body on a JSON-only endpoint, 400
// otherwise.
func writeDecodeError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe):
		http.Error(w, fmt.Sprintf("request body exceeds the %d-byte limit; raise the server's max body size (-max-body)", mbe.Limit), http.StatusRequestEntityTooLarge)
	case errors.Is(err, errWireEndpoint):
		http.Error(w, err.Error(), http.StatusUnsupportedMediaType)
	default:
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
	}
}

// encode writes a JSON response. Marshalling happens before the first
// byte reaches the wire: encoding straight into w meant a late failure
// called http.Error mid-body, corrupting the payload with a trailing
// error message under a 200 status ("superfluous response.WriteHeader").
func encode(w http.ResponseWriter, v interface{}) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "rpc: encoding response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf)
	w.Write([]byte{'\n'})
}

// writeQueryResponse answers /query in whichever encoding the request
// negotiated: the binary wire format when the client offered it (and the
// server hasn't disabled it), JSON otherwise. The wire path streams
// columns straight to the socket instead of buffering the whole reply.
// Once the first body byte is out the status line is committed, so a
// mid-stream write failure just truncates the frame — the client-side
// decoder rejects truncated frames explicitly.
func writeQueryResponse(w http.ResponseWriter, r *http.Request, disableWire, compress bool, resp QueryResponse) {
	if disableWire || !wire.Accepted(r.Header.Get("Accept")) {
		encode(w, resp)
		return
	}
	if resp.Span != nil {
		// The binary frame has no span slot; ride the response header.
		if b, err := json.Marshal(resp.Span); err == nil {
			w.Header().Set(SpanHeader, string(b))
		}
	}
	w.Header().Set("Content-Type", wire.ContentType)
	_ = wire.WriteQuery(w, wire.Meta{
		RecordsScanned:  resp.RecordsScanned,
		SegmentsScanned: resp.SegmentsScanned,
		SegmentsPruned:  resp.SegmentsPruned,
	}, &resp.Result, compress)
}

// writeBatchResponse is writeQueryResponse for /batchquery.
func writeBatchResponse(w http.ResponseWriter, r *http.Request, disableWire, compress bool, replies []BatchQueryReply) {
	if disableWire || !wire.Accepted(r.Header.Get("Accept")) {
		encode(w, BatchQueryResponse{Replies: replies})
		return
	}
	out := make([]wire.BatchReply, len(replies))
	for i := range replies {
		out[i] = wire.BatchReply{
			Host: replies[i].Host,
			Meta: wire.Meta{
				RecordsScanned:  replies[i].RecordsScanned,
				SegmentsScanned: replies[i].SegmentsScanned,
				SegmentsPruned:  replies[i].SegmentsPruned,
			},
			Result: replies[i].Result,
			Error:  replies[i].Error,
		}
	}
	w.Header().Set("Content-Type", wire.ContentType)
	_ = wire.WriteBatch(w, out, compress)
}
