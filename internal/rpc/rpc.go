// Package rpc is the HTTP/JSON transport between the PathDump controller
// and host agents — the stand-in for the paper's Flask RESTful service
// (§3). An AgentServer exposes one agent's query/install/uninstall
// endpoints; HTTPTransport implements controller.Transport against a set
// of agent base URLs; ControllerServer accepts agent alarms.
//
// Endpoints (all JSON over POST unless noted):
//
//	agent:      /query      {query}          → {result, records_scanned}
//	            /install    {query, period}  → {id}
//	            /uninstall  {id}             → {}
//	            /stats      (GET)            → {records, packets, invalid}
//	controller: /alarm      {alarm}          → {}
package rpc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"pathdump/internal/controller"
	"pathdump/internal/query"
	"pathdump/internal/types"
)

// Target is the agent-side surface the server exposes; *agent.Agent
// satisfies it.
type Target interface {
	Execute(q query.Query) query.Result
	Install(q query.Query, period types.Time) int
	Uninstall(id int) error
	TIBSize() int
}

// QueryRequest is the /query body.
type QueryRequest struct {
	Query query.Query `json:"query"`
}

// QueryResponse is the /query reply.
type QueryResponse struct {
	Result         query.Result `json:"result"`
	RecordsScanned int          `json:"records_scanned"`
}

// InstallRequest is the /install body; Period is virtual nanoseconds.
type InstallRequest struct {
	Query  query.Query `json:"query"`
	Period types.Time  `json:"period"`
}

// InstallResponse is the /install reply.
type InstallResponse struct {
	ID int `json:"id"`
}

// UninstallRequest is the /uninstall body.
type UninstallRequest struct {
	ID int `json:"id"`
}

// AlarmRequest is the controller's /alarm body.
type AlarmRequest struct {
	Alarm types.Alarm `json:"alarm"`
}

// AgentServer serves one agent's host API.
type AgentServer struct {
	T Target
}

// Handler returns the agent's HTTP mux.
func (s *AgentServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		var req QueryRequest
		if !decode(w, r, &req) {
			return
		}
		resp := QueryResponse{
			Result:         s.T.Execute(req.Query),
			RecordsScanned: s.T.TIBSize(),
		}
		encode(w, resp)
	})
	mux.HandleFunc("/install", func(w http.ResponseWriter, r *http.Request) {
		var req InstallRequest
		if !decode(w, r, &req) {
			return
		}
		encode(w, InstallResponse{ID: s.T.Install(req.Query, req.Period)})
	})
	mux.HandleFunc("/uninstall", func(w http.ResponseWriter, r *http.Request) {
		var req UninstallRequest
		if !decode(w, r, &req) {
			return
		}
		if err := s.T.Uninstall(req.ID); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		encode(w, struct{}{})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		encode(w, map[string]int{"records": s.T.TIBSize()})
	})
	return mux
}

// ControllerServer accepts alarms from remote agents.
type ControllerServer struct {
	C *controller.Controller
}

// Handler returns the controller's HTTP mux.
func (s *ControllerServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/alarm", func(w http.ResponseWriter, r *http.Request) {
		var req AlarmRequest
		if !decode(w, r, &req) {
			return
		}
		s.C.RaiseAlarm(req.Alarm)
		encode(w, struct{}{})
	})
	return mux
}

// AlarmClient forwards agent alarms to a controller URL; it implements
// agent.AlarmSink.
type AlarmClient struct {
	URL    string
	Client *http.Client
}

// RaiseAlarm posts the alarm; delivery failures are dropped (alarms are
// advisory, the monitor will fire again).
func (c *AlarmClient) RaiseAlarm(a types.Alarm) {
	body, err := json.Marshal(AlarmRequest{Alarm: a})
	if err != nil {
		return
	}
	resp, err := c.client().Post(c.URL+"/alarm", "application/json", bytes.NewReader(body))
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func (c *AlarmClient) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

// HTTPTransport implements controller.Transport over per-host agent URLs.
type HTTPTransport struct {
	URLs   map[types.HostID]string
	Client *http.Client
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

func (t *HTTPTransport) post(host types.HostID, path string, in, out interface{}) error {
	base, ok := t.URLs[host]
	if !ok {
		return fmt.Errorf("rpc: no URL for host %v", host)
	}
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := t.client().Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("rpc: %s%s: %s: %s", base, path, resp.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Query implements controller.Transport.
func (t *HTTPTransport) Query(host types.HostID, q query.Query) (query.Result, controller.QueryMeta, error) {
	var resp QueryResponse
	if err := t.post(host, "/query", QueryRequest{Query: q}, &resp); err != nil {
		return query.Result{}, controller.QueryMeta{}, err
	}
	return resp.Result, controller.QueryMeta{RecordsScanned: resp.RecordsScanned}, nil
}

// Install implements controller.Transport.
func (t *HTTPTransport) Install(host types.HostID, q query.Query, period types.Time) (int, error) {
	var resp InstallResponse
	if err := t.post(host, "/install", InstallRequest{Query: q, Period: period}, &resp); err != nil {
		return 0, err
	}
	return resp.ID, nil
}

// Uninstall implements controller.Transport.
func (t *HTTPTransport) Uninstall(host types.HostID, id int) error {
	var out struct{}
	return t.post(host, "/uninstall", UninstallRequest{ID: id}, &out)
}

// decode parses a JSON request body, writing a 400 on failure.
func decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// encode writes a JSON response.
func encode(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
