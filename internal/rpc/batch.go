// Batched multi-host queries: a MultiAgentServer hosts several co-located
// agents behind one listener (one daemon per server machine rather than
// one per host), and HTTPTransport.QueryMany collapses the controller's
// leaf fan-out into one /batchquery round trip per daemon. Hosts with
// their own URLs keep using plain per-host /query, so mixed deployments
// work; several hosts mapped onto one single-agent daemon is a
// misconfiguration and reported as an explicit error, never answered
// with one agent's data under many host labels.
package rpc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"pathdump/internal/controller"
	"pathdump/internal/query"
	"pathdump/internal/types"
	"pathdump/internal/wire"
)

// MultiAgentServer serves the host API for several co-located agents. All
// per-host endpoints (/query, /install, /uninstall) require the request's
// Host field; /batchquery executes one query across many hosts
// server-side, fanning out concurrently. Install/uninstall handlers are
// serialised across all hosts: co-located agents share one simulator,
// whose timer heap is not safe for concurrent mutation.
type MultiAgentServer struct {
	Targets map[types.HostID]Target
	// Parallelism bounds the server-side batch fan-out (<= 0 unlimited).
	Parallelism int

	// MaxBodyBytes caps request bodies (<= 0 = DefaultMaxBody); batch
	// installs across many hosts may need it raised.
	MaxBodyBytes int64
	// DisableWire forces JSON responses even for clients that offer the
	// binary wire encoding, and rejects wire-encoded request bodies with
	// 415 so clients fall back to JSON (mixed-version testing).
	DisableWire bool
	// WireCompress flate-compresses wire-encoded responses.
	WireCompress bool
	// Obs mounts the server's observability surface — /metrics,
	// /healthz override, optional pprof — and instruments every
	// endpoint (nil = uninstrumented; /healthz is served regardless).
	Obs *ServerObs

	instMu sync.Mutex
}

// target resolves one request's agent.
func (s *MultiAgentServer) target(h *types.HostID) (Target, error) {
	if h == nil {
		return nil, errors.New("rpc: multi-agent server requires a host field")
	}
	t, ok := s.Targets[*h]
	if !ok {
		return nil, fmt.Errorf("rpc: host %v not served here", *h)
	}
	return t, nil
}

// Handler returns the daemon's HTTP mux.
func (s *MultiAgentServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.Obs.wrap("query", func(w http.ResponseWriter, r *http.Request) {
		var req QueryRequest
		if !decode(w, r, &req, s.MaxBodyBytes, s.DisableWire) {
			return
		}
		t, err := s.target(req.Host)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		if streamQueryResponse(w, r, t, req.Query, s.DisableWire, s.WireCompress) {
			return
		}
		span, cold0 := traceScan(r, t)
		res, sc, sp, err := executeMeta(r.Context(), t, req.Query)
		if err != nil {
			writeExecuteError(w, err)
			return
		}
		finishScan(span, t, sc, sp, cold0)
		writeQueryResponse(w, r, s.DisableWire, s.WireCompress,
			QueryResponse{Result: res, RecordsScanned: t.TIBSize(), SegmentsScanned: sc, SegmentsPruned: sp, Span: span})
		query.PutRecordBuf(res.Records)
	}))
	mux.HandleFunc("/batchquery", s.Obs.wrap("batchquery", func(w http.ResponseWriter, r *http.Request) {
		var req BatchQueryRequest
		if !decode(w, r, &req, s.MaxBodyBytes, s.DisableWire) {
			return
		}
		replies, err := s.runBatch(r.Context(), req)
		if err != nil {
			writeExecuteError(w, err)
			return
		}
		writeBatchResponse(w, r, s.DisableWire, s.WireCompress, replies)
		for i := range replies {
			query.PutRecordBuf(replies[i].Result.Records)
		}
	}))
	mux.HandleFunc("/snapshot", s.Obs.wrap("snapshot", snapshotHandler(func(r *http.Request) (Target, error) {
		n, err := strconv.Atoi(r.URL.Query().Get("host"))
		if err != nil {
			return nil, fmt.Errorf("rpc: /snapshot needs a numeric ?host parameter: %w", err)
		}
		h := types.HostID(n)
		return s.target(&h)
	})))
	mux.HandleFunc("/install", s.Obs.wrap("install", func(w http.ResponseWriter, r *http.Request) {
		var req InstallRequest
		if !decode(w, r, &req, s.MaxBodyBytes, s.DisableWire) {
			return
		}
		t, err := s.target(req.Host)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		s.instMu.Lock()
		id, err := install(t, req.Query, req.Period)
		s.instMu.Unlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotImplemented)
			return
		}
		encode(w, InstallResponse{ID: id})
	}))
	mux.HandleFunc("/uninstall", s.Obs.wrap("uninstall", func(w http.ResponseWriter, r *http.Request) {
		var req UninstallRequest
		if !decode(w, r, &req, s.MaxBodyBytes, s.DisableWire) {
			return
		}
		t, err := s.target(req.Host)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		s.instMu.Lock()
		err = t.Uninstall(req.ID)
		s.instMu.Unlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		encode(w, struct{}{})
	}))
	mux.HandleFunc("/stats", s.Obs.wrap("stats", func(w http.ResponseWriter, r *http.Request) {
		total := 0
		for _, t := range s.Targets {
			total += t.TIBSize()
		}
		encode(w, map[string]int{"records": total, "hosts": len(s.Targets)})
	}))
	mountObs(mux, s.Obs, func() HealthStatus {
		total := 0
		for _, t := range s.Targets {
			total += t.TIBSize()
		}
		return HealthStatus{Status: "ok", Hosts: len(s.Targets), Records: total}
	})
	return mux
}

// runBatch executes one query at every requested host concurrently and
// returns replies aligned with the request order. The effective bound is
// the tighter of the daemon's own Parallelism and the one the request
// carries from the controller. A cancelled request context (the
// controller hung up, or its deadline fired mid-batch) stops the fan-out:
// hosts not yet started are skipped, in-flight evaluations abort at their
// next shard-merge poll, and the context error is returned so the handler
// drops the connection instead of fabricating a complete-looking reply.
func (s *MultiAgentServer) runBatch(ctx context.Context, req BatchQueryRequest) ([]BatchQueryReply, error) {
	replies := make([]BatchQueryReply, len(req.Hosts))
	bound := s.Parallelism
	if req.Parallel > 0 && (bound <= 0 || req.Parallel < bound) {
		bound = req.Parallel
	}
	var sem chan struct{}
	if bound > 0 {
		sem = make(chan struct{}, bound)
	}
	var wg sync.WaitGroup
	for i, h := range req.Hosts {
		wg.Add(1)
		go func(i int, h types.HostID) {
			defer wg.Done()
			if sem != nil {
				select {
				case sem <- struct{}{}:
					defer func() { <-sem }()
				case <-ctx.Done():
					replies[i].Host = h
					replies[i].Error = ctx.Err().Error()
					return
				}
			}
			replies[i].Host = h
			t, ok := s.Targets[h]
			if !ok {
				replies[i].Error = fmt.Sprintf("rpc: host %v not served here", h)
				return
			}
			res, sc, sp, err := executeMeta(ctx, t, req.Query)
			if err != nil {
				replies[i].Error = err.Error()
				return
			}
			replies[i].Result = res
			replies[i].RecordsScanned = t.TIBSize()
			replies[i].SegmentsScanned = sc
			replies[i].SegmentsPruned = sp
		}(i, h)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return replies, nil
}

// QueryMany implements controller.BatchTransport: hosts sharing a daemon
// URL ride one /batchquery round trip (the request carries `parallel` so
// the daemon's server-side fan-out honours the controller's bound), and
// lone hosts use plain per-host /query. At most `parallel` HTTP requests
// are outstanding at once (<= 0 means unlimited). Several hosts mapped
// to one single-agent daemon is reported as an error per slot. The
// context rides every HTTP request, so cancellation aborts in-flight
// round trips and the daemons' server-side fan-outs with them.
func (t *HTTPTransport) QueryMany(ctx context.Context, hosts []types.HostID, q query.Query, parallel int) ([]controller.BatchReply, error) {
	replies := make([]controller.BatchReply, len(hosts))
	type group struct {
		url string
		idx []int
	}
	byURL := make(map[string]int)
	var groups []group
	for i, h := range hosts {
		replies[i].Host = h
		base, ok := t.URLs[h]
		if !ok {
			replies[i].Err = fmt.Errorf("rpc: no URL for host %v", h)
			continue
		}
		gi, seen := byURL[base]
		if !seen {
			gi = len(groups)
			byURL[base] = gi
			groups = append(groups, group{url: base})
		}
		groups[gi].idx = append(groups[gi].idx, i)
	}
	if len(groups) == 0 {
		// Every requested host lacked a URL; the per-slot errors above
		// already say so.
		return replies, nil
	}
	// Carve the caller's bound across daemon groups so that total
	// concurrent per-host executions — server-side batch fan-outs plus
	// per-host requests — stay within `parallel`: at most min(G, P)
	// requests are outstanding (one semaphore slot each) and each batch
	// carries a share of at most max(1, P/G), whose product never
	// exceeds P.
	share := 0
	var sem chan struct{}
	if parallel > 0 {
		sem = make(chan struct{}, parallel)
		share = parallel / len(groups)
		if share < 1 {
			share = 1
		}
	}
	var wg sync.WaitGroup
	for gi := range groups {
		wg.Add(1)
		go func(g *group) {
			defer wg.Done()
			t.queryGroup(ctx, g.url, hosts, g.idx, q, replies, sem, share)
		}(&groups[gi])
	}
	wg.Wait()
	return replies, nil
}

// queryGroup resolves all of one daemon's hosts, batching when possible.
// share is this group's slice of the caller's parallelism bound (0 =
// unlimited), forwarded to the daemon's server-side fan-out.
func (t *HTTPTransport) queryGroup(ctx context.Context, url string, hosts []types.HostID, idx []int, q query.Query, replies []controller.BatchReply, sem chan struct{}, share int) {
	single := func(i int) {
		if sem != nil {
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				replies[i] = controller.BatchReply{Host: hosts[i], Err: ctx.Err()}
				return
			}
		}
		r, meta, err := t.Query(ctx, hosts[i], q)
		replies[i] = controller.BatchReply{Host: hosts[i], Result: r, Meta: meta, Err: err}
	}
	if len(idx) == 1 {
		single(idx[0])
		return
	}
	batch := make([]types.HostID, len(idx))
	for j, i := range idx {
		batch[j] = hosts[i]
	}
	resp, status, err := t.postBatch(ctx, url, BatchQueryRequest{Hosts: batch, Query: q, Parallel: share}, sem)
	if status == http.StatusNotFound || status == http.StatusMethodNotAllowed {
		// Only single-agent daemons lack /batchquery, and a single-agent
		// daemon answers /query for whichever one agent it wraps — it
		// cannot tell hosts apart. Falling back per-host here would
		// return that one agent's records once per requested host
		// (silently duplicated data), so fail loudly instead.
		err = fmt.Errorf("rpc: %s serves a single agent (no /batchquery) but %d hosts map to it — run a multi-host daemon (pathdumpd -hosts) or give each host its own URL", url, len(idx))
		for _, i := range idx {
			replies[i].Err = err
		}
		return
	}
	if err == nil && len(resp.Replies) != len(idx) {
		err = fmt.Errorf("rpc: %s/batchquery returned %d replies for %d hosts", url, len(resp.Replies), len(idx))
	}
	if err != nil {
		for _, i := range idx {
			replies[i].Err = err
		}
		return
	}
	for j, i := range idx {
		rep := resp.Replies[j]
		out := controller.BatchReply{Host: hosts[i], Result: rep.Result, Meta: controller.QueryMeta{
			RecordsScanned:  rep.RecordsScanned,
			SegmentsScanned: rep.SegmentsScanned,
			SegmentsPruned:  rep.SegmentsPruned,
		}}
		if rep.Error != "" {
			out.Err = fmt.Errorf("rpc: host %v: %s", hosts[i], rep.Error)
		}
		replies[i] = out
	}
}

// postBatch issues one /batchquery round trip, holding a sem slot for the
// request and the response decode, and follows the response Content-Type:
// binary wire frames when the daemon took the negotiation offer, JSON from
// older daemons. The HTTP status is reported so the caller can recognise
// single-agent daemons (404/405).
func (t *HTTPTransport) postBatch(ctx context.Context, base string, req BatchQueryRequest, sem chan struct{}) (BatchQueryResponse, int, error) {
	var out BatchQueryResponse
	release, err := acquire(ctx, sem)
	if err != nil {
		return out, 0, err
	}
	defer release()
	resp, err := t.doPost(ctx, base, "/batchquery", req, !t.JSONOnly)
	if err != nil {
		status := 0
		if resp != nil {
			status = resp.StatusCode
		}
		return out, status, err
	}
	defer closeBody(resp)
	if wire.IsWire(resp.Header.Get("Content-Type")) {
		wireReplies, err := wire.ReadBatch(resp.Body)
		if err != nil {
			return out, resp.StatusCode, err
		}
		out.Replies = make([]BatchQueryReply, len(wireReplies))
		for i := range wireReplies {
			out.Replies[i] = BatchQueryReply{
				Host:            wireReplies[i].Host,
				Result:          wireReplies[i].Result,
				RecordsScanned:  wireReplies[i].Meta.RecordsScanned,
				SegmentsScanned: wireReplies[i].Meta.SegmentsScanned,
				SegmentsPruned:  wireReplies[i].Meta.SegmentsPruned,
				Error:           wireReplies[i].Error,
			}
		}
		return out, resp.StatusCode, nil
	}
	return out, resp.StatusCode, json.NewDecoder(resp.Body).Decode(&out)
}
