package tcp

import (
	"pathdump/internal/netsim"
	"pathdump/internal/types"
)

// Sender is one TCP flow's send side: a NewReno-style loop with slow
// start, congestion avoidance, fast retransmit/recovery and exponential
// RTO backoff. Retransmission counters feed the PathDump active monitor.
type Sender struct {
	stack *Stack
	cfg   Config

	Flow       types.FlowID
	TotalBytes int64
	Meta       int64

	totalSegs      uint64
	lastSize       int // payload bytes of final segment
	nextSeq        uint64
	sndUna         uint64 // lowest unacknowledged segment
	cwnd           float64
	ssthresh       float64
	dupAcks        int
	inRecovery     bool
	recoverSeq     uint64
	rto            types.Time
	rtoGen         uint64 // invalidates stale timers
	xmits          uint64 // transmission counter (spray re-hash key)
	scannedRetrans int    // TotalRetrans at the monitor's last scan

	// TotalRetrans counts every retransmission; ConsecRetrans counts
	// retransmissions since the last forward progress — the quantity
	// getPoorTCPFlows thresholds on.
	TotalRetrans  int
	ConsecRetrans int

	StartedAt  types.Time
	FinishedAt types.Time
	Finished   bool

	done func(*Sender)
}

func newSender(st *Stack, f types.FlowID, totalBytes, meta int64, done func(*Sender)) *Sender {
	cfg := st.cfg
	segs := uint64(totalBytes / int64(cfg.MSS))
	last := int(totalBytes % int64(cfg.MSS))
	if last > 0 {
		segs++
	} else {
		last = cfg.MSS
	}
	if totalBytes <= 0 {
		segs, last = 1, 1
	}
	return &Sender{
		stack:      st,
		cfg:        cfg,
		Flow:       f,
		TotalBytes: totalBytes,
		Meta:       meta,
		totalSegs:  segs,
		lastSize:   last,
		cwnd:       cfg.InitCwnd,
		ssthresh:   cfg.MaxCwnd,
		rto:        cfg.MinRTO,
		done:       done,
	}
}

func (s *Sender) start() {
	s.StartedAt = s.stack.sim.Now()
	s.trySend()
	s.armRTO()
}

// inflight is the number of unacknowledged segments.
func (s *Sender) inflight() uint64 { return s.nextSeq - s.sndUna }

// segSize returns the wire size of segment seq.
func (s *Sender) segSize(seq uint64) int {
	payload := s.cfg.MSS
	if seq == s.totalSegs-1 {
		payload = s.lastSize
	}
	return payload + s.cfg.HeaderBytes
}

// sendSeg transmits one segment with a fresh transmission ID, so
// per-packet spraying re-hashes retransmissions onto new paths.
func (s *Sender) sendSeg(seq uint64) {
	s.xmits++
	pkt := &netsim.Packet{
		Flow:   s.Flow,
		Seq:    seq,
		XmitID: s.xmits,
		Size:   s.segSize(seq),
		Fin:    seq == s.totalSegs-1,
		Meta:   s.Meta,
	}
	// Errors only occur for unknown hosts, which cannot happen for a
	// stack bound to a topology host.
	_ = s.stack.sim.Send(s.stack.host, pkt)
}

// trySend opens the window.
func (s *Sender) trySend() {
	for s.inflight() < uint64(s.cwnd) && s.nextSeq < s.totalSegs {
		s.sendSeg(s.nextSeq)
		s.nextSeq++
	}
}

// onAck processes a cumulative acknowledgement (ack = next expected seq).
func (s *Sender) onAck(ack uint64) {
	if s.Finished {
		return
	}
	if ack > s.sndUna {
		s.sndUna = ack
		s.dupAcks = 0
		s.ConsecRetrans = 0
		if s.inRecovery && ack >= s.recoverSeq {
			s.inRecovery = false
			s.cwnd = s.ssthresh
		}
		if s.cwnd < s.ssthresh {
			s.cwnd++
		} else {
			s.cwnd += 1 / s.cwnd
		}
		if s.cwnd > s.cfg.MaxCwnd {
			s.cwnd = s.cfg.MaxCwnd
		}
		s.rto = s.cfg.MinRTO
		if s.sndUna >= s.totalSegs {
			s.finish()
			return
		}
		s.armRTO()
		s.trySend()
		return
	}
	// Duplicate ACK.
	s.dupAcks++
	switch {
	case s.dupAcks == 3 && !s.inRecovery:
		s.ssthresh = s.cwnd / 2
		if s.ssthresh < 2 {
			s.ssthresh = 2
		}
		s.cwnd = s.ssthresh + 3
		s.inRecovery = true
		s.recoverSeq = s.nextSeq
		s.retransmit(s.sndUna)
	case s.inRecovery:
		s.cwnd++ // window inflation per extra dup ACK
		if s.cwnd > s.cfg.MaxCwnd {
			s.cwnd = s.cfg.MaxCwnd
		}
		s.trySend()
	}
}

// retransmit resends a segment and bumps the monitor counters.
func (s *Sender) retransmit(seq uint64) {
	s.TotalRetrans++
	s.ConsecRetrans++
	s.sendSeg(seq)
}

// armRTO (re)schedules the retransmission timer.
func (s *Sender) armRTO() {
	s.rtoGen++
	gen := s.rtoGen
	s.stack.sim.After(s.rto, func() { s.onRTO(gen) })
}

// onRTO fires the retransmission timeout.
func (s *Sender) onRTO(gen uint64) {
	if gen != s.rtoGen || s.Finished {
		return
	}
	s.ssthresh = s.cwnd / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	s.cwnd = 1
	s.dupAcks = 0
	s.inRecovery = false
	s.retransmit(s.sndUna)
	s.rto *= 2
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
	s.armRTO()
}

// finish marks completion and fires the callback.
func (s *Sender) finish() {
	s.Finished = true
	s.FinishedAt = s.stack.sim.Now()
	s.rtoGen++ // cancel timers
	if s.done != nil {
		s.done(s)
	}
}

// Duration returns the flow completion time (valid once Finished).
func (s *Sender) Duration() types.Time { return s.FinishedAt - s.StartedAt }

// ThroughputBps returns goodput in bits per second (valid once Finished).
func (s *Sender) ThroughputBps() float64 {
	d := s.Duration()
	if d <= 0 {
		return 0
	}
	return float64(s.TotalBytes) * 8 / d.Seconds()
}
