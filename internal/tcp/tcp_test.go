package tcp

import (
	"testing"

	"pathdump/internal/cherrypick"
	"pathdump/internal/netsim"
	"pathdump/internal/topology"
	"pathdump/internal/types"
)

// rig wires stacks onto every host of a 4-ary fat tree.
type rig struct {
	sim    *netsim.Sim
	stacks map[types.HostID]*Stack
}

func newRig(t *testing.T, cfg netsim.Config) *rig {
	t.Helper()
	topo, err := topology.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := cherrypick.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.New(topo, scheme, cfg)
	r := &rig{sim: sim, stacks: make(map[types.HostID]*Stack)}
	for _, h := range topo.Hosts() {
		st := NewStack(sim, h.ID, Config{})
		r.stacks[h.ID] = st
		sim.SetReceiver(h.ID, st)
	}
	return r
}

func (r *rig) flow(src, dst *topology.Host, port uint16) types.FlowID {
	return types.FlowID{SrcIP: src.IP, DstIP: dst.IP, SrcPort: port, DstPort: 80, Proto: types.ProtoTCP}
}

func TestFlowCompletesOnHealthyFabric(t *testing.T) {
	r := newRig(t, netsim.Config{})
	src := r.sim.Topo.Hosts()[0]
	dst := r.sim.Topo.HostsAt(r.sim.Topo.ToRID(2, 0))[0]
	f := r.flow(src, dst, 2000)
	var finished *Sender
	// 100 KB stays within the bottleneck queue during slow start: no loss.
	r.stacks[src.ID].StartFlow(f, 100_000, 0, func(s *Sender) { finished = s })
	r.sim.RunAll()
	if finished == nil {
		t.Fatal("flow did not complete")
	}
	if finished.TotalRetrans != 0 {
		t.Errorf("retransmissions on a healthy fabric: %d", finished.TotalRetrans)
	}
	ep := r.stacks[dst.ID].Endpoint(f)
	if ep == nil || !ep.Complete {
		t.Fatal("endpoint did not complete")
	}
	// Goodput must be positive and below line rate.
	bps := finished.ThroughputBps()
	if bps <= 0 || bps > 1e9 {
		t.Errorf("throughput = %.0f bps", bps)
	}
	if finished.Duration() <= 0 {
		t.Error("non-positive duration")
	}
}

func TestLargeFlowSurvivesSlowStartOvershoot(t *testing.T) {
	// A 1 MB flow overshoots the drop-tail queue in slow start; TCP must
	// recover and complete with a clean consecutive-retransmit counter.
	r := newRig(t, netsim.Config{})
	src := r.sim.Topo.Hosts()[0]
	dst := r.sim.Topo.HostsAt(r.sim.Topo.ToRID(2, 0))[0]
	var finished *Sender
	r.stacks[src.ID].StartFlow(r.flow(src, dst, 2010), 1_000_000, 0, func(s *Sender) { finished = s })
	r.sim.RunAll()
	if finished == nil {
		t.Fatal("flow did not complete")
	}
	if finished.ConsecRetrans != 0 {
		t.Errorf("ConsecRetrans = %d at completion", finished.ConsecRetrans)
	}
	if ep := r.stacks[dst.ID].Endpoint(r.flow(src, dst, 2010)); ep == nil || !ep.Complete {
		t.Error("endpoint incomplete")
	}
}

func TestFlowSurvivesRandomLoss(t *testing.T) {
	r := newRig(t, netsim.Config{Seed: 17})
	src := r.sim.Topo.Hosts()[0]
	dst := r.sim.Topo.HostsAt(r.sim.Topo.ToRID(1, 0))[0]
	f := r.flow(src, dst, 2001)

	// Probe the path, then set 5% silent loss on its first switch link.
	var done *Sender
	r.stacks[src.ID].StartFlow(f, 50_000, 0, func(s *Sender) { done = s })
	r.sim.RunAll()
	if done == nil {
		t.Fatal("probe flow did not finish")
	}
	ep := r.stacks[dst.ID].Endpoint(f)
	_ = ep
	// Find the traversed agg via a fresh probe packet trace: reuse the
	// flow's first recorded trace through stats — simpler: fault both
	// uplink directions of the source ToR at 5%.
	r.sim.SetSilentDrop(src.ToR, r.sim.Topo.AggID(0, 0), 0.05)
	r.sim.SetSilentDrop(src.ToR, r.sim.Topo.AggID(0, 1), 0.05)

	f2 := r.flow(src, dst, 2002)
	var done2 *Sender
	r.stacks[src.ID].StartFlow(f2, 500_000, 0, func(s *Sender) { done2 = s })
	r.sim.RunAll()
	if done2 == nil {
		t.Fatal("flow did not complete under 5% loss")
	}
	if done2.TotalRetrans == 0 {
		t.Error("expected retransmissions under 5% loss")
	}
	if r.sim.Stats().SilentDrops() == 0 {
		t.Error("no silent drops recorded")
	}
}

func TestPoorFlowsUnderBlackhole(t *testing.T) {
	r := newRig(t, netsim.Config{Seed: 23})
	src := r.sim.Topo.Hosts()[0]
	dst := r.sim.Topo.HostsAt(r.sim.Topo.ToRID(1, 1))[0]
	f := r.flow(src, dst, 2100)
	// Blackhole both uplinks: every data packet dies silently.
	r.sim.SetBlackhole(src.ToR, r.sim.Topo.AggID(0, 0), true)
	r.sim.SetBlackhole(src.ToR, r.sim.Topo.AggID(0, 1), true)
	r.stacks[src.ID].StartFlow(f, 100_000, 0, nil)
	// Let several RTOs fire.
	r.sim.Run(3 * types.Second)
	poor := r.stacks[src.ID].PoorFlows(2)
	if len(poor) != 1 || poor[0] != f {
		t.Fatalf("PoorFlows = %v, want [%v]", poor, f)
	}
	snd := r.stacks[src.ID].Sender(f)
	if snd.Finished {
		t.Error("flow cannot finish through a blackhole")
	}
	if snd.ConsecRetrans < 2 {
		t.Errorf("ConsecRetrans = %d", snd.ConsecRetrans)
	}
	r.stacks[src.ID].Forget(f)
	if len(r.stacks[src.ID].PoorFlows(2)) != 0 {
		t.Error("Forget did not clear the sender")
	}
}

func TestConsecRetransResetsOnProgress(t *testing.T) {
	r := newRig(t, netsim.Config{Seed: 31})
	src := r.sim.Topo.Hosts()[0]
	dst := r.sim.Topo.HostsAt(r.sim.Topo.ToRID(1, 0))[0]
	// Moderate loss: retransmissions happen but progress resumes, so the
	// consecutive counter must return to zero by completion.
	r.sim.SetSilentDrop(src.ToR, r.sim.Topo.AggID(0, 0), 0.03)
	r.sim.SetSilentDrop(src.ToR, r.sim.Topo.AggID(0, 1), 0.03)
	f := r.flow(src, dst, 2200)
	var done *Sender
	r.stacks[src.ID].StartFlow(f, 300_000, 0, func(s *Sender) { done = s })
	r.sim.RunAll()
	if done == nil {
		t.Fatal("flow did not complete")
	}
	if done.ConsecRetrans != 0 {
		t.Errorf("ConsecRetrans = %d after completion, want 0", done.ConsecRetrans)
	}
	if done.TotalRetrans == 0 {
		t.Error("expected some retransmissions at 3% loss")
	}
}

func TestManyParallelFlowsConserveBytes(t *testing.T) {
	r := newRig(t, netsim.Config{Seed: 41})
	hosts := r.sim.Topo.Hosts()
	finished := 0
	n := 24
	for i := 0; i < n; i++ {
		src := hosts[i%len(hosts)]
		dst := hosts[(i*5+3)%len(hosts)]
		if src.ID == dst.ID {
			dst = hosts[(i*5+4)%len(hosts)]
		}
		f := r.flow(src, dst, uint16(3000+i))
		r.stacks[src.ID].StartFlow(f, int64(10_000+i*1000), 0, func(*Sender) { finished++ })
	}
	r.sim.RunAll()
	if finished != n {
		t.Fatalf("finished %d of %d flows", finished, n)
	}
	// Every endpoint saw at least its payload bytes.
	for _, st := range r.stacks {
		for _, ep := range st.Endpoints() {
			if ep.Bytes == 0 || !ep.Complete {
				t.Errorf("incomplete endpoint %v", ep.Flow)
			}
		}
	}
}

func TestSharedBottleneckIsRoughlyFair(t *testing.T) {
	r := newRig(t, netsim.Config{Seed: 51, BandwidthBps: 50e6})
	// Two senders on different source ToRs to the same destination host:
	// they share the ToR→host link.
	srcA := r.sim.Topo.HostsAt(r.sim.Topo.ToRID(1, 0))[0]
	srcB := r.sim.Topo.HostsAt(r.sim.Topo.ToRID(1, 1))[0]
	dst := r.sim.Topo.HostsAt(r.sim.Topo.ToRID(0, 0))[0]
	var da, db *Sender
	r.stacks[srcA.ID].StartFlow(r.flow(srcA, dst, 4000), 2_000_000, 0, func(s *Sender) { da = s })
	r.stacks[srcB.ID].StartFlow(r.flow(srcB, dst, 4001), 2_000_000, 0, func(s *Sender) { db = s })
	r.sim.RunAll()
	if da == nil || db == nil {
		t.Fatal("flows did not complete")
	}
	ta, tb := da.ThroughputBps(), db.ThroughputBps()
	ratio := ta / tb
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("gross unfairness on a symmetric bottleneck: %.0f vs %.0f bps", ta, tb)
	}
}

func TestTinyFlowAndZeroByteFlow(t *testing.T) {
	r := newRig(t, netsim.Config{})
	src := r.sim.Topo.Hosts()[0]
	dst := r.sim.Topo.HostsAt(r.sim.Topo.ToRID(0, 1))[0]
	var n int
	r.stacks[src.ID].StartFlow(r.flow(src, dst, 5000), 1, 0, func(*Sender) { n++ })
	r.stacks[src.ID].StartFlow(r.flow(src, dst, 5001), 0, 0, func(*Sender) { n++ })
	r.stacks[src.ID].StartFlow(r.flow(src, dst, 5002), 1460, 0, func(*Sender) { n++ })
	r.sim.RunAll()
	if n != 3 {
		t.Fatalf("completed %d of 3 degenerate flows", n)
	}
}
