// Package tcp is a compact TCP model (slow start, congestion avoidance,
// fast retransmit, retransmission timeouts) running over the netsim
// fabric. It exists because PathDump's active monitoring consumes TCP
// retransmission signals (the paper uses perf-tools' tcpretrans): silent
// drop localisation (§4.3), blackhole diagnosis (§4.4) and the
// outcast/incast analyses (§4.6) are all driven by flows that retransmit,
// stall, or lose throughput under contention.
package tcp

import (
	"sort"

	"pathdump/internal/netsim"
	"pathdump/internal/types"
)

// Config parameterises the TCP model. Zero values select defaults.
type Config struct {
	// MSS is the maximum segment size (default 1460 bytes payload; the
	// wire size adds 40 bytes of headers).
	MSS int
	// HeaderBytes is the per-packet header overhead (default 40).
	HeaderBytes int
	// AckBytes is the wire size of an ACK (default 64).
	AckBytes int
	// InitCwnd is the initial congestion window in segments (default 4).
	InitCwnd float64
	// MinRTO is the minimum retransmission timeout (default 200 ms, the
	// paper's monitoring period is tied to it).
	MinRTO types.Time
	// MaxRTO caps exponential backoff (default 1 s).
	MaxRTO types.Time
	// MaxCwnd caps window growth in segments (default 512).
	MaxCwnd float64
}

func (c Config) withDefaults() Config {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.HeaderBytes == 0 {
		c.HeaderBytes = 40
	}
	if c.AckBytes == 0 {
		c.AckBytes = 64
	}
	if c.InitCwnd == 0 {
		c.InitCwnd = 4
	}
	if c.MinRTO == 0 {
		c.MinRTO = 200 * types.Millisecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = types.Second
	}
	if c.MaxCwnd == 0 {
		c.MaxCwnd = 512
	}
	return c
}

// Stack is the per-host TCP state: active senders keyed by their forward
// flow and receive endpoints keyed by the incoming flow. It implements the
// upper-stack side of the edge datapath: the PathDump agent strips
// trajectory tags and hands packets here.
type Stack struct {
	sim  *netsim.Sim
	host types.HostID
	cfg  Config

	senders   map[types.FlowID]*Sender
	endpoints map[types.FlowID]*Endpoint
}

// NewStack builds the TCP stack for one host.
func NewStack(sim *netsim.Sim, host types.HostID, cfg Config) *Stack {
	return &Stack{
		sim:       sim,
		host:      host,
		cfg:       cfg.withDefaults(),
		senders:   make(map[types.FlowID]*Sender),
		endpoints: make(map[types.FlowID]*Endpoint),
	}
}

// Host returns the owning host ID.
func (st *Stack) Host() types.HostID { return st.host }

// Receive dispatches an incoming packet: ACKs to the matching sender,
// data to the (auto-created) receive endpoint.
func (st *Stack) Receive(pkt *netsim.Packet) {
	if pkt.Ack {
		if snd, ok := st.senders[pkt.Flow.Reverse()]; ok {
			snd.onAck(pkt.Seq)
		}
		return
	}
	ep := st.endpoints[pkt.Flow]
	if ep == nil {
		ep = newEndpoint(st, pkt.Flow)
		st.endpoints[pkt.Flow] = ep
	}
	ep.onData(pkt)
}

// StartFlow opens a TCP flow of totalBytes from this host. meta is carried
// in every packet's Meta field (the load-imbalance experiment stores the
// flow size there so a misconfigured switch can split on it). done, if
// non-nil, fires when the last byte is acknowledged.
func (st *Stack) StartFlow(f types.FlowID, totalBytes int64, meta int64, done func(*Sender)) *Sender {
	snd := newSender(st, f, totalBytes, meta, done)
	st.senders[f] = snd
	snd.start()
	return snd
}

// Sender returns the sender for flow f, or nil.
func (st *Stack) Sender(f types.FlowID) *Sender { return st.senders[f] }

// Endpoint returns the receive endpoint for incoming flow f, or nil.
func (st *Stack) Endpoint(f types.FlowID) *Endpoint { return st.endpoints[f] }

// Endpoints lists receive endpoints in deterministic order.
func (st *Stack) Endpoints() []*Endpoint {
	out := make([]*Endpoint, 0, len(st.endpoints))
	for _, ep := range st.endpoints {
		out = append(out, ep)
	}
	sort.Slice(out, func(i, j int) bool { return flowLess(out[i].Flow, out[j].Flow) })
	return out
}

// PoorFlows returns flows suffering retransmissions — the signal behind
// getPoorTCPFlows() (§2.1). Mirroring the paper's tcpretrans-based
// monitor, a flow is poor when it retransmitted at least threshold times
// since the previous scan (retransmission frequency over the monitoring
// interval) or is stuck retransmitting the same data threshold times in a
// row. Each call advances the scan window for every sender.
func (st *Stack) PoorFlows(threshold int) []types.FlowID {
	var out []types.FlowID
	for f, snd := range st.senders {
		delta := snd.TotalRetrans - snd.scannedRetrans
		snd.scannedRetrans = snd.TotalRetrans
		if delta >= threshold || snd.ConsecRetrans >= threshold {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return flowLess(out[i], out[j]) })
	return out
}

// Forget drops a finished sender's state (after the monitor has reported it).
func (st *Stack) Forget(f types.FlowID) { delete(st.senders, f) }

// InjectPoorFlow registers an inert sender stuck at the given
// consecutive-retransmission count — fault injection for end-to-end
// tests of the monitoring path: the flow sends nothing, but every
// PoorFlows scan at or below that threshold reports it, exactly like a
// wedged real flow retransmitting the same segment forever.
func (st *Stack) InjectPoorFlow(f types.FlowID, retrans int) {
	snd := newSender(st, f, 0, 0, nil)
	snd.ConsecRetrans = retrans
	st.senders[f] = snd
}

func flowLess(a, b types.FlowID) bool {
	if a.SrcIP != b.SrcIP {
		return a.SrcIP < b.SrcIP
	}
	if a.DstIP != b.DstIP {
		return a.DstIP < b.DstIP
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	return a.Proto < b.Proto
}
