package tcp

import (
	"pathdump/internal/netsim"
	"pathdump/internal/types"
)

// Endpoint is the receive side of one incoming TCP flow: it tracks
// in-order delivery, buffers out-of-order segments, and emits cumulative
// (and duplicate) ACKs back through the fabric.
type Endpoint struct {
	stack *Stack
	cfg   Config

	Flow types.FlowID

	expected uint64
	ooo      map[uint64]bool

	// Receive-side statistics used by the outcast/incast diagnosis.
	Bytes    uint64
	Pkts     uint64
	FirstAt  types.Time
	LastAt   types.Time
	GotFin   bool
	finSeq   uint64
	Complete bool
}

func newEndpoint(st *Stack, f types.FlowID) *Endpoint {
	return &Endpoint{stack: st, cfg: st.cfg, Flow: f, ooo: make(map[uint64]bool)}
}

// onData processes one data segment and responds with a cumulative ACK.
func (e *Endpoint) onData(pkt *netsim.Packet) {
	now := e.stack.sim.Now()
	if e.Pkts == 0 {
		e.FirstAt = now
	}
	e.LastAt = now
	e.Pkts++
	e.Bytes += uint64(pkt.Size)
	if pkt.Fin {
		e.GotFin = true
		e.finSeq = pkt.Seq
	}
	switch {
	case pkt.Seq == e.expected:
		e.expected++
		for e.ooo[e.expected] {
			delete(e.ooo, e.expected)
			e.expected++
		}
	case pkt.Seq > e.expected:
		e.ooo[pkt.Seq] = true
	}
	if e.GotFin && e.expected > e.finSeq {
		e.Complete = true
	}
	ack := &netsim.Packet{
		Flow: e.Flow.Reverse(),
		Seq:  e.expected,
		Size: e.cfg.AckBytes,
		Ack:  true,
	}
	_ = e.stack.sim.Send(e.stack.host, ack)
}

// ThroughputBps returns the receive goodput over the endpoint's active
// window, in bits per second.
func (e *Endpoint) ThroughputBps() float64 {
	d := e.LastAt - e.FirstAt
	if d <= 0 {
		return 0
	}
	return float64(e.Bytes) * 8 / d.Seconds()
}
