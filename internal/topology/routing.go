package topology

import (
	"pathdump/internal/types"
)

// Router computes canonical shortest-path forwarding over a topology.
// It returns, per switch, the set of equal-cost next hops a packet for a
// given destination may take; the simulator's switches pick among them with
// ECMP hashing or per-packet spraying and fall back to any live neighbour
// when every canonical choice is down (the paper's "simple failover
// mechanism ... with a few flow rules", §4.1).
type Router struct {
	T *Topology
}

// NewRouter returns a Router over t.
func NewRouter(t *Topology) *Router { return &Router{T: t} }

// NextHops returns the canonical equal-cost next hops from sw toward dst.
// A nil result with deliver==true means the packet has reached the
// destination's ToR and should be handed to the host.
func (r *Router) NextHops(sw types.SwitchID, dst types.IP) (hops []types.SwitchID, deliver bool) {
	dstHost := r.T.HostByIP(dst)
	if dstHost == nil {
		return nil, false
	}
	s := r.T.Switch(sw)
	if s == nil {
		return nil, false
	}
	if s.ID == dstHost.ToR {
		return nil, true
	}
	switch r.T.Kind {
	case FatTreeKind:
		return r.fatTreeNextHops(s, dstHost), false
	case VL2Kind:
		return r.vl2NextHops(s, dstHost), false
	}
	return nil, false
}

func (r *Router) fatTreeNextHops(s *Switch, dst *Host) []types.SwitchID {
	t := r.T
	dstToR := t.Switch(dst.ToR)
	switch s.Layer {
	case LayerToR:
		// Up to any aggregation switch in the pod.
		return s.Up
	case LayerAgg:
		if s.Pod == dst.Pod {
			return []types.SwitchID{dst.ToR}
		}
		return s.Up
	case LayerCore:
		// Single deterministic route down: the aggregation switch in
		// the destination pod within this core's group.
		j := t.CoreGroup(s.Index)
		return []types.SwitchID{t.AggID(dst.Pod, j)}
	}
	_ = dstToR
	return nil
}

func (r *Router) vl2NextHops(s *Switch, dst *Host) []types.SwitchID {
	t := r.T
	switch s.Layer {
	case LayerToR:
		return s.Up
	case LayerAgg:
		if s.Pod == dst.Pod {
			return []types.SwitchID{dst.ToR}
		}
		return s.Up
	case LayerCore:
		// Down to either aggregation switch serving the destination group.
		g := dst.Pod
		return []types.SwitchID{t.VL2AggID(2 * g), t.VL2AggID(2*g + 1)}
	}
	return nil
}

// fnv1a32 hashes b with FNV-1a and applies a murmur-style finaliser.
// The avalanche step matters: raw FNV-1a taken mod 2 degenerates to a
// parity function, which would linearly correlate the ECMP/spray choices
// made at successive switches and collapse the equal-cost path set.
func fnv1a32(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	h ^= h >> 16
	h *= 0x7feb352d
	h ^= h >> 15
	h *= 0x846ca68b
	h ^= h >> 16
	return h
}

// flowBytes serialises the five-tuple for hashing.
func flowBytes(f types.FlowID, extra uint64) [21]byte {
	var b [21]byte
	b[0] = byte(f.SrcIP >> 24)
	b[1] = byte(f.SrcIP >> 16)
	b[2] = byte(f.SrcIP >> 8)
	b[3] = byte(f.SrcIP)
	b[4] = byte(f.DstIP >> 24)
	b[5] = byte(f.DstIP >> 16)
	b[6] = byte(f.DstIP >> 8)
	b[7] = byte(f.DstIP)
	b[8] = byte(f.SrcPort >> 8)
	b[9] = byte(f.SrcPort)
	b[10] = byte(f.DstPort >> 8)
	b[11] = byte(f.DstPort)
	b[12] = f.Proto
	for i := 0; i < 8; i++ {
		b[13+i] = byte(extra >> (8 * i))
	}
	return b
}

// ECMPIndex returns the equal-cost path index a switch with the given salt
// picks for flow f among n choices. Every packet of a flow hashes to the
// same index (flow-level ECMP).
func ECMPIndex(f types.FlowID, salt uint32, n int) int {
	if n <= 1 {
		return 0
	}
	b := flowBytes(f, uint64(salt))
	return int(fnv1a32(b[:]) % uint32(n))
}

// SprayIndex returns the per-packet choice under packet spraying [15]:
// the sequence number participates in the hash so consecutive packets of a
// flow spread across all n choices.
func SprayIndex(f types.FlowID, seq uint64, salt uint32, n int) int {
	if n <= 1 {
		return 0
	}
	b := flowBytes(f, seq<<16|uint64(salt&0xFFFF))
	return int(fnv1a32(b[:]) % uint32(n))
}

// EqualCostPaths enumerates every canonical shortest path between the ToRs
// of src and dst (useful for tests and for the blackhole-diagnosis
// application's path join, §4.4).
func (r *Router) EqualCostPaths(src, dst types.IP) []types.Path {
	srcToR := r.T.ToROf(src)
	dstToR := r.T.ToROf(dst)
	if srcToR.IsWildcard() || dstToR.IsWildcard() {
		return nil
	}
	if srcToR == dstToR {
		return []types.Path{{srcToR}}
	}
	var out []types.Path
	var walk func(cur types.SwitchID, acc types.Path)
	walk = func(cur types.SwitchID, acc types.Path) {
		acc = append(acc, cur)
		if cur == dstToR {
			out = append(out, acc.Clone())
			return
		}
		hops, deliver := r.NextHops(cur, dst)
		if deliver {
			out = append(out, acc.Clone())
			return
		}
		for _, h := range hops {
			walk(h, acc)
		}
	}
	walk(srcToR, nil)
	return out
}
