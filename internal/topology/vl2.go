package topology

import (
	"fmt"

	"pathdump/internal/types"
)

// VL2 builds a VL2 Clos topology with dA-port aggregation switches and
// dI-port intermediate switches:
//
//   - dA/2 intermediate switches, each connected to every aggregation switch;
//   - dI aggregation switches, each using dA/2 ports up (to every
//     intermediate) and dA/2 ports down (to ToRs);
//   - dI·dA/4 ToR switches, each dual-homed to one aggregation *pair*
//     (aggs 2g and 2g+1 serve ToR group g);
//   - hostsPerToR servers per ToR.
//
// Switch IDs: ToR r → r; Agg a → nToR + a; Intermediate i → nToR + dI + i.
// Host IPs are 10.(r»8).(r&0xFF).(2+i).
func VL2(dA, dI, hostsPerToR int) (*Topology, error) {
	if dA < 4 || dA%2 != 0 {
		return nil, fmt.Errorf("topology: VL2 dA must be even and ≥4, got %d", dA)
	}
	if dI < 2 || dI%2 != 0 {
		return nil, fmt.Errorf("topology: VL2 dI must be even and ≥2, got %d", dI)
	}
	if hostsPerToR < 1 || hostsPerToR > 250 {
		return nil, fmt.Errorf("topology: hostsPerToR out of range: %d", hostsPerToR)
	}
	nInt := dA / 2
	nAgg := dI
	nToR := dI * dA / 4
	if nToR > 1<<16 {
		return nil, fmt.Errorf("topology: VL2(%d,%d) exceeds addressing limits", dA, dI)
	}
	t := newTopology(VL2Kind)
	t.DA, t.DI = dA, dI

	for i := 0; i < nInt; i++ {
		t.addSwitch(&Switch{ID: t.IntID(i), Layer: LayerCore, Pod: -1, Index: i})
	}
	for a := 0; a < nAgg; a++ {
		agg := &Switch{ID: t.VL2AggID(a), Layer: LayerAgg, Pod: a / 2, Index: a}
		for i := 0; i < nInt; i++ {
			agg.Up = append(agg.Up, t.IntID(i))
			in := t.switches[t.IntID(i)]
			in.Down = append(in.Down, agg.ID)
		}
		t.addSwitch(agg)
	}
	for r := 0; r < nToR; r++ {
		g := r / (dA / 2) // ToR group served by agg pair (2g, 2g+1)
		tor := &Switch{ID: t.VL2ToRID(r), Layer: LayerToR, Pod: g, Index: r}
		for _, a := range []int{2 * g, 2*g + 1} {
			tor.Up = append(tor.Up, t.VL2AggID(a))
			agg := t.switches[t.VL2AggID(a)]
			agg.Down = append(agg.Down, tor.ID)
		}
		t.addSwitch(tor)
		for i := 0; i < hostsPerToR; i++ {
			hid := types.HostID(uint32(r)*uint32(hostsPerToR) + uint32(i))
			ip := types.IP(0x0A000000 | uint32(r)<<8 | uint32(i+2))
			t.addHost(&Host{ID: hid, IP: ip, ToR: tor.ID, Pod: g})
		}
	}
	return t, nil
}

// VL2ToRID returns the switch ID of ToR index r in a VL2 topology.
func (t *Topology) VL2ToRID(r int) types.SwitchID { return types.SwitchID(r) }

// VL2AggID returns the switch ID of aggregation switch index a.
func (t *Topology) VL2AggID(a int) types.SwitchID {
	return types.SwitchID(t.DI*t.DA/4 + a)
}

// IntID returns the switch ID of intermediate switch index i.
func (t *Topology) IntID(i int) types.SwitchID {
	return types.SwitchID(t.DI*t.DA/4 + t.DI + i)
}
