package topology

import (
	"testing"

	"pathdump/internal/types"
)

func TestFatTreeCounts(t *testing.T) {
	for _, k := range []int{4, 6, 8, 16} {
		ft, err := FatTree(k)
		if err != nil {
			t.Fatalf("FatTree(%d): %v", k, err)
		}
		half := k / 2
		if got := len(ft.ToRs()); got != k*half {
			t.Errorf("k=%d: ToRs = %d, want %d", k, got, k*half)
		}
		if got := len(ft.Aggs()); got != k*half {
			t.Errorf("k=%d: Aggs = %d, want %d", k, got, k*half)
		}
		if got := len(ft.Cores()); got != half*half {
			t.Errorf("k=%d: Cores = %d, want %d", k, got, half*half)
		}
		if got := len(ft.Hosts()); got != k*k*k/4 {
			t.Errorf("k=%d: hosts = %d, want %d", k, got, k*k*k/4)
		}
	}
}

func TestFatTreeRejectsBadArity(t *testing.T) {
	for _, k := range []int{0, 1, 3, 5, 128} {
		if _, err := FatTree(k); err == nil {
			t.Errorf("FatTree(%d) should fail", k)
		}
	}
}

func TestFatTreeWiring(t *testing.T) {
	ft, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	// Every ToR has k/2 up and 0 switch down; aggs k/2 up, k/2 down;
	// cores 0 up, k down.
	for _, id := range ft.ToRs() {
		s := ft.Switch(id)
		if len(s.Up) != 2 || len(s.Down) != 0 {
			t.Errorf("ToR %v: up=%d down=%d", id, len(s.Up), len(s.Down))
		}
	}
	for _, id := range ft.Aggs() {
		s := ft.Switch(id)
		if len(s.Up) != 2 || len(s.Down) != 2 {
			t.Errorf("agg %v: up=%d down=%d", id, len(s.Up), len(s.Down))
		}
	}
	for _, id := range ft.Cores() {
		s := ft.Switch(id)
		if len(s.Up) != 0 || len(s.Down) != 4 {
			t.Errorf("core %v: up=%d down=%d", id, len(s.Up), len(s.Down))
		}
	}
	// Core c connects to the agg at position CoreGroup(c) in every pod.
	for c := 0; c < ft.NumCores(); c++ {
		j := ft.CoreGroup(c)
		core := ft.Switch(ft.CoreID(c))
		seen := map[types.SwitchID]bool{}
		for _, a := range core.Down {
			seen[a] = true
		}
		for p := 0; p < 4; p++ {
			if !seen[ft.AggID(p, j)] {
				t.Errorf("core %d missing agg(%d,%d)", c, p, j)
			}
		}
	}
}

func TestFatTreeHostAddressing(t *testing.T) {
	ft, _ := FatTree(4)
	seenIP := map[types.IP]bool{}
	for _, h := range ft.Hosts() {
		if seenIP[h.IP] {
			t.Fatalf("duplicate IP %v", h.IP)
		}
		seenIP[h.IP] = true
		if got := ft.HostByIP(h.IP); got != h {
			t.Fatalf("HostByIP(%v) mismatch", h.IP)
		}
		if got := ft.ToROf(h.IP); got != h.ToR {
			t.Fatalf("ToROf(%v) = %v, want %v", h.IP, got, h.ToR)
		}
		if len(ft.HostsAt(h.ToR)) != 2 {
			t.Fatalf("HostsAt(%v) = %d hosts", h.ToR, len(ft.HostsAt(h.ToR)))
		}
	}
	if ft.ToROf(types.IP(1)) != types.WildcardSwitch {
		t.Error("unknown IP should map to wildcard ToR")
	}
}

func TestVL2Counts(t *testing.T) {
	v, err := VL2(8, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(v.Cores()); got != 4 { // dA/2
		t.Errorf("intermediates = %d, want 4", got)
	}
	if got := len(v.Aggs()); got != 6 { // dI
		t.Errorf("aggs = %d, want 6", got)
	}
	if got := len(v.ToRs()); got != 12 { // dI*dA/4
		t.Errorf("ToRs = %d, want 12", got)
	}
	if got := len(v.Hosts()); got != 36 {
		t.Errorf("hosts = %d, want 36", got)
	}
	// Each ToR dual-homed; each agg fully meshed upward.
	for _, id := range v.ToRs() {
		if got := len(v.Switch(id).Up); got != 2 {
			t.Errorf("ToR %v up = %d, want 2", id, got)
		}
	}
	for _, id := range v.Aggs() {
		s := v.Switch(id)
		if len(s.Up) != 4 {
			t.Errorf("agg %v up = %d, want 4", id, len(s.Up))
		}
		if len(s.Down) != 4 { // dA/2 ToR ports
			t.Errorf("agg %v down = %d, want 4", id, len(s.Down))
		}
	}
}

func TestVL2Validation(t *testing.T) {
	if _, err := VL2(3, 6, 3); err == nil {
		t.Error("odd dA should fail")
	}
	if _, err := VL2(8, 3, 3); err == nil {
		t.Error("odd dI should fail")
	}
	if _, err := VL2(8, 6, 0); err == nil {
		t.Error("zero hosts should fail")
	}
}

func TestAdjacentAndLinks(t *testing.T) {
	ft, _ := FatTree(4)
	a := ft.ToRID(0, 0)
	b := ft.AggID(0, 0)
	if !ft.Adjacent(a, b) || !ft.Adjacent(b, a) {
		t.Error("ToR-agg adjacency missing")
	}
	if ft.Adjacent(a, ft.CoreID(0)) {
		t.Error("ToR adjacent to core?")
	}
	links := ft.Links()
	// 4-ary fat tree: ToR-agg links = 8 ToRs * 2 = 16; agg-core = 8 aggs * 2 = 16.
	if len(links) != 32 {
		t.Errorf("links = %d, want 32", len(links))
	}
	seen := map[types.LinkID]bool{}
	for _, l := range links {
		if seen[l] {
			t.Errorf("duplicate link %v", l)
		}
		seen[l] = true
	}
}

func TestValidTrajectory(t *testing.T) {
	ft, _ := FatTree(4)
	src := ft.Hosts()[0]
	dst := ft.Hosts()[len(ft.Hosts())-1]
	good := types.Path{src.ToR, ft.AggID(src.Pod, 0), ft.CoreID(0), ft.AggID(dst.Pod, 0), dst.ToR}
	if err := ft.ValidTrajectory(src.IP, dst.IP, good); err != nil {
		t.Errorf("good path rejected: %v", err)
	}
	bad := types.Path{src.ToR, ft.CoreID(0), dst.ToR}
	if err := ft.ValidTrajectory(src.IP, dst.IP, bad); err == nil {
		t.Error("non-adjacent path accepted")
	}
	wrongStart := types.Path{ft.ToRID(1, 0), ft.AggID(1, 0), ft.CoreID(0), ft.AggID(dst.Pod, 0), dst.ToR}
	if err := ft.ValidTrajectory(src.IP, dst.IP, wrongStart); err == nil {
		t.Error("wrong source ToR accepted")
	}
	if err := ft.ValidTrajectory(src.IP, dst.IP, nil); err == nil {
		t.Error("empty path accepted")
	}
	// Unknown switch ID inside the path.
	unknown := types.Path{src.ToR, types.SwitchID(9999), ft.CoreID(0), ft.AggID(dst.Pod, 0), dst.ToR}
	if err := ft.ValidTrajectory(src.IP, dst.IP, unknown); err == nil {
		t.Error("unknown switch accepted")
	}
}

func TestShortestLen(t *testing.T) {
	ft, _ := FatTree(4)
	if got := ft.ShortestLen(ft.ToRID(0, 0), ft.ToRID(0, 0)); got != 0 {
		t.Errorf("self distance = %d", got)
	}
	if got := ft.ShortestLen(ft.ToRID(0, 0), ft.ToRID(0, 1)); got != 2 {
		t.Errorf("intra-pod ToR distance = %d, want 2", got)
	}
	if got := ft.ShortestLen(ft.ToRID(0, 0), ft.ToRID(1, 0)); got != 4 {
		t.Errorf("inter-pod ToR distance = %d, want 4", got)
	}
}

func TestFatTreeNextHops(t *testing.T) {
	ft, _ := FatTree(4)
	r := NewRouter(ft)
	src := ft.Hosts()[0]     // pod 0, ToR 0
	dstSame := ft.Hosts()[1] // same ToR
	dstPod := ft.HostsAt(ft.ToRID(0, 1))[0]
	dstFar := ft.HostsAt(ft.ToRID(2, 1))[0]

	if _, deliver := r.NextHops(src.ToR, dstSame.IP); !deliver {
		t.Error("same-ToR destination should deliver")
	}
	hops, deliver := r.NextHops(src.ToR, dstPod.IP)
	if deliver || len(hops) != 2 {
		t.Errorf("ToR→agg choices = %v deliver=%v", hops, deliver)
	}
	// Agg in source pod toward remote pod: all cores.
	hops, _ = r.NextHops(ft.AggID(0, 1), dstFar.IP)
	if len(hops) != 2 {
		t.Errorf("agg up choices = %v", hops)
	}
	// Core: unique downward hop into destination pod at its group position.
	hops, _ = r.NextHops(ft.CoreID(3), dstFar.IP)
	if len(hops) != 1 || hops[0] != ft.AggID(2, 1) {
		t.Errorf("core down = %v, want agg(2,1)", hops)
	}
	// Agg in destination pod: straight down to the ToR.
	hops, _ = r.NextHops(ft.AggID(2, 0), dstFar.IP)
	if len(hops) != 1 || hops[0] != dstFar.ToR {
		t.Errorf("agg down = %v", hops)
	}
	// Unknown destination yields nothing.
	if hops, deliver := r.NextHops(src.ToR, types.IP(12345)); hops != nil || deliver {
		t.Error("unknown destination should return nothing")
	}
}

func TestVL2NextHops(t *testing.T) {
	v, _ := VL2(8, 6, 2)
	r := NewRouter(v)
	src := v.Hosts()[0]
	// Destination in a different ToR group.
	var dst *Host
	for _, h := range v.Hosts() {
		if h.Pod != src.Pod {
			dst = h
			break
		}
	}
	if dst == nil {
		t.Fatal("no remote host found")
	}
	hops, deliver := r.NextHops(src.ToR, dst.IP)
	if deliver || len(hops) != 2 {
		t.Errorf("ToR up = %v", hops)
	}
	agg := hops[0]
	hops, _ = r.NextHops(agg, dst.IP)
	if len(hops) != 4 { // all intermediates
		t.Errorf("agg up = %v", hops)
	}
	in := hops[0]
	hops, _ = r.NextHops(in, dst.IP)
	if len(hops) != 2 {
		t.Errorf("intermediate down = %v, want both aggs of dst group", hops)
	}
	for _, a := range hops {
		if v.Switch(a).Pod != dst.Pod {
			t.Errorf("intermediate offered agg of wrong group: %v", a)
		}
	}
}

func TestECMPAndSprayIndex(t *testing.T) {
	f := types.FlowID{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	if ECMPIndex(f, 0, 1) != 0 || ECMPIndex(f, 0, 0) != 0 {
		t.Error("degenerate n should return 0")
	}
	// Deterministic per flow.
	if ECMPIndex(f, 7, 8) != ECMPIndex(f, 7, 8) {
		t.Error("ECMP not deterministic")
	}
	// Spray spreads across choices for a single flow.
	seen := map[int]bool{}
	for seq := uint64(0); seq < 64; seq++ {
		seen[SprayIndex(f, seq, 7, 4)] = true
	}
	if len(seen) != 4 {
		t.Errorf("spray covered %d of 4 choices", len(seen))
	}
	// Different salts decorrelate switches (statistically: at least one
	// flow maps differently across 32 flows).
	diff := false
	for i := 0; i < 32; i++ {
		g := f
		g.SrcPort = uint16(1000 + i)
		if ECMPIndex(g, 1, 4) != ECMPIndex(g, 2, 4) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("salts do not decorrelate ECMP choices")
	}
}

func TestEqualCostPaths(t *testing.T) {
	ft, _ := FatTree(4)
	r := NewRouter(ft)
	src := ft.HostsAt(ft.ToRID(0, 0))[0]
	dstFar := ft.HostsAt(ft.ToRID(2, 1))[0]
	paths := r.EqualCostPaths(src.IP, dstFar.IP)
	if len(paths) != 4 { // 2 aggs × 2 cores each
		t.Fatalf("inter-pod equal-cost paths = %d, want 4", len(paths))
	}
	for _, p := range paths {
		if len(p) != 5 {
			t.Errorf("path %v length %d, want 5 switches", p, len(p))
		}
		if err := ft.ValidTrajectory(src.IP, dstFar.IP, p); err != nil {
			t.Errorf("invalid canonical path: %v", err)
		}
	}
	// Intra-pod: 2 equal-cost 3-switch paths.
	dstPod := ft.HostsAt(ft.ToRID(0, 1))[0]
	paths = r.EqualCostPaths(src.IP, dstPod.IP)
	if len(paths) != 2 {
		t.Fatalf("intra-pod equal-cost paths = %d, want 2", len(paths))
	}
	// Same ToR: single trivial path.
	same := ft.HostsAt(ft.ToRID(0, 0))[1]
	paths = r.EqualCostPaths(src.IP, same.IP)
	if len(paths) != 1 || len(paths[0]) != 1 {
		t.Fatalf("same-ToR paths = %v", paths)
	}
}
