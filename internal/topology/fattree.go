package topology

import (
	"fmt"

	"pathdump/internal/types"
)

// FatTree builds a k-ary fat-tree: k pods, each with k/2 ToR and k/2
// aggregation switches, and (k/2)² core switches. Every ToR hosts k/2
// servers, for k³/4 servers total.
//
// Wiring follows the standard construction: aggregation switch at position
// j of a pod connects to core switches j·(k/2) … j·(k/2)+k/2−1 (its "core
// group"), so core switch c attaches to the aggregation switch at position
// c/(k/2) in every pod. That structural property is what lets CherryPick
// reconstruct a 4-hop path from a single sampled aggregate-core link.
//
// Switch IDs are assigned statically:
//
//	ToR  (pod p, pos e): p·(k/2) + e
//	Agg  (pod p, pos j): k·(k/2) + p·(k/2) + j
//	Core (index c):      k² + c
//
// Host IPs are 10.pod.tor.(2+i).
func FatTree(k int) (*Topology, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fat-tree arity must be even and ≥2, got %d", k)
	}
	if k > 126 {
		return nil, fmt.Errorf("topology: fat-tree arity %d exceeds addressing limits", k)
	}
	t := newTopology(FatTreeKind)
	t.K = k
	half := k / 2

	// Core switches.
	for c := 0; c < half*half; c++ {
		t.addSwitch(&Switch{
			ID:    t.CoreID(c),
			Layer: LayerCore,
			Pod:   -1,
			Index: c,
		})
	}
	// Pods.
	for p := 0; p < k; p++ {
		for j := 0; j < half; j++ {
			agg := &Switch{ID: t.AggID(p, j), Layer: LayerAgg, Pod: p, Index: j}
			for m := 0; m < half; m++ {
				c := j*half + m
				agg.Up = append(agg.Up, t.CoreID(c))
				core := t.switches[t.CoreID(c)]
				core.Down = append(core.Down, agg.ID)
			}
			t.addSwitch(agg)
		}
		for e := 0; e < half; e++ {
			tor := &Switch{ID: t.ToRID(p, e), Layer: LayerToR, Pod: p, Index: e}
			for j := 0; j < half; j++ {
				tor.Up = append(tor.Up, t.AggID(p, j))
				agg := t.switches[t.AggID(p, j)]
				agg.Down = append(agg.Down, tor.ID)
			}
			t.addSwitch(tor)
			for i := 0; i < half; i++ {
				hid := types.HostID(uint32(p)*uint32(half)*uint32(half) + uint32(e)*uint32(half) + uint32(i))
				ip := types.IP(0x0A000000 | uint32(p)<<16 | uint32(e)<<8 | uint32(i+2))
				t.addHost(&Host{ID: hid, IP: ip, ToR: tor.ID, Pod: p})
			}
		}
	}
	return t, nil
}

// ToRID returns the switch ID of the ToR at position e in pod p.
func (t *Topology) ToRID(p, e int) types.SwitchID {
	return types.SwitchID(p*(t.K/2) + e)
}

// AggID returns the switch ID of the aggregation switch at position j in
// pod p.
func (t *Topology) AggID(p, j int) types.SwitchID {
	return types.SwitchID(t.K*(t.K/2) + p*(t.K/2) + j)
}

// CoreID returns the switch ID of core switch index c.
func (t *Topology) CoreID(c int) types.SwitchID {
	return types.SwitchID(t.K*t.K + c)
}

// CoreGroup returns the aggregation position every pod uses to reach core
// index c: c / (k/2).
func (t *Topology) CoreGroup(c int) int { return c / (t.K / 2) }

// NumCores returns the number of core switches.
func (t *Topology) NumCores() int { return len(t.cores) }
