// Package topology builds and represents the datacenter network topologies
// PathDump supports: FatTree(k) and VL2(dA, dI). The topology object is the
// "ground truth" every edge device stores (§2.2): a static graph with
// statically assigned switch identifiers, used both by the simulator to
// forward packets and by the trajectory-construction module to rebuild
// end-to-end paths from sampled link IDs.
package topology

import (
	"fmt"

	"pathdump/internal/types"
)

// Layer is the tier a switch occupies.
type Layer uint8

// Switch tiers. VL2 "intermediate" switches use LayerCore.
const (
	LayerToR  Layer = iota // edge / top-of-rack
	LayerAgg               // aggregation
	LayerCore              // core (fat-tree) or intermediate (VL2)
)

// String renders the layer name.
func (l Layer) String() string {
	switch l {
	case LayerToR:
		return "tor"
	case LayerAgg:
		return "agg"
	case LayerCore:
		return "core"
	}
	return fmt.Sprintf("layer(%d)", uint8(l))
}

// Kind identifies the topology family.
type Kind uint8

// Supported topology families.
const (
	FatTreeKind Kind = iota
	VL2Kind
)

// String renders the kind.
func (k Kind) String() string {
	if k == FatTreeKind {
		return "fattree"
	}
	return "vl2"
}

// Switch is one network element.
type Switch struct {
	ID    types.SwitchID
	Layer Layer
	// Pod is the pod number for ToR and aggregation switches in a fat
	// tree; -1 for core/intermediate switches and for VL2 aggregates.
	Pod int
	// Index is the switch's position: within its pod and layer for
	// fat-tree ToR/agg switches, global within its layer otherwise.
	Index int
	// Up and Down are the neighbouring switch IDs one tier above and
	// below, in deterministic port order.
	Up   []types.SwitchID
	Down []types.SwitchID
}

// Ports returns the total number of switch-facing ports.
func (s *Switch) Ports() int { return len(s.Up) + len(s.Down) }

// Host is one end-host (edge device).
type Host struct {
	ID  types.HostID
	IP  types.IP
	ToR types.SwitchID
	Pod int
}

// Topology is an immutable datacenter network graph.
type Topology struct {
	Kind Kind

	// K is the fat-tree arity; zero for VL2.
	K int
	// DA, DI are the VL2 aggregate and intermediate port counts; zero
	// for fat trees.
	DA, DI int

	switches map[types.SwitchID]*Switch
	hosts    []*Host
	hostByIP map[types.IP]*Host
	hostByID map[types.HostID]*Host
	torHosts map[types.SwitchID][]*Host

	// ordered ID lists per layer for deterministic iteration
	tors, aggs, cores []types.SwitchID
}

// newTopology allocates the internal maps.
func newTopology(kind Kind) *Topology {
	return &Topology{
		Kind:     kind,
		switches: make(map[types.SwitchID]*Switch),
		hostByIP: make(map[types.IP]*Host),
		hostByID: make(map[types.HostID]*Host),
		torHosts: make(map[types.SwitchID][]*Host),
	}
}

func (t *Topology) addSwitch(s *Switch) {
	t.switches[s.ID] = s
	switch s.Layer {
	case LayerToR:
		t.tors = append(t.tors, s.ID)
	case LayerAgg:
		t.aggs = append(t.aggs, s.ID)
	case LayerCore:
		t.cores = append(t.cores, s.ID)
	}
}

func (t *Topology) addHost(h *Host) {
	t.hosts = append(t.hosts, h)
	t.hostByIP[h.IP] = h
	t.hostByID[h.ID] = h
	t.torHosts[h.ToR] = append(t.torHosts[h.ToR], h)
}

// Switch returns the switch with the given ID, or nil.
func (t *Topology) Switch(id types.SwitchID) *Switch { return t.switches[id] }

// NumSwitches returns the total switch count.
func (t *Topology) NumSwitches() int { return len(t.switches) }

// ToRs returns the ToR switch IDs in deterministic order.
func (t *Topology) ToRs() []types.SwitchID { return t.tors }

// Aggs returns the aggregation switch IDs in deterministic order.
func (t *Topology) Aggs() []types.SwitchID { return t.aggs }

// Cores returns the core (or VL2 intermediate) switch IDs.
func (t *Topology) Cores() []types.SwitchID { return t.cores }

// Hosts returns every host in deterministic order.
func (t *Topology) Hosts() []*Host { return t.hosts }

// Host returns the host with the given ID, or nil.
func (t *Topology) Host(id types.HostID) *Host { return t.hostByID[id] }

// HostByIP resolves an IP address to its host, or nil.
func (t *Topology) HostByIP(ip types.IP) *Host { return t.hostByIP[ip] }

// HostsAt returns the hosts attached to a ToR switch.
func (t *Topology) HostsAt(tor types.SwitchID) []*Host { return t.torHosts[tor] }

// ToROf returns the ToR switch the address attaches to, or WildcardSwitch
// if the address is unknown.
func (t *Topology) ToROf(ip types.IP) types.SwitchID {
	if h := t.hostByIP[ip]; h != nil {
		return h.ToR
	}
	return types.WildcardSwitch
}

// Adjacent reports whether a and b share a link.
func (t *Topology) Adjacent(a, b types.SwitchID) bool {
	sa := t.switches[a]
	if sa == nil {
		return false
	}
	for _, n := range sa.Up {
		if n == b {
			return true
		}
	}
	for _, n := range sa.Down {
		if n == b {
			return true
		}
	}
	return false
}

// Neighbors returns every switch adjacent to id (up then down tiers).
func (t *Topology) Neighbors(id types.SwitchID) []types.SwitchID {
	s := t.switches[id]
	if s == nil {
		return nil
	}
	out := make([]types.SwitchID, 0, len(s.Up)+len(s.Down))
	out = append(out, s.Up...)
	out = append(out, s.Down...)
	return out
}

// Links enumerates every undirected switch-switch link exactly once,
// oriented lower-layer → upper-layer.
func (t *Topology) Links() []types.LinkID {
	var out []types.LinkID
	for _, layer := range [][]types.SwitchID{t.tors, t.aggs} {
		for _, id := range layer {
			for _, up := range t.switches[id].Up {
				out = append(out, types.LinkID{A: id, B: up})
			}
		}
	}
	return out
}

// ValidTrajectory checks a reconstructed path against the ground truth:
// every consecutive pair must be an existing link, the first switch must be
// the source's ToR and the last the destination's ToR. This is the check
// that lets PathDump flag switches inserting incorrect switchIDs (§2.4).
func (t *Topology) ValidTrajectory(src, dst types.IP, p types.Path) error {
	if len(p) == 0 {
		return fmt.Errorf("topology: empty trajectory")
	}
	if tor := t.ToROf(src); tor != p[0] {
		return fmt.Errorf("topology: trajectory starts at %v, source ToR is %v", p[0], tor)
	}
	if tor := t.ToROf(dst); tor != p[len(p)-1] {
		return fmt.Errorf("topology: trajectory ends at %v, destination ToR is %v", p[len(p)-1], tor)
	}
	for i := 0; i+1 < len(p); i++ {
		if t.Switch(p[i]) == nil {
			return fmt.Errorf("topology: unknown switch %v in trajectory", p[i])
		}
		if !t.Adjacent(p[i], p[i+1]) {
			return fmt.Errorf("topology: %v and %v are not adjacent", p[i], p[i+1])
		}
	}
	return nil
}

// ShortestLen returns the number of switch-switch hops on a shortest path
// between two switches (BFS over the ground-truth graph); -1 if unreachable.
func (t *Topology) ShortestLen(from, to types.SwitchID) int {
	if from == to {
		return 0
	}
	dist := map[types.SwitchID]int{from: 0}
	queue := []types.SwitchID{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range t.Neighbors(cur) {
			if _, seen := dist[n]; seen {
				continue
			}
			dist[n] = dist[cur] + 1
			if n == to {
				return dist[n]
			}
			queue = append(queue, n)
		}
	}
	return -1
}
