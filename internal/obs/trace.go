package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// NewTraceID mints a 16-hex-character random trace identifier. IDs
// are minted by the controller once per Execute* call and propagated
// to agents in the X-Pathdump-Trace request header.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID
		// still traces correctly, it just isn't unique.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

type traceKey struct{}

// ContextWithTrace returns a context carrying the trace ID, for
// propagation through transports that only see a context.
func ContextWithTrace(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceFromContext extracts the trace ID placed by ContextWithTrace,
// or "" when the context is untraced.
func TraceFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// Attr is one key/value annotation on a Span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Span is one timed stage of a traced query: the fan-out wave, a
// per-host RPC, a TIB scan, a streaming merge. Spans form a tree via
// Children, marshal to JSON so agent-side spans can ride back on
// QueryResponse, and are safe for concurrent mutation (hedged
// requests and parallel fan-out touch siblings from many goroutines).
// Every method is nil-safe: an untraced call site passes a nil parent
// and the whole subtree melts away.
type Span struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Dur      time.Duration `json:"dur"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Children []*Span       `json:"children,omitempty"`

	mu sync.Mutex
}

// NewSpan starts a root span named name.
func NewSpan(name string) *Span {
	return &Span{Name: name, Start: time.Now()}
}

// StartChild starts and attaches a child span; it returns nil when s
// is nil so untraced paths stay branch-free.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: time.Now()}
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
	return c
}

// AddChild attaches an already-built span (typically one decoded from
// an agent reply) under s.
func (s *Span) AddChild(c *Span) {
	if s == nil || c == nil {
		return
	}
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
}

// Finish stamps the span's duration; calling it again is a no-op so
// deferred and explicit finishes can coexist.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.Dur == 0 {
		s.Dur = time.Since(s.Start)
	}
	s.mu.Unlock()
}

// SetAttr annotates the span with a string value.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(key string, value int64) {
	s.SetAttr(key, fmt.Sprintf("%d", value))
}

// Attr returns the value of the first attribute named key, or "".
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Render prints the span tree as an indented text outline — one line
// per span with its duration and attributes, children ordered by
// start time — the format pathdumpctl -trace shows operators.
func (s *Span) Render() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.render(&b, 0)
	return b.String()
}

func (s *Span) render(b *strings.Builder, depth int) {
	s.mu.Lock()
	name, dur := s.Name, s.Dur
	attrs := append([]Attr(nil), s.Attrs...)
	children := append([]*Span(nil), s.Children...)
	s.mu.Unlock()

	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(name)
	for _, a := range attrs {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Value)
	}
	fmt.Fprintf(b, " %v\n", dur.Round(time.Microsecond))
	sort.SliceStable(children, func(i, j int) bool { return children[i].Start.Before(children[j].Start) })
	for _, c := range children {
		c.render(b, depth+1)
	}
}
