package obs

import (
	"sync"
	"time"
)

// SlowQuery is one slow-query log entry: the query that crossed the
// threshold, how long it took, and its finished span tree.
type SlowQuery struct {
	Trace string        `json:"trace"`
	Query string        `json:"query"`
	Dur   time.Duration `json:"dur"`
	At    time.Time     `json:"at"`
	Span  *Span         `json:"span,omitempty"`
}

// SlowLog is a bounded ring of the most recent slow queries. Add is
// cheap (one mutex, no allocation once the ring is full) and the
// threshold decision belongs to the caller, so the log itself never
// sits on the fast path. A nil *SlowLog no-ops.
type SlowLog struct {
	mu      sync.Mutex
	max     int
	entries []SlowQuery
	next    int
	total   uint64
}

// NewSlowLog returns a SlowLog keeping at most max entries; max <= 0
// defaults to 64.
func NewSlowLog(max int) *SlowLog {
	if max <= 0 {
		max = 64
	}
	return &SlowLog{max: max}
}

// Add records one slow query, evicting the oldest entry when full.
func (l *SlowLog) Add(e SlowQuery) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.entries) < l.max {
		l.entries = append(l.entries, e)
		return
	}
	l.entries[l.next] = e
	l.next = (l.next + 1) % l.max
}

// Entries returns the retained slow queries, newest first.
func (l *SlowLog) Entries() []SlowQuery {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQuery, 0, len(l.entries))
	// Ring order: entries[next:] are oldest, entries[:next] newest.
	for i := len(l.entries) - 1; i >= 0; i-- {
		out = append(out, l.entries[(l.next+i)%len(l.entries)])
	}
	return out
}

// Total returns how many slow queries have ever been recorded,
// including entries since evicted from the ring.
func (l *SlowLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
