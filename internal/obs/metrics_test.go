package obs

import (
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionGolden locks the exposition format byte-for-byte:
// HELP/TYPE headers, label rendering, cumulative histogram buckets
// with +Inf, _sum/_count, and registration-order determinism.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pd_requests_total", "Requests served.", L("op", "query"), L("enc", "wire"))
	c.Add(3)
	r.Counter("pd_requests_total", "Requests served.", L("op", "query"), L("enc", "json")).Inc()
	g := r.Gauge("pd_subscribers", "Live SSE subscribers.")
	g.Set(2)
	r.GaugeFunc("pd_store_records", "Records resident in the TIB.", func() float64 { return 1234 })
	h := r.Histogram("pd_latency_seconds", "Request latency.", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.002)
	h.Observe(5)

	want := strings.Join([]string{
		`# HELP pd_requests_total Requests served.`,
		`# TYPE pd_requests_total counter`,
		`pd_requests_total{op="query",enc="wire"} 3`,
		`pd_requests_total{op="query",enc="json"} 1`,
		`# HELP pd_subscribers Live SSE subscribers.`,
		`# TYPE pd_subscribers gauge`,
		`pd_subscribers 2`,
		`# HELP pd_store_records Records resident in the TIB.`,
		`# TYPE pd_store_records gauge`,
		`pd_store_records 1234`,
		`# HELP pd_latency_seconds Request latency.`,
		`# TYPE pd_latency_seconds histogram`,
		`pd_latency_seconds_bucket{le="0.001"} 1`,
		`pd_latency_seconds_bucket{le="0.01"} 2`,
		`pd_latency_seconds_bucket{le="0.1"} 2`,
		`pd_latency_seconds_bucket{le="+Inf"} 3`,
		`pd_latency_seconds_sum 5.0025`,
		`pd_latency_seconds_count 3`,
		``,
	}, "\n")
	if got := r.Expose(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHandlerServesTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("pd_x_total", "X.").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp := mustGet(t, srv.URL)
	if ct := resp.header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want text/plain version=0.0.4", ct)
	}
	if !strings.Contains(resp.body, "pd_x_total 1") {
		t.Errorf("scrape body missing counter:\n%s", resp.body)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("pd_esc_total", "Esc.", L("path", `a\b"c`+"\n")).Inc()
	want := `pd_esc_total{path="a\\b\"c\n"} 1`
	if got := r.Expose(); !strings.Contains(got, want) {
		t.Errorf("escaped series %q not found in:\n%s", want, got)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("pd_same_total", "Same.", L("op", "q"))
	b := r.Counter("pd_same_total", "Same.", L("op", "q"))
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	a.Inc()
	b.Inc()
	if a.Value() != 2 {
		t.Fatalf("shared counter = %d, want 2", a.Value())
	}
	if n := strings.Count(r.Expose(), "pd_same_total{"); n != 1 {
		t.Fatalf("expected 1 series, exposition shows %d", n)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("pd_kind_total", "K.")
	r.Gauge("pd_kind_total", "K.")
}

func TestNilSafety(t *testing.T) {
	var (
		r *Registry
		c *Counter
		g *Gauge
		h *Histogram
		l *SlowLog
		s *Span
	)
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(-1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	l.Add(SlowQuery{})
	s.Finish()
	s.SetAttr("k", "v")
	s.SetInt("n", 1)
	s.AddChild(NewSpan("x"))
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 ||
		l.Total() != 0 || l.Entries() != nil || s.StartChild("x") != nil ||
		s.Render() != "" || s.Attr("k") != "" {
		t.Fatal("nil receivers must observe nothing and return zero values")
	}
	if r.Counter("x", "X.") != nil || r.Gauge("x", "X.") != nil ||
		r.Histogram("x", "X.", LatencyBuckets) != nil {
		t.Fatal("nil registry must hand back nil metrics")
	}
	r.GaugeFunc("x", "X.", nil)
	r.WritePrometheus(&strings.Builder{})
	if r.Expose() != "" {
		t.Fatal("nil registry exposition must be empty")
	}
}

// TestHammerConcurrent drives every metric type from many goroutines
// with concurrent scrapes — the -race matrix turns this into a proof
// that the hot paths are data-race free — then checks no goroutine
// leaked and every increment landed.
func TestHammerConcurrent(t *testing.T) {
	before := runtime.NumGoroutine()
	r := NewRegistry()
	c := r.Counter("pd_hammer_total", "H.")
	g := r.Gauge("pd_hammer_gauge", "H.")
	h := r.Histogram("pd_hammer_seconds", "H.", LatencyBuckets)
	const workers, iters = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(seed*i%100) / 1000)
				if i%500 == 0 {
					// Concurrent registration of the same series and a
					// scrape, mid-hammer.
					r.Counter("pd_hammer_total", "H.")
					_ = r.Expose()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*iters {
		t.Errorf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if g.Value() != workers*iters {
		t.Errorf("gauge = %d, want %d", g.Value(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	// Cumulative buckets must account for every observation.
	if got := strings.Count(r.Expose(), "pd_hammer_seconds_bucket"); got != len(LatencyBuckets)+1 {
		t.Errorf("bucket lines = %d, want %d", got, len(LatencyBuckets)+1)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak: %d before hammer, %d after", before, after)
	}
}

// BenchmarkMetricsHotPath gates the ≤1-alloc promise on the increment
// path: counter inc, gauge set and histogram observe must all be
// allocation-free.
func BenchmarkMetricsHotPath(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("pd_bench_total", "B.", L("op", "query"))
	g := r.Gauge("pd_bench_gauge", "B.")
	h := r.Histogram("pd_bench_seconds", "B.", LatencyBuckets)
	b.Run("counter-inc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("gauge-set", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Set(int64(i))
		}
	})
	b.Run("histogram-observe", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i%1000) / 10000)
		}
	})
	b.Run("counter-inc-parallel", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
}
