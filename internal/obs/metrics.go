// Package obs is the self-observability plane: a dependency-free
// metrics registry with Prometheus text exposition, per-query
// distributed tracing spans, and a bounded slow-query log.
//
// The registry is designed for hot paths: Counter.Inc, Gauge.Set and
// Histogram.Observe are single atomic operations with zero heap
// allocations, and every metric type is nil-safe so call sites never
// need an "is observability enabled" branch — an unregistered metric
// is simply a nil pointer whose methods no-op.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key=value dimension attached to a metric series at
// registration time. Labels are fixed for the lifetime of the series;
// dynamic label values are deliberately unsupported (they allocate on
// the hot path and unboundedly grow the scrape).
type Label struct {
	Key   string
	Value string
}

// L builds a Label; it exists so registration sites read as
// obs.L("op", "query") instead of a struct literal.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing uint64 metric. The zero value
// is usable; a nil *Counter no-ops on every method.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add increases the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an int64 metric that can go up and down. The zero value is
// usable; a nil *Gauge no-ops on every method.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge's current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the gauge's current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: each bound b owns every observation v with v <= b, plus an
// implicit +Inf bucket. Observe is lock-free (one atomic add per
// bucket/count and a CAS loop on the float-bits sum) and allocates
// nothing. A nil *Histogram no-ops.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sum     atomic.Uint64 // math.Float64bits of the running sum
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound >= v is exactly the smallest le-bucket that owns v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records d in seconds, the Prometheus convention for
// latency histograms.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// LatencyBuckets is the default bound set for request-latency
// histograms: exponential from 100µs to 10s, in seconds.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets is the default bound set for payload-size histograms:
// powers of four from 64 bytes to 16MiB.
var SizeBuckets = []float64{
	64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216,
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labelled instance within a family. Exactly one of the
// metric fields is set, matching the family kind.
type series struct {
	labels string // pre-rendered `{k="v",...}` or ""
	c      *Counter
	g      *Gauge
	f      func() float64
	h      *Histogram
}

type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Registration takes a lock; the returned
// metric handles are lock-free thereafter. Families and series render
// in registration order, so scrapes are deterministic.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// lookup finds or creates the family and the labelled series slot,
// returning the existing series when (name, labels) was already
// registered — registration is idempotent so packages can share a
// registry without coordinating.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label) (*family, *series, bool) {
	ls := renderLabels(labels)
	fam := r.byName[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: kind}
		r.byName[name] = fam
		r.families = append(r.families, fam)
	} else if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, re-registered as %s", name, fam.kind, kind))
	}
	for _, s := range fam.series {
		if s.labels == ls {
			return fam, s, true
		}
	}
	s := &series{labels: ls}
	fam.series = append(fam.series, s)
	return fam, s, false
}

// Counter registers (or returns the existing) counter series under
// name with the given labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s, ok := r.lookup(name, help, kindCounter, labels)
	if !ok {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge registers (or returns the existing) gauge series under name
// with the given labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s, ok := r.lookup(name, help, kindGauge, labels)
	if !ok {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge series whose value is computed by fn at
// scrape time. Use it to expose counters that already live elsewhere
// (store sizes, pipeline stats) without double-counting writes; fn
// must be safe to call from the scrape goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s, _ := r.lookup(name, help, kindGaugeFunc, labels)
	s.f = fn
}

// Histogram registers (or returns the existing) histogram series under
// name with the given bucket bounds (which must be sorted ascending).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s, ok := r.lookup(name, help, kindHistogram, labels)
	if !ok {
		h := &Histogram{bounds: append([]float64(nil), bounds...)}
		h.buckets = make([]atomic.Uint64, len(h.bounds)+1)
		s.h = h
	}
	return s.h
}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, fam := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", fam.name, fam.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", fam.name, fam.kind)
		for _, s := range fam.series {
			switch fam.kind {
			case kindCounter:
				fmt.Fprintf(w, "%s%s %d\n", fam.name, s.labels, s.c.Value())
			case kindGauge:
				fmt.Fprintf(w, "%s%s %d\n", fam.name, s.labels, s.g.Value())
			case kindGaugeFunc:
				fmt.Fprintf(w, "%s%s %s\n", fam.name, s.labels, formatFloat(s.f()))
			case kindHistogram:
				writeHistogram(w, fam.name, s)
			}
		}
	}
}

func writeHistogram(w io.Writer, name string, s *series) {
	h := s.h
	var cum uint64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(s.labels, `le="`+formatFloat(b)+`"`), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(s.labels, `le="+Inf"`), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, h.Count())
}

// Expose renders the registry to a string; it is the non-HTTP form of
// Handler for tests and log dumps.
func (r *Registry) Expose() string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

// Handler returns an http.Handler serving the registry as a
// Prometheus text scrape, suitable for mounting at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(r.Expose()))
	})
}

// renderLabels pre-renders the label set as `{k="v",...}` once at
// registration so scrapes never re-escape.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels splices extra (an already-rendered `k="v"` pair) into a
// pre-rendered label block, used for histogram le labels.
func mergeLabels(rendered, extra string) string {
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// formatFloat renders a float the way Prometheus expects: shortest
// representation that round-trips, integers without an exponent.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
