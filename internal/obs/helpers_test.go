package obs

import (
	"io"
	"net/http"
	"testing"
)

type getResult struct {
	header http.Header
	body   string
}

func mustGet(t *testing.T, url string) getResult {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return getResult{header: resp.Header, body: string(b)}
}
