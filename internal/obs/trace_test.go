package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("trace IDs %q, %q: want 16 hex chars", a, b)
	}
	if a == b {
		t.Fatalf("two minted trace IDs collided: %q", a)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if got := TraceFromContext(context.Background()); got != "" {
		t.Fatalf("untraced context yielded %q", got)
	}
	ctx := ContextWithTrace(context.Background(), "abc123")
	if got := TraceFromContext(ctx); got != "abc123" {
		t.Fatalf("TraceFromContext = %q, want abc123", got)
	}
	if got := TraceFromContext(nil); got != "" {
		t.Fatalf("nil context yielded %q", got)
	}
}

func TestSpanTreeAndRender(t *testing.T) {
	root := NewSpan("query")
	root.SetAttr("op", "topk")
	rpc := root.StartChild("rpc")
	rpc.SetAttr("host", "h2")
	rpc.SetInt("attempt", 1)
	scan := rpc.StartChild("scan")
	scan.SetInt("records", 32)
	scan.Finish()
	rpc.Finish()
	merge := root.StartChild("merge")
	merge.Finish()
	root.Finish()

	if root.Dur <= 0 || rpc.Dur <= 0 {
		t.Fatal("Finish must stamp a positive duration")
	}
	prev := root.Dur
	root.Finish()
	if root.Dur != prev {
		t.Fatal("second Finish must not restamp the duration")
	}
	if got := rpc.Attr("host"); got != "h2" {
		t.Fatalf("Attr(host) = %q, want h2", got)
	}

	out := root.Render()
	for _, want := range []string{"query op=topk", "  rpc host=h2 attempt=1", "    scan records=32", "  merge"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Children render in start order: rpc began before merge.
	if strings.Index(out, "rpc") > strings.Index(out, "merge") {
		t.Errorf("children out of start order:\n%s", out)
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	root := NewSpan("scan")
	root.SetInt("segments", 4)
	root.StartChild("cold-load").Finish()
	root.Finish()
	b, err := json.Marshal(root)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Span
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Name != "scan" || back.Attr("segments") != "4" || len(back.Children) != 1 {
		t.Fatalf("round trip lost data: %+v", &back)
	}
	if back.Children[0].Name != "cold-load" {
		t.Fatalf("child lost: %+v", back.Children[0])
	}
}

// TestSpanConcurrentChildren mirrors the fan-out: many goroutines
// attach and annotate children of one parent while another renders.
func TestSpanConcurrentChildren(t *testing.T) {
	root := NewSpan("fanout")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c := root.StartChild("rpc")
			c.SetInt("host", int64(n))
			if n%2 == 0 {
				c.SetAttr("hedged", "true")
			}
			c.Finish()
			_ = root.Render()
		}(i)
	}
	wg.Wait()
	root.Finish()
	if len(root.Children) != 16 {
		t.Fatalf("children = %d, want 16", len(root.Children))
	}
}

func TestSlowLogRing(t *testing.T) {
	l := NewSlowLog(3)
	for i := 0; i < 5; i++ {
		l.Add(SlowQuery{Trace: string(rune('a' + i)), Dur: time.Duration(i), At: time.Unix(int64(i), 0)})
	}
	if l.Total() != 5 {
		t.Fatalf("Total = %d, want 5", l.Total())
	}
	got := l.Entries()
	if len(got) != 3 {
		t.Fatalf("Entries len = %d, want 3", len(got))
	}
	for i, want := range []string{"e", "d", "c"} {
		if got[i].Trace != want {
			t.Errorf("entry %d = %q, want %q (newest first)", i, got[i].Trace, want)
		}
	}
	if NewSlowLog(0).max != 64 {
		t.Error("max <= 0 must default to 64")
	}
}
